file(REMOVE_RECURSE
  "CMakeFiles/vkernel_test.dir/tests/vkernel_test.cc.o"
  "CMakeFiles/vkernel_test.dir/tests/vkernel_test.cc.o.d"
  "vkernel_test"
  "vkernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vkernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
