# Empty compiler generated dependencies file for vkernel_test.
# This may be replaced when dependencies are built.
