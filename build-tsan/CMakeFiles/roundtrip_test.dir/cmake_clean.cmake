file(REMOVE_RECURSE
  "CMakeFiles/roundtrip_test.dir/tests/roundtrip_test.cc.o"
  "CMakeFiles/roundtrip_test.dir/tests/roundtrip_test.cc.o.d"
  "roundtrip_test"
  "roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
