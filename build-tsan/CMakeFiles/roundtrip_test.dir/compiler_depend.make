# Empty compiler generated dependencies file for roundtrip_test.
# This may be replaced when dependencies are built.
