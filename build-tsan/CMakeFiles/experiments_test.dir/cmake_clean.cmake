file(REMOVE_RECURSE
  "CMakeFiles/experiments_test.dir/tests/experiments_test.cc.o"
  "CMakeFiles/experiments_test.dir/tests/experiments_test.cc.o.d"
  "experiments_test"
  "experiments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
