# Empty dependencies file for experiments_test.
# This may be replaced when dependencies are built.
