# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spec_gen_test.
