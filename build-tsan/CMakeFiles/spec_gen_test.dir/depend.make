# Empty dependencies file for spec_gen_test.
# This may be replaced when dependencies are built.
