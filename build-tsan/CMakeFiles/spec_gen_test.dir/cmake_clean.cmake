file(REMOVE_RECURSE
  "CMakeFiles/spec_gen_test.dir/tests/spec_gen_test.cc.o"
  "CMakeFiles/spec_gen_test.dir/tests/spec_gen_test.cc.o.d"
  "spec_gen_test"
  "spec_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
