# Empty compiler generated dependencies file for fuzzer_test.
# This may be replaced when dependencies are built.
