file(REMOVE_RECURSE
  "CMakeFiles/fuzzer_test.dir/tests/fuzzer_test.cc.o"
  "CMakeFiles/fuzzer_test.dir/tests/fuzzer_test.cc.o.d"
  "fuzzer_test"
  "fuzzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
