file(REMOVE_RECURSE
  "CMakeFiles/ksrc_test.dir/tests/ksrc_test.cc.o"
  "CMakeFiles/ksrc_test.dir/tests/ksrc_test.cc.o.d"
  "ksrc_test"
  "ksrc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
