# Empty dependencies file for ksrc_test.
# This may be replaced when dependencies are built.
