# Empty dependencies file for kernelgpt_core.
# This may be replaced when dependencies are built.
