
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/syz_describe.cc" "CMakeFiles/kernelgpt_core.dir/src/baseline/syz_describe.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/baseline/syz_describe.cc.o.d"
  "/root/repo/src/drivers/corpus.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus.cc.o.d"
  "/root/repo/src/drivers/corpus_generic.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_generic.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_generic.cc.o.d"
  "/root/repo/src/drivers/corpus_sockets.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_sockets.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_sockets.cc.o.d"
  "/root/repo/src/drivers/corpus_special.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_special.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/corpus_special.cc.o.d"
  "/root/repo/src/drivers/driver_model.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/driver_model.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/driver_model.cc.o.d"
  "/root/repo/src/drivers/model_render.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_render.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_render.cc.o.d"
  "/root/repo/src/drivers/model_runtime.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_runtime.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_runtime.cc.o.d"
  "/root/repo/src/drivers/model_spec.cc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_spec.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/drivers/model_spec.cc.o.d"
  "/root/repo/src/experiments/audit.cc" "CMakeFiles/kernelgpt_core.dir/src/experiments/audit.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/experiments/audit.cc.o.d"
  "/root/repo/src/experiments/bugs.cc" "CMakeFiles/kernelgpt_core.dir/src/experiments/bugs.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/experiments/bugs.cc.o.d"
  "/root/repo/src/experiments/context.cc" "CMakeFiles/kernelgpt_core.dir/src/experiments/context.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/experiments/context.cc.o.d"
  "/root/repo/src/extractor/handler_finder.cc" "CMakeFiles/kernelgpt_core.dir/src/extractor/handler_finder.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/extractor/handler_finder.cc.o.d"
  "/root/repo/src/fuzzer/campaign.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/campaign.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/campaign.cc.o.d"
  "/root/repo/src/fuzzer/executor.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/executor.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/executor.cc.o.d"
  "/root/repo/src/fuzzer/generator.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/generator.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/generator.cc.o.d"
  "/root/repo/src/fuzzer/minimizer.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/minimizer.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/minimizer.cc.o.d"
  "/root/repo/src/fuzzer/mutator.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/mutator.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/mutator.cc.o.d"
  "/root/repo/src/fuzzer/orchestrator.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/orchestrator.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/orchestrator.cc.o.d"
  "/root/repo/src/fuzzer/prog.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/prog.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/prog.cc.o.d"
  "/root/repo/src/fuzzer/spec_library.cc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/spec_library.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/fuzzer/spec_library.cc.o.d"
  "/root/repo/src/ksrc/body_analysis.cc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/body_analysis.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/body_analysis.cc.o.d"
  "/root/repo/src/ksrc/clexer.cc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/clexer.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/clexer.cc.o.d"
  "/root/repo/src/ksrc/cparser.cc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/cparser.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/cparser.cc.o.d"
  "/root/repo/src/ksrc/definition_index.cc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/definition_index.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/ksrc/definition_index.cc.o.d"
  "/root/repo/src/llm/engine.cc" "CMakeFiles/kernelgpt_core.dir/src/llm/engine.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/llm/engine.cc.o.d"
  "/root/repo/src/llm/profile.cc" "CMakeFiles/kernelgpt_core.dir/src/llm/profile.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/llm/profile.cc.o.d"
  "/root/repo/src/llm/token_meter.cc" "CMakeFiles/kernelgpt_core.dir/src/llm/token_meter.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/llm/token_meter.cc.o.d"
  "/root/repo/src/spec_gen/kernelgpt.cc" "CMakeFiles/kernelgpt_core.dir/src/spec_gen/kernelgpt.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/spec_gen/kernelgpt.cc.o.d"
  "/root/repo/src/syzlang/ast.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/ast.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/ast.cc.o.d"
  "/root/repo/src/syzlang/const_table.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/const_table.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/const_table.cc.o.d"
  "/root/repo/src/syzlang/lexer.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/lexer.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/lexer.cc.o.d"
  "/root/repo/src/syzlang/parser.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/parser.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/parser.cc.o.d"
  "/root/repo/src/syzlang/printer.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/printer.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/printer.cc.o.d"
  "/root/repo/src/syzlang/types.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/types.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/types.cc.o.d"
  "/root/repo/src/syzlang/validator.cc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/validator.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/syzlang/validator.cc.o.d"
  "/root/repo/src/util/histogram.cc" "CMakeFiles/kernelgpt_core.dir/src/util/histogram.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/util/histogram.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/kernelgpt_core.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/kernelgpt_core.dir/src/util/status.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "CMakeFiles/kernelgpt_core.dir/src/util/strings.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/kernelgpt_core.dir/src/util/table.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/util/table.cc.o.d"
  "/root/repo/src/vkernel/coverage.cc" "CMakeFiles/kernelgpt_core.dir/src/vkernel/coverage.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/vkernel/coverage.cc.o.d"
  "/root/repo/src/vkernel/kernel.cc" "CMakeFiles/kernelgpt_core.dir/src/vkernel/kernel.cc.o" "gcc" "CMakeFiles/kernelgpt_core.dir/src/vkernel/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
