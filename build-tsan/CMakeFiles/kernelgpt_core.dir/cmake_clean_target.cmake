file(REMOVE_RECURSE
  "libkernelgpt_core.a"
)
