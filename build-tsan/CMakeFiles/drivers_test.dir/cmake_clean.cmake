file(REMOVE_RECURSE
  "CMakeFiles/drivers_test.dir/tests/drivers_test.cc.o"
  "CMakeFiles/drivers_test.dir/tests/drivers_test.cc.o.d"
  "drivers_test"
  "drivers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drivers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
