# Empty dependencies file for drivers_test.
# This may be replaced when dependencies are built.
