file(REMOVE_RECURSE
  "CMakeFiles/orchestrator_test.dir/tests/orchestrator_test.cc.o"
  "CMakeFiles/orchestrator_test.dir/tests/orchestrator_test.cc.o.d"
  "orchestrator_test"
  "orchestrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
