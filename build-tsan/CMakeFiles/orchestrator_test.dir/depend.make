# Empty dependencies file for orchestrator_test.
# This may be replaced when dependencies are built.
