# Empty dependencies file for syzlang_test.
# This may be replaced when dependencies are built.
