file(REMOVE_RECURSE
  "CMakeFiles/syzlang_test.dir/tests/syzlang_test.cc.o"
  "CMakeFiles/syzlang_test.dir/tests/syzlang_test.cc.o.d"
  "syzlang_test"
  "syzlang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syzlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
