# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(drivers_test "/root/repo/build-tsan/drivers_test")
set_tests_properties(drivers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(experiments_test "/root/repo/build-tsan/experiments_test")
set_tests_properties(experiments_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(extractor_test "/root/repo/build-tsan/extractor_test")
set_tests_properties(extractor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(fuzzer_test "/root/repo/build-tsan/fuzzer_test")
set_tests_properties(fuzzer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ksrc_test "/root/repo/build-tsan/ksrc_test")
set_tests_properties(ksrc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(llm_test "/root/repo/build-tsan/llm_test")
set_tests_properties(llm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(orchestrator_test "/root/repo/build-tsan/orchestrator_test")
set_tests_properties(orchestrator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(roundtrip_test "/root/repo/build-tsan/roundtrip_test")
set_tests_properties(roundtrip_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(spec_gen_test "/root/repo/build-tsan/spec_gen_test")
set_tests_properties(spec_gen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(syzlang_test "/root/repo/build-tsan/syzlang_test")
set_tests_properties(syzlang_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build-tsan/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(vkernel_test "/root/repo/build-tsan/vkernel_test")
set_tests_properties(vkernel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
