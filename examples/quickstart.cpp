// Quickstart: the 60-second tour of the public API.
//
// 1. Load the synthetic kernel corpus and build the source index.
// 2. Extract the operation handler of one driver.
// 3. Run KernelGPT to generate its syzlang specification.
// 4. Fuzz the virtual kernel with the generated spec.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "fuzzer/campaign.h"
#include "spec_gen/kernelgpt.h"
#include "syzlang/printer.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

int
main()
{
  // 1. The corpus plays the role of the Linux source tree.
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  ksrc::DefinitionIndex index = corpus.BuildIndex();
  std::printf("Corpus: %zu drivers, %zu socket families\n",
              corpus.devices().size(), corpus.sockets().size());

  // 2. Find the UBI driver's operation handler (fops + registration).
  auto handlers = extractor::FindDriverHandlers(index);
  const extractor::DriverHandler* ubi = nullptr;
  for (const auto& h : handlers) {
    if (h.file_path == "drivers/ubi.c" &&
        h.reg != extractor::RegKind::kUnreferenced) {
      ubi = &h;
    }
  }
  if (!ubi) {
    std::printf("ubi handler not found\n");
    return 1;
  }
  std::printf("\nExtracted handler: fops=%s ioctl=%s\n", ubi->fops_var.c_str(),
              ubi->ioctl_fn.c_str());

  // 3. Generate the specification with the default (GPT-4) profile.
  llm::TokenMeter meter;
  spec_gen::KernelGpt generator(&index, spec_gen::Options{}, &meter);
  spec_gen::HandlerGeneration gen = generator.GenerateForDriver(*ubi);
  std::printf("\nGenerated specification (%zu syscalls, %zu types, %s):\n\n%s",
              gen.SyscallCount(), gen.TypeCount(),
              gen.status == spec_gen::GenStatus::kValidDirect
                  ? "valid directly"
                  : (gen.status == spec_gen::GenStatus::kRepaired
                         ? "repaired"
                         : "FAILED"),
              syzlang::Print(gen.spec).c_str());

  // 4. Fuzz the virtual kernel with it.
  vkernel::Kernel kernel;
  corpus.RegisterAll(&kernel);
  fuzzer::SpecLibrary lib;
  lib.SetConsts(index.BuildConstTable());
  lib.Add(gen.spec);
  lib.Finalize();

  fuzzer::CampaignOptions options;
  options.program_budget = 20000;
  fuzzer::CampaignResult result = fuzzer::RunCampaign(&kernel, lib, options);
  std::printf("\nFuzzed %zu programs: %zu blocks covered, %zu unique "
              "crashes\n",
              result.programs_executed, result.coverage.Count(),
              result.UniqueCrashCount());
  for (const auto& [title, count] : result.crashes) {
    std::printf("  %5d x %s\n", count, title.c_str());
  }
  std::printf("\nLLM cost: %zu queries, %zu input + %zu output tokens\n",
              meter.query_count(), meter.total_input_tokens(),
              meter.total_output_tokens());
  return 0;
}
