// End-to-end fuzzing campaign: generate specifications for every loaded
// module of the corpus (the §5.1 workflow), combine them with the
// existing Syzkaller descriptions, and run a coverage-guided campaign on
// the virtual kernel — then report coverage growth and every bug found.

#include <cstdio>

#include "experiments/bugs.h"
#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  std::printf("Generating specifications for the whole corpus...\n");
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  int usable = 0;
  for (const auto& module : context.modules()) {
    if (module.KernelGptUsable()) ++usable;
  }
  std::printf("KernelGPT produced usable specs for %d of %zu modules "
              "(%zu LLM queries)\n\n",
              usable, context.modules().size(),
              context.meter().query_count());

  struct Step {
    const char* label;
    fuzzer::SpecLibrary lib;
  };
  Step steps[] = {
      {"Syzkaller only", context.SyzkallerSuite()},
      {"+ KernelGPT", context.SyzkallerPlusKernelGptSuite()},
  };

  for (Step& step : steps) {
    auto summary = context.Fuzz(step.lib, 80000, 1, 42);
    std::printf("%-15s  %4zu syscalls  %5.0f blocks  %zu unique crashes\n",
                step.label, step.lib.syscalls().size(), summary.avg_coverage,
                summary.crash_titles.size());
  }

  // Which of the paper's 24 bugs does the combined suite (plus focused
  // per-module campaigns, as syzbot instances would run) hit?
  std::printf("\nFocused per-module campaigns with the new specs:\n");
  std::map<std::string, std::string> found;  // title -> module
  for (const auto& module : context.modules()) {
    if (!module.KernelGptUsable()) continue;
    fuzzer::SpecLibrary lib = context.MakeLibrary({&module.kernelgpt.spec});
    auto summary = context.Fuzz(lib, 25000, 1, util::StableHash(module.id));
    for (const auto& [title, count] : summary.crash_titles) {
      found.emplace(title, module.id);
    }
  }
  int new_bugs = 0;
  for (const auto& bug : experiments::AllPlantedBugs(false)) {
    if (found.count(bug.title)) {
      ++new_bugs;
      std::printf("  [%s] %s%s%s\n", bug.module.c_str(), bug.title.c_str(),
                  bug.cve.empty() ? "" : "  ", bug.cve.c_str());
    }
  }
  std::printf("\n%d of the paper's 24 new bugs detected.\n", new_bugs);
  return 0;
}
