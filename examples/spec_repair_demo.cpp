// Shows the two LLM-facing mechanics of the paper in isolation:
//
//  * the iterative prompt of Figure 6 — the analysis model reports
//    UNKNOWN functions which the next step resolves (device-mapper's
//    dm_ctl_ioctl -> ctl_ioctl delegation);
//  * the validation + repair loop of §3.2 — a deliberately flawed
//    specification is validated (syz-generate style), and the error
//    messages drive a repair that fixes it.

#include <cstdio>

#include "drivers/corpus.h"
#include "llm/engine.h"
#include "syzlang/parser.h"
#include "syzlang/printer.h"
#include "syzlang/validator.h"

using namespace kernelgpt;

int
main()
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  ksrc::DefinitionIndex index = corpus.BuildIndex();

  // --- Part 1: the Figure 6 transcript --------------------------------------
  std::printf("=== Iterative identifier deduction (Figure 6) ===\n\n");
  llm::TokenMeter meter;
  llm::SimulatedBackend engine(&index, llm::Gpt4(), &meter);

  llm::IdentifierAnalysis step1 = engine.AnalyzeIdentifiers(
      "dm_ctl_ioctl", "dm_ctl_ioctl(struct file *file, uint command, ulong u)",
      "dm", 1);
  const llm::QueryRecord& q1 = meter.records().back();
  std::printf("--- Step 1 prompt (truncated) ---\n%.600s...\n\n",
              q1.prompt.c_str());
  std::printf("--- Step 1 response ---\n%s\n", q1.response.c_str());

  if (!step1.unknowns.empty()) {
    llm::IdentifierAnalysis step2 = engine.AnalyzeIdentifiers(
        step1.unknowns[0].identifier, step1.unknowns[0].usage, "dm", 2);
    const llm::QueryRecord& q2 = meter.records().back();
    std::printf("--- Step 2 response (after fetching %s) ---\n%s\n",
                step1.unknowns[0].identifier.c_str(), q2.response.c_str());
    std::printf("Commands recovered in step 2: %zu\n\n",
                step2.commands.size());
  }

  // --- Part 2: validation and repair ----------------------------------------
  std::printf("=== Validation + repair (Section 3.2) ===\n\n");
  const char* flawed = R"(
resource fd_demo[fd]
demo_arg {
	count int
	data array[int32, 8]
}
openat$demo(fd const[0], file ptr[in, string["/dev/demo"]], flags const[2], mode const[0]) fd_demo
ioctl$DEMO_RUN(fd fd_demo, cmd const[DM_VERSION_SPEC], arg ptr[in, demo_arg])
)";
  syzlang::ParseResult parsed = syzlang::Parse(flawed, "demo");
  syzlang::ConstTable consts = index.BuildConstTable();
  syzlang::ValidationResult validation =
      syzlang::Validate(parsed.spec, consts);
  std::printf("Validator found %zu errors:\n", validation.errors.size());
  for (const auto& error : validation.errors) {
    std::printf("  [%s] %s\n", syzlang::ErrorKindName(error.kind),
                error.message.c_str());
  }

  // Repair exactly as the pipeline does: `int` -> int32, strip the
  // hallucinated _SPEC suffix when the prefix resolves.
  for (auto& decl : parsed.spec.decls) {
    if (decl.kind == syzlang::DeclKind::kStruct) {
      for (auto& field : decl.struct_def.fields) {
        if (field.type.kind == syzlang::TypeKind::kStructRef &&
            field.type.ref_name == "int") {
          field.type = syzlang::Type::Int(32);
        }
      }
    }
    if (decl.kind == syzlang::DeclKind::kSyscall) {
      for (auto& param : decl.syscall.params) {
        if (param.type.kind == syzlang::TypeKind::kConst &&
            param.type.const_name == "DM_VERSION_SPEC") {
          param.type.const_name = "DM_VERSION";
        }
      }
    }
  }
  syzlang::ValidationResult after = syzlang::Validate(parsed.spec, consts);
  std::printf("\nAfter repair: %zu errors\n", after.errors.size());
  std::printf("\nRepaired specification:\n%s",
              syzlang::Print(parsed.spec).c_str());
  return 0;
}
