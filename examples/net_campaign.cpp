// End-to-end campaign over the vnet TCP/UDP stack: a Session fuzzes the
// ground-truth net specs (seeded with canonical establish/datagram
// programs), distills each round's corpus, and prints the minimized
// state-machine-violation reproducers the crash pipeline shrank — the
// new crash class the stateful stack opens beyond bad-argument errnos.
//
// Build: cmake -B build && cmake --build build
// Run:   ./build/examples/example_net_campaign [rounds] [workers]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/prog.h"
#include "fuzzer/session.h"
#include "vkernel/kernel.h"
#include "vnet/inet.h"

using namespace kernelgpt;

namespace {

size_t
FindCall(const fuzzer::SpecLibrary& lib, const char* full_name)
{
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    if (lib.syscalls()[i].FullName() == full_name) return i;
  }
  std::fprintf(stderr, "missing syscall %s\n", full_name);
  std::exit(1);
}

fuzzer::Arg
Scalar(uint64_t v)
{
  fuzzer::Arg a;
  a.scalar = v;
  return a;
}

fuzzer::Arg
Ref(int call)
{
  fuzzer::Arg a;
  a.kind = fuzzer::Arg::Kind::kResourceRef;
  a.ref_call = call;
  return a;
}

fuzzer::Arg
AddrBuf(uint16_t port)
{
  fuzzer::Arg a;
  a.kind = fuzzer::Arg::Kind::kBuffer;
  a.bytes = {2, 0, static_cast<uint8_t>(port & 0xff),
             static_cast<uint8_t>(port >> 8), 0, 0, 0, 0};
  return a;
}

fuzzer::Arg
Len(uint64_t v, int of_param)
{
  fuzzer::Arg a = Scalar(v);
  a.len_of_param = of_param;
  return a;
}

/// The canonical establish + accept program — the seed the mutator
/// perturbs into the surrounding protocol state space.
std::vector<fuzzer::Prog>
NetSeeds(const fuzzer::SpecLibrary& lib)
{
  const size_t sock = FindCall(lib, "socket$tcp");
  const size_t bind = FindCall(lib, "bind$tcp");
  const size_t listen = FindCall(lib, "listen$tcp");
  const size_t connect = FindCall(lib, "connect$tcp");
  const size_t accept = FindCall(lib, "accept$tcp");

  fuzzer::Prog establish;
  establish.calls = {
      fuzzer::Call{sock, {Scalar(2), Scalar(1), Scalar(6)}},
      fuzzer::Call{bind, {Ref(0), AddrBuf(5), Len(8, 1)}},
      fuzzer::Call{listen, {Ref(0), Scalar(0)}},
      fuzzer::Call{sock, {Scalar(2), Scalar(1), Scalar(6)}},
      fuzzer::Call{connect, {Ref(3), AddrBuf(5), Len(8, 1)}},
      fuzzer::Call{accept, {Ref(0), Scalar(0), Scalar(0)}},
  };
  return {establish};
}

}  // namespace

int
main(int argc, char** argv)
{
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::SpecLibrary lib;
  lib.SetConsts(corpus.BuildIndex().BuildConstTable());
  lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("tcp")));
  lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("udp")));
  lib.Finalize();

  auto boot = [&corpus](vkernel::KernelModel* kernel) {
    corpus.RegisterAll(kernel);
  };

  fuzzer::OrchestratorOptions orchestrator;
  orchestrator.campaign.program_budget = 20000;
  orchestrator.campaign.batch_size = 32;
  orchestrator.num_workers = workers;
  orchestrator.sync_interval = 256;

  fuzzer::Session session(fuzzer::SessionOptions()
                              .WithSeed(2026)
                              .WithRounds(rounds)
                              .WithOrchestrator(orchestrator),
                          boot);
  if (util::Status status = session.RegisterSuite("net", &lib); !status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.message().c_str());
    return 1;
  }
  session.Find("net")->corpus = NetSeeds(lib);

  std::printf("vnet campaign: %d rounds x %d programs on %d workers over "
              "the tcp/udp ground-truth specs\n\n",
              rounds, orchestrator.campaign.program_budget, workers);

  if (util::Status status = session.Run(); !status.ok()) {
    std::fprintf(stderr, "run: %s\n", status.message().c_str());
    return 1;
  }

  const fuzzer::SuiteState& state = *session.Find("net");
  std::printf("%-6s %12s %12s %10s %8s\n", "round", "merged", "distilled",
              "cum cov", "crashes");
  for (const fuzzer::RoundReport& round : state.rounds) {
    std::printf("%-6d %12zu %12zu %10zu %8zu\n", round.round,
                round.merged_corpus, round.distilled_corpus,
                round.cumulative_coverage, round.cumulative_unique_crashes);
  }

  // Which protocol depths did the campaign reach?
  const drivers::BlockLayout blocks =
      vnet::TcpBlockLayout(*corpus.FindSocket("tcp"));
  const char* depths[] = {"SYN_SENT->ESTABLISHED", "FIN_WAIT2->TIME_WAIT",
                          "CLOSE_WAIT->LAST_ACK"};
  std::printf("\nProtocol depth:\n");
  for (const char* t : depths) {
    std::printf("  %-24s %s\n", t,
                state.coverage.Contains(blocks.IdOf("trans", t, 0))
                    ? "reached"
                    : "not reached");
  }

  std::printf("\nMinimized state-machine-violation reproducers:\n");
  int shown = 0;
  for (const auto& [title, prog] : state.crash_reproducers) {
    if (std::strncmp(title.c_str(), vnet::kViolationPrefix,
                     std::strlen(vnet::kViolationPrefix)) != 0) {
      continue;
    }
    ++shown;
    std::printf("-- %s (%zu calls)\n%s", title.c_str(), prog.size(),
                FormatProg(prog, lib).c_str());
  }
  if (shown == 0) {
    std::printf("  (none found at this budget)\n");
    return 1;
  }
  return 0;
}
