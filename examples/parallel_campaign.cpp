// Parallel campaign demo: shard one fuzzing budget across worker
// threads with the campaign orchestrator, compare against the serial
// loop, and show the per-shard statistics and the global merge.
//
// Build: cmake -B build && cmake --build build
// Run:   ./build/examples/example_parallel_campaign [workers]

#include <cstdio>
#include <cstdlib>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/orchestrator.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

int
main(int argc, char** argv)
{
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;

  // Fuzz the device-mapper ground-truth spec — the richest single-driver
  // workload in the corpus (multi-step ioctl protocol, several bugs).
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::SpecLibrary lib;
  lib.SetConsts(corpus.BuildIndex().BuildConstTable());
  lib.Add(drivers::GroundTruthDeviceSpec(*corpus.FindDevice("dm")));
  lib.Finalize();

  auto boot = [&corpus](vkernel::KernelModel* kernel) {
    corpus.RegisterAll(kernel);
  };

  fuzzer::OrchestratorOptions options;
  options.campaign.program_budget = 60000;
  options.campaign.seed = 42;
  options.sync_interval = 512;

  // Serial reference: one worker replays the classic campaign loop.
  options.num_workers = 1;
  fuzzer::OrchestratorResult serial =
      fuzzer::RunShardedCampaign(lib, boot, options);
  std::printf("Serial   : %zu programs, %zu blocks, %zu unique crashes "
              "in %.2fs\n",
              serial.programs_executed, serial.coverage.Count(),
              serial.UniqueCrashCount(), serial.wall_seconds);

  // Sharded run: same budget split across `workers` threads, with
  // interesting seeds broadcast between shards every sync_interval
  // programs and a global coverage/crash merge at the end.
  options.num_workers = workers;
  fuzzer::OrchestratorResult sharded =
      fuzzer::RunShardedCampaign(lib, boot, options);
  std::printf("%d-worker : %zu programs, %zu blocks, %zu unique crashes "
              "in %.2fs (%.2fx)\n\n",
              workers, sharded.programs_executed, sharded.coverage.Count(),
              sharded.UniqueCrashCount(), sharded.wall_seconds,
              serial.wall_seconds /
                  (sharded.wall_seconds > 0 ? sharded.wall_seconds : 1));

  std::printf("Per-shard breakdown:\n");
  for (const auto& shard : sharded.shards) {
    std::printf("  shard %d: %6zu programs, %4zu blocks, %3zu crash hits, "
                "corpus %3zu, broadcast %3zu, ingested %3zu\n",
                shard.shard_id, shard.programs_executed,
                shard.coverage_blocks, shard.crash_occurrences,
                shard.corpus_size, shard.seeds_broadcast,
                shard.seeds_ingested);
  }

  std::printf("\nGlobally deduplicated crashes (union of all shards):\n");
  for (const auto& [title, count] : sharded.crashes) {
    std::printf("  %5d x %s\n", count, title.c_str());
  }
  return 0;
}
