// Demonstrates the pluggable LLM backend stack: resolve backends by name
// from the registry, fan one handler set across several of them on the
// multi-threaded SpecGenService, and compare the per-backend cost/quality
// reports. The same program with num_threads = 1 produces byte-identical
// specifications — sharding is a wall-clock knob, not a behaviour knob.

#include <cstdio>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "llm/registry.h"
#include "spec_gen/service.h"
#include "syzlang/printer.h"

using namespace kernelgpt;

int
main()
{
  ksrc::DefinitionIndex index = drivers::Corpus::Instance().BuildIndex();

  std::vector<extractor::DriverHandler> drivers;
  for (auto& handler : extractor::FindDriverHandlers(index)) {
    if (handler.reg == extractor::RegKind::kUnreferenced) continue;
    drivers.push_back(std::move(handler));
  }

  spec_gen::ServiceOptions options;
  options.backends = {"gpt-4", "gpt-4-mini", "gpt-3.5"};
  options.num_threads = 4;
  spec_gen::SpecGenService service(&index, options);
  spec_gen::ServiceResult result = service.Generate(drivers, {});

  for (const spec_gen::BackendRun& run : result.runs) {
    const spec_gen::BackendReport& r = run.report;
    std::printf("%-12s %2zu handlers: %zu valid, %zu repaired, %zu failed; "
                "%3zu syscalls, %3zu types; %zu queries, $%.2f\n",
                r.backend.c_str(), r.handlers, r.valid, r.repaired, r.failed,
                r.syscalls, r.types, r.queries, r.cost_usd);
  }

  // The strongest backend's first generated spec, as the fuzzer sees it.
  if (const spec_gen::BackendRun* best = result.Find("gpt-4")) {
    for (const spec_gen::HandlerGeneration& gen : best->generations) {
      if (gen.status == spec_gen::GenStatus::kFailed) continue;
      std::printf("\n--- gpt-4 spec for module '%s' ---\n%s",
                  gen.module.c_str(), syzlang::Print(gen.spec).c_str());
      break;
    }
  }
  return 0;
}
