// The paper's Figure 2 case study: the device-mapper driver registers its
// node via miscdevice `.nodename` (not `.name`) and dispatches on
// `_IOC_NR(command)`. The rule-based baseline infers a wrong device name
// and wrong command values; KernelGPT gets both right — and its spec is
// the one that reaches the CVE-2024-23851 kmalloc bug.

#include <cstdio>

#include "baseline/syz_describe.h"
#include "drivers/corpus.h"
#include "drivers/model_render.h"
#include "extractor/handler_finder.h"
#include "fuzzer/campaign.h"
#include "spec_gen/kernelgpt.h"
#include "syzlang/printer.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

namespace {

void
FuzzWith(const char* label, const syzlang::SpecFile& spec,
         const ksrc::DefinitionIndex& index)
{
  vkernel::Kernel kernel;
  drivers::Corpus::Instance().RegisterAll(&kernel);
  fuzzer::SpecLibrary lib;
  lib.SetConsts(index.BuildConstTable());
  lib.Add(spec);
  lib.Finalize();
  fuzzer::CampaignOptions options;
  options.program_budget = 20000;
  fuzzer::CampaignResult result = fuzzer::RunCampaign(&kernel, lib, options);
  std::printf("%-12s -> %3zu blocks, %zu unique crashes", label,
              result.coverage.Count(), result.UniqueCrashCount());
  for (const auto& [title, count] : result.crashes) {
    std::printf("\n              %s", title.c_str());
  }
  std::printf("\n");
}

}  // namespace

int
main()
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  const drivers::DeviceSpec* dm = corpus.FindDevice("dm");
  ksrc::DefinitionIndex index = corpus.BuildIndex();

  // The source fragment at the heart of Figure 2.
  std::printf("=== Registration source (drivers/dm.c) ===\n");
  std::string src = drivers::RenderDeviceSource(*dm);
  size_t misc = src.find("static struct miscdevice");
  if (misc != std::string::npos) {
    std::printf("%s\n", src.substr(misc).c_str());
  }

  // Generate with both tools.
  auto handlers = extractor::FindDriverHandlers(index);
  const extractor::DriverHandler* handler = nullptr;
  for (const auto& h : handlers) {
    if (h.file_path == "drivers/dm.c" &&
        h.reg != extractor::RegKind::kUnreferenced) {
      handler = &h;
    }
  }
  if (!handler) return 1;

  baseline::SyzDescribe syz_describe(&index);
  baseline::SyzDescribeResult sd = syz_describe.GenerateForDriver(*handler);

  llm::TokenMeter meter;
  spec_gen::KernelGpt kernelgpt(&index, spec_gen::Options{}, &meter);
  spec_gen::HandlerGeneration kg = kernelgpt.GenerateForDriver(*handler);

  std::printf("=== SyzDescribe output (Fig. 2c: wrong name, wrong cmd, "
              "unreadable) ===\n%s\n",
              syzlang::Print(sd.spec).c_str());
  std::printf("=== KernelGPT output (Fig. 2d: correct and readable) "
              "===\n%s\n",
              syzlang::Print(kg.spec).c_str());

  std::printf("=== Fuzzing the virtual kernel with each spec ===\n");
  FuzzWith("SyzDescribe", sd.spec, index);
  FuzzWith("KernelGPT", kg.spec, index);
  std::printf("\nThe kmalloc bug in ctl_ioctl (CVE-2024-23851) is only "
              "reachable with the correct nodename and _IOWR command "
              "values.\n");
  return 0;
}
