// Persistence demo: a fuzzing session interrupted halfway — including by
// a KILL IN THE MIDDLE OF A SAVE — and resumed in a NEW PROCESS continues
// the exact RNG-deterministic schedule: merged coverage, crash titles,
// and the distilled corpus are identical to an uninterrupted 4-round
// session.
//
// The default invocation drives the whole proof by re-executing itself,
// so every resume really crosses a process boundary:
//   1. <self> run    <dir> 2   — fresh session, 2 rounds, Save(dir)
//   2. <self> crash  <dir> 1   — new process, Resume, 1 more round, then
//                                dies MID-SAVE (after the manifest tmp
//                                file is durable, before the rename
//                                commits it) via the crash-injection
//                                hook; the directory keeps only the 2
//                                committed rounds plus an uncommitted
//                                journal tail
//   3. <self> resume <dir> 2   — new process, Resume recovers to round 2
//                                (truncating the tail), 2 more, Save
//   4. <self> check  <dir> 4   — new process, Resume(dir), compare
//                                against a straight 4-round session
//
// Build: cmake -B build && cmake --build build
// Run:   ./build/examples/example_resumable_campaign [dir]

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/prog.h"
#include "fuzzer/session.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

namespace {

constexpr uint64_t kSeed = 77;
constexpr int kBudgetPerRound = 8000;
constexpr int kWorkers = 2;

fuzzer::SpecLibrary
MakeLibrary()
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::SpecLibrary lib;
  lib.SetConsts(corpus.BuildIndex().BuildConstTable());
  lib.Add(drivers::GroundTruthDeviceSpec(*corpus.FindDevice("dm")));
  lib.Finalize();
  return lib;
}

fuzzer::Session
MakeSession(int rounds)
{
  fuzzer::OrchestratorOptions orchestrator;
  orchestrator.campaign.program_budget = kBudgetPerRound;
  orchestrator.campaign.batch_size = 32;
  orchestrator.num_workers = kWorkers;
  orchestrator.sync_interval = 256;
  return fuzzer::Session(fuzzer::SessionOptions()
                             .WithSeed(kSeed)
                             .WithRounds(rounds)
                             .WithOrchestrator(orchestrator),
                         [](vkernel::KernelModel* kernel) {
                           drivers::Corpus::Instance().RegisterAll(kernel);
                         });
}

int
Die(const util::Status& status, const char* what)
{
  std::fprintf(stderr, "%s: %s\n", what, status.message().c_str());
  return 1;
}

void
PrintState(const char* label, const fuzzer::SuiteState& state)
{
  std::printf("%-18s rounds %zu, programs %zu, coverage %zu, "
              "unique crashes %zu, corpus %zu, reproducers %zu\n",
              label, state.rounds.size(), state.programs_executed,
              state.coverage.Count(), state.crashes.size(),
              state.corpus.size(), state.crash_reproducers.size());
}

bool
SameProgs(const std::vector<fuzzer::Prog>& a,
          const std::vector<fuzzer::Prog>& b)
{
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (fuzzer::HashProg(a[i]) != fuzzer::HashProg(b[i])) return false;
  }
  return true;
}

int
RunPhase(const std::string& mode, const std::string& dir, int rounds)
{
  fuzzer::SpecLibrary lib = MakeLibrary();
  fuzzer::Session session = MakeSession(rounds);
  if (util::Status s = session.RegisterSuite("dm", &lib); !s.ok()) {
    return Die(s, "register");
  }
  if (mode != "run") {
    if (util::Status s = session.Resume(dir); !s.ok()) return Die(s, "resume");
  }

  if (mode == "check") {
    // Reference: an uninterrupted session of the same total rounds in
    // THIS process, compared field by field against the resumed state.
    fuzzer::Session straight = MakeSession(rounds);
    if (util::Status s = straight.RegisterSuite("dm", &lib); !s.ok()) {
      return Die(s, "register reference");
    }
    if (util::Status s = straight.Run(); !s.ok()) {
      return Die(s, "run reference");
    }
    const fuzzer::SuiteState& resumed = *session.Find("dm");
    const fuzzer::SuiteState& reference = *straight.Find("dm");
    PrintState("interrupted(2+2):", resumed);
    PrintState("straight(4):", reference);

    bool ok = resumed.coverage.blocks() == reference.coverage.blocks();
    ok = ok && resumed.crashes == reference.crashes;
    ok = ok && resumed.programs_executed == reference.programs_executed;
    ok = ok && SameProgs(resumed.corpus, reference.corpus);
    ok = ok && resumed.crash_reproducers.size() ==
                   reference.crash_reproducers.size();
    for (const auto& [title, prog] : reference.crash_reproducers) {
      auto it = resumed.crash_reproducers.find(title);
      ok = ok && it != resumed.crash_reproducers.end() &&
           fuzzer::HashProg(it->second) == fuzzer::HashProg(prog);
    }
    if (!ok) {
      std::fprintf(stderr, "MISMATCH: resumed state diverged from the "
                           "uninterrupted session\n");
      return 1;
    }
    std::printf("OK: save/resume across processes is bit-identical to the "
                "uninterrupted %d-round session\n",
                rounds);
    return 0;
  }

  if (util::Status s = session.Run(); !s.ok()) return Die(s, "run");
  PrintState(mode == "run" ? "after run:" : "after resume:",
             *session.Find("dm"));
  if (mode == "crash") {
    // Die mid-save: the hook fires once the manifest's tmp file is
    // durable but before the rename commits it — the widest window in
    // which a non-atomic writer would have destroyed the old manifest.
    ::setenv("KERNELGPT_CRASH_AFTER_TMP_WRITE", "session.manifest", 1);
    util::Status s = session.Save(dir);
    std::fprintf(stderr, "crash phase survived Save (%s)\n",
                 s.ok() ? "ok" : s.message().c_str());
    return 1;  // Unreachable when the hook fires.
  }
  if (util::Status s = session.Save(dir); !s.ok()) return Die(s, "save");
  std::printf("saved %d rounds to %s\n", session.rounds_completed(),
              dir.c_str());
  return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
  if (argc >= 4 && (std::strcmp(argv[1], "run") == 0 ||
                    std::strcmp(argv[1], "crash") == 0 ||
                    std::strcmp(argv[1], "resume") == 0 ||
                    std::strcmp(argv[1], "check") == 0)) {
    return RunPhase(argv[1], argv[2], std::atoi(argv[3]));
  }

  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "kernelgpt_resumable_demo")
                     .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // Stale snapshots would resume.

  const std::string self = argv[0];
  struct Phase {
    std::string cmd;
    int expect_exit;
  };
  const Phase phases[] = {
      {self + " run " + dir + " 2", 0},
      {self + " crash " + dir + " 1", 42},  // The injection hook _exits 42.
      {self + " resume " + dir + " 2", 0},
      {self + " check " + dir + " 4", 0},
  };
  for (const Phase& phase : phases) {
    std::printf("== %s\n", phase.cmd.c_str());
    std::fflush(stdout);  // Keep parent/child output ordered.
    const int rc = std::system(phase.cmd.c_str());
    const int exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    if (exit_code != phase.expect_exit) {
      std::fprintf(stderr, "phase failed (exit %d, wanted %d): %s\n",
                   exit_code, phase.expect_exit, phase.cmd.c_str());
      return 1;
    }
    if (phase.expect_exit == 42) {
      std::printf("killed mid-save as planned; the manifest commit never "
                  "landed\n");
    }
  }
  return 0;
}
