// Corpus-lifecycle demo on the Session API: a "campaign of campaigns"
// that alternates sharded fuzzing rounds with between-round corpus
// distillation, with adaptive sync retuning the cross-shard exchange
// cadence from observed coverage growth. Shows why corpora stop growing
// monotonically: each round's merged corpus is pruned to a minimal
// covering subset before it re-seeds the next round's shards, and the
// session's RoundReport trend records expose the whole lifecycle.
//
// Build: cmake -B build && cmake --build build
// Run:   ./build/examples/example_distill_campaign [rounds] [workers]

#include <cstdio>
#include <cstdlib>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/prog.h"
#include "fuzzer/session.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

int
main(int argc, char** argv)
{
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::SpecLibrary lib;
  lib.SetConsts(corpus.BuildIndex().BuildConstTable());
  lib.Add(drivers::GroundTruthDeviceSpec(*corpus.FindDevice("dm")));
  lib.Finalize();

  auto boot = [&corpus](vkernel::KernelModel* kernel) {
    corpus.RegisterAll(kernel);
  };

  fuzzer::OrchestratorOptions orchestrator;
  orchestrator.campaign.program_budget = 20000;
  orchestrator.campaign.batch_size = 32;
  orchestrator.num_workers = workers;
  orchestrator.sync_interval = 256;
  orchestrator.adaptive_sync = true;
  orchestrator.min_sync_interval = 64;
  orchestrator.max_sync_interval = 2048;

  fuzzer::Session session(fuzzer::SessionOptions()
                              .WithSeed(42)
                              .WithRounds(rounds)
                              .WithOrchestrator(orchestrator),
                          boot);
  if (util::Status status = session.RegisterSuite("dm", &lib); !status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.message().c_str());
    return 1;
  }

  std::printf("Campaign loop: %d rounds x %d programs on %d workers, "
              "adaptive sync + distillation between rounds\n\n",
              rounds, orchestrator.campaign.program_budget, workers);

  if (util::Status status = session.Run(); !status.ok()) {
    std::fprintf(stderr, "run: %s\n", status.message().c_str());
    return 1;
  }

  const fuzzer::SuiteState& state = *session.Find("dm");
  std::printf("%-6s %12s %12s %10s %10s %8s\n", "round", "merged", "distilled",
              "kept%", "cum cov", "crashes");
  for (const fuzzer::RoundReport& round : state.rounds) {
    const double kept =
        round.merged_corpus
            ? 100.0 * static_cast<double>(round.distilled_corpus) /
                  static_cast<double>(round.merged_corpus)
            : 0.0;
    std::printf("%-6d %12zu %12zu %9.1f%% %10zu %8zu\n", round.round,
                round.merged_corpus, round.distilled_corpus, kept,
                round.cumulative_coverage, round.cumulative_unique_crashes);
  }

  std::printf("\nAdaptive sync schedule (round 0):\n");
  for (size_t e = 0; e < state.rounds.front().epochs.size(); ++e) {
    const fuzzer::EpochStats& epoch = state.rounds.front().epochs[e];
    std::printf("  epoch %2zu: interval %5d, broadcast cap %2zu, "
                "+%zu blocks\n",
                e, epoch.sync_interval, epoch.broadcast_cap, epoch.new_blocks);
  }

  std::printf("\n%zu programs executed total; final distilled corpus: "
              "%zu programs covering %zu blocks\n",
              state.programs_executed, state.corpus.size(),
              state.coverage.Count());

  std::printf("\nMinimized crash reproducers (one per title):\n");
  for (const auto& [title, prog] : state.crash_reproducers) {
    std::printf("-- %s (%zu calls)\n%s", title.c_str(), prog.size(),
                FormatProg(prog, lib).c_str());
  }
  return 0;
}
