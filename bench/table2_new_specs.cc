// Reproduces Table 2: "Newly generated syscall descriptions" — how many
// new syscalls and new type definitions each generator adds beyond the
// existing Syzkaller descriptions, over handlers with missing specs.

#include <cstdio>

#include "experiments/bugs.h"
#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  size_t kg_driver_calls = 0;
  size_t kg_driver_types = 0;
  size_t kg_socket_calls = 0;
  size_t kg_socket_types = 0;
  size_t sd_calls = 0;
  size_t sd_types = 0;
  size_t existing_total = 0;

  for (const experiments::ModuleResult& module : context.modules()) {
    existing_total += module.existing_syscalls;
    if (!module.Incomplete()) continue;
    if (module.KernelGptUsable()) {
      // New syscalls: those the existing spec does not already describe.
      size_t new_calls = 0;
      for (const syzlang::SyscallDef* call :
           module.kernelgpt.spec.Syscalls()) {
        if (!module.existing.FindSyscall(call->FullName())) ++new_calls;
      }
      size_t new_types = module.kernelgpt.TypeCount();
      if (module.is_socket) {
        kg_socket_calls += new_calls;
        kg_socket_types += new_types;
      } else {
        kg_driver_calls += new_calls;
        kg_driver_types += new_types;
      }
    }
    if (!module.is_socket &&
        experiments::SyzDescribeEffective(context, module)) {
      // Count only the handlers SyzDescribe describes *validly* (its
      // other outputs carry wrong names/commands and add nothing).
      sd_calls += module.syzdescribe.syscall_count;
      sd_types += module.syzdescribe.type_count;
    }
  }

  std::printf("Table 2: Newly generated syscall descriptions\n");
  std::printf("(paper: SyzDescribe 146 syscalls / 168 types; KernelGPT "
              "driver 288/170, socket 244/124, total 532/294)\n\n");
  util::Table table(
      {"", "SyzDescribe #Syscalls", "#Types", "KernelGPT #Syscalls",
       "#Types"});
  table.AddRow({"Driver", std::to_string(sd_calls), std::to_string(sd_types),
                std::to_string(kg_driver_calls),
                std::to_string(kg_driver_types)});
  table.AddRow({"Socket", "N/A", "N/A", std::to_string(kg_socket_calls),
                std::to_string(kg_socket_types)});
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(sd_calls), std::to_string(sd_types),
                std::to_string(kg_driver_calls + kg_socket_calls),
                std::to_string(kg_driver_types + kg_socket_types)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Existing Syzkaller syscalls in the corpus: %zu (paper: 3903); "
              "KernelGPT adds %.1f%% (paper: +13.6%%)\n",
              existing_total,
              existing_total
                  ? 100.0 * (kg_driver_calls + kg_socket_calls) /
                        existing_total
                  : 0.0);
  return 0;
}
