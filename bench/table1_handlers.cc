// Reproduces Table 1: "Specifications for driver/socket handlers".
//
// Columns: total loaded handlers, handlers with incomplete existing
// specs, SyzDescribe's valid (effective) generations, KernelGPT's valid
// generations with the repaired count in parentheses.

#include <cstdio>

#include "experiments/bugs.h"
#include "experiments/context.h"
#include "util/strings.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  struct Row {
    int total = 0;
    int incomplete = 0;
    int syzdescribe_valid = 0;
    int kernelgpt_valid = 0;
    int kernelgpt_fixed = 0;
  };
  Row driver_row;
  Row socket_row;

  for (const experiments::ModuleResult& module : context.modules()) {
    Row& row = module.is_socket ? socket_row : driver_row;
    row.total++;
    if (!module.Incomplete()) continue;
    row.incomplete++;
    if (!module.is_socket &&
        experiments::SyzDescribeEffective(context, module)) {
      row.syzdescribe_valid++;
    }
    if (module.KernelGptUsable()) {
      row.kernelgpt_valid++;
      if (module.kernelgpt.status == spec_gen::GenStatus::kRepaired) {
        row.kernelgpt_fixed++;
      }
    }
  }

  std::printf("Table 1: Specifications for driver/socket handlers\n");
  std::printf("(paper: driver 278 total / 75 incomplete / SyzDescribe 20 / "
              "KernelGPT 70 (30);\n"
              " socket 81 / 66 / N-A / 57 (12))\n\n");

  util::Table table({"", "# Total", "# Incomplete", "SyzDescribe # Valid",
                     "KernelGPT # Valid (Fixed)"});
  auto add = [&](const char* label, const Row& row, bool sockets) {
    table.AddRow({label, std::to_string(row.total),
                  std::to_string(row.incomplete),
                  sockets ? "N/A" : std::to_string(row.syzdescribe_valid),
                  util::Format("%d (%d)", row.kernelgpt_valid,
                               row.kernelgpt_fixed)});
  };
  add("Driver", driver_row, false);
  add("Socket", socket_row, true);
  Row total;
  total.total = driver_row.total + socket_row.total;
  total.incomplete = driver_row.incomplete + socket_row.incomplete;
  total.syzdescribe_valid = driver_row.syzdescribe_valid;
  total.kernelgpt_valid =
      driver_row.kernelgpt_valid + socket_row.kernelgpt_valid;
  total.kernelgpt_fixed =
      driver_row.kernelgpt_fixed + socket_row.kernelgpt_fixed;
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(total.total),
                std::to_string(total.incomplete),
                std::to_string(total.syzdescribe_valid),
                util::Format("%d (%d)", total.kernelgpt_valid,
                             total.kernelgpt_fixed)});
  std::printf("%s\n", table.Render().c_str());

  double kg_rate = total.incomplete
                       ? 100.0 * total.kernelgpt_valid / total.incomplete
                       : 0;
  double sd_rate = driver_row.incomplete
                       ? 100.0 * driver_row.syzdescribe_valid /
                             driver_row.incomplete
                       : 0;
  std::printf("KernelGPT valid rate: %.0f%% of incomplete handlers "
              "(paper: 93%% drivers / 86%% sockets)\n",
              kg_rate);
  std::printf("SyzDescribe valid rate: %.0f%% of incomplete driver handlers "
              "(paper: 27%%)\n",
              sd_rate);
  return 0;
}
