// Backend cost/quality matrix: fans the whole extracted handler set
// (drivers + sockets) across every registered backend on the parallel
// SpecGenService and prints the per-backend report — the engineering
// companion to the §5.2.3 ablation that adds the cost axis (tokens and
// $-estimate under the registry's per-backend pricing) to the quality
// axis (valid/repaired/failed handlers, syscalls, types).

#include <cstdio>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "llm/registry.h"
#include "spec_gen/service.h"
#include "util/strings.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  ksrc::DefinitionIndex index = drivers::Corpus::Instance().BuildIndex();

  // The same handler set every backend sees: registered driver handlers
  // plus all socket handlers (mirrors ExperimentContext's selection).
  std::vector<extractor::DriverHandler> drivers;
  for (auto& handler : extractor::FindDriverHandlers(index)) {
    if (handler.reg == extractor::RegKind::kUnreferenced) continue;
    drivers.push_back(std::move(handler));
  }
  std::vector<extractor::SocketHandler> sockets =
      extractor::FindSocketHandlers(index);

  const llm::BackendRegistry& registry = llm::BackendRegistry::Default();
  spec_gen::ServiceOptions options;
  options.backends = registry.Names();
  options.num_threads = 4;
  spec_gen::SpecGenService service(&index, options);
  spec_gen::ServiceResult result = service.Generate(drivers, sockets);

  std::printf("Backend matrix: %zu drivers + %zu sockets x %zu backends "
              "(SpecGenService, %d threads)\n\n",
              drivers.size(), sockets.size(), options.backends.size(),
              options.num_threads);

  util::Table table({"Backend", "Handlers", "Valid", "Repaired", "Failed",
                     "#Sys", "#Types", "Queries", "Tokens in/out", "Cost"});
  for (const spec_gen::BackendRun& run : result.runs) {
    const spec_gen::BackendReport& r = run.report;
    table.AddRow({r.backend, std::to_string(r.handlers),
                  std::to_string(r.valid), std::to_string(r.repaired),
                  std::to_string(r.failed), std::to_string(r.syscalls),
                  std::to_string(r.types), std::to_string(r.queries),
                  std::to_string(r.input_tokens) + "/" +
                      std::to_string(r.output_tokens),
                  util::Format("$%.2f", r.cost_usd)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(gpt-4-flaky row: identical quality columns to gpt-4 with "
              "a retry-inflated cost column — the wrapper changes dollars, "
              "not specs)\n");
  return 0;
}
