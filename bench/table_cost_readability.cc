// Reproduces §5.1.1's cost analysis (token counts, per-prompt averages,
// dollar cost) and the readability comparison (KernelGPT vs SyzDescribe
// naming for the same driver).

#include <cstdio>

#include "experiments/context.h"
#include "syzlang/printer.h"
#include "util/strings.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();
  const llm::TokenMeter& meter = context.meter();

  std::printf("Section 5.1.1: Generation cost\n");
  std::printf("(paper: 5.56M input / 400K output tokens, 2630/189 per "
              "prompt, $34; our corpus is ~100x smaller than Linux, so "
              "absolute numbers scale down)\n\n");
  util::Table table({"Metric", "Value"});
  table.AddRow({"LLM queries", std::to_string(meter.query_count())});
  table.AddRow({"Input tokens",
                util::WithCommas(static_cast<int64_t>(
                    meter.total_input_tokens()))});
  table.AddRow({"Output tokens",
                util::WithCommas(static_cast<int64_t>(
                    meter.total_output_tokens()))});
  table.AddRow({"Avg input tokens/prompt",
                util::Fixed(meter.AvgInputTokens(), 0)});
  table.AddRow({"Avg output tokens/prompt",
                util::Fixed(meter.AvgOutputTokens(), 0)});
  table.AddRow({"Cost (USD, $10/M in + $30/M out)",
                util::Format("$%.2f", meter.CostUsd())});
  std::printf("%s\n", table.Render().c_str());

  // Readability: compare the two generators' output for the device mapper
  // (Fig. 2c vs Fig. 2d).
  const experiments::ModuleResult* dm = context.Find("dm");
  if (dm) {
    std::printf("Readability comparison for the device-mapper driver\n");
    std::printf("--- SyzDescribe (machine names, wrong name/cmd):\n");
    if (dm->syzdescribe.generated) {
      std::string text = syzlang::Print(dm->syzdescribe.spec);
      // First few lines suffice.
      size_t shown = 0;
      size_t pos = 0;
      while (shown < 6 && pos < text.size()) {
        size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        std::printf("  %s\n", text.substr(pos, end - pos).c_str());
        pos = end + 1;
        ++shown;
      }
    } else {
      std::printf("  (not generated)\n");
    }
    std::printf("--- KernelGPT (meaningful names, correct values):\n");
    std::string text = syzlang::Print(dm->kernelgpt.spec);
    size_t shown = 0;
    size_t pos = 0;
    while (shown < 6 && pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::printf("  %s\n", text.substr(pos, end - pos).c_str());
      pos = end + 1;
      ++shown;
    }
  }
  return 0;
}
