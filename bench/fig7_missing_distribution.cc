// Reproduces Figure 7: histogram of the percentage of missing syscall
// specifications per incomplete handler (drivers and sockets separately).

#include <cstdio>

#include "experiments/context.h"
#include "util/histogram.h"

using namespace kernelgpt;

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  util::Histogram driver_hist(0, 100, 10);
  util::Histogram socket_hist(0, 100, 10);
  int fully_missing_drivers = 0;
  int incomplete_drivers = 0;
  int sockets_over_80 = 0;

  for (const experiments::ModuleResult& module : context.modules()) {
    if (!module.Incomplete()) continue;
    double missing_pct = module.MissingFraction() * 100.0;
    if (module.is_socket) {
      socket_hist.Add(missing_pct);
      if (missing_pct > 80.0) ++sockets_over_80;
    } else {
      driver_hist.Add(missing_pct);
      ++incomplete_drivers;
      if (module.existing_syscalls == 0) ++fully_missing_drivers;
    }
  }

  std::printf("Figure 7: Missing specification distribution\n");
  std::printf("(x-axis: %% of syscalls missing from existing specs; "
              "y: handler count)\n\n");
  std::printf("Missing Driver Specs Distribution (%llu handlers)\n%s\n",
              static_cast<unsigned long long>(driver_hist.TotalCount()),
              driver_hist.RenderAscii().c_str());
  std::printf("Missing Socket Specs Distribution (%llu handlers)\n%s\n",
              static_cast<unsigned long long>(socket_hist.TotalCount()),
              socket_hist.RenderAscii().c_str());
  std::printf(
      "Drivers with NO existing description: %d of %d incomplete (%.0f%%; "
      "paper: 45/75 = 60%%)\n",
      fully_missing_drivers, incomplete_drivers,
      incomplete_drivers ? 100.0 * fully_missing_drivers / incomplete_drivers
                         : 0.0);
  std::printf("Sockets missing > 80%% of their syscalls: %d (paper: 22)\n",
              sockets_over_80);
  return 0;
}
