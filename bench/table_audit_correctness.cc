// Reproduces §5.1.3: semantic-correctness audit of the KernelGPT
// specifications for drivers with no existing Syzkaller description,
// against the ground-truth oracle (the automated analog of the paper's
// manual examination).

#include <cstdio>

#include "experiments/audit.h"
#include "util/table.h"

using namespace kernelgpt;

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();
  experiments::AuditResult audit =
      experiments::AuditKernelGpt(context, /*undescribed_only=*/true);

  std::printf("Section 5.1.3: Correctness audit of KernelGPT specs for "
              "previously undescribed drivers\n");
  std::printf("(paper: 42/45 drivers with no missing syscall (93.3%%); 3 "
              "syscalls (0.9%%) wrong identifiers in 2 drivers; 9 syscalls "
              "with wrong types in 7 drivers)\n\n");

  util::Table table(
      {"Driver", "#Syscalls", "Missing", "WrongId", "WrongType"});
  for (const experiments::DriverAudit& d : audit.drivers) {
    table.AddRow({d.id, std::to_string(d.total_syscalls),
                  std::to_string(d.missing),
                  std::to_string(d.wrong_identifier),
                  std::to_string(d.wrong_type)});
  }
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(audit.total_syscalls),
                std::to_string(audit.missing_syscalls),
                std::to_string(audit.wrong_identifier_syscalls),
                std::to_string(audit.wrong_type_syscalls)});
  std::printf("%s\n", table.Render().c_str());

  double no_missing_pct =
      audit.total_drivers
          ? 100.0 * audit.drivers_without_missing / audit.total_drivers
          : 0;
  double wrong_id_pct =
      audit.total_syscalls
          ? 100.0 * audit.wrong_identifier_syscalls / audit.total_syscalls
          : 0;
  std::printf("Drivers with no missing syscalls: %zu/%zu (%.1f%%, paper "
              "93.3%%)\n",
              audit.drivers_without_missing, audit.total_drivers,
              no_missing_pct);
  std::printf("Wrong identifiers: %zu syscalls (%.1f%%, paper 0.9%%) in %zu "
              "drivers (paper 2)\n",
              audit.wrong_identifier_syscalls, wrong_id_pct,
              audit.drivers_with_wrong_identifier);
  std::printf("Wrong types: %zu syscalls in %zu drivers (paper: 9 in 7)\n",
              audit.wrong_type_syscalls, audit.drivers_with_wrong_type);
  return 0;
}
