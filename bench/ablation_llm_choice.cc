// Reproduces §5.2.3 (ablation 2): the LLM-choice comparison — GPT-3.5 vs
// GPT-4 vs GPT-4o capability profiles over the same 10 drivers.

#include <cstdio>

#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 8000;
constexpr int kReps = 2;

const char* const kDrivers[] = {
    "btrfs_control", "capi20", "controlc0", "fuse",  "hpet",
    "i2c0",          "kvm",    "loop_control", "loop0", "misdntimer",
};
}  // namespace

int
main()
{
  std::printf("Ablation (5.2.3): LLM choice, first 10 valid drivers\n");
  std::printf("(paper: GPT-3.5 describes 85 vs GPT-4's 143 syscalls, -21%% "
              "coverage; GPT-4o comparable to GPT-4: 144 syscalls, 55771 "
              "vs 54640 cov)\n\n");

  util::Table table({"Model", "#Sys", "#Types", "Valid handlers", "Cov"});
  uint64_t seed = 808;

  struct ModelRun {
    const char* label;
    llm::ModelProfile profile;
  };
  const ModelRun runs[] = {
      {"GPT-3.5", llm::Gpt35()},
      {"GPT-4", llm::Gpt4()},
      {"GPT-4o", llm::Gpt4o()},
  };
  for (const ModelRun& run : runs) {
    experiments::ContextOptions opts;
    opts.gen.profile = run.profile;
    experiments::ExperimentContext context(opts);

    size_t sys = 0;
    size_t types = 0;
    int valid = 0;
    double cov = 0;
    for (const char* id : kDrivers) {
      const experiments::ModuleResult* mod = context.Find(id);
      if (!mod || !mod->KernelGptUsable()) continue;
      ++valid;
      sys += mod->kernelgpt.SyscallCount();
      types += mod->kernelgpt.TypeCount();
      fuzzer::SpecLibrary lib = context.MakeLibrary({&mod->kernelgpt.spec});
      auto summary = context.Fuzz(lib, kBudget, kReps, seed += 31);
      cov += summary.avg_coverage;
    }
    table.AddRow({run.label, std::to_string(sys), std::to_string(types),
                  std::to_string(valid), util::Fixed(cov, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(expected shape: GPT-3.5 far below GPT-4; GPT-4o within a "
              "few percent of GPT-4)\n");
  return 0;
}
