// Reproduces §5.2.3 (ablation 2): the LLM-choice comparison, now driven
// entirely through the backend registry — every registered model tier
// (GPT-3.5 / GPT-4 / GPT-4o plus the mini, long-context, and flaky
// tiers) generates the same 10 drivers, and each row reports quality
// (syscalls, types, valid handlers, coverage) next to cost (queries,
// tokens, $-estimate under the registry's per-backend pricing).

#include <cstdio>

#include "experiments/context.h"
#include "llm/registry.h"
#include "util/strings.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 8000;
constexpr int kReps = 2;

const char* const kDrivers[] = {
    "btrfs_control", "capi20", "controlc0", "fuse",  "hpet",
    "i2c0",          "kvm",    "loop_control", "loop0", "misdntimer",
};
}  // namespace

int
main()
{
  std::printf("Ablation (5.2.3): LLM choice, first 10 valid drivers\n");
  std::printf("(paper: GPT-3.5 describes 85 vs GPT-4's 143 syscalls, -21%% "
              "coverage; GPT-4o comparable to GPT-4: 144 syscalls, 55771 "
              "vs 54640 cov)\n\n");

  const llm::BackendRegistry& registry = llm::BackendRegistry::Default();
  util::Table table({"Backend", "#Sys", "#Types", "Valid", "Cov", "Queries",
                     "Tokens in/out", "Cost"});

  for (const std::string& name : registry.Names()) {
    // Per-backend seed stream: rows are comparable (identical specs ->
    // identical Cov, e.g. gpt-4 vs gpt-4-flaky) and independent of the
    // registration order.
    uint64_t seed = 808;
    experiments::ContextOptions opts;
    opts.backend = name;
    experiments::ExperimentContext context(opts);

    size_t sys = 0;
    size_t types = 0;
    int valid = 0;
    double cov = 0;
    for (const char* id : kDrivers) {
      const experiments::ModuleResult* mod = context.Find(id);
      if (!mod || !mod->KernelGptUsable()) continue;
      ++valid;
      sys += mod->kernelgpt.SyscallCount();
      types += mod->kernelgpt.TypeCount();
      fuzzer::SpecLibrary lib = context.MakeLibrary({&mod->kernelgpt.spec});
      auto summary = context.Fuzz(lib, kBudget, kReps, seed += 31);
      cov += summary.avg_coverage;
    }
    const llm::TokenMeter& meter = context.meter();
    table.AddRow({name, std::to_string(sys), std::to_string(types),
                  std::to_string(valid), util::Fixed(cov, 0),
                  std::to_string(meter.query_count()),
                  std::to_string(meter.total_input_tokens()) + "/" +
                      std::to_string(meter.total_output_tokens()),
                  util::Format("$%.2f", registry.CostUsd(name, meter))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(expected shape: gpt-3.5 far below gpt-4; gpt-4o within a "
              "few percent of gpt-4; gpt-4-flaky matches gpt-4's quality "
              "at a higher metered cost)\n");
  return 0;
}
