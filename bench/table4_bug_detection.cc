// Reproduces Table 4: "New bugs detected by KernelGPT" — runs focused
// fuzzing campaigns with KernelGPT-generated specs per module and checks
// that every planted paper bug is found, and that neither the plain
// Syzkaller suite nor SyzDescribe's specs find any of them.

#include <cstdio>

#include <set>

#include "experiments/bugs.h"
#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kFocusedBudget = 30000;
constexpr int kFocusedReps = 2;
constexpr int kBaselineBudget = 120000;
}  // namespace

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  // Focused campaigns per module with a usable KernelGPT spec.
  std::set<std::string> kernelgpt_found;
  for (const experiments::ModuleResult& module : context.modules()) {
    if (!module.KernelGptUsable()) continue;
    fuzzer::SpecLibrary lib = context.MakeLibrary({&module.kernelgpt.spec});
    auto summary = context.Fuzz(lib, kFocusedBudget, kFocusedReps,
                                util::StableHash(module.id));
    for (const auto& [title, count] : summary.crash_titles) {
      kernelgpt_found.insert(title);
    }
  }

  // Baseline sweeps (generous budget) to confirm the paper's x columns.
  auto collect = [&](const fuzzer::SpecLibrary& lib, uint64_t seed) {
    std::set<std::string> found;
    auto summary = context.Fuzz(lib, kBaselineBudget, 1, seed);
    for (const auto& [title, count] : summary.crash_titles) {
      found.insert(title);
    }
    return found;
  };
  std::set<std::string> syzkaller_found =
      collect(context.SyzkallerSuite(), 77);
  std::set<std::string> syzdescribe_found =
      collect(context.SyzkallerPlusSyzDescribeSuite(), 88);

  std::printf("Table 4: New bugs detected by KernelGPT\n");
  std::printf("(paper: 24 new bugs, 21 confirmed, 12 fixed, 11 CVEs; none "
              "detected by Syzkaller or SyzDescribe)\n\n");

  util::Table table({"Crash with new specs", "New", "Confirmed", "Fixed",
                     "CVE", "Syzkaller", "SyzDescribe"});
  int found_count = 0;
  int confirmed = 0;
  int fixed = 0;
  int cves = 0;
  for (const experiments::PlantedBug& bug :
       experiments::AllPlantedBugs(/*include_legacy=*/false)) {
    bool found = kernelgpt_found.count(bug.title);
    bool in_syzkaller = syzkaller_found.count(bug.title);
    bool in_sd = syzdescribe_found.count(bug.title);
    if (found) {
      ++found_count;
      if (bug.confirmed) ++confirmed;
      if (bug.fixed) ++fixed;
      if (!bug.cve.empty()) ++cves;
    }
    table.AddRow({bug.title, found ? "Y" : "MISSED",
                  bug.confirmed ? "Y" : "", bug.fixed ? "Y" : "",
                  bug.cve.empty() ? "" : bug.cve, in_syzkaller ? "x!" : "x",
                  in_sd ? "x!" : "x"});
  }
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(found_count),
                std::to_string(confirmed), std::to_string(fixed),
                std::to_string(cves), "0", "0"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("('x' = not detected by that baseline, as in the paper; 'x!' "
              "would flag an unexpected baseline detection)\n");
  return 0;
}
