// Reproduces §5.2.3 (ablation 1): iterative multi-stage prompting vs the
// all-in-one single-prompt variant, on the first 10 valid Table 5 drivers
// — syscall count, type count, and fuzzing coverage.

#include <cstdio>

#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 8000;
constexpr int kReps = 2;

const char* const kDrivers[] = {
    "btrfs_control", "capi20", "controlc0", "fuse",  "hpet",
    "i2c0",          "kvm",    "loop_control", "loop0", "misdntimer",
};
}  // namespace

int
main()
{
  experiments::ContextOptions iterative_opts;
  iterative_opts.gen.iterative = true;
  experiments::ContextOptions all_in_one_opts;
  all_in_one_opts.gen.iterative = false;
  // The paper's all-in-one prompt must fit everything in one context; our
  // corpus functions are far smaller than real kernel code, so scale the
  // per-prompt code budget accordingly. A hand-tuned profile needs the
  // legacy path — a registry backend would answer with its own profile.
  all_in_one_opts.gen.profile.context_tokens = 1200;
  all_in_one_opts.backend.clear();

  const experiments::ExperimentContext iterative(iterative_opts);
  const experiments::ExperimentContext all_in_one(all_in_one_opts);

  std::printf("Ablation (5.2.3): iterative multi-stage vs all-in-one "
              "prompting, first 10 valid drivers\n");
  std::printf("(paper: iterative infers 1.28x syscalls, 2.37x types, 1.39x "
              "coverage; kvm 71 vs 42 syscalls, 15605 vs 5457 cov)\n\n");

  util::Table table({"Driver", "Iter #Sys", "Iter #Types", "Iter Cov",
                     "AllInOne #Sys", "AllInOne #Types", "AllInOne Cov"});
  size_t it_sys = 0;
  size_t it_types = 0;
  double it_cov = 0;
  size_t ai_sys = 0;
  size_t ai_types = 0;
  double ai_cov = 0;
  uint64_t seed = 4242;

  for (const char* id : kDrivers) {
    const experiments::ModuleResult* it_mod = iterative.Find(id);
    const experiments::ModuleResult* ai_mod = all_in_one.Find(id);
    if (!it_mod || !ai_mod) continue;

    auto eval = [&](const experiments::ExperimentContext& ctx,
                    const experiments::ModuleResult* mod)
        -> std::tuple<size_t, size_t, double> {
      if (!mod->KernelGptUsable()) return {0, 0, 0.0};
      fuzzer::SpecLibrary lib = ctx.MakeLibrary({&mod->kernelgpt.spec});
      auto summary = ctx.Fuzz(lib, kBudget, kReps, seed += 19);
      return {mod->kernelgpt.SyscallCount(), mod->kernelgpt.TypeCount(),
              summary.avg_coverage};
    };
    auto [is, itt, ic] = eval(iterative, it_mod);
    auto [as, att, ac] = eval(all_in_one, ai_mod);
    it_sys += is;
    it_types += itt;
    it_cov += ic;
    ai_sys += as;
    ai_types += att;
    ai_cov += ac;
    table.AddRow({id, std::to_string(is), std::to_string(itt),
                  util::Fixed(ic, 0), std::to_string(as),
                  std::to_string(att), util::Fixed(ac, 0)});
  }
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(it_sys), std::to_string(it_types),
                util::Fixed(it_cov, 0), std::to_string(ai_sys),
                std::to_string(ai_types), util::Fixed(ai_cov, 0)});
  std::printf("%s\n", table.Render().c_str());
  if (ai_sys > 0 && ai_cov > 0) {
    std::printf("Iterative vs all-in-one: %.2fx syscalls (paper 1.28x), "
                "%.2fx types (paper 2.37x), %.2fx coverage (paper 1.39x)\n",
                static_cast<double>(it_sys) / ai_sys,
                static_cast<double>(it_types) / (ai_types ? ai_types : 1),
                it_cov / ai_cov);
  }
  return 0;
}
