// Engineering micro-benchmarks (google-benchmark): parser, renderer,
// spec generation, and fuzzing throughput. Not a paper table; documents
// that the substrate is fast enough for the experiment budgets.

#include <benchmark/benchmark.h>

#include "drivers/corpus.h"
#include "drivers/model_render.h"
#include "drivers/model_spec.h"
#include "experiments/context.h"
#include "fuzzer/campaign.h"
#include "ksrc/cparser.h"
#include "syzlang/parser.h"
#include "syzlang/printer.h"

using namespace kernelgpt;

namespace {

const drivers::DeviceSpec&
Dm()
{
  return *drivers::Corpus::Instance().FindDevice("dm");
}

void
BM_RenderDeviceSource(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(drivers::RenderDeviceSource(Dm()));
  }
}
BENCHMARK(BM_RenderDeviceSource);

void
BM_CParseDriver(benchmark::State& state)
{
  std::string src = drivers::RenderDeviceSource(Dm());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ksrc::CParse(src, "dm.c"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_CParseDriver);

void
BM_SyzlangRoundTrip(benchmark::State& state)
{
  std::string text = syzlang::Print(drivers::GroundTruthDeviceSpec(Dm()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(syzlang::Parse(text, "dm"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_SyzlangRoundTrip);

void
BM_FuzzThroughput(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  for (auto _ : state) {
    vkernel::Kernel kernel;
    context.BootKernel(&kernel);
    fuzzer::CampaignOptions options;
    options.seed = 42;
    options.program_budget = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(fuzzer::RunCampaign(&kernel, lib, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FuzzThroughput)->Arg(2000);

void
BM_OrchestratorThroughput(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  for (auto _ : state) {
    fuzzer::OrchestratorOptions options;
    options.campaign.seed = 42;
    options.campaign.program_budget = 2000;
    options.num_workers = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(fuzzer::RunShardedCampaign(
        lib, [&context](vkernel::Kernel* k) { context.BootKernel(k); },
        options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_OrchestratorThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_FullGenerationPipeline(benchmark::State& state)
{
  for (auto _ : state) {
    experiments::ContextOptions opts;
    experiments::ExperimentContext context(opts);
    benchmark::DoNotOptimize(context.modules().size());
  }
}
BENCHMARK(BM_FullGenerationPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
