// Engineering micro-benchmarks (google-benchmark): parser, renderer,
// spec generation, and fuzzing throughput. Not a paper table; documents
// that the substrate is fast enough for the experiment budgets.

#include <benchmark/benchmark.h>

#include "drivers/corpus.h"
#include "drivers/model_render.h"
#include "drivers/model_spec.h"
#include "experiments/context.h"
#include "fuzzer/campaign.h"
#include "fuzzer/distiller.h"
#include "fuzzer/executor.h"
#include "fuzzer/fleet.h"
#include "fuzzer/generator.h"
#include "fuzzer/session.h"
#include "fuzzer/snapshot.h"
#include "ksrc/cparser.h"
#include "syzlang/parser.h"
#include "syzlang/printer.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/strings.h"
#include "vkernel/kernel.h"

using namespace kernelgpt;

namespace {

const drivers::DeviceSpec&
Dm()
{
  return *drivers::Corpus::Instance().FindDevice("dm");
}

void
BM_RenderDeviceSource(benchmark::State& state)
{
  for (auto _ : state) {
    benchmark::DoNotOptimize(drivers::RenderDeviceSource(Dm()));
  }
}
BENCHMARK(BM_RenderDeviceSource);

void
BM_CParseDriver(benchmark::State& state)
{
  std::string src = drivers::RenderDeviceSource(Dm());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ksrc::CParse(src, "dm.c"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_CParseDriver);

void
BM_SyzlangRoundTrip(benchmark::State& state)
{
  std::string text = syzlang::Print(drivers::GroundTruthDeviceSpec(Dm()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(syzlang::Parse(text, "dm"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_SyzlangRoundTrip);

/// Campaign throughput; arg 0 is the program budget, arg 1 the executor
/// batch size (1 = legacy per-program kernel resets).
void
BM_FuzzThroughput(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  for (auto _ : state) {
    vkernel::Kernel kernel;
    context.BootKernel(&kernel);
    fuzzer::CampaignOptions options;
    options.seed = 42;
    options.program_budget = static_cast<int>(state.range(0));
    options.batch_size = static_cast<int>(state.range(1));
    benchmark::DoNotOptimize(fuzzer::RunCampaign(&kernel, lib, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FuzzThroughput)->Args({2000, 1})->Args({2000, 32});

/// End-to-end dispatched-call cost: replays a fixed program set (no
/// generation or mutation) through Executor::Run, so each item is one
/// syscall through the opcode switch, kernel, driver-model handler, and
/// coverage accounting — the executor's replay cost per call, not the
/// switch in isolation.
void
BM_ExecutorDispatch(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  vkernel::Kernel kernel;
  context.BootKernel(&kernel);

  util::Rng rng(7);
  fuzzer::Generator generator(&lib, &rng);
  std::vector<fuzzer::Prog> progs;
  size_t calls = 0;
  for (int i = 0; i < 64; ++i) {
    fuzzer::Prog prog = generator.Generate(6);
    if (prog.empty()) continue;
    calls += prog.calls.size();
    progs.push_back(std::move(prog));
  }

  fuzzer::Executor executor(&kernel, &lib);
  vkernel::Coverage total;
  for (auto _ : state) {
    for (const fuzzer::Prog& prog : progs) {
      benchmark::DoNotOptimize(executor.Run(prog, &total));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(calls));
}
BENCHMARK(BM_ExecutorDispatch);

/// Per-open cost of the vkernel open path: open + close of a model
/// device in steady state, where the handler pool (PR 4) serves every
/// open from its free list — zero allocations per iteration. Items =
/// open/close pairs.
void
BM_KernelOpenClose(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  vkernel::Kernel kernel;
  context.BootKernel(&kernel);
  vkernel::Coverage cov;
  vkernel::ExecContext ctx(&cov);
  for (auto _ : state) {
    // One program's open/close round trip (the fd table is per-program,
    // so BeginProgram is part of the real per-open cost).
    kernel.BeginProgram();
    long fd = kernel.Openat("/dev/mapper/control", 0, ctx).retval;
    benchmark::DoNotOptimize(fd);
    kernel.Close(fd, ctx);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelOpenClose);

/// Steady-state coverage merge: per-program coverage deltas merged into
/// an accumulated set that already contains them (the common case after
/// warmup); items = merges.
void
BM_CoverageMerge(benchmark::State& state)
{
  const int kBlocks = static_cast<int>(state.range(0));
  vkernel::Coverage delta;
  for (int i = 0; i < kBlocks; ++i) {
    delta.Hit(vkernel::MakeBlockId(0x1234abcd + (i % 13),
                                   static_cast<uint32_t>(i)));
  }
  vkernel::Coverage total;
  total.Merge(delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(total.Merge(delta));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageMerge)->Arg(256)->Arg(4096);

/// Distiller-invariant cost: CountNotIn between two mostly-overlapping
/// sets (the distilled candidate vs the merged corpus coverage), the
/// comparison CoversAll runs per distillation pass; items = calls.
void
BM_CoverageCountNotIn(benchmark::State& state)
{
  const int kBlocks = static_cast<int>(state.range(0));
  vkernel::Coverage a, b;
  for (int i = 0; i < kBlocks; ++i) {
    const uint64_t id =
        vkernel::MakeBlockId(0x1234abcd + (i % 13), static_cast<uint32_t>(i));
    a.Hit(id);
    if (i % 17 != 0) b.Hit(id);  // b misses ~6% of a: the realistic gap.
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CountNotIn(b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageCountNotIn)->Arg(256)->Arg(4096);

/// Raw Hit() cost in the executor's access pattern: runs of MakeBlockId
/// neighbours (served by the one-entry last-page cache) over a
/// steady-state set where every bit is already set; items = hits.
void
BM_CoverageHit(benchmark::State& state)
{
  vkernel::Coverage cov;
  constexpr int kBlocks = 4096;
  for (int i = 0; i < kBlocks; ++i) {
    cov.Hit(vkernel::MakeBlockId(0x1234abcd + (i % 13),
                                 static_cast<uint32_t>(i)));
  }
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cov.Hit(
        vkernel::MakeBlockId(0x1234abcd + (i % 13), i)));
    i = (i + 1) % kBlocks;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageHit);

/// Between-campaign distillation cost: one pass (dedup + batched replay
/// for signatures + greedy cover + crash minimization) over the merged
/// corpus of a fixed 4-worker campaign; items = input corpus programs, so
/// items/sec is distillation throughput per merged-corpus program.
void
BM_Distill(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  auto boot = [&context](vkernel::KernelModel* k) { context.BootKernel(k); };

  fuzzer::OrchestratorOptions options;
  options.campaign.seed = 42;
  options.campaign.program_budget = 8000;
  options.num_workers = 4;
  options.sync_interval = 200;
  std::vector<fuzzer::Prog> merged =
      fuzzer::RunShardedCampaign(lib, boot, options).corpus;

  fuzzer::Distiller distiller(&lib, boot);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distiller.Distill(merged));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(merged.size()));
}
BENCHMARK(BM_Distill);

/// Differential-oracle cost: the same deterministic corpus replayed
/// through a pre-booted single-model Executor batch (Arg 0) vs a full
/// strict-vs-permissive DiffRunner pass with minimization off (Arg 1).
/// The ns ratio between the two args is the oracle's overhead factor
/// per pass: dual execution with per-call trace comparison PLUS booting
/// both model pairs from scratch, which the runner pays once per Run()
/// and which dominates at this corpus size. Items = programs, so
/// items/sec stays comparable to BM_FuzzThroughput.
void
BM_DiffRunnerOverhead(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();

  util::Rng rng(42);
  fuzzer::Generator generator(&lib, &rng);
  std::vector<fuzzer::Prog> corpus;
  corpus.reserve(128);
  for (int i = 0; i < 128; ++i) {
    fuzzer::Prog prog = generator.Generate(6);
    if (!prog.empty()) corpus.push_back(std::move(prog));
  }

  if (state.range(0) != 0) {
    fuzzer::DiffOptions options;
    options.boot = [&context](vkernel::KernelModel* k) {
      context.BootKernel(k);
    };
    options.minimize = false;
    fuzzer::DiffRunner runner(&lib, options);
    for (auto _ : state) {
      benchmark::DoNotOptimize(runner.Run(corpus).programs);
    }
  } else {
    auto kernel = vkernel::MakeStrictModel();
    context.BootKernel(kernel.get());
    fuzzer::Executor executor(kernel.get(), &lib);
    for (auto _ : state) {
      vkernel::Coverage coverage;
      benchmark::DoNotOptimize(executor.RunBatch(corpus, &coverage).size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_DiffRunnerOverhead)->Arg(0)->Arg(1);

/// Session persistence cost: one full suite-snapshot round trip
/// (serialize coverage + crashes + corpus + reproducers + trend records,
/// then parse it back) for the distilled state of a real campaign;
/// items = corpus programs, so items/sec is snapshot throughput per
/// persisted program. Arg 0 = textual codec, Arg 1 = KGPB binary codec
/// (the PR 9 fast path). In-memory on purpose — filesystem latency would
/// drown the serialization signal on shared runners.
void
BM_SnapshotSaveLoad(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();

  fuzzer::SessionOptions options;
  options.WithSeed(42).WithRounds(2).WithProgramBudget(8000).WithWorkers(4);
  options.orchestrator.sync_interval = 200;
  fuzzer::Session session = context.MakeSession(options);
  if (!session.RegisterSuite("bench", &lib).ok() || !session.Run().ok()) {
    state.SkipWithError("session setup failed");
    return;
  }
  const fuzzer::SuiteState& st = *session.Find("bench");

  fuzzer::SuiteSnapshot snapshot;
  snapshot.name = st.name;
  snapshot.fingerprint = fuzzer::SuiteFingerprint(lib);
  snapshot.programs_executed = st.programs_executed;
  snapshot.wall_seconds = st.wall_seconds;
  snapshot.coverage = st.coverage.SortedBlocks();
  snapshot.crashes = st.crashes;
  snapshot.corpus = st.corpus;
  snapshot.crash_reproducers = st.crash_reproducers;
  snapshot.rounds = st.rounds;

  const bool binary = state.range(0) != 0;
  for (auto _ : state) {
    std::string data = binary ? fuzzer::SerializeSuiteBinary(snapshot, lib)
                              : fuzzer::SerializeSuite(snapshot, lib);
    fuzzer::SuiteSnapshot parsed;
    benchmark::DoNotOptimize(
        binary ? fuzzer::ParseSuiteBinary(data, lib, &parsed)
               : fuzzer::ParseSuite(data, lib, &parsed));
    benchmark::DoNotOptimize(parsed.corpus.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(snapshot.corpus.size()));
}
BENCHMARK(BM_SnapshotSaveLoad)->Arg(0)->Arg(1);

/// Incremental-save cost (PR 6): serializing and framing one steady-state
/// round delta ("corpus same" + new coverage blocks + crash increments +
/// one reproducer) — the journal record an incremental Session::Save
/// appends instead of rewriting the whole suite. Arg = the corpus size
/// the session carries; the record is O(delta), so ns/append must stay
/// flat as the corpus grows — that flatness is the win over the
/// O(corpus) BM_SnapshotSaveLoad path.
void
BM_SnapshotAppend(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();

  fuzzer::SessionOptions options;
  options.WithSeed(42).WithRounds(1).WithProgramBudget(4000).WithWorkers(2);
  options.orchestrator.sync_interval = 200;
  fuzzer::Session session = context.MakeSession(options);
  if (!session.RegisterSuite("bench", &lib).ok() || !session.Run().ok()) {
    state.SkipWithError("session setup failed");
    return;
  }
  const std::vector<fuzzer::Prog>& seed = session.Find("bench")->corpus;
  if (seed.empty()) {
    state.SkipWithError("empty corpus");
    return;
  }

  // The corpus the session carries — only its SIZE varies across Args;
  // the per-round delta below is identical, so any time difference
  // between Args would expose an accidental O(corpus) dependency.
  std::vector<fuzzer::Prog> corpus;
  corpus.reserve(static_cast<size_t>(state.range(0)));
  for (int64_t i = 0; i < state.range(0); ++i) {
    corpus.push_back(seed[static_cast<size_t>(i) % seed.size()]);
  }

  fuzzer::SuiteDelta delta;
  delta.report.round = 7;
  delta.report.seed = 42;
  delta.report.programs_executed = 8000;
  delta.report.cumulative_coverage = 4096;
  delta.corpus_unchanged = true;  // Steady state once distillation converges.
  for (uint64_t b = 0; b < 16; ++b) delta.new_coverage.push_back(0x1000 + b);
  delta.crash_increments["KASAN: bench"] = 3;
  delta.new_reproducers["KASAN: bench"] = seed[0];

  for (auto _ : state) {
    std::string payload = fuzzer::SerializeDelta(delta, lib);
    benchmark::DoNotOptimize(fuzzer::FrameJournalRecord(payload));
    benchmark::DoNotOptimize(corpus.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotAppend)->Arg(64)->Arg(1024);

void
BM_OrchestratorThroughput(benchmark::State& state)
{
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  for (auto _ : state) {
    fuzzer::OrchestratorOptions options;
    options.campaign.seed = 42;
    options.campaign.program_budget = 2000;
    options.num_workers = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(fuzzer::RunShardedCampaign(
        lib, [&context](vkernel::KernelModel* k) { context.BootKernel(k); },
        options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_OrchestratorThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_FullGenerationPipeline(benchmark::State& state)
{
  for (auto _ : state) {
    experiments::ContextOptions opts;
    experiments::ExperimentContext context(opts);
    benchmark::DoNotOptimize(context.modules().size());
  }
}
BENCHMARK(BM_FullGenerationPipeline)->Unit(benchmark::kMillisecond);

/// Cost of a disarmed KERNELGPT_FAULT_POINT: one relaxed atomic load and
/// a predicted-untaken branch. The robustness instrumentation threaded
/// through the IO/orchestrator hot paths must be free when no plan is
/// armed — this pins that claim at the nanosecond scale.
void
BM_FaultPointDisarmed(benchmark::State& state)
{
  util::FaultInjector::Instance().Disarm();
  uint64_t x = 0;
  for (auto _ : state) {
    KERNELGPT_FAULT_POINT("bench.disarmed",
                          util::Format("iteration=%llu",
                                       static_cast<unsigned long long>(++x)));
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultPointDisarmed);

/// Fleet-vs-bare-session round cost: the supervisor's retry loop,
/// per-round fault points, and report bookkeeping on top of the same
/// RunRound work. Arg 0 selects bare Session (0) or a 1-tenant Fleet
/// (1); the two timings should be indistinguishable, pinning that the
/// robustness layer costs nothing when nothing goes wrong.
void
BM_FleetRoundOverhead(benchmark::State& state)
{
  util::FaultInjector::Instance().Disarm();
  const auto& context = experiments::ExperimentContext::Default();
  fuzzer::SpecLibrary lib = context.SyzkallerPlusKernelGptSuite();
  auto boot = [&context](vkernel::KernelModel* k) { context.BootKernel(k); };
  fuzzer::SessionOptions options;
  options.WithSeed(42).WithProgramBudget(2000).WithWorkers(2);
  const bool fleet_mode = state.range(0) != 0;
  for (auto _ : state) {
    if (fleet_mode) {
      fuzzer::Fleet fleet(fuzzer::FleetOptions()
                              .WithTargetRounds(1)
                              .WithEnvPlan(false));
      (void)fleet.AddSession("bench", [&]() {
        auto session = std::make_unique<fuzzer::Session>(options, boot);
        (void)session->RegisterSuite("suite", &lib);
        return session;
      });
      benchmark::DoNotOptimize(fleet.Run().AllComplete());
    } else {
      fuzzer::Session session(options, boot);
      (void)session.RegisterSuite("suite", &lib);
      benchmark::DoNotOptimize(session.RunRound().ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_FleetRoundOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Campaign throughput over the stateful vnet stack alone (tcp + udp
/// ground-truth specs): each item is one fuzz program through the full
/// TCP/UDP state machines, port namespace, and transition coverage —
/// the net-stack analog of BM_FuzzThroughput.
void
BM_NetStackThroughput(benchmark::State& state)
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::SpecLibrary lib;
  lib.SetConsts(corpus.BuildIndex().BuildConstTable());
  lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("tcp")));
  lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("udp")));
  lib.Finalize();
  for (auto _ : state) {
    vkernel::Kernel kernel;
    corpus.RegisterAll(&kernel);
    fuzzer::CampaignOptions options;
    options.seed = 42;
    options.program_budget = static_cast<int>(state.range(0));
    options.batch_size = static_cast<int>(state.range(1));
    benchmark::DoNotOptimize(fuzzer::RunCampaign(&kernel, lib, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NetStackThroughput)->Args({2000, 1})->Args({2000, 32});

/// Raw state-transition cost: one full TCP lifecycle per item — create
/// the pair, bind/listen/connect/accept across the loopback, then tear
/// down through FIN_WAIT/TIME_WAIT — all eleven legal transitions with
/// no generator or executor in the loop.
void
BM_NetStateTransition(benchmark::State& state)
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  vkernel::Kernel kernel;
  corpus.RegisterAll(&kernel);
  vkernel::Coverage cov;
  const std::vector<uint8_t> addr = {2, 0, 5, 0, 0, 0, 0, 0};
  const vkernel::Buffer baddr = vkernel::Buffer::View(addr);
  kernel.BeginBatch();
  kernel.BeginProgram();
  for (auto _ : state) {
    vkernel::ExecContext ctx(&cov);
    long s = kernel.Socket(2, 1, 6, ctx).retval;
    long c = kernel.Socket(2, 1, 6, ctx).retval;
    (void)kernel.Bind(s, baddr, ctx);
    (void)kernel.Listen(s, ctx);
    (void)kernel.Connect(c, baddr, ctx);
    long a = kernel.Accept(s, ctx).retval;
    (void)kernel.Close(c, ctx);
    (void)kernel.Close(a, ctx);
    (void)kernel.Close(s, ctx);
    kernel.EndProgram(ctx);
    kernel.BeginProgram();
    benchmark::DoNotOptimize(a);
  }
  {
    vkernel::ExecContext ctx(&cov);
    kernel.EndProgram(ctx);
  }
  kernel.EndBatch();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NetStateTransition);

}  // namespace

BENCHMARK_MAIN();
