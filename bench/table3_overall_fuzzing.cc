// Reproduces Table 3: "Overall effectiveness of KernelGPT (3 rep.)" —
// 24-hour fuzzing sessions replaced by a fixed program budget on the
// virtual kernel. Reports total coverage, coverage unique vs. the plain
// Syzkaller suite, and average unique crashes.
//
// The workload runs twice: once on the serial campaign path (1 worker)
// and once on the 4-worker sharded orchestrator, and reports the
// wall-clock speedup at equal program budget. Crash-dedup semantics are
// identical on both paths (titles dedup crashes globally).
//
// Since PR 5 every Fuzz/DistillCorpus call below runs on a
// fuzzer::Session under the hood (arithmetic seed schedule, no corpus
// carry); the table's numbers are byte-identical to the pre-Session
// pipeline — that equivalence is this bench's regression surface.

#include <cstdio>

#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 60000;  // Programs per rep (stands in for 24 h).
constexpr int kReps = 3;
constexpr int kWorkers = 4;     // Orchestrator shard count.
}  // namespace

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  fuzzer::SpecLibrary syzkaller = context.SyzkallerSuite();
  fuzzer::SpecLibrary with_sd = context.SyzkallerPlusSyzDescribeSuite();
  fuzzer::SpecLibrary with_kg = context.SyzkallerPlusKernelGptSuite();

  std::printf("Table 3: Overall effectiveness (%d programs x %d reps)\n",
              kBudget, kReps);
  std::printf("(paper shape: KernelGPT > Syzkaller > SyzDescribe on Cov; "
              "KernelGPT highest Unique Cov and Crash)\n\n");

  // Serial reference (1 worker == the historical serial campaign).
  auto base = context.Fuzz(syzkaller, kBudget, kReps, 1000);
  auto sd = context.Fuzz(with_sd, kBudget, kReps, 2000);
  auto kg = context.Fuzz(with_kg, kBudget, kReps, 3000);

  util::Table table({"Suite", "#Sys", "Cov", "Unique Cov", "Crash"});
  auto row = [&](const char* label, const fuzzer::SpecLibrary& lib,
                 const experiments::ExperimentContext::FuzzSummary& summary,
                 bool is_base) {
    table.AddRow(
        {label, std::to_string(lib.syscalls().size()),
         util::WithCommas(static_cast<int64_t>(summary.avg_coverage)),
         is_base ? "-"
                 : util::WithCommas(static_cast<int64_t>(
                       summary.merged.CountNotIn(base.merged))),
         util::Fixed(summary.avg_crashes, 1)});
  };
  row("Syzkaller", syzkaller, base, true);
  row("Syzkaller + SyzDescribe", with_sd, sd, false);
  row("Syzkaller + KernelGPT", with_kg, kg, false);
  std::printf("%s\n", table.Render().c_str());

  std::printf("Coverage delta (KernelGPT - Syzkaller): %+.0f blocks; "
              "(KernelGPT - SyzDescribe): %+.0f blocks\n\n",
              kg.avg_coverage - base.avg_coverage,
              kg.avg_coverage - sd.avg_coverage);

  // -- Sharded orchestrator: same workload, kWorkers shards -----------------
  auto base_par = context.Fuzz(syzkaller, kBudget, kReps, 1000, kWorkers);
  auto sd_par = context.Fuzz(with_sd, kBudget, kReps, 2000, kWorkers);
  auto kg_par = context.Fuzz(with_kg, kBudget, kReps, 3000, kWorkers);

  const double serial_wall =
      base.wall_seconds + sd.wall_seconds + kg.wall_seconds;
  const double parallel_wall =
      base_par.wall_seconds + sd_par.wall_seconds + kg_par.wall_seconds;

  util::Table ptable({"Suite", "Serial s", "4-way s", "Speedup",
                      "Cov (4-way)", "Crash (4-way)"});
  auto prow = [&](const char* label,
                  const experiments::ExperimentContext::FuzzSummary& s,
                  const experiments::ExperimentContext::FuzzSummary& p) {
    ptable.AddRow(
        {label, util::Fixed(s.wall_seconds, 2), util::Fixed(p.wall_seconds, 2),
         util::Fixed(s.wall_seconds / (p.wall_seconds > 0 ? p.wall_seconds : 1),
                     2) +
             "x",
         util::WithCommas(static_cast<int64_t>(p.avg_coverage)),
         util::Fixed(p.avg_crashes, 1)});
  };
  std::printf("Sharded orchestrator (%d workers, equal %d-program budget):\n",
              kWorkers, kBudget);
  prow("Syzkaller", base, base_par);
  prow("Syzkaller + SyzDescribe", sd, sd_par);
  prow("Syzkaller + KernelGPT", kg, kg_par);
  std::printf("%s\n", ptable.Render().c_str());

  std::printf("Overall wall-clock: serial %.2fs, %d-worker %.2fs -> %.2fx "
              "speedup (>= 2x expected with >= 4 free cores; "
              "scheduling-independent results either way)\n",
              serial_wall, kWorkers, parallel_wall,
              serial_wall / (parallel_wall > 0 ? parallel_wall : 1));
  std::printf("Crash-dedup check: unique crash titles serial vs 4-way: "
              "%zu vs %zu (Syzkaller), %zu vs %zu (KernelGPT)\n\n",
              base.crash_titles.size(), base_par.crash_titles.size(),
              kg.crash_titles.size(), kg_par.crash_titles.size());

  // -- Corpus distillation: the between-campaign lifecycle pass -------------
  // Merged corpora grow with every epoch; the distiller prunes each one to
  // a minimal covering subset (coverage preserved exactly) and dedupes
  // crashes into one minimized reproducer per title.
  util::Table dtable({"Suite", "Merged corpus", "Distilled", "Kept %",
                      "Cov preserved", "Crash repros"});
  auto drow = [&](const char* label,
                  const fuzzer::SpecLibrary& lib,
                  const experiments::ExperimentContext::FuzzSummary& summary) {
    fuzzer::DistillResult distilled =
        context.DistillCorpus(lib, summary.corpus);
    const size_t merged_n = summary.corpus.size();
    const double kept =
        merged_n ? 100.0 * static_cast<double>(distilled.corpus.size()) /
                       static_cast<double>(merged_n)
                 : 0.0;
    dtable.AddRow({label, std::to_string(merged_n),
                   std::to_string(distilled.corpus.size()),
                   util::Fixed(kept, 1),
                   util::WithCommas(static_cast<int64_t>(
                       distilled.coverage.Count())),
                   std::to_string(distilled.crash_reproducers.size())});
  };
  std::printf("Corpus distillation (4-way merged corpora, last rep):\n");
  drow("Syzkaller", syzkaller, base_par);
  drow("Syzkaller + SyzDescribe", with_sd, sd_par);
  drow("Syzkaller + KernelGPT", with_kg, kg_par);
  std::printf("%s\n", dtable.Render().c_str());
  return 0;
}
