// Reproduces Table 3: "Overall effectiveness of KernelGPT (3 rep.)" —
// 24-hour fuzzing sessions replaced by a fixed program budget on the
// virtual kernel. Reports total coverage, coverage unique vs. the plain
// Syzkaller suite, and average unique crashes.

#include <cstdio>

#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 60000;  // Programs per rep (stands in for 24 h).
constexpr int kReps = 3;
}  // namespace

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  fuzzer::SpecLibrary syzkaller = context.SyzkallerSuite();
  fuzzer::SpecLibrary with_sd = context.SyzkallerPlusSyzDescribeSuite();
  fuzzer::SpecLibrary with_kg = context.SyzkallerPlusKernelGptSuite();

  std::printf("Table 3: Overall effectiveness (%d programs x %d reps)\n",
              kBudget, kReps);
  std::printf("(paper shape: KernelGPT > Syzkaller > SyzDescribe on Cov; "
              "KernelGPT highest Unique Cov and Crash)\n\n");

  auto base = context.Fuzz(syzkaller, kBudget, kReps, 1000);
  auto sd = context.Fuzz(with_sd, kBudget, kReps, 2000);
  auto kg = context.Fuzz(with_kg, kBudget, kReps, 3000);

  util::Table table({"Suite", "#Sys", "Cov", "Unique Cov", "Crash"});
  auto row = [&](const char* label, const fuzzer::SpecLibrary& lib,
                 const experiments::ExperimentContext::FuzzSummary& summary,
                 bool is_base) {
    table.AddRow(
        {label, std::to_string(lib.syscalls().size()),
         util::WithCommas(static_cast<int64_t>(summary.avg_coverage)),
         is_base ? "-"
                 : util::WithCommas(static_cast<int64_t>(
                       summary.merged.CountNotIn(base.merged))),
         util::Fixed(summary.avg_crashes, 1)});
  };
  row("Syzkaller", syzkaller, base, true);
  row("Syzkaller + SyzDescribe", with_sd, sd, false);
  row("Syzkaller + KernelGPT", with_kg, kg, false);
  std::printf("%s\n", table.Render().c_str());

  std::printf("Coverage delta (KernelGPT - Syzkaller): %+.0f blocks; "
              "(KernelGPT - SyzDescribe): %+.0f blocks\n",
              kg.avg_coverage - base.avg_coverage,
              kg.avg_coverage - sd.avg_coverage);
  return 0;
}
