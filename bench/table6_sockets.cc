// Reproduces Table 6: per-socket comparison — described syscalls,
// coverage, and average crashes for existing Syzkaller specs vs KernelGPT
// (SyzDescribe cannot analyze sockets).

#include <cstdio>

#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {
constexpr int kBudget = 8000;
constexpr int kReps = 3;
constexpr int kWorkers = 4;  // Sharded orchestrator workers per cell.

const char* const kSockets[] = {
    "caif", "l2tp_ip6", "llc",      "mptcp", "packet",
    "phonet", "pppol2tp", "rds",    "rfcomm", "sco",
};
}  // namespace

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  std::printf("Table 6: Socket specification generation comparison "
              "(%d programs x %d reps per cell, %d-worker orchestrator)\n",
              kBudget, kReps, kWorkers);
  std::printf("(paper shape: KernelGPT describes more syscalls and covers "
              "~19%% more blocks in total)\n\n");

  util::Table table({"Socket", "Syz #Sys", "Syz Cov", "Syz Crash",
                     "KG #Sys", "KG Cov", "KG Crash"});
  size_t syz_sys_total = 0;
  size_t kg_sys_total = 0;
  double syz_cov_total = 0;
  double kg_cov_total = 0;
  double syz_crash_total = 0;
  double kg_crash_total = 0;

  uint64_t seed = 900;
  for (const char* id : kSockets) {
    const experiments::ModuleResult* module = context.Find(id);
    if (!module) continue;

    fuzzer::SpecLibrary syz_lib = context.MakeLibrary({&module->existing});
    auto syz = context.Fuzz(syz_lib, kBudget, kReps, seed += 17, kWorkers);

    experiments::ExperimentContext::FuzzSummary kg;
    size_t kg_sys = 0;
    if (module->KernelGptUsable()) {
      fuzzer::SpecLibrary kg_lib =
          context.MakeLibrary({&module->kernelgpt.spec});
      kg = context.Fuzz(kg_lib, kBudget, kReps, seed += 17, kWorkers);
      kg_sys = kg_lib.syscalls().size();
    }

    syz_sys_total += syz_lib.syscalls().size();
    kg_sys_total += kg_sys;
    syz_cov_total += syz.avg_coverage;
    kg_cov_total += kg.avg_coverage;
    syz_crash_total += syz.avg_crashes;
    kg_crash_total += kg.avg_crashes;

    table.AddRow({id, std::to_string(syz_lib.syscalls().size()),
                  util::Fixed(syz.avg_coverage, 0),
                  util::Fixed(syz.avg_crashes, 1), std::to_string(kg_sys),
                  util::Fixed(kg.avg_coverage, 0),
                  util::Fixed(kg.avg_crashes, 1)});
  }
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(syz_sys_total),
                util::Fixed(syz_cov_total, 0),
                util::Fixed(syz_crash_total, 1),
                std::to_string(kg_sys_total), util::Fixed(kg_cov_total, 0),
                util::Fixed(kg_crash_total, 1)});
  std::printf("%s\n", table.Render().c_str());
  if (syz_cov_total > 0) {
    std::printf("KernelGPT covers %+.1f%% blocks vs Syzkaller "
                "(paper: +18.6%%)\n",
                100.0 * (kg_cov_total - syz_cov_total) / syz_cov_total);
  }
  return 0;
}
