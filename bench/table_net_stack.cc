// Experiments table: coverage and crash yield on the stateful vnet
// TCP/UDP stack vs the driver-only baseline. The net stack's crash
// surface is qualitatively different — state-machine violations rather
// than bad-argument errnos — and seeding the campaign with the
// ground-truth establish program unlocks the deep protocol states
// (ESTABLISHED through TIME_WAIT) that generation alone rarely reaches.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/orchestrator.h"
#include "util/table.h"
#include "vkernel/kernel.h"
#include "vnet/inet.h"

using namespace kernelgpt;

namespace {

constexpr int kBudget = 12000;
constexpr int kWorkers = 4;

size_t
FindCall(const fuzzer::SpecLibrary& lib, const char* full_name)
{
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    if (lib.syscalls()[i].FullName() == full_name) return i;
  }
  std::fprintf(stderr, "missing syscall %s\n", full_name);
  std::exit(1);
}

fuzzer::Arg
Scalar(uint64_t v)
{
  fuzzer::Arg a;
  a.scalar = v;
  return a;
}

fuzzer::Arg
Ref(int call)
{
  fuzzer::Arg a;
  a.kind = fuzzer::Arg::Kind::kResourceRef;
  a.ref_call = call;
  return a;
}

fuzzer::Arg
AddrBuf(uint16_t port)
{
  fuzzer::Arg a;
  a.kind = fuzzer::Arg::Kind::kBuffer;
  a.bytes = {2, 0, static_cast<uint8_t>(port & 0xff),
             static_cast<uint8_t>(port >> 8), 0, 0, 0, 0};
  return a;
}

fuzzer::Arg
Len(uint64_t v, int of_param)
{
  fuzzer::Arg a = Scalar(v);
  a.len_of_param = of_param;
  return a;
}

std::vector<fuzzer::Prog>
NetSeeds(const fuzzer::SpecLibrary& lib)
{
  const size_t sock = FindCall(lib, "socket$tcp");
  const size_t bind = FindCall(lib, "bind$tcp");
  const size_t listen = FindCall(lib, "listen$tcp");
  const size_t connect = FindCall(lib, "connect$tcp");
  const size_t accept = FindCall(lib, "accept$tcp");
  fuzzer::Prog establish;
  establish.calls = {
      fuzzer::Call{sock, {Scalar(2), Scalar(1), Scalar(6)}},
      fuzzer::Call{bind, {Ref(0), AddrBuf(5), Len(8, 1)}},
      fuzzer::Call{listen, {Ref(0), Scalar(0)}},
      fuzzer::Call{sock, {Scalar(2), Scalar(1), Scalar(6)}},
      fuzzer::Call{connect, {Ref(3), AddrBuf(5), Len(8, 1)}},
      fuzzer::Call{accept, {Ref(0), Scalar(0), Scalar(0)}},
  };
  return {establish};
}

struct CellResult {
  size_t coverage = 0;
  size_t unique_crashes = 0;
  size_t violations = 0;  ///< Unique state-machine-violation titles.
  bool deep_states = false;
};

CellResult
RunCell(const fuzzer::SpecLibrary& lib, uint64_t seed,
        std::vector<fuzzer::Prog> seeds)
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  fuzzer::OrchestratorOptions options;
  options.campaign.seed = seed;
  options.campaign.program_budget = kBudget;
  options.campaign.batch_size = 32;
  options.campaign.seed_corpus = std::move(seeds);
  options.num_workers = kWorkers;
  options.sync_interval = 256;
  fuzzer::OrchestratorResult result = fuzzer::RunShardedCampaign(
      lib, [&corpus](vkernel::KernelModel* k) { corpus.RegisterAll(k); },
      options);

  CellResult cell;
  cell.coverage = result.coverage.Count();
  cell.unique_crashes = result.crashes.size();
  for (const auto& [title, count] : result.crashes) {
    if (std::strncmp(title.c_str(), vnet::kViolationPrefix,
                     std::strlen(vnet::kViolationPrefix)) == 0) {
      ++cell.violations;
    }
  }
  const drivers::BlockLayout blocks =
      vnet::TcpBlockLayout(*corpus.FindSocket("tcp"));
  cell.deep_states =
      result.coverage.Contains(
          blocks.IdOf("trans", "SYN_SENT->ESTABLISHED", 0)) &&
      result.coverage.Contains(blocks.IdOf("trans", "FIN_WAIT2->TIME_WAIT", 0));
  return cell;
}

}  // namespace

int
main()
{
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  const syzlang::ConstTable consts = corpus.BuildIndex().BuildConstTable();

  // Driver-only baseline: the ground-truth char-device suite.
  fuzzer::SpecLibrary driver_lib;
  driver_lib.SetConsts(consts);
  for (const drivers::DeviceSpec* dev : corpus.LoadedDevices()) {
    driver_lib.Add(drivers::GroundTruthDeviceSpec(*dev));
  }
  driver_lib.Finalize();

  // Net stack: the two vnet-backed ground-truth socket specs.
  fuzzer::SpecLibrary net_lib;
  net_lib.SetConsts(consts);
  net_lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("tcp")));
  net_lib.Add(drivers::GroundTruthSocketSpec(*corpus.FindSocket("udp")));
  net_lib.Finalize();

  std::printf("Net-stack vs driver-only fuzzing yield "
              "(%d programs, %d-worker orchestrator per cell)\n\n",
              kBudget, kWorkers);

  util::Table table({"Target", "#Sys", "Coverage", "Uniq crash",
                     "State viol", "Deep TCP states"});
  const CellResult drv = RunCell(driver_lib, 1300, {});
  table.AddRow({"drivers only", std::to_string(driver_lib.syscalls().size()),
                std::to_string(drv.coverage), std::to_string(drv.unique_crashes),
                std::to_string(drv.violations), "n/a"});
  const CellResult net = RunCell(net_lib, 1400, {});
  table.AddRow({"net (generated)", std::to_string(net_lib.syscalls().size()),
                std::to_string(net.coverage), std::to_string(net.unique_crashes),
                std::to_string(net.violations),
                net.deep_states ? "reached" : "not reached"});
  const CellResult seeded = RunCell(net_lib, 1400, NetSeeds(net_lib));
  table.AddRow({"net (seeded)", std::to_string(net_lib.syscalls().size()),
                std::to_string(seeded.coverage),
                std::to_string(seeded.unique_crashes),
                std::to_string(seeded.violations),
                seeded.deep_states ? "reached" : "not reached"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("The state-machine-violation crash class exists only behind "
              "the stateful stack; seeding with the canonical establish "
              "program is what unlocks the deep ESTABLISHED/TIME_WAIT "
              "transitions.\n");
  return 0;
}
