// Reproduces Table 5: per-driver comparison of specification generation —
// number of described syscalls and coverage for Syzkaller's existing
// specs, SyzDescribe, and KernelGPT, over the paper's 30 driver rows.

#include <algorithm>
#include <cstdio>

#include "experiments/bugs.h"
#include "experiments/context.h"
#include "util/table.h"

using namespace kernelgpt;

namespace {

constexpr int kBudget = 8000;  // Per-driver budget (stands in for 6 h).
constexpr int kReps = 3;
constexpr int kWorkers = 4;    // Sharded orchestrator workers per cell.

/// Paper row label -> corpus module id ("" = not supported in Linux 6).
struct RowMap {
  const char* label;
  const char* module;
};
const RowMap kRows[] = {
    {"ashmem", ""},          {"btrfs-control", "btrfs_control"},
    {"capi20", "capi20"},    {"controlC#", "controlc0"},
    {"fd#", ""},             {"fuse", "fuse"},
    {"hpet", "hpet"},        {"i2c-#", "i2c0"},
    {"kvm", "kvm"},          {"loop-control", "loop_control"},
    {"loop#", "loop0"},      {"mISDNtimer", "misdntimer"},
    {"nbd#", "nbd0"},        {"nvram", "nvram"},
    {"ppp", "ppp"},          {"ptmx", "ptmx"},
    {"qat_adf_ctl", "qat_adf_ctl"}, {"rfkill", "rfkill"},
    {"rtc#", "rtc0"},        {"sg#", "sg0"},
    {"snapshot", "snapshot"}, {"sr#", "sr0"},
    {"timer", "timer"},      {"udmabuf", "udmabuf"},
    {"uinput", "uinput"},    {"usbmon#", "usbmon0"},
    {"vhost-net", "vhost_net"}, {"vhost-vsock", "vhost_vsock"},
    {"vmci", "vmci"},        {"vsock", "vsock"},
};

}  // namespace

int
main()
{
  const experiments::ExperimentContext& context =
      experiments::ExperimentContext::Default();

  std::printf("Table 5: Driver specification generation comparison "
              "(%d programs x %d reps per cell, %d-worker orchestrator)\n",
              kBudget, kReps, kWorkers);
  std::printf("(paper shape: KernelGPT best coverage on most rows and in "
              "total; 'Err' where SyzDescribe inferred a wrong device "
              "name)\n\n");

  util::Table table({"Driver", "Syz #Sys", "Syz Cov", "SD #Sys", "SD Cov",
                     "KG #Sys", "KG Cov"});

  struct Totals {
    size_t sys = 0;
    double cov = 0;
    int best = 0;      // Strictly ahead of both others.
    int co_best = 0;   // At least tied for the lead.
  };
  Totals syz_total;
  Totals sd_total;
  Totals kg_total;

  uint64_t seed = 500;
  for (const RowMap& row : kRows) {
    if (row.module[0] == '\0') {
      table.AddRow({row.label, "N/A", "-", "N/A", "-", "N/A", "-"});
      continue;
    }
    const experiments::ModuleResult* module = context.Find(row.module);
    if (!module) continue;

    auto eval = [&](const syzlang::SpecFile* spec,
                    bool usable) -> std::pair<size_t, double> {
      if (!spec || !usable) return {0, 0.0};
      fuzzer::SpecLibrary lib = context.MakeLibrary({spec});
      if (lib.syscalls().empty()) return {0, 0.0};
      auto summary = context.Fuzz(lib, kBudget, kReps, seed += 13, kWorkers);
      return {lib.syscalls().size(), summary.avg_coverage};
    };

    auto [syz_sys, syz_cov] = eval(&module->existing, true);
    auto [sd_sys, sd_cov] =
        eval(&module->syzdescribe.spec, module->syzdescribe.generated);
    auto [kg_sys, kg_cov] =
        eval(&module->kernelgpt.spec, module->KernelGptUsable());

    bool sd_err = module->syzdescribe.generated &&
                  !experiments::SyzDescribeEffective(context, *module);

    syz_total.sys += syz_sys;
    syz_total.cov += syz_cov;
    sd_total.sys += sd_sys;
    sd_total.cov += sd_cov;
    kg_total.sys += kg_sys;
    kg_total.cov += kg_cov;
    // Our per-driver block space is small enough that long campaigns
    // saturate it, so exact ties are common; track both strict leads and
    // co-leads (the paper's 6-hour runs never saturate, so its leads are
    // all strict).
    double top = std::max(kg_cov, std::max(syz_cov, sd_cov));
    if (top > 0) {
      if (kg_cov == top) kg_total.co_best++;
      if (syz_cov == top) syz_total.co_best++;
      if (sd_cov == top) sd_total.co_best++;
      if (kg_cov == top && syz_cov < top && sd_cov < top) kg_total.best++;
      if (syz_cov == top && kg_cov < top && sd_cov < top) syz_total.best++;
      if (sd_cov == top && kg_cov < top && syz_cov < top) sd_total.best++;
    }

    table.AddRow({row.label,
                  syz_sys ? std::to_string(syz_sys) : "-",
                  syz_sys ? util::Fixed(syz_cov, 0) : "-",
                  module->syzdescribe.generated
                      ? std::to_string(sd_sys) + (sd_err ? "*" : "")
                      : "Err",
                  module->syzdescribe.generated ? util::Fixed(sd_cov, 0)
                                                : "-",
                  std::to_string(kg_sys), util::Fixed(kg_cov, 0)});
  }
  table.AddSeparator();
  table.AddRow({"Total", std::to_string(syz_total.sys),
                util::Fixed(syz_total.cov, 0), std::to_string(sd_total.sys),
                util::Fixed(sd_total.cov, 0), std::to_string(kg_total.sys),
                util::Fixed(kg_total.cov, 0)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Rows where each tool strictly leads: Syzkaller %d, "
              "SyzDescribe %d, KernelGPT %d; co-leads (ties included): %d / "
              "%d / %d (paper: 4 / 4 / 20 strict)\n",
              syz_total.best, sd_total.best, kg_total.best,
              syz_total.co_best, sd_total.co_best, kg_total.co_best);
  std::printf("('*' marks SyzDescribe specs with a wrong device name or "
              "command values — present but ineffective)\n");
  return 0;
}
