// Unit tests for the syzlang DSL: lexer, parser, printer round-trips, and
// validator diagnostics.

#include <gtest/gtest.h>

#include "syzlang/const_table.h"
#include "syzlang/lexer.h"
#include "syzlang/parser.h"
#include "syzlang/printer.h"
#include "syzlang/validator.h"

namespace kernelgpt::syzlang {
namespace {

constexpr char kDmSpec[] = R"(
# Device mapper control interface.
resource fd_dm[fd]
dm_ioctl_flags = DM_READONLY_FLAG, DM_SUSPEND_FLAG
define DM_MAX 4096

dm_ioctl {
	version array[int32, 3]
	data_size int32
	flags flags[dm_ioctl_flags, int32]
	event_nr int32 (out)
	name array[int8, 128]
}

openat$dm(fd const[0], file ptr[in, string["/dev/mapper/control"]], flags const[2], mode const[0]) fd_dm
ioctl$DM_LIST_DEVICES(fd fd_dm, cmd const[DM_LIST_DEVICES], arg ptr[inout, dm_ioctl])
)";

ConstTable
DmConsts()
{
  ConstTable t;
  t.Define("DM_LIST_DEVICES", 3241737475ULL);
  t.Define("DM_READONLY_FLAG", 1);
  t.Define("DM_SUSPEND_FLAG", 2);
  return t;
}

TEST(LexerTest, TokenizesPunctuationAndStrings)
{
  LexResult r = Lex("ioctl$X(fd fd_dm) # comment\n");
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r.tokens.size(), 8u);
  EXPECT_EQ(r.tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(r.tokens[1].kind, TokKind::kDollar);
}

TEST(LexerTest, HexNumbers)
{
  LexResult r = Lex("x = 0xfd\n");
  bool found = false;
  for (const Token& t : r.tokens) {
    if (t.kind == TokKind::kNumber) {
      EXPECT_EQ(t.number, 0xfdu);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, UnterminatedStringReported)
{
  LexResult r = Lex("f(a ptr[in, string[\"oops]])\n");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ParsesFullSpec)
{
  ParseResult r = Parse(kDmSpec, "dm");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.spec.Syscalls().size(), 2u);
  EXPECT_EQ(r.spec.Structs().size(), 1u);
  EXPECT_EQ(r.spec.Resources().size(), 1u);
  EXPECT_EQ(r.spec.FlagSets().size(), 1u);
  EXPECT_EQ(r.spec.Defines().size(), 1u);
}

TEST(ParserTest, SyscallShape)
{
  ParseResult r = Parse(kDmSpec);
  const SyscallDef* call = r.spec.FindSyscall("ioctl$DM_LIST_DEVICES");
  ASSERT_NE(call, nullptr);
  ASSERT_EQ(call->params.size(), 3u);
  EXPECT_EQ(call->params[0].type.kind, TypeKind::kStructRef);  // Pre-resolve.
  EXPECT_EQ(call->params[1].type.kind, TypeKind::kConst);
  EXPECT_EQ(call->params[2].type.kind, TypeKind::kPtr);
  EXPECT_EQ(call->params[2].type.dir, Dir::kInOut);
}

TEST(ParserTest, OpenatReturnsResource)
{
  ParseResult r = Parse(kDmSpec);
  const SyscallDef* open = r.spec.FindSyscall("openat$dm");
  ASSERT_NE(open, nullptr);
  ASSERT_TRUE(open->returns_resource.has_value());
  EXPECT_EQ(*open->returns_resource, "fd_dm");
  // The path literal survives parsing.
  const Type& file = open->params[1].type;
  ASSERT_EQ(file.kind, TypeKind::kPtr);
  EXPECT_EQ(file.elems[0].str_literal, "/dev/mapper/control");
}

TEST(ParserTest, StructFieldsAndOutAttr)
{
  ParseResult r = Parse(kDmSpec);
  const StructDef* s = r.spec.FindStruct("dm_ioctl");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->fields.size(), 5u);
  EXPECT_EQ(s->fields[0].type.kind, TypeKind::kArray);
  EXPECT_EQ(s->fields[0].type.array_len, 3u);
  EXPECT_TRUE(s->fields[3].is_out);
  EXPECT_EQ(s->fields[2].type.kind, TypeKind::kFlags);
}

TEST(ParserTest, IntRange)
{
  ParseResult r = Parse("f$x(a int32[0:3])\n");
  ASSERT_TRUE(r.ok());
  const SyscallDef* call = r.spec.FindSyscall("f$x");
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->params[0].type.has_range);
  EXPECT_EQ(call->params[0].type.range_lo, 0);
  EXPECT_EQ(call->params[0].type.range_hi, 3);
}

TEST(ParserTest, UnionParses)
{
  ParseResult r = Parse("u [\n\ta int32\n\tb array[int8, 4]\n]\n");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  const StructDef* u = r.spec.FindStruct("u");
  ASSERT_NE(u, nullptr);
  EXPECT_TRUE(u->is_union);
  EXPECT_EQ(u->fields.size(), 2u);
}

TEST(ParserTest, ErrorRecoveryKeepsLaterDecls)
{
  ParseResult r = Parse("bogus ???\nresource fd_x[fd]\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.spec.Resources().size(), 1u);
}

TEST(PrinterTest, RoundTripsFullSpec)
{
  ParseResult first = Parse(kDmSpec, "dm");
  ASSERT_TRUE(first.ok());
  std::string printed = Print(first.spec);
  ParseResult second = Parse(printed, "dm");
  ASSERT_TRUE(second.ok()) << (second.errors.empty() ? "" : second.errors[0]);
  ASSERT_EQ(second.spec.decls.size(), first.spec.decls.size());
  for (size_t i = 0; i < first.spec.decls.size(); ++i) {
    EXPECT_EQ(PrintDecl(second.spec.decls[i]), PrintDecl(first.spec.decls[i]))
        << "decl " << i;
  }
}

TEST(PrinterTest, TypeRendering)
{
  EXPECT_EQ(PrintType(Type::Int(32)), "int32");
  EXPECT_EQ(PrintType(Type::IntRange(32, 0, 3)), "int32[0:3]");
  EXPECT_EQ(PrintType(Type::Const("DM_X")), "const[DM_X]");
  EXPECT_EQ(PrintType(Type::Ptr(Dir::kInOut, Type::StructRef("dm_ioctl"))),
            "ptr[inout, dm_ioctl]");
  EXPECT_EQ(PrintType(Type::Array(Type::Int(8))), "array[int8]");
  EXPECT_EQ(PrintType(Type::Len("devices", 32)), "len[devices]");
  EXPECT_EQ(PrintType(Type::String("/dev/msm")), "string[\"/dev/msm\"]");
}

TEST(ConstTableTest, ResolvesLiteralsAndNames)
{
  ConstTable t;
  t.Define("A", 7);
  EXPECT_EQ(t.Resolve("A"), 7u);
  EXPECT_EQ(t.Resolve("12"), 12u);
  EXPECT_EQ(t.Resolve("0x10"), 16u);
  EXPECT_FALSE(t.Resolve("MISSING").has_value());
}

TEST(ConstTableTest, MergePrefersOther)
{
  ConstTable a;
  a.Define("X", 1);
  ConstTable b;
  b.Define("X", 2);
  a.Merge(b);
  EXPECT_EQ(a.Resolve("X"), 2u);
}

TEST(ValidatorTest, CleanSpecValidates)
{
  ParseResult r = Parse(kDmSpec);
  ASSERT_TRUE(r.ok());
  ValidationResult v = Validate(r.spec, DmConsts());
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0].message);
}

TEST(ValidatorTest, UnknownConstReported)
{
  ParseResult r = Parse(
      "resource fd_x[fd]\nioctl$Y(fd fd_x, cmd const[NOT_DEFINED], arg "
      "const[0])\n");
  ASSERT_TRUE(r.ok());
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.errors[0].kind, ErrorKind::kUnknownConst);
  EXPECT_EQ(v.errors[0].subject, "NOT_DEFINED");
  EXPECT_EQ(v.errors[0].decl, "ioctl$Y");
}

TEST(ValidatorTest, UnknownTypeReported)
{
  ParseResult r = Parse(
      "resource fd_x[fd]\nioctl$Y(fd fd_x, cmd const[0], arg ptr[in, "
      "missing_struct])\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.errors[0].kind, ErrorKind::kUnknownType);
  EXPECT_EQ(v.errors[0].subject, "missing_struct");
}

TEST(ValidatorTest, BadLenTargetReported)
{
  ParseResult r = Parse("s {\n\tcount len[nothere, int32]\n\tdata int32\n}\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.errors[0].kind, ErrorKind::kBadLenTarget);
}

TEST(ValidatorTest, LenParentAllowed)
{
  ParseResult r = Parse("s {\n\tcount len[parent, int32]\n}\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  EXPECT_TRUE(v.ok());
}

TEST(ValidatorTest, MissingFdParamReported)
{
  ParseResult r = Parse("ioctl$Z(cmd const[0], arg const[0])\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& e : v.errors) {
    if (e.kind == ErrorKind::kMissingFdParam) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidatorTest, DuplicateDeclReported)
{
  ParseResult r = Parse("resource fd_x[fd]\nresource fd_x[fd]\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.errors[0].kind, ErrorKind::kDuplicateDecl);
}

TEST(ValidatorTest, RecursiveStructReported)
{
  ParseResult r = Parse("a {\n\tnext a\n}\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  bool found = false;
  for (const auto& e : v.errors) {
    if (e.kind == ErrorKind::kRecursiveStruct) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidatorTest, PtrIndirectionBreaksRecursion)
{
  ParseResult r = Parse("a {\n\tnext ptr[in, a]\n\tv int32\n}\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  for (const auto& e : v.errors) {
    EXPECT_NE(e.kind, ErrorKind::kRecursiveStruct) << e.message;
  }
}

TEST(ValidatorTest, UnknownSyscallReported)
{
  ParseResult r = Parse("frobnicate$x(a const[0])\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.errors[0].kind, ErrorKind::kUnknownSyscall);
}

TEST(ValidatorTest, ExternalDeclsResolve)
{
  ParseResult base = Parse("resource fd_dm[fd]\ns {\n\tv int32\n}\n");
  ParseResult uses = Parse(
      "ioctl$U(fd fd_dm, cmd const[1], arg ptr[in, s])\n");
  ValidationResult v = Validate(uses.spec, ConstTable(), &base.spec);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0].message);
}

TEST(ValidatorTest, ErroredDeclsDeduplicates)
{
  ParseResult r = Parse(
      "resource fd_x[fd]\n"
      "ioctl$Y(fd fd_x, cmd const[A], arg ptr[in, m1])\n");
  ValidationResult v = Validate(r.spec, ConstTable());
  auto decls = v.ErroredDecls();
  EXPECT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0], "ioctl$Y");
  EXPECT_GE(v.ForDecl("ioctl$Y").size(), 2u);
}

}  // namespace
}  // namespace kernelgpt::syzlang
