// Unit tests for the util module: RNG determinism, string helpers, table
// rendering, and histograms.

#include <gtest/gtest.h>

#include <set>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace kernelgpt::util {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowRespectsBound)
{
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowZeroReturnsZero)
{
  Rng rng(7);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, RangeInclusive)
{
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values occur.
}

TEST(RngTest, ChanceExtremes)
{
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability)
{
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(RngTest, WeightedPickHonorsWeights)
{
  Rng rng(17);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedPick(weights), 1u);
  }
}

TEST(RngTest, WeightedPickEmptyReturnsZero)
{
  Rng rng(17);
  EXPECT_EQ(rng.WeightedPick({}), 0u);
}

TEST(RngTest, ForkDecorrelates)
{
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(StableHashTest, StableAcrossCalls)
{
  EXPECT_EQ(StableHash(std::string("dm")), StableHash(std::string("dm")));
  EXPECT_NE(StableHash(std::string("dm")), StableHash(std::string("cec")));
}

TEST(StringsTest, SplitPreservesEmptyFields)
{
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty)
{
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, TrimBothEnds)
{
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsContains)
{
  EXPECT_TRUE(StartsWith("openat$dm", "openat"));
  EXPECT_FALSE(StartsWith("op", "openat"));
  EXPECT_TRUE(EndsWith("_ctl_fops", "fops"));
  EXPECT_TRUE(Contains("unlocked_ioctl = dm_ctl_ioctl", "dm_ctl_ioctl"));
}

TEST(StringsTest, ReplaceAll)
{
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringsTest, FormatBasics)
{
  EXPECT_EQ(Format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(Format("%%"), "%");
}

TEST(StringsTest, IndentMultiline)
{
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");  // Blank lines unpadded.
}

TEST(StringsTest, ApproxTokenCountScalesWithLength)
{
  size_t small = ApproxTokenCount("int x;");
  size_t large = ApproxTokenCount(std::string(4000, 'a'));
  EXPECT_LT(small, 10u);
  EXPECT_GE(large, 900u);
}

TEST(TableTest, RendersAlignedColumns)
{
  Table t({"Name", "Cov"});
  t.AddRow({"dm", "123"});
  t.AddRow({"longer-name", "4"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TableTest, SeparatorNotCountedAsRow)
{
  Table t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TableTest, WithCommas)
{
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(204923), "204,923");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

TEST(TableTest, FixedDigits)
{
  EXPECT_EQ(Fixed(16.049, 1), "16.0");
  EXPECT_EQ(Fixed(2.5, 2), "2.50");
}

TEST(HistogramTest, BucketsAndClamping)
{
  Histogram h(0, 100, 4);
  h.Add(10);   // Bucket 0.
  h.Add(30);   // Bucket 1.
  h.Add(99);   // Bucket 3.
  h.Add(150);  // Clamped to bucket 3.
  h.Add(-5);   // Clamped to bucket 0.
  EXPECT_EQ(h.BucketCount(size_t{0}), 2u);
  EXPECT_EQ(h.BucketCount(size_t{1}), 1u);
  EXPECT_EQ(h.BucketCount(size_t{2}), 0u);
  EXPECT_EQ(h.BucketCount(size_t{3}), 2u);
  EXPECT_EQ(h.TotalCount(), 5u);
}

TEST(HistogramTest, AsciiRenderHasOneLinePerBucket)
{
  Histogram h(0, 10, 5);
  h.Add(1);
  std::string out = h.RenderAscii();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

}  // namespace
}  // namespace kernelgpt::util
