// Unit tests for the util module: RNG determinism, string helpers, table
// rendering, histograms, fault injection, and retry/backoff.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "util/fault.h"
#include "util/fileio.h"
#include "util/histogram.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace kernelgpt::util {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowRespectsBound)
{
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowZeroReturnsZero)
{
  Rng rng(7);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, RangeInclusive)
{
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values occur.
}

TEST(RngTest, ChanceExtremes)
{
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability)
{
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(RngTest, WeightedPickHonorsWeights)
{
  Rng rng(17);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedPick(weights), 1u);
  }
}

TEST(RngTest, WeightedPickEmptyReturnsZero)
{
  Rng rng(17);
  EXPECT_EQ(rng.WeightedPick({}), 0u);
}

TEST(RngTest, ForkDecorrelates)
{
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(StableHashTest, StableAcrossCalls)
{
  EXPECT_EQ(StableHash(std::string("dm")), StableHash(std::string("dm")));
  EXPECT_NE(StableHash(std::string("dm")), StableHash(std::string("cec")));
}

TEST(StringsTest, SplitPreservesEmptyFields)
{
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty)
{
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, TrimBothEnds)
{
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsContains)
{
  EXPECT_TRUE(StartsWith("openat$dm", "openat"));
  EXPECT_FALSE(StartsWith("op", "openat"));
  EXPECT_TRUE(EndsWith("_ctl_fops", "fops"));
  EXPECT_TRUE(Contains("unlocked_ioctl = dm_ctl_ioctl", "dm_ctl_ioctl"));
}

TEST(StringsTest, ReplaceAll)
{
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringsTest, FormatBasics)
{
  EXPECT_EQ(Format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(Format("%%"), "%");
}

TEST(StringsTest, IndentMultiline)
{
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");  // Blank lines unpadded.
}

TEST(StringsTest, ApproxTokenCountScalesWithLength)
{
  size_t small = ApproxTokenCount("int x;");
  size_t large = ApproxTokenCount(std::string(4000, 'a'));
  EXPECT_LT(small, 10u);
  EXPECT_GE(large, 900u);
}

TEST(TableTest, RendersAlignedColumns)
{
  Table t({"Name", "Cov"});
  t.AddRow({"dm", "123"});
  t.AddRow({"longer-name", "4"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TableTest, SeparatorNotCountedAsRow)
{
  Table t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TableTest, WithCommas)
{
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(204923), "204,923");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

TEST(TableTest, FixedDigits)
{
  EXPECT_EQ(Fixed(16.049, 1), "16.0");
  EXPECT_EQ(Fixed(2.5, 2), "2.50");
}

TEST(HistogramTest, BucketsAndClamping)
{
  Histogram h(0, 100, 4);
  h.Add(10);   // Bucket 0.
  h.Add(30);   // Bucket 1.
  h.Add(99);   // Bucket 3.
  h.Add(150);  // Clamped to bucket 3.
  h.Add(-5);   // Clamped to bucket 0.
  EXPECT_EQ(h.BucketCount(size_t{0}), 2u);
  EXPECT_EQ(h.BucketCount(size_t{1}), 1u);
  EXPECT_EQ(h.BucketCount(size_t{2}), 0u);
  EXPECT_EQ(h.BucketCount(size_t{3}), 2u);
  EXPECT_EQ(h.TotalCount(), 5u);
}

TEST(HistogramTest, AsciiRenderHasOneLinePerBucket)
{
  Histogram h(0, 10, 5);
  h.Add(1);
  std::string out = h.RenderAscii();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

/// Disarms the process-wide injector when a test scope ends, so an armed
/// plan can never leak into a later test.
struct ScopedDisarm {
  ~ScopedDisarm() { FaultInjector::Instance().Disarm(); }
};

TEST(FaultTest, ParsesFullGrammar)
{
  FaultPlan plan;
  ASSERT_TRUE(FaultInjector::ParsePlan(
                  "seed=42;"
                  "site=fileio.append,kind=errno,errno=ENOSPC,nth=2,times=3,"
                  "match=tenant_a,msg=disk full;"
                  "site=orchestrator.worker,kind=crash,p=0.25",
                  &plan)
                  .ok());
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].site, "fileio.append");
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kErrno);
  EXPECT_EQ(plan.rules[0].error_number, ENOSPC);
  EXPECT_EQ(plan.rules[0].nth, 2);
  EXPECT_EQ(plan.rules[0].times, 3);
  EXPECT_EQ(plan.rules[0].match, "tenant_a");
  EXPECT_EQ(plan.rules[0].message, "disk full");
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.25);
  // Numeric errno round-trips too.
  ASSERT_TRUE(FaultInjector::ParsePlan("site=x,kind=errno,errno=28", &plan)
                  .ok());
  EXPECT_EQ(plan.rules[0].error_number, 28);
}

TEST(FaultTest, RejectsMalformedPlans)
{
  FaultPlan plan;
  EXPECT_FALSE(FaultInjector::ParsePlan("kind=throw", &plan).ok());
  EXPECT_FALSE(FaultInjector::ParsePlan("site=x,kind=meteor", &plan).ok());
  EXPECT_FALSE(FaultInjector::ParsePlan("site=x,errno=EWHAT", &plan).ok());
  EXPECT_FALSE(FaultInjector::ParsePlan("site=x,nth=0", &plan).ok());
  EXPECT_FALSE(FaultInjector::ParsePlan("site=x,volume=11", &plan).ok());
  EXPECT_FALSE(FaultInjector::ParsePlan("site=x,kindthrow", &plan).ok());
}

TEST(FaultTest, NthTimesWindowFiresDeterministically)
{
  ScopedDisarm guard;
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.ArmFromSpec("site=test.site,nth=2,times=2").ok());
  int thrown = 0;
  for (int call = 1; call <= 5; ++call) {
    try {
      injector.Hit("test.site");
    } catch (const InjectedFault&) {
      ++thrown;
      EXPECT_TRUE(call == 2 || call == 3) << "fired on call " << call;
    }
  }
  EXPECT_EQ(thrown, 2);
  EXPECT_EQ(injector.FiredCount("test.site"), 2u);
  EXPECT_EQ(injector.TotalFired(), 2u);
}

TEST(FaultTest, MatchScopesTheCallStream)
{
  ScopedDisarm guard;
  FaultInjector& injector = FaultInjector::Instance();
  // nth=2 counts only calls whose detail contains "tenant_a": unrelated
  // call streams (other tenants, other threads) never advance the rule.
  ASSERT_TRUE(
      injector.ArmFromSpec("site=test.site,match=tenant_a,nth=2").ok());
  EXPECT_NO_THROW(injector.Hit("test.site", "tenant_b/save"));
  EXPECT_NO_THROW(injector.Hit("test.site", "tenant_a/save"));  // match #1
  EXPECT_NO_THROW(injector.Hit("test.site", "tenant_b/save"));
  EXPECT_THROW(injector.Hit("test.site", "tenant_a/save"),  // match #2
               InjectedFault);
}

TEST(FaultTest, CrashIsNotAFault)
{
  ScopedDisarm guard;
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.ArmFromSpec("site=test.site,kind=crash,times=-1").ok());
  // A supervisor must be able to distinguish "the worker failed" (retry
  // in place) from "the process died" (rebuild + resume): InjectedCrash
  // is deliberately not an InjectedFault.
  try {
    injector.Hit("test.site");
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedFault&) {
    FAIL() << "InjectedCrash must not be catchable as InjectedFault";
  } catch (const InjectedCrash& crash) {
    EXPECT_NE(std::string(crash.what()).find("test.site"), std::string::npos);
  }
}

TEST(FaultTest, HitStatusCarriesInjectedErrno)
{
  ScopedDisarm guard;
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(
      injector.ArmFromSpec("site=io.site,kind=errno,errno=ENOSPC").ok());
  int fired_errno = 0;
  Status status = injector.HitStatus("io.site", "some/path", &fired_errno);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(fired_errno, ENOSPC);
  EXPECT_NE(status.message().find("ENOSPC"), std::string::npos);
  // Second call: the rule's nth=1,times=1 window is spent.
  EXPECT_TRUE(injector.HitStatus("io.site", "some/path").ok());
}

TEST(FaultTest, DisarmedHitIsANoop)
{
  FaultInjector::Instance().Disarm();
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_NO_THROW(FaultInjector::Instance().Hit("any.site", "detail"));
  EXPECT_TRUE(FaultInjector::Instance().HitStatus("any.site").ok());
}

TEST(FaultTest, ArmsFromEnvironmentSpec)
{
  ScopedDisarm guard;
  ::setenv("KERNELGPT_FAULT_PLAN", "site=env.site,kind=status", 1);
  EXPECT_TRUE(FaultInjector::Instance().ArmFromEnvIfPresent());
  EXPECT_TRUE(FaultInjector::Armed());
  Status status = FaultInjector::Instance().HitStatus("env.site");
  EXPECT_FALSE(status.ok());
  ::unsetenv("KERNELGPT_FAULT_PLAN");
}

TEST(FaultTest, ErrnoNamesCoverTheIoClasses)
{
  EXPECT_STREQ(ErrnoName(ENOSPC), "ENOSPC");
  EXPECT_STREQ(ErrnoName(EIO), "EIO");
  EXPECT_STREQ(ErrnoName(EACCES), "EACCES");
  EXPECT_STREQ(ErrnoName(12345), "");
}

TEST(FaultTest, InjectedErrnoReadsLikeARealSyscallFailure)
{
  ScopedDisarm guard;
  ASSERT_TRUE(FaultInjector::Instance()
                  .ArmFromSpec("site=fileio.append,kind=errno,errno=ENOSPC")
                  .ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "kernelgpt_fault_probe.log")
          .string();
  Status status = AppendFileDurable(path, "x");
  ASSERT_FALSE(status.ok());
  // Routed through the same ErrnoStatus mapping as a real failure: the
  // message names the errno class, the path, and the strerror text.
  EXPECT_NE(status.message().find("ENOSPC"), std::string::npos);
  EXPECT_NE(status.message().find(path), std::string::npos);
  EXPECT_NE(status.message().find("No space left"), std::string::npos);
  // Distinguishable classes: EACCES reads differently from ENOSPC.
  ASSERT_TRUE(FaultInjector::Instance()
                  .ArmFromSpec("site=fileio.read,kind=errno,errno=EACCES")
                  .ok());
  std::string text;
  status = ReadFileToString(path, &text);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("EACCES"), std::string::npos);
  EXPECT_EQ(status.message().find("ENOSPC"), std::string::npos);
}

TEST(RetryTest, DelayDoublesAndClamps)
{
  RetryPolicy policy;
  policy.base_delay_ms = 10;
  policy.max_delay_ms = 50;
  EXPECT_DOUBLE_EQ(policy.DelayMs(0, "k"), 10);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1, "k"), 20);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2, "k"), 40);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3, "k"), 50);  // clamped
  EXPECT_DOUBLE_EQ(policy.DelayMs(30, "k"), 50);
}

TEST(RetryTest, JitterIsSeededAndBounded)
{
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 100;
  policy.jitter = 0.5;
  policy.seed = 7;
  const double a = policy.DelayMs(0, "alpha");
  const double b = policy.DelayMs(0, "beta");
  // Deterministic: same (policy, retry, key) -> same delay.
  EXPECT_DOUBLE_EQ(a, policy.DelayMs(0, "alpha"));
  // Jitter scales into [1 - jitter, 1] of the nominal delay.
  EXPECT_GE(a, 50.0);
  EXPECT_LE(a, 100.0);
  EXPECT_GE(b, 50.0);
  EXPECT_LE(b, 100.0);
  // Distinct keys decorrelate.
  EXPECT_NE(a, b);
}

TEST(RetryTest, RunWithRetryCountsAttemptsAndBackoff)
{
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_delay_ms = 1;
  int calls = 0;
  RetryResult r = RunWithRetry(policy, "k", [&](int attempt) {
    EXPECT_EQ(attempt, calls);
    ++calls;
    return calls < 3 ? Status::Error("transient") : Status::Ok();
  });
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.retries, 2);
  EXPECT_DOUBLE_EQ(r.backoff_ms, 1 + 2);  // retries 0 and 1

  calls = 0;
  r = RunWithRetry(policy, "k", [&](int) {
    ++calls;
    return Status::Error("permanent");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 4);  // 1 + max_retries, no attempt after the last
  EXPECT_EQ(r.attempts, 4);
  EXPECT_EQ(r.retries, 3);
}

}  // namespace
}  // namespace kernelgpt::util
