// Tests for the KernelGPT pipeline and the SyzDescribe baseline: spec
// shape, dependency discovery, validation/repair, ablation modes, and the
// baseline's documented failure modes.

#include <gtest/gtest.h>

#include "baseline/syz_describe.h"
#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "extractor/handler_finder.h"
#include "llm/registry.h"
#include "spec_gen/kernelgpt.h"
#include "syzlang/printer.h"
#include "syzlang/validator.h"
#include "util/strings.h"

namespace kernelgpt::spec_gen {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ksrc::DefinitionIndex(
        drivers::Corpus::Instance().BuildIndex());
    handlers_ = new std::vector<extractor::DriverHandler>(
        extractor::FindDriverHandlers(*index_));
    sockets_ = new std::vector<extractor::SocketHandler>(
        extractor::FindSocketHandlers(*index_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete handlers_;
    delete sockets_;
    index_ = nullptr;
    handlers_ = nullptr;
    sockets_ = nullptr;
  }

  static const extractor::DriverHandler& Handler(const std::string& id) {
    for (const auto& h : *handlers_) {
      if (h.file_path == "drivers/" + id + ".c" &&
          h.reg != extractor::RegKind::kUnreferenced) {
        return h;
      }
    }
    static extractor::DriverHandler none;
    return none;
  }

  static HandlerGeneration Generate(const std::string& id,
                                    Options options = {}) {
    llm::TokenMeter meter;
    KernelGpt generator(index_, options, &meter);
    return generator.GenerateForDriver(Handler(id));
  }

  static ksrc::DefinitionIndex* index_;
  static std::vector<extractor::DriverHandler>* handlers_;
  static std::vector<extractor::SocketHandler>* sockets_;
};

ksrc::DefinitionIndex* PipelineTest::index_ = nullptr;
std::vector<extractor::DriverHandler>* PipelineTest::handlers_ = nullptr;
std::vector<extractor::SocketHandler>* PipelineTest::sockets_ = nullptr;

TEST(ModuleIdTest, FromPath)
{
  EXPECT_EQ(ModuleIdFromPath("drivers/dm.c"), "dm");
  EXPECT_EQ(ModuleIdFromPath("net/rds.c"), "rds");
  EXPECT_EQ(ModuleIdFromPath("plain"), "plain");
}

TEST_F(PipelineTest, DmSpecCorrectNameAndCommands)
{
  HandlerGeneration gen = Generate("dm");
  ASSERT_NE(gen.status, GenStatus::kFailed);
  const syzlang::SyscallDef* open = gen.spec.FindSyscall("openat$dm");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->params[1].type.elems[0].str_literal, "/dev/mapper/control");
  // All 8 dm commands described, with full (not NR) command macros.
  EXPECT_NE(gen.spec.FindSyscall("ioctl$DM_LIST_DEVICES"), nullptr);
  EXPECT_NE(gen.spec.FindSyscall("ioctl$DM_TABLE_STATUS"), nullptr);
  EXPECT_EQ(gen.spec.Syscalls().size(), 9u);
}

TEST_F(PipelineTest, KvmDependenciesDiscovered)
{
  HandlerGeneration gen = Generate("kvm");
  ASSERT_NE(gen.status, GenStatus::kFailed);
  const syzlang::SyscallDef* create =
      gen.spec.FindSyscall("ioctl$KVM_CREATE_VM");
  ASSERT_NE(create, nullptr);
  ASSERT_TRUE(create->returns_resource.has_value());
  EXPECT_NE(gen.spec.FindResource(*create->returns_resource), nullptr);
  // vcpu commands hang off the vm resource chain.
  EXPECT_NE(gen.spec.FindSyscall("ioctl$KVM_RUN"), nullptr);
}

TEST_F(PipelineTest, GeneratedSpecsValidate)
{
  syzlang::ConstTable consts = index_->BuildConstTable();
  for (const char* id : {"dm", "cec", "kvm", "ubi", "dvb", "uvc"}) {
    HandlerGeneration gen = Generate(id);
    ASSERT_NE(gen.status, GenStatus::kFailed) << id;
    syzlang::ValidationResult v = syzlang::Validate(gen.spec, consts);
    EXPECT_TRUE(v.ok()) << id << ": "
                        << (v.errors.empty() ? "" : v.errors[0].message);
  }
}

TEST_F(PipelineTest, RepairFixesInjectedFlaws)
{
  // Across the corpus some handlers must need repair; after the pipeline
  // their specs validate.
  int repaired = 0;
  for (const auto& dev : drivers::Corpus::Instance().LoadedDevices()) {
    HandlerGeneration gen = Generate(dev->id);
    if (gen.status == GenStatus::kRepaired) {
      ++repaired;
      EXPECT_FALSE(gen.initial_errors.empty()) << dev->id;
      EXPECT_TRUE(gen.remaining_errors.empty()) << dev->id;
    }
  }
  EXPECT_GE(repaired, 3);
}

TEST_F(PipelineTest, DeterministicAcrossRuns)
{
  HandlerGeneration a = Generate("cec");
  HandlerGeneration b = Generate("cec");
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.SyscallCount(), b.SyscallCount());
  EXPECT_EQ(syzlang::Print(a.spec), syzlang::Print(b.spec));
}

TEST_F(PipelineTest, RegistryBackendIsByteIdenticalToLegacyPath)
{
  // The refactor's parity contract: generation through
  // BackendRegistry::Create("gpt-4") must be byte-identical — specs and
  // token totals — to the pre-registry AnalysisEngine pipeline (the
  // compat constructor that owns a SimulatedBackend).
  for (const auto& dev : drivers::Corpus::Instance().LoadedDevices()) {
    llm::TokenMeter legacy_meter;
    KernelGpt legacy(index_, Options{}, &legacy_meter);
    HandlerGeneration a = legacy.GenerateForDriver(Handler(dev->id));

    llm::TokenMeter registry_meter;
    std::unique_ptr<llm::Backend> backend =
        llm::BackendRegistry::Default().Create("gpt-4", index_,
                                               &registry_meter);
    ASSERT_NE(backend, nullptr);
    KernelGpt modern(index_, Options{}, backend.get());
    HandlerGeneration b = modern.GenerateForDriver(Handler(dev->id));

    EXPECT_EQ(a.status, b.status) << dev->id;
    EXPECT_EQ(syzlang::Print(a.spec), syzlang::Print(b.spec)) << dev->id;
    EXPECT_EQ(legacy_meter.query_count(), registry_meter.query_count())
        << dev->id;
    EXPECT_EQ(legacy_meter.total_input_tokens(),
              registry_meter.total_input_tokens())
        << dev->id;
    EXPECT_EQ(legacy_meter.total_output_tokens(),
              registry_meter.total_output_tokens())
        << dev->id;
  }
}

TEST_F(PipelineTest, AllInOneAblationShrinksOutput)
{
  Options all_in_one;
  all_in_one.iterative = false;
  all_in_one.profile.context_tokens = 1200;
  HandlerGeneration iter = Generate("kvm");
  HandlerGeneration single = Generate("kvm", all_in_one);
  EXPECT_LT(single.SyscallCount(), iter.SyscallCount());
}

TEST_F(PipelineTest, Gpt35DescribesFewerSyscalls)
{
  Options weak;
  weak.profile = llm::Gpt35();
  size_t strong_total = 0;
  size_t weak_total = 0;
  for (const char* id : {"dm", "kvm", "ppp", "sg0"}) {
    strong_total += Generate(id).SyscallCount();
    weak_total += Generate(id, weak).SyscallCount();
  }
  EXPECT_LT(weak_total, strong_total);
}

TEST_F(PipelineTest, SocketGenerationShape)
{
  llm::TokenMeter meter;
  KernelGpt generator(index_, Options{}, &meter);
  for (const auto& h : *sockets_) {
    if (h.file_path != "net/rds.c") continue;
    HandlerGeneration gen = generator.GenerateForSocket(h);
    ASSERT_NE(gen.status, GenStatus::kFailed);
    EXPECT_NE(gen.spec.FindSyscall("socket$rds"), nullptr);
    EXPECT_NE(gen.spec.FindSyscall("sendto$rds"), nullptr);
    EXPECT_NE(gen.spec.FindSyscall("setsockopt$rds_RDS_RECVERR"), nullptr);
    const syzlang::SyscallDef* sock = gen.spec.FindSyscall("socket$rds");
    EXPECT_EQ(sock->params[0].type.const_name, "AF_RDS");
    EXPECT_EQ(sock->params[1].type.const_name, "SOCK_SEQPACKET");
  }
}

// ---------------------------------------------------------------------------
// SyzDescribe baseline behaviour
// ---------------------------------------------------------------------------

class BaselineTest : public PipelineTest {};

TEST_F(BaselineTest, WrongNameForNodenameDrivers)
{
  baseline::SyzDescribe sd(index_);
  baseline::SyzDescribeResult result = sd.GenerateForDriver(Handler("dm"));
  ASSERT_TRUE(result.generated);
  bool wrong_name = false;
  for (const auto* call : result.spec.Syscalls()) {
    if (call->name != "openat") continue;
    wrong_name =
        call->params[1].type.elems[0].str_literal == "/dev/device-mapper";
  }
  EXPECT_TRUE(wrong_name);
}

TEST_F(BaselineTest, RawNrCommandsForModifiedDispatch)
{
  baseline::SyzDescribe sd(index_);
  baseline::SyzDescribeResult result = sd.GenerateForDriver(Handler("dm"));
  ASSERT_TRUE(result.generated);
  syzlang::ConstTable consts = index_->BuildConstTable();
  const drivers::DeviceSpec* dm =
      drivers::Corpus::Instance().FindDevice("dm");
  // None of the baseline's cmd constants equals a true command value.
  for (const auto* call : result.spec.Syscalls()) {
    if (call->name != "ioctl") continue;
    uint64_t value =
        consts.Resolve(call->params[1].type.const_name).value_or(0);
    for (const auto& cmd : dm->primary.ioctls) {
      EXPECT_NE(value, drivers::FullCommandValue(*dm, cmd))
          << call->FullName();
    }
  }
}

TEST_F(BaselineTest, TableDispatchYieldsNothing)
{
  baseline::SyzDescribe sd(index_);
  baseline::SyzDescribeResult result = sd.GenerateForDriver(Handler("ubi"));
  EXPECT_FALSE(result.generated);
}

TEST_F(BaselineTest, DirectDriversAreDescribedCorrectly)
{
  baseline::SyzDescribe sd(index_);
  baseline::SyzDescribeResult result =
      sd.GenerateForDriver(Handler("capi20"));
  ASSERT_TRUE(result.generated);
  EXPECT_GT(result.syscall_count, 13u);  // Duplicates inflate the count.
  // Machine-generated names, per the paper's readability complaint.
  bool machine_named = false;
  for (const auto* call : result.spec.Syscalls()) {
    if (call->name == "openat" &&
        call->variant.find_first_not_of("0123456789") == std::string::npos) {
      machine_named = true;
    }
  }
  EXPECT_TRUE(machine_named);
}

TEST_F(BaselineTest, DuplicateDescriptionsEmitted)
{
  baseline::SyzDescribe sd(index_);
  baseline::SyzDescribeResult result =
      sd.GenerateForDriver(Handler("capi20"));
  ASSERT_TRUE(result.generated);
  // Each struct-carrying ioctl appears twice (typed + byte-array).
  size_t ioctls = 0;
  for (const auto* call : result.spec.Syscalls()) {
    if (call->name == "ioctl") ++ioctls;
  }
  EXPECT_GT(ioctls, 13u);
}

}  // namespace
}  // namespace kernelgpt::spec_gen
