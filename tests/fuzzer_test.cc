// Tests for the fuzzer substrate: spec library resolution, argument
// generation (semantic values, len linkage, resources), mutation
// invariants, execution, and campaign behaviour.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "drivers/model_runtime.h"
#include "drivers/model_spec.h"
#include "fuzzer/campaign.h"
#include "fuzzer/minimizer.h"
#include "syzlang/parser.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class FuzzerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  static SpecLibrary DmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
    lib.Finalize();
    return lib;
  }

  static SpecLibrary KvmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("kvm")));
    lib.Finalize();
    return lib;
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* FuzzerTest::consts_ = nullptr;

TEST_F(FuzzerTest, LibraryResolvesConstsAndProducers)
{
  SpecLibrary lib = DmLibrary();
  EXPECT_EQ(lib.syscalls().size(), 9u);
  EXPECT_NE(lib.ResolveConst("DM_LIST_DEVICES"), 0u);
  EXPECT_EQ(lib.ResolveConst("42"), 42u);
  EXPECT_FALSE(lib.ProducersOf("fd_dm").empty());
  EXPECT_TRUE(lib.ProducersOf("no_such_resource").empty());
  EXPECT_TRUE(lib.HasResource("fd_dm"));
}

TEST_F(FuzzerTest, StructSizeMatchesModelLayout)
{
  SpecLibrary lib = DmLibrary();
  const syzlang::StructDef* s = lib.FindStruct("dm_ioctl");
  ASSERT_NE(s, nullptr);
  const drivers::DeviceSpec* dm = Corpus::Instance().FindDevice("dm");
  EXPECT_EQ(lib.StructSize(*s),
            drivers::StructByteSize("dm_ioctl", dm->structs));
}

TEST_F(FuzzerTest, GeneratorSatisfiesResourceDependencies)
{
  SpecLibrary lib = DmLibrary();
  util::Rng rng(7);
  Generator generator(&lib, &rng);
  for (int i = 0; i < 50; ++i) {
    Prog prog = generator.Generate(5);
    for (size_t c = 0; c < prog.calls.size(); ++c) {
      const auto& def = lib.syscalls()[prog.calls[c].syscall_index];
      for (size_t a = 0; a < prog.calls[c].args.size(); ++a) {
        const Arg& arg = prog.calls[c].args[a];
        if (arg.kind != Arg::Kind::kResourceRef) continue;
        if (arg.ref_call < 0) continue;
        // References must point backwards to a producer of the resource.
        ASSERT_LT(static_cast<size_t>(arg.ref_call), c) << def.FullName();
        const auto& producer =
            lib.syscalls()[prog.calls[static_cast<size_t>(arg.ref_call)]
                               .syscall_index];
        EXPECT_TRUE(producer.returns_resource.has_value());
      }
    }
  }
}

TEST_F(FuzzerTest, LenFieldsLinkedToBufferSizes)
{
  SpecLibrary lib = DmLibrary();
  // A synthetic call with an explicit len parameter.
  syzlang::ParseResult parsed = syzlang::Parse(
      "resource fd_t[fd]\n"
      "write$t(fd fd_t, buf ptr[in, array[int8]], len len[buf, int64])\n");
  ASSERT_TRUE(parsed.ok());
  SpecLibrary lib2;
  lib2.Add(parsed.spec);
  lib2.Finalize();
  util::Rng rng(3);
  Generator generator(&lib2, &rng);
  for (int i = 0; i < 20; ++i) {
    Prog prog;
    // write$t is index 0.
    generator.AppendCall(&prog, 0);
    const Call& call = prog.calls.back();
    ASSERT_EQ(call.args.size(), 3u);
    EXPECT_EQ(call.args[2].scalar, call.args[1].bytes.size());
  }
}

TEST_F(FuzzerTest, ScalarGenerationHonorsRangesAndConsts)
{
  SpecLibrary lib = DmLibrary();
  util::Rng rng(11);
  Generator generator(&lib, &rng);
  syzlang::Type range = syzlang::Type::IntRange(32, 3, 9);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = generator.ScalarFor(range);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
  syzlang::Type konst = syzlang::Type::Const("DM_LIST_DEVICES");
  EXPECT_EQ(generator.ScalarFor(konst), lib.ResolveConst("DM_LIST_DEVICES"));
}

TEST_F(FuzzerTest, ScalarGenerationHitsSpecialValues)
{
  SpecLibrary lib = DmLibrary();
  util::Rng rng(13);
  Generator generator(&lib, &rng);
  syzlang::Type plain = syzlang::Type::Int(32);
  bool saw_zero = false;
  bool saw_max = false;
  for (int i = 0; i < 300; ++i) {
    uint64_t v = generator.ScalarFor(plain);
    if (v == 0) saw_zero = true;
    if (v == 0xffffffffu) saw_max = true;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST_F(FuzzerTest, PayloadForStringLiteral)
{
  SpecLibrary lib = DmLibrary();
  util::Rng rng(5);
  Generator generator(&lib, &rng);
  auto bytes =
      generator.BuildPayload(syzlang::Type::String("/dev/mapper/control"));
  ASSERT_GT(bytes.size(), 5u);
  EXPECT_EQ(bytes.back(), 0);  // NUL-terminated.
  EXPECT_EQ(bytes[0], '/');
}

TEST_F(FuzzerTest, MutatorPreservesResourceInvariant)
{
  SpecLibrary lib = KvmLibrary();
  util::Rng rng(17);
  Generator generator(&lib, &rng);
  Mutator mutator(&lib, &generator, &rng);
  Prog prog = generator.Generate(5);
  for (int i = 0; i < 300; ++i) {
    mutator.Mutate(&prog);
    for (size_t c = 0; c < prog.calls.size(); ++c) {
      for (const Arg& arg : prog.calls[c].args) {
        if (arg.kind == Arg::Kind::kResourceRef && arg.ref_call >= 0) {
          EXPECT_LT(static_cast<size_t>(arg.ref_call), prog.calls.size());
        }
      }
    }
  }
}

TEST_F(FuzzerTest, ExecutorRunsDmProgram)
{
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  util::Rng rng(23);
  Generator generator(&lib, &rng);
  Executor executor(&kernel, &lib);
  vkernel::Coverage total;
  size_t executed = 0;
  for (int i = 0; i < 200; ++i) {
    Prog prog = generator.Generate(6);
    ExecResult result = executor.Run(prog, &total);
    executed += result.calls_executed;
  }
  EXPECT_GT(executed, 200u);
  EXPECT_GT(total.Count(), 5u);  // open + several dispatch/deep blocks.
}

TEST_F(FuzzerTest, CampaignFindsDmBugs)
{
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  CampaignOptions options;
  options.program_budget = 20000;
  options.seed = 5;
  CampaignResult result = RunCampaign(&kernel, lib, options);
  EXPECT_TRUE(result.crashes.count("kmalloc bug in ctl_ioctl"));
  EXPECT_TRUE(result.crashes.count("kmalloc bug in dm_table_create"));
  EXPECT_TRUE(result.crashes.count(
      "general protection fault in cleanup_mapped_device"));
}

TEST_F(FuzzerTest, CampaignDeterministicForSeed)
{
  SpecLibrary lib = DmLibrary();
  CampaignOptions options;
  options.program_budget = 3000;
  options.seed = 99;
  vkernel::Kernel k1;
  Corpus::Instance().RegisterAll(&k1);
  CampaignResult a = RunCampaign(&k1, lib, options);
  vkernel::Kernel k2;
  Corpus::Instance().RegisterAll(&k2);
  CampaignResult b = RunCampaign(&k2, lib, options);
  EXPECT_EQ(a.coverage.Count(), b.coverage.Count());
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST_F(FuzzerTest, KvmSecondaryResourceChainCovered)
{
  // The generator must thread fd_kvm -> fd_kvm_vm -> fd_kvm_vcpu.
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = KvmLibrary();
  CampaignOptions options;
  options.program_budget = 15000;
  options.seed = 31;
  CampaignResult result = RunCampaign(&kernel, lib, options);
  // KVM_RUN's deep blocks are only reachable through the full chain.
  const drivers::DeviceSpec* kvm = Corpus::Instance().FindDevice("kvm");
  ASSERT_NE(kvm, nullptr);
  uint64_t run_block =
      drivers::BlockLayout::ForDevice(*kvm).IdOf("deep", "KVM_RUN", 0);
  EXPECT_TRUE(result.coverage.Contains(run_block));
}

TEST_F(FuzzerTest, EmptyLibraryYieldsNothing)
{
  vkernel::Kernel kernel;
  SpecLibrary lib;
  lib.Finalize();
  CampaignOptions options;
  options.program_budget = 100;
  CampaignResult result = RunCampaign(&kernel, lib, options);
  EXPECT_EQ(result.programs_executed, 0u);
  EXPECT_EQ(result.coverage.Count(), 0u);
}

TEST_F(FuzzerTest, FormatProgIsReadable)
{
  SpecLibrary lib = DmLibrary();
  util::Rng rng(41);
  Generator generator(&lib, &rng);
  Prog prog = generator.Generate(4);
  std::string text = FormatProg(prog, lib);
  EXPECT_NE(text.find("r0 = "), std::string::npos);
}

}  // namespace
}  // namespace kernelgpt::fuzzer

// ---------------------------------------------------------------------------
// Crash-reproducer minimization
// ---------------------------------------------------------------------------

namespace kernelgpt::fuzzer {
namespace {

class MinimizerTest : public FuzzerTest {
 protected:
  /// Generates programs until one crashes (any title). Fails the calling
  /// test if `budget` programs never crash.
  static void FindCrashingProg(vkernel::KernelModel* kernel, const SpecLibrary& lib,
                               uint64_t seed, Prog* prog, std::string* title,
                               int budget = 20000) {
    util::Rng rng(seed);
    Generator generator(&lib, &rng);
    Executor executor(kernel, &lib);
    title->clear();
    for (int i = 0; i < budget && title->empty(); ++i) {
      Prog candidate = generator.Generate(6);
      ExecResult exec = executor.Run(candidate, nullptr);
      if (exec.crashed) {
        *prog = std::move(candidate);
        *title = exec.crash_title;
      }
    }
    ASSERT_FALSE(title->empty()) << "no crash within " << budget << " programs";
  }
};

TEST_F(MinimizerTest, ShrinksCrashingProgram)
{
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  Prog crashing;
  std::string title;
  ASSERT_NO_FATAL_FAILURE(FindCrashingProg(&kernel, lib, 61, &crashing, &title));

  MinimizeResult minimized = MinimizeCrash(&kernel, lib, crashing, title);
  ASSERT_TRUE(minimized.reproduced);
  EXPECT_LE(minimized.prog.size(), crashing.size());
  // The minimized program still reproduces the identical crash title.
  Executor executor(&kernel, &lib);
  ExecResult replay = executor.Run(minimized.prog, nullptr);
  EXPECT_TRUE(replay.crashed);
  EXPECT_EQ(replay.crash_title, title);
  // dm crashes need at most an open + two ioctls (+ close is implicit).
  EXPECT_LE(minimized.prog.size(), 3u);
}

TEST_F(MinimizerTest, NonCrashingInputReported)
{
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  util::Rng rng(62);
  Generator generator(&lib, &rng);
  Prog prog;
  generator.AppendCall(&prog, 0);
  MinimizeResult result = MinimizeCrash(&kernel, lib, prog, "no such crash");
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.prog.size(), prog.size());
}

TEST_F(MinimizerTest, EmptyProgramIsSafe)
{
  // Degenerate input: nothing to replay, nothing to shrink. Must not
  // execute anything or claim reproduction.
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  Prog empty;
  MinimizeResult result = MinimizeCrash(&kernel, lib, empty, "any title");
  EXPECT_FALSE(result.reproduced);
  EXPECT_TRUE(result.prog.empty());
  EXPECT_EQ(result.executions, 0u);
}

TEST_F(MinimizerTest, AlreadyMinimalProgramIsAFixpoint)
{
  // Minimizing a minimized reproducer must return it unchanged: same
  // call count, same crash title — the crash "disappears" under every
  // further shrink attempt, so the minimizer keeps the program intact.
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  Prog crashing;
  std::string title;
  ASSERT_NO_FATAL_FAILURE(FindCrashingProg(&kernel, lib, 61, &crashing, &title));

  MinimizeResult first = MinimizeCrash(&kernel, lib, crashing, title);
  ASSERT_TRUE(first.reproduced);
  MinimizeResult second = MinimizeCrash(&kernel, lib, first.prog, title);
  ASSERT_TRUE(second.reproduced);
  EXPECT_EQ(second.prog.size(), first.prog.size());
  EXPECT_EQ(HashProg(second.prog), HashProg(first.prog));
  Executor executor(&kernel, &lib);
  ExecResult replay = executor.Run(second.prog, nullptr);
  EXPECT_TRUE(replay.crashed);
  EXPECT_EQ(replay.crash_title, title);
}

TEST_F(MinimizerTest, CrashDisappearingUnderWrongTitleIsReported)
{
  // A program that does crash — but not with the requested title — must
  // come back unmodified with reproduced == false (the distiller relies
  // on this to fall back to the unminimized reproducer).
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  Prog crashing;
  std::string title;
  ASSERT_NO_FATAL_FAILURE(FindCrashingProg(&kernel, lib, 64, &crashing, &title));
  MinimizeResult result =
      MinimizeCrash(&kernel, lib, crashing, "some other crash title");
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.prog.size(), crashing.size());
  EXPECT_EQ(HashProg(result.prog), HashProg(crashing));
  EXPECT_EQ(result.executions, 1u);  // One replay, no shrink attempts.
}

TEST_F(MinimizerTest, ZeroesIrrelevantScalars)
{
  // A hand-built program: openat + DM_TABLE_STATUS with huge data_size
  // (the kmalloc bug); the mode/flags scalars of openat are irrelevant
  // and must end up zeroed.
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  SpecLibrary lib = DmLibrary();
  util::Rng rng(63);
  Generator generator(&lib, &rng);
  Prog prog;
  // Build until we have a crashing candidate deterministically.
  Executor executor(&kernel, &lib);
  std::string title;
  for (int i = 0; i < 30000 && title != "kmalloc bug in ctl_ioctl"; ++i) {
    prog = generator.Generate(5);
    ExecResult exec = executor.Run(prog, nullptr);
    title = exec.crashed ? exec.crash_title : "";
  }
  ASSERT_EQ(title, "kmalloc bug in ctl_ioctl");
  MinimizeResult minimized = MinimizeCrash(&kernel, lib, prog, title);
  ASSERT_TRUE(minimized.reproduced);
  EXPECT_GT(minimized.executions, minimized.prog.size());
}

}  // namespace
}  // namespace kernelgpt::fuzzer
