// Tests for the parallel spec-generation service: byte-parity with the
// serial pipeline, thread-count independence (the scripts/ci.sh spec_gen
// determinism gate runs this suite), multi-backend fan-out, and the
// per-backend cost/quality report.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "llm/registry.h"
#include "spec_gen/service.h"
#include "syzlang/printer.h"
#include "util/fault.h"

namespace kernelgpt::spec_gen {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ksrc::DefinitionIndex(
        drivers::Corpus::Instance().BuildIndex());
    drivers_ = new std::vector<extractor::DriverHandler>();
    for (auto& handler : extractor::FindDriverHandlers(*index_)) {
      if (handler.reg == extractor::RegKind::kUnreferenced) continue;
      drivers_->push_back(std::move(handler));
    }
    sockets_ = new std::vector<extractor::SocketHandler>(
        extractor::FindSocketHandlers(*index_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete drivers_;
    delete sockets_;
    index_ = nullptr;
    drivers_ = nullptr;
    sockets_ = nullptr;
  }

  static ServiceResult Run(ServiceOptions options) {
    SpecGenService service(index_, std::move(options));
    return service.Generate(*drivers_, *sockets_);
  }

  static std::vector<std::string> PrintAll(const BackendRun& run) {
    std::vector<std::string> out;
    for (const HandlerGeneration& gen : run.generations) {
      out.push_back(syzlang::Print(gen.spec));
    }
    return out;
  }

  void TearDown() override { util::FaultInjector::Instance().Disarm(); }

  static ksrc::DefinitionIndex* index_;
  static std::vector<extractor::DriverHandler>* drivers_;
  static std::vector<extractor::SocketHandler>* sockets_;
};

ksrc::DefinitionIndex* ServiceTest::index_ = nullptr;
std::vector<extractor::DriverHandler>* ServiceTest::drivers_ = nullptr;
std::vector<extractor::SocketHandler>* ServiceTest::sockets_ = nullptr;

TEST_F(ServiceTest, SingleThreadMatchesSerialPipeline)
{
  // Default service path (registry "gpt-4", one thread) == one KernelGpt
  // instance walking the handlers in order with one shared meter: same
  // specs byte-for-byte, same token totals.
  ServiceOptions options;  // {"gpt-4"}, 1 thread.
  ServiceResult result = Run(options);
  ASSERT_EQ(result.runs.size(), 1u);
  const BackendRun& run = result.runs[0];
  ASSERT_EQ(run.generations.size(), drivers_->size() + sockets_->size());

  llm::TokenMeter meter;
  meter.SetKeepText(false);
  KernelGpt serial(index_, Options{}, &meter);
  size_t slot = 0;
  for (const auto& handler : *drivers_) {
    HandlerGeneration gen = serial.GenerateForDriver(handler);
    EXPECT_EQ(gen.status, run.generations[slot].status);
    EXPECT_EQ(syzlang::Print(gen.spec),
              syzlang::Print(run.generations[slot].spec));
    ++slot;
  }
  for (const auto& handler : *sockets_) {
    HandlerGeneration gen = serial.GenerateForSocket(handler);
    EXPECT_EQ(syzlang::Print(gen.spec),
              syzlang::Print(run.generations[slot].spec));
    ++slot;
  }
  EXPECT_EQ(run.report.queries, meter.query_count());
  EXPECT_EQ(run.report.input_tokens, meter.total_input_tokens());
  EXPECT_EQ(run.report.output_tokens, meter.total_output_tokens());
}

TEST_F(ServiceTest, OutputIndependentOfThreadCount)
{
  ServiceOptions one;
  one.backends = {"gpt-4", "gpt-3.5"};
  one.num_threads = 1;
  ServiceOptions four = one;
  four.num_threads = 4;
  ServiceResult a = Run(one);
  ServiceResult b = Run(four);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(PrintAll(a.runs[r]), PrintAll(b.runs[r])) << a.runs[r].backend;
    EXPECT_EQ(a.runs[r].report.queries, b.runs[r].report.queries);
    EXPECT_EQ(a.runs[r].report.input_tokens, b.runs[r].report.input_tokens);
    EXPECT_EQ(a.runs[r].report.output_tokens,
              b.runs[r].report.output_tokens);
    EXPECT_EQ(a.runs[r].report.syscalls, b.runs[r].report.syscalls);
    EXPECT_EQ(a.runs[r].report.failed, b.runs[r].report.failed);
  }
}

TEST_F(ServiceTest, FansOutAcrossAllRegisteredBackends)
{
  ServiceOptions options;
  options.backends = llm::BackendRegistry::Default().Names();
  options.num_threads = 4;
  ServiceResult result = Run(options);
  ASSERT_GE(result.runs.size(), 4u);
  const size_t handlers = drivers_->size() + sockets_->size();
  for (const BackendRun& run : result.runs) {
    EXPECT_TRUE(run.report.known) << run.backend;
    EXPECT_EQ(run.report.handlers, handlers) << run.backend;
    EXPECT_EQ(run.report.valid + run.report.repaired + run.report.failed,
              handlers)
        << run.backend;
    EXPECT_GT(run.report.queries, 0u) << run.backend;
    EXPECT_GT(run.report.cost_usd, 0.0) << run.backend;
  }

  // Quality ordering the §5.2.3 ablation documents: the weak tier
  // describes far fewer syscalls than the default.
  const BackendRun* strong = result.Find("gpt-4");
  const BackendRun* weak = result.Find("gpt-3.5");
  ASSERT_NE(strong, nullptr);
  ASSERT_NE(weak, nullptr);
  EXPECT_LT(weak->report.syscalls, strong->report.syscalls);

  // The flaky wrapper is gpt-4 plus retries: identical quality columns,
  // strictly higher metered cost.
  const BackendRun* flaky = result.Find("gpt-4-flaky");
  ASSERT_NE(flaky, nullptr);
  EXPECT_EQ(flaky->report.syscalls, strong->report.syscalls);
  EXPECT_EQ(flaky->report.failed, strong->report.failed);
  for (size_t i = 0; i < flaky->generations.size(); ++i) {
    EXPECT_EQ(syzlang::Print(flaky->generations[i].spec),
              syzlang::Print(strong->generations[i].spec));
  }
  EXPECT_GT(flaky->report.queries, strong->report.queries);
  EXPECT_GT(flaky->report.input_tokens, strong->report.input_tokens);
}

TEST_F(ServiceTest, UnknownBackendIsReportedNotGenerated)
{
  ServiceOptions options;
  options.backends = {"gpt-4", "no-such-model"};
  ServiceResult result = Run(options);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_TRUE(result.runs[0].report.known);
  const BackendRun& missing = result.runs[1];
  EXPECT_FALSE(missing.report.known);
  EXPECT_EQ(missing.report.handlers, 0u);
  EXPECT_TRUE(missing.generations.empty());
}

TEST_F(ServiceTest, DyingBackendFailsOverToTheNextRegisteredOne)
{
  // Every task gpt-3.5 tries to serve dies (the spec_gen.task detail is
  // "<serving backend>:<handler key>", so the match scopes the rule to
  // gpt-3.5's attempts only — deterministically, even at 4 threads,
  // because times=-1 leaves no firing-order race).
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec(
                      "site=spec_gen.task,kind=throw,times=-1,match=gpt-3.5:")
                  .ok());
  ServiceOptions options;
  options.backends = {"gpt-4", "gpt-3.5"};
  options.num_threads = 4;
  ServiceResult result = Run(options);

  const size_t handlers = drivers_->size() + sockets_->size();
  const BackendRun& strong = result.runs[0];
  const BackendRun& dying = result.runs[1];
  EXPECT_EQ(dying.report.failed_over, handlers);
  EXPECT_EQ(dying.report.adopted, 0u);
  EXPECT_EQ(dying.report.unserved, 0u);
  EXPECT_EQ(dying.report.queries, 0u);  // It never served anything.
  EXPECT_NE(dying.report.last_error.find("injected throw fault"),
            std::string::npos);
  EXPECT_EQ(strong.report.adopted, handlers);
  EXPECT_EQ(strong.report.failed_over, 0u);

  // Failover is reported, not silent — but it is also real: every one of
  // the dying run's slots holds the adopting backend's generation.
  ASSERT_EQ(dying.generations.size(), handlers);
  for (size_t i = 0; i < handlers; ++i) {
    EXPECT_EQ(syzlang::Print(dying.generations[i].spec),
              syzlang::Print(strong.generations[i].spec));
  }
}

TEST_F(ServiceTest, TransientTaskFaultFailsOverOneTask)
{
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("site=spec_gen.task,kind=throw,match=gpt-4:")
                  .ok());
  ServiceOptions options;
  options.backends = {"gpt-4", "gpt-3.5"};
  options.num_threads = 1;  // Keep the nth=1 window deterministic.
  ServiceResult result = Run(options);
  EXPECT_EQ(result.runs[0].report.failed_over, 1u);
  EXPECT_EQ(result.runs[1].report.adopted, 1u);
  EXPECT_EQ(result.runs[0].report.unserved, 0u);
  const size_t handlers = drivers_->size() + sockets_->size();
  EXPECT_EQ(result.runs[0].generations.size(), handlers);
}

TEST_F(ServiceTest, NoSurvivingBackendLeavesTasksUnservedNotCrashed)
{
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("site=spec_gen.task,kind=throw,times=-1")
                  .ok());
  ServiceOptions options;
  options.backends = {"gpt-4"};
  options.num_threads = 2;
  ServiceResult result = Run(options);
  const size_t handlers = drivers_->size() + sockets_->size();
  const BackendRun& run = result.runs[0];
  EXPECT_EQ(run.report.unserved, handlers);
  EXPECT_EQ(run.report.failed, handlers);
  ASSERT_EQ(run.generations.size(), handlers);
  for (const HandlerGeneration& gen : run.generations) {
    EXPECT_EQ(gen.status, GenStatus::kFailed);
  }
}

TEST_F(ServiceTest, InjectedCrashPropagatesAfterWorkersDrain)
{
  // A simulated process death is NOT a task failure: the service drains
  // its workers and rethrows so a supervisor sees the crash, never a
  // silently half-generated result.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("site=spec_gen.task,kind=crash")
                  .ok());
  ServiceOptions options;
  options.num_threads = 4;
  EXPECT_THROW(Run(options), util::InjectedCrash);
}

}  // namespace
}  // namespace kernelgpt::spec_gen
