// Crash-consistency battery for the incremental snapshot layer:
//  - CRC32 and atomic-write primitives behave as specified (known-answer
//    vector, no .tmp leftovers, old content survives a failed write);
//  - journal record framing + delta serialization are byte fixpoints;
//  - ParseManifest locates suite names positionally (regression: an
//    unpadded fingerprint whose text also occurs inside the index token
//    used to mis-anchor a substring search and corrupt the name);
//  - an incremental Save appends to the journal without rewriting the
//    base snapshot, and the journal replay is bit-identical to an
//    uninterrupted run;
//  - Resume recovers from a torn or uncommitted journal tail truncated
//    at EVERY byte boundary, never crashing or dropping committed data;
//  - damage to a committed record (one flipped byte per record) is a
//    precise util::Status error that leaves the session untouched;
//  - Save into a reused directory prunes orphaned suite files and stray
//    .tmp leftovers; journalless (pre-journal) directories still resume.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/session.h"
#include "fuzzer/snapshot.h"
#include "util/fileio.h"
#include "util/strings.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
    lib_ = new SpecLibrary(MakeLibrary(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm"))));
  }
  static void TearDownTestSuite() {
    delete lib_;
    lib_ = nullptr;
    delete consts_;
    consts_ = nullptr;
  }

  static SpecLibrary MakeLibrary(const syzlang::SpecFile& spec) {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(spec);
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  /// Short deterministic per-round options; small budget keeps the
  /// byte-boundary sweeps fast.
  static SessionOptions SmallSession() {
    SessionOptions options;
    options.seed = 77;
    options.orchestrator.campaign.program_budget = 2500;
    options.orchestrator.campaign.batch_size = 32;
    options.orchestrator.num_workers = 2;
    options.orchestrator.sync_interval = 200;
    return options;
  }

  static Session MakeSession(SessionOptions options) {
    return Session(std::move(options), Boot);
  }

  /// A fresh session registered on the shared suite, resumed from `dir`.
  static Session ResumeFresh(const std::string& dir, util::Status* status,
                             SessionOptions options = SmallSession()) {
    Session session = MakeSession(std::move(options));
    EXPECT_TRUE(session.RegisterSuite("dm", lib_).ok());
    *status = session.Resume(dir);
    return session;
  }

  static std::string ScratchDir(const std::string& leaf) {
    const std::string dir =
        ::testing::TempDir() + "kernelgpt_snapshot_test/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static std::string MustRead(const std::string& path) {
    std::string text;
    util::Status status = ReadFileToString(path, &text);
    EXPECT_TRUE(status.ok()) << status.message();
    return text;
  }

  static void ExpectSameState(const SuiteState& a, const SuiteState& b,
                              const std::string& label) {
    EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks()) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.programs_executed, b.programs_executed) << label;
    ASSERT_EQ(a.corpus.size(), b.corpus.size()) << label;
    for (size_t i = 0; i < a.corpus.size(); ++i) {
      EXPECT_EQ(HashProg(a.corpus[i]), HashProg(b.corpus[i]))
          << label << " program " << i;
    }
    ASSERT_EQ(a.crash_reproducers.size(), b.crash_reproducers.size()) << label;
    for (const auto& [title, prog] : a.crash_reproducers) {
      auto it = b.crash_reproducers.find(title);
      ASSERT_NE(it, b.crash_reproducers.end()) << label << " " << title;
      EXPECT_EQ(HashProg(prog), HashProg(it->second)) << label << " " << title;
    }
    ASSERT_EQ(a.rounds.size(), b.rounds.size()) << label;
  }

  static syzlang::ConstTable* consts_;
  static SpecLibrary* lib_;
};

syzlang::ConstTable* SnapshotTest::consts_ = nullptr;
SpecLibrary* SnapshotTest::lib_ = nullptr;

// -- Primitives --------------------------------------------------------------

TEST_F(SnapshotTest, Crc32MatchesTheStandardCheckValue)
{
  // The canonical CRC-32/ISO-HDLC check vector.
  EXPECT_EQ(util::Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(util::Crc32(""), 0u);
  EXPECT_NE(util::Crc32("torn"), util::Crc32("tore"));
}

TEST_F(SnapshotTest, AtomicWriteReplacesWithoutLeavingTmpFiles)
{
  const std::string dir = ScratchDir("atomic");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/file";
  ASSERT_TRUE(util::AtomicWriteFile(path, "first").ok());
  ASSERT_TRUE(util::AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(MustRead(path), "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  ASSERT_TRUE(util::AppendFileDurable(path, " third").ok());
  EXPECT_EQ(MustRead(path), "second third");
}

// -- Journal framing and delta serialization ---------------------------------

TEST_F(SnapshotTest, JournalFramingRoundTripsAndFlagsEveryTornTail)
{
  JournalHeader header;
  header.fingerprint = 0xabcdef;
  header.suite_name = "dm suite";
  header.base_rounds = 3;
  std::string text = SerializeJournalHeader(header);
  const std::string r1 = "payload one\n";
  const std::string r2 = "payload two, longer\n";
  text += FrameJournalRecord(r1);
  text += FrameJournalRecord(r2);

  JournalScan scan;
  util::Status status = ScanJournal(text, &scan);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(scan.header.fingerprint, header.fingerprint);
  EXPECT_EQ(scan.header.suite_name, header.suite_name);
  EXPECT_EQ(scan.header.base_rounds, header.base_rounds);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].first, r1);
  EXPECT_EQ(scan.records[1].first, r2);
  EXPECT_EQ(scan.records[1].second, text.size());
  EXPECT_TRUE(scan.tail_error.empty()) << scan.tail_error;

  // Every truncation point inside the record region loses only the tail:
  // scanning never errors, and every record wholly before the cut
  // survives.
  for (size_t cut = scan.header_end; cut < text.size(); ++cut) {
    JournalScan torn;
    status = ScanJournal(text.substr(0, cut), &torn);
    ASSERT_TRUE(status.ok()) << "cut " << cut << ": " << status.message();
    const size_t expect =
        cut >= scan.records[1].second ? 2 : cut >= scan.records[0].second ? 1
                                                                          : 0;
    EXPECT_EQ(torn.records.size(), expect) << "cut " << cut;
    // A cut exactly on a record boundary looks like a crash between
    // appends — clean EOF; anywhere else must be flagged as torn.
    const bool boundary =
        cut == scan.header_end || cut == scan.records[0].second;
    EXPECT_EQ(torn.tail_error.empty(), boundary) << "cut " << cut;
  }

  // A flipped payload byte fails the checksum and ends the scan there.
  std::string corrupt = text;
  corrupt[scan.records[0].second + 20] ^= 0x40;
  JournalScan damaged;
  ASSERT_TRUE(ScanJournal(corrupt, &damaged).ok());
  EXPECT_EQ(damaged.records.size(), 1u);
  EXPECT_NE(damaged.tail_error.find("checksum"), std::string::npos)
      << damaged.tail_error;

  // Header damage is a Status error — there is nothing to recover onto.
  EXPECT_FALSE(ScanJournal("kernelgpt-journal v999\n", &damaged).ok());
  EXPECT_FALSE(ScanJournal("not a journal\n", &damaged).ok());
}

TEST_F(SnapshotTest, DeltaSerializationIsAByteFixpoint)
{
  // Real programs: take the corpus a short campaign round distills.
  Session session = MakeSession(SmallSession());
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  const SuiteState* state = session.Find("dm");
  ASSERT_NE(state, nullptr);
  ASSERT_GE(state->corpus.size(), 3u);

  SuiteDelta delta;
  delta.report = state->rounds.back();
  delta.report.epochs.clear();
  delta.new_coverage = {0x10, 0x2f, 0xdeadbeef};
  delta.crash_increments = {{"KASAN: use-after-free", 2}, {"WARNING", 1}};
  delta.new_reproducers["WARNING"] = state->corpus[0];
  delta.corpus.resize(3);
  delta.corpus[0].kept_index = 2;
  delta.corpus[1].prog = state->corpus[1];
  delta.corpus[2].kept_index = 0;

  const std::string once = SerializeDelta(delta, *lib_);
  SuiteDelta parsed;
  util::Status status = ParseDelta(once, *lib_, &parsed);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(SerializeDelta(parsed, *lib_), once);
  EXPECT_EQ(parsed.new_coverage, delta.new_coverage);
  EXPECT_EQ(parsed.crash_increments, delta.crash_increments);
  EXPECT_EQ(parsed.corpus[0].kept_index, 2);
  EXPECT_EQ(HashProg(parsed.corpus[1].prog), HashProg(delta.corpus[1].prog));

  // The "unchanged" steady-state encoding round-trips too — and carries
  // no per-program payload at all.
  delta.corpus.clear();
  delta.corpus_unchanged = true;
  delta.new_reproducers.clear();
  const std::string steady = SerializeDelta(delta, *lib_);
  EXPECT_NE(steady.find("corpus same"), std::string::npos);
  ASSERT_TRUE(ParseDelta(steady, *lib_, &parsed).ok());
  EXPECT_TRUE(parsed.corpus_unchanged);
  EXPECT_EQ(SerializeDelta(parsed, *lib_), steady);
}

// -- ParseManifest regression ------------------------------------------------

TEST_F(SnapshotTest, ManifestSuiteNamesParsePositionally)
{
  // Regression: with an unpadded fingerprint whose text also occurs
  // inside the index token ("suite 12 2 name12"), the old substring
  // anchor found the "2" inside "12" and corrupted the name to
  // "2 name12". Names must be located positionally after the second
  // token.
  std::string text =
      "kernelgpt-session v2\n"
      "seed 2a\n"
      "schedule hash-chain\n"
      "seed_stride 7919\n"
      "carry_corpus 1\n"
      "distill 1\n"
      "rounds_completed 0\n"
      "stale_rounds 0\n"
      "suites 13\n";
  for (int i = 0; i < 13; ++i) {
    text += "suite " + std::to_string(i) + " 2 name" + std::to_string(i) + "\n";
  }
  text += "end\n";

  SessionManifest manifest;
  util::Status status = ParseManifest(text, &manifest);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(manifest.suites.size(), 13u);
  EXPECT_EQ(manifest.suites[12].first, 0x2u);
  EXPECT_EQ(manifest.suites[12].second, "name12");
  EXPECT_EQ(manifest.suites[2].second, "name2");

  // Names with spaces still survive the round trip.
  SessionManifest padded;
  padded.seed = 1;
  padded.schedule = "hash-chain";
  padded.suites.emplace_back(0x12, "Syzkaller + KernelGPT");
  const std::string once = SerializeManifest(padded);
  ASSERT_TRUE(ParseManifest(once, &manifest).ok());
  EXPECT_EQ(manifest.suites[0].second, "Syzkaller + KernelGPT");
  EXPECT_EQ(SerializeManifest(manifest), once);
}

// -- Incremental save --------------------------------------------------------

TEST_F(SnapshotTest, IncrementalSaveAppendsWithoutRewritingTheBase)
{
  const std::string dir = ScratchDir("incremental");
  Session session = MakeSession(
      SmallSession().WithRounds(1).WithJournalCompaction(100));
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());

  const std::string base = MustRead(dir + "/suite_0.snap");
  const std::string journal_after_full = MustRead(dir + "/suite_0.journal");

  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());

  // The base is untouched — the new rounds live in the journal.
  EXPECT_EQ(MustRead(dir + "/suite_0.snap"), base);
  const std::string journal = MustRead(dir + "/suite_0.journal");
  EXPECT_GT(journal.size(), journal_after_full.size());
  EXPECT_TRUE(util::StartsWith(journal, journal_after_full));

  JournalScan scan;
  ASSERT_TRUE(ScanJournal(journal, &scan).ok());
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.tail_error.empty()) << scan.tail_error;

  // Replaying base + journal is bit-identical to an uninterrupted run.
  Session straight = MakeSession(SmallSession());
  ASSERT_TRUE(straight.RegisterSuite("dm", lib_).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(straight.RunRound().ok());

  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir, &status);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(resumed.rounds_completed(), 3);
  ExpectSameState(*resumed.Find("dm"), *straight.Find("dm"), "resumed");

  // And the continuation stays on the deterministic schedule.
  ASSERT_TRUE(resumed.RunRound().ok());
  ASSERT_TRUE(straight.RunRound().ok());
  ExpectSameState(*resumed.Find("dm"), *straight.Find("dm"), "continued");
}

TEST_F(SnapshotTest, CompactionFoldsTheJournalIntoAFreshBase)
{
  const std::string dir = ScratchDir("compaction");
  Session session = MakeSession(SmallSession().WithJournalCompaction(2));
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());
  const std::string base = MustRead(dir + "/suite_0.snap");

  // Two more rounds hit the compaction horizon: the journal folds into a
  // fresh base and restarts empty.
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());
  EXPECT_NE(MustRead(dir + "/suite_0.snap"), base);
  JournalScan scan;
  ASSERT_TRUE(ScanJournal(MustRead(dir + "/suite_0.journal"), &scan).ok());
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_EQ(scan.header.base_rounds, 3);

  Session straight = MakeSession(SmallSession());
  ASSERT_TRUE(straight.RegisterSuite("dm", lib_).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(straight.RunRound().ok());
  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir, &status,
                                SmallSession().WithJournalCompaction(2));
  ASSERT_TRUE(status.ok()) << status.message();
  ExpectSameState(*resumed.Find("dm"), *straight.Find("dm"), "compacted");
}

TEST_F(SnapshotTest, AutosaveKeepsTheDirectoryResumableEveryRound)
{
  const std::string dir = ScratchDir("autosave");
  Session session = MakeSession(
      SmallSession().WithRounds(3).WithAutosave(dir, 1));
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.Run().ok());

  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir, &status,
                                SmallSession().WithRounds(3).WithAutosave(dir, 1));
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(resumed.rounds_completed(), 3);
  ExpectSameState(*resumed.Find("dm"), *session.Find("dm"), "autosaved");
}

// -- Torn-tail recovery ------------------------------------------------------

class TornTailTest : public SnapshotTest {
 protected:
  /// Builds a directory committed at round 1 whose journal carries one
  /// intact-but-uncommitted record for round 1 (the on-disk picture of a
  /// crash after the journal append fsynced but before the manifest
  /// rename landed), plus a reference session at the committed round.
  void SetUpDir(const std::string& leaf) {
    dir_ = ScratchDir(leaf);
    Session session = MakeSession(SmallSession().WithJournalCompaction(100));
    EXPECT_TRUE(session.RegisterSuite("dm", lib_).ok());
    EXPECT_TRUE(session.RunRound().ok());
    EXPECT_TRUE(session.Save(dir_).ok());
    committed_manifest_ = MustRead(dir_ + "/session.manifest");
    EXPECT_TRUE(session.RunRound().ok());
    EXPECT_TRUE(session.Save(dir_).ok());
    full_journal_ = MustRead(dir_ + "/suite_0.journal");

    // Roll the manifest back to the committed round: the appended record
    // is now an uncommitted tail.
    EXPECT_TRUE(
        WriteStringToFile(dir_ + "/session.manifest", committed_manifest_)
            .ok());

    reference_ = std::make_unique<Session>(SmallSession(), Boot);
    EXPECT_TRUE(reference_->RegisterSuite("dm", lib_).ok());
    EXPECT_TRUE(reference_->RunRound().ok());
  }

  std::string dir_;
  std::string committed_manifest_;
  std::string full_journal_;
  std::unique_ptr<Session> reference_;
};

TEST_F(TornTailTest, ResumeDropsAnUncommittedTailAndTruncatesIt)
{
  SetUpDir("uncommitted");
  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir_, &status);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(resumed.rounds_completed(), 1);
  ExpectSameState(*resumed.Find("dm"), *reference_->Find("dm"), "recovered");

  // The uncommitted record was physically truncated away, so future
  // appends land after the last committed byte, not after garbage.
  const std::string healed = MustRead(dir_ + "/suite_0.journal");
  EXPECT_LT(healed.size(), full_journal_.size());
  JournalScan scan;
  ASSERT_TRUE(ScanJournal(healed, &scan).ok());
  EXPECT_TRUE(scan.tail_error.empty()) << scan.tail_error;
  EXPECT_EQ(scan.records.size(), 0u);

  // The recovered session keeps saving incrementally and stays on the
  // deterministic schedule.
  ASSERT_TRUE(resumed.RunRound().ok());
  ASSERT_TRUE(resumed.Save(dir_).ok());
  ASSERT_TRUE(reference_->RunRound().ok());
  util::Status again_status = util::Status::Ok();
  Session again = ResumeFresh(dir_, &again_status);
  ASSERT_TRUE(again_status.ok()) << again_status.message();
  EXPECT_EQ(again.rounds_completed(), 2);
  ExpectSameState(*again.Find("dm"), *reference_->Find("dm"), "resaved");
}

TEST_F(TornTailTest, ResumeRecoversFromTruncationAtEveryByteBoundary)
{
  SetUpDir("every-byte");
  // Cut the journal at EVERY byte boundary — torn header, torn record
  // framing, torn payload — and resume each time. The committed round
  // must come back bit-identical in every case; a cut inside the header
  // region loses the whole journal, which the base alone covers.
  const SuiteState& want = *reference_->Find("dm");
  for (size_t cut = 0; cut <= full_journal_.size(); ++cut) {
    ASSERT_TRUE(WriteStringToFile(dir_ + "/suite_0.journal",
                                  full_journal_.substr(0, cut))
                    .ok());
    util::Status status = util::Status::Ok();
    Session resumed = ResumeFresh(dir_, &status);
    ASSERT_TRUE(status.ok()) << "cut " << cut << ": " << status.message();
    ASSERT_EQ(resumed.rounds_completed(), 1) << "cut " << cut;
    const SuiteState* got = resumed.Find("dm");
    ASSERT_NE(got, nullptr);
    // Spot-check cheaply per cut; the full state comparison above
    // already pinned one recovery end-to-end.
    ASSERT_EQ(got->coverage.Count(), want.coverage.Count()) << "cut " << cut;
    ASSERT_EQ(got->corpus.size(), want.corpus.size()) << "cut " << cut;
    ASSERT_EQ(got->programs_executed, want.programs_executed)
        << "cut " << cut;
  }
}

TEST_F(TornTailTest, DamageToACommittedRecordIsAStatusError)
{
  SetUpDir("committed-damage");
  // Commit round 2 (both records now committed), then flip one byte per
  // record: the loss reaches committed state, so Resume must refuse with
  // a Status — and leave the session untouched — rather than resume a
  // silently diverged session.
  Session session = MakeSession(SmallSession().WithJournalCompaction(100));
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir_).ok());
  const std::string journal = MustRead(dir_ + "/suite_0.journal");
  JournalScan scan;
  ASSERT_TRUE(ScanJournal(journal, &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);

  const size_t record_begin = scan.header_end;
  const size_t record_mid = (record_begin + journal.size()) / 2;
  for (size_t at : {record_begin, record_mid, journal.size() - 2}) {
    std::string corrupt = journal;
    corrupt[at] ^= 0x01;
    ASSERT_TRUE(WriteStringToFile(dir_ + "/suite_0.journal", corrupt).ok());
    Session fresh = MakeSession(SmallSession());
    ASSERT_TRUE(fresh.RegisterSuite("dm", lib_).ok());
    util::Status status = fresh.Resume(dir_);
    EXPECT_FALSE(status.ok()) << "flip at " << at;
    EXPECT_EQ(fresh.rounds_completed(), 0) << "flip at " << at;
    EXPECT_TRUE(fresh.Find("dm")->corpus.empty()) << "flip at " << at;
  }
}

// -- Directory hygiene -------------------------------------------------------

TEST_F(SnapshotTest, SaveIntoAReusedDirectoryPrunesOrphanedSuiteFiles)
{
  const std::string dir = ScratchDir("reused");
  {
    Session two = MakeSession(SmallSession());
    ASSERT_TRUE(two.RegisterSuite("dm", lib_).ok());
    ASSERT_TRUE(two.RegisterSuite("dm-b", lib_).ok());
    ASSERT_TRUE(two.RunRound().ok());
    ASSERT_TRUE(two.Save(dir).ok());
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/suite_1.snap"));
  // A stray tmp file from a crashed atomic writer.
  ASSERT_TRUE(
      util::AppendFileDurable(dir + "/suite_0.snap.tmp", "garbage").ok());

  Session one = MakeSession(SmallSession());
  ASSERT_TRUE(one.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(one.RunRound().ok());
  ASSERT_TRUE(one.Save(dir).ok());

  EXPECT_FALSE(std::filesystem::exists(dir + "/suite_1.snap"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/suite_1.journal"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/suite_0.snap.tmp"));

  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir, &status);
  ASSERT_TRUE(status.ok()) << status.message();
  ExpectSameState(*resumed.Find("dm"), *one.Find("dm"), "pruned");
}

TEST_F(SnapshotTest, JournallessDirectoriesStillResume)
{
  // A directory written before the journal existed (or whose journal was
  // deleted) has a base that already covers the committed round: Resume
  // accepts it and lays down a fresh journal for future appends.
  const std::string dir = ScratchDir("journalless");
  Session session = MakeSession(SmallSession());
  ASSERT_TRUE(session.RegisterSuite("dm", lib_).ok());
  ASSERT_TRUE(session.RunRound().ok());
  ASSERT_TRUE(session.Save(dir).ok());
  std::filesystem::remove(dir + "/suite_0.journal");

  util::Status status = util::Status::Ok();
  Session resumed = ResumeFresh(dir, &status);
  ASSERT_TRUE(status.ok()) << status.message();
  ExpectSameState(*resumed.Find("dm"), *session.Find("dm"), "journalless");

  JournalScan scan;
  ASSERT_TRUE(ScanJournal(MustRead(dir + "/suite_0.journal"), &scan).ok());
  EXPECT_EQ(scan.header.base_rounds, 1);
  EXPECT_EQ(scan.records.size(), 0u);
}

}  // namespace
}  // namespace kernelgpt::fuzzer
