// Tests for the Session campaign-service API and its snapshot
// persistence layer:
//  - program/suite serialization is a byte-for-byte serialize -> parse ->
//    serialize fixpoint for programs from every corpus spec;
//  - snapshots with a mismatched version, corrupted content, or drifted
//    suite specs are rejected with a Status (never a crash);
//  - a session interrupted by Save and continued by Resume in a fresh
//    session is bit-identical to an uninterrupted run of the same total
//    rounds, and to the straight-through RunCampaignLoop shim;
//  - the hash-chain schedule reproduces the legacy inline campaign loop
//    exactly, and the arithmetic schedule reproduces independent
//    repetition campaigns exactly (the ExperimentContext::Fuzz contract);
//  - misconfiguration (empty/duplicate suites, unbounded schedules,
//    late registration) surfaces as Status errors;
//  - the coverage-plateau stop rule ends the schedule early.

#include <gtest/gtest.h>

#include <filesystem>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/generator.h"
#include "fuzzer/mutator.h"
#include "fuzzer/session.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  static SpecLibrary MakeLibrary(const syzlang::SpecFile& spec) {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(spec);
    lib.Finalize();
    return lib;
  }

  static SpecLibrary DmLibrary() {
    return MakeLibrary(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  /// Short 2-worker per-round options shared by the determinism tests.
  static OrchestratorOptions SmallRound() {
    OrchestratorOptions options;
    options.campaign.program_budget = 6000;
    options.campaign.batch_size = 32;
    options.num_workers = 2;
    options.sync_interval = 200;
    return options;
  }

  static Session MakeSession(SessionOptions options) {
    return Session(std::move(options), Boot);
  }

  /// Fresh per-test scratch directory under the gtest temp root.
  static std::string ScratchDir(const std::string& leaf) {
    const std::string dir =
        ::testing::TempDir() + "kernelgpt_session_test/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static void ExpectSameProgs(const std::vector<Prog>& a,
                              const std::vector<Prog>& b,
                              const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(HashProg(a[i]), HashProg(b[i])) << label << " program " << i;
    }
  }

  static void ExpectSameState(const SuiteState& a, const SuiteState& b,
                              const std::string& label) {
    EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks()) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.programs_executed, b.programs_executed) << label;
    ExpectSameProgs(a.corpus, b.corpus, label + " corpus");
    ASSERT_EQ(a.crash_reproducers.size(), b.crash_reproducers.size()) << label;
    for (const auto& [title, prog] : a.crash_reproducers) {
      auto it = b.crash_reproducers.find(title);
      ASSERT_NE(it, b.crash_reproducers.end()) << label << " " << title;
      EXPECT_EQ(HashProg(prog), HashProg(it->second)) << label << " " << title;
    }
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* SessionTest::consts_ = nullptr;

// -- Snapshot serialization --------------------------------------------------

TEST_F(SessionTest, ProgSerializationIsAFixpointForEveryCorpusSpec)
{
  // Generated AND mutated programs from every ground-truth spec in the
  // corpus must round-trip byte- and hash-identically.
  size_t specs_checked = 0;
  auto check_spec = [&](const syzlang::SpecFile& spec,
                        const std::string& label) {
    SpecLibrary lib = MakeLibrary(spec);
    if (lib.syscalls().empty()) return;
    util::Rng rng(util::StableHash(label));
    Generator generator(&lib, &rng);
    Mutator mutator(&lib, &generator, &rng);
    std::vector<Prog> progs;
    for (int i = 0; i < 32; ++i) {
      Prog prog = generator.Generate(6);
      if (prog.empty()) continue;
      progs.push_back(prog);
      mutator.Mutate(&prog);
      if (!prog.empty()) progs.push_back(std::move(prog));
    }
    if (progs.empty()) return;
    ++specs_checked;

    const std::string once = SerializeProgs(progs, lib);
    std::vector<Prog> parsed;
    util::Status status = ParseProgs(once, lib, &parsed);
    ASSERT_TRUE(status.ok()) << label << ": " << status.message();
    ExpectSameProgs(progs, parsed, label);
    EXPECT_EQ(once, SerializeProgs(parsed, lib))
        << label << ": serialize -> parse -> serialize not a fixpoint";
  };

  for (const auto& dev : Corpus::Instance().devices()) {
    check_spec(drivers::GroundTruthDeviceSpec(dev), "gt:" + dev.id);
  }
  for (const auto& sock : Corpus::Instance().sockets()) {
    check_spec(drivers::GroundTruthSocketSpec(sock), "gt:" + sock.id);
  }
  EXPECT_GT(specs_checked, 4u);  // The corpus ships several modules.
}

TEST_F(SessionTest, SuiteSnapshotIsAFixpointIncludingReproducersAndRounds)
{
  SpecLibrary lib = DmLibrary();
  SessionOptions options;
  options.WithSeed(5).WithRounds(2).WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  const SuiteState& state = *session.Find("dm");
  ASSERT_FALSE(state.corpus.empty());
  ASSERT_FALSE(state.crash_reproducers.empty());  // dm crashes readily.

  SuiteSnapshot snapshot;
  snapshot.name = "dm suite with spaces";  // Names are free-form text.
  snapshot.fingerprint = SuiteFingerprint(lib);
  snapshot.programs_executed = state.programs_executed;
  snapshot.wall_seconds = state.wall_seconds;
  snapshot.coverage = state.coverage.SortedBlocks();
  snapshot.crashes = state.crashes;
  snapshot.corpus = state.corpus;
  snapshot.crash_reproducers = state.crash_reproducers;
  snapshot.rounds = state.rounds;

  const std::string once = SerializeSuite(snapshot, lib);
  SuiteSnapshot parsed;
  util::Status status = ParseSuite(once, lib, &parsed);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(parsed.name, snapshot.name);
  EXPECT_EQ(parsed.fingerprint, snapshot.fingerprint);
  EXPECT_EQ(parsed.coverage, snapshot.coverage);
  EXPECT_EQ(parsed.crashes, snapshot.crashes);
  EXPECT_EQ(parsed.wall_seconds, snapshot.wall_seconds);  // %a is exact.
  ASSERT_EQ(parsed.rounds.size(), snapshot.rounds.size());
  for (size_t i = 0; i < parsed.rounds.size(); ++i) {
    EXPECT_EQ(parsed.rounds[i].seed, snapshot.rounds[i].seed);
    EXPECT_EQ(parsed.rounds[i].cumulative_coverage,
              snapshot.rounds[i].cumulative_coverage);
  }
  EXPECT_EQ(once, SerializeSuite(parsed, lib))
      << "suite snapshot serialize -> parse -> serialize not a fixpoint";
}

TEST_F(SessionTest, VersionMismatchIsRejectedWithBothVersionsNamed)
{
  SpecLibrary lib = DmLibrary();
  SuiteSnapshot suite;
  std::string text = SerializeSuite(suite, lib);
  text.replace(text.find("v2"), 2, "v99");
  util::Status status = ParseSuite(text, lib, &suite);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version mismatch"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("v99"), std::string::npos);

  SessionManifest manifest;
  text = SerializeManifest(manifest);
  text.replace(text.find("v2"), 2, "v0");
  status = ParseManifest(text, &manifest);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version mismatch"), std::string::npos);
}

TEST_F(SessionTest, CorruptSnapshotsReturnStatusNotCrash)
{
  SpecLibrary lib = DmLibrary();

  // A real snapshot to corrupt.
  SessionOptions options;
  options.WithSeed(9).WithRounds(1).WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  SuiteSnapshot snapshot;
  snapshot.corpus = session.Find("dm")->corpus;
  const std::string good = SerializeSuite(snapshot, lib);

  SuiteSnapshot out;
  std::vector<Prog> progs;
  // Not a snapshot at all.
  EXPECT_FALSE(ParseSuite("garbage\nmore garbage", lib, &out).ok());
  EXPECT_FALSE(ParseProgs("progs banana", lib, &progs).ok());
  SessionManifest manifest;
  EXPECT_FALSE(ParseManifest("", &manifest).ok());  // Empty input.
  // Truncations at every quarter of a valid file.
  for (size_t cut = 1; cut < 4; ++cut) {
    EXPECT_FALSE(ParseSuite(good.substr(0, good.size() * cut / 4), lib, &out)
                     .ok());
  }
  // A program referencing a syscall this suite does not define.
  EXPECT_FALSE(
      ParseProgs("progs 1\nprog 1\nc 0 ioctl$NOT_A_REAL_CALL\n", lib, &progs)
          .ok());
  // Malformed arg payloads.
  EXPECT_FALSE(ParseProgs("progs 1\nprog 1\nc 1 ioctl$DM_VERSION\n"
                          "a 0 zz 0 -1 -1 -\n",
                          lib, &progs)
                   .ok());
  EXPECT_FALSE(ParseProgs("progs 1\nprog 1\nc 1 ioctl$DM_VERSION\n"
                          "a 0 0 0 -1 -1 abc\n",  // Odd-length hex.
                          lib, &progs)
                   .ok());
  // Counts pointing past the end of the file.
  EXPECT_FALSE(ParseProgs("progs 5\nprog 0\n", lib, &progs).ok());
  // Negative or sign-prefixed unsigned fields must not wrap through
  // strtoull into huge values.
  EXPECT_FALSE(ParseProgs("progs -1\n", lib, &progs).ok());
  std::string negative = SerializeManifest(SessionManifest{});
  const size_t at = negative.find("rounds_completed 0");
  ASSERT_NE(at, std::string::npos);
  negative.replace(at, 18, "rounds_completed -1");
  EXPECT_FALSE(ParseManifest(negative, &manifest).ok());
}

// -- Binary suite codec ------------------------------------------------------

TEST_F(SessionTest, BinarySuiteSnapshotIsAByteFixpointMatchingTheTextCodec)
{
  // Same real session state as the textual fixpoint test, rendered
  // through the KGPB codec: serialize -> parse -> serialize must be a
  // byte fixpoint, and the parse must agree field-for-field with what
  // the textual codec round-trips.
  SpecLibrary lib = DmLibrary();
  SessionOptions options;
  options.WithSeed(5).WithRounds(2).WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  const SuiteState& state = *session.Find("dm");
  ASSERT_FALSE(state.corpus.empty());
  ASSERT_FALSE(state.crash_reproducers.empty());

  SuiteSnapshot snapshot;
  snapshot.name = "dm suite with spaces";
  snapshot.fingerprint = SuiteFingerprint(lib);
  snapshot.programs_executed = state.programs_executed;
  snapshot.wall_seconds = state.wall_seconds;
  snapshot.coverage = state.coverage.SortedBlocks();
  snapshot.crashes = state.crashes;
  snapshot.corpus = state.corpus;
  snapshot.crash_reproducers = state.crash_reproducers;
  snapshot.rounds = state.rounds;

  const std::string binary = SerializeSuiteBinary(snapshot, lib);
  ASSERT_TRUE(IsBinarySuiteSnapshot(binary));
  EXPECT_FALSE(IsBinarySuiteSnapshot(SerializeSuite(snapshot, lib)));

  SuiteSnapshot parsed;
  util::Status status = ParseSuiteBinary(binary, lib, &parsed);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(parsed.name, snapshot.name);
  EXPECT_EQ(parsed.fingerprint, snapshot.fingerprint);
  EXPECT_EQ(parsed.programs_executed, snapshot.programs_executed);
  EXPECT_EQ(parsed.wall_seconds, snapshot.wall_seconds);  // Raw bits.
  EXPECT_EQ(parsed.coverage, snapshot.coverage);
  EXPECT_EQ(parsed.crashes, snapshot.crashes);
  ExpectSameProgs(parsed.corpus, snapshot.corpus, "binary corpus");
  ASSERT_EQ(parsed.rounds.size(), snapshot.rounds.size());
  for (size_t i = 0; i < parsed.rounds.size(); ++i) {
    EXPECT_EQ(parsed.rounds[i].seed, snapshot.rounds[i].seed);
    EXPECT_EQ(parsed.rounds[i].wall_seconds, snapshot.rounds[i].wall_seconds);
    EXPECT_EQ(parsed.rounds[i].cumulative_coverage,
              snapshot.rounds[i].cumulative_coverage);
  }
  EXPECT_EQ(binary, SerializeSuiteBinary(parsed, lib))
      << "binary snapshot serialize -> parse -> serialize not a fixpoint";

  // ParseSuiteAuto sniffs the codec from the magic: both renderings of
  // the same snapshot must load to identical state.
  SuiteSnapshot from_text, from_binary;
  ASSERT_TRUE(ParseSuiteAuto(SerializeSuite(snapshot, lib), lib, &from_text)
                  .ok());
  ASSERT_TRUE(ParseSuiteAuto(binary, lib, &from_binary).ok());
  EXPECT_EQ(SerializeSuite(from_text, lib), SerializeSuite(from_binary, lib));
}

TEST_F(SessionTest, BinarySnapshotRejectsDamageWithAStatusNeverACrash)
{
  SpecLibrary lib = DmLibrary();
  SessionOptions options;
  options.WithSeed(9).WithRounds(1).WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  SuiteSnapshot snapshot;
  snapshot.corpus = session.Find("dm")->corpus;
  snapshot.coverage = session.Find("dm")->coverage.SortedBlocks();
  const std::string good = SerializeSuiteBinary(snapshot, lib);
  SuiteSnapshot out;

  // Truncation at every quarter of the file, and at every byte of the
  // final framed section (the torn-write shapes a crash can leave).
  for (size_t cut = 1; cut < 4; ++cut) {
    EXPECT_FALSE(
        ParseSuiteBinary(good.substr(0, good.size() * cut / 4), lib, &out)
            .ok())
        << "cut at quarter " << cut;
  }
  for (size_t cut = good.size() - 32; cut < good.size(); ++cut) {
    EXPECT_FALSE(ParseSuiteBinary(good.substr(0, cut), lib, &out).ok())
        << "cut at byte " << cut;
  }
  // Bit corruption anywhere in a section payload trips that section's
  // CRC32 (flip a byte past the header, clear of the length varints).
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;
  util::Status status = ParseSuiteBinary(flipped, lib, &out);
  EXPECT_FALSE(status.ok());
  // Trailing garbage after the last section is damage, not slack.
  EXPECT_FALSE(ParseSuiteBinary(good + "x", lib, &out).ok());
  // Not the binary format at all.
  EXPECT_FALSE(ParseSuiteBinary("garbage", lib, &out).ok());
  EXPECT_FALSE(ParseSuiteBinary("", lib, &out).ok());
  EXPECT_FALSE(ParseSuiteBinary(std::string("KGPB"), lib, &out).ok());

  // Version skew is named from both sides. The version varint sits just
  // past the 4-byte magic; 2 and 99 both encode in one byte.
  std::string skewed = good;
  ASSERT_EQ(skewed[4], 2);
  skewed[4] = 99;
  status = ParseSuiteBinary(skewed, lib, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version mismatch"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("v99"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("v2"), std::string::npos)
      << status.message();

  // Programs resolve by name: parsing against a suite that lacks the
  // referenced syscalls is a Status naming the missing call.
  SpecLibrary hpet = MakeLibrary(drivers::GroundTruthDeviceSpec(
      *Corpus::Instance().FindDevice("hpet")));
  status = ParseSuiteBinary(good, hpet, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("absent"), std::string::npos)
      << status.message();
}

TEST_F(SessionTest, ConvertSuiteMigratesBetweenCodecsLosslessly)
{
  SpecLibrary lib = DmLibrary();
  SessionOptions options;
  options.WithSeed(5).WithRounds(1).WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  const SuiteState& state = *session.Find("dm");
  SuiteSnapshot snapshot;
  snapshot.name = "dm";
  snapshot.fingerprint = SuiteFingerprint(lib);
  snapshot.coverage = state.coverage.SortedBlocks();
  snapshot.crashes = state.crashes;
  snapshot.corpus = state.corpus;
  snapshot.rounds = state.rounds;
  const std::string text = SerializeSuite(snapshot, lib);
  const std::string binary = SerializeSuiteBinary(snapshot, lib);

  // text -> binary -> text is the identity; so is binary -> text ->
  // binary. Conversion into a file's own codec is also the identity.
  std::string converted;
  ASSERT_TRUE(ConvertSuite(text, SnapshotCodec::kBinary, lib, &converted)
                  .ok());
  EXPECT_EQ(converted, binary);
  ASSERT_TRUE(ConvertSuite(converted, SnapshotCodec::kText, lib, &converted)
                  .ok());
  EXPECT_EQ(converted, text);
  ASSERT_TRUE(ConvertSuite(text, SnapshotCodec::kText, lib, &converted).ok());
  EXPECT_EQ(converted, text);
  ASSERT_TRUE(ConvertSuite(binary, SnapshotCodec::kBinary, lib, &converted)
                  .ok());
  EXPECT_EQ(converted, binary);
  // Damage propagates as a Status through the conversion path too.
  EXPECT_FALSE(
      ConvertSuite("garbage", SnapshotCodec::kBinary, lib, &converted).ok());
}

TEST_F(SessionTest, BinaryCodecSessionsResumeBitIdenticallyAcrossCodecs)
{
  // A session saved under the binary codec must resume exactly like one
  // saved under the textual codec — including cross-codec resumes in
  // both directions (Resume sniffs each suite file's magic).
  SpecLibrary lib = DmLibrary();
  const std::string dir_text = ScratchDir("codec_text");
  const std::string dir_binary = ScratchDir("codec_binary");
  auto session_options = [&](SnapshotCodec codec) {
    SessionOptions options;
    options.WithSeed(7).WithRounds(2).WithOrchestrator(SmallRound());
    options.WithSnapshotCodec(codec);
    return options;
  };

  for (SnapshotCodec codec : {SnapshotCodec::kText, SnapshotCodec::kBinary}) {
    const bool binary = codec == SnapshotCodec::kBinary;
    Session session = MakeSession(session_options(codec));
    ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
    ASSERT_TRUE(session.Run().ok());
    ASSERT_TRUE(session.Save(binary ? dir_binary : dir_text).ok());
  }
  std::string text_snap, binary_snap;
  ASSERT_TRUE(ReadFileToString(dir_text + "/suite_0.snap", &text_snap).ok());
  ASSERT_TRUE(
      ReadFileToString(dir_binary + "/suite_0.snap", &binary_snap).ok());
  EXPECT_FALSE(IsBinarySuiteSnapshot(text_snap));
  EXPECT_TRUE(IsBinarySuiteSnapshot(binary_snap));
  EXPECT_LT(binary_snap.size(), text_snap.size() / 2)
      << "binary snapshots should be far denser than text";

  // Resume each directory under the OPPOSITE codec, finish the schedule,
  // and compare against an uninterrupted 4-round run.
  Session straight = MakeSession(
      session_options(SnapshotCodec::kText).WithRounds(4));
  ASSERT_TRUE(straight.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(straight.Run().ok());

  for (SnapshotCodec codec : {SnapshotCodec::kText, SnapshotCodec::kBinary}) {
    const bool binary = codec == SnapshotCodec::kBinary;
    // The binary-codec session resumes the textual directory and vice
    // versa, then runs its 2 remaining rounds.
    Session resumed = MakeSession(session_options(codec));
    ASSERT_TRUE(resumed.RegisterSuite("dm", &lib).ok());
    util::Status status = resumed.Resume(binary ? dir_text : dir_binary);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(resumed.rounds_completed(), 2);
    ASSERT_TRUE(resumed.Run().ok());
    ExpectSameState(*resumed.Find("dm"), *straight.Find("dm"),
                    binary ? "binary session, text dir"
                           : "text session, binary dir");
  }
}

TEST_F(SessionTest, FailedResumeLeavesTheSessionUntouched)
{
  SpecLibrary dm = DmLibrary();
  SpecLibrary hpet = MakeLibrary(drivers::GroundTruthDeviceSpec(
      *Corpus::Instance().FindDevice("hpet")));
  const std::string dir = ScratchDir("partial_resume");
  SessionOptions options;
  options.WithSeed(29).WithRounds(1).WithOrchestrator(SmallRound());

  Session saved = MakeSession(options);
  ASSERT_TRUE(saved.RegisterSuite("dm", &dm).ok());
  ASSERT_TRUE(saved.RegisterSuite("hpet", &hpet).ok());
  ASSERT_TRUE(saved.Run().ok());
  ASSERT_TRUE(saved.Save(dir).ok());

  // Corrupt the SECOND suite file: the first parses fine, but the
  // failed resume must not leak its state into the live session.
  ASSERT_TRUE(WriteStringToFile(dir + "/suite_1.snap", "garbage\n").ok());
  Session resumed = MakeSession(options);
  ASSERT_TRUE(resumed.RegisterSuite("dm", &dm).ok());
  ASSERT_TRUE(resumed.RegisterSuite("hpet", &hpet).ok());
  EXPECT_FALSE(resumed.Resume(dir).ok());
  EXPECT_EQ(resumed.rounds_completed(), 0);
  EXPECT_EQ(resumed.Find("dm")->coverage.Count(), 0u);
  EXPECT_TRUE(resumed.Find("dm")->corpus.empty());
  EXPECT_TRUE(resumed.Find("dm")->crashes.empty());
  // And the untouched session can still run a clean fresh schedule.
  ASSERT_TRUE(resumed.Run().ok());
  ExpectSameState(*resumed.Find("dm"), *saved.Find("dm"), "fresh after fail");
}

// -- Session semantics -------------------------------------------------------

TEST_F(SessionTest, HashChainSessionMatchesLegacyInlineLoop)
{
  // The pre-Session inline loop (orchestrator + distiller chained by
  // hand), kept here as the reference the redesign must not drift from.
  SpecLibrary lib = DmLibrary();
  const int rounds = 3;
  const uint64_t master_seed = 31;

  vkernel::Coverage ref_coverage;
  std::map<std::string, int> ref_crashes;
  std::vector<Prog> ref_corpus;
  size_t ref_programs = 0;
  Distiller distiller(&lib, Boot);
  for (int round = 0; round < rounds; ++round) {
    OrchestratorOptions orchestrator = SmallRound();
    orchestrator.campaign.seed =
        round == 0 ? master_seed
                   : util::HashCombine(master_seed,
                                       static_cast<uint64_t>(round));
    orchestrator.campaign.seed_corpus = std::move(ref_corpus);
    OrchestratorResult campaign = RunShardedCampaign(lib, Boot, orchestrator);
    ref_coverage.Merge(campaign.coverage);
    for (const auto& [title, count] : campaign.crashes) {
      ref_crashes[title] += count;
    }
    ref_programs += campaign.programs_executed;
    ref_corpus = distiller.Distill(campaign.corpus).corpus;
  }

  SessionOptions options;
  options.WithSeed(master_seed)
      .WithRounds(rounds)
      .WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());

  const SuiteState& state = *session.Find("dm");
  EXPECT_EQ(state.coverage.blocks(), ref_coverage.blocks());
  EXPECT_EQ(state.crashes, ref_crashes);
  EXPECT_EQ(state.programs_executed, ref_programs);
  ExpectSameProgs(state.corpus, ref_corpus, "legacy loop corpus");
  ASSERT_EQ(state.rounds.size(), static_cast<size_t>(rounds));
  EXPECT_EQ(state.rounds.back().cumulative_coverage, ref_coverage.Count());
}

TEST_F(SessionTest, ArithmeticSessionMatchesIndependentRepetitions)
{
  // The ExperimentContext::Fuzz contract: rounds are independent
  // campaigns at seed + r * stride, no carry, no distillation.
  SpecLibrary lib = DmLibrary();
  const uint64_t seed_base = 1000;
  const int reps = 3;

  SessionOptions options;
  options.WithSeed(seed_base)
      .WithRounds(reps)
      .WithSchedule(SeedSchedule::kArithmetic)
      .WithSeedStride(7919)
      .WithCarryCorpus(false)
      .WithDistill(false)
      .WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  const SuiteState& state = *session.Find("dm");

  vkernel::Coverage ref_merged;
  for (int rep = 0; rep < reps; ++rep) {
    OrchestratorOptions orchestrator = SmallRound();
    orchestrator.campaign.seed =
        seed_base + static_cast<uint64_t>(rep) * 7919;
    OrchestratorResult campaign = RunShardedCampaign(lib, Boot, orchestrator);
    ref_merged.Merge(campaign.coverage);
    ASSERT_LT(static_cast<size_t>(rep), state.rounds.size());
    EXPECT_EQ(state.rounds[rep].seed, orchestrator.campaign.seed);
    EXPECT_EQ(state.rounds[rep].round_coverage, campaign.coverage.Count());
    EXPECT_EQ(state.rounds[rep].round_unique_crashes,
              campaign.crashes.size());
    if (rep == reps - 1) {
      ExpectSameProgs(state.corpus, campaign.corpus, "last rep corpus");
    }
  }
  EXPECT_EQ(state.coverage.blocks(), ref_merged.blocks());
}

TEST_F(SessionTest, ResumedSessionIsBitIdenticalToUninterruptedRun)
{
  SpecLibrary lib = DmLibrary();
  const std::string dir = ScratchDir("resume_determinism");
  auto session_options = [&] {
    SessionOptions options;
    options.WithSeed(7).WithRounds(2).WithOrchestrator(SmallRound());
    return options;
  };

  // Interrupted: 2 rounds, Save, fresh session, Resume, 2 more rounds.
  Session first = MakeSession(session_options());
  ASSERT_TRUE(first.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(first.Run().ok());
  ASSERT_TRUE(first.Save(dir).ok());

  Session resumed = MakeSession(session_options());
  ASSERT_TRUE(resumed.RegisterSuite("dm", &lib).ok());
  util::Status status = resumed.Resume(dir);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(resumed.rounds_completed(), 2);
  ASSERT_TRUE(resumed.Run().ok());
  EXPECT_EQ(resumed.rounds_completed(), 4);

  // Uninterrupted: 4 rounds in one session.
  Session straight = MakeSession(session_options().WithRounds(4));
  ASSERT_TRUE(straight.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(straight.Run().ok());

  ExpectSameState(*resumed.Find("dm"), *straight.Find("dm"),
                  "resumed vs straight");

  // And both match the straight-through legacy RunCampaignLoop shim.
  CampaignLoopOptions loop;
  loop.orchestrator = SmallRound();
  loop.orchestrator.campaign.seed = 7;
  loop.rounds = 4;
  CampaignLoopResult legacy = RunCampaignLoop(lib, Boot, loop);
  EXPECT_EQ(legacy.coverage.blocks(),
            resumed.Find("dm")->coverage.blocks());
  EXPECT_EQ(legacy.crashes, resumed.Find("dm")->crashes);
  ExpectSameProgs(legacy.corpus, resumed.Find("dm")->corpus,
                  "legacy loop vs resumed");
}

TEST_F(SessionTest, SaveResumeSaveRoundTripsBitIdentically)
{
  SpecLibrary lib = DmLibrary();
  const std::string dir_a = ScratchDir("save_a");
  const std::string dir_b = ScratchDir("save_b");
  SessionOptions options;
  options.WithSeed(13).WithRounds(2).WithOrchestrator(SmallRound());

  Session first = MakeSession(options);
  ASSERT_TRUE(first.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(first.Run().ok());
  ASSERT_TRUE(first.Save(dir_a).ok());

  Session second = MakeSession(options);
  ASSERT_TRUE(second.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(second.Resume(dir_a).ok());
  ASSERT_TRUE(second.Save(dir_b).ok());

  for (const char* file :
       {"session.manifest", "suite_0.snap", "suite_0.journal"}) {
    std::string a, b;
    ASSERT_TRUE(ReadFileToString(dir_a + "/" + file, &a).ok());
    ASSERT_TRUE(ReadFileToString(dir_b + "/" + file, &b).ok());
    EXPECT_EQ(a, b) << file << " changed across Save -> Resume -> Save";
  }
}

TEST_F(SessionTest, ResumeRejectsMismatchedConfigurationAndDriftedSuites)
{
  SpecLibrary lib = DmLibrary();
  const std::string dir = ScratchDir("resume_mismatch");
  SessionOptions options;
  options.WithSeed(21).WithRounds(1).WithOrchestrator(SmallRound());
  Session saved = MakeSession(options);
  ASSERT_TRUE(saved.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(saved.Run().ok());
  ASSERT_TRUE(saved.Save(dir).ok());

  // Different master seed -> different schedule -> rejected.
  Session wrong_seed = MakeSession(SessionOptions()
                                       .WithSeed(22)
                                       .WithRounds(1)
                                       .WithOrchestrator(SmallRound()));
  ASSERT_TRUE(wrong_seed.RegisterSuite("dm", &lib).ok());
  util::Status status = wrong_seed.Resume(dir);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);

  // Different suite name -> rejected.
  Session wrong_name = MakeSession(options);
  ASSERT_TRUE(wrong_name.RegisterSuite("not-dm", &lib).ok());
  EXPECT_FALSE(wrong_name.Resume(dir).ok());

  // Same name, drifted specs (a different module) -> fingerprint reject.
  SpecLibrary other = MakeLibrary(drivers::GroundTruthDeviceSpec(
      *Corpus::Instance().FindDevice("hpet")));
  Session drifted = MakeSession(options);
  ASSERT_TRUE(drifted.RegisterSuite("dm", &other).ok());
  status = drifted.Resume(dir);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("drifted"), std::string::npos)
      << status.message();

  // Missing snapshot directory -> IO error, not a crash.
  Session missing = MakeSession(options);
  ASSERT_TRUE(missing.RegisterSuite("dm", &lib).ok());
  EXPECT_FALSE(missing.Resume(dir + "_nope").ok());
}

TEST_F(SessionTest, MisconfigurationSurfacesAsStatusErrors)
{
  SpecLibrary lib = DmLibrary();
  SpecLibrary empty;
  empty.Finalize();

  Session session = MakeSession(SessionOptions().WithRounds(1)
                                    .WithOrchestrator(SmallRound()));
  EXPECT_FALSE(session.Run().ok());  // No suites registered.
  EXPECT_FALSE(session.RegisterSuite("", &lib).ok());
  // A line break in a name would corrupt the line-oriented snapshot.
  EXPECT_FALSE(session.RegisterSuite("dm\nextra", &lib).ok());
  EXPECT_FALSE(session.RegisterSuite("empty", &empty).ok());
  EXPECT_FALSE(session.RegisterSuite("null", nullptr).ok());
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  EXPECT_FALSE(session.RegisterSuite("dm", &lib).ok());  // Duplicate.

  DistillResult distilled;
  EXPECT_FALSE(session.DistillInto("nope", {}, &distilled).ok());
  EXPECT_TRUE(session.DistillInto("dm", {}, &distilled).ok());

  ASSERT_TRUE(session.Run().ok());
  EXPECT_FALSE(session.RegisterSuite("late", &lib).ok());
  EXPECT_FALSE(session.Resume("/nonexistent").ok());  // Mid-schedule.

  // Unbounded schedule with no stop rule is refused up front.
  Session unbounded = MakeSession(SessionOptions().WithRounds(0));
  ASSERT_TRUE(unbounded.RegisterSuite("dm", &lib).ok());
  EXPECT_FALSE(unbounded.Run().ok());
}

TEST_F(SessionTest, CoveragePlateauStopsTheSchedule)
{
  SpecLibrary lib = DmLibrary();

  // An unreachable gain target makes every round stale: the rule must
  // fire after exactly plateau_rounds rounds despite rounds = 10.
  SessionOptions options;
  options.WithSeed(3)
      .WithRounds(10)
      .WithPlateau(2, static_cast<size_t>(-1))
      .WithOrchestrator(SmallRound());
  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.rounds_completed(), 2);
  EXPECT_TRUE(session.Plateaued());

  // With the natural gain target the dm suite saturates quickly: the
  // session must stop well short of its 10-round budget, one round
  // after two consecutive no-gain rounds.
  Session natural = MakeSession(SessionOptions()
                                    .WithSeed(3)
                                    .WithRounds(10)
                                    .WithPlateau(2)
                                    .WithOrchestrator(SmallRound()));
  ASSERT_TRUE(natural.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(natural.Run().ok());
  EXPECT_LT(natural.rounds_completed(), 10);
  EXPECT_TRUE(natural.Plateaued());
  // The plateau state survives Save/Resume: a resumed session must not
  // restart a finished schedule.
  const std::string dir = ScratchDir("plateau");
  ASSERT_TRUE(natural.Save(dir).ok());
  Session resumed = MakeSession(SessionOptions()
                                    .WithSeed(3)
                                    .WithRounds(10)
                                    .WithPlateau(2)
                                    .WithOrchestrator(SmallRound()));
  ASSERT_TRUE(resumed.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(resumed.Resume(dir).ok());
  ASSERT_TRUE(resumed.Run().ok());
  EXPECT_EQ(resumed.rounds_completed(), natural.rounds_completed());
}

TEST_F(SessionTest, MultiSuiteSessionsPersistEverySuite)
{
  SpecLibrary dm = DmLibrary();
  SpecLibrary hpet_lib = MakeLibrary(drivers::GroundTruthDeviceSpec(
      *Corpus::Instance().FindDevice("hpet")));
  const std::string dir = ScratchDir("multi_suite");
  SessionOptions options;
  options.WithSeed(17).WithRounds(2).WithOrchestrator(SmallRound());

  Session session = MakeSession(options);
  ASSERT_TRUE(session.RegisterSuite("device mapper", &dm).ok());
  ASSERT_TRUE(session.RegisterSuite("hpet device", &hpet_lib).ok());
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Save(dir).ok());

  Session resumed = MakeSession(options);
  ASSERT_TRUE(resumed.RegisterSuite("device mapper", &dm).ok());
  ASSERT_TRUE(resumed.RegisterSuite("hpet device", &hpet_lib).ok());
  util::Status status = resumed.Resume(dir);
  ASSERT_TRUE(status.ok()) << status.message();
  for (const char* name : {"device mapper", "hpet device"}) {
    ExpectSameState(*session.Find(name), *resumed.Find(name), name);
  }
  ASSERT_EQ(resumed.SuiteNames().size(), 2u);
}

}  // namespace
}  // namespace kernelgpt::fuzzer
