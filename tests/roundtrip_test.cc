// Round-trip and invariant tests across the whole corpus:
//  - syzlang fixpoint: Print(Parse(Print(spec))) == Print(spec) and the
//    reparse is error-free, for every ground-truth and existing spec of
//    every corpus module (the property the printer header promises);
//  - mutator invariants: arbitrarily mutated programs stay structurally
//    valid against their SpecLibrary (arg arity, backward resource refs,
//    len links), so the executor can always run them.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/generator.h"
#include "fuzzer/mutator.h"
#include "syzlang/parser.h"
#include "syzlang/printer.h"
#include "syzlang/validator.h"

namespace kernelgpt {
namespace {

using drivers::Corpus;

// -- Syzlang parser -> printer -> parser fixpoint ---------------------------

void
ExpectRoundTrip(const syzlang::SpecFile& spec, const std::string& label)
{
  const std::string once = syzlang::Print(spec);
  // Keep the origin: the printer renders it as a header comment, and the
  // fixpoint must compare like with like.
  syzlang::ParseResult reparsed = syzlang::Parse(once, spec.origin);
  ASSERT_TRUE(reparsed.ok()) << label << ": reparse errors, first: "
                             << reparsed.errors.front();
  EXPECT_EQ(reparsed.spec.decls.size(), spec.decls.size()) << label;
  const std::string twice = syzlang::Print(reparsed.spec);
  EXPECT_EQ(once, twice) << label << ": print -> parse -> print not a "
                         << "fixpoint";
}

TEST(SyzlangRoundTripTest, GroundTruthDeviceSpecsReachFixpoint)
{
  for (const auto& dev : Corpus::Instance().devices()) {
    ExpectRoundTrip(drivers::GroundTruthDeviceSpec(dev), "gt:" + dev.id);
  }
}

TEST(SyzlangRoundTripTest, ExistingDeviceSpecsReachFixpoint)
{
  for (const auto& dev : Corpus::Instance().devices()) {
    syzlang::SpecFile spec = drivers::ExistingDeviceSpec(dev);
    if (spec.decls.empty()) continue;  // Some drivers have no existing spec.
    ExpectRoundTrip(spec, "existing:" + dev.id);
  }
}

TEST(SyzlangRoundTripTest, SocketSpecsReachFixpoint)
{
  for (const auto& sock : Corpus::Instance().sockets()) {
    ExpectRoundTrip(drivers::GroundTruthSocketSpec(sock), "gt:" + sock.id);
    syzlang::SpecFile existing = drivers::ExistingSocketSpec(sock);
    if (!existing.decls.empty()) {
      ExpectRoundTrip(existing, "existing:" + sock.id);
    }
  }
}

TEST(SyzlangRoundTripTest, RoundTrippedSpecStillValidates)
{
  // Fixpoint must preserve semantic validity, not only syntax.
  syzlang::ConstTable consts =
      Corpus::Instance().BuildIndex().BuildConstTable();
  const drivers::DeviceSpec* dm = Corpus::Instance().FindDevice("dm");
  ASSERT_NE(dm, nullptr);
  syzlang::SpecFile spec = drivers::GroundTruthDeviceSpec(*dm);

  syzlang::ValidationResult before = syzlang::Validate(spec, consts);
  syzlang::ParseResult reparsed = syzlang::Parse(syzlang::Print(spec), "dm");
  ASSERT_TRUE(reparsed.ok());
  syzlang::ValidationResult after = syzlang::Validate(reparsed.spec, consts);
  EXPECT_EQ(before.errors.size(), after.errors.size());
  EXPECT_TRUE(after.ok());
}

// -- Mutator invariants -----------------------------------------------------

class MutatorInvariantTest : public ::testing::Test {
 protected:
  static fuzzer::SpecLibrary MakeLibrary(const char* device_id) {
    fuzzer::SpecLibrary lib;
    lib.SetConsts(Corpus::Instance().BuildIndex().BuildConstTable());
    lib.Add(drivers::GroundTruthDeviceSpec(
        *Corpus::Instance().FindDevice(device_id)));
    lib.Finalize();
    return lib;
  }

  /// Structural validity the executor relies on.
  static void ExpectProgValid(const fuzzer::Prog& prog,
                              const fuzzer::SpecLibrary& lib) {
    for (size_t ci = 0; ci < prog.calls.size(); ++ci) {
      const fuzzer::Call& call = prog.calls[ci];
      ASSERT_LT(call.syscall_index, lib.syscalls().size());
      const syzlang::SyscallDef& def = lib.syscalls()[call.syscall_index];
      // One argument per declared parameter, always.
      ASSERT_EQ(call.args.size(), def.params.size()) << def.FullName();
      for (size_t ai = 0; ai < call.args.size(); ++ai) {
        const fuzzer::Arg& arg = call.args[ai];
        if (arg.kind == fuzzer::Arg::Kind::kResourceRef) {
          // Resource refs only point backwards (results exist at exec time).
          EXPECT_GE(arg.ref_call, -1);
          EXPECT_LT(arg.ref_call, static_cast<int>(ci)) << def.FullName();
        }
        if (arg.len_of_param >= 0) {
          // Live len links name a sibling and carry its current size.
          ASSERT_LT(arg.len_of_param, static_cast<int>(call.args.size()));
          const fuzzer::Arg& target =
              call.args[static_cast<size_t>(arg.len_of_param)];
          EXPECT_EQ(arg.scalar, target.bytes.size()) << def.FullName();
        } else {
          EXPECT_TRUE(arg.len_of_param == -1 ||
                      arg.len_of_param == fuzzer::kBrokenLenLink);
        }
      }
    }
  }
};

TEST_F(MutatorInvariantTest, MutatedProgsStayValidAgainstLibrary)
{
  fuzzer::SpecLibrary lib = MakeLibrary("dm");
  util::Rng rng(1234);
  fuzzer::Generator generator(&lib, &rng);
  fuzzer::Mutator mutator(&lib, &generator, &rng);

  for (int round = 0; round < 200; ++round) {
    fuzzer::Prog prog = generator.Generate(6);
    ExpectProgValid(prog, lib);
    // Pile mutations on the same program; validity must be preserved
    // across arbitrary operator sequences, not just one step.
    for (int step = 0; step < 8; ++step) {
      mutator.Mutate(&prog);
      ExpectProgValid(prog, lib);
    }
  }
}

TEST_F(MutatorInvariantTest, ResourceChainsSurviveMutationOnKvm)
{
  // kvm has the deepest resource chain (fd_kvm -> vm -> vcpu), so call
  // removal/duplication stresses ref fixup hardest there.
  fuzzer::SpecLibrary lib = MakeLibrary("kvm");
  util::Rng rng(77);
  fuzzer::Generator generator(&lib, &rng);
  fuzzer::Mutator mutator(&lib, &generator, &rng);

  for (int round = 0; round < 100; ++round) {
    fuzzer::Prog prog = generator.Generate(8);
    for (int step = 0; step < 12; ++step) {
      mutator.Mutate(&prog);
      ExpectProgValid(prog, lib);
    }
  }
}

TEST_F(MutatorInvariantTest, MutationIsDeterministicForSeed)
{
  fuzzer::SpecLibrary lib = MakeLibrary("dm");
  auto run = [&lib] {
    util::Rng rng(555);
    fuzzer::Generator generator(&lib, &rng);
    fuzzer::Mutator mutator(&lib, &generator, &rng);
    fuzzer::Prog prog = generator.Generate(6);
    for (int i = 0; i < 20; ++i) mutator.Mutate(&prog);
    return FormatProg(prog, lib);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kernelgpt
