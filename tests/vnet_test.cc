// State-machine battery for the vnet TCP/UDP stack:
//  - a legal-transition walk covers every TCP transition block and never
//    crashes;
//  - illegal transitions raise the "state-machine violation" crash class
//    with deterministic titles (distinct from errno returns);
//  - ephemeral-port allocation is deterministic across program windows;
//  - accept-backlog overflow refuses connections and claims its edge
//    block;
//  - batch windows reset the port namespace and socket state completely;
//  - module state shapes are slot-normalized (identical across fd
//    layouts);
//  - ground-truth net campaigns reach ESTABLISHED/TIME_WAIT coverage and
//    produce minimized state-machine-violation reproducers,
//    reproducibly at 1 and at 4 workers;
//  - a Session over net corpora is bit-identical across a mid-campaign
//    Save/Resume.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/distiller.h"
#include "fuzzer/executor.h"
#include "fuzzer/generator.h"
#include "fuzzer/orchestrator.h"
#include "fuzzer/session.h"
#include "util/rng.h"
#include "vkernel/kernel.h"
#include "vnet/inet.h"
#include "vnet/tcp_state.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class VnetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  /// Ground-truth specs of the two vnet-backed corpus sockets only —
  /// the net campaign surface.
  static SpecLibrary NetLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(drivers::GroundTruthSocketSpec(*Corpus::Instance().FindSocket("tcp")));
    lib.Add(drivers::GroundTruthSocketSpec(*Corpus::Instance().FindSocket("udp")));
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  static drivers::BlockLayout TcpBlocks() {
    return vnet::TcpBlockLayout(*Corpus::Instance().FindSocket("tcp"));
  }
  static drivers::BlockLayout UdpBlocks() {
    return vnet::UdpBlockLayout(*Corpus::Instance().FindSocket("udp"));
  }

  /// Packed sockaddr_tcp/sockaddr_udp: family u16, port u16, addr0 u32.
  static std::vector<uint8_t> Addr(uint16_t port) {
    return {2, 0, static_cast<uint8_t>(port & 0xff),
            static_cast<uint8_t>(port >> 8), 0, 0, 0, 0};
  }
  /// Packed tcp_int_opt/udp_int_opt payload.
  static std::vector<uint8_t> I32(uint32_t v) {
    return {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
            static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
  }

  static std::string ScratchDir(const std::string& leaf) {
    const std::string dir =
        ::testing::TempDir() + "kernelgpt_vnet_test/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// Index of `full_name` ("bind$tcp") in `lib`; asserts on miss.
  static size_t FindCall(const SpecLibrary& lib, const std::string& full_name) {
    for (size_t i = 0; i < lib.syscalls().size(); ++i) {
      if (lib.syscalls()[i].FullName() == full_name) return i;
    }
    ADD_FAILURE() << "no syscall " << full_name;
    return 0;
  }

  static Arg Scalar(uint64_t v) {
    Arg a;
    a.scalar = v;
    return a;
  }
  static Arg Ref(int call) {
    Arg a;
    a.kind = Arg::Kind::kResourceRef;
    a.ref_call = call;
    return a;
  }
  static Arg Buf(std::vector<uint8_t> bytes,
                 syzlang::Dir dir = syzlang::Dir::kIn) {
    Arg a;
    a.kind = Arg::Kind::kBuffer;
    a.bytes = std::move(bytes);
    a.dir = dir;
    return a;
  }
  static Arg Len(uint64_t v, int of_param) {
    Arg a = Scalar(v);
    a.len_of_param = of_param;
    return a;
  }

  /// Ground-truth seed programs exercising the stack's happy paths: a
  /// full TCP establish + accept, a UDP datagram exchange, and a
  /// backlog-1 listener driven past capacity. Campaigns replay these to
  /// prime coverage and mutate them into the surrounding state space.
  static std::vector<Prog> NetSeeds(const SpecLibrary& lib) {
    const size_t tcp_socket = FindCall(lib, "socket$tcp");
    const size_t tcp_bind = FindCall(lib, "bind$tcp");
    const size_t tcp_listen = FindCall(lib, "listen$tcp");
    const size_t tcp_connect = FindCall(lib, "connect$tcp");
    const size_t tcp_accept = FindCall(lib, "accept$tcp");
    const size_t tcp_backlog = FindCall(lib, "setsockopt$tcp_TCP_BACKLOG");
    const size_t udp_socket = FindCall(lib, "socket$udp");
    const size_t udp_bind = FindCall(lib, "bind$udp");
    const size_t udp_sendto = FindCall(lib, "sendto$udp");
    const size_t udp_recvfrom = FindCall(lib, "recvfrom$udp");

    auto sock_call = [](size_t idx, uint64_t type, uint64_t proto) {
      return Call{idx, {Scalar(2), Scalar(type), Scalar(proto)}};
    };
    auto addr_call = [](size_t idx, int fd, uint16_t port) {
      return Call{idx, {Ref(fd), Buf(Addr(port)), Len(8, 1)}};
    };

    std::vector<Prog> seeds;
    // Establish + accept: covers the whole legal transition walk once
    // EndProgram tears the pair down.
    Prog establish;
    establish.calls = {
        sock_call(tcp_socket, 1, 6),
        addr_call(tcp_bind, 0, 5),
        Call{tcp_listen, {Ref(0), Scalar(0)}},
        sock_call(tcp_socket, 1, 6),
        addr_call(tcp_connect, 3, 5),
        Call{tcp_accept, {Ref(0), Scalar(0), Scalar(0)}},
    };
    seeds.push_back(std::move(establish));

    // UDP datagram flow.
    Prog datagram;
    datagram.calls = {
        sock_call(udp_socket, 2, 17),
        addr_call(udp_bind, 0, 4),
        sock_call(udp_socket, 2, 17),
        Call{udp_sendto,
             {Ref(2), Buf({1, 2}), Len(2, 1), Scalar(0), Buf(Addr(4)),
              Len(8, 4)}},
        Call{udp_recvfrom,
             {Ref(0), Buf(std::vector<uint8_t>(16), syzlang::Dir::kOut),
              Len(16, 1)}},
    };
    seeds.push_back(std::move(datagram));

    // Backlog-1 listener driven past capacity.
    Prog overflow;
    overflow.calls = {
        sock_call(tcp_socket, 1, 6),
        Call{tcp_backlog,
             {Ref(0), Scalar(6), Scalar(14), Buf(I32(1)), Len(4, 3)}},
        addr_call(tcp_bind, 0, 7),
        Call{tcp_listen, {Ref(0), Scalar(0)}},
        sock_call(tcp_socket, 1, 6),
        addr_call(tcp_connect, 4, 7),
        sock_call(tcp_socket, 1, 6),
        addr_call(tcp_connect, 6, 7),
    };
    seeds.push_back(std::move(overflow));
    return seeds;
  }

  static bool HasViolation(const std::map<std::string, int>& crashes) {
    for (const auto& [title, count] : crashes) {
      if (title.rfind(vnet::kViolationPrefix, 0) == 0 && count > 0) {
        return true;
      }
    }
    return false;
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* VnetTest::consts_ = nullptr;

/// One strict kernel booted with the full corpus, inside a program
/// window, with its own coverage sink — the direct-drive harness.
struct NetKernel {
  vkernel::Kernel kernel;
  vkernel::Coverage cov;
  vkernel::ExecContext ctx{&cov};

  NetKernel() {
    Corpus::Instance().RegisterAll(&kernel);
    kernel.BeginProgram();
  }
  long Sock(uint64_t type, uint64_t proto) {
    vkernel::SyscallResult r = kernel.Socket(2, type, proto, ctx);
    EXPECT_TRUE(r.ok()) << "socket: errno " << r.verrno;
    return r.retval;
  }
};

// -- Direct state-machine drive ---------------------------------------------

TEST_F(VnetTest, LegalTransitionWalkCoversEveryTransition)
{
  NetKernel k;
  const std::vector<uint8_t> addr = Addr(5);
  const vkernel::Buffer baddr = vkernel::Buffer::View(addr);

  long s = k.Sock(1, 6);
  long c = k.Sock(1, 6);
  EXPECT_TRUE(k.kernel.Bind(s, baddr, k.ctx).ok());
  EXPECT_TRUE(k.kernel.Listen(s, k.ctx).ok());
  EXPECT_TRUE(k.kernel.Connect(c, baddr, k.ctx).ok());
  vkernel::SyscallResult acc = k.kernel.Accept(s, k.ctx);
  ASSERT_TRUE(acc.ok()) << "accept: errno " << acc.verrno;
  long a = acc.retval;

  // Data flows across the loopback pair.
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  vkernel::Buffer empty;
  EXPECT_EQ(k.kernel
                .SendTo(c, vkernel::Buffer::View(payload), empty, k.ctx)
                .retval,
            4);
  vkernel::Buffer out;
  EXPECT_EQ(k.kernel.RecvFrom(a, &out, k.ctx).retval, 4);
  EXPECT_EQ(out.size(), 4u);

  // Orderly bidirectional teardown: c FINs first, then a — walking
  // FIN_WAIT1/2 -> TIME_WAIT on one side and CLOSE_WAIT -> LAST_ACK ->
  // CLOSED on the other.
  EXPECT_TRUE(k.kernel.Close(c, k.ctx).ok());
  EXPECT_TRUE(k.kernel.Close(a, k.ctx).ok());
  EXPECT_TRUE(k.kernel.Close(s, k.ctx).ok());
  EXPECT_FALSE(k.ctx.crashed()) << k.ctx.crash_title();

  const drivers::BlockLayout blocks = TcpBlocks();
  const char* walk[] = {
      "CLOSED->LISTEN",        "CLOSED->SYN_SENT",
      "SYN_SENT->ESTABLISHED", "LISTEN->SYN_RCVD",
      "SYN_RCVD->ESTABLISHED", "ESTABLISHED->FIN_WAIT1",
      "FIN_WAIT1->FIN_WAIT2",  "FIN_WAIT2->TIME_WAIT",
      "ESTABLISHED->CLOSE_WAIT", "CLOSE_WAIT->LAST_ACK",
      "LAST_ACK->CLOSED",
  };
  for (const char* t : walk) {
    EXPECT_TRUE(k.cov.Contains(blocks.IdOf("trans", t, 0)))
        << "transition not covered: " << t;
  }
}

TEST_F(VnetTest, IllegalTransitionRaisesStateMachineViolationCrash)
{
  NetKernel k;
  const std::vector<uint8_t> addr = Addr(3);
  long s = k.Sock(1, 6);
  EXPECT_TRUE(k.kernel.Bind(s, vkernel::Buffer::View(addr), k.ctx).ok());
  EXPECT_TRUE(k.kernel.Listen(s, k.ctx).ok());

  // connect() on a listening socket is not an errno return — it is the
  // new crash class, with a deterministic title naming op and state.
  vkernel::SyscallResult r =
      k.kernel.Connect(s, vkernel::Buffer::View(addr), k.ctx);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(k.ctx.crashed());
  EXPECT_EQ(k.ctx.crash_title(),
            std::string(vnet::kViolationPrefix) + "tcp connect in LISTEN");
  EXPECT_TRUE(k.cov.Contains(TcpBlocks().IdOf("edge", "violation", 0)));
}

TEST_F(VnetTest, UdpReleaseWhileCorkedIsViolation)
{
  NetKernel k;
  const std::vector<uint8_t> dest = Addr(4);
  long rx = k.Sock(2, 17);
  long tx = k.Sock(2, 17);
  EXPECT_TRUE(k.kernel.Bind(rx, vkernel::Buffer::View(dest), k.ctx).ok());

  // Cork the sender, buffer one datagram, and close without uncorking:
  // data loss the stack reports as a state-machine violation.
  std::vector<uint8_t> on = I32(1);
  EXPECT_TRUE(
      k.kernel.SetSockOpt(tx, 17, 1, vkernel::Buffer::View(on), k.ctx).ok());
  std::vector<uint8_t> payload = {9, 9};
  EXPECT_EQ(k.kernel
                .SendTo(tx, vkernel::Buffer::View(payload),
                        vkernel::Buffer::View(dest), k.ctx)
                .retval,
            2);
  EXPECT_TRUE(k.cov.Contains(UdpBlocks().IdOf("edge", "send-corked", 0)));
  EXPECT_TRUE(k.kernel.Close(tx, k.ctx).ok());
  ASSERT_TRUE(k.ctx.crashed());
  EXPECT_EQ(k.ctx.crash_title(),
            std::string(vnet::kViolationPrefix) +
                "udp release while corked with pending data");
}

TEST_F(VnetTest, EphemeralPortAllocationIsDeterministicAcrossPrograms)
{
  NetKernel k;
  const std::vector<uint8_t> wildcard = Addr(0);
  auto run_program = [&]() {
    for (int i = 0; i < 3; ++i) {
      long fd = k.Sock(1, 6);
      EXPECT_TRUE(
          k.kernel.Bind(fd, vkernel::Buffer::View(wildcard), k.ctx).ok());
    }
    return k.kernel.ModuleStateShape();
  };

  std::string first = run_program();
  EXPECT_NE(first.find("tcp"), std::string::npos) << first;
  k.kernel.EndProgram(k.ctx);
  k.kernel.BeginProgram();
  std::string second = run_program();
  k.kernel.EndProgram(k.ctx);

  // The allocator reseeds on program reset: identical programs draw
  // identical ephemeral ports, observable in the state shape.
  EXPECT_EQ(first, second);
}

TEST_F(VnetTest, BacklogOverflowRefusesExtraConnections)
{
  NetKernel k;
  const std::vector<uint8_t> addr = Addr(7);
  long s = k.Sock(1, 6);
  std::vector<uint8_t> one = I32(1);
  EXPECT_TRUE(
      k.kernel.SetSockOpt(s, 6, 14, vkernel::Buffer::View(one), k.ctx).ok());
  EXPECT_TRUE(k.kernel.Bind(s, vkernel::Buffer::View(addr), k.ctx).ok());
  EXPECT_TRUE(k.kernel.Listen(s, k.ctx).ok());

  long c1 = k.Sock(1, 6);
  long c2 = k.Sock(1, 6);
  EXPECT_TRUE(k.kernel.Connect(c1, vkernel::Buffer::View(addr), k.ctx).ok());
  vkernel::SyscallResult r =
      k.kernel.Connect(c2, vkernel::Buffer::View(addr), k.ctx);
  EXPECT_EQ(r.verrno, vkernel::kECONNREFUSED);
  EXPECT_TRUE(
      k.cov.Contains(TcpBlocks().IdOf("edge", "connect-backlog-overflow", 0)));
  EXPECT_FALSE(k.ctx.crashed());
}

TEST_F(VnetTest, BatchWindowResetIsPure)
{
  NetKernel k;
  k.kernel.BeginBatch();
  const std::vector<uint8_t> addr = Addr(5);

  for (int round = 0; round < 2; ++round) {
    // Fresh program inside the window: the previous round's binding and
    // listener must be fully gone or re-binding port 5 would conflict.
    EXPECT_EQ(k.kernel.ModuleStateShape(), "") << "round " << round;
    long s = k.Sock(1, 6);
    EXPECT_TRUE(k.kernel.Bind(s, vkernel::Buffer::View(addr), k.ctx).ok())
        << "round " << round;
    EXPECT_TRUE(k.kernel.Listen(s, k.ctx).ok());
    k.kernel.EndProgram(k.ctx);
    k.kernel.BeginProgram();
  }
  k.kernel.EndProgram(k.ctx);
  k.kernel.EndBatch();
  EXPECT_FALSE(k.ctx.crashed()) << k.ctx.crash_title();
}

TEST_F(VnetTest, ModuleStateShapeIsSlotNormalizedAcrossFdLayouts)
{
  // Strict and permissive install descriptors at different numeric
  // bases; the state shape walks slots, so identical programs yield
  // byte-identical shapes — the DiffRunner's non-divergence guarantee.
  auto drive = [&](vkernel::KernelModel* kernel) {
    vkernel::Coverage cov;
    vkernel::ExecContext ctx(&cov);
    Corpus::Instance().RegisterAll(kernel);
    kernel->BeginProgram();
    const std::vector<uint8_t> addr = Addr(6);
    long s = kernel->Socket(2, 1, 6, ctx).retval;
    EXPECT_TRUE(kernel->Bind(s, vkernel::Buffer::View(addr), ctx).ok());
    EXPECT_TRUE(kernel->Listen(s, ctx).ok());
    return kernel->ModuleStateShape();
  };
  vkernel::Kernel strict;
  vkernel::PermissiveModel permissive;
  std::string a = drive(&strict);
  std::string b = drive(&permissive);
  EXPECT_NE(a, "");
  EXPECT_EQ(a, b);
}

// -- Campaign-level properties ----------------------------------------------

TEST_F(VnetTest, CampaignReachesDeepStatesAndMinimizesViolations)
{
  SpecLibrary lib = NetLibrary();
  OrchestratorOptions options;
  options.campaign.seed = 77;
  options.campaign.program_budget = 4000;
  options.campaign.batch_size = 16;
  options.campaign.seed_corpus = NetSeeds(lib);
  options.sync_interval = 200;

  const drivers::BlockLayout blocks = TcpBlocks();
  const uint64_t established =
      blocks.IdOf("trans", "SYN_SENT->ESTABLISHED", 0);
  const uint64_t time_wait = blocks.IdOf("trans", "FIN_WAIT2->TIME_WAIT", 0);

  for (int workers : {1, 4}) {
    options.num_workers = workers;
    OrchestratorResult first = RunShardedCampaign(lib, Boot, options);
    OrchestratorResult second = RunShardedCampaign(lib, Boot, options);

    // Deterministic replay at this worker count.
    EXPECT_EQ(first.crashes, second.crashes) << workers << " workers";
    EXPECT_EQ(first.coverage.blocks(), second.coverage.blocks())
        << workers << " workers";
    EXPECT_EQ(first.programs_executed, second.programs_executed);
    EXPECT_EQ(first.corpus_size, second.corpus_size);

    // The campaign drives the stack deep: real established pairs, full
    // teardown into TIME_WAIT, and at least one state-machine violation.
    EXPECT_TRUE(first.coverage.Contains(established))
        << workers << " workers never reached ESTABLISHED";
    EXPECT_TRUE(first.coverage.Contains(time_wait))
        << workers << " workers never reached TIME_WAIT";
    EXPECT_TRUE(HasViolation(first.crashes)) << workers << " workers";

    // Distillation replays the merged corpus and shrinks one reproducer
    // per crash title — the violation class flows through end to end.
    Distiller distiller(&lib, Boot, {});
    DistillResult distilled = distiller.Distill(first.corpus);
    bool minimized_violation = false;
    for (const auto& [title, prog] : distilled.crash_reproducers) {
      if (title.rfind(vnet::kViolationPrefix, 0) != 0) continue;
      minimized_violation = true;
      EXPECT_FALSE(prog.empty()) << title;
    }
    EXPECT_TRUE(minimized_violation)
        << workers << " workers: no state-machine-violation reproducer";
  }
}

TEST_F(VnetTest, SessionSaveResumeIsBitIdenticalOverNetCorpora)
{
  SpecLibrary lib = NetLibrary();
  OrchestratorOptions round;
  round.campaign.program_budget = 3000;
  round.campaign.batch_size = 16;
  round.num_workers = 2;
  round.sync_interval = 200;
  SessionOptions base =
      SessionOptions().WithSeed(99).WithRounds(2).WithOrchestrator(round);

  // The suite corpus doubles as round 0's seed corpus (carry_corpus), so
  // pre-populating it with the ground-truth seeds makes every session
  // start from the same primed state.
  const std::vector<Prog> seeds = NetSeeds(lib);

  Session straight(base, Boot);
  ASSERT_TRUE(straight.RegisterSuite("net", &lib).ok());
  straight.Find("net")->corpus = seeds;
  ASSERT_TRUE(straight.Run().ok());

  const std::string dir = ScratchDir("net_resume");
  Session first(SessionOptions(base).WithRounds(1), Boot);
  ASSERT_TRUE(first.RegisterSuite("net", &lib).ok());
  first.Find("net")->corpus = seeds;
  ASSERT_TRUE(first.Run().ok());
  ASSERT_TRUE(first.Save(dir).ok());

  Session resumed(SessionOptions(base).WithRounds(1), Boot);
  ASSERT_TRUE(resumed.RegisterSuite("net", &lib).ok());
  ASSERT_TRUE(resumed.Resume(dir).ok());
  ASSERT_TRUE(resumed.Run().ok());

  const SuiteState* a = straight.Find("net");
  const SuiteState* b = resumed.Find("net");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->coverage.blocks(), b->coverage.blocks());
  EXPECT_EQ(a->crashes, b->crashes);
  EXPECT_EQ(a->programs_executed, b->programs_executed);
  ASSERT_EQ(a->corpus.size(), b->corpus.size());
  for (size_t i = 0; i < a->corpus.size(); ++i) {
    EXPECT_EQ(HashProg(a->corpus[i]), HashProg(b->corpus[i])) << i;
  }
  ASSERT_EQ(a->crash_reproducers.size(), b->crash_reproducers.size());
  for (const auto& [title, prog] : a->crash_reproducers) {
    auto it = b->crash_reproducers.find(title);
    ASSERT_NE(it, b->crash_reproducers.end()) << title;
    EXPECT_EQ(HashProg(prog), HashProg(it->second)) << title;
  }

  // The resumed session carries the acceptance-level findings.
  EXPECT_TRUE(b->coverage.Contains(
      TcpBlocks().IdOf("trans", "SYN_SENT->ESTABLISHED", 0)));
  EXPECT_TRUE(HasViolation(b->crashes));
}

}  // namespace
}  // namespace kernelgpt::fuzzer
