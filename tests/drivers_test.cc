// Tests for the driver-model layer: layout computation, source rendering,
// ground-truth specs, runtime behaviour, and corpus-wide consistency
// properties (parameterized over every module in the corpus).

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "drivers/model_render.h"
#include "drivers/model_runtime.h"
#include "drivers/model_spec.h"
#include "ksrc/cparser.h"
#include "syzlang/printer.h"
#include "syzlang/validator.h"
#include "vkernel/kernel.h"

namespace kernelgpt::drivers {
namespace {

const DeviceSpec&
Dm()
{
  const DeviceSpec* dev = Corpus::Instance().FindDevice("dm");
  EXPECT_NE(dev, nullptr);
  return *dev;
}

TEST(LayoutTest, PackedOffsets)
{
  StructSpec s;
  s.name = "t";
  s.fields = {
      FieldSpec::Scalar("a", 32),
      FieldSpec::Scalar("b", 64),
      FieldSpec::Array("c", 16, 4),
      FieldSpec::CString("d", 8),
  };
  StructLayout layout = ComputeLayout(s, {s});
  EXPECT_EQ(layout.total_size, 4u + 8u + 8u + 8u);
  EXPECT_EQ(layout.Find("b")->offset, 4u);
  EXPECT_EQ(layout.Find("c")->offset, 12u);
  EXPECT_EQ(layout.Find("d")->offset, 20u);
}

TEST(LayoutTest, UnionUsesMaxArm)
{
  StructSpec u;
  u.name = "u";
  u.is_union = true;
  u.fields = {
      FieldSpec::Scalar("a", 32),
      FieldSpec::Array("b", 8, 16),
  };
  StructLayout layout = ComputeLayout(u, {u});
  EXPECT_EQ(layout.total_size, 16u);
  EXPECT_EQ(layout.Find("b")->offset, 0u);
}

TEST(LayoutTest, NestedStructSize)
{
  StructSpec inner;
  inner.name = "inner";
  inner.fields = {FieldSpec::Scalar("x", 64)};
  StructSpec outer;
  outer.name = "outer";
  outer.fields = {FieldSpec::Struct("i", "inner"), FieldSpec::Scalar("y", 32)};
  std::vector<StructSpec> all = {inner, outer};
  EXPECT_EQ(StructByteSize("outer", all), 12u);
}

TEST(CommandValueTest, EncodesMagicNrSize)
{
  const DeviceSpec& dm = Dm();
  const IoctlSpec& list = dm.primary.ioctls[2];
  ASSERT_EQ(list.macro, "DM_LIST_DEVICES");
  uint64_t v = FullCommandValue(dm, list);
  EXPECT_EQ(ksrc::IocNr(v), list.nr);
  EXPECT_EQ(ksrc::IocType(v), dm.magic);
  EXPECT_EQ(ksrc::IocSize(v), StructByteSize("dm_ioctl", dm.structs));
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(RenderTest, DmSourceShowsPaperIdioms)
{
  std::string src = RenderDeviceSource(Dm());
  // The .nodename idiom from Fig. 2.
  EXPECT_NE(src.find(".nodename = DM_DIR \"/\" DM_NODE"), std::string::npos);
  // The command-modification idiom.
  EXPECT_NE(src.find("cmd = _IOC_NR(command);"), std::string::npos);
  // Delegation: registered handler forwards to the dispatcher.
  EXPECT_NE(src.find("return dm_ctl_do_ioctl(file, command, u);"),
            std::string::npos);
  // Field comments survive rendering.
  EXPECT_NE(src.find("total size of data passed in"), std::string::npos);
}

TEST(RenderTest, RenderedSourceParsesCleanly)
{
  std::string src = RenderDeviceSource(Dm());
  ksrc::CFile file = ksrc::CParse(src, "dm.c");
  EXPECT_TRUE(file.diagnostics.empty())
      << (file.diagnostics.empty() ? "" : file.diagnostics[0]);
  EXPECT_NE(file.FindStruct("dm_ioctl"), nullptr);
  EXPECT_NE(file.FindVar("_dm_misc"), nullptr);
}

TEST(RenderTest, TableLookupStyleRendersTable)
{
  const DeviceSpec* ubi = Corpus::Instance().FindDevice("ubi");
  ASSERT_NE(ubi, nullptr);
  std::string src = RenderDeviceSource(*ubi);
  EXPECT_NE(src.find("ubi_lookup_ioctl"), std::string::npos);
  EXPECT_NE(src.find("_ubi_ctl_ioctls[]"), std::string::npos);
}

TEST(RenderTest, SecondaryHandlerUsesAnonInode)
{
  const DeviceSpec* kvm = Corpus::Instance().FindDevice("kvm");
  ASSERT_NE(kvm, nullptr);
  std::string src = RenderDeviceSource(*kvm);
  EXPECT_NE(src.find("anon_inode_getfd"), std::string::npos);
  EXPECT_NE(src.find("_kvm_vm_fops"), std::string::npos);
  EXPECT_NE(src.find("_kvm_vcpu_fops"), std::string::npos);
}

TEST(RenderTest, SocketSourceHasProtoOps)
{
  const SocketSpec* rds = Corpus::Instance().FindSocket("rds");
  ASSERT_NE(rds, nullptr);
  std::string src = RenderSocketSource(*rds);
  EXPECT_NE(src.find("rds_proto_ops"), std::string::npos);
  EXPECT_NE(src.find(".family = AF_RDS"), std::string::npos);
  EXPECT_NE(src.find("rds_setsockopt"), std::string::npos);
  EXPECT_NE(src.find("case RDS_RECVERR"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ground truth specs
// ---------------------------------------------------------------------------

TEST(GroundTruthTest, DmSpecShape)
{
  syzlang::SpecFile spec = GroundTruthDeviceSpec(Dm());
  EXPECT_NE(spec.FindSyscall("openat$dm"), nullptr);
  EXPECT_NE(spec.FindSyscall("ioctl$DM_LIST_DEVICES"), nullptr);
  EXPECT_NE(spec.FindStruct("dm_ioctl"), nullptr);
  EXPECT_NE(spec.FindResource("fd_dm"), nullptr);
  // 1 openat + 8 ioctls.
  EXPECT_EQ(spec.Syscalls().size(), 9u);
}

TEST(GroundTruthTest, KvmDependenciesExpressed)
{
  const DeviceSpec* kvm = Corpus::Instance().FindDevice("kvm");
  syzlang::SpecFile spec = GroundTruthDeviceSpec(*kvm);
  const syzlang::SyscallDef* create = spec.FindSyscall("ioctl$KVM_CREATE_VM");
  ASSERT_NE(create, nullptr);
  ASSERT_TRUE(create->returns_resource.has_value());
  EXPECT_EQ(*create->returns_resource, "fd_kvm_vm");
  const syzlang::SyscallDef* vcpu =
      spec.FindSyscall("ioctl$KVM_SET_USER_MEMORY_REGION");
  ASSERT_NE(vcpu, nullptr);
  EXPECT_EQ(vcpu->params[0].type.ref_name, "fd_kvm_vm");
}

TEST(GroundTruthTest, ExistingSubsetRespectsFraction)
{
  const DeviceSpec* hpet = Corpus::Instance().FindDevice("hpet");
  ASSERT_NE(hpet, nullptr);
  syzlang::SpecFile existing = ExistingDeviceSpec(*hpet);
  syzlang::SpecFile full = GroundTruthDeviceSpec(*hpet);
  EXPECT_LT(existing.Syscalls().size(), full.Syscalls().size());
  EXPECT_GE(existing.Syscalls().size(), 2u);  // openat + >= 1 ioctl.
}

TEST(GroundTruthTest, UndescribedDriverHasEmptyExisting)
{
  syzlang::SpecFile existing = ExistingDeviceSpec(Dm());
  EXPECT_EQ(existing.Syscalls().size(), 0u);
}

TEST(GroundTruthTest, SocketSpecShape)
{
  const SocketSpec* rds = Corpus::Instance().FindSocket("rds");
  syzlang::SpecFile spec = GroundTruthSocketSpec(*rds);
  EXPECT_NE(spec.FindSyscall("socket$rds"), nullptr);
  EXPECT_NE(spec.FindSyscall("setsockopt$rds_RDS_RECVERR"), nullptr);
  EXPECT_NE(spec.FindSyscall("sendto$rds"), nullptr);
  EXPECT_NE(spec.FindResource("sock_rds"), nullptr);
}

TEST(GroundTruthTest, RdsExistingSubsetLacksSendto)
{
  // The Table 4 setup: Syzkaller's RDS spec omits sendto.
  const SocketSpec* rds = Corpus::Instance().FindSocket("rds");
  syzlang::SpecFile existing = ExistingSocketSpec(*rds);
  EXPECT_EQ(existing.FindSyscall("sendto$rds"), nullptr);
  EXPECT_NE(existing.FindSyscall("socket$rds"), nullptr);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

class DmRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.RegisterDevice(MakeModelDevice(&Dm()));
    kernel_.BeginProgram();
  }

  long OpenDm(vkernel::ExecContext& ctx) {
    return kernel_.Openat("/dev/mapper/control", 0, ctx).retval;
  }

  vkernel::Buffer DmArg() {
    vkernel::Buffer buf;
    buf.bytes.assign(StructByteSize("dm_ioctl", Dm().structs), 0);
    return buf;
  }

  vkernel::Kernel kernel_;
  vkernel::Coverage cov_;
};

TEST_F(DmRuntimeTest, CorrectCommandReachesDeepPath)
{
  vkernel::ExecContext ctx(&cov_);
  long fd = OpenDm(ctx);
  ASSERT_GE(fd, 3);
  vkernel::Buffer arg = DmArg();
  const IoctlSpec& list = Dm().primary.ioctls[2];
  size_t before = cov_.Count();
  EXPECT_EQ(kernel_.Ioctl(fd, FullCommandValue(Dm(), list), &arg, ctx).raw(),
            0);
  EXPECT_GT(cov_.Count(), before + 3);  // dispatch + deep blocks.
}

TEST_F(DmRuntimeTest, WrongDeviceNameFails)
{
  vkernel::ExecContext ctx(&cov_);
  // SyzDescribe's wrong inference: the .name field, not .nodename.
  EXPECT_EQ(kernel_.Openat("/dev/device-mapper", 0, ctx).raw(),
            -vkernel::kENOENT);
}

TEST_F(DmRuntimeTest, RawNrCommandRejected)
{
  // SyzDescribe's wrong cmd value (const[3] instead of the _IOWR encoding)
  // fails the dispatcher's _IOC_SIZE validation.
  vkernel::ExecContext ctx(&cov_);
  long fd = OpenDm(ctx);
  vkernel::Buffer arg = DmArg();
  EXPECT_EQ(kernel_.Ioctl(fd, 3, &arg, ctx).raw(), -vkernel::kEINVAL);
}

TEST_F(DmRuntimeTest, ShortBufferGetsEfault)
{
  vkernel::ExecContext ctx(&cov_);
  long fd = OpenDm(ctx);
  vkernel::Buffer small;
  small.bytes.assign(4, 0);
  const IoctlSpec& list = Dm().primary.ioctls[2];
  EXPECT_EQ(kernel_.Ioctl(fd, FullCommandValue(Dm(), list), &small, ctx).raw(),
            -vkernel::kEFAULT);
}

TEST_F(DmRuntimeTest, KmallocBugFiresOnHugeDataSize)
{
  vkernel::ExecContext ctx(&cov_);
  long fd = OpenDm(ctx);
  vkernel::Buffer arg = DmArg();
  const StructSpec* s = Dm().FindStruct("dm_ioctl");
  StructLayout layout = ComputeLayout(*s, Dm().structs);
  arg.WriteScalar(layout.Find("data_size")->offset, 4, 0x40000000);
  const IoctlSpec* status = nullptr;
  for (const auto& c : Dm().primary.ioctls) {
    if (c.macro == "DM_TABLE_STATUS") status = &c;
  }
  ASSERT_NE(status, nullptr);
  kernel_.Ioctl(fd, FullCommandValue(Dm(), *status), &arg, ctx);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_title(), "kmalloc bug in ctl_ioctl");
}

TEST_F(DmRuntimeTest, ReleaseBugFiresOnClose)
{
  vkernel::ExecContext ctx(&cov_);
  long fd = OpenDm(ctx);
  vkernel::Buffer arg = DmArg();
  const StructSpec* s = Dm().FindStruct("dm_ioctl");
  StructLayout layout = ComputeLayout(*s, Dm().structs);
  // DM_DEV_SUSPEND arms a release bomb (CVE-2024-50277 shape).
  const IoctlSpec* suspend = nullptr;
  for (const auto& c : Dm().primary.ioctls) {
    if (c.macro == "DM_DEV_SUSPEND") suspend = &c;
  }
  ASSERT_NE(suspend, nullptr);
  (void)layout;
  EXPECT_EQ(
      kernel_.Ioctl(fd, FullCommandValue(Dm(), *suspend), &arg, ctx).raw(), 0);
  EXPECT_FALSE(ctx.crashed());
  kernel_.Close(fd, ctx);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_title(),
            "general protection fault in cleanup_mapped_device");
}

TEST(SequenceBugTest, CecUafNeedsTransmitThenReceive)
{
  const DeviceSpec* cec = Corpus::Instance().FindDevice("cec");
  ASSERT_NE(cec, nullptr);
  vkernel::Kernel kernel;
  kernel.RegisterDevice(MakeModelDevice(cec));
  kernel.BeginProgram();
  vkernel::Coverage cov;
  vkernel::ExecContext ctx(&cov);
  long fd = kernel.Openat("/dev/cec0", 0, ctx).retval;
  ASSERT_GE(fd, 3);

  auto arg_for = [&](const char* name) {
    vkernel::Buffer buf;
    buf.bytes.assign(StructByteSize(name, cec->structs), 0);
    return buf;
  };
  const IoctlSpec* transmit = nullptr;
  const IoctlSpec* receive = nullptr;
  for (const auto& c : cec->primary.ioctls) {
    if (c.macro == "CEC_TRANSMIT") transmit = &c;
    if (c.macro == "CEC_RECEIVE") receive = &c;
  }
  ASSERT_NE(transmit, nullptr);
  ASSERT_NE(receive, nullptr);

  // Receive alone does not crash.
  vkernel::Buffer msg = arg_for("cec_msg");
  // Make the len check pass (len = 0 <= capacity) and timeout nonzero.
  const StructSpec* msg_spec = cec->FindStruct("cec_msg");
  StructLayout layout = ComputeLayout(*msg_spec, cec->structs);
  msg.WriteScalar(layout.Find("timeout")->offset, 4, 100);
  EXPECT_EQ(
      kernel.Ioctl(fd, FullCommandValue(*cec, *receive), &msg, ctx).raw(), 0);
  EXPECT_FALSE(ctx.crashed());

  // Transmit then receive triggers the UAF.
  EXPECT_EQ(kernel.Ioctl(fd, FullCommandValue(*cec, *transmit), &msg, ctx).raw(),
            0);
  kernel.Ioctl(fd, FullCommandValue(*cec, *receive), &msg, ctx);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_title(),
            "KASAN: slab-use-after-free Read in cec_queue_msg_fh");
}

TEST(SecondaryHandlerTest, KvmCreateVmReturnsUsableFd)
{
  const DeviceSpec* kvm = Corpus::Instance().FindDevice("kvm");
  vkernel::Kernel kernel;
  kernel.RegisterDevice(MakeModelDevice(kvm));
  kernel.BeginProgram();
  vkernel::Coverage cov;
  vkernel::ExecContext ctx(&cov);
  long fd = kernel.Openat("/dev/kvm", 0, ctx).retval;
  ASSERT_GE(fd, 3);
  const IoctlSpec& create_vm = kvm->primary.ioctls[1];
  ASSERT_EQ(create_vm.macro, "KVM_CREATE_VM");
  long vm_fd =
      kernel.Ioctl(fd, FullCommandValue(*kvm, create_vm), nullptr, ctx).retval;
  ASSERT_GE(vm_fd, 3);
  EXPECT_NE(vm_fd, fd);

  // The vm fd accepts vm-handler commands.
  const HandlerSpec* vm = kvm->FindHandler("vm");
  const IoctlSpec& irq = vm->ioctls[3];
  ASSERT_EQ(irq.macro, "KVM_IRQ_LINE");
  vkernel::Buffer arg;
  arg.bytes.assign(StructByteSize("kvm_irq_level", kvm->structs), 0);
  EXPECT_EQ(kernel.Ioctl(vm_fd, FullCommandValue(*kvm, irq), &arg, ctx).raw(),
            0);

  // But the system fd rejects them.
  EXPECT_EQ(kernel.Ioctl(fd, FullCommandValue(*kvm, irq), &arg, ctx).raw(),
            -vkernel::kENOTTY);
}

// ---------------------------------------------------------------------------
// Corpus-wide properties (parameterized)
// ---------------------------------------------------------------------------

class AllDevicesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllDevicesTest, RenderedSourceParsesWithoutDiagnostics)
{
  const DeviceSpec* dev = Corpus::Instance().FindDevice(GetParam());
  ASSERT_NE(dev, nullptr);
  ksrc::CFile file = ksrc::CParse(RenderDeviceSource(*dev), dev->id + ".c");
  EXPECT_TRUE(file.diagnostics.empty())
      << file.diagnostics.size() << " diagnostics, first: "
      << (file.diagnostics.empty() ? "" : file.diagnostics[0]);
}

TEST_P(AllDevicesTest, GroundTruthValidates)
{
  const Corpus& corpus = Corpus::Instance();
  const DeviceSpec* dev = corpus.FindDevice(GetParam());
  static const syzlang::ConstTable consts = corpus.BuildIndex().BuildConstTable();
  syzlang::SpecFile spec = GroundTruthDeviceSpec(*dev);
  syzlang::ValidationResult v = syzlang::Validate(spec, consts);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0].message)
                      << " in " << dev->id;
}

TEST_P(AllDevicesTest, AllStructsResolvable)
{
  const DeviceSpec* dev = Corpus::Instance().FindDevice(GetParam());
  for (const auto& h : {&dev->primary}) {
    for (const auto& cmd : h->ioctls) {
      if (!cmd.arg_struct.empty()) {
        EXPECT_NE(dev->FindStruct(cmd.arg_struct), nullptr)
            << cmd.macro << " references missing struct " << cmd.arg_struct;
      }
    }
  }
}

TEST_P(AllDevicesTest, CommandValuesDistinct)
{
  const DeviceSpec* dev = Corpus::Instance().FindDevice(GetParam());
  std::set<uint64_t> seen;
  for (const auto& cmd : dev->primary.ioctls) {
    uint64_t v = FullCommandValue(*dev, cmd);
    EXPECT_TRUE(seen.insert(v).second)
        << "duplicate command value for " << cmd.macro << " in " << dev->id;
  }
}

std::vector<std::string>
AllDeviceIds()
{
  std::vector<std::string> ids;
  for (const auto& d : Corpus::Instance().devices()) ids.push_back(d.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(Corpus, AllDevicesTest,
                         ::testing::ValuesIn(AllDeviceIds()));

class AllSocketsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSocketsTest, RenderedSourceParses)
{
  const SocketSpec* sock = Corpus::Instance().FindSocket(GetParam());
  ASSERT_NE(sock, nullptr);
  ksrc::CFile file = ksrc::CParse(RenderSocketSource(*sock), sock->id + ".c");
  EXPECT_TRUE(file.diagnostics.empty())
      << (file.diagnostics.empty() ? "" : file.diagnostics[0]);
}

TEST_P(AllSocketsTest, GroundTruthValidates)
{
  const Corpus& corpus = Corpus::Instance();
  const SocketSpec* sock = corpus.FindSocket(GetParam());
  static const syzlang::ConstTable consts =
      corpus.BuildIndex().BuildConstTable();
  syzlang::SpecFile spec = GroundTruthSocketSpec(*sock);
  syzlang::ValidationResult v = syzlang::Validate(spec, consts);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0].message);
}

TEST_P(AllSocketsTest, SocketCreationWorksAtRuntime)
{
  const SocketSpec* sock = Corpus::Instance().FindSocket(GetParam());
  vkernel::Kernel kernel;
  kernel.RegisterSocketFamily(MakeModelSocketFamily(sock));
  kernel.BeginProgram();
  vkernel::Coverage cov;
  vkernel::ExecContext ctx(&cov);
  uint64_t type = sock->sock_type ? sock->sock_type : 2;
  long fd = kernel.Socket(sock->domain, type, sock->protocol, ctx).retval;
  EXPECT_GE(fd, 3) << sock->id;
}

std::vector<std::string>
AllSocketIds()
{
  std::vector<std::string> ids;
  for (const auto& s : Corpus::Instance().sockets()) ids.push_back(s.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(Corpus, AllSocketsTest,
                         ::testing::ValuesIn(AllSocketIds()));

TEST(CorpusTest, InventoryCounts)
{
  const Corpus& corpus = Corpus::Instance();
  EXPECT_GE(corpus.devices().size(), 40u);
  EXPECT_EQ(corpus.sockets().size(), 12u);  // 10 Table 6 + vnet tcp/udp.
  EXPECT_LT(corpus.LoadedDevices().size(), corpus.devices().size());
}

TEST(CorpusTest, Table4BugInventoryComplete)
{
  // All 24 paper bugs must exist in the corpus, 11 with CVEs, 12 fixed.
  const Corpus& corpus = Corpus::Instance();
  std::vector<const BugSpec*> bugs;
  auto collect_cmds = [&](const std::vector<IoctlSpec>& cmds) {
    for (const auto& c : cmds) {
      if (c.bug && !c.bug->legacy) bugs.push_back(&*c.bug);
    }
  };
  for (const auto& d : corpus.devices()) {
    collect_cmds(d.primary.ioctls);
    for (const auto& h : d.secondary) collect_cmds(h.ioctls);
  }
  for (const auto& s : corpus.sockets()) {
    collect_cmds(s.ioctls);
    for (const auto& o : s.sockopts) {
      if (o.bug && !o.bug->legacy) bugs.push_back(&*o.bug);
    }
    for (const SocketOpSpec* op :
         {&s.bind, &s.connect, &s.sendto, &s.recvfrom, &s.listen,
          &s.accept}) {
      if (op->bug && !op->bug->legacy) bugs.push_back(&*op->bug);
    }
  }
  EXPECT_EQ(bugs.size(), 24u);
  int cves = 0;
  int fixed = 0;
  int confirmed = 0;
  std::set<std::string> titles;
  for (const BugSpec* b : bugs) {
    if (!b->cve.empty()) ++cves;
    if (b->fixed) ++fixed;
    if (b->confirmed) ++confirmed;
    EXPECT_TRUE(titles.insert(b->title).second)
        << "duplicate bug title " << b->title;
  }
  EXPECT_EQ(cves, 11);
  EXPECT_EQ(fixed, 12);
  EXPECT_EQ(confirmed, 21);
}

TEST(CorpusTest, IndexCoversAllModules)
{
  ksrc::DefinitionIndex index = Corpus::Instance().BuildIndex();
  EXPECT_NE(index.FindStruct("dm_ioctl"), nullptr);
  EXPECT_NE(index.FindVar("_dm_misc"), nullptr);
  EXPECT_NE(index.FindVar("rds_proto_ops"), nullptr);
  EXPECT_TRUE(index.ConstValue("DM_TABLE_STATUS").has_value());
}

TEST(CorpusTest, RegisterAllBootstrapsKernel)
{
  vkernel::Kernel kernel;
  Corpus::Instance().RegisterAll(&kernel);
  kernel.BeginProgram();
  EXPECT_NE(kernel.FindDeviceByPath("/dev/mapper/control"), nullptr);
  EXPECT_NE(kernel.FindFamilyByDomain(21), nullptr);  // AF_RDS.
  // Excluded/unloaded modules are not registered.
  EXPECT_EQ(kernel.FindDeviceByPath("/dev/gup_test"), nullptr);
  EXPECT_EQ(kernel.FindDeviceByPath("/dev/mei0"), nullptr);
}

}  // namespace
}  // namespace kernelgpt::drivers
