// Unit tests for the C-subset lexer/parser, definition index (ExtractCode
// and macro evaluation), and body analyses.

#include <gtest/gtest.h>

#include "ksrc/body_analysis.h"
#include "ksrc/clexer.h"
#include "ksrc/cparser.h"
#include "ksrc/definition_index.h"

namespace kernelgpt::ksrc {
namespace {

constexpr char kDmSource[] = R"(
/* Synthetic device mapper */

#define DM_IOCTL 0xfd
#define DM_NAME "device-mapper"
#define DM_DIR "mapper"
#define DM_CONTROL_NODE "control"
#define DM_LIST_DEVICES_NR 3
#define DM_LIST_DEVICES _IOWR(DM_IOCTL, DM_LIST_DEVICES_NR, struct dm_ioctl)

/* control block for dm ioctls */
struct dm_ioctl {
	__u32 version[3]; /* ABI version */
	__u32 data_size; /* total size of data passed in */
	__u64 dev;
	char name[128];
};

static int dm_list_devices(struct file *file, unsigned long u)
{
	struct dm_ioctl param;
	if (copy_from_user(&param, (void *)u, sizeof(struct dm_ioctl)))
		return -EFAULT;
	if (!param.dev)
		return -EINVAL;
	return 0;
}

static int ctl_ioctl(struct file *file, unsigned int command, unsigned long u)
{
	unsigned int cmd;
	cmd = _IOC_NR(command);
	switch (cmd) {
	case DM_LIST_DEVICES_NR:
		return dm_list_devices(file, u);
	default:
		break;
	}
	return -ENOTTY;
}

static long dm_ctl_ioctl(struct file *file, unsigned int command, unsigned long u)
{
	return ctl_ioctl(file, command, u);
}

static const struct file_operations _ctl_fops = {
	.owner = THIS_MODULE,
	.open = dm_open,
	.unlocked_ioctl = dm_ctl_ioctl,
	.compat_ioctl = dm_ctl_ioctl,
};

static struct miscdevice _dm_misc = {
	.minor = 236,
	.name = DM_NAME,
	.nodename = DM_DIR "/" DM_CONTROL_NODE,
	.fops = &_ctl_fops,
};
)";

class DmIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddSource(kDmSource, "drivers/md/dm-ioctl.c");
    index_.ResolveMacros();
  }
  DefinitionIndex index_;
};

TEST(CLexerTest, KeepsCommentsAndDirectives)
{
  auto toks = CLex("#define A 1\n/* hi */ int x;");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, CTokKind::kDirective);
  EXPECT_EQ(toks[1].kind, CTokKind::kComment);
}

TEST(CLexerTest, NoCommentsVariantDropsComments)
{
  auto toks = CLexNoComments("/* hi */ int x;");
  for (const auto& t : toks) EXPECT_NE(t.kind, CTokKind::kComment);
}

TEST(CLexerTest, MultiCharOperators)
{
  auto toks = CLexNoComments("a->b == c;");
  EXPECT_TRUE(toks[1].Is("->"));
  EXPECT_TRUE(toks[3].Is("=="));
}

TEST(CLexerTest, IntegerSuffixesSwallowed)
{
  auto toks = CLexNoComments("x = 10UL;");
  bool found = false;
  for (const auto& t : toks) {
    if (t.kind == CTokKind::kNumber) {
      EXPECT_EQ(t.number, 10u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CLexerTest, OffsetsSliceSource)
{
  std::string src = "int foo;";
  auto toks = CLex(src);
  EXPECT_EQ(src.substr(toks[1].begin, toks[1].end - toks[1].begin), "foo");
}

TEST_F(DmIndexTest, ParsesStructWithCommentsAndArrays)
{
  const CStructDef* s = index_.FindStruct("dm_ioctl");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->fields.size(), 4u);
  EXPECT_EQ(s->fields[0].array_len, 3);
  EXPECT_EQ(s->fields[1].comment, "total size of data passed in");
  EXPECT_EQ(s->fields[3].array_len, 128);
  EXPECT_EQ(s->comment, "control block for dm ioctls");
}

TEST_F(DmIndexTest, ParsesFunctionsWithBodies)
{
  const CFunction* fn = index_.FindFunction("ctl_ioctl");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->params.size(), 3u);
  EXPECT_EQ(fn->params[1].name, "command");
  EXPECT_FALSE(fn->body_text.empty());
}

TEST_F(DmIndexTest, ParsesVarsWithDesignatedInit)
{
  const CVarDef* misc = index_.FindVar("_dm_misc");
  ASSERT_NE(misc, nullptr);
  EXPECT_EQ(misc->type_name, "miscdevice");
  EXPECT_EQ(misc->InitFor("name"), "DM_NAME");
  EXPECT_EQ(misc->InitFor("nodename"), "DM_DIR \"/\" DM_CONTROL_NODE");
  const CVarDef* fops = index_.FindVar("_ctl_fops");
  ASSERT_NE(fops, nullptr);
  EXPECT_EQ(fops->InitFor("unlocked_ioctl"), "dm_ctl_ioctl");
}

TEST_F(DmIndexTest, MacroEvaluationIncludesIoc)
{
  auto v = index_.ConstValue("DM_LIST_DEVICES");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(IocNr(*v), 3u);
  EXPECT_EQ(IocType(*v), 0xfdu);
  EXPECT_EQ(IocSize(*v), index_.SizeOf("struct dm_ioctl"));
}

TEST_F(DmIndexTest, StructSizeComputation)
{
  // 3*4 + 4 + 8 + 128 = 152.
  EXPECT_EQ(index_.SizeOf("struct dm_ioctl"), 152u);
  EXPECT_EQ(index_.SizeOf("__u32"), 4u);
  EXPECT_EQ(index_.SizeOf("void *"), 8u);
  EXPECT_EQ(index_.SizeOf("unknown_t"), 0u);
}

TEST_F(DmIndexTest, StringExprResolution)
{
  auto s = index_.ResolveStringExpr("DM_DIR \"/\" DM_CONTROL_NODE");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "mapper/control");
  EXPECT_EQ(index_.ResolveStringExpr("DM_NAME").value_or(""),
            "device-mapper");
  EXPECT_FALSE(index_.ResolveStringExpr("UNKNOWN_MACRO").has_value());
}

TEST_F(DmIndexTest, ExtractCodeRendersEntities)
{
  std::string fn = index_.ExtractCode("ctl_ioctl");
  EXPECT_NE(fn.find("switch"), std::string::npos);
  std::string st = index_.ExtractCode("dm_ioctl");
  EXPECT_NE(st.find("data_size"), std::string::npos);
  EXPECT_NE(st.find("total size of data"), std::string::npos);
  std::string var = index_.ExtractCode("_dm_misc");
  EXPECT_NE(var.find("nodename"), std::string::npos);
  EXPECT_EQ(index_.ExtractCode("no_such_thing"), "");
}

TEST_F(DmIndexTest, ClassifyIdentifiers)
{
  EXPECT_EQ(index_.Classify("ctl_ioctl"), EntityKind::kFunction);
  EXPECT_EQ(index_.Classify("dm_ioctl"), EntityKind::kStruct);
  EXPECT_EQ(index_.Classify("_dm_misc"), EntityKind::kVariable);
  EXPECT_EQ(index_.Classify("DM_IOCTL"), EntityKind::kMacro);
  EXPECT_EQ(index_.Classify("nothing"), EntityKind::kNotFound);
}

TEST_F(DmIndexTest, VarsOfTypeFindsHandlers)
{
  auto fops = index_.VarsOfType("file_operations");
  ASSERT_EQ(fops.size(), 1u);
  EXPECT_EQ(fops[0]->name, "_ctl_fops");
}

TEST_F(DmIndexTest, ConstTableExport)
{
  auto table = index_.BuildConstTable();
  EXPECT_TRUE(table.Has("DM_IOCTL"));
  EXPECT_TRUE(table.Has("DM_LIST_DEVICES"));
}

TEST_F(DmIndexTest, SwitchAnalysisFindsCases)
{
  const CFunction* fn = index_.FindFunction("ctl_ioctl");
  ASSERT_NE(fn, nullptr);
  auto switches = FindSwitches(*fn);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].subject, "cmd");
  ASSERT_EQ(switches[0].cases.size(), 1u);
  EXPECT_EQ(switches[0].cases[0].label, "DM_LIST_DEVICES_NR");
  EXPECT_TRUE(switches[0].has_default);
  EXPECT_NE(switches[0].cases[0].text.find("dm_list_devices"),
            std::string::npos);
}

TEST_F(DmIndexTest, CmdModificationDetected)
{
  const CFunction* fn = index_.FindFunction("ctl_ioctl");
  auto mods = FindCmdModifications(*fn);
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].dest, "cmd");
  EXPECT_EQ(mods[0].op, "_IOC_NR");
  EXPECT_EQ(mods[0].src, "command");
}

TEST_F(DmIndexTest, DelegationCallDetected)
{
  const CFunction* fn = index_.FindFunction("dm_ctl_ioctl");
  ASSERT_NE(fn, nullptr);
  auto calls = FindCalls(*fn);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].callee, "ctl_ioctl");
  EXPECT_TRUE(calls[0].is_return);
  ASSERT_EQ(calls[0].args.size(), 3u);
  EXPECT_EQ(calls[0].args[1], "command");
}

TEST_F(DmIndexTest, UserCopyDetected)
{
  const CFunction* fn = index_.FindFunction("dm_list_devices");
  ASSERT_NE(fn, nullptr);
  auto copies = FindUserCopies(*fn);
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_TRUE(copies[0].from_user);
  EXPECT_EQ(copies[0].type_name, "dm_ioctl");
  EXPECT_EQ(copies[0].dest_var, "param");
}

TEST(SizeofTypeNameTest, Variants)
{
  EXPECT_EQ(SizeofTypeName("sizeof ( struct dm_ioctl )").value_or(""),
            "dm_ioctl");
  EXPECT_EQ(SizeofTypeName("sizeof(int)").value_or(""), "int");
  EXPECT_FALSE(SizeofTypeName("param.len").has_value());
}

TEST(IoctlEncodingTest, NrTypeSizeRoundTrip)
{
  uint64_t cmd = IoctlNumber('r', 'w', 0xfd, 3, 152);
  EXPECT_EQ(IocNr(cmd), 3u);
  EXPECT_EQ(IocType(cmd), 0xfdu);
  EXPECT_EQ(IocSize(cmd), 152u);
}

TEST(CParserTest, EnumParsing)
{
  CFile f = CParse("enum dm_mode { MODE_A = 1, MODE_B, MODE_C = 10, };");
  ASSERT_EQ(f.enums.size(), 1u);
  ASSERT_EQ(f.enums[0].enumerators.size(), 3u);
  EXPECT_EQ(f.enums[0].enumerators[1].value, 2u);
  EXPECT_EQ(f.enums[0].enumerators[2].value, 10u);
}

TEST(CParserTest, SkipsUnknownConstructs)
{
  CFile f = CParse("typedef weird thing; struct ok { int x; };");
  EXPECT_NE(f.FindStruct("ok"), nullptr);
}

TEST(CParserTest, FlexibleArrayMember)
{
  CFile f = CParse("struct v { __u32 count; __u32 devices[]; };");
  const CStructDef* s = f.FindStruct("v");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->fields[1].array_len, 0);
}

TEST(CParserTest, MacroArrayLen)
{
  CFile f = CParse("#define LEN 16\nstruct v { char name[LEN]; };");
  const CStructDef* s = f.FindStruct("v");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->fields[0].array_len_text, "LEN");
}

TEST(CParserTest, PositionalInitializerTable)
{
  CFile f = CParse(
      "static struct entry _tbl[] = {\n"
      "\t{ CMD_A, fn_a },\n"
      "\t{ CMD_B, fn_b },\n"
      "};");
  const CVarDef* v = f.FindVar("_tbl");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->init.size(), 2u);
  EXPECT_NE(v->init[0].value_text.find("CMD_A"), std::string::npos);
  EXPECT_NE(v->init[1].value_text.find("fn_b"), std::string::npos);
}

}  // namespace
}  // namespace kernelgpt::ksrc
