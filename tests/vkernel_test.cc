// Unit tests for the virtual kernel: fd table, syscall dispatch, coverage
// and crash plumbing.

#include <gtest/gtest.h>

#include "vkernel/kernel.h"

namespace kernelgpt::vkernel {
namespace {

/// Minimal test driver: one device with a single ioctl that covers blocks
/// and can crash on command 0xdead.
class TestHandler : public FileHandler {
 public:
  long Ioctl(uint64_t cmd, Buffer* arg, ExecContext& ctx,
             Kernel& kernel) override {
    (void)kernel;
    ctx.Cover(100 + cmd);
    if (cmd == 0xdead) ctx.Crash("test crash in handler");
    if (arg && !arg->bytes.empty()) ctx.Cover(500);
    return 0;
  }
  long Read(Buffer* out, ExecContext& ctx) override {
    ctx.Cover(600);
    out->bytes.assign(4, 0xaa);
    return 4;
  }
  void Release(ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    ctx.Cover(700);
    ++release_count;
  }
  static int release_count;
};
int TestHandler::release_count = 0;

class TestDriver : public DeviceDriver {
 public:
  std::string Name() const override { return "testdev"; }
  std::string NodePath() const override { return "/dev/testdev"; }
  std::shared_ptr<FileHandler> Open(ExecContext& ctx, Kernel& kernel,
                                    long* err) override {
    (void)kernel;
    (void)err;
    ctx.Cover(1);
    return std::make_shared<TestHandler>();
  }
};

class TestSocket : public SocketHandler {
 public:
  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  ExecContext& ctx, Kernel& kernel) override {
    (void)kernel;
    (void)val;
    if (level != 99) return -kENOPROTOOPT;
    ctx.Cover(900 + optname);
    return 0;
  }
};

class TestFamily : public SocketFamily {
 public:
  std::string Name() const override { return "testsock"; }
  uint64_t Domain() const override { return 42; }
  std::shared_ptr<SocketHandler> Create(uint64_t type, uint64_t protocol,
                                        ExecContext& ctx, Kernel& kernel,
                                        long* err) override {
    (void)kernel;
    (void)protocol;
    if (type != 1) {
      *err = -kEINVAL;
      return nullptr;
    }
    ctx.Cover(800);
    return std::make_shared<TestSocket>();
  }
};

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.RegisterDevice(std::make_unique<TestDriver>());
    kernel_.RegisterSocketFamily(std::make_unique<TestFamily>());
    kernel_.BeginProgram();
  }
  Kernel kernel_;
  Coverage cov_;
};

TEST_F(KernelTest, OpenUnknownPathFails)
{
  ExecContext ctx(&cov_);
  EXPECT_EQ(kernel_.Openat("/dev/nope", 0, ctx), -kENOENT);
}

TEST_F(KernelTest, OpenIoctlCloseFlow)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  ASSERT_GE(fd, 3);
  EXPECT_TRUE(cov_.Contains(1));
  EXPECT_EQ(kernel_.Ioctl(fd, 7, nullptr, ctx), 0);
  EXPECT_TRUE(cov_.Contains(107));
  EXPECT_EQ(kernel_.Close(fd, ctx), 0);
  EXPECT_TRUE(cov_.Contains(700));
  EXPECT_EQ(kernel_.Ioctl(fd, 7, nullptr, ctx), -kEBADF);
}

TEST_F(KernelTest, CrashSetsContextState)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  kernel_.Ioctl(fd, 0xdead, nullptr, ctx);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_title(), "test crash in handler");
}

TEST_F(KernelTest, CrashTitleKeepsFirst)
{
  ExecContext ctx(&cov_);
  ctx.Crash("first");
  ctx.Crash("second");
  EXPECT_EQ(ctx.crash_title(), "first");
}

TEST_F(KernelTest, BufferArgsReachHandler)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  Buffer buf;
  buf.bytes = {1, 2, 3};
  kernel_.Ioctl(fd, 0, &buf, ctx);
  EXPECT_TRUE(cov_.Contains(500));
}

TEST_F(KernelTest, ReadWritesBuffer)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  Buffer out;
  EXPECT_EQ(kernel_.Read(fd, &out, ctx), 4);
  EXPECT_EQ(out.bytes.size(), 4u);
}

TEST_F(KernelTest, DupSharesHandlerAndReleaseOnce)
{
  TestHandler::release_count = 0;
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  long fd2 = kernel_.Dup(fd, ctx);
  ASSERT_GT(fd2, fd);
  EXPECT_EQ(kernel_.Close(fd, ctx), 0);
  EXPECT_EQ(TestHandler::release_count, 0);  // Still referenced by fd2.
  EXPECT_EQ(kernel_.Close(fd2, ctx), 0);
  EXPECT_EQ(TestHandler::release_count, 1);
}

TEST_F(KernelTest, SocketCreationChecksDomainAndType)
{
  ExecContext ctx(&cov_);
  EXPECT_EQ(kernel_.Socket(41, 1, 0, ctx), -kEAFNOSUPPORT);
  EXPECT_EQ(kernel_.Socket(42, 2, 0, ctx), -kEINVAL);
  long fd = kernel_.Socket(42, 1, 0, ctx);
  EXPECT_GE(fd, 3);
  EXPECT_TRUE(cov_.Contains(800));
}

TEST_F(KernelTest, SetSockOptDispatch)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Socket(42, 1, 0, ctx);
  Buffer val;
  EXPECT_EQ(kernel_.SetSockOpt(fd, 99, 5, val, ctx), 0);
  EXPECT_TRUE(cov_.Contains(905));
  EXPECT_EQ(kernel_.SetSockOpt(fd, 98, 5, val, ctx), -kENOPROTOOPT);
}

TEST_F(KernelTest, SocketSyscallsRejectDeviceFds)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  Buffer val;
  EXPECT_EQ(kernel_.SetSockOpt(fd, 99, 5, val, ctx), -kEBADF);
  EXPECT_EQ(kernel_.Bind(fd, val, ctx), -kEBADF);
}

TEST_F(KernelTest, BeginProgramResetsFdTable)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx);
  kernel_.BeginProgram();
  EXPECT_EQ(kernel_.Ioctl(fd, 1, nullptr, ctx), -kEBADF);
}

/// A pool that counts hand-backs, for the recycling-contract tests.
class CountingPool : public HandlerRecycler {
 public:
  void Recycle(std::shared_ptr<FileHandler> handler) override {
    ++recycled;
    last = std::move(handler);
  }
  int recycled = 0;
  std::shared_ptr<FileHandler> last;
};

/// Driver issuing pool-tagged handlers (the model-runtime pattern).
class PooledDriver : public DeviceDriver {
 public:
  explicit PooledDriver(CountingPool* pool) : pool_(pool) {}
  std::string Name() const override { return "pooled"; }
  std::string NodePath() const override { return "/dev/pooled"; }
  std::shared_ptr<FileHandler> Open(ExecContext& ctx, Kernel& kernel,
                                    long* err) override {
    (void)ctx;
    (void)kernel;
    (void)err;
    std::shared_ptr<FileHandler> handler;
    if (pool_->last) {
      handler = std::move(pool_->last);
    } else {
      handler = std::make_shared<TestHandler>();
      handler->set_recycler(pool_);
    }
    return handler;
  }

 private:
  CountingPool* pool_;
};

class RecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.RegisterDevice(std::make_unique<PooledDriver>(&pool_));
    kernel_.BeginProgram();
  }
  CountingPool pool_;
  Kernel kernel_;
  Coverage cov_;
};

TEST_F(RecycleTest, CloseHandsHandlerBackAfterRelease)
{
  TestHandler::release_count = 0;
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx);
  ASSERT_GE(fd, 3);
  FileHandler* raw = kernel_.LookupFd(fd);
  EXPECT_EQ(kernel_.Close(fd, ctx), 0);
  EXPECT_EQ(TestHandler::release_count, 1);  // Release before recycle.
  EXPECT_EQ(pool_.recycled, 1);
  ASSERT_NE(pool_.last, nullptr);
  EXPECT_EQ(pool_.last.get(), raw);  // Same object, same control block.

  // Re-open reuses the pooled object without a second allocation.
  long fd2 = kernel_.Openat("/dev/pooled", 0, ctx);
  EXPECT_EQ(kernel_.LookupFd(fd2), raw);
}

TEST_F(RecycleTest, DupRecyclesOnlyOnLastClose)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx);
  long fd2 = kernel_.Dup(fd, ctx);
  EXPECT_EQ(kernel_.Close(fd, ctx), 0);
  EXPECT_EQ(pool_.recycled, 0);  // fd2 still references the handler.
  EXPECT_EQ(kernel_.Close(fd2, ctx), 0);
  EXPECT_EQ(pool_.recycled, 1);
}

TEST_F(RecycleTest, EndProgramRecyclesOpenHandlers)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx);
  ASSERT_GE(fd, 3);
  kernel_.EndProgram(ctx);
  EXPECT_EQ(pool_.recycled, 1);
  EXPECT_EQ(kernel_.LookupFd(fd), nullptr);
}

TEST(CoverageTest, MergeAndDiff)
{
  Coverage a;
  a.Hit(1);
  a.Hit(2);
  Coverage b;
  b.Hit(2);
  b.Hit(3);
  EXPECT_EQ(a.CountNotIn(b), 1u);
  EXPECT_EQ(a.Merge(b), 1u);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(CoverageTest, HitReportsNew)
{
  Coverage c;
  EXPECT_TRUE(c.Hit(5));
  EXPECT_FALSE(c.Hit(5));
}

TEST(BufferTest, ScalarRoundTrip)
{
  Buffer b;
  b.WriteScalar(4, 4, 0xdeadbeef);
  EXPECT_EQ(b.bytes.size(), 8u);
  EXPECT_EQ(b.ReadScalar(4, 4), 0xdeadbeefu);
  EXPECT_EQ(b.ReadScalar(100, 4), 0u);  // Out of range reads zero.
}

TEST(BufferTest, PartialReadAtEdge)
{
  Buffer b;
  b.bytes = {0xff, 0xff};
  // Reading 4 bytes at offset 0 with only 2 available: low bytes only.
  EXPECT_EQ(b.ReadScalar(0, 4), 0xffffu);
}

}  // namespace
}  // namespace kernelgpt::vkernel
