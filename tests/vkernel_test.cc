// Unit tests for the virtual kernel: fd table, syscall dispatch, coverage
// and crash plumbing.

#include <gtest/gtest.h>

#include <stdexcept>

#include "vkernel/kernel.h"

namespace kernelgpt::vkernel {
namespace {

/// Minimal test driver: one device with a single ioctl that covers blocks
/// and can crash on command 0xdead.
class TestHandler : public FileHandler {
 public:
  long Ioctl(uint64_t cmd, Buffer* arg, KernelModel& kernel) override {
    ExecContext& ctx = kernel.context();
    ctx.Cover(100 + cmd);
    if (cmd == 0xdead) ctx.Crash("test crash in handler");
    if (arg && !arg->bytes.empty()) ctx.Cover(500);
    return 0;
  }
  long Read(Buffer* out, KernelModel& kernel) override {
    kernel.context().Cover(600);
    out->bytes.assign(4, 0xaa);
    return 4;
  }
  void Release(KernelModel& kernel) override {
    kernel.context().Cover(700);
    ++release_count;
  }
  static int release_count;
};
int TestHandler::release_count = 0;

class TestDriver : public DeviceDriver {
 public:
  std::string Name() const override { return "testdev"; }
  std::string NodePath() const override { return "/dev/testdev"; }
  std::shared_ptr<FileHandler> Open(KernelModel& kernel, long* err) override {
    (void)err;
    kernel.context().Cover(1);
    return std::make_shared<TestHandler>();
  }
};

class TestSocket : public SocketHandler {
 public:
  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  KernelModel& kernel) override {
    (void)val;
    if (level != 99) return -kENOPROTOOPT;
    kernel.context().Cover(900 + optname);
    return 0;
  }
};

class TestFamily : public SocketFamily {
 public:
  std::string Name() const override { return "testsock"; }
  uint64_t Domain() const override { return 42; }
  std::shared_ptr<SocketHandler> Create(uint64_t type, uint64_t protocol,
                                        KernelModel& kernel,
                                        long* err) override {
    (void)protocol;
    if (type != 1) {
      *err = -kEINVAL;
      return nullptr;
    }
    kernel.context().Cover(800);
    return std::make_shared<TestSocket>();
  }
};

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.RegisterDevice(std::make_unique<TestDriver>());
    kernel_.RegisterSocketFamily(std::make_unique<TestFamily>());
    kernel_.BeginProgram();
  }
  Kernel kernel_;
  Coverage cov_;
};

TEST_F(KernelTest, OpenUnknownPathFails)
{
  ExecContext ctx(&cov_);
  EXPECT_EQ(kernel_.Openat("/dev/nope", 0, ctx).raw(), -kENOENT);
}

TEST_F(KernelTest, OpenIoctlCloseFlow)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  ASSERT_GE(fd, 3);
  EXPECT_TRUE(cov_.Contains(1));
  EXPECT_EQ(kernel_.Ioctl(fd, 7, nullptr, ctx).raw(), 0);
  EXPECT_TRUE(cov_.Contains(107));
  EXPECT_EQ(kernel_.Close(fd, ctx).raw(), 0);
  EXPECT_TRUE(cov_.Contains(700));
  EXPECT_EQ(kernel_.Ioctl(fd, 7, nullptr, ctx).raw(), -kEBADF);
}

TEST_F(KernelTest, CrashSetsContextState)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  kernel_.Ioctl(fd, 0xdead, nullptr, ctx);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_title(), "test crash in handler");
}

TEST_F(KernelTest, CrashTitleKeepsFirst)
{
  ExecContext ctx(&cov_);
  ctx.Crash("first");
  ctx.Crash("second");
  EXPECT_EQ(ctx.crash_title(), "first");
}

TEST_F(KernelTest, BufferArgsReachHandler)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  Buffer buf;
  buf.bytes = {1, 2, 3};
  kernel_.Ioctl(fd, 0, &buf, ctx);
  EXPECT_TRUE(cov_.Contains(500));
}

TEST_F(KernelTest, ReadWritesBuffer)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  Buffer out;
  EXPECT_EQ(kernel_.Read(fd, &out, ctx).retval, 4);
  EXPECT_EQ(out.bytes.size(), 4u);
}

TEST_F(KernelTest, DupSharesHandlerAndReleaseOnce)
{
  TestHandler::release_count = 0;
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  long fd2 = kernel_.Dup(fd, ctx).retval;
  ASSERT_GT(fd2, fd);
  EXPECT_EQ(kernel_.Close(fd, ctx).raw(), 0);
  EXPECT_EQ(TestHandler::release_count, 0);  // Still referenced by fd2.
  EXPECT_EQ(kernel_.Close(fd2, ctx).raw(), 0);
  EXPECT_EQ(TestHandler::release_count, 1);
}

TEST_F(KernelTest, SocketCreationChecksDomainAndType)
{
  ExecContext ctx(&cov_);
  EXPECT_EQ(kernel_.Socket(41, 1, 0, ctx).raw(), -kEAFNOSUPPORT);
  EXPECT_EQ(kernel_.Socket(42, 2, 0, ctx).raw(), -kEINVAL);
  long fd = kernel_.Socket(42, 1, 0, ctx).retval;
  EXPECT_GE(fd, 3);
  EXPECT_TRUE(cov_.Contains(800));
}

TEST_F(KernelTest, SetSockOptDispatch)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Socket(42, 1, 0, ctx).retval;
  Buffer val;
  EXPECT_EQ(kernel_.SetSockOpt(fd, 99, 5, val, ctx).raw(), 0);
  EXPECT_TRUE(cov_.Contains(905));
  EXPECT_EQ(kernel_.SetSockOpt(fd, 98, 5, val, ctx).raw(), -kENOPROTOOPT);
}

TEST_F(KernelTest, SocketSyscallsRejectDeviceFds)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  Buffer val;
  EXPECT_EQ(kernel_.SetSockOpt(fd, 99, 5, val, ctx).raw(), -kEBADF);
  EXPECT_EQ(kernel_.Bind(fd, val, ctx).raw(), -kEBADF);
}

TEST_F(KernelTest, BeginProgramResetsFdTable)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/testdev", 0, ctx).retval;
  kernel_.BeginProgram();
  EXPECT_EQ(kernel_.Ioctl(fd, 1, nullptr, ctx).raw(), -kEBADF);
}

/// A pool that counts hand-backs, for the recycling-contract tests.
class CountingPool : public HandlerRecycler {
 public:
  void Recycle(std::shared_ptr<FileHandler> handler) override {
    ++recycled;
    last = std::move(handler);
  }
  int recycled = 0;
  std::shared_ptr<FileHandler> last;
};

/// Driver issuing pool-tagged handlers (the model-runtime pattern).
class PooledDriver : public DeviceDriver {
 public:
  explicit PooledDriver(CountingPool* pool) : pool_(pool) {}
  std::string Name() const override { return "pooled"; }
  std::string NodePath() const override { return "/dev/pooled"; }
  std::shared_ptr<FileHandler> Open(KernelModel& kernel, long* err) override {
    (void)kernel;
    (void)err;
    std::shared_ptr<FileHandler> handler;
    if (pool_->last) {
      handler = std::move(pool_->last);
    } else {
      handler = std::make_shared<TestHandler>();
      handler->set_recycler(pool_);
    }
    return handler;
  }

 private:
  CountingPool* pool_;
};

class RecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.RegisterDevice(std::make_unique<PooledDriver>(&pool_));
    kernel_.BeginProgram();
  }
  CountingPool pool_;
  Kernel kernel_;
  Coverage cov_;
};

TEST_F(RecycleTest, CloseHandsHandlerBackAfterRelease)
{
  TestHandler::release_count = 0;
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx).retval;
  ASSERT_GE(fd, 3);
  FileHandler* raw = kernel_.LookupFd(fd);
  EXPECT_EQ(kernel_.Close(fd, ctx).raw(), 0);
  EXPECT_EQ(TestHandler::release_count, 1);  // Release before recycle.
  EXPECT_EQ(pool_.recycled, 1);
  ASSERT_NE(pool_.last, nullptr);
  EXPECT_EQ(pool_.last.get(), raw);  // Same object, same control block.

  // Re-open reuses the pooled object without a second allocation.
  long fd2 = kernel_.Openat("/dev/pooled", 0, ctx).retval;
  EXPECT_EQ(kernel_.LookupFd(fd2), raw);
}

TEST_F(RecycleTest, DupRecyclesOnlyOnLastClose)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx).retval;
  long fd2 = kernel_.Dup(fd, ctx).retval;
  EXPECT_EQ(kernel_.Close(fd, ctx).raw(), 0);
  EXPECT_EQ(pool_.recycled, 0);  // fd2 still references the handler.
  EXPECT_EQ(kernel_.Close(fd2, ctx).raw(), 0);
  EXPECT_EQ(pool_.recycled, 1);
}

TEST_F(RecycleTest, EndProgramRecyclesOpenHandlers)
{
  ExecContext ctx(&cov_);
  long fd = kernel_.Openat("/dev/pooled", 0, ctx).retval;
  ASSERT_GE(fd, 3);
  kernel_.EndProgram(ctx);
  EXPECT_EQ(pool_.recycled, 1);
  EXPECT_EQ(kernel_.LookupFd(fd), nullptr);
}

class PersonalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    strict_.RegisterDevice(std::make_unique<TestDriver>());
    strict_.RegisterSocketFamily(std::make_unique<TestFamily>());
    strict_.BeginProgram();
    permissive_.RegisterDevice(std::make_unique<TestDriver>());
    permissive_.RegisterSocketFamily(std::make_unique<TestFamily>());
    permissive_.BeginProgram();
  }
  StrictModel strict_;
  PermissiveModel permissive_;
  Coverage cov_;
};

TEST_F(PersonalityTest, ModelNames)
{
  EXPECT_EQ(strict_.ModelName(), "strict");
  EXPECT_EQ(permissive_.ModelName(), "permissive");
}

TEST_F(PersonalityTest, ErrnoPoliciesDiffer)
{
  ExecContext ctx(&cov_);
  // Unknown path: ENOENT (strict) vs ENODEV (permissive).
  EXPECT_EQ(strict_.Openat("/dev/nope", 0, ctx).verrno, kENOENT);
  EXPECT_EQ(permissive_.Openat("/dev/nope", 0, ctx).verrno, kENODEV);
  // Bad fd: EBADF vs EINVAL.
  EXPECT_EQ(strict_.Ioctl(12345, 0, nullptr, ctx).verrno, kEBADF);
  EXPECT_EQ(permissive_.Ioctl(12345, 0, nullptr, ctx).verrno, kEINVAL);
  // Closing a never-opened fd: error vs lenient success.
  EXPECT_EQ(strict_.Close(12345, ctx).verrno, kEBADF);
  EXPECT_TRUE(permissive_.Close(12345, ctx).ok());
  // Unknown socket domain: EAFNOSUPPORT vs EINVAL.
  EXPECT_EQ(strict_.Socket(41, 1, 0, ctx).verrno, kEAFNOSUPPORT);
  EXPECT_EQ(permissive_.Socket(41, 1, 0, ctx).verrno, kEINVAL);
}

TEST_F(PersonalityTest, FdLayoutsDiffer)
{
  ExecContext ctx(&cov_);
  // Strict numbers files and sockets from one unified base.
  EXPECT_EQ(strict_.Openat("/dev/testdev", 0, ctx).retval, 3);
  EXPECT_EQ(strict_.Socket(42, 1, 0, ctx).retval, 4);
  // Permissive splits the spaces: files from 3, sockets from 1000.
  EXPECT_EQ(permissive_.Openat("/dev/testdev", 0, ctx).retval, 3);
  EXPECT_EQ(permissive_.Socket(42, 1, 0, ctx).retval, 1000);
  EXPECT_EQ(permissive_.Openat("/dev/testdev", 0, ctx).retval, 4);
  EXPECT_EQ(permissive_.Socket(42, 1, 0, ctx).retval, 1001);
  // Both models dispatch through their own tables all the same.
  EXPECT_TRUE(permissive_.Ioctl(4, 7, nullptr, ctx).ok());
  Buffer val;
  EXPECT_TRUE(permissive_.SetSockOpt(1001, 99, 5, val, ctx).ok());
  // Shapes agree even though the raw fd values differ.
  EXPECT_EQ(strict_.FdTableShape(), (FdShape{1, 1}));
  EXPECT_EQ(permissive_.FdTableShape(), (FdShape{2, 2}));
}

TEST_F(PersonalityTest, UniformSyscallEntryMatchesTypedWrappers)
{
  ExecContext ctx(&cov_);
  SyscallArgs args;
  args.path = "/dev/testdev";
  args.a = 0;
  SyscallResult via_entry = strict_.Syscall(ModelOp::kOpenat, args, ctx);
  EXPECT_TRUE(via_entry.ok());
  SyscallArgs ioctl_args;
  ioctl_args.fd = via_entry.retval;
  ioctl_args.a = 7;
  EXPECT_EQ(strict_.Syscall(ModelOp::kIoctl, ioctl_args, ctx),
            strict_.Ioctl(via_entry.retval, 7, nullptr, ctx));
  SyscallArgs close_args;
  close_args.fd = via_entry.retval;
  EXPECT_TRUE(strict_.Syscall(ModelOp::kClose, close_args, ctx).ok());
}

TEST_F(PersonalityTest, BaseClassPointerDrivesEitherModel)
{
  ExecContext ctx(&cov_);
  for (KernelModel* model :
       {static_cast<KernelModel*>(&strict_),
        static_cast<KernelModel*>(&permissive_)}) {
    SyscallResult fd = model->Openat("/dev/testdev", 0, ctx);
    ASSERT_TRUE(fd.ok());
    EXPECT_TRUE(model->Ioctl(fd.retval, 7, nullptr, ctx).ok());
    model->EndProgram(ctx);
    EXPECT_EQ(model->FdTableShape(), (FdShape{0, 0}));
    model->BeginProgram();
  }
}

TEST_F(PersonalityTest, BeginBatchRejectsNestedWindow)
{
  strict_.BeginBatch();
  EXPECT_THROW(strict_.BeginBatch(), std::logic_error);
  strict_.EndBatch();
}

TEST_F(PersonalityTest, BeginBatchRejectsDirtyFdTable)
{
  ExecContext ctx(&cov_);
  ASSERT_TRUE(strict_.Openat("/dev/testdev", 0, ctx).ok());
  // Mid-program: descriptors from the running program would leak.
  EXPECT_THROW(strict_.BeginBatch(), std::logic_error);
  strict_.EndProgram(ctx);
  // Pristine again: the window opens fine, and Run() having marked
  // modules dirty earlier must NOT trip the check.
  strict_.BeginBatch();
  strict_.EndBatch();
}

TEST(CoverageTest, MergeAndDiff)
{
  Coverage a;
  a.Hit(1);
  a.Hit(2);
  Coverage b;
  b.Hit(2);
  b.Hit(3);
  EXPECT_EQ(a.CountNotIn(b), 1u);
  EXPECT_EQ(a.Merge(b), 1u);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(CoverageTest, HitReportsNew)
{
  Coverage c;
  EXPECT_TRUE(c.Hit(5));
  EXPECT_FALSE(c.Hit(5));
}

TEST(BufferTest, ScalarRoundTrip)
{
  Buffer b;
  b.WriteScalar(4, 4, 0xdeadbeef);
  EXPECT_EQ(b.bytes.size(), 8u);
  EXPECT_EQ(b.ReadScalar(4, 4), 0xdeadbeefu);
  EXPECT_EQ(b.ReadScalar(100, 4), 0u);  // Out of range reads zero.
}

TEST(BufferTest, PartialReadAtEdge)
{
  Buffer b;
  b.bytes = {0xff, 0xff};
  // Reading 4 bytes at offset 0 with only 2 available: low bytes only.
  EXPECT_EQ(b.ReadScalar(0, 4), 0xffffu);
}

}  // namespace
}  // namespace kernelgpt::vkernel
