// Tests for the fuzzer::Fleet supervisor and the fault-injection
// substrate it is built on:
//  - a fault-free fleet reproduces standalone Session runs bit for bit;
//  - an injected worker failure is retried in place and the retried
//    fleet converges bit-identically to the fault-free run;
//  - a simulated crash in the widest kill-mid-save window (tmp durable,
//    rename pending) is recovered by rebuild + Resume, bit-identically;
//  - a transient ENOSPC on the journal keeps the round loop alive
//    (pending-save backlog + degraded report) and heals on the next
//    save, leaving the directory resumable;
//  - a permanently failing tenant is quarantined while its sibling
//    finishes bit-identically to a fault-free run;
//  - the supervisor thread count changes neither the report rendering
//    nor any tenant's final state, with and without an armed plan;
//  - the $KERNELGPT_FAULT_PLAN env path (the CI soak gate) converges to
//    the fault-free result under a bounded mixed fault plan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/fleet.h"
#include "fuzzer/session.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/strings.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  void TearDown() override { util::FaultInjector::Instance().Disarm(); }

  static SpecLibrary DmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  /// Short 2-worker per-round options: big enough to exercise the
  /// barrier protocol, small enough to run many rounds per test.
  static OrchestratorOptions SmallRound() {
    OrchestratorOptions options;
    options.campaign.program_budget = 3000;
    options.campaign.batch_size = 32;
    options.num_workers = 2;
    options.sync_interval = 150;
    return options;
  }

  static SessionOptions TenantOptions(uint64_t seed,
                                      const std::string& autosave_dir) {
    SessionOptions options;
    options.WithSeed(seed).WithOrchestrator(SmallRound());
    if (!autosave_dir.empty()) options.WithAutosave(autosave_dir, 1);
    return options;
  }

  /// A deterministic tenant factory: fresh Session, one dm suite.
  static Fleet::SessionFactory MakeTenant(uint64_t seed,
                                          std::string autosave_dir = "") {
    return [seed, autosave_dir]() -> std::unique_ptr<Session> {
      auto session = std::make_unique<Session>(
          TenantOptions(seed, autosave_dir), Boot);
      if (!session->RegisterSuite("suite", DmLibrary()).ok()) return nullptr;
      return session;
    };
  }

  /// Fresh per-test scratch directory under the gtest temp root.
  static std::string ScratchDir(const std::string& leaf) {
    const std::string dir =
        ::testing::TempDir() + "kernelgpt_fleet_test/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// The detail string the orchestrator.worker fault point reports for a
  /// given campaign seed (any shard) — the handle fault plans scope by.
  static std::string WorkerDetail(uint64_t master_seed, int round) {
    const uint64_t seed =
        round == 0 ? master_seed
                   : util::HashCombine(master_seed, static_cast<uint64_t>(round));
    return util::Format("seed=%016llx", static_cast<unsigned long long>(seed));
  }

  static const SuiteState& StateOf(const Fleet& fleet,
                                   const std::string& tenant) {
    const Session* session = fleet.FindSession(tenant);
    EXPECT_NE(session, nullptr) << tenant;
    const SuiteState* state = session->Find("suite");
    EXPECT_NE(state, nullptr) << tenant;
    return *state;
  }

  static void ExpectSameState(const SuiteState& a, const SuiteState& b,
                              const std::string& label) {
    EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks()) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.programs_executed, b.programs_executed) << label;
    ASSERT_EQ(a.corpus.size(), b.corpus.size()) << label;
    for (size_t i = 0; i < a.corpus.size(); ++i) {
      EXPECT_EQ(HashProg(a.corpus[i]), HashProg(b.corpus[i]))
          << label << " program " << i;
    }
    ASSERT_EQ(a.crash_reproducers.size(), b.crash_reproducers.size()) << label;
    for (const auto& [title, prog] : a.crash_reproducers) {
      auto it = b.crash_reproducers.find(title);
      ASSERT_NE(it, b.crash_reproducers.end()) << label << " " << title;
      EXPECT_EQ(HashProg(prog), HashProg(it->second)) << label << " " << title;
    }
  }

  static constexpr uint64_t kSeedA = 0xA11CE;
  static constexpr uint64_t kSeedB = 0xB0B;

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* FleetTest::consts_ = nullptr;

TEST_F(FleetTest, FaultFreeFleetMatchesStandaloneSessions)
{
  Fleet fleet(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(fleet.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(fleet.AddSession("beta", MakeTenant(kSeedB)).ok());
  FleetReport report = fleet.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.message();
  EXPECT_TRUE(report.AllComplete()) << report.Render();

  for (const auto& [name, seed] :
       {std::pair<std::string, uint64_t>{"alpha", kSeedA},
        std::pair<std::string, uint64_t>{"beta", kSeedB}}) {
    Session standalone(TenantOptions(seed, ""), Boot);
    ASSERT_TRUE(standalone.RegisterSuite("suite", DmLibrary()).ok());
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(standalone.RunRound().ok());
    }
    ExpectSameState(StateOf(fleet, name), *standalone.Find("suite"), name);
  }
}

TEST_F(FleetTest, RegistrationErrorsSurfaceAsStatus)
{
  Fleet fleet(FleetOptions().WithEnvPlan(false));
  EXPECT_FALSE(fleet.AddSession("", MakeTenant(1)).ok());
  EXPECT_FALSE(fleet.AddSession("x", nullptr).ok());
  ASSERT_TRUE(fleet.AddSession("x", MakeTenant(1)).ok());
  EXPECT_FALSE(fleet.AddSession("x", MakeTenant(2)).ok());

  Fleet empty(FleetOptions().WithEnvPlan(false));
  EXPECT_FALSE(empty.Run().status.ok());
}

TEST_F(FleetTest, InjectedWorkerFaultIsRetriedAndConvergesBitIdentically)
{
  // Baseline: no faults.
  Fleet clean(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(clean.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(clean.AddSession("beta", MakeTenant(kSeedB)).ok());
  ASSERT_TRUE(clean.Run().AllComplete());

  // Fail alpha's round-1 campaign once: the rule is scoped by that
  // round's seed, so it cannot leak onto beta or other rounds.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("site=orchestrator.worker,kind=throw,match=" +
                               WorkerDetail(kSeedA, 1))
                  .ok());
  Fleet faulty(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(faulty.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(faulty.AddSession("beta", MakeTenant(kSeedB)).ok());
  FleetReport report = faulty.Run();
  EXPECT_TRUE(report.AllComplete()) << report.Render();
  EXPECT_EQ(util::FaultInjector::Instance().FiredCount("orchestrator.worker"),
            1u);
  EXPECT_EQ(report.tenants[0].retries, 1) << report.Render();
  EXPECT_EQ(report.tenants[0].failures, 0) << report.Render();
  EXPECT_GT(report.tenants[0].backoff_ms, 0.0);
  EXPECT_EQ(report.tenants[1].retries, 0) << report.Render();

  // Failure-atomic rounds + deterministic retry => identical end state.
  ExpectSameState(StateOf(faulty, "alpha"), StateOf(clean, "alpha"), "alpha");
  ExpectSameState(StateOf(faulty, "beta"), StateOf(clean, "beta"), "beta");
}

TEST_F(FleetTest, CrashMidSaveRecoversFromSnapshotBitIdentically)
{
  const std::string clean_dir = ScratchDir("crash_clean/alpha");
  const std::string crash_dir = ScratchDir("crash_faulty/alpha");

  Fleet clean(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(clean.AddSession("alpha", MakeTenant(kSeedA, clean_dir)).ok());
  ASSERT_TRUE(clean.Run().AllComplete());

  // Kill the process in the widest mid-save window: round 2's manifest
  // tmp file is durable but the commit rename has not happened. The
  // directory must still be resumable at round 1's commit.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec(
                      "site=fileio.rename,kind=crash,nth=2,"
                      "match=crash_faulty/alpha/session.manifest")
                  .ok());
  Fleet faulty(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(faulty.AddSession("alpha", MakeTenant(kSeedA, crash_dir)).ok());
  FleetReport report = faulty.Run();
  EXPECT_TRUE(report.AllComplete()) << report.Render();
  EXPECT_EQ(report.tenants[0].recoveries, 1) << report.Render();
  EXPECT_NE(report.tenants[0].last_error.find("injected crash"),
            std::string::npos)
      << report.Render();

  ExpectSameState(StateOf(faulty, "alpha"), StateOf(clean, "alpha"), "alpha");

  // The recovered tenant's directory committed all 3 rounds in the end.
  auto probe = MakeTenant(kSeedA, crash_dir)();
  ASSERT_NE(probe, nullptr);
  ASSERT_TRUE(probe->Resume(crash_dir).ok());
  EXPECT_EQ(probe->rounds_completed(), 3);
}

TEST_F(FleetTest, TransientSaveFailureDegradesAndHeals)
{
  const std::string clean_dir = ScratchDir("degrade_clean/alpha");
  const std::string slow_dir = ScratchDir("degrade_faulty/alpha");

  Fleet clean(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(clean.AddSession("alpha", MakeTenant(kSeedA, clean_dir)).ok());
  ASSERT_TRUE(clean.Run().AllComplete());

  // Round 2's journal append (the tenant's first incremental save) hits
  // ENOSPC once. The round loop must keep going with the delta queued in
  // the pending backlog, the degradation must be reported, and the next
  // autosave must commit everything.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec(
                      "site=fileio.append,kind=errno,errno=ENOSPC,"
                      "match=degrade_faulty/alpha")
                  .ok());
  Fleet faulty(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(faulty.AddSession("alpha", MakeTenant(kSeedA, slow_dir)).ok());
  FleetReport report = faulty.Run();
  EXPECT_TRUE(report.AllComplete()) << report.Render();
  EXPECT_EQ(report.tenants[0].failures, 0) << report.Render();
  ASSERT_EQ(report.tenants[0].degraded.size(), 1u) << report.Render();
  EXPECT_NE(report.tenants[0].degraded[0].find("snapshot:"),
            std::string::npos);
  EXPECT_NE(report.tenants[0].degraded[0].find("ENOSPC"), std::string::npos);

  // Fuzzing state never depended on the disk.
  ExpectSameState(StateOf(faulty, "alpha"), StateOf(clean, "alpha"), "alpha");
  // And the backlog drained: every round is durable and resumable.
  EXPECT_EQ(faulty.FindSession("alpha")->pending_rounds(), 0);
  auto probe = MakeTenant(kSeedA, slow_dir)();
  ASSERT_NE(probe, nullptr);
  ASSERT_TRUE(probe->Resume(slow_dir).ok());
  EXPECT_EQ(probe->rounds_completed(), 3);
}

TEST_F(FleetTest, QuarantineIsolatesAFailingTenantFromItsSiblings)
{
  Fleet clean(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(clean.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(clean.Run().AllComplete());

  // Beta's round 0 fails on every attempt, forever.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec(
                      "site=orchestrator.worker,kind=throw,times=-1,match=" +
                      WorkerDetail(kSeedB, 0))
                  .ok());
  Fleet faulty(FleetOptions()
                   .WithTargetRounds(3)
                   .WithQuarantineAfter(3)
                   .WithRetryPolicy(util::RetryPolicy().WithMaxRetries(1))
                   .WithEnvPlan(false));
  ASSERT_TRUE(faulty.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(faulty.AddSession("beta", MakeTenant(kSeedB)).ok());
  FleetReport report = faulty.Run();

  EXPECT_FALSE(report.AllComplete());
  const TenantReport& alpha = report.tenants[0];
  const TenantReport& beta = report.tenants[1];
  EXPECT_TRUE(alpha.complete) << report.Render();
  EXPECT_FALSE(alpha.quarantined);
  EXPECT_TRUE(beta.quarantined) << report.Render();
  EXPECT_FALSE(beta.complete);
  EXPECT_EQ(beta.rounds_completed, 0);
  EXPECT_EQ(beta.failures, 3) << report.Render();
  EXPECT_NE(beta.last_error.find("injected throw fault"), std::string::npos);

  // The sibling never noticed.
  ExpectSameState(StateOf(faulty, "alpha"), StateOf(clean, "alpha"), "alpha");
}

TEST_F(FleetTest, SupervisorThreadCountChangesNothing)
{
  const std::string plan =
      "site=orchestrator.worker,kind=throw,match=" + WorkerDetail(kSeedA, 1);
  auto run_fleet = [&](int threads) {
    // Same plan re-armed per run: its counters are consumed by firing.
    EXPECT_TRUE(util::FaultInjector::Instance().ArmFromSpec(plan).ok());
    auto fleet = std::make_unique<Fleet>(FleetOptions()
                                             .WithTargetRounds(2)
                                             .WithSupervisorThreads(threads)
                                             .WithEnvPlan(false));
    EXPECT_TRUE(fleet->AddSession("alpha", MakeTenant(kSeedA)).ok());
    EXPECT_TRUE(fleet->AddSession("beta", MakeTenant(kSeedB)).ok());
    EXPECT_TRUE(fleet->AddSession("gamma", MakeTenant(0xCAFE)).ok());
    return fleet;
  };

  auto serial = run_fleet(1);
  FleetReport serial_report = serial->Run();
  auto threaded = run_fleet(4);
  FleetReport threaded_report = threaded->Run();

  // Byte-identical reports AND byte-identical tenant states.
  EXPECT_EQ(serial_report.Render(), threaded_report.Render());
  for (const char* name : {"alpha", "beta", "gamma"}) {
    ExpectSameState(StateOf(*threaded, name), StateOf(*serial, name), name);
  }
}

TEST_F(FleetTest, EnvPlanSoakConvergesToTheFaultFreeResult)
{
  // Fault-free baseline.
  Fleet clean(FleetOptions().WithTargetRounds(3).WithEnvPlan(false));
  ASSERT_TRUE(clean.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(clean.AddSession("beta", MakeTenant(kSeedB)).ok());
  ASSERT_TRUE(clean.Run().AllComplete());

  // The CI soak gate exports KERNELGPT_FAULT_PLAN and reruns this test;
  // without one, arm the same bounded mixed plan the gate uses. Bounded
  // windows (nth/times, no p=) guarantee the retries absorb every fault
  // regardless of scheduling, so convergence is a hard invariant.
  const char* env_plan = std::getenv("KERNELGPT_FAULT_PLAN");
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec(env_plan && *env_plan
                                   ? env_plan
                                   : "seed=7;"
                                     "site=orchestrator.worker,kind=throw,"
                                     "nth=1,times=2;"
                                     "site=fileio.append,kind=errno,"
                                     "errno=ENOSPC,nth=1,times=1")
                  .ok());
  Fleet faulty(FleetOptions().WithTargetRounds(3).WithEnvPlan(true));
  ASSERT_TRUE(faulty.AddSession("alpha", MakeTenant(kSeedA)).ok());
  ASSERT_TRUE(faulty.AddSession("beta", MakeTenant(kSeedB)).ok());
  FleetReport report = faulty.Run();
  EXPECT_TRUE(report.AllComplete()) << report.Render();

  ExpectSameState(StateOf(faulty, "alpha"), StateOf(clean, "alpha"), "alpha");
  ExpectSameState(StateOf(faulty, "beta"), StateOf(clean, "beta"), "beta");
}

}  // namespace
}  // namespace kernelgpt::fuzzer
