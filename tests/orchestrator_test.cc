// Tests for the parallel sharded campaign orchestrator: serial
// equivalence of a 1-worker run, determinism of N-worker merges,
// cross-shard corpus syncing, and a multi-worker stress smoke test
// (run this suite under -fsanitize=thread to check the barriers).

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/campaign.h"
#include "fuzzer/orchestrator.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class OrchestratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  static SpecLibrary DmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* OrchestratorTest::consts_ = nullptr;

TEST_F(OrchestratorTest, OneWorkerBitIdenticalToSerialCampaign)
{
  SpecLibrary lib = DmLibrary();

  CampaignOptions campaign;
  campaign.program_budget = 8000;
  campaign.seed = 77;

  vkernel::Kernel kernel;
  Boot(&kernel);
  CampaignResult serial = RunCampaign(&kernel, lib, campaign);

  OrchestratorOptions options;
  options.campaign = campaign;
  options.num_workers = 1;
  options.sync_interval = 100;  // Must not matter with one worker.
  OrchestratorResult sharded = RunShardedCampaign(lib, Boot, options);

  EXPECT_EQ(serial.programs_executed, sharded.programs_executed);
  EXPECT_EQ(serial.corpus_size, sharded.corpus_size);
  EXPECT_EQ(serial.crashes, sharded.crashes);
  // Bit-identical coverage: the same block id sets, not just counts.
  EXPECT_EQ(serial.coverage.blocks(), sharded.coverage.blocks());
}

TEST_F(OrchestratorTest, OneWorkerToCampaignResultRoundTrips)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 2000;
  options.campaign.seed = 5;
  OrchestratorResult sharded = RunShardedCampaign(lib, Boot, options);
  CampaignResult as_serial = sharded.ToCampaignResult();
  EXPECT_EQ(as_serial.crashes, sharded.crashes);
  EXPECT_EQ(as_serial.coverage.Count(), sharded.coverage.Count());
  EXPECT_EQ(as_serial.programs_executed, sharded.programs_executed);
}

TEST_F(OrchestratorTest, MultiWorkerMergeIsDeterministic)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 12000;
  options.campaign.seed = 123;
  options.num_workers = 4;
  options.sync_interval = 250;

  OrchestratorResult a = RunShardedCampaign(lib, Boot, options);
  OrchestratorResult b = RunShardedCampaign(lib, Boot, options);

  // Thread scheduling must not leak into results: identical dedup'd
  // crash maps, identical coverage bitmaps, identical shard stats.
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks());
  EXPECT_EQ(a.programs_executed, b.programs_executed);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].programs_executed, b.shards[i].programs_executed);
    EXPECT_EQ(a.shards[i].coverage_blocks, b.shards[i].coverage_blocks);
    EXPECT_EQ(a.shards[i].crash_occurrences, b.shards[i].crash_occurrences);
    EXPECT_EQ(a.shards[i].seeds_broadcast, b.shards[i].seeds_broadcast);
    EXPECT_EQ(a.shards[i].seeds_ingested, b.shards[i].seeds_ingested);
  }
}

TEST_F(OrchestratorTest, BudgetIsShardedExactly)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 10001;  // Deliberately not divisible.
  options.campaign.seed = 9;
  options.num_workers = 4;
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);

  ASSERT_EQ(result.shards.size(), 4u);
  // Budgets 2501+2500+2500+2500; executed <= budget (empty programs are
  // skipped without counting, exactly like the serial loop).
  size_t total = 0;
  for (const auto& shard : result.shards) {
    EXPECT_LE(shard.programs_executed, 2501u);
    total += shard.programs_executed;
  }
  EXPECT_EQ(total, result.programs_executed);
  EXPECT_LE(result.programs_executed, 10001u);
  EXPECT_GT(result.programs_executed, 9000u);  // Almost no empty programs.
}

TEST_F(OrchestratorTest, ShardsExchangeSeedsAtSyncPoints)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 8000;
  options.campaign.seed = 41;
  options.num_workers = 4;
  options.sync_interval = 100;  // Many sync epochs.
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);

  size_t broadcast = 0;
  size_t ingested = 0;
  for (const auto& shard : result.shards) {
    broadcast += shard.seeds_broadcast;
    ingested += shard.seeds_ingested;
  }
  // The dm spec finds new coverage early, so every shard has something
  // to share, and every broadcast seed is ingested by all three peers.
  EXPECT_GT(broadcast, 0u);
  EXPECT_EQ(ingested, broadcast * 3);
}

TEST_F(OrchestratorTest, MultiWorkerFindsTheSameDmBugsAsSerial)
{
  // Crash-dedup semantics are identical: the same titles dominate.
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 20000;
  options.campaign.seed = 5;
  options.num_workers = 4;
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);
  EXPECT_TRUE(result.crashes.count("kmalloc bug in ctl_ioctl"));
  EXPECT_TRUE(result.crashes.count("kmalloc bug in dm_table_create"));
  EXPECT_TRUE(result.crashes.count(
      "general protection fault in cleanup_mapped_device"));
}

TEST_F(OrchestratorTest, EightWorkerStressSmoke)
{
  // Oversubscribes cores on small machines on purpose; run under TSan to
  // validate the publish/ingest barrier protocol.
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 16000;
  options.campaign.seed = 2026;
  options.num_workers = 8;
  options.sync_interval = 64;  // Hammer the barriers.
  options.max_broadcast_per_sync = 4;
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);

  ASSERT_EQ(result.shards.size(), 8u);
  EXPECT_GT(result.programs_executed, 14000u);
  EXPECT_GT(result.coverage.Count(), 0u);
  EXPECT_GT(result.UniqueCrashCount(), 0u);
  // Union coverage dominates every shard's local view.
  for (const auto& shard : result.shards) {
    EXPECT_LE(shard.coverage_blocks, result.coverage.Count());
  }
}

TEST_F(OrchestratorTest, FixedSyncScheduleIsRecordedInEpochTrace)
{
  // Adaptive sync off (the default): every epoch runs at the configured
  // interval and broadcast cap — the historical fixed schedule, now
  // visible in the result trace.
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 4000;
  options.campaign.seed = 3;
  options.num_workers = 2;
  options.sync_interval = 250;
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);

  ASSERT_EQ(result.epochs.size(), 8u);  // ceil(2000 / 250) per shard.
  for (const EpochStats& epoch : result.epochs) {
    EXPECT_EQ(epoch.sync_interval, 250);
    EXPECT_EQ(epoch.broadcast_cap, options.max_broadcast_per_sync);
  }
  // The merged corpus is exported shard-by-shard for the distiller.
  EXPECT_EQ(result.corpus.size(), result.corpus_size);
}

TEST_F(OrchestratorTest, AdaptiveSyncStaysInBoundsAndIsDeterministic)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 16000;
  options.campaign.seed = 911;
  options.num_workers = 4;
  options.sync_interval = 128;
  options.adaptive_sync = true;
  options.min_sync_interval = 64;
  options.max_sync_interval = 1024;
  options.min_broadcast_per_sync = 2;
  options.max_broadcast_cap = 32;

  OrchestratorResult a = RunShardedCampaign(lib, Boot, options);
  OrchestratorResult b = RunShardedCampaign(lib, Boot, options);

  // The controller must widen the interval once coverage plateaus (the
  // dm spec saturates quickly at this budget) while staying in bounds.
  ASSERT_FALSE(a.epochs.empty());
  bool widened = false;
  for (const EpochStats& epoch : a.epochs) {
    EXPECT_GE(epoch.sync_interval, options.min_sync_interval);
    EXPECT_LE(epoch.sync_interval, options.max_sync_interval);
    EXPECT_GE(epoch.broadcast_cap, options.min_broadcast_per_sync);
    EXPECT_LE(epoch.broadcast_cap, options.max_broadcast_cap);
    if (epoch.sync_interval > options.sync_interval) widened = true;
  }
  EXPECT_TRUE(widened);

  // Thread scheduling must not leak into the adaptive schedule or the
  // results: the controller is a pure function of merged epoch stats.
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].sync_interval, b.epochs[e].sync_interval);
    EXPECT_EQ(a.epochs[e].broadcast_cap, b.epochs[e].broadcast_cap);
    EXPECT_EQ(a.epochs[e].new_blocks, b.epochs[e].new_blocks);
  }
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks());
  EXPECT_EQ(a.programs_executed, b.programs_executed);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
}

TEST_F(OrchestratorTest, AdaptiveBoundsAreClampedAtConstruction)
{
  SpecLibrary lib = DmLibrary();
  OrchestratorOptions options;
  options.campaign.program_budget = 2000;
  options.campaign.seed = 8;
  options.num_workers = 2;
  options.adaptive_sync = true;
  options.sync_interval = 10000;   // Above max: must clamp down.
  options.max_sync_interval = 512;
  options.max_broadcast_per_sync = 1;  // Below min: must clamp up.
  options.min_broadcast_per_sync = 4;
  options.max_broadcast_cap = 16;

  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);
  ASSERT_FALSE(result.epochs.empty());
  EXPECT_LE(result.epochs.front().sync_interval, 512);
  EXPECT_GE(result.epochs.front().broadcast_cap, 4u);
}

TEST_F(OrchestratorTest, EmptyLibraryYieldsNothing)
{
  SpecLibrary lib;
  lib.Finalize();
  OrchestratorOptions options;
  options.campaign.program_budget = 100;
  options.num_workers = 4;
  OrchestratorResult result = RunShardedCampaign(lib, Boot, options);
  EXPECT_EQ(result.programs_executed, 0u);
  EXPECT_EQ(result.coverage.Count(), 0u);
  EXPECT_EQ(result.UniqueCrashCount(), 0u);
}

}  // namespace
}  // namespace kernelgpt::fuzzer
