// Differential-oracle determinism suite: strict-vs-strict runs must
// report zero divergences over the full ground-truth corpus; a
// strict-vs-permissive run must find at least one deterministic,
// minimized divergence; and the rendered report must be byte-identical
// across worker counts and across session resume. Run this suite under
// -fsanitize=thread to check the DiffRunner's worker partitioning.

#include <gtest/gtest.h>

#include <filesystem>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/diff_runner.h"
#include "fuzzer/generator.h"
#include "fuzzer/session.h"
#include "util/fault.h"
#include "util/rng.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class DiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  /// Ground-truth specs of every loaded module — the full oracle corpus
  /// surface, devices and sockets alike.
  static SpecLibrary GroundTruthLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    for (const drivers::DeviceSpec* dev : Corpus::Instance().LoadedDevices()) {
      lib.Add(drivers::GroundTruthDeviceSpec(*dev));
    }
    for (const drivers::SocketSpec& sock : Corpus::Instance().sockets()) {
      lib.Add(drivers::GroundTruthSocketSpec(sock));
    }
    lib.Finalize();
    return lib;
  }

  static SpecLibrary DmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  /// Deterministic corpus over `lib`: `count` generated programs.
  static std::vector<Prog> MakeCorpus(const SpecLibrary& lib, int count,
                                      uint64_t seed) {
    util::Rng rng(seed);
    Generator generator(&lib, &rng);
    std::vector<Prog> corpus;
    corpus.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      Prog prog = generator.Generate(6);
      if (!prog.empty()) corpus.push_back(std::move(prog));
    }
    return corpus;
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* DiffTest::consts_ = nullptr;

TEST_F(DiffTest, StrictVsStrictHasZeroDivergences)
{
  SpecLibrary lib = GroundTruthLibrary();
  std::vector<Prog> corpus = MakeCorpus(lib, 300, 11);
  ASSERT_FALSE(corpus.empty());

  DiffOptions options;
  options.baseline = vkernel::MakeStrictModel;
  options.subject = vkernel::MakeStrictModel;
  options.boot = Boot;
  DiffRunner runner(&lib, options);
  DiffReport report = runner.Run(corpus);

  EXPECT_EQ(report.programs, corpus.size());
  EXPECT_EQ(report.diverging_programs, 0u);
  EXPECT_TRUE(report.divergences.empty()) << report.Render();
  EXPECT_EQ(report.baseline_name, "strict");
  EXPECT_EQ(report.subject_name, "strict");
}

TEST_F(DiffTest, StrictVsPermissiveFindsMinimizedDivergences)
{
  SpecLibrary lib = GroundTruthLibrary();
  std::vector<Prog> corpus = MakeCorpus(lib, 300, 11);

  DiffOptions defaults;
  defaults.boot = Boot;
  DiffRunner runner(&lib, defaults);
  DiffReport report = runner.Run(corpus);

  EXPECT_EQ(report.baseline_name, "strict");
  EXPECT_EQ(report.subject_name, "permissive");
  ASSERT_GE(report.divergences.size(), 1u) << report.Render();
  for (const Divergence& d : report.divergences) {
    EXPECT_TRUE(d.minimized) << d.signature;
    EXPECT_GE(d.occurrences, 1u);
    EXPECT_FALSE(d.repro.empty());
    // A minimized repro still reproduces its own signature from scratch.
    DiffOptions bare;
    bare.boot = Boot;
    bare.minimize = false;
    DiffRunner recheck(&lib, bare);
    std::vector<Prog> one{d.repro};
    DiffReport again = recheck.Run(one);
    ASSERT_EQ(again.divergences.size(), 1u) << d.signature;
    EXPECT_EQ(again.divergences[0].signature, d.signature);
  }
}

TEST_F(DiffTest, ReportByteIdenticalAcrossWorkerCounts)
{
  SpecLibrary lib = GroundTruthLibrary();
  std::vector<Prog> corpus = MakeCorpus(lib, 300, 11);

  DiffOptions one;
  one.boot = Boot;
  one.num_workers = 1;
  DiffOptions four = one;
  four.num_workers = 4;

  DiffReport a = DiffRunner(&lib, one).Run(corpus);
  DiffReport b = DiffRunner(&lib, four).Run(corpus);
  EXPECT_FALSE(a.divergences.empty());
  EXPECT_EQ(a.Render(), b.Render());
  // And re-running the same pair is stable, not merely
  // partition-independent.
  DiffReport c = DiffRunner(&lib, four).Run(corpus);
  EXPECT_EQ(b.Render(), c.Render());
}

TEST_F(DiffTest, SessionRoundsRecordRoundScopedDivergences)
{
  SpecLibrary lib = DmLibrary();

  auto options = SessionOptions()
                     .WithSeed(21)
                     .WithRounds(2)
                     .WithProgramBudget(2000)
                     .WithDiffSubject(vkernel::MakePermissiveModel, 2);
  Session session(options, Boot);
  ASSERT_TRUE(session.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(session.Run().ok());

  const SuiteState* state = session.Find("dm");
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->rounds.size(), 2u);
  // dm programs poke invalid fds and unknown paths constantly; the
  // personalities must disagree somewhere every round.
  EXPECT_GE(state->rounds[0].divergences, 1u);
  EXPECT_GE(state->rounds[1].divergences, 1u);
  EXPECT_EQ(state->last_diff.UniqueDivergenceCount(),
            state->rounds[1].divergences);
  EXPECT_EQ(state->last_diff.baseline_name, "strict");
  EXPECT_EQ(state->last_diff.subject_name, "permissive");
}

TEST_F(DiffTest, DivergenceCountSurvivesSaveResume)
{
  SpecLibrary lib = DmLibrary();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kernelgpt_diff_resume_test")
          .string();
  std::filesystem::remove_all(dir);

  auto options = SessionOptions()
                     .WithSeed(9)
                     .WithRounds(2)
                     .WithProgramBudget(2000)
                     .WithDiffSubject(vkernel::MakePermissiveModel);

  Session straight(options, Boot);
  ASSERT_TRUE(straight.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(straight.Run().ok());

  Session first(options, Boot);
  ASSERT_TRUE(first.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(first.RunRound().ok());
  ASSERT_TRUE(first.Save(dir).ok());

  Session resumed(SessionOptions(options).WithRounds(1), Boot);
  ASSERT_TRUE(resumed.RegisterSuite("dm", &lib).ok());
  ASSERT_TRUE(resumed.Resume(dir).ok());
  ASSERT_TRUE(resumed.Run().ok());

  const SuiteState* a = straight.Find("dm");
  const SuiteState* b = resumed.Find("dm");
  ASSERT_EQ(a->rounds.size(), 2u);
  ASSERT_EQ(b->rounds.size(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(a->rounds[r].divergences, b->rounds[r].divergences) << r;
  }
  // The resumed continuation regenerates the same final report.
  EXPECT_EQ(a->last_diff.Render(), b->last_diff.Render());
  std::filesystem::remove_all(dir);
}

TEST_F(DiffTest, NetPolicyKnobsDivergeStrictVsPermissive)
{
  // Handcrafted net programs hitting exactly the KernelPolicy knobs the
  // vnet stack consults: re-listen on a listening socket and re-bind of
  // a bound socket. Strict refuses both with EINVAL; Permissive allows
  // them — each must surface as a distinct deduplicated divergence, and
  // strict-vs-strict must stay silent on the same corpus.
  SpecLibrary lib;
  lib.SetConsts(*consts_);
  lib.Add(drivers::GroundTruthSocketSpec(*Corpus::Instance().FindSocket("tcp")));
  lib.Finalize();

  size_t socket_idx = lib.syscalls().size();
  size_t bind_idx = lib.syscalls().size();
  size_t listen_idx = lib.syscalls().size();
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    const std::string full = lib.syscalls()[i].FullName();
    if (full == "socket$tcp") socket_idx = i;
    if (full == "bind$tcp") bind_idx = i;
    if (full == "listen$tcp") listen_idx = i;
  }
  ASSERT_LT(socket_idx, lib.syscalls().size());
  ASSERT_LT(bind_idx, lib.syscalls().size());
  ASSERT_LT(listen_idx, lib.syscalls().size());

  auto scalar = [](uint64_t v) {
    Arg a;
    a.scalar = v;
    return a;
  };
  auto ref = [](int call) {
    Arg a;
    a.kind = Arg::Kind::kResourceRef;
    a.ref_call = call;
    return a;
  };
  auto addr = [](uint16_t port) {
    Arg a;
    a.kind = Arg::Kind::kBuffer;
    a.bytes = {2, 0, static_cast<uint8_t>(port), 0, 0, 0, 0, 0};
    return a;
  };
  auto len8 = [&scalar]() {
    Arg a = scalar(8);
    a.len_of_param = 1;
    return a;
  };

  Prog relisten;
  relisten.calls = {
      Call{socket_idx, {scalar(2), scalar(1), scalar(6)}},
      Call{bind_idx, {ref(0), addr(3), len8()}},
      Call{listen_idx, {ref(0), scalar(0)}},
      Call{listen_idx, {ref(0), scalar(0)}},
  };
  Prog rebind;
  rebind.calls = {
      Call{socket_idx, {scalar(2), scalar(1), scalar(6)}},
      Call{bind_idx, {ref(0), addr(3), len8()}},
      Call{bind_idx, {ref(0), addr(4), len8()}},
  };
  std::vector<Prog> corpus = {relisten, rebind};

  DiffOptions options;
  options.boot = Boot;
  DiffRunner runner(&lib, options);
  DiffReport report = runner.Run(corpus);

  ASSERT_EQ(report.divergences.size(), 2u) << report.Render();
  EXPECT_EQ(report.divergences[0].syscall, "listen");
  EXPECT_EQ(report.divergences[1].syscall, "bind");
  for (const Divergence& d : report.divergences) {
    EXPECT_EQ(d.kind, Divergence::Kind::kResult) << d.signature;
    EXPECT_TRUE(d.minimized) << d.signature;
    EXPECT_FALSE(d.repro.empty());
  }

  DiffOptions same;
  same.baseline = vkernel::MakeStrictModel;
  same.subject = vkernel::MakeStrictModel;
  same.boot = Boot;
  DiffReport silent = DiffRunner(&lib, same).Run(corpus);
  EXPECT_TRUE(silent.divergences.empty()) << silent.Render();
}

TEST_F(DiffTest, BeginBatchFaultPointFires)
{
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("site=vkernel.begin_batch,kind=throw")
                  .ok());
  vkernel::Kernel kernel;
  EXPECT_THROW(kernel.BeginBatch(), util::InjectedFault);
  util::FaultInjector::Instance().Disarm();
  // Disarmed, the pristine window opens and closes normally.
  kernel.BeginBatch();
  kernel.EndBatch();
}

}  // namespace
}  // namespace kernelgpt::fuzzer
