// Tests for the between-campaign corpus distillation service: the
// distilled corpus must reproduce the merged corpus's coverage bitmap
// exactly with no more programs, deterministically across runs; crash
// reproducers must be deduplicated by title and still crash; and the
// campaign-of-campaigns loop must keep corpora bounded while coverage
// accumulates.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/distiller.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using drivers::Corpus;

class DistillerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    consts_ = new syzlang::ConstTable(
        Corpus::Instance().BuildIndex().BuildConstTable());
  }
  static void TearDownTestSuite() {
    delete consts_;
    consts_ = nullptr;
  }

  static SpecLibrary DmLibrary() {
    SpecLibrary lib;
    lib.SetConsts(*consts_);
    lib.Add(
        drivers::GroundTruthDeviceSpec(*Corpus::Instance().FindDevice("dm")));
    lib.Finalize();
    return lib;
  }

  static void Boot(vkernel::KernelModel* kernel) {
    Corpus::Instance().RegisterAll(kernel);
  }

  /// Runs a short 4-worker campaign and returns its merged corpus.
  static std::vector<Prog> MergedCorpus(const SpecLibrary& lib,
                                        uint64_t seed) {
    OrchestratorOptions options;
    options.campaign.program_budget = 12000;
    options.campaign.seed = seed;
    options.num_workers = 4;
    options.sync_interval = 200;
    return RunShardedCampaign(lib, Boot, options).corpus;
  }

  static syzlang::ConstTable* consts_;
};

syzlang::ConstTable* DistillerTest::consts_ = nullptr;

TEST_F(DistillerTest, DistilledCoverageEqualsMergedCoverageWithFewerPrograms)
{
  SpecLibrary lib = DmLibrary();
  std::vector<Prog> merged = MergedCorpus(lib, 77);
  ASSERT_GT(merged.size(), 10u);

  Distiller distiller(&lib, Boot);
  DistillResult distilled = distiller.Distill(merged);

  // The acceptance invariant: 100% of the merged corpus's coverage
  // bitmap, from a strictly smaller-or-equal program count.
  EXPECT_LE(distilled.corpus.size(), merged.size());
  ASSERT_FALSE(distilled.corpus.empty());
  vkernel::Coverage replayed;
  vkernel::Kernel kernel;
  Boot(&kernel);
  Executor executor(&kernel, &lib);
  executor.RunBatch(distilled.corpus, &replayed);
  EXPECT_EQ(replayed.blocks(), distilled.coverage.blocks());
  EXPECT_TRUE(replayed.CoversAll(distilled.coverage));
  EXPECT_TRUE(distilled.coverage.CoversAll(replayed));

  // Stats add up.
  EXPECT_EQ(distilled.stats.input_programs, merged.size());
  EXPECT_EQ(distilled.stats.selected, distilled.corpus.size());
  EXPECT_EQ(distilled.stats.replayed + distilled.stats.exact_duplicates,
            merged.size());
}

TEST_F(DistillerTest, DistillationIsDeterministicAcrossRuns)
{
  SpecLibrary lib = DmLibrary();
  std::vector<Prog> merged = MergedCorpus(lib, 123);

  Distiller distiller(&lib, Boot);
  DistillResult a = distiller.Distill(merged);
  DistillResult b = distiller.Distill(merged);

  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(HashProg(a.corpus[i]), HashProg(b.corpus[i])) << "program " << i;
  }
  EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks());
  ASSERT_EQ(a.crash_reproducers.size(), b.crash_reproducers.size());
  auto ita = a.crash_reproducers.begin();
  auto itb = b.crash_reproducers.begin();
  for (; ita != a.crash_reproducers.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(HashProg(ita->second), HashProg(itb->second));
  }
  EXPECT_EQ(a.stats.exact_duplicates, b.stats.exact_duplicates);
  EXPECT_EQ(a.stats.minimize_executions, b.stats.minimize_executions);
}

TEST_F(DistillerTest, ExactDuplicatesAreDroppedBeforeReplay)
{
  SpecLibrary lib = DmLibrary();
  std::vector<Prog> merged = MergedCorpus(lib, 9);
  ASSERT_FALSE(merged.empty());

  // Triple every program: two thirds of the input must dedupe away and
  // the distilled output must not change.
  Distiller distiller(&lib, Boot);
  DistillResult base = distiller.Distill(merged);

  std::vector<Prog> tripled;
  for (int copy = 0; copy < 3; ++copy) {
    tripled.insert(tripled.end(), merged.begin(), merged.end());
  }
  DistillResult dup = distiller.Distill(tripled);
  EXPECT_GE(dup.stats.exact_duplicates, merged.size() * 2);
  EXPECT_EQ(dup.stats.replayed, base.stats.replayed);
  ASSERT_EQ(dup.corpus.size(), base.corpus.size());
  for (size_t i = 0; i < dup.corpus.size(); ++i) {
    EXPECT_EQ(HashProg(dup.corpus[i]), HashProg(base.corpus[i]));
  }
}

TEST_F(DistillerTest, CrashReproducersAreMinimizedAndStillCrash)
{
  SpecLibrary lib = DmLibrary();
  // A budget large enough that the dm bugs fire during replay.
  OrchestratorOptions options;
  options.campaign.program_budget = 20000;
  options.campaign.seed = 5;
  options.num_workers = 2;
  OrchestratorResult campaign = RunShardedCampaign(lib, Boot, options);
  ASSERT_FALSE(campaign.crashes.empty());

  Distiller distiller(&lib, Boot);
  DistillResult distilled = distiller.Distill(campaign.corpus);

  // Crashing seeds live in the corpus (they found coverage when admitted),
  // so replay rediscovers at least one title; each reproducer replays to
  // exactly its own title.
  ASSERT_FALSE(distilled.crash_reproducers.empty());
  vkernel::Kernel kernel;
  Boot(&kernel);
  Executor executor(&kernel, &lib);
  for (const auto& [title, prog] : distilled.crash_reproducers) {
    ASSERT_FALSE(prog.empty());
    EXPECT_LE(prog.size(), 4u) << title;  // dm repros are tiny.
    ExecResult replay = executor.Run(prog, nullptr);
    EXPECT_TRUE(replay.crashed) << title;
    EXPECT_EQ(replay.crash_title, title);
  }
}

TEST_F(DistillerTest, EmptyAndTrivialInputsAreSafe)
{
  SpecLibrary lib = DmLibrary();
  Distiller distiller(&lib, Boot);

  DistillResult empty = distiller.Distill({});
  EXPECT_TRUE(empty.corpus.empty());
  EXPECT_EQ(empty.coverage.Count(), 0u);
  EXPECT_TRUE(empty.crash_reproducers.empty());

  // Programs with no calls are skipped, not replayed.
  DistillResult blank = distiller.Distill(std::vector<Prog>(5));
  EXPECT_TRUE(blank.corpus.empty());
  EXPECT_EQ(blank.stats.replayed, 0u);
}

TEST_F(DistillerTest, CampaignLoopKeepsCorpusBoundedAndAccumulatesCoverage)
{
  SpecLibrary lib = DmLibrary();
  CampaignLoopOptions options;
  options.orchestrator.campaign.program_budget = 8000;
  options.orchestrator.campaign.seed = 31;
  options.orchestrator.num_workers = 4;
  options.orchestrator.sync_interval = 200;
  options.rounds = 3;

  CampaignLoopResult result = RunCampaignLoop(lib, Boot, options);
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.programs_executed, 3u * 8000u);
  EXPECT_GT(result.coverage.Count(), 0u);
  for (const CampaignRoundStats& round : result.rounds) {
    // Distillation must never grow a corpus.
    EXPECT_LE(round.distilled_corpus, round.merged_corpus);
  }
  // Cumulative coverage is monotone across rounds.
  for (size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_GE(result.rounds[r].coverage_blocks,
              result.rounds[r - 1].coverage_blocks);
  }
  // The final corpus is the last round's distilled set.
  EXPECT_EQ(result.corpus.size(), result.rounds.back().distilled_corpus);

  // And the loop is deterministic end to end.
  CampaignLoopResult again = RunCampaignLoop(lib, Boot, options);
  EXPECT_EQ(again.coverage.blocks(), result.coverage.blocks());
  EXPECT_EQ(again.crashes, result.crashes);
  ASSERT_EQ(again.corpus.size(), result.corpus.size());
  for (size_t i = 0; i < again.corpus.size(); ++i) {
    EXPECT_EQ(HashProg(again.corpus[i]), HashProg(result.corpus[i]));
  }
}

TEST_F(DistillerTest, ReseededRoundReplaysSeedsWithoutBudget)
{
  SpecLibrary lib = DmLibrary();
  std::vector<Prog> merged = MergedCorpus(lib, 55);
  Distiller distiller(&lib, Boot);
  DistillResult distilled = distiller.Distill(merged);
  ASSERT_FALSE(distilled.corpus.empty());

  OrchestratorOptions options;
  options.campaign.program_budget = 4000;
  options.campaign.seed = 56;
  options.campaign.seed_corpus = distilled.corpus;
  options.num_workers = 2;
  OrchestratorResult reseeded = RunShardedCampaign(lib, Boot, options);

  EXPECT_EQ(reseeded.programs_executed, 4000u);  // Seeds don't eat budget.
  for (const ShardStats& shard : reseeded.shards) {
    EXPECT_EQ(shard.seeds_preloaded, distilled.corpus.size());
  }
  // Seed coverage is primed before the loop, so the reseeded campaign
  // covers at least everything the distilled corpus covers.
  EXPECT_TRUE(reseeded.coverage.CoversAll(distilled.coverage));
}

}  // namespace
}  // namespace kernelgpt::fuzzer
