// Tests for the simulated analysis LLM: capability-profile behaviour,
// per-stage analyses, determinism, token metering, and the backend
// registry (profiles as data, pricing, wrapper backends).

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "ksrc/cparser.h"
#include "llm/engine.h"
#include "llm/flaky_backend.h"
#include "llm/registry.h"

namespace kernelgpt::llm {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ksrc::DefinitionIndex(
        drivers::Corpus::Instance().BuildIndex());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }
  static ksrc::DefinitionIndex* index_;
};

ksrc::DefinitionIndex* EngineTest::index_ = nullptr;

TEST(ProfileTest, DecideIsDeterministic)
{
  ModelProfile p = Gpt4();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.Decide("some-key", 0.5), p.Decide("some-key", 0.5));
  }
  EXPECT_FALSE(p.Decide("anything", 0.0));
  EXPECT_TRUE(p.Decide("anything", 1.0));
}

TEST(ProfileTest, DecideApproximatesRate)
{
  ModelProfile p = Gpt4();
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (p.Decide("key-" + std::to_string(i), 0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 500, 120);
}

TEST(ProfileTest, ProfilesDifferInDraws)
{
  ModelProfile a = Gpt4();
  ModelProfile b = Gpt35();
  int differ = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Decide("k" + std::to_string(i), 0.5) !=
        b.Decide("k" + std::to_string(i), 0.5)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 10);
}

TEST_F(EngineTest, DelegationReportedAsUnknown)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  IdentifierAnalysis step1 =
      engine.AnalyzeIdentifiers("dm_ctl_ioctl", "usage", "dm", 1);
  EXPECT_TRUE(step1.commands.empty());
  ASSERT_EQ(step1.unknowns.size(), 1u);
  EXPECT_EQ(step1.unknowns[0].identifier, "dm_ctl_do_ioctl");
}

TEST_F(EngineTest, ModifiedSwitchReverseMapped)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  ASSERT_FALSE(analysis.commands.empty());
  // Labels are *_NR macros but the model reports the full command macros.
  bool found_list = false;
  for (const auto& cmd : analysis.commands) {
    EXPECT_TRUE(cmd.from_modified_switch);
    if (cmd.macro == "DM_LIST_DEVICES") found_list = true;
  }
  EXPECT_TRUE(found_list);
}

TEST_F(EngineTest, Gpt35UsesRawNrLabels)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt35(), &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  for (const auto& cmd : analysis.commands) {
    EXPECT_TRUE(cmd.identifier_mangled) << cmd.macro;
  }
}

TEST_F(EngineTest, DepthLimitStopsAnalysis)
{
  TokenMeter meter;
  ModelProfile shallow = Gpt4();
  shallow.max_delegation_depth = 1;
  SimulatedBackend engine(index_, shallow, &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  EXPECT_TRUE(analysis.commands.empty());
  EXPECT_TRUE(analysis.unknowns.empty());
}

TEST_F(EngineTest, TableLookupComprehension)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  // ubi's dispatcher calls ubi_lookup_ioctl; the lookup function's table
  // yields the commands.
  IdentifierAnalysis top =
      engine.AnalyzeIdentifiers("ubi_ctl_ioctl", "usage", "ubi", 1);
  ASSERT_FALSE(top.unknowns.empty());
  IdentifierAnalysis table = engine.AnalyzeIdentifiers(
      top.unknowns[0].identifier, top.unknowns[0].usage, "ubi", 2);
  EXPECT_GE(table.commands.size(), 5u);

  // GPT-3.5 does not model dispatch tables.
  SimulatedBackend weak(index_, Gpt35(), &meter);
  IdentifierAnalysis none = weak.AnalyzeIdentifiers(
      top.unknowns[0].identifier, top.unknowns[0].usage, "ubi", 2);
  EXPECT_TRUE(none.commands.empty());
}

TEST_F(EngineTest, ArgTypeAnalysisRecoversStructAndConstraints)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  ArgTypeAnalysis analysis =
      engine.AnalyzeArgumentType("kvm_vm_kvm_set_user_memory_region", "kvm");
  EXPECT_EQ(analysis.arg_struct, "kvm_userspace_memory_region");
  EXPECT_EQ(analysis.dir, syzlang::Dir::kIn);
  bool slot_range = false;
  bool size_nonzero = false;
  for (const auto& c : analysis.constraints) {
    if (c.field == "slot" && c.kind == FieldConstraint::Kind::kRange &&
        c.a == 0 && c.b == 31) {
      slot_range = true;
    }
    if (c.field == "memory_size" &&
        c.kind == FieldConstraint::Kind::kNonZero) {
      size_nonzero = true;
    }
  }
  EXPECT_TRUE(slot_range);
  EXPECT_TRUE(size_nonzero);
}

TEST_F(EngineTest, OutDirectionFromCopyToUser)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  ArgTypeAnalysis analysis =
      engine.AnalyzeArgumentType("kvm_vcpu_kvm_get_regs", "kvm");
  EXPECT_EQ(analysis.dir, syzlang::Dir::kOut);
}

TEST_F(EngineTest, StructRecoveryLenSemantics)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  StructRecovery rec = engine.RecoverStruct("cec_msg", "cec", {}, {});
  const syzlang::Field* len = nullptr;
  for (const auto& f : rec.def.fields) {
    if (f.name == "len") len = &f;
  }
  ASSERT_NE(len, nullptr);
  EXPECT_EQ(len->type.kind, syzlang::TypeKind::kLen);
  EXPECT_EQ(len->type.len_target, "msg");
}

TEST_F(EngineTest, StructRecoveryNestedUnknown)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  // Craft a synthetic nested case via the corpus: any struct referencing
  // another struct by value reports a kType unknown. dm has none, so use
  // an inline source.
  ksrc::DefinitionIndex local;
  local.AddSource("struct inner { __u32 x; };\n"
                  "struct outer { struct inner i; __u64 y; };\n",
                  "t.c");
  local.ResolveMacros();
  SimulatedBackend nested(&local, Gpt4(), &meter);
  StructRecovery rec = nested.RecoverStruct("outer", "t", {}, {});
  ASSERT_EQ(rec.unknowns.size(), 1u);
  EXPECT_EQ(rec.unknowns[0].identifier, "inner");
  EXPECT_EQ(rec.unknowns[0].kind, Unknown::Kind::kType);
}

TEST_F(EngineTest, DependencyAnalysisFindsAnonInode)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  DependencyAnalysis dep =
      engine.AnalyzeDependencies("kvm_dev_kvm_create_vm", "kvm");
  ASSERT_EQ(dep.created.size(), 1u);
  EXPECT_EQ(dep.created[0].label, "kvm-vm");
  EXPECT_EQ(dep.created[0].fops_var, "_kvm_vm_fops");
}

TEST_F(EngineTest, DeviceNodeInferenceNodename)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  auto handlers = extractor::FindDriverHandlers(*index_);
  for (const auto& h : handlers) {
    if (h.file_path != "drivers/dm.c" ||
        h.reg == extractor::RegKind::kUnreferenced) {
      continue;
    }
    EXPECT_EQ(engine.InferDeviceNode(h, "dm"), "/dev/mapper/control");
    // A nodename-blind model falls back to .name (the SyzDescribe error).
    ModelProfile blind = Gpt4();
    blind.understands_nodename = false;
    SimulatedBackend weak(index_, blind, &meter);
    EXPECT_EQ(weak.InferDeviceNode(h, "dm"), "/dev/device-mapper");
  }
}

TEST_F(EngineTest, SocketCreateAnalysis)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  SocketCreateAnalysis create =
      engine.AnalyzeSocketCreate("rds_create", "rds");
  EXPECT_EQ(create.type_macro, "SOCK_SEQPACKET");
  EXPECT_FALSE(create.protocol_checked);  // rds accepts any protocol.

  SocketCreateAnalysis l2tp =
      engine.AnalyzeSocketCreate("l2tp_ip6_create", "l2tp_ip6");
  EXPECT_TRUE(l2tp.protocol_checked);
  EXPECT_EQ(l2tp.protocol, 115u);
}

TEST_F(EngineTest, MeterCountsTokens)
{
  TokenMeter meter;
  SimulatedBackend engine(index_, Gpt4(), &meter);
  engine.AnalyzeIdentifiers("dm_ctl_ioctl", "usage", "dm", 1);
  EXPECT_EQ(meter.query_count(), 1u);
  EXPECT_GT(meter.total_input_tokens(), 20u);
  EXPECT_GT(meter.total_output_tokens(), 0u);
  EXPECT_GT(meter.CostUsd(), 0.0);
}

TEST(ProfileTest, DecideIsPlatformStable)
{
  // Decide must be a pure function of (profile name, key, rate) with the
  // documented FNV-1a + hash-combine + 53-bit-mantissa formula — the
  // same handlers must fail on every machine, or recorded experiment
  // tables stop reproducing. Re-derive the expectation from first
  // principles so a drive-by change to StableHash/HashCombine/Decide
  // arithmetic fails here instead of silently reshuffling history.
  auto fnv1a = [](const std::string& s) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return h;
  };
  auto combine = [](uint64_t a, uint64_t b) {
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  };
  for (const char* name : {"gpt-4", "gpt-3.5", "gpt-4-mini"}) {
    ModelProfile p;
    p.name = name;
    for (const char* key : {"miss/v66:dm:DM_VERSION", "flaw:kvm:ioctl",
                            "repairable/v39|cec", "wrongtype:ubi:x:y"}) {
      uint64_t h = combine(fnv1a(name), fnv1a(key));
      double unit =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      for (double rate : {0.015, 0.25, 0.5, 0.86}) {
        EXPECT_EQ(p.Decide(key, rate), unit < rate)
            << name << " / " << key << " @ " << rate;
      }
    }
  }
}

TEST(TokenMeterTest, PresetCountsAreNotReestimated)
{
  TokenMeter meter;
  QueryRecord preset;
  preset.stage = "retry";
  preset.input_tokens = 1234;
  preset.output_tokens = 7;
  meter.Record(std::move(preset));
  EXPECT_EQ(meter.total_input_tokens(), 1234u);
  EXPECT_EQ(meter.total_output_tokens(), 7u);
}

TEST(TokenMeterTest, EmptyExchangeCountsZero)
{
  TokenMeter meter;
  meter.Record(QueryRecord{});
  EXPECT_EQ(meter.query_count(), 1u);
  EXPECT_EQ(meter.total_input_tokens(), 0u);
  EXPECT_EQ(meter.AvgInputTokens(), 0.0);
  EXPECT_EQ(meter.CostUsd(), 0.0);
}

TEST(TokenMeterTest, KeepTextFalseDropsTextKeepsCounts)
{
  TokenMeter meter;
  meter.SetKeepText(false);
  QueryRecord record;
  record.prompt = "some prompt text that is long enough to count";
  record.response = "short answer";
  meter.Record(std::move(record));
  EXPECT_TRUE(meter.records()[0].prompt.empty());
  EXPECT_TRUE(meter.records()[0].response.empty());
  EXPECT_GT(meter.total_input_tokens(), 0u);
  EXPECT_GT(meter.total_output_tokens(), 0u);
}

TEST_F(EngineTest, PromptTruncatedToContextWindow)
{
  // A backend with a tiny window never meters (or "sees") more prompt
  // than fits: the stored prompt is cut at context_tokens * 4 chars and
  // the metered input cost is bounded accordingly.
  TokenMeter full_meter;
  SimulatedBackend full(index_, Gpt4(), &full_meter);
  full.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  const size_t full_prompt = full_meter.records().back().prompt.size();

  ModelProfile tiny = Gpt4();
  tiny.context_tokens = 20;  // 80 chars.
  TokenMeter meter;
  SimulatedBackend backend(index_, tiny, &meter);
  backend.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  ASSERT_EQ(meter.query_count(), 1u);
  const QueryRecord& record = meter.records().back();
  ASSERT_GT(full_prompt, 80u);  // The untruncated prompt is bigger.
  EXPECT_EQ(record.prompt.size(), 80u);
  EXPECT_LE(record.input_tokens, 80u);

  // Exactly-fitting prompts are not cut: a window as large as the full
  // prompt keeps every byte.
  ModelProfile fitted = Gpt4();
  fitted.context_tokens = (full_prompt + 3) / 4;
  TokenMeter fit_meter;
  SimulatedBackend fit(index_, fitted, &fit_meter);
  fit.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  EXPECT_EQ(fit_meter.records().back().prompt.size(), full_prompt);
}

// ---------------------------------------------------------------------------
// Backend registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, BuiltInsExposeProfilesAsData)
{
  const BackendRegistry& registry = BackendRegistry::Default();
  std::vector<std::string> names = registry.Names();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names[0], "gpt-4");  // Report ordering is registration order.

  const BackendInfo* gpt4 = registry.Find("gpt-4");
  ASSERT_NE(gpt4, nullptr);
  ModelProfile legacy = Gpt4();
  EXPECT_EQ(gpt4->profile.name, legacy.name);
  EXPECT_EQ(gpt4->profile.miss_command_rate, legacy.miss_command_rate);
  EXPECT_EQ(gpt4->profile.repair_success_rate, legacy.repair_success_rate);
  EXPECT_EQ(gpt4->profile.context_tokens, legacy.context_tokens);

  EXPECT_NE(registry.Find("gpt-4-mini"), nullptr);
  EXPECT_GT(registry.Find("gpt-4-long")->profile.context_tokens,
            gpt4->profile.context_tokens);
  EXPECT_EQ(registry.Find("nonexistent"), nullptr);
}

TEST(RegistryTest, CreateUnknownReturnsNull)
{
  TokenMeter meter;
  EXPECT_EQ(BackendRegistry::Default().Create("no-such-model", nullptr,
                                              &meter),
            nullptr);
}

TEST(RegistryTest, RegisterReplacesInPlace)
{
  BackendRegistry registry = BackendRegistry::BuiltIns();
  size_t before = registry.Names().size();
  ModelProfile p = Gpt4();
  p.miss_command_rate = 0.99;
  registry.Register({"gpt-4", p, {1.0, 2.0}, "patched"});
  EXPECT_EQ(registry.Names().size(), before);
  EXPECT_EQ(registry.Names()[0], "gpt-4");  // Kept its position.
  EXPECT_EQ(registry.Find("gpt-4")->profile.miss_command_rate, 0.99);
}

TEST(RegistryTest, PricingDrivesCostEstimate)
{
  const BackendRegistry& registry = BackendRegistry::Default();
  TokenMeter meter;
  QueryRecord record;
  record.input_tokens = 1000000;  // $ == usd_per_m_input at 1M/1M tokens.
  record.output_tokens = 1000000;
  meter.Record(std::move(record));
  double gpt4 = registry.CostUsd("gpt-4", meter);
  double gpt35 = registry.CostUsd("gpt-3.5", meter);
  EXPECT_DOUBLE_EQ(gpt4, 40.0);  // $10/M in + $30/M out.
  EXPECT_LT(gpt35, gpt4);        // The weak tier is the cheap tier.
  // Unknown names fall back to default pricing instead of crashing.
  EXPECT_DOUBLE_EQ(registry.CostUsd("no-such-model", meter), 40.0);
}

TEST_F(EngineTest, RegistryBackendMatchesDirectConstruction)
{
  TokenMeter meter_a;
  std::unique_ptr<Backend> from_registry =
      BackendRegistry::Default().Create("gpt-4", index_, &meter_a);
  ASSERT_NE(from_registry, nullptr);
  TokenMeter meter_b;
  SimulatedBackend direct(index_, Gpt4(), &meter_b);

  IdentifierAnalysis a =
      from_registry->AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  IdentifierAnalysis b =
      direct.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  ASSERT_EQ(a.commands.size(), b.commands.size());
  for (size_t i = 0; i < a.commands.size(); ++i) {
    EXPECT_EQ(a.commands[i].macro, b.commands[i].macro);
    EXPECT_EQ(a.commands[i].sub_function, b.commands[i].sub_function);
  }
  EXPECT_EQ(meter_a.total_input_tokens(), meter_b.total_input_tokens());
  EXPECT_EQ(meter_a.total_output_tokens(), meter_b.total_output_tokens());
}

TEST_F(EngineTest, FlakyBackendSameAnswersHigherCost)
{
  TokenMeter flaky_meter;
  std::unique_ptr<Backend> flaky =
      BackendRegistry::Default().Create("gpt-4-flaky", index_, &flaky_meter);
  ASSERT_NE(flaky, nullptr);
  TokenMeter base_meter;
  std::unique_ptr<Backend> base =
      BackendRegistry::Default().Create("gpt-4", index_, &base_meter);

  // Run a handful of queries; answers must match gpt-4 exactly while the
  // metered cost picks up the injected retries.
  for (const char* fn : {"dm_ctl_ioctl", "dm_ctl_do_ioctl", "ubi_ctl_ioctl",
                         "kvm_dev_ioctl"}) {
    IdentifierAnalysis a = flaky->AnalyzeIdentifiers(fn, "usage", "dm", 2);
    IdentifierAnalysis b = base->AnalyzeIdentifiers(fn, "usage", "dm", 2);
    ASSERT_EQ(a.commands.size(), b.commands.size()) << fn;
    for (size_t i = 0; i < a.commands.size(); ++i) {
      EXPECT_EQ(a.commands[i].macro, b.commands[i].macro);
    }
  }
  EXPECT_GT(flaky_meter.query_count(), base_meter.query_count());
  EXPECT_GT(flaky_meter.total_input_tokens(),
            base_meter.total_input_tokens());

  // Retries are deterministic: a second flaky pass reproduces the totals.
  TokenMeter repeat_meter;
  std::unique_ptr<Backend> repeat =
      BackendRegistry::Default().Create("gpt-4-flaky", index_, &repeat_meter);
  for (const char* fn : {"dm_ctl_ioctl", "dm_ctl_do_ioctl", "ubi_ctl_ioctl",
                         "kvm_dev_ioctl"}) {
    repeat->AnalyzeIdentifiers(fn, "usage", "dm", 2);
  }
  EXPECT_EQ(repeat_meter.query_count(), flaky_meter.query_count());
  EXPECT_EQ(repeat_meter.total_input_tokens(),
            flaky_meter.total_input_tokens());
}

TEST(FlagGroupTest, ExcludesCommandMacros)
{
  ksrc::CFile file = ksrc::CParse(
      "#define X_MAGIC 0x40\n"
      "#define X_CMD1_NR 1\n"
      "#define X_CMD1 _IOWR(X_MAGIC, X_CMD1_NR, struct a)\n"
      "#define X_F_A 1\n"
      "#define X_F_B 2\n"
      "#define X_NAME_LEN 64\n",
      "x.c");
  auto groups = DiscoverFlagGroups(file);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].member_macros.size(), 2u);
  EXPECT_EQ(groups[0].member_macros[0], "X_F_A");
}

}  // namespace
}  // namespace kernelgpt::llm
