// Tests for the simulated analysis LLM: capability-profile behaviour,
// per-stage analyses, determinism, and token metering.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"
#include "ksrc/cparser.h"
#include "llm/engine.h"

namespace kernelgpt::llm {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ksrc::DefinitionIndex(
        drivers::Corpus::Instance().BuildIndex());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }
  static ksrc::DefinitionIndex* index_;
};

ksrc::DefinitionIndex* EngineTest::index_ = nullptr;

TEST(ProfileTest, DecideIsDeterministic)
{
  ModelProfile p = Gpt4();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.Decide("some-key", 0.5), p.Decide("some-key", 0.5));
  }
  EXPECT_FALSE(p.Decide("anything", 0.0));
  EXPECT_TRUE(p.Decide("anything", 1.0));
}

TEST(ProfileTest, DecideApproximatesRate)
{
  ModelProfile p = Gpt4();
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (p.Decide("key-" + std::to_string(i), 0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 500, 120);
}

TEST(ProfileTest, ProfilesDifferInDraws)
{
  ModelProfile a = Gpt4();
  ModelProfile b = Gpt35();
  int differ = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Decide("k" + std::to_string(i), 0.5) !=
        b.Decide("k" + std::to_string(i), 0.5)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 10);
}

TEST_F(EngineTest, DelegationReportedAsUnknown)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  IdentifierAnalysis step1 =
      engine.AnalyzeIdentifiers("dm_ctl_ioctl", "usage", "dm", 1);
  EXPECT_TRUE(step1.commands.empty());
  ASSERT_EQ(step1.unknowns.size(), 1u);
  EXPECT_EQ(step1.unknowns[0].identifier, "dm_ctl_do_ioctl");
}

TEST_F(EngineTest, ModifiedSwitchReverseMapped)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  ASSERT_FALSE(analysis.commands.empty());
  // Labels are *_NR macros but the model reports the full command macros.
  bool found_list = false;
  for (const auto& cmd : analysis.commands) {
    EXPECT_TRUE(cmd.from_modified_switch);
    if (cmd.macro == "DM_LIST_DEVICES") found_list = true;
  }
  EXPECT_TRUE(found_list);
}

TEST_F(EngineTest, Gpt35UsesRawNrLabels)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt35(), &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  for (const auto& cmd : analysis.commands) {
    EXPECT_TRUE(cmd.identifier_mangled) << cmd.macro;
  }
}

TEST_F(EngineTest, DepthLimitStopsAnalysis)
{
  TokenMeter meter;
  ModelProfile shallow = Gpt4();
  shallow.max_delegation_depth = 1;
  AnalysisEngine engine(index_, shallow, &meter);
  IdentifierAnalysis analysis =
      engine.AnalyzeIdentifiers("dm_ctl_do_ioctl", "usage", "dm", 2);
  EXPECT_TRUE(analysis.commands.empty());
  EXPECT_TRUE(analysis.unknowns.empty());
}

TEST_F(EngineTest, TableLookupComprehension)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  // ubi's dispatcher calls ubi_lookup_ioctl; the lookup function's table
  // yields the commands.
  IdentifierAnalysis top =
      engine.AnalyzeIdentifiers("ubi_ctl_ioctl", "usage", "ubi", 1);
  ASSERT_FALSE(top.unknowns.empty());
  IdentifierAnalysis table = engine.AnalyzeIdentifiers(
      top.unknowns[0].identifier, top.unknowns[0].usage, "ubi", 2);
  EXPECT_GE(table.commands.size(), 5u);

  // GPT-3.5 does not model dispatch tables.
  AnalysisEngine weak(index_, Gpt35(), &meter);
  IdentifierAnalysis none = weak.AnalyzeIdentifiers(
      top.unknowns[0].identifier, top.unknowns[0].usage, "ubi", 2);
  EXPECT_TRUE(none.commands.empty());
}

TEST_F(EngineTest, ArgTypeAnalysisRecoversStructAndConstraints)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  ArgTypeAnalysis analysis =
      engine.AnalyzeArgumentType("kvm_vm_kvm_set_user_memory_region", "kvm");
  EXPECT_EQ(analysis.arg_struct, "kvm_userspace_memory_region");
  EXPECT_EQ(analysis.dir, syzlang::Dir::kIn);
  bool slot_range = false;
  bool size_nonzero = false;
  for (const auto& c : analysis.constraints) {
    if (c.field == "slot" && c.kind == FieldConstraint::Kind::kRange &&
        c.a == 0 && c.b == 31) {
      slot_range = true;
    }
    if (c.field == "memory_size" &&
        c.kind == FieldConstraint::Kind::kNonZero) {
      size_nonzero = true;
    }
  }
  EXPECT_TRUE(slot_range);
  EXPECT_TRUE(size_nonzero);
}

TEST_F(EngineTest, OutDirectionFromCopyToUser)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  ArgTypeAnalysis analysis =
      engine.AnalyzeArgumentType("kvm_vcpu_kvm_get_regs", "kvm");
  EXPECT_EQ(analysis.dir, syzlang::Dir::kOut);
}

TEST_F(EngineTest, StructRecoveryLenSemantics)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  StructRecovery rec = engine.RecoverStruct("cec_msg", "cec", {}, {});
  const syzlang::Field* len = nullptr;
  for (const auto& f : rec.def.fields) {
    if (f.name == "len") len = &f;
  }
  ASSERT_NE(len, nullptr);
  EXPECT_EQ(len->type.kind, syzlang::TypeKind::kLen);
  EXPECT_EQ(len->type.len_target, "msg");
}

TEST_F(EngineTest, StructRecoveryNestedUnknown)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  // Craft a synthetic nested case via the corpus: any struct referencing
  // another struct by value reports a kType unknown. dm has none, so use
  // an inline source.
  ksrc::DefinitionIndex local;
  local.AddSource("struct inner { __u32 x; };\n"
                  "struct outer { struct inner i; __u64 y; };\n",
                  "t.c");
  local.ResolveMacros();
  AnalysisEngine nested(&local, Gpt4(), &meter);
  StructRecovery rec = nested.RecoverStruct("outer", "t", {}, {});
  ASSERT_EQ(rec.unknowns.size(), 1u);
  EXPECT_EQ(rec.unknowns[0].identifier, "inner");
  EXPECT_EQ(rec.unknowns[0].kind, Unknown::Kind::kType);
}

TEST_F(EngineTest, DependencyAnalysisFindsAnonInode)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  DependencyAnalysis dep =
      engine.AnalyzeDependencies("kvm_dev_kvm_create_vm", "kvm");
  ASSERT_EQ(dep.created.size(), 1u);
  EXPECT_EQ(dep.created[0].label, "kvm-vm");
  EXPECT_EQ(dep.created[0].fops_var, "_kvm_vm_fops");
}

TEST_F(EngineTest, DeviceNodeInferenceNodename)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  auto handlers = extractor::FindDriverHandlers(*index_);
  for (const auto& h : handlers) {
    if (h.file_path != "drivers/dm.c" ||
        h.reg == extractor::RegKind::kUnreferenced) {
      continue;
    }
    EXPECT_EQ(engine.InferDeviceNode(h, "dm"), "/dev/mapper/control");
    // A nodename-blind model falls back to .name (the SyzDescribe error).
    ModelProfile blind = Gpt4();
    blind.understands_nodename = false;
    AnalysisEngine weak(index_, blind, &meter);
    EXPECT_EQ(weak.InferDeviceNode(h, "dm"), "/dev/device-mapper");
  }
}

TEST_F(EngineTest, SocketCreateAnalysis)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  SocketCreateAnalysis create =
      engine.AnalyzeSocketCreate("rds_create", "rds");
  EXPECT_EQ(create.type_macro, "SOCK_SEQPACKET");
  EXPECT_FALSE(create.protocol_checked);  // rds accepts any protocol.

  SocketCreateAnalysis l2tp =
      engine.AnalyzeSocketCreate("l2tp_ip6_create", "l2tp_ip6");
  EXPECT_TRUE(l2tp.protocol_checked);
  EXPECT_EQ(l2tp.protocol, 115u);
}

TEST_F(EngineTest, MeterCountsTokens)
{
  TokenMeter meter;
  AnalysisEngine engine(index_, Gpt4(), &meter);
  engine.AnalyzeIdentifiers("dm_ctl_ioctl", "usage", "dm", 1);
  EXPECT_EQ(meter.query_count(), 1u);
  EXPECT_GT(meter.total_input_tokens(), 20u);
  EXPECT_GT(meter.total_output_tokens(), 0u);
  EXPECT_GT(meter.CostUsd(), 0.0);
}

TEST(FlagGroupTest, ExcludesCommandMacros)
{
  ksrc::CFile file = ksrc::CParse(
      "#define X_MAGIC 0x40\n"
      "#define X_CMD1_NR 1\n"
      "#define X_CMD1 _IOWR(X_MAGIC, X_CMD1_NR, struct a)\n"
      "#define X_F_A 1\n"
      "#define X_F_B 2\n"
      "#define X_NAME_LEN 64\n",
      "x.c");
  auto groups = DiscoverFlagGroups(file);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].member_macros.size(), 2u);
  EXPECT_EQ(groups[0].member_macros[0], "X_F_A");
}

}  // namespace
}  // namespace kernelgpt::llm
