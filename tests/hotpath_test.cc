// Tests for the hot-path execution engine (PR 2): opcode dispatch parity
// against the legacy string-comparison chain, dense-coverage equivalence
// with set semantics, zero-copy buffer behaviour, and batched-executor
// determinism (batch_size must never change results).

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "experiments/context.h"
#include "fuzzer/campaign.h"
#include "fuzzer/generator.h"
#include "fuzzer/orchestrator.h"
#include "util/rng.h"
#include "vkernel/coverage.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {
namespace {

using experiments::ExperimentContext;

class HotPathTest : public ::testing::Test {
 protected:
  static const ExperimentContext& Context() {
    return ExperimentContext::Default();
  }

  static SpecLibrary SuiteLibrary() {
    return Context().SyzkallerPlusKernelGptSuite();
  }

  static void Boot(vkernel::KernelModel* kernel) { Context().BootKernel(kernel); }
};

// ---------------------------------------------------------------------------
// Opcode dispatch
// ---------------------------------------------------------------------------

TEST_F(HotPathTest, EverySuiteSyscallResolvesToAnOpcode)
{
  SpecLibrary lib = SuiteLibrary();
  ASSERT_FALSE(lib.syscalls().empty());
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    EXPECT_NE(lib.OpcodeOf(i), SyscallOp::kUnknown)
        << "unhandled syscall name: " << lib.syscalls()[i].name;
  }
}

// The opcode switch and the legacy name chain must agree on every call:
// same return codes, same coverage, same crashes — across every syscall
// variant the corpus specs declare (generation visits them all).
TEST_F(HotPathTest, OpcodeDispatchMatchesLegacyNameDispatch)
{
  SpecLibrary lib = SuiteLibrary();

  vkernel::Kernel kernel_new;
  vkernel::Kernel kernel_old;
  Boot(&kernel_new);
  Boot(&kernel_old);
  Executor opcode_exec(&kernel_new, &lib, Executor::DispatchMode::kOpcode);
  Executor legacy_exec(&kernel_old, &lib,
                       Executor::DispatchMode::kLegacyNames);

  vkernel::Coverage cov_new;
  vkernel::Coverage cov_old;

  // Deterministic program stream covering every syscall: first one
  // program per syscall index, then a generated mix.
  util::Rng rng(2024);
  Generator generator(&lib, &rng);
  std::vector<Prog> progs;
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    Prog prog;
    generator.AppendCall(&prog, i);
    if (!prog.empty()) progs.push_back(std::move(prog));
  }
  for (int i = 0; i < 200; ++i) {
    Prog prog = generator.Generate(6);
    if (!prog.empty()) progs.push_back(std::move(prog));
  }

  for (const Prog& prog : progs) {
    ExecResult a = opcode_exec.Run(prog, &cov_new);
    ExecResult b = legacy_exec.Run(prog, &cov_old);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.crash_title, b.crash_title);
    EXPECT_EQ(a.calls_executed, b.calls_executed);
    EXPECT_EQ(a.new_blocks, b.new_blocks);
  }
  EXPECT_EQ(cov_new.blocks(), cov_old.blocks());
}

// ---------------------------------------------------------------------------
// Dense coverage
// ---------------------------------------------------------------------------

TEST_F(HotPathTest, CoverageMatchesSetSemantics)
{
  vkernel::Coverage cov;
  std::unordered_set<uint64_t> model;

  // A mix of MakeBlockId-shaped ids (dense pages), raw hashes, duplicate
  // hits, and page-edge values.
  std::vector<uint64_t> ids;
  for (uint32_t i = 0; i < 300; ++i) {
    ids.push_back(vkernel::MakeBlockId(0xdeadbeefcafeULL, i));
  }
  util::Rng rng(99);
  for (int i = 0; i < 300; ++i) ids.push_back(rng.Next());
  ids.insert(ids.end(), {0ULL, 1ULL, 63ULL, 64ULL, 255ULL, 256ULL, ~0ULL});
  ids.insert(ids.end(), ids.begin(), ids.begin() + 100);  // Duplicates.

  for (uint64_t id : ids) {
    EXPECT_EQ(cov.Hit(id), model.insert(id).second) << id;
  }
  EXPECT_EQ(cov.Count(), model.size());
  for (uint64_t id : ids) EXPECT_TRUE(cov.Contains(id));
  EXPECT_FALSE(cov.Contains(0x1234567890ULL));
  EXPECT_EQ(cov.blocks(), model);

  std::vector<uint64_t> sorted = cov.SortedBlocks();
  EXPECT_EQ(sorted.size(), model.size());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST_F(HotPathTest, CoverageMergeAndCountNotInMatchSetSemantics)
{
  util::Rng rng(7);
  vkernel::Coverage a;
  vkernel::Coverage b;
  std::unordered_set<uint64_t> set_a;
  std::unordered_set<uint64_t> set_b;
  for (int i = 0; i < 500; ++i) {
    // Overlapping ranges: ~half the ids land in both sets.
    uint64_t ida = vkernel::MakeBlockId(42, static_cast<uint32_t>(i));
    uint64_t idb = vkernel::MakeBlockId(42, static_cast<uint32_t>(i + 250));
    a.Hit(ida);
    set_a.insert(ida);
    b.Hit(idb);
    set_b.insert(idb);
    uint64_t h = rng.Next();
    if (i % 2) {
      a.Hit(h);
      set_a.insert(h);
    } else {
      b.Hit(h);
      set_b.insert(h);
    }
  }

  // CountNotIn == |a \ b| and |b \ a|.
  size_t a_not_b = 0;
  for (uint64_t id : set_a) a_not_b += set_b.count(id) ? 0 : 1;
  size_t b_not_a = 0;
  for (uint64_t id : set_b) b_not_a += set_a.count(id) ? 0 : 1;
  EXPECT_EQ(a.CountNotIn(b), a_not_b);
  EXPECT_EQ(b.CountNotIn(a), b_not_a);

  // Merge returns the number of genuinely new blocks; repeat merges and
  // empty merges add nothing.
  vkernel::Coverage merged;
  EXPECT_EQ(merged.Merge(a), set_a.size());
  EXPECT_EQ(merged.Merge(a), 0u);
  EXPECT_EQ(merged.Merge(b), b_not_a);
  EXPECT_EQ(merged.Count(), set_a.size() + b_not_a);
  vkernel::Coverage empty;
  EXPECT_EQ(merged.Merge(empty), 0u);
  EXPECT_EQ(empty.Merge(empty), 0u);
  EXPECT_EQ(empty.Count(), 0u);

  std::unordered_set<uint64_t> set_union = set_a;
  set_union.insert(set_b.begin(), set_b.end());
  EXPECT_EQ(merged.blocks(), set_union);

  merged.Clear();
  EXPECT_EQ(merged.Count(), 0u);
  EXPECT_EQ(merged.Merge(a), set_a.size());
}

// The AVX2 merge-join arms must be bit-identical to the scalar
// reference over adversarial id layouts: dense per-module runs (the
// MakeBlockId shape), hash-scattered ids (one page per id), ids
// straddling page and word boundaries, and the empty/self/identical-key
// edge cases that trigger the paired fast path.
TEST_F(HotPathTest, SimdCoverageArmMatchesScalarReferenceBitForBit)
{
  if (!vkernel::CoverageSimdAvailable()) {
    GTEST_SKIP() << "no AVX2 on this host; only the scalar arm exists";
  }

  // Adversarial id pattern families, each a vector of ids to Hit.
  std::vector<std::vector<uint64_t>> patterns;
  // Dense module runs: contiguous local indices under a few module
  // hashes — full and partially-full pages.
  for (uint64_t h : {0x1ULL, 0xdeadbeefcafeULL, ~0ULL}) {
    std::vector<uint64_t> dense;
    for (uint32_t i = 0; i < 700; ++i) dense.push_back(vkernel::MakeBlockId(h, i));
    patterns.push_back(std::move(dense));
  }
  // Hash-scattered: every id lands on its own page.
  {
    util::Rng rng(31337);
    std::vector<uint64_t> scattered;
    for (int i = 0; i < 600; ++i) scattered.push_back(rng.Next());
    patterns.push_back(std::move(scattered));
  }
  // Page- and word-boundary straddles around every multiple of 64 and
  // 256 in a window, plus the extremes.
  {
    std::vector<uint64_t> straddle;
    for (uint64_t base = 64; base <= 1024; base += 64) {
      straddle.insert(straddle.end(), {base - 1, base, base + 1});
    }
    straddle.insert(straddle.end(),
                    {0ULL, 63ULL, 255ULL, 256ULL, 257ULL, ~0ULL, ~0ULL - 1,
                     (~0ULL >> 8) << 8});
    patterns.push_back(std::move(straddle));
  }
  // Empty set.
  patterns.push_back({});

  // Every ordered pair of patterns (including a pattern against itself
  // — identical key arrays, the paired fast path) is exercised under
  // both arms; counts AND resulting sorted block lists must agree.
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (size_t pj = 0; pj < patterns.size(); ++pj) {
      struct Result {
        size_t merged, back, not_in, not_in_rev;
        bool covers;
        std::vector<uint64_t> blocks;
      };
      auto run = [&](vkernel::CoverageArm arm) {
        vkernel::SetCoverageArm(arm);
        EXPECT_EQ(vkernel::ActiveCoverageArm(), arm);
        vkernel::Coverage a, b;
        for (uint64_t id : patterns[pi]) a.Hit(id);
        for (uint64_t id : patterns[pj]) b.Hit(id);
        Result r;
        r.not_in = a.CountNotIn(b);
        r.not_in_rev = b.CountNotIn(a);
        r.covers = a.CoversAll(b);
        r.merged = a.Merge(b);
        r.back = b.Merge(a);  // Now equal sets: paired path again.
        EXPECT_EQ(a.Merge(a), 0u);  // Self-merge is a no-op.
        r.blocks = a.SortedBlocks();
        return r;
      };
      const Result scalar = run(vkernel::CoverageArm::kScalar);
      const Result simd = run(vkernel::CoverageArm::kSimd);
      vkernel::ResetCoverageArm();

      const std::string label =
          "patterns " + std::to_string(pi) + " x " + std::to_string(pj);
      EXPECT_EQ(scalar.merged, simd.merged) << label;
      EXPECT_EQ(scalar.back, simd.back) << label;
      EXPECT_EQ(scalar.not_in, simd.not_in) << label;
      EXPECT_EQ(scalar.not_in_rev, simd.not_in_rev) << label;
      EXPECT_EQ(scalar.covers, simd.covers) << label;
      EXPECT_EQ(scalar.blocks, simd.blocks) << label;

      // And both arms match naive set algebra.
      std::unordered_set<uint64_t> u(patterns[pi].begin(), patterns[pi].end());
      size_t before = u.size();
      u.insert(patterns[pj].begin(), patterns[pj].end());
      EXPECT_EQ(scalar.merged, u.size() - before) << label;
      EXPECT_EQ(scalar.blocks.size(), u.size()) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-copy buffers
// ---------------------------------------------------------------------------

TEST_F(HotPathTest, BufferViewReadsWithoutCopyAndMaterializesOnWrite)
{
  std::vector<uint8_t> backing = {1, 2, 3, 4, 5, 6, 7, 8};
  vkernel::Buffer view = vkernel::Buffer::View(backing);
  EXPECT_TRUE(view.viewing());
  EXPECT_EQ(view.size(), backing.size());
  EXPECT_EQ(view.data(), backing.data());  // No copy happened.
  EXPECT_EQ(view.ReadScalar(0, 4), 0x04030201u);
  EXPECT_TRUE(view.bytes.empty());  // Still not materialized.

  // First write detaches from the backing storage.
  view.WriteScalar(0, 2, 0xbeef);
  EXPECT_FALSE(view.viewing());
  EXPECT_NE(view.data(), backing.data());
  EXPECT_EQ(view.ReadScalar(0, 2), 0xbeefu);
  EXPECT_EQ(view.ReadScalar(2, 2), 0x0403u);  // Old contents preserved.
  EXPECT_EQ(backing[0], 1u);                  // Backing untouched.

  vkernel::Buffer grown = vkernel::Buffer::View(backing);
  grown.Resize(16);
  EXPECT_EQ(grown.size(), 16u);
  EXPECT_EQ(grown.ReadScalar(0, 4), 0x04030201u);  // Copied then grown.
  EXPECT_EQ(grown.ReadScalar(8, 4), 0u);           // Zero-filled tail.
}

// ---------------------------------------------------------------------------
// Batched execution
// ---------------------------------------------------------------------------

TEST_F(HotPathTest, BatchSizeDoesNotChangeCampaignResults)
{
  SpecLibrary lib = SuiteLibrary();
  CampaignOptions base;
  base.seed = 4242;
  base.program_budget = 6000;

  auto run_with_batch = [&](int batch_size) {
    vkernel::Kernel kernel;
    Boot(&kernel);
    CampaignOptions options = base;
    options.batch_size = batch_size;
    return RunCampaign(&kernel, lib, options);
  };

  CampaignResult unbatched = run_with_batch(1);
  EXPECT_GT(unbatched.coverage.Count(), 0u);
  for (int batch_size : {2, 32, 7919}) {
    CampaignResult batched = run_with_batch(batch_size);
    EXPECT_EQ(unbatched.coverage.blocks(), batched.coverage.blocks())
        << "batch_size " << batch_size;
    EXPECT_EQ(unbatched.crashes, batched.crashes);
    EXPECT_EQ(unbatched.programs_executed, batched.programs_executed);
    EXPECT_EQ(unbatched.corpus_size, batched.corpus_size);
  }
}

TEST_F(HotPathTest, RunBatchMatchesIndividualRuns)
{
  SpecLibrary lib = SuiteLibrary();
  util::Rng rng(11);
  Generator generator(&lib, &rng);
  std::vector<Prog> progs;
  for (int i = 0; i < 50; ++i) {
    Prog prog = generator.Generate(5);
    if (!prog.empty()) progs.push_back(std::move(prog));
  }

  vkernel::Kernel kernel_batch;
  vkernel::Kernel kernel_single;
  Boot(&kernel_batch);
  Boot(&kernel_single);
  Executor batch_exec(&kernel_batch, &lib);
  Executor single_exec(&kernel_single, &lib);

  vkernel::Coverage cov_batch;
  vkernel::Coverage cov_single;
  std::vector<ExecResult> batched = batch_exec.RunBatch(progs, &cov_batch);
  ASSERT_EQ(batched.size(), progs.size());
  for (size_t i = 0; i < progs.size(); ++i) {
    ExecResult single = single_exec.Run(progs[i], &cov_single);
    EXPECT_EQ(batched[i].crashed, single.crashed) << i;
    EXPECT_EQ(batched[i].crash_title, single.crash_title) << i;
    EXPECT_EQ(batched[i].calls_executed, single.calls_executed) << i;
    EXPECT_EQ(batched[i].new_blocks, single.new_blocks) << i;
  }
  EXPECT_EQ(cov_batch.blocks(), cov_single.blocks());
}

TEST_F(HotPathTest, BatchedOneWorkerOrchestratorStillBitIdenticalToSerial)
{
  SpecLibrary lib = SuiteLibrary();
  CampaignOptions campaign;
  campaign.seed = 314;
  campaign.program_budget = 4000;
  campaign.batch_size = 16;

  vkernel::Kernel kernel;
  Boot(&kernel);
  CampaignResult serial = RunCampaign(&kernel, lib, campaign);

  OrchestratorOptions options;
  options.campaign = campaign;
  options.num_workers = 1;
  OrchestratorResult sharded = RunShardedCampaign(
      lib, [](vkernel::KernelModel* k) { Boot(k); }, options);

  EXPECT_EQ(serial.programs_executed, sharded.programs_executed);
  EXPECT_EQ(serial.crashes, sharded.crashes);
  EXPECT_EQ(serial.coverage.blocks(), sharded.coverage.blocks());
}

}  // namespace
}  // namespace kernelgpt::fuzzer
