// Integration tests over the shared experiment harness: end-to-end
// generation across the corpus, suite construction, audit, bug inventory,
// and the causal chain the paper measures (correct spec -> deep coverage
// -> new bugs).

#include <gtest/gtest.h>

#include "experiments/audit.h"
#include "experiments/bugs.h"
#include "experiments/context.h"

namespace kernelgpt::experiments {
namespace {

const ExperimentContext&
Ctx()
{
  return ExperimentContext::Default();
}

TEST(ContextTest, AllModulesPresent)
{
  const auto& corpus = drivers::Corpus::Instance();
  EXPECT_EQ(Ctx().modules().size(),
            corpus.LoadedDevices().size() + corpus.LoadedSockets().size());
}

TEST(ContextTest, GroundTruthCountsPositive)
{
  for (const auto& module : Ctx().modules()) {
    EXPECT_GT(module.ground_truth_syscalls, 0u) << module.id;
    EXPECT_LE(module.existing_syscalls, module.ground_truth_syscalls)
        << module.id;
  }
}

TEST(ContextTest, KernelGptUsableForPaperCriticalModules)
{
  // Every module carrying a Table 4 bug must have a usable spec.
  for (const PlantedBug& bug : AllPlantedBugs(false)) {
    const ModuleResult* module = Ctx().Find(bug.module);
    ASSERT_NE(module, nullptr) << bug.module;
    EXPECT_TRUE(module->KernelGptUsable()) << bug.module;
  }
}

TEST(ContextTest, Table5RowsAllUsable)
{
  for (const char* id :
       {"btrfs_control", "capi20", "controlc0", "fuse", "hpet", "i2c0",
        "kvm", "loop_control", "loop0", "misdntimer", "nbd0", "nvram", "ppp",
        "ptmx", "qat_adf_ctl", "rfkill", "rtc0", "sg0", "snapshot", "sr0",
        "timer", "udmabuf", "uinput", "usbmon0", "vhost_net", "vhost_vsock",
        "vmci", "vsock"}) {
    const ModuleResult* module = Ctx().Find(id);
    ASSERT_NE(module, nullptr) << id;
    EXPECT_TRUE(module->KernelGptUsable()) << id;
  }
}

TEST(ContextTest, SocketsAllUsable)
{
  for (const ModuleResult* module : Ctx().Sockets()) {
    EXPECT_TRUE(module->KernelGptUsable()) << module->id;
  }
}

TEST(ContextTest, SuitesGrowMonotonically)
{
  fuzzer::SpecLibrary base = Ctx().SyzkallerSuite();
  fuzzer::SpecLibrary with_kg = Ctx().SyzkallerPlusKernelGptSuite();
  EXPECT_GT(base.syscalls().size(), 100u);
  EXPECT_GT(with_kg.syscalls().size(), base.syscalls().size());
}

TEST(ContextTest, KernelGptSuiteCoversMore)
{
  fuzzer::SpecLibrary base = Ctx().SyzkallerSuite();
  fuzzer::SpecLibrary with_kg = Ctx().SyzkallerPlusKernelGptSuite();
  auto base_run = Ctx().Fuzz(base, 15000, 1, 7);
  auto kg_run = Ctx().Fuzz(with_kg, 15000, 1, 7);
  EXPECT_GT(kg_run.avg_coverage, base_run.avg_coverage);
}

TEST(ContextTest, TokenMeterPopulated)
{
  EXPECT_GT(Ctx().meter().query_count(), 500u);
  EXPECT_GT(Ctx().meter().total_input_tokens(),
            Ctx().meter().total_output_tokens());
}

TEST(BugInventoryTest, ExactPaperTotals)
{
  auto bugs = AllPlantedBugs(/*include_legacy=*/false);
  EXPECT_EQ(bugs.size(), 24u);
  int cves = 0;
  int fixed = 0;
  int confirmed = 0;
  for (const auto& bug : bugs) {
    if (!bug.cve.empty()) ++cves;
    if (bug.fixed) ++fixed;
    if (bug.confirmed) ++confirmed;
  }
  EXPECT_EQ(cves, 11);
  EXPECT_EQ(fixed, 12);
  EXPECT_EQ(confirmed, 21);
}

TEST(BugInventoryTest, LegacyBugsExtendTheList)
{
  auto with_legacy = AllPlantedBugs(true);
  auto without = AllPlantedBugs(false);
  EXPECT_GT(with_legacy.size(), without.size() + 10);
}

TEST(SyzDescribeEffectiveTest, MatchesDocumentedFailures)
{
  // dm: wrong node name -> ineffective. capi20: conventional -> effective.
  const ModuleResult* dm = Ctx().Find("dm");
  ASSERT_NE(dm, nullptr);
  EXPECT_FALSE(SyzDescribeEffective(Ctx(), *dm));
  const ModuleResult* capi = Ctx().Find("capi20");
  ASSERT_NE(capi, nullptr);
  EXPECT_TRUE(SyzDescribeEffective(Ctx(), *capi));
  // controlC# and timer are the paper's "Err" rows.
  EXPECT_FALSE(SyzDescribeEffective(Ctx(), *Ctx().Find("controlc0")));
  EXPECT_FALSE(SyzDescribeEffective(Ctx(), *Ctx().Find("timer")));
}

TEST(AuditTest, MatchesPaperShape)
{
  AuditResult audit = AuditKernelGpt(Ctx(), /*undescribed_only=*/true);
  ASSERT_GT(audit.total_drivers, 10u);
  // >= 85% of undescribed drivers have no missing syscalls (paper 93.3%).
  EXPECT_GE(10 * audit.drivers_without_missing, 8 * audit.total_drivers);
  // Wrong identifiers are rare (paper 0.9%; allow a few percent).
  EXPECT_LE(20 * audit.wrong_identifier_syscalls, audit.total_syscalls);
  // Wrong types stay a small tail.
  EXPECT_LE(10 * audit.wrong_type_syscalls, audit.total_syscalls);
}

TEST(CausalChainTest, WrongSpecsCannotReachBugs)
{
  // The three dm bugs are reachable with KernelGPT's spec but not with
  // SyzDescribe's (wrong name + wrong cmd values) — Fig. 2's punchline.
  const ModuleResult* dm = Ctx().Find("dm");
  ASSERT_NE(dm, nullptr);
  ASSERT_TRUE(dm->KernelGptUsable());
  ASSERT_TRUE(dm->syzdescribe.generated);

  fuzzer::SpecLibrary kg = Ctx().MakeLibrary({&dm->kernelgpt.spec});
  fuzzer::SpecLibrary sd = Ctx().MakeLibrary({&dm->syzdescribe.spec});
  auto kg_run = Ctx().Fuzz(kg, 20000, 1, 3);
  auto sd_run = Ctx().Fuzz(sd, 20000, 1, 3);
  EXPECT_GE(kg_run.crash_titles.size(), 3u);
  EXPECT_EQ(sd_run.crash_titles.size(), 0u);
  EXPECT_GT(kg_run.avg_coverage, sd_run.avg_coverage);
}

TEST(AblationContextTest, AllInOneProducesFewerSyscalls)
{
  ContextOptions all_in_one;
  all_in_one.gen.iterative = false;
  all_in_one.gen.profile.context_tokens = 1200;
  all_in_one.backend.clear();  // Hand-tuned profile needs the legacy path.
  ExperimentContext single(all_in_one);
  size_t iter_total = 0;
  size_t single_total = 0;
  for (const auto& module : Ctx().modules()) {
    if (module.is_socket) continue;
    iter_total += module.kernelgpt.SyscallCount();
  }
  for (const auto& module : single.modules()) {
    if (module.is_socket) continue;
    single_total += module.kernelgpt.SyscallCount();
  }
  EXPECT_LT(single_total, iter_total);
}

}  // namespace
}  // namespace kernelgpt::experiments

// ---------------------------------------------------------------------------
// Corpus-wide property sweep (parameterized over every loaded module)
// ---------------------------------------------------------------------------

namespace kernelgpt::experiments {
namespace {

class AllModulesProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModulesProperty, UsableSpecsValidateAgainstCorpusConsts)
{
  const ModuleResult* module = Ctx().Find(GetParam());
  ASSERT_NE(module, nullptr);
  if (!module->KernelGptUsable()) GTEST_SKIP() << "unrepairable tail";
  syzlang::ValidationResult v =
      syzlang::Validate(module->kernelgpt.spec, Ctx().consts());
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0].message);
}

TEST_P(AllModulesProperty, UsableSpecsAreExecutable)
{
  // Every generated spec must produce programs whose calls actually
  // execute (no unresolvable resources, no zero-size libraries).
  const ModuleResult* module = Ctx().Find(GetParam());
  ASSERT_NE(module, nullptr);
  if (!module->KernelGptUsable()) GTEST_SKIP();
  fuzzer::SpecLibrary lib = Ctx().MakeLibrary({&module->kernelgpt.spec});
  ASSERT_FALSE(lib.syscalls().empty());
  auto summary = Ctx().Fuzz(lib, 600, 1, 11);
  EXPECT_GT(summary.avg_coverage, 0.0) << module->id;
}

TEST_P(AllModulesProperty, KernelGptCoverageAtLeastExisting)
{
  // With equal budgets the generated spec never does meaningfully worse
  // than the partial existing spec (it is a superset up to rare misses).
  const ModuleResult* module = Ctx().Find(GetParam());
  ASSERT_NE(module, nullptr);
  if (!module->KernelGptUsable()) GTEST_SKIP();
  if (module->existing_syscalls == 0) GTEST_SKIP() << "no existing spec";
  fuzzer::SpecLibrary existing = Ctx().MakeLibrary({&module->existing});
  fuzzer::SpecLibrary generated =
      Ctx().MakeLibrary({&module->kernelgpt.spec});
  auto existing_run = Ctx().Fuzz(existing, 6000, 1, 21);
  auto generated_run = Ctx().Fuzz(generated, 6000, 1, 21);
  EXPECT_GE(generated_run.avg_coverage, existing_run.avg_coverage * 0.85)
      << module->id;
}

std::vector<std::string>
LoadedModuleIds()
{
  std::vector<std::string> ids;
  for (const auto& m : ExperimentContext::Default().modules()) {
    ids.push_back(m.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(Corpus, AllModulesProperty,
                         ::testing::ValuesIn(LoadedModuleIds()));

}  // namespace
}  // namespace kernelgpt::experiments
