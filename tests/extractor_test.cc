// Tests for the operation-handler extractor over the full corpus:
// registration-pattern matching and node-path resolution.

#include <gtest/gtest.h>

#include "drivers/corpus.h"
#include "extractor/handler_finder.h"

namespace kernelgpt::extractor {
namespace {

using drivers::Corpus;

class ExtractorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ksrc::DefinitionIndex(Corpus::Instance().BuildIndex());
    handlers_ = new std::vector<DriverHandler>(FindDriverHandlers(*index_));
    sockets_ = new std::vector<SocketHandler>(FindSocketHandlers(*index_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete handlers_;
    delete sockets_;
    index_ = nullptr;
    handlers_ = nullptr;
    sockets_ = nullptr;
  }

  static const DriverHandler* FindByFile(const std::string& path) {
    for (const auto& h : *handlers_) {
      if (h.file_path == path &&
          h.reg != RegKind::kUnreferenced) {
        return &h;
      }
    }
    return nullptr;
  }

  static ksrc::DefinitionIndex* index_;
  static std::vector<DriverHandler>* handlers_;
  static std::vector<SocketHandler>* sockets_;
};

ksrc::DefinitionIndex* ExtractorTest::index_ = nullptr;
std::vector<DriverHandler>* ExtractorTest::handlers_ = nullptr;
std::vector<SocketHandler>* ExtractorTest::sockets_ = nullptr;

TEST_F(ExtractorTest, FindsOneRegisteredHandlerPerDevice)
{
  // Every corpus device contributes exactly one registered primary
  // handler under its source file.
  for (const auto& dev : Corpus::Instance().devices()) {
    int registered = 0;
    for (const auto& h : *handlers_) {
      if (h.file_path == "drivers/" + dev.id + ".c" &&
          h.reg != RegKind::kUnreferenced) {
        ++registered;
      }
    }
    EXPECT_EQ(registered, 1) << dev.id;
  }
}

TEST_F(ExtractorTest, SecondaryHandlersAreUnreferenced)
{
  // kvm's vm/vcpu fops exist but have no registration usage.
  int unreferenced = 0;
  for (const auto& h : *handlers_) {
    if (h.file_path == "drivers/kvm.c" && h.reg == RegKind::kUnreferenced) {
      ++unreferenced;
    }
  }
  EXPECT_EQ(unreferenced, 2);
}

TEST_F(ExtractorTest, MiscNodenameCaptured)
{
  const DriverHandler* dm = FindByFile("drivers/dm.c");
  ASSERT_NE(dm, nullptr);
  EXPECT_EQ(dm->reg, RegKind::kMiscDevice);
  EXPECT_FALSE(dm->nodename_expr.empty());
  EXPECT_NE(dm->name_expr, dm->nodename_expr);
}

TEST_F(ExtractorTest, DeviceCreateFormatCaptured)
{
  const DriverHandler* cec = FindByFile("drivers/cec.c");
  ASSERT_NE(cec, nullptr);
  EXPECT_EQ(cec->reg, RegKind::kDeviceCreate);
  EXPECT_EQ(cec->create_fmt, "cec%d");
  EXPECT_EQ(cec->create_arg, "0");
}

TEST_F(ExtractorTest, ResolveNodePathOracle)
{
  // The full-semantics resolver matches every device's true node.
  for (const auto& dev : Corpus::Instance().devices()) {
    const DriverHandler* h = FindByFile("drivers/" + dev.id + ".c");
    ASSERT_NE(h, nullptr) << dev.id;
    EXPECT_EQ(ResolveNodePath(*index_, *h), dev.dev_node) << dev.id;
  }
}

TEST_F(ExtractorTest, SocketHandlersComplete)
{
  EXPECT_EQ(sockets_->size(), Corpus::Instance().sockets().size());
  for (const auto& sock : Corpus::Instance().sockets()) {
    bool found = false;
    for (const auto& h : *sockets_) {
      if (h.file_path != "net/" + sock.id + ".c") continue;
      found = true;
      EXPECT_EQ(h.family_expr, sock.family_macro) << sock.id;
      EXPECT_FALSE(h.create_fn.empty()) << sock.id;
      EXPECT_FALSE(h.setsockopt_fn.empty()) << sock.id;
      if (sock.bind.supported) EXPECT_FALSE(h.bind_fn.empty()) << sock.id;
      if (sock.sendto.supported) {
        EXPECT_FALSE(h.sendmsg_fn.empty()) << sock.id;
      }
    }
    EXPECT_TRUE(found) << sock.id;
  }
}

TEST_F(ExtractorTest, IoctlFunctionsExistInIndex)
{
  for (const auto& h : *handlers_) {
    EXPECT_NE(index_->FindFunction(h.ioctl_fn), nullptr)
        << h.fops_var << " -> " << h.ioctl_fn;
  }
}

}  // namespace
}  // namespace kernelgpt::extractor
