#include "experiments/context.h"

#include <cstdio>
#include <cstdlib>

#include "drivers/model_runtime.h"
#include "extractor/handler_finder.h"
#include "llm/registry.h"

namespace kernelgpt::experiments {

ExperimentContext::ExperimentContext(const ContextOptions& options)
    : index_(drivers::Corpus::Instance().BuildIndex())
{
  consts_ = index_.BuildConstTable();
  meter_.SetKeepText(false);  // Counters only; full-corpus runs are large.

  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  // Resolve the analysis backend through the registry; an empty name
  // falls back to gen.profile (a bench wiring a hand-built profile). A
  // non-empty unknown name aborts: silently running a different model
  // under the requested label would mislabel every downstream table.
  std::unique_ptr<llm::Backend> backend;
  if (!options.backend.empty()) {
    backend = llm::BackendRegistry::Default().Create(options.backend,
                                                     &index_, &meter_);
    if (!backend) {
      std::fprintf(stderr,
                   "ExperimentContext: unknown backend '%s' (registered: ",
                   options.backend.c_str());
      for (const std::string& name : llm::BackendRegistry::Default().Names()) {
        std::fprintf(stderr, "%s ", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      std::abort();
    }
  }
  spec_gen::KernelGpt kernelgpt =
      backend ? spec_gen::KernelGpt(&index_, options.gen, backend.get())
              : spec_gen::KernelGpt(&index_, options.gen, &meter_);
  baseline::SyzDescribe syzdescribe(&index_);

  auto driver_handlers = extractor::FindDriverHandlers(index_);
  auto socket_handlers = extractor::FindSocketHandlers(index_);

  for (const drivers::DeviceSpec* dev : corpus.LoadedDevices()) {
    ModuleResult module;
    module.id = dev->id;
    module.dev = dev;
    module.existing = drivers::ExistingDeviceSpec(*dev);
    module.existing_syscalls = module.existing.Syscalls().size();
    module.ground_truth_syscalls = drivers::GroundTruthSyscallCount(*dev);

    const std::string path = "drivers/" + dev->id + ".c";
    for (const auto& handler : driver_handlers) {
      if (handler.file_path != path) continue;
      if (handler.reg == extractor::RegKind::kUnreferenced) continue;
      module.kernelgpt = kernelgpt.GenerateForDriver(handler);
      module.syzdescribe = syzdescribe.GenerateForDriver(handler);
      break;
    }
    modules_.push_back(std::move(module));
  }

  for (const drivers::SocketSpec* sock : corpus.LoadedSockets()) {
    ModuleResult module;
    module.id = sock->id;
    module.is_socket = true;
    module.sock = sock;
    module.existing = drivers::ExistingSocketSpec(*sock);
    module.existing_syscalls = module.existing.Syscalls().size();
    module.ground_truth_syscalls = drivers::GroundTruthSyscallCount(*sock);

    const std::string path = "net/" + sock->id + ".c";
    for (const auto& handler : socket_handlers) {
      if (handler.file_path != path) continue;
      module.kernelgpt = kernelgpt.GenerateForSocket(handler);
      break;
    }
    modules_.push_back(std::move(module));
  }
}

const ExperimentContext&
ExperimentContext::Default()
{
  static const ExperimentContext context{ContextOptions{}};
  return context;
}

const ModuleResult*
ExperimentContext::Find(const std::string& id) const
{
  for (const auto& m : modules_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

std::vector<const ModuleResult*>
ExperimentContext::Devices() const
{
  std::vector<const ModuleResult*> out;
  for (const auto& m : modules_) {
    if (!m.is_socket) out.push_back(&m);
  }
  return out;
}

std::vector<const ModuleResult*>
ExperimentContext::Sockets() const
{
  std::vector<const ModuleResult*> out;
  for (const auto& m : modules_) {
    if (m.is_socket) out.push_back(&m);
  }
  return out;
}

fuzzer::SpecLibrary
ExperimentContext::MakeLibrary(
    const std::vector<const syzlang::SpecFile*>& specs) const
{
  fuzzer::SpecLibrary lib;
  lib.SetConsts(consts_);
  for (const syzlang::SpecFile* spec : specs) {
    if (spec) lib.Add(*spec);
  }
  lib.Finalize();
  return lib;
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) specs.push_back(&m.existing);
  return MakeLibrary(specs);
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerPlusSyzDescribeSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) {
    specs.push_back(&m.existing);
    if (m.syzdescribe.generated) specs.push_back(&m.syzdescribe.spec);
  }
  return MakeLibrary(specs);
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerPlusKernelGptSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) {
    specs.push_back(&m.existing);
    if (m.KernelGptUsable()) specs.push_back(&m.kernelgpt.spec);
  }
  return MakeLibrary(specs);
}

void
ExperimentContext::BootKernel(vkernel::Kernel* kernel) const
{
  drivers::Corpus::Instance().RegisterAll(kernel);
}

ExperimentContext::FuzzSummary
ExperimentContext::Fuzz(const fuzzer::SpecLibrary& lib, int program_budget,
                        int reps, uint64_t seed_base, int num_workers) const
{
  FuzzSummary summary;
  for (int rep = 0; rep < reps; ++rep) {
    fuzzer::OrchestratorOptions options;
    options.campaign.seed = seed_base + static_cast<uint64_t>(rep) * 7919;
    options.campaign.program_budget = program_budget;
    options.num_workers = num_workers;
    fuzzer::OrchestratorResult result = fuzzer::RunShardedCampaign(
        lib, [this](vkernel::Kernel* kernel) { BootKernel(kernel); }, options);
    summary.avg_coverage += static_cast<double>(result.coverage.Count());
    summary.avg_crashes += static_cast<double>(result.UniqueCrashCount());
    summary.merged.Merge(result.coverage);
    for (const auto& [title, count] : result.crashes) {
      summary.crash_titles[title] += count;
    }
    summary.wall_seconds += result.wall_seconds;
    if (rep == reps - 1) summary.corpus = std::move(result.corpus);
  }
  if (reps > 0) {
    summary.avg_coverage /= reps;
    summary.avg_crashes /= reps;
  }
  return summary;
}

fuzzer::DistillResult
ExperimentContext::DistillCorpus(const fuzzer::SpecLibrary& lib,
                                 const std::vector<fuzzer::Prog>& corpus) const
{
  fuzzer::Distiller distiller(
      &lib, [this](vkernel::Kernel* kernel) { BootKernel(kernel); });
  return distiller.Distill(corpus);
}

}  // namespace kernelgpt::experiments
