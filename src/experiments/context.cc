#include "experiments/context.h"

#include "drivers/model_runtime.h"
#include "extractor/handler_finder.h"
#include "fuzzer/session.h"
#include "llm/registry.h"
#include "util/status.h"
#include "util/strings.h"

namespace kernelgpt::experiments {

ExperimentContext::ExperimentContext(const ContextOptions& options)
    : index_(drivers::Corpus::Instance().BuildIndex())
{
  consts_ = index_.BuildConstTable();
  meter_.SetKeepText(false);  // Counters only; full-corpus runs are large.

  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  // Resolve the analysis backend through the registry; an empty name
  // falls back to gen.profile (a bench wiring a hand-built profile). A
  // non-empty unknown name aborts: silently running a different model
  // under the requested label would mislabel every downstream table.
  std::unique_ptr<llm::Backend> backend;
  if (!options.backend.empty()) {
    backend = llm::BackendRegistry::Default().Create(options.backend,
                                                     &index_, &meter_);
    if (!backend) {
      // A misconfigured backend name is a user error, not a bug:
      // report it through the project's fatal-error convention.
      util::Fatal(util::Format(
          "ExperimentContext: unknown backend '%s' (registered: %s)",
          options.backend.c_str(),
          util::Join(llm::BackendRegistry::Default().Names(), ", ").c_str()));
    }
  }
  spec_gen::KernelGpt kernelgpt =
      backend ? spec_gen::KernelGpt(&index_, options.gen, backend.get())
              : spec_gen::KernelGpt(&index_, options.gen, &meter_);
  baseline::SyzDescribe syzdescribe(&index_);

  auto driver_handlers = extractor::FindDriverHandlers(index_);
  auto socket_handlers = extractor::FindSocketHandlers(index_);

  for (const drivers::DeviceSpec* dev : corpus.LoadedDevices()) {
    ModuleResult module;
    module.id = dev->id;
    module.dev = dev;
    module.existing = drivers::ExistingDeviceSpec(*dev);
    module.existing_syscalls = module.existing.Syscalls().size();
    module.ground_truth_syscalls = drivers::GroundTruthSyscallCount(*dev);

    const std::string path = "drivers/" + dev->id + ".c";
    for (const auto& handler : driver_handlers) {
      if (handler.file_path != path) continue;
      if (handler.reg == extractor::RegKind::kUnreferenced) continue;
      module.kernelgpt = kernelgpt.GenerateForDriver(handler);
      module.syzdescribe = syzdescribe.GenerateForDriver(handler);
      break;
    }
    modules_.push_back(std::move(module));
  }

  for (const drivers::SocketSpec* sock : corpus.LoadedSockets()) {
    ModuleResult module;
    module.id = sock->id;
    module.is_socket = true;
    module.sock = sock;
    module.existing = drivers::ExistingSocketSpec(*sock);
    module.existing_syscalls = module.existing.Syscalls().size();
    module.ground_truth_syscalls = drivers::GroundTruthSyscallCount(*sock);

    const std::string path = "net/" + sock->id + ".c";
    for (const auto& handler : socket_handlers) {
      if (handler.file_path != path) continue;
      module.kernelgpt = kernelgpt.GenerateForSocket(handler);
      break;
    }
    modules_.push_back(std::move(module));
  }
}

util::Status
ExperimentContext::Create(const ContextOptions& options,
                          std::unique_ptr<ExperimentContext>* out)
{
  if (!options.backend.empty() &&
      !llm::BackendRegistry::Default().Find(options.backend)) {
    return util::Status::Error(util::Format(
        "ExperimentContext: unknown backend '%s' (registered: %s)",
        options.backend.c_str(),
        util::Join(llm::BackendRegistry::Default().Names(), ", ").c_str()));
  }
  out->reset(new ExperimentContext(options));
  return util::Status::Ok();
}

const ExperimentContext&
ExperimentContext::Default()
{
  static const ExperimentContext context{ContextOptions{}};
  return context;
}

const ModuleResult*
ExperimentContext::Find(const std::string& id) const
{
  for (const auto& m : modules_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

std::vector<const ModuleResult*>
ExperimentContext::Devices() const
{
  std::vector<const ModuleResult*> out;
  for (const auto& m : modules_) {
    if (!m.is_socket) out.push_back(&m);
  }
  return out;
}

std::vector<const ModuleResult*>
ExperimentContext::Sockets() const
{
  std::vector<const ModuleResult*> out;
  for (const auto& m : modules_) {
    if (m.is_socket) out.push_back(&m);
  }
  return out;
}

fuzzer::SpecLibrary
ExperimentContext::MakeLibrary(
    const std::vector<const syzlang::SpecFile*>& specs) const
{
  fuzzer::SpecLibrary lib;
  lib.SetConsts(consts_);
  for (const syzlang::SpecFile* spec : specs) {
    if (spec) lib.Add(*spec);
  }
  lib.Finalize();
  return lib;
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) specs.push_back(&m.existing);
  return MakeLibrary(specs);
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerPlusSyzDescribeSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) {
    specs.push_back(&m.existing);
    if (m.syzdescribe.generated) specs.push_back(&m.syzdescribe.spec);
  }
  return MakeLibrary(specs);
}

fuzzer::SpecLibrary
ExperimentContext::SyzkallerPlusKernelGptSuite() const
{
  std::vector<const syzlang::SpecFile*> specs;
  for (const auto& m : modules_) {
    specs.push_back(&m.existing);
    if (m.KernelGptUsable()) specs.push_back(&m.kernelgpt.spec);
  }
  return MakeLibrary(specs);
}

void
ExperimentContext::BootKernel(vkernel::KernelModel* kernel) const
{
  drivers::Corpus::Instance().RegisterAll(kernel);
}

fuzzer::DiffReport
ExperimentContext::DiffCorpus(const fuzzer::SpecLibrary& lib,
                              const std::vector<fuzzer::Prog>& corpus,
                              fuzzer::DiffOptions options) const
{
  options.boot = [this](vkernel::KernelModel* kernel) { BootKernel(kernel); };
  fuzzer::DiffRunner runner(&lib, std::move(options));
  return runner.Run(corpus);
}

namespace {
/// The suite name ExperimentContext sessions register their library
/// under (one anonymous suite per Fuzz/DistillCorpus call).
constexpr char kSessionSuite[] = "experiment";
}  // namespace

fuzzer::Session
ExperimentContext::MakeSession(fuzzer::SessionOptions options) const
{
  return fuzzer::Session(
      std::move(options),
      [this](vkernel::KernelModel* kernel) { BootKernel(kernel); });
}

ExperimentContext::FuzzSummary
ExperimentContext::Fuzz(const fuzzer::SpecLibrary& lib, int program_budget,
                        int reps, uint64_t seed_base, int num_workers) const
{
  FuzzSummary summary;
  util::Status status =
      Fuzz(lib, program_budget, reps, seed_base, num_workers, &summary);
  // The benches keep the historical die-loudly contract; services use
  // the Status overload and handle the failure themselves.
  if (!status.ok()) util::Fatal("ExperimentContext::Fuzz: " + status.message());
  return summary;
}

util::Status
ExperimentContext::Fuzz(const fuzzer::SpecLibrary& lib, int program_budget,
                        int reps, uint64_t seed_base, int num_workers,
                        FuzzSummary* out) const
{
  FuzzSummary summary;
  *out = FuzzSummary();
  // A library with no syscalls cannot be registered as a Session suite;
  // the historical contract for it was an all-zero summary.
  if (reps <= 0 || lib.syscalls().empty()) return util::Status::Ok();

  // Repetitions are the arithmetic seed schedule (seed_base + rep * 7919)
  // with independent rounds: no corpus carry-over, no distillation —
  // exactly the pre-Session per-rep campaign loop, bit for bit.
  fuzzer::SessionOptions options;
  options.WithSeed(seed_base)
      .WithRounds(reps)
      .WithSchedule(fuzzer::SeedSchedule::kArithmetic)
      .WithSeedStride(7919)
      .WithCarryCorpus(false)
      .WithDistill(false)
      .WithProgramBudget(program_budget)
      .WithWorkers(num_workers);
  fuzzer::Session session = MakeSession(options);
  util::Status status = session.RegisterSuite(kSessionSuite, &lib);
  if (status.ok()) status = session.Run();
  if (!status.ok()) return status;

  fuzzer::SuiteState& state = *session.Find(kSessionSuite);
  for (const fuzzer::RoundReport& report : state.rounds) {
    summary.avg_coverage += static_cast<double>(report.round_coverage);
    summary.avg_crashes += static_cast<double>(report.round_unique_crashes);
    summary.wall_seconds += report.wall_seconds;
  }
  summary.merged = std::move(state.coverage);
  summary.crash_titles = std::move(state.crashes);
  summary.corpus = std::move(state.corpus);
  summary.avg_coverage /= reps;
  summary.avg_crashes /= reps;
  *out = std::move(summary);
  return util::Status::Ok();
}

fuzzer::DistillResult
ExperimentContext::DistillCorpus(const fuzzer::SpecLibrary& lib,
                                 const std::vector<fuzzer::Prog>& corpus) const
{
  fuzzer::DistillResult result;
  util::Status status = DistillCorpus(lib, corpus, &result);
  if (!status.ok()) {
    util::Fatal("ExperimentContext::DistillCorpus: " + status.message());
  }
  return result;
}

util::Status
ExperimentContext::DistillCorpus(const fuzzer::SpecLibrary& lib,
                                 const std::vector<fuzzer::Prog>& corpus,
                                 fuzzer::DistillResult* out) const
{
  *out = fuzzer::DistillResult();
  fuzzer::Session session = MakeSession(fuzzer::SessionOptions{});
  util::Status status = session.RegisterSuite(kSessionSuite, &lib);
  if (!status.ok()) {
    // Legacy behavior for an unusable library: an empty result that still
    // reports the input size.
    out->stats.input_programs = corpus.size();
    return util::Status::Ok();
  }
  return session.DistillInto(kSessionSuite, corpus, out);
}

}  // namespace kernelgpt::experiments
