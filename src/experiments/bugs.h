/// \file
/// Inventory of planted bugs and effectiveness checks used by the Table 1
/// and Table 4 benches.

#ifndef KERNELGPT_EXPERIMENTS_BUGS_H_
#define KERNELGPT_EXPERIMENTS_BUGS_H_

#include <string>
#include <vector>

#include "experiments/context.h"

namespace kernelgpt::experiments {

/// One planted bug with its owning module.
struct PlantedBug {
  std::string module;
  std::string title;
  std::string cve;
  bool confirmed = false;
  bool fixed = false;
  bool legacy = false;
};

/// All bugs in the corpus. `include_legacy` adds the long-known bugs that
/// existing specs already reach; without it the list is exactly the 24
/// Table 4 bugs.
std::vector<PlantedBug> AllPlantedBugs(bool include_legacy);

/// True when a SyzDescribe-generated spec is *effective* for its module:
/// the device path matches the real node and at least one described
/// command carries the true command value. (The paper counts only such
/// handlers in SyzDescribe's "# Valid" column — its other outputs exist
/// but cannot exercise the driver.)
bool SyzDescribeEffective(const ExperimentContext& context,
                          const ModuleResult& module);

}  // namespace kernelgpt::experiments

#endif  // KERNELGPT_EXPERIMENTS_BUGS_H_
