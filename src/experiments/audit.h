/// \file
/// Semantic-correctness audit of generated specifications against the
/// ground-truth oracle — the automated version of the paper's §5.1.3
/// manual examination (missing syscalls, wrong identifier values, wrong
/// argument types).

#ifndef KERNELGPT_EXPERIMENTS_AUDIT_H_
#define KERNELGPT_EXPERIMENTS_AUDIT_H_

#include <string>
#include <vector>

#include "experiments/context.h"

namespace kernelgpt::experiments {

/// One audited driver.
struct DriverAudit {
  std::string id;
  size_t total_syscalls = 0;      ///< Ground-truth ioctl count.
  size_t missing = 0;             ///< Not described at all.
  size_t wrong_identifier = 0;    ///< Described with a wrong cmd value.
  size_t wrong_type = 0;          ///< Described with a mismatched arg type.
};

/// Aggregated audit over a set of drivers.
struct AuditResult {
  std::vector<DriverAudit> drivers;
  size_t total_drivers = 0;
  size_t drivers_without_missing = 0;
  size_t drivers_with_wrong_identifier = 0;
  size_t drivers_with_wrong_type = 0;
  size_t total_syscalls = 0;
  size_t missing_syscalls = 0;
  size_t wrong_identifier_syscalls = 0;
  size_t wrong_type_syscalls = 0;
};

/// Audits KernelGPT-generated driver specs against ground truth.
/// When `undescribed_only` is set, restricts to drivers with no existing
/// Syzkaller description (the paper's 45-driver audit population).
AuditResult AuditKernelGpt(const ExperimentContext& context,
                           bool undescribed_only);

}  // namespace kernelgpt::experiments

#endif  // KERNELGPT_EXPERIMENTS_AUDIT_H_
