#include "experiments/audit.h"

namespace kernelgpt::experiments {

using syzlang::SpecFile;
using syzlang::SyscallDef;
using syzlang::Type;
using syzlang::TypeKind;

namespace {

/// Field-type equivalence for the audit: scalar kinds with matching width
/// are equivalent; semantic kinds (len/flags) must match in kind; arrays
/// must match element width and count.
bool
TypesEquivalent(const Type& truth, const Type& gen)
{
  auto is_scalar = [](const Type& t) {
    return t.kind == TypeKind::kInt || t.kind == TypeKind::kConst;
  };
  if (is_scalar(truth) && is_scalar(gen)) return truth.bits == gen.bits;
  if (truth.kind == TypeKind::kFlags) {
    // Flag-set names differ between expert and model; kind+width suffice.
    return gen.kind == TypeKind::kFlags && truth.bits == gen.bits;
  }
  if (truth.kind != gen.kind) return false;
  switch (truth.kind) {
    case TypeKind::kLen:
    case TypeKind::kBytesize:
      return truth.len_target == gen.len_target && truth.bits == gen.bits;
    case TypeKind::kArray:
      return truth.array_len == gen.array_len &&
             TypesEquivalent(truth.elems.at(0), gen.elems.at(0));
    case TypeKind::kPtr:
      return TypesEquivalent(truth.elems.at(0), gen.elems.at(0));
    case TypeKind::kStructRef:
      return true;  // Struct bodies compared separately.
    default:
      return true;
  }
}

/// Returns true when the generated struct matches the ground-truth struct
/// field-for-field.
bool
StructMatches(const SpecFile& truth_spec, const SpecFile& gen_spec,
              const std::string& truth_name, const std::string& gen_name)
{
  const syzlang::StructDef* truth = truth_spec.FindStruct(truth_name);
  const syzlang::StructDef* gen = gen_spec.FindStruct(gen_name);
  if (!truth || !gen) return false;
  if (truth->fields.size() != gen->fields.size()) return false;
  for (size_t i = 0; i < truth->fields.size(); ++i) {
    if (!TypesEquivalent(truth->fields[i].type, gen->fields[i].type)) {
      return false;
    }
  }
  return true;
}

/// The ptr payload struct name of an ioctl description ("" when scalar).
std::string
ArgStructOf(const SyscallDef& call)
{
  if (call.params.size() < 3) return "";
  const Type& arg = call.params[2].type;
  if (arg.kind != TypeKind::kPtr) return "";
  if (arg.elems.at(0).kind != TypeKind::kStructRef) return "";
  return arg.elems.at(0).ref_name;
}

}  // namespace

AuditResult
AuditKernelGpt(const ExperimentContext& context, bool undescribed_only)
{
  AuditResult result;
  for (const ModuleResult* module : context.Devices()) {
    if (!module->dev) continue;
    if (undescribed_only && module->existing_syscalls > 0) continue;
    if (!module->KernelGptUsable()) continue;

    SpecFile truth = drivers::GroundTruthDeviceSpec(*module->dev);
    const SpecFile& gen = module->kernelgpt.spec;

    DriverAudit audit;
    audit.id = module->id;
    for (const SyscallDef* call : truth.Syscalls()) {
      if (call->name != "ioctl") continue;
      ++audit.total_syscalls;
      const std::string macro = call->variant;

      const SyscallDef* described = gen.FindSyscall("ioctl$" + macro);
      if (!described) {
        // A _NR-suffixed variant means the model used the modified (raw)
        // identifier — described, but with the wrong command value.
        if (gen.FindSyscall("ioctl$" + macro + "_NR")) {
          ++audit.wrong_identifier;
        } else {
          ++audit.missing;
        }
        continue;
      }
      // Identifier value check: the cmd const must resolve to the true
      // full command value.
      uint64_t truth_cmd = 0;
      if (call->params.size() >= 2 &&
          call->params[1].type.kind == TypeKind::kConst) {
        truth_cmd = context.consts()
                        .Resolve(call->params[1].type.const_name)
                        .value_or(0);
      }
      uint64_t gen_cmd = 0;
      if (described->params.size() >= 2 &&
          described->params[1].type.kind == TypeKind::kConst) {
        gen_cmd = context.consts()
                      .Resolve(described->params[1].type.const_name)
                      .value_or(0);
      }
      if (truth_cmd != gen_cmd) {
        ++audit.wrong_identifier;
        continue;
      }
      // Type check.
      std::string truth_struct = ArgStructOf(*call);
      std::string gen_struct = ArgStructOf(*described);
      if (truth_struct.empty() != gen_struct.empty()) {
        ++audit.wrong_type;
        continue;
      }
      if (!truth_struct.empty() &&
          !StructMatches(truth, gen, truth_struct, gen_struct)) {
        ++audit.wrong_type;
      }
    }

    result.total_drivers++;
    if (audit.missing == 0) result.drivers_without_missing++;
    if (audit.wrong_identifier > 0) result.drivers_with_wrong_identifier++;
    if (audit.wrong_type > 0) result.drivers_with_wrong_type++;
    result.total_syscalls += audit.total_syscalls;
    result.missing_syscalls += audit.missing;
    result.wrong_identifier_syscalls += audit.wrong_identifier;
    result.wrong_type_syscalls += audit.wrong_type;
    result.drivers.push_back(std::move(audit));
  }
  return result;
}

}  // namespace kernelgpt::experiments
