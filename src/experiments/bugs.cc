#include "experiments/bugs.h"

namespace kernelgpt::experiments {

std::vector<PlantedBug>
AllPlantedBugs(bool include_legacy)
{
  std::vector<PlantedBug> out;
  auto add = [&](const std::string& module,
                 const std::optional<drivers::BugSpec>& bug) {
    if (!bug) return;
    if (bug->legacy && !include_legacy) return;
    PlantedBug planted;
    planted.module = module;
    planted.title = bug->title;
    planted.cve = bug->cve;
    planted.confirmed = bug->confirmed;
    planted.fixed = bug->fixed;
    planted.legacy = bug->legacy;
    out.push_back(std::move(planted));
  };
  const drivers::Corpus& corpus = drivers::Corpus::Instance();
  for (const auto& dev : corpus.devices()) {
    for (const auto& cmd : dev.primary.ioctls) add(dev.id, cmd.bug);
    for (const auto& handler : dev.secondary) {
      for (const auto& cmd : handler.ioctls) add(dev.id, cmd.bug);
    }
  }
  for (const auto& sock : corpus.sockets()) {
    for (const auto& cmd : sock.ioctls) add(sock.id, cmd.bug);
    for (const auto& opt : sock.sockopts) add(sock.id, opt.bug);
    for (const drivers::SocketOpSpec* op :
         {&sock.bind, &sock.connect, &sock.sendto, &sock.recvfrom,
          &sock.listen, &sock.accept}) {
      add(sock.id, op->bug);
    }
  }
  return out;
}

bool
SyzDescribeEffective(const ExperimentContext& context,
                     const ModuleResult& module)
{
  if (module.is_socket || !module.dev) return false;
  if (!module.syzdescribe.generated) return false;
  const syzlang::SpecFile& spec = module.syzdescribe.spec;

  // The openat path must match the true device node.
  bool node_ok = false;
  for (const syzlang::SyscallDef* call : spec.Syscalls()) {
    if (call->name != "openat" || call->params.size() < 2) continue;
    const syzlang::Type& file = call->params[1].type;
    if (file.kind == syzlang::TypeKind::kPtr &&
        file.elems.at(0).kind == syzlang::TypeKind::kString &&
        file.elems.at(0).str_literal == module.dev->dev_node) {
      node_ok = true;
    }
  }
  if (!node_ok) return false;

  // At least one described command must carry a true command value.
  std::vector<uint64_t> truth;
  for (const auto& cmd : module.dev->primary.ioctls) {
    truth.push_back(drivers::FullCommandValue(*module.dev, cmd));
  }
  for (const syzlang::SyscallDef* call : spec.Syscalls()) {
    if (call->name != "ioctl" || call->params.size() < 2) continue;
    if (call->params[1].type.kind != syzlang::TypeKind::kConst) continue;
    uint64_t value = context.consts()
                         .Resolve(call->params[1].type.const_name)
                         .value_or(0);
    for (uint64_t t : truth) {
      if (t == value) return true;
    }
  }
  return false;
}

}  // namespace kernelgpt::experiments
