/// \file
/// Shared experiment harness: runs the full generation pipeline (existing
/// Syzkaller specs, SyzDescribe, KernelGPT) over the whole corpus once and
/// exposes the per-module results that every table/figure bench consumes.

#ifndef KERNELGPT_EXPERIMENTS_CONTEXT_H_
#define KERNELGPT_EXPERIMENTS_CONTEXT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/syz_describe.h"
#include "drivers/corpus.h"
#include "drivers/model_spec.h"
#include "fuzzer/campaign.h"
#include "fuzzer/distiller.h"
#include "fuzzer/orchestrator.h"
#include "fuzzer/session.h"
#include "spec_gen/kernelgpt.h"

namespace kernelgpt::experiments {

/// Everything known about one corpus module after generation.
struct ModuleResult {
  std::string id;
  bool is_socket = false;
  const drivers::DeviceSpec* dev = nullptr;
  const drivers::SocketSpec* sock = nullptr;

  /// Hand-written partial Syzkaller spec (may be empty).
  syzlang::SpecFile existing;
  size_t existing_syscalls = 0;

  /// Ground truth (the oracle; never fed to the fuzzer benches directly).
  size_t ground_truth_syscalls = 0;

  /// KernelGPT generation outcome.
  spec_gen::HandlerGeneration kernelgpt;

  /// SyzDescribe outcome (devices only; `generated == false` for sockets).
  baseline::SyzDescribeResult syzdescribe;

  bool KernelGptUsable() const {
    return kernelgpt.status != spec_gen::GenStatus::kFailed;
  }
  /// Handler is "incomplete": existing spec misses >= 1 syscall.
  bool Incomplete() const {
    return existing_syscalls < ground_truth_syscalls;
  }
  /// Fraction of ground-truth syscalls missing from the existing spec.
  double MissingFraction() const {
    if (ground_truth_syscalls == 0) return 0.0;
    return 1.0 - static_cast<double>(existing_syscalls) /
                     static_cast<double>(ground_truth_syscalls);
  }
};

/// Options for building a context (mostly for the ablation benches).
struct ContextOptions {
  spec_gen::Options gen;
  /// Registry name of the analysis backend generation runs on. The
  /// default resolves to the same profile as the pre-registry pipeline,
  /// byte-identical in specs and token totals. When empty, `gen.profile`
  /// is used directly through a SimulatedBackend (legacy path, for
  /// benches that hand-tune a profile). Unknown names abort loudly.
  std::string backend = "gpt-4";
};

/// One fully generated corpus. Construction runs every generator over
/// every loaded module (cheap: < 1 s).
class ExperimentContext {
 public:
  explicit ExperimentContext(const ContextOptions& options = {});

  /// Status-returning factory: like the constructor, but a misconfigured
  /// backend name comes back as a util::Status instead of util::Fatal —
  /// a campaign service (e.g. a fuzzer::Fleet tenant factory) treats it
  /// as a failed tenant, not a dead process. The aborting constructor
  /// remains for the benches, where dying loudly is the right call.
  static util::Status Create(const ContextOptions& options,
                             std::unique_ptr<ExperimentContext>* out);

  /// Lazily-built default context with GPT-4, iterative mode.
  static const ExperimentContext& Default();

  const ksrc::DefinitionIndex& index() const { return index_; }
  const syzlang::ConstTable& consts() const { return consts_; }
  const llm::TokenMeter& meter() const { return meter_; }
  const std::vector<ModuleResult>& modules() const { return modules_; }

  const ModuleResult* Find(const std::string& id) const;

  std::vector<const ModuleResult*> Devices() const;
  std::vector<const ModuleResult*> Sockets() const;

  /// Builds a spec library from a list of spec files (consts attached).
  fuzzer::SpecLibrary MakeLibrary(
      const std::vector<const syzlang::SpecFile*>& specs) const;

  /// The three Table 3 suites over all loaded modules.
  fuzzer::SpecLibrary SyzkallerSuite() const;
  fuzzer::SpecLibrary SyzkallerPlusSyzDescribeSuite() const;
  fuzzer::SpecLibrary SyzkallerPlusKernelGptSuite() const;

  /// Registers all loaded corpus modules into a fresh kernel model (any
  /// personality).
  void BootKernel(vkernel::KernelModel* kernel) const;

  /// Runs the differential oracle over `corpus` on one suite: strict
  /// baseline vs. permissive subject (or the personalities `options`
  /// names), booted with this context's modules.
  fuzzer::DiffReport DiffCorpus(const fuzzer::SpecLibrary& lib,
                                const std::vector<fuzzer::Prog>& corpus,
                                fuzzer::DiffOptions options = {}) const;

  /// Builds a fuzzer::Session wired to boot this context's kernels —
  /// the facade Fuzz()/DistillCorpus() run on; benches that want round
  /// trends or Save/Resume persistence can drive it directly.
  fuzzer::Session MakeSession(fuzzer::SessionOptions options) const;

  /// Runs `reps` campaigns with distinct seeds and returns the average
  /// coverage count, average unique-crash count, and merged coverage.
  /// Campaigns run on the sharded orchestrator; `num_workers == 1`
  /// reproduces the historical serial results bit-for-bit. (Since the
  /// Session redesign this is a shim over one arithmetic-schedule
  /// fuzzer::Session; results are unchanged, byte for byte.)
  struct FuzzSummary {
    double avg_coverage = 0;
    double avg_crashes = 0;
    vkernel::Coverage merged;
    std::map<std::string, int> crash_titles;
    /// Total campaign wall-clock across reps (for speedup reporting).
    double wall_seconds = 0;
    /// Final merged corpus of the LAST rep — the distillation input for
    /// the tables' corpus-lifecycle reporting.
    std::vector<fuzzer::Prog> corpus;
  };
  FuzzSummary Fuzz(const fuzzer::SpecLibrary& lib, int program_budget,
                   int reps, uint64_t seed_base = 1,
                   int num_workers = 1) const;

  /// Status-returning Fuzz: campaign failures (a worker exception, a
  /// session error) come back as a Status instead of util::Fatal. The
  /// aborting overload above is a shim over this one.
  util::Status Fuzz(const fuzzer::SpecLibrary& lib, int program_budget,
                    int reps, uint64_t seed_base, int num_workers,
                    FuzzSummary* out) const;

  /// Runs the between-campaign distillation pass over a merged corpus
  /// (usually FuzzSummary::corpus) with this context's kernel boot.
  fuzzer::DistillResult DistillCorpus(
      const fuzzer::SpecLibrary& lib,
      const std::vector<fuzzer::Prog>& corpus) const;

  /// Status-returning DistillCorpus; the aborting overload shims this.
  util::Status DistillCorpus(const fuzzer::SpecLibrary& lib,
                             const std::vector<fuzzer::Prog>& corpus,
                             fuzzer::DistillResult* out) const;

 private:
  ksrc::DefinitionIndex index_;
  syzlang::ConstTable consts_;
  llm::TokenMeter meter_;
  std::vector<ModuleResult> modules_;
};

}  // namespace kernelgpt::experiments

#endif  // KERNELGPT_EXPERIMENTS_CONTEXT_H_
