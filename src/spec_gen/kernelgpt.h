/// \file
/// KernelGPT: the paper's primary contribution. Orchestrates the
/// LLM-guided iterative analysis (Algorithm 1) over extracted operation
/// handlers through three stages — identifier deduction, type recovery,
/// dependency analysis — then validates the generated specification and
/// repairs it with the validator's error messages.

#ifndef KERNELGPT_SPEC_GEN_KERNELGPT_H_
#define KERNELGPT_SPEC_GEN_KERNELGPT_H_

#include <map>
#include <string>
#include <vector>

#include <memory>

#include "extractor/handler_finder.h"
#include "ksrc/definition_index.h"
#include "llm/backend.h"
#include "llm/token_meter.h"
#include "syzlang/ast.h"
#include "syzlang/validator.h"

namespace kernelgpt::spec_gen {

/// Generation configuration.
struct Options {
  llm::ModelProfile profile = llm::Gpt4();
  /// MAX_ITER of Algorithm 1.
  int max_iter = 5;
  /// When false, runs the §5.2.3 "all-in-one" ablation: a single query
  /// with whatever fits the context window and no unknown-chasing.
  bool iterative = true;
  /// Number of repair rounds after validation.
  int repair_rounds = 2;
};

/// Outcome of generating one handler's specification.
enum class GenStatus {
  kValidDirect,  ///< Passed validation immediately.
  kRepaired,     ///< Needed at least one successful repair round.
  kFailed,       ///< Still invalid after repair (excluded from fuzzing).
};

/// The generated specification for one operation handler.
struct HandlerGeneration {
  std::string module;  ///< Module id derived from the source file path.
  bool is_socket = false;
  syzlang::SpecFile spec;
  GenStatus status = GenStatus::kValidDirect;
  /// Validation errors of the first validation pass (repair input).
  std::vector<syzlang::ValidationError> initial_errors;
  /// Errors remaining after repair (empty unless kFailed).
  std::vector<syzlang::ValidationError> remaining_errors;

  size_t SyscallCount() const { return spec.Syscalls().size(); }
  size_t TypeCount() const { return spec.Structs().size(); }
};

/// KernelGPT bound to one kernel index and one analysis backend.
class KernelGpt {
 public:
  /// Runs against an externally owned backend (registry-created); the
  /// backend must outlive the generator. `options.profile` is ignored —
  /// the backend's own profile drives every capability decision. Pass a
  /// prebuilt `consts` (a pure function of the index) to skip the
  /// per-instance const-table build — the SpecGenService constructs one
  /// generator per task and shares a single table across all of them.
  KernelGpt(const ksrc::DefinitionIndex* index, Options options,
            llm::Backend* backend,
            const syzlang::ConstTable* consts = nullptr);

  /// Compatibility path: builds and owns a SimulatedBackend answering
  /// with `options.profile`, metering into `meter`. Byte-identical to
  /// the pre-registry pipeline.
  KernelGpt(const ksrc::DefinitionIndex* index, Options options,
            llm::TokenMeter* meter);

  /// Generates the specification for one driver operation handler.
  HandlerGeneration GenerateForDriver(const extractor::DriverHandler& handler);

  /// Generates the specification for one socket operation handler.
  HandlerGeneration GenerateForSocket(const extractor::SocketHandler& handler);

  const Options& options() const { return options_; }

 private:
  /// Stage 1+2+3 for one handler chain rooted at `ioctl_fn`; appends
  /// ioctl declarations (and recursively, created-resource handlers) to
  /// `spec`. Returns the number of commands described.
  size_t DescribeIoctlChain(const std::string& ioctl_fn,
                            const std::string& fd_resource,
                            const std::string& module,
                            syzlang::SpecFile* spec);

  /// Stage 2: recover the argument type of `sub_fn` and all (nested)
  /// struct declarations it needs, appending them to `spec`. Returns the
  /// struct name ("" if the command takes no pointer).
  struct TypeResult {
    std::string struct_name;
    syzlang::Dir dir = syzlang::Dir::kInOut;
  };
  TypeResult DescribeArgType(const std::string& sub_fn,
                             const std::string& module,
                             syzlang::SpecFile* spec);

  /// Recovers every struct recorded by DescribeArgType (and their nested
  /// types), using the semantics merged across all commands. Called once
  /// per handler, after identifier/type analysis of all commands.
  void DescribeRecordedStructs(const std::string& module,
                               syzlang::SpecFile* spec);

  /// Merged per-struct semantics gathered from *all* commands sharing the
  /// struct (first command to constrain a field wins, matching how an
  /// expert reconciles validation code across handlers).
  struct StructSemantics {
    std::vector<llm::FieldConstraint> constraints;
    std::vector<std::string> out_fields;
  };
  std::map<std::string, StructSemantics> struct_semantics_;
  std::vector<std::string> needed_structs_;

  /// Injects a deterministic syntax-level flaw into a declaration
  /// (modeling hallucinated output the validator must catch).
  void MaybeInjectFlaw(const std::string& module, syzlang::Decl* decl);

  /// Validation + repair loop; sets status/errors on `out`.
  void ValidateAndRepair(HandlerGeneration* out);

  /// One repair round: consults the "LLM" with each errored declaration
  /// and the error messages, applying fixes on success.
  bool RepairRound(syzlang::SpecFile* spec,
                   const std::vector<syzlang::ValidationError>& errors,
                   const std::string& module);

  /// The backend's capability/error profile (keys every Decide draw).
  const llm::ModelProfile& profile() const { return backend_->profile(); }

  const ksrc::DefinitionIndex* index_;
  Options options_;
  std::unique_ptr<llm::Backend> owned_backend_;  ///< Compat ctor only.
  llm::Backend* backend_;
  /// Built (and owned) only when the caller did not share a table.
  std::unique_ptr<syzlang::ConstTable> owned_consts_;
  const syzlang::ConstTable* consts_;
};

/// Derives a module id from a corpus source path ("drivers/dm.c" -> "dm").
std::string ModuleIdFromPath(const std::string& path);

}  // namespace kernelgpt::spec_gen

#endif  // KERNELGPT_SPEC_GEN_KERNELGPT_H_
