#include "spec_gen/service.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/fault.h"

namespace kernelgpt::spec_gen {

namespace {

/// One unit of work: generate one handler's spec on one backend.
struct Task {
  size_t run_index = 0;      ///< Which BackendRun the result lands in.
  size_t slot = 0;           ///< Position within that run's generations.
  bool is_socket = false;
  const extractor::DriverHandler* driver = nullptr;
  const extractor::SocketHandler* socket = nullptr;
};

/// Per-task output: the generation plus its metered cost. Tasks never
/// share a meter, so sums over tasks equal a single-meter serial run and
/// are independent of execution order.
struct TaskResult {
  HandlerGeneration gen;
  size_t queries = 0;
  size_t input_tokens = 0;
  size_t output_tokens = 0;
  /// Run index of the backend that actually served the task (normally
  /// the requested one; a different one after failover; -1 when every
  /// backend failed and the generation is a synthesized failure).
  int served_by = -1;
  std::string error;  ///< Last per-hop failure message.
};

}  // namespace

SpecGenService::SpecGenService(const ksrc::DefinitionIndex* index,
                               ServiceOptions options)
    : index_(index), options_(std::move(options))
{
  if (!options_.registry) options_.registry = &llm::BackendRegistry::Default();
  if (options_.num_threads < 1) options_.num_threads = 1;
}

ServiceResult
SpecGenService::Generate(
    const std::vector<extractor::DriverHandler>& drivers,
    const std::vector<extractor::SocketHandler>& sockets) const
{
  const llm::BackendRegistry& registry = *options_.registry;
  const size_t per_backend = drivers.size() + sockets.size();

  ServiceResult result;
  result.runs.resize(options_.backends.size());
  std::vector<Task> tasks;
  for (size_t b = 0; b < options_.backends.size(); ++b) {
    BackendRun& run = result.runs[b];
    run.backend = options_.backends[b];
    run.report.backend = run.backend;
    if (!registry.Find(run.backend)) {
      run.report.known = false;  // Reported, not generated.
      continue;
    }
    for (size_t i = 0; i < drivers.size(); ++i) {
      tasks.push_back({b, i, false, &drivers[i], nullptr});
    }
    for (size_t i = 0; i < sockets.size(); ++i) {
      tasks.push_back({b, drivers.size() + i, true, nullptr, &sockets[i]});
    }
    run.generations.resize(per_backend);
  }

  // The const table is a pure function of the shared immutable index;
  // build it once and share it across every task's generator.
  const syzlang::ConstTable consts = index_->BuildConstTable();

  // Failover order: the registry-known run indices, walked from the
  // requested backend onward (wrapping). Hop 0 is always the requested
  // backend itself, so the fault-free path is byte-identical to the
  // pre-failover service.
  std::vector<size_t> eligible;
  std::vector<size_t> eligible_pos(result.runs.size(), 0);
  for (size_t b = 0; b < result.runs.size(); ++b) {
    if (!result.runs[b].report.known) continue;
    eligible_pos[b] = eligible.size();
    eligible.push_back(b);
  }

  // Independent deterministic tasks drained from a shared counter:
  // scheduling affects only wall-clock, results land in their slots.
  std::vector<TaskResult> outputs(tasks.size());
  std::atomic<size_t> next{0};
  // Simulated process death is not a per-task failure: remaining workers
  // drain fast and the crash resurfaces after the join, for a supervisor
  // to restart the whole pass.
  std::atomic<bool> crashed{false};
  std::mutex crash_mutex;
  std::exception_ptr crash_exception;
  auto worker = [&]() {
    for (;;) {
      size_t t = next.fetch_add(1);
      if (t >= tasks.size() || crashed.load(std::memory_order_relaxed)) {
        return;
      }
      const Task& task = tasks[t];
      TaskResult& out = outputs[t];
      const std::string handler_key =
          task.is_socket ? task.socket->proto_ops_var : task.driver->fops_var;
      for (size_t hop = 0; hop < eligible.size(); ++hop) {
        const size_t serving =
            eligible[(eligible_pos[task.run_index] + hop) % eligible.size()];
        try {
          // Injectable task failure, scoped by the backend asked to
          // serve — a match=<backend> rule makes that backend "die" for
          // every task it touches, including adopted ones.
          KERNELGPT_FAULT_POINT(
              "spec_gen.task",
              result.runs[serving].backend + ":" + handler_key);
          llm::TokenMeter meter;
          meter.SetKeepText(false);
          std::unique_ptr<llm::Backend> backend = registry.Create(
              result.runs[serving].backend, index_, &meter);
          KernelGpt generator(index_, options_.gen, backend.get(), &consts);
          out.gen = task.is_socket
                        ? generator.GenerateForSocket(*task.socket)
                        : generator.GenerateForDriver(*task.driver);
          out.queries = meter.query_count();
          out.input_tokens = meter.total_input_tokens();
          out.output_tokens = meter.total_output_tokens();
          out.served_by = static_cast<int>(serving);
          break;
        } catch (const util::InjectedCrash&) {
          std::lock_guard<std::mutex> lock(crash_mutex);
          if (!crash_exception) crash_exception = std::current_exception();
          crashed.store(true, std::memory_order_relaxed);
          return;
        } catch (const std::exception& ex) {
          out.error = ex.what();  // Try the next backend in the ring.
        }
      }
      if (out.served_by < 0) {
        // Every backend failed this task: a synthesized failed
        // generation keeps slots aligned and the loss visible.
        out.gen = HandlerGeneration();
        out.gen.status = GenStatus::kFailed;
        out.queries = 0;
        out.input_tokens = 0;
        out.output_tokens = 0;
      }
    }
  };

  const int num_threads =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options_.num_threads),
          tasks.empty() ? 1 : tasks.size()));
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }
  if (crash_exception) std::rethrow_exception(crash_exception);

  // Aggregate in task (input) order so reports are reproducible.
  for (size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = tasks[t];
    TaskResult& out = outputs[t];
    BackendRun& run = result.runs[task.run_index];
    BackendReport& report = run.report;
    ++report.handlers;
    switch (out.gen.status) {
      case GenStatus::kValidDirect:
        ++report.valid;
        break;
      case GenStatus::kRepaired:
        ++report.repaired;
        break;
      case GenStatus::kFailed:
        ++report.failed;
        break;
    }
    if (out.gen.status != GenStatus::kFailed) {
      report.syscalls += out.gen.SyscallCount();
      report.types += out.gen.TypeCount();
    }
    // Token/query attribution follows the backend that actually served
    // the task; the generation stays in the requested run's slot.
    if (out.served_by >= 0) {
      BackendReport& server =
          result.runs[static_cast<size_t>(out.served_by)].report;
      server.queries += out.queries;
      server.input_tokens += out.input_tokens;
      server.output_tokens += out.output_tokens;
      if (static_cast<size_t>(out.served_by) != task.run_index) {
        ++report.failed_over;
        ++server.adopted;
        if (!out.error.empty()) report.last_error = out.error;
      }
    } else {
      ++report.unserved;
      ++report.failed_over;
      if (!out.error.empty()) report.last_error = out.error;
    }
    run.generations[task.slot] = std::move(out.gen);
  }
  for (BackendRun& run : result.runs) {
    const llm::BackendInfo* info = registry.Find(run.backend);
    if (!info) continue;
    run.report.cost_usd = info->pricing.Cost(run.report.input_tokens,
                                             run.report.output_tokens);
  }
  return result;
}

}  // namespace kernelgpt::spec_gen
