/// \file
/// Parallel spec-generation service: fans a fixed handler set out across
/// one or more registry backends, generating every handler's specification
/// on a deterministic worker pool and aggregating a per-backend
/// cost/quality report (tokens, $-estimate under the registry's pricing,
/// valid/repaired/failed counts).
///
/// Determinism contract: each (backend, handler) pair is one independent
/// task with its own meter and generator, so results are byte-identical
/// for any thread count — the orchestrator-style sharding only changes
/// wall-clock, never output. The ctest gate in scripts/ci.sh replays the
/// same set at 1 and 4 threads and diffs the printed specs.

#ifndef KERNELGPT_SPEC_GEN_SERVICE_H_
#define KERNELGPT_SPEC_GEN_SERVICE_H_

#include <string>
#include <vector>

#include "extractor/handler_finder.h"
#include "ksrc/definition_index.h"
#include "llm/registry.h"
#include "spec_gen/kernelgpt.h"

namespace kernelgpt::spec_gen {

/// Service configuration.
struct ServiceOptions {
  /// Registry names to fan the handler set across (unknown names are
  /// reported with zero handlers and `known == false`).
  std::vector<std::string> backends = {"gpt-4"};
  /// Worker threads; results are independent of this value.
  int num_threads = 1;
  /// Per-handler generation options (`gen.profile` is ignored — each
  /// backend's registered profile drives the generation).
  Options gen;
  /// Registry to resolve names against; nullptr = the default registry.
  const llm::BackendRegistry* registry = nullptr;
};

/// Cost/quality aggregate for one backend over the whole handler set.
struct BackendReport {
  std::string backend;
  bool known = true;      ///< False when the registry had no such name.
  size_t handlers = 0;    ///< Handlers attempted.
  size_t valid = 0;       ///< Passed validation directly.
  size_t repaired = 0;    ///< Needed at least one repair round.
  size_t failed = 0;      ///< Unusable after repair.
  size_t syscalls = 0;    ///< Described syscalls across usable handlers.
  size_t types = 0;       ///< Recovered struct types across usable handlers.
  size_t queries = 0;     ///< LLM exchanges (retries included).
  size_t input_tokens = 0;
  size_t output_tokens = 0;
  double cost_usd = 0;    ///< Token totals under this backend's pricing.

  /// Graceful degradation (never silent): when a backend dies mid-query
  /// (an injected "llm.query"/"spec_gen.task" fault, a thrown exception),
  /// the task fails over to the next registered backend. The generation
  /// still lands in the REQUESTED run's slot; the tokens it cost are
  /// billed to the SERVING backend (it ran the queries).
  size_t failed_over = 0;  ///< Tasks this backend could not serve itself.
  size_t adopted = 0;      ///< Tasks served on behalf of a failing sibling.
  size_t unserved = 0;     ///< Tasks no backend could serve (gen marked failed).
  std::string last_error;  ///< Last failure this backend produced ("" if none).
};

/// One backend's full pass over the handler set.
struct BackendRun {
  std::string backend;
  /// Generations in input order: all drivers first, then all sockets.
  std::vector<HandlerGeneration> generations;
  BackendReport report;
};

/// Result of one service invocation, runs ordered as requested.
struct ServiceResult {
  std::vector<BackendRun> runs;

  const BackendRun* Find(const std::string& backend) const {
    for (const auto& run : runs) {
      if (run.backend == backend) return &run;
    }
    return nullptr;
  }
};

/// The generation pool bound to one kernel index.
class SpecGenService {
 public:
  SpecGenService(const ksrc::DefinitionIndex* index, ServiceOptions options);

  /// Generates every driver and socket handler on every configured
  /// backend. Thread-count independent; safe to call repeatedly.
  ServiceResult Generate(
      const std::vector<extractor::DriverHandler>& drivers,
      const std::vector<extractor::SocketHandler>& sockets) const;

  const ServiceOptions& options() const { return options_; }

 private:
  const ksrc::DefinitionIndex* index_;
  ServiceOptions options_;
};

}  // namespace kernelgpt::spec_gen

#endif  // KERNELGPT_SPEC_GEN_SERVICE_H_
