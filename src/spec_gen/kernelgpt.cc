#include "spec_gen/kernelgpt.h"

#include <cctype>
#include <deque>
#include <functional>
#include <unordered_set>

#include "llm/engine.h"
#include "util/strings.h"

namespace kernelgpt::spec_gen {

using syzlang::Decl;
using syzlang::DeclKind;
using syzlang::Dir;
using syzlang::Field;
using syzlang::FlagsDef;
using syzlang::ResourceDef;
using syzlang::SpecFile;
using syzlang::SyscallDef;
using syzlang::Type;
using syzlang::TypeKind;

namespace {

/// Sanitizes a label into an identifier ("kvm-vm" -> "kvm_vm").
std::string
Sanitize(const std::string& s)
{
  std::string out;
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? c
                      : '_');
  }
  return out;
}

/// Walks every type in a declaration, applying `fn`.
void
VisitTypes(Type* t, const std::function<void(Type*)>& fn)
{
  fn(t);
  for (Type& e : t->elems) VisitTypes(&e, fn);
}

void
VisitDeclTypes(Decl* decl, const std::function<void(Type*)>& fn)
{
  switch (decl->kind) {
    case DeclKind::kSyscall:
      for (Field& p : decl->syscall.params) VisitTypes(&p.type, fn);
      break;
    case DeclKind::kStruct:
      for (Field& f : decl->struct_def.fields) VisitTypes(&f.type, fn);
      break;
    default:
      break;
  }
}

}  // namespace

std::string
ModuleIdFromPath(const std::string& path)
{
  std::string base = path;
  auto slash = base.rfind('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  if (util::EndsWith(base, ".c")) base = base.substr(0, base.size() - 2);
  return base;
}

KernelGpt::KernelGpt(const ksrc::DefinitionIndex* index, Options options,
                     llm::Backend* backend, const syzlang::ConstTable* consts)
    : index_(index),
      options_(std::move(options)),
      backend_(backend),
      owned_consts_(consts ? nullptr
                           : std::make_unique<syzlang::ConstTable>(
                                 index->BuildConstTable())),
      consts_(consts ? consts : owned_consts_.get()) {}

KernelGpt::KernelGpt(const ksrc::DefinitionIndex* index, Options options,
                     llm::TokenMeter* meter)
    : index_(index),
      options_(std::move(options)),
      owned_backend_(std::make_unique<llm::SimulatedBackend>(
          index, options_.profile, meter)),
      backend_(owned_backend_.get()),
      owned_consts_(std::make_unique<syzlang::ConstTable>(
          index->BuildConstTable())),
      consts_(owned_consts_.get()) {}

void
KernelGpt::MaybeInjectFlaw(const std::string& module, Decl* decl)
{
  const std::string name =
      decl->kind == DeclKind::kSyscall ? decl->syscall.FullName()
                                       : decl->Name();
  if (!profile().Decide("flaw:" + module + ":" + name,
                        profile().invalid_decl_rate)) {
    return;
  }
  // Two flaw modes, chosen deterministically: a bare C `int` type (the
  // Figure 4 error) or a hallucinated constant name.
  bool bare_int = profile().Decide("flawmode:" + module + ":" + name, 0.5);
  if (decl->kind == DeclKind::kStruct && !decl->struct_def.fields.empty()) {
    if (bare_int) {
      for (Field& f : decl->struct_def.fields) {
        if (f.type.kind == TypeKind::kInt) {
          f.type = Type::StructRef("int");
          return;
        }
      }
    }
    // Fall back to mangling a len target.
    for (Field& f : decl->struct_def.fields) {
      if (f.type.kind == TypeKind::kLen) {
        f.type.len_target += "_buf";
        return;
      }
    }
    if (!decl->struct_def.fields.empty()) {
      decl->struct_def.fields[0].type = Type::StructRef("int");
    }
    return;
  }
  if (decl->kind == DeclKind::kSyscall) {
    for (Field& p : decl->syscall.params) {
      if (p.type.kind == TypeKind::kConst &&
          !syzlang::ParseIntLiteral(p.type.const_name)) {
        p.type.const_name += "_SPEC";
        return;
      }
    }
  }
}

KernelGpt::TypeResult
KernelGpt::DescribeArgType(const std::string& sub_fn,
                           const std::string& module, SpecFile* spec)
{
  TypeResult result;
  if (sub_fn.empty()) return result;
  llm::ArgTypeAnalysis analysis =
      backend_->AnalyzeArgumentType(sub_fn, module);
  result.struct_name = analysis.arg_struct;
  result.dir = analysis.dir;
  if (analysis.arg_struct.empty()) return result;

  // Merge this command's observed semantics into the struct's record;
  // the first command to constrain a field wins.
  StructSemantics& semantics = struct_semantics_[analysis.arg_struct];
  for (const llm::FieldConstraint& c : analysis.constraints) {
    bool seen = false;
    for (const auto& prev : semantics.constraints) {
      if (prev.field == c.field) seen = true;
    }
    if (!seen) semantics.constraints.push_back(c);
  }
  for (const std::string& f : analysis.out_fields) {
    bool seen = false;
    for (const auto& prev : semantics.out_fields) {
      if (prev == f) seen = true;
    }
    if (!seen) semantics.out_fields.push_back(f);
  }
  analysis.constraints = semantics.constraints;
  analysis.out_fields = semantics.out_fields;

  // Recovery is deferred to DescribeRecordedStructs so that every command
  // sharing this struct contributes its semantics first.
  bool recorded = false;
  for (const auto& name : needed_structs_) {
    if (name == analysis.arg_struct) recorded = true;
  }
  if (!recorded) needed_structs_.push_back(analysis.arg_struct);
  (void)spec;
  return result;
}

void
KernelGpt::DescribeRecordedStructs(const std::string& module, SpecFile* spec)
{
  std::deque<std::pair<std::string, int>> queue;  // (name, nesting depth)
  for (const std::string& name : needed_structs_) queue.push_back({name, 0});
  while (!queue.empty()) {
    auto [name, depth] = queue.front();
    queue.pop_front();
    if (spec->FindStruct(name)) continue;
    if (!options_.iterative && depth >= 1) {
      // All-in-one ablation: nested types are not chased; emit a raw
      // byte-array placeholder struct so the spec still parses.
      syzlang::StructDef placeholder;
      placeholder.name = name;
      Field blob;
      blob.name = "raw";
      uint64_t size = index_->SizeOf("struct " + name);
      blob.type = Type::Array(Type::Int(8), size ? size : 8);
      placeholder.fields.push_back(std::move(blob));
      spec->Add(std::move(placeholder));
      continue;
    }
    const StructSemantics& semantics = struct_semantics_[name];
    llm::StructRecovery rec = backend_->RecoverStruct(
        name, module, semantics.constraints, semantics.out_fields);
    if (rec.def.fields.empty()) continue;
    for (const llm::FlagSetGuess& guess : rec.flag_sets) {
      if (!spec->FindFlags(guess.set_name)) {
        FlagsDef flags;
        flags.name = guess.set_name;
        flags.values = guess.member_macros;
        spec->Add(std::move(flags));
      }
    }
    Decl decl = Decl::Make(std::move(rec.def));
    MaybeInjectFlaw(module, &decl);
    spec->decls.push_back(std::move(decl));
    for (const llm::Unknown& unknown : rec.unknowns) {
      if (unknown.kind == llm::Unknown::Kind::kType) {
        queue.push_back({unknown.identifier, depth + 1});
      }
    }
  }
}

size_t
KernelGpt::DescribeIoctlChain(const std::string& ioctl_fn,
                              const std::string& fd_resource,
                              const std::string& module, SpecFile* spec)
{
  struct WorkItem {
    std::string fn;
    std::string usage;
    int depth;
  };
  std::deque<WorkItem> worklist;
  worklist.push_back({ioctl_fn,
                      ioctl_fn + "(struct file *file, unsigned int command, "
                                 "unsigned long u)",
                      1});
  std::unordered_set<std::string> visited;
  std::vector<llm::CommandFinding> commands;

  // All-in-one mode: everything must fit one prompt; track a code budget
  // and stop including functions beyond it.
  size_t code_budget =
      options_.iterative ? SIZE_MAX : profile().context_tokens / 4;
  size_t code_used = 0;

  while (!worklist.empty()) {
    WorkItem item = worklist.front();
    worklist.pop_front();
    if (!visited.insert(item.fn).second) continue;
    if (options_.iterative && item.depth > options_.max_iter) continue;
    if (!options_.iterative) {
      code_used += util::ApproxTokenCount(index_->ExtractCode(item.fn));
      if (code_used > code_budget) continue;  // Fell out of the context.
    }
    llm::IdentifierAnalysis analysis =
        backend_->AnalyzeIdentifiers(item.fn, item.usage, module, item.depth);
    for (auto& cmd : analysis.commands) commands.push_back(std::move(cmd));
    for (const llm::Unknown& unknown : analysis.unknowns) {
      worklist.push_back({unknown.identifier, unknown.usage, item.depth + 1});
    }
  }

  size_t described = 0;
  for (const llm::CommandFinding& cmd : commands) {
    TypeResult type = DescribeArgType(cmd.sub_function, module, spec);

    // Stage 3: does this command create a new resource?
    std::string ret_resource;
    if (options_.iterative && !cmd.sub_function.empty()) {
      llm::DependencyAnalysis dep =
          backend_->AnalyzeDependencies(cmd.sub_function, module);
      for (const auto& created : dep.created) {
        ret_resource = "fd_" + Sanitize(created.label);
        if (!spec->FindResource(ret_resource)) {
          spec->Add(ResourceDef{ret_resource, "fd"});
          // Find the handler table the new fd is bound to and describe
          // its commands against the new resource.
          const ksrc::CVarDef* fops = index_->FindVar(created.fops_var);
          if (fops) {
            std::string sub_ioctl = fops->InitFor("unlocked_ioctl");
            if (sub_ioctl.empty()) sub_ioctl = fops->InitFor("ioctl");
            if (!sub_ioctl.empty()) {
              described += DescribeIoctlChain(sub_ioctl, ret_resource, module,
                                              spec);
            }
          }
        }
        break;  // One created resource per command in practice.
      }
    }

    SyscallDef call;
    call.name = "ioctl";
    call.variant = cmd.macro;
    call.params.push_back({"fd", Type::Resource(fd_resource), false});
    call.params.push_back({"cmd", Type::Const(cmd.macro), false});
    if (type.struct_name.empty()) {
      call.params.push_back({"arg", Type::ConstValue(0, 64), false});
    } else {
      call.params.push_back(
          {"arg", Type::Ptr(type.dir, Type::StructRef(type.struct_name)),
           false});
    }
    if (!ret_resource.empty()) call.returns_resource = ret_resource;

    Decl decl = Decl::Make(std::move(call));
    MaybeInjectFlaw(module, &decl);
    // Skip duplicates (two dispatch paths can surface the same macro).
    if (!spec->FindSyscall(decl.syscall.FullName())) {
      spec->decls.push_back(std::move(decl));
      ++described;
    }
  }
  return described;
}

HandlerGeneration
KernelGpt::GenerateForDriver(const extractor::DriverHandler& handler)
{
  HandlerGeneration out;
  out.module = ModuleIdFromPath(handler.file_path);
  out.spec.origin = "kernelgpt:" + out.module;
  struct_semantics_.clear();
  needed_structs_.clear();

  std::string node = backend_->InferDeviceNode(handler, out.module);
  if (node.empty()) {
    out.status = GenStatus::kFailed;
    return out;
  }

  const std::string res = "fd_" + out.module;
  out.spec.Add(ResourceDef{res, "fd"});

  SyscallDef open;
  open.name = "openat";
  open.variant = out.module;
  open.params.push_back({"fd", Type::ConstValue(0, 64), false});
  open.params.push_back({"file", Type::Ptr(Dir::kIn, Type::String(node)),
                         false});
  open.params.push_back({"flags", Type::ConstValue(2, 32), false});
  open.params.push_back({"mode", Type::ConstValue(0, 32), false});
  open.returns_resource = res;
  out.spec.Add(std::move(open));

  size_t described = DescribeIoctlChain(handler.ioctl_fn, res, out.module,
                                        &out.spec);
  DescribeRecordedStructs(out.module, &out.spec);
  if (described == 0) {
    out.status = GenStatus::kFailed;
    return out;
  }
  ValidateAndRepair(&out);
  return out;
}

HandlerGeneration
KernelGpt::GenerateForSocket(const extractor::SocketHandler& handler)
{
  HandlerGeneration out;
  out.module = ModuleIdFromPath(handler.file_path);
  out.is_socket = true;
  out.spec.origin = "kernelgpt:" + out.module;
  struct_semantics_.clear();
  needed_structs_.clear();
  if (!profile().analyzes_sockets) {
    out.status = GenStatus::kFailed;
    return out;
  }

  const std::string res = "sock_" + out.module;
  out.spec.Add(ResourceDef{res, "fd"});

  llm::SocketCreateAnalysis create =
      backend_->AnalyzeSocketCreate(handler.create_fn, out.module);
  SyscallDef sock_call;
  sock_call.name = "socket";
  sock_call.variant = out.module;
  sock_call.params.push_back(
      {"domain", Type::Const(handler.family_expr), false});
  sock_call.params.push_back(
      {"type", create.type_macro.empty() ? Type::ConstValue(2, 32)
                                         : Type::Const(create.type_macro),
       false});
  sock_call.params.push_back(
      {"proto", Type::ConstValue(create.protocol, 32), false});
  sock_call.returns_resource = res;
  out.spec.Add(std::move(sock_call));

  size_t described = 0;

  // setsockopt / getsockopt chains.
  struct OptChain {
    const std::string* fn;
    const char* call_name;
    Dir default_dir;
  };
  for (const OptChain& chain :
       {OptChain{&handler.setsockopt_fn, "setsockopt", Dir::kIn},
        OptChain{&handler.getsockopt_fn, "getsockopt", Dir::kOut}}) {
    if (chain.fn->empty()) continue;
    llm::IdentifierAnalysis analysis = backend_->AnalyzeIdentifiers(
        *chain.fn, *chain.fn + "(sock, level, optname, optval, optlen)",
        out.module, 1);
    std::string level = analysis.guard_level_macro.empty()
                            ? "0"
                            : analysis.guard_level_macro;
    for (const llm::CommandFinding& opt : analysis.commands) {
      TypeResult type = DescribeArgType(opt.sub_function, out.module,
                                        &out.spec);
      SyscallDef call;
      call.name = chain.call_name;
      call.variant = out.module + "_" + opt.macro;
      call.params.push_back({"fd", Type::Resource(res), false});
      call.params.push_back({"level", Type::Const(level), false});
      call.params.push_back({"optname", Type::Const(opt.macro), false});
      Type payload = type.struct_name.empty()
                         ? Type::Int(32)
                         : Type::StructRef(type.struct_name);
      call.params.push_back(
          {"optval", Type::Ptr(chain.default_dir, payload), false});
      call.params.push_back({"optlen", Type::Len("optval", 32), false});
      Decl decl = Decl::Make(std::move(call));
      MaybeInjectFlaw(out.module, &decl);
      if (!out.spec.FindSyscall(decl.syscall.FullName())) {
        out.spec.decls.push_back(std::move(decl));
        ++described;
      }
    }
  }

  // Data-path operations.
  struct DataOp {
    const std::string* fn;
    const char* syscall;
  };
  for (const DataOp& op : {DataOp{&handler.bind_fn, "bind"},
                           DataOp{&handler.connect_fn, "connect"},
                           DataOp{&handler.sendmsg_fn, "sendto"},
                           DataOp{&handler.recvmsg_fn, "recvfrom"},
                           DataOp{&handler.listen_fn, "listen"},
                           DataOp{&handler.accept_fn, "accept"}}) {
    if (op.fn->empty()) continue;
    const std::string name(op.syscall);
    SyscallDef call;
    call.name = name;
    call.variant = out.module;
    call.params.push_back({"fd", Type::Resource(res), false});
    if (name == "bind" || name == "connect") {
      TypeResult type = DescribeArgType(*op.fn, out.module, &out.spec);
      Type addr = type.struct_name.empty()
                      ? Type::Array(Type::Int(8), 16)
                      : Type::StructRef(type.struct_name);
      call.params.push_back({"addr", Type::Ptr(Dir::kIn, addr), false});
      call.params.push_back({"addrlen", Type::Len("addr", 32), false});
    } else if (name == "sendto") {
      TypeResult type = DescribeArgType(*op.fn, out.module, &out.spec);
      call.params.push_back(
          {"buf", Type::Ptr(Dir::kIn, Type::Array(Type::Int(8))), false});
      call.params.push_back({"len", Type::Len("buf", 64), false});
      call.params.push_back({"flags", Type::ConstValue(0, 32), false});
      Type addr = type.struct_name.empty()
                      ? Type::Array(Type::Int(8), 16)
                      : Type::StructRef(type.struct_name);
      call.params.push_back({"addr", Type::Ptr(Dir::kIn, addr), false});
      call.params.push_back({"addrlen", Type::Len("addr", 32), false});
    } else if (name == "recvfrom") {
      call.params.push_back(
          {"buf", Type::Ptr(Dir::kOut, Type::Array(Type::Int(8))), false});
      call.params.push_back({"len", Type::Len("buf", 64), false});
    } else if (name == "listen") {
      call.params.push_back({"backlog", Type::ConstValue(0, 32), false});
    } else if (name == "accept") {
      call.params.push_back({"peer", Type::ConstValue(0, 64), false});
      call.params.push_back({"peerlen", Type::ConstValue(0, 64), false});
      call.returns_resource = res;
    }
    Decl decl = Decl::Make(std::move(call));
    MaybeInjectFlaw(out.module, &decl);
    if (!out.spec.FindSyscall(decl.syscall.FullName())) {
      out.spec.decls.push_back(std::move(decl));
      ++described;
    }
  }

  DescribeRecordedStructs(out.module, &out.spec);
  if (described == 0) {
    out.status = GenStatus::kFailed;
    return out;
  }
  ValidateAndRepair(&out);
  return out;
}

bool
KernelGpt::RepairRound(SpecFile* spec,
                       const std::vector<syzlang::ValidationError>& errors,
                       const std::string& module)
{
  (void)module;
  bool any = false;
  for (const syzlang::ValidationError& error : errors) {
    // Locate the errored declaration.
    for (Decl& decl : spec->decls) {
      std::string decl_name = decl.kind == DeclKind::kSyscall
                                  ? decl.syscall.FullName()
                                  : decl.Name();
      if (decl_name != error.decl) continue;
      switch (error.kind) {
        case syzlang::ErrorKind::kUnknownType:
          VisitDeclTypes(&decl, [&](Type* t) {
            if (t->kind == TypeKind::kStructRef &&
                t->ref_name == error.subject) {
              *t = Type::Int(32);
            }
          });
          any = true;
          break;
        case syzlang::ErrorKind::kUnknownConst: {
          // Strip the hallucinated suffix if the prefix resolves.
          std::string fixed = error.subject;
          auto us = fixed.rfind('_');
          if (us != std::string::npos) fixed = fixed.substr(0, us);
          if (!consts_->Has(fixed)) break;
          VisitDeclTypes(&decl, [&](Type* t) {
            if (t->kind == TypeKind::kConst &&
                t->const_name == error.subject) {
              t->const_name = fixed;
            }
          });
          // The variant name may carry the same hallucination.
          if (decl.kind == DeclKind::kSyscall &&
              decl.syscall.variant == error.subject) {
            decl.syscall.variant = fixed;
          }
          any = true;
          break;
        }
        case syzlang::ErrorKind::kBadLenTarget: {
          // Re-point the len to an existing sibling buffer field.
          if (decl.kind != DeclKind::kStruct) break;
          std::string target;
          for (const Field& f : decl.struct_def.fields) {
            if (f.type.kind == TypeKind::kArray) target = f.name;
          }
          if (target.empty()) break;
          for (Field& f : decl.struct_def.fields) {
            if (f.type.kind == TypeKind::kLen &&
                f.type.len_target == error.subject) {
              f.type.len_target = target;
              any = true;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return any;
}

void
KernelGpt::ValidateAndRepair(HandlerGeneration* out)
{
  syzlang::ValidationResult v = syzlang::Validate(out->spec, *consts_);
  out->initial_errors = v.errors;
  if (v.ok()) {
    out->status = GenStatus::kValidDirect;
    return;
  }
  // Whether this handler's flaws are within the model's repair reach is
  // one deterministic per-handler draw (the paper's tail of handlers that
  // never validate despite repair attempts).
  // "v39" is a calibration constant of the simulated history: it selects
  // which concrete handlers fall into the unrepairable tail (see
  // DESIGN.md on deterministic error injection).
  if (!profile().Decide("repairable/v39|" + out->module,
                        profile().repair_success_rate)) {
    out->status = GenStatus::kFailed;
    out->remaining_errors = v.errors;
    return;
  }
  for (int round = 0; round < options_.repair_rounds; ++round) {
    RepairRound(&out->spec, v.errors, out->module);
    v = syzlang::Validate(out->spec, *consts_);
    if (v.ok()) {
      out->status = GenStatus::kRepaired;
      return;
    }
  }
  out->status = GenStatus::kFailed;
  out->remaining_errors = v.errors;
}

}  // namespace kernelgpt::spec_gen
