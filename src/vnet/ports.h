/// \file
/// The inet port namespace of the vnet stack. One PortSpace per address
/// family instance tracks which local ports are bound and which linger
/// in TIME_WAIT after an active close, and hands out ephemeral ports
/// from a deterministic allocator — reseeded to a constant on every
/// module reset, so campaigns are bit-identical across worker counts
/// and save/resume boundaries.

#ifndef KERNELGPT_VNET_PORTS_H_
#define KERNELGPT_VNET_PORTS_H_

#include <cstdint>
#include <set>
#include <string>

#include "util/rng.h"

namespace kernelgpt::vnet {

/// Port-namespace bookkeeping: bound ports, TIME_WAIT residue, and the
/// ephemeral allocator. Connection lookup (port -> socket) lives with
/// the owning family; PortSpace only answers namespace questions.
class PortSpace {
 public:
  /// First ephemeral port, matching the classic IANA dynamic range.
  static constexpr uint16_t kEphemeralBase = 49152;
  /// Ephemeral ports are drawn from [base, base + span).
  static constexpr uint16_t kEphemeralSpan = 4096;

  explicit PortSpace(uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Restores the boot state: no ports bound, no TIME_WAIT residue, and
  /// the ephemeral allocator back at its seed, so the Nth allocation of
  /// every program draws the same port.
  void Reset();

  bool IsBound(uint16_t port) const { return bound_.count(port) != 0; }
  bool InTimeWait(uint16_t port) const { return time_wait_.count(port) != 0; }

  void Bind(uint16_t port) { bound_.insert(port); }
  void Unbind(uint16_t port) { bound_.erase(port); }

  /// Moves a port from bound to TIME_WAIT (active close completed).
  void EnterTimeWait(uint16_t port);

  /// Clears TIME_WAIT residue for one port (reuse allowed by policy).
  void ClearTimeWait(uint16_t port) { time_wait_.erase(port); }

  /// Deterministically picks a free ephemeral port (never 0, never a
  /// bound or TIME_WAIT port). Falls back to a linear probe when random
  /// draws keep colliding, so allocation always terminates.
  uint16_t AllocateEphemeral();

  bool Idle() const { return bound_.empty() && time_wait_.empty(); }

  /// Normalized summary for the differential oracle's module-state
  /// shape, e.g. "bound=[5,49152] tw=[8]". std::set iteration order
  /// makes it independent of bind order and fd numbering.
  std::string Brief() const;

 private:
  uint64_t seed_;
  util::Rng rng_;
  std::set<uint16_t> bound_;
  std::set<uint16_t> time_wait_;
};

}  // namespace kernelgpt::vnet

#endif  // KERNELGPT_VNET_PORTS_H_
