/// \file
/// TCP connection states of the vnet stack — the classic RFC 793 state
/// machine minus the timer-driven states the deterministic, synchronous
/// model cannot reach (CLOSING is folded into the simultaneous-close
/// handling; TIME_WAIT is modeled as a per-port namespace property that
/// outlives the socket, see ports.h).

#ifndef KERNELGPT_VNET_TCP_STATE_H_
#define KERNELGPT_VNET_TCP_STATE_H_

#include <cstdint>

namespace kernelgpt::vnet {

/// States of one TCP endpoint. Transitions are claimed as dense coverage
/// blocks (role "trans", detail "FROM->TO") so a fuzzing campaign's
/// progress through the state machine is visible to the coverage signal.
enum class TcpState : uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kTimeWait,
};

/// Canonical uppercase name, used in coverage tuple details, crash
/// titles, and the module-state shape the differential oracle compares.
constexpr const char*
TcpStateName(TcpState s)
{
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT1";
    case TcpState::kFinWait2: return "FIN_WAIT2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

}  // namespace kernelgpt::vnet

#endif  // KERNELGPT_VNET_TCP_STATE_H_
