#include "vnet/inet.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "vkernel/kernel.h"
#include "vnet/ports.h"
#include "vnet/tcp_state.h"

namespace kernelgpt::vnet {

using drivers::BlockLayout;
using drivers::CheckSpec;
using drivers::SocketOpSpec;
using drivers::SocketSpec;
using drivers::SockOptSpec;
using drivers::StructLayout;
using vkernel::Buffer;
using vkernel::ExecContext;
using vkernel::KernelModel;

VnetPolicy
VnetPolicy::FromModel(const vkernel::KernelModel* model)
{
  VnetPolicy p;
  if (const auto* kernel = dynamic_cast<const vkernel::Kernel*>(model)) {
    p.relisten_ok = kernel->policy().net_relisten_ok;
    p.rebind_ok = kernel->policy().net_rebind_ok;
    p.reuse_timewait_ok = kernel->policy().net_reuse_timewait_ok;
  }
  return p;
}

namespace {

// ---------------------------------------------------------------------------
// Layout extension tuples
// ---------------------------------------------------------------------------
// Claimed in this fixed order after the spec's canonical ForSocket walk,
// so the runtime, tests, and the experiment harness resolve identical
// dense ids (see BlockLayout::Extend).

struct TransitionTuple {
  TcpState from;
  TcpState to;
};

constexpr TransitionTuple kTcpTransitions[] = {
    {TcpState::kClosed, TcpState::kListen},
    {TcpState::kClosed, TcpState::kSynSent},
    {TcpState::kSynSent, TcpState::kEstablished},
    {TcpState::kListen, TcpState::kSynRcvd},
    {TcpState::kSynRcvd, TcpState::kEstablished},
    {TcpState::kEstablished, TcpState::kFinWait1},
    {TcpState::kFinWait1, TcpState::kFinWait2},
    {TcpState::kFinWait2, TcpState::kTimeWait},
    {TcpState::kEstablished, TcpState::kCloseWait},
    {TcpState::kCloseWait, TcpState::kLastAck},
    {TcpState::kLastAck, TcpState::kClosed},
};

std::string
TransitionDetail(const TransitionTuple& t)
{
  return std::string(TcpStateName(t.from)) + "->" + TcpStateName(t.to);
}

/// TCP edge blocks: behaviour corners beyond plain state transitions.
enum TcpEdge {
  kTcpBindEphemeral,
  kTcpBindConflict,
  kTcpBindTimewaitRefused,
  kTcpBindTimewaitReused,
  kTcpBindRebound,
  kTcpListenAgain,
  kTcpListenAutobind,
  kTcpConnectAutobind,
  kTcpConnectRefused,
  kTcpConnectBacklogOverflow,
  kTcpSendReset,
  kTcpSendFlowControl,
  kTcpRecvEof,
  kTcpViolation,
  kTcpEdgeCount,
};

constexpr const char* kTcpEdgeNames[kTcpEdgeCount] = {
    "bind-ephemeral",
    "bind-conflict",
    "bind-timewait-refused",
    "bind-timewait-reused",
    "bind-rebound",
    "listen-again",
    "listen-autobind",
    "connect-autobind",
    "connect-refused",
    "connect-backlog-overflow",
    "send-reset",
    "send-flow-control",
    "recv-eof",
    "violation",
};

enum UdpEdge {
  kUdpBindEphemeral,
  kUdpBindConflict,
  kUdpBindRebound,
  kUdpConnectDisconnect,
  kUdpSendNoAddr,
  kUdpSendNoReceiver,
  kUdpSendDrop,
  kUdpSendCorked,
  kUdpUncorkFlush,
  kUdpViolation,
  kUdpEdgeCount,
};

constexpr const char* kUdpEdgeNames[kUdpEdgeCount] = {
    "bind-ephemeral",
    "bind-conflict",
    "bind-rebound",
    "connect-disconnect",
    "send-noaddr",
    "send-noreceiver",
    "send-drop",
    "send-corked",
    "uncork-flush",
    "violation",
};

// ---------------------------------------------------------------------------
// Spec-check evaluation (mirrors model_runtime's CheckPasses)
// ---------------------------------------------------------------------------

uint64_t
ReadField(const Buffer& buf, const StructLayout& layout,
          const std::string& field)
{
  const drivers::FieldLayout* fl = layout.Find(field);
  if (!fl) return 0;
  return buf.ReadScalar(fl->offset, fl->size > 8 ? 8 : fl->size);
}

bool
CheckOk(const CheckSpec& check, const Buffer& buf, const StructLayout& layout)
{
  uint64_t raw = ReadField(buf, layout, check.field);
  switch (check.kind) {
    case CheckSpec::Kind::kRange: {
      int64_t v = static_cast<int64_t>(raw);
      return v >= check.min && v <= check.max;
    }
    case CheckSpec::Kind::kEquals:
      return raw == check.value;
    case CheckSpec::Kind::kNonZero:
      return raw != 0;
    case CheckSpec::Kind::kLenBound:
      return true;  // Not used by the vnet specs.
  }
  return false;
}

/// One socket-level op with its precomputed dense blocks, mirroring
/// model_runtime's OpRuntime so vnet claims the same ids the spec's
/// declarative runtime would.
struct OpRt {
  const SocketOpSpec* spec = nullptr;
  uint64_t op_block = 0;
  std::vector<uint64_t> check_blocks;
  std::vector<uint64_t> deep_blocks;
};

OpRt
BuildOpRt(const BlockLayout& blocks, const char* op, const SocketOpSpec& spec)
{
  OpRt rt;
  rt.spec = &spec;
  rt.op_block = blocks.IdOf("op", op, 0);
  uint32_t idx = 1;
  for (const CheckSpec& check : spec.checks) {
    rt.check_blocks.push_back(
        blocks.IdOf(std::string("op-check-") + op, check.field, idx++));
  }
  for (int i = 0; i < spec.deep_blocks; ++i) {
    rt.deep_blocks.push_back(blocks.IdOf(std::string("op-deep-") + op, "",
                                         static_cast<uint32_t>(i)));
  }
  return rt;
}

/// One sockopt with its SET_/GET_ pseudo-command blocks and payload
/// layout; the function-table slot (sock_ops index) is bound by the
/// owning family against its static dispatch table.
struct OptRt {
  const SockOptSpec* opt = nullptr;
  StructLayout layout;
  uint64_t set_block = 0;
  uint64_t get_block = 0;
  std::vector<uint64_t> set_checks;
  std::vector<uint64_t> set_deep;
  std::vector<uint64_t> get_deep;
  int ops_index = -1;  ///< Row in the family's sock_ops table.
};

OptRt
BuildOptRt(const BlockLayout& blocks, const SockOptSpec& opt,
           const SocketSpec& spec)
{
  OptRt rt;
  rt.opt = &opt;
  const drivers::StructSpec* arg = spec.FindStruct(opt.arg_struct);
  if (arg) rt.layout = drivers::ComputeLayout(*arg, spec.structs);
  rt.set_block = blocks.IdOf("cmd", "SET_" + opt.macro, 0);
  rt.get_block = blocks.IdOf("cmd", "GET_" + opt.macro, 0);
  for (uint32_t i = 1; i <= opt.checks.size(); ++i) {
    rt.set_checks.push_back(blocks.IdOf("check", "SET_" + opt.macro, i));
  }
  for (int i = 0; i < opt.deep_blocks; ++i) {
    rt.set_deep.push_back(
        blocks.IdOf("deep", "SET_" + opt.macro, static_cast<uint32_t>(i)));
    rt.get_deep.push_back(
        blocks.IdOf("deep", "GET_" + opt.macro, static_cast<uint32_t>(i)));
  }
  return rt;
}

/// Runs the generic pre-op validation: addr-struct presence/size and the
/// spec's checks (claiming their blocks). Returns 0 or negative errno.
long
RunChecks(const OpRt& rt, const Buffer& addr, const StructLayout& layout,
          bool have_layout, ExecContext& ctx)
{
  const SocketOpSpec& spec = *rt.spec;
  if (!have_layout || spec.checks.empty()) return 0;
  if (addr.size() < layout.total_size) return -vkernel::kEFAULT;
  for (size_t k = 0; k < spec.checks.size(); ++k) {
    if (!CheckOk(spec.checks[k], addr, layout)) return -vkernel::kEINVAL;
    ctx.Cover(rt.check_blocks[k]);
  }
  return 0;
}

void
CoverAll(const std::vector<uint64_t>& blocks, ExecContext& ctx)
{
  for (uint64_t b : blocks) ctx.Cover(b);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

constexpr uint64_t kTcpPortSeed = 0x7c90a11c0de00001ULL;
constexpr uint64_t kUdpPortSeed = 0x7c90a11c0de00002ULL;
constexpr int kTcpStateCount = 10;

/// One TCP endpoint. Shared between the owning fd handler, the peer's
/// weak link, a listener's accept queue, and the family's half-closed
/// table — whichever outlives the others keeps the state coherent.
struct TcpConn {
  TcpState state = TcpState::kClosed;
  uint16_t local_port = 0;
  uint16_t remote_port = 0;
  /// True when this endpoint allocated/bound local_port and owns its
  /// namespace entry (accepted sockets share the listener's port and
  /// never touch the namespace).
  bool owns_port = false;
  bool fin_rcvd = false;  ///< Peer's FIN arrived; rx drains to EOF.

  // Option state (sock_ops table targets).
  bool nodelay = false;
  uint32_t maxseg = 536;
  bool reuse_timewait = false;  ///< SO_REUSEADDR analog for TIME_WAIT.
  uint32_t backlog = 4;
  uint32_t queue_cap = 256;  ///< rx byte budget (flow-control window).

  std::deque<uint8_t> rx;
  std::weak_ptr<TcpConn> peer;
  std::deque<std::shared_ptr<TcpConn>> accept_q;
};

class TcpFamily;

class TcpSocket : public vkernel::SocketHandler {
 public:
  TcpSocket(TcpFamily* family, std::shared_ptr<TcpConn> conn)
      : family_(family), conn_(std::move(conn)) {}

  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  KernelModel& kernel) override;
  long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                  KernelModel& kernel) override;
  long Bind(const Buffer& addr, KernelModel& kernel) override;
  long Connect(const Buffer& addr, KernelModel& kernel) override;
  long SendTo(const Buffer& data, const Buffer& addr,
              KernelModel& kernel) override;
  long RecvFrom(Buffer* data, KernelModel& kernel) override;
  long Listen(KernelModel& kernel) override;
  long Accept(KernelModel& kernel) override;
  void Release(KernelModel& kernel) override;
  std::string StateBrief() const override;

  TcpConn& conn() { return *conn_; }
  const std::shared_ptr<TcpConn>& conn_ptr() const { return conn_; }

 private:
  TcpFamily* family_;
  std::shared_ptr<TcpConn> conn_;
  bool released_ = false;  ///< Release is idempotent (dup'd fds).
};

/// sock_ops row for one integer-payload TCP option (the loliOS-style
/// function-table dispatch); TCP_INFO's multi-field get is special-cased
/// by the family.
struct TcpOptOps {
  const char* macro;
  void (*set)(TcpConn&, uint64_t);
  uint64_t (*get)(const TcpConn&);
};

const TcpOptOps kTcpSockOps[] = {
    {"TCP_NODELAY", [](TcpConn& c, uint64_t v) { c.nodelay = v != 0; },
     [](const TcpConn& c) { return static_cast<uint64_t>(c.nodelay); }},
    {"TCP_MAXSEG",
     [](TcpConn& c, uint64_t v) { c.maxseg = static_cast<uint32_t>(v); },
     [](const TcpConn& c) { return static_cast<uint64_t>(c.maxseg); }},
    {"TCP_WINDOW_CLAMP",
     [](TcpConn& c, uint64_t v) { c.queue_cap = static_cast<uint32_t>(v); },
     [](const TcpConn& c) { return static_cast<uint64_t>(c.queue_cap); }},
    {"TCP_INFO", nullptr, nullptr},
    {"TCP_REUSE_TIMEWAIT",
     [](TcpConn& c, uint64_t v) { c.reuse_timewait = v != 0; },
     [](const TcpConn& c) { return static_cast<uint64_t>(c.reuse_timewait); }},
    {"TCP_BACKLOG",
     [](TcpConn& c, uint64_t v) { c.backlog = static_cast<uint32_t>(v); },
     [](const TcpConn& c) { return static_cast<uint64_t>(c.backlog); }},
};

class TcpFamily : public vkernel::SocketFamily {
 public:
  TcpFamily(const SocketSpec* spec, VnetPolicy policy)
      : spec_(spec),
        policy_(policy),
        blocks_(TcpBlockLayout(*spec)),
        create_block_(blocks_.IdOf("create", "", 0)),
        ports_(kTcpPortSeed) {
    const drivers::StructSpec* addr = spec->FindStruct(spec->addr_struct);
    if (addr) {
      addr_layout_ = drivers::ComputeLayout(*addr, spec->structs);
      have_addr_ = true;
    }
    bind_ = BuildOpRt(blocks_, "bind", spec->bind);
    connect_ = BuildOpRt(blocks_, "connect", spec->connect);
    sendto_ = BuildOpRt(blocks_, "sendto", spec->sendto);
    recvfrom_ = BuildOpRt(blocks_, "recvfrom", spec->recvfrom);
    listen_ = BuildOpRt(blocks_, "listen", spec->listen);
    accept_ = BuildOpRt(blocks_, "accept", spec->accept);
    for (const SockOptSpec& opt : spec->sockopts) {
      OptRt rt = BuildOptRt(blocks_, opt, *spec);
      rt.ops_index = -1;
      for (size_t i = 0; i < sizeof(kTcpSockOps) / sizeof(kTcpSockOps[0]);
           ++i) {
        if (opt.macro == kTcpSockOps[i].macro) {
          rt.ops_index = static_cast<int>(i);
          break;
        }
      }
      if (rt.ops_index < 0) {
        util::Panic("vnet: tcp sockopt missing from sock_ops table: " +
                    opt.macro);
      }
      opts_.push_back(std::move(rt));
    }
    for (const TransitionTuple& t : kTcpTransitions) {
      trans_[static_cast<int>(t.from)][static_cast<int>(t.to)] =
          blocks_.IdOf("trans", TransitionDetail(t), 0);
    }
    for (int e = 0; e < kTcpEdgeCount; ++e) {
      edges_[e] = blocks_.IdOf("edge", kTcpEdgeNames[e], 0);
    }
  }

  std::string Name() const override { return spec_->id; }
  uint64_t Domain() const override { return spec_->domain; }

  std::shared_ptr<vkernel::SocketHandler> Create(uint64_t type,
                                                 uint64_t protocol,
                                                 KernelModel& kernel,
                                                 long* err) override {
    if (type != spec_->sock_type ||
        (protocol != 0 && protocol != spec_->protocol)) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    kernel.context().Cover(create_block_);
    return std::make_shared<TcpSocket>(this, std::make_shared<TcpConn>());
  }

  void ResetState() override {
    bound_.clear();
    half_closed_.clear();
    ports_.Reset();
  }

  std::string StateBrief() const override { return ports_.Brief(); }

  // -- Op implementations (called by TcpSocket) ----------------------------

  long DoBind(TcpSocket& s, const Buffer& addr, ExecContext& ctx) {
    ctx.Cover(bind_.op_block);
    long rc = RunChecks(bind_, addr, addr_layout_, have_addr_, ctx);
    if (rc != 0) return rc;
    TcpConn& c = s.conn();
    if (c.state != TcpState::kClosed) return -vkernel::kEINVAL;
    if (c.local_port != 0) {
      if (!policy_.rebind_ok) return -vkernel::kEINVAL;
      FreePort(s.conn_ptr());
      Edge(kTcpBindRebound, ctx);
    }
    uint16_t port = PortOf(addr);
    if (port == 0) {
      port = ports_.AllocateEphemeral();
      if (port == 0) return -vkernel::kEADDRINUSE;
      Edge(kTcpBindEphemeral, ctx);
    } else {
      if (ports_.IsBound(port)) {
        Edge(kTcpBindConflict, ctx);
        return -vkernel::kEADDRINUSE;
      }
      if (ports_.InTimeWait(port)) {
        if (!policy_.reuse_timewait_ok && !c.reuse_timewait) {
          Edge(kTcpBindTimewaitRefused, ctx);
          return -vkernel::kEADDRINUSE;
        }
        ports_.ClearTimeWait(port);
        Edge(kTcpBindTimewaitReused, ctx);
      }
    }
    ports_.Bind(port);
    bound_[port] = s.conn_ptr();
    c.local_port = port;
    c.owns_port = true;
    CoverAll(bind_.deep_blocks, ctx);
    return 0;
  }

  long DoListen(TcpSocket& s, ExecContext& ctx) {
    ctx.Cover(listen_.op_block);
    TcpConn& c = s.conn();
    switch (c.state) {
      case TcpState::kClosed: {
        if (c.local_port == 0) {
          uint16_t port = ports_.AllocateEphemeral();
          if (port == 0) return -vkernel::kEADDRINUSE;
          ports_.Bind(port);
          c.local_port = port;
          c.owns_port = true;
          Edge(kTcpListenAutobind, ctx);
        }
        bound_[c.local_port] = s.conn_ptr();
        Trans(c, TcpState::kListen, ctx);
        CoverAll(listen_.deep_blocks, ctx);
        return 0;
      }
      case TcpState::kListen:
        if (!policy_.relisten_ok) return -vkernel::kEINVAL;
        Edge(kTcpListenAgain, ctx);
        return 0;
      default:
        return Violate("listen", c.state, ctx);
    }
  }

  long DoConnect(TcpSocket& s, const Buffer& addr, ExecContext& ctx) {
    ctx.Cover(connect_.op_block);
    long rc = RunChecks(connect_, addr, addr_layout_, have_addr_, ctx);
    if (rc != 0) return rc;
    TcpConn& c = s.conn();
    switch (c.state) {
      case TcpState::kListen:
        return Violate("connect", c.state, ctx);
      case TcpState::kSynSent:
      case TcpState::kSynRcvd:
      case TcpState::kEstablished:
      case TcpState::kCloseWait:
        return -vkernel::kEISCONN;
      case TcpState::kClosed:
        break;
      default:
        return -vkernel::kEINVAL;
    }
    if (c.local_port == 0) {
      uint16_t port = ports_.AllocateEphemeral();
      if (port == 0) return -vkernel::kEADDRINUSE;
      ports_.Bind(port);
      c.local_port = port;
      c.owns_port = true;
      Edge(kTcpConnectAutobind, ctx);
    }
    uint16_t dest = PortOf(addr);
    std::shared_ptr<TcpConn> listener;
    auto it = bound_.find(dest);
    if (it != bound_.end()) listener = it->second.lock();
    if (!listener || listener->state != TcpState::kListen) {
      Edge(kTcpConnectRefused, ctx);
      return -vkernel::kECONNREFUSED;
    }
    if (listener->accept_q.size() >= listener->backlog) {
      Edge(kTcpConnectBacklogOverflow, ctx);
      return -vkernel::kECONNREFUSED;
    }
    Trans(c, TcpState::kSynSent, ctx);
    // Loopback handshake: spawn the passive endpoint, establish both
    // sides synchronously, and queue it for accept().
    auto peer = std::make_shared<TcpConn>();
    peer->local_port = dest;
    peer->remote_port = c.local_port;
    peer->owns_port = false;  // Shares the listener's namespace entry.
    peer->queue_cap = listener->queue_cap;
    peer->state = TcpState::kListen;
    Trans(*peer, TcpState::kSynRcvd, ctx);
    Trans(*peer, TcpState::kEstablished, ctx);
    peer->peer = s.conn_ptr();
    c.peer = peer;
    c.remote_port = dest;
    listener->accept_q.push_back(std::move(peer));
    Trans(c, TcpState::kEstablished, ctx);
    CoverAll(connect_.deep_blocks, ctx);
    return 0;
  }

  long DoAccept(TcpSocket& s, KernelModel& kernel) {
    ExecContext& ctx = kernel.context();
    ctx.Cover(accept_.op_block);
    TcpConn& c = s.conn();
    switch (c.state) {
      case TcpState::kListen: {
        if (c.accept_q.empty()) return -vkernel::kEAGAIN;
        std::shared_ptr<TcpConn> conn = std::move(c.accept_q.front());
        c.accept_q.pop_front();
        long fd = kernel.InstallSocket(
            std::make_shared<TcpSocket>(this, std::move(conn)));
        CoverAll(accept_.deep_blocks, ctx);
        return fd;
      }
      case TcpState::kClosed:
        return -vkernel::kEINVAL;
      default:
        return Violate("accept", c.state, ctx);
    }
  }

  long DoSend(TcpSocket& s, const Buffer& data, ExecContext& ctx) {
    ctx.Cover(sendto_.op_block);
    TcpConn& c = s.conn();
    if (c.state != TcpState::kEstablished &&
        c.state != TcpState::kCloseWait) {
      return -vkernel::kENOTCONN;
    }
    std::shared_ptr<TcpConn> peer = c.peer.lock();
    if (!peer || (peer->state != TcpState::kEstablished &&
                  peer->state != TcpState::kCloseWait &&
                  peer->state != TcpState::kFinWait1 &&
                  peer->state != TcpState::kFinWait2)) {
      Edge(kTcpSendReset, ctx);
      return -vkernel::kEPIPE;
    }
    if (peer->rx.size() + data.size() > peer->queue_cap) {
      Edge(kTcpSendFlowControl, ctx);
      return -vkernel::kEAGAIN;
    }
    peer->rx.insert(peer->rx.end(), data.data(), data.data() + data.size());
    CoverAll(sendto_.deep_blocks, ctx);
    return static_cast<long>(data.size());
  }

  long DoRecv(TcpSocket& s, Buffer* data, ExecContext& ctx) {
    ctx.Cover(recvfrom_.op_block);
    TcpConn& c = s.conn();
    if (c.state != TcpState::kEstablished &&
        c.state != TcpState::kCloseWait) {
      return -vkernel::kENOTCONN;
    }
    if (c.rx.empty()) {
      if (c.fin_rcvd) {
        Edge(kTcpRecvEof, ctx);
        if (data) data->Resize(0);
        return 0;
      }
      return -vkernel::kEAGAIN;
    }
    size_t n = c.rx.size() < 64 ? c.rx.size() : 64;
    if (data) {
      data->Resize(n);
      for (size_t i = 0; i < n; ++i) data->bytes[i] = c.rx[i];
    }
    c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<long>(n));
    CoverAll(recvfrom_.deep_blocks, ctx);
    return static_cast<long>(n);
  }

  long DoSetSockOpt(TcpSocket& s, uint64_t level, uint64_t optname,
                    const Buffer& val, ExecContext& ctx) {
    if (level != spec_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const OptRt& rt : opts_) {
      if (!rt.opt->settable || rt.opt->value != optname) continue;
      ctx.Cover(rt.set_block);
      if (val.size() < rt.layout.total_size) return -vkernel::kEFAULT;
      for (size_t k = 0; k < rt.opt->checks.size(); ++k) {
        if (!CheckOk(rt.opt->checks[k], val, rt.layout)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(rt.set_checks[k]);
      }
      const TcpOptOps& ops = kTcpSockOps[rt.ops_index];
      if (ops.set) ops.set(s.conn(), ReadField(val, rt.layout, "value"));
      CoverAll(rt.set_deep, ctx);
      return 0;
    }
    return -vkernel::kENOPROTOOPT;
  }

  long DoGetSockOpt(TcpSocket& s, uint64_t level, uint64_t optname,
                    Buffer* val, ExecContext& ctx) {
    if (level != spec_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const OptRt& rt : opts_) {
      if (!rt.opt->gettable || rt.opt->value != optname) continue;
      ctx.Cover(rt.get_block);
      if (val && val->size() < rt.layout.total_size) {
        val->Resize(rt.layout.total_size);
      }
      const TcpOptOps& ops = kTcpSockOps[rt.ops_index];
      if (val) {
        TcpConn& c = s.conn();
        if (ops.get) {
          WriteFieldTo(val, rt.layout, "value", ops.get(c));
        } else {
          // TCP_INFO: the multi-field state dump.
          WriteFieldTo(val, rt.layout, "state",
                       static_cast<uint64_t>(c.state));
          WriteFieldTo(val, rt.layout, "backlog", c.backlog);
          WriteFieldTo(val, rt.layout, "qlen", c.rx.size());
        }
      }
      CoverAll(rt.get_deep, ctx);
      return 0;
    }
    return -vkernel::kENOPROTOOPT;
  }

  /// Close semantics: the active/passive close halves of the state
  /// machine, with TIME_WAIT residue left in the port namespace.
  void DoRelease(TcpSocket& s, KernelModel& kernel) {
    ExecContext& ctx = kernel.context();
    std::shared_ptr<TcpConn> conn = s.conn_ptr();
    switch (conn->state) {
      case TcpState::kClosed:
      case TcpState::kSynSent:
      case TcpState::kSynRcvd:
        FreePort(conn);
        return;
      case TcpState::kListen:
        // Pending, never-accepted connections are reset; their peers'
        // weak links expire and later sends fail with EPIPE.
        conn->accept_q.clear();
        conn->state = TcpState::kClosed;
        FreePort(conn);
        return;
      case TcpState::kEstablished: {
        Trans(*conn, TcpState::kFinWait1, ctx);
        Trans(*conn, TcpState::kFinWait2, ctx);
        std::shared_ptr<TcpConn> peer = conn->peer.lock();
        if (peer && peer->state == TcpState::kEstablished) {
          // Active close: FIN delivered, peer half-closes; we linger
          // half-closed until the peer's close completes the exchange.
          Trans(*peer, TcpState::kCloseWait, ctx);
          peer->fin_rcvd = true;
          if (conn->owns_port && conn->local_port != 0) {
            half_closed_[conn->local_port] = conn;
          }
        } else {
          // Peer already gone (reset): straight to TIME_WAIT.
          Trans(*conn, TcpState::kTimeWait, ctx);
          RetirePort(conn);
        }
        return;
      }
      case TcpState::kCloseWait: {
        // Passive close: our FIN completes the exchange.
        Trans(*conn, TcpState::kLastAck, ctx);
        Trans(*conn, TcpState::kClosed, ctx);
        FreePort(conn);
        std::shared_ptr<TcpConn> peer = conn->peer.lock();
        if (peer && peer->state == TcpState::kFinWait2) {
          Trans(*peer, TcpState::kTimeWait, ctx);
          if (peer->owns_port && peer->local_port != 0) {
            half_closed_.erase(peer->local_port);
          }
          RetirePort(peer);
        }
        return;
      }
      default:
        FreePort(conn);
        return;
    }
  }

  const VnetPolicy& policy() const { return policy_; }

 private:
  void Edge(TcpEdge e, ExecContext& ctx) { ctx.Cover(edges_[e]); }

  void Trans(TcpConn& c, TcpState to, ExecContext& ctx) {
    ctx.Cover(trans_[static_cast<int>(c.state)][static_cast<int>(to)]);
    c.state = to;
  }

  long Violate(const char* op, TcpState state, ExecContext& ctx) {
    Edge(kTcpViolation, ctx);
    ctx.Crash(std::string(kViolationPrefix) + "tcp " + op + " in " +
              TcpStateName(state));
    return -vkernel::kEINVAL;
  }

  uint16_t PortOf(const Buffer& addr) const {
    if (!have_addr_) return 0;
    return static_cast<uint16_t>(ReadField(addr, addr_layout_, "port"));
  }

  static void WriteFieldTo(Buffer* buf, const StructLayout& layout,
                           const std::string& field, uint64_t value) {
    const drivers::FieldLayout* fl = layout.Find(field);
    if (!fl) return;
    buf->WriteScalar(fl->offset, fl->size > 8 ? 8 : fl->size, value);
  }

  /// Returns an owned port to the free namespace.
  void FreePort(const std::shared_ptr<TcpConn>& conn) {
    if (!conn->owns_port || conn->local_port == 0) return;
    ports_.Unbind(conn->local_port);
    auto it = bound_.find(conn->local_port);
    if (it != bound_.end() && it->second.lock() == conn) bound_.erase(it);
    conn->owns_port = false;
  }

  /// Moves an owned port into TIME_WAIT residue.
  void RetirePort(const std::shared_ptr<TcpConn>& conn) {
    if (!conn->owns_port || conn->local_port == 0) return;
    auto it = bound_.find(conn->local_port);
    if (it != bound_.end() && it->second.lock() == conn) bound_.erase(it);
    ports_.EnterTimeWait(conn->local_port);
    conn->owns_port = false;
  }

  const SocketSpec* spec_;
  VnetPolicy policy_;
  BlockLayout blocks_;
  uint64_t create_block_;
  StructLayout addr_layout_;
  bool have_addr_ = false;
  OpRt bind_, connect_, sendto_, recvfrom_, listen_, accept_;
  std::vector<OptRt> opts_;
  uint64_t trans_[kTcpStateCount][kTcpStateCount] = {};
  uint64_t edges_[kTcpEdgeCount] = {};

  PortSpace ports_;
  /// Port -> endpoint for inbound connection lookup (listeners and
  /// explicitly bound sockets).
  std::map<uint16_t, std::weak_ptr<TcpConn>> bound_;
  /// Actively-closed endpoints lingering in FIN_WAIT2 until the peer's
  /// close moves their port to TIME_WAIT; keeps the conn alive after
  /// its fd is gone.
  std::map<uint16_t, std::shared_ptr<TcpConn>> half_closed_;
};

long
TcpSocket::SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                      KernelModel& kernel)
{
  return family_->DoSetSockOpt(*this, level, optname, val, kernel.context());
}

long
TcpSocket::GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                      KernelModel& kernel)
{
  return family_->DoGetSockOpt(*this, level, optname, val, kernel.context());
}

long
TcpSocket::Bind(const Buffer& addr, KernelModel& kernel)
{
  return family_->DoBind(*this, addr, kernel.context());
}

long
TcpSocket::Connect(const Buffer& addr, KernelModel& kernel)
{
  return family_->DoConnect(*this, addr, kernel.context());
}

long
TcpSocket::SendTo(const Buffer& data, const Buffer& addr, KernelModel& kernel)
{
  (void)addr;  // Connected-only transport; the address is ignored.
  return family_->DoSend(*this, data, kernel.context());
}

long
TcpSocket::RecvFrom(Buffer* data, KernelModel& kernel)
{
  return family_->DoRecv(*this, data, kernel.context());
}

long
TcpSocket::Listen(KernelModel& kernel)
{
  return family_->DoListen(*this, kernel.context());
}

long
TcpSocket::Accept(KernelModel& kernel)
{
  return family_->DoAccept(*this, kernel);
}

void
TcpSocket::Release(KernelModel& kernel)
{
  if (released_) return;
  released_ = true;
  family_->DoRelease(*this, kernel);
}

std::string
TcpSocket::StateBrief() const
{
  std::string out = "tcp:";
  out += TcpStateName(conn_->state);
  if (conn_->local_port != 0) {
    out += " lp=" + std::to_string(conn_->local_port);
  }
  if (conn_->remote_port != 0) {
    out += " rp=" + std::to_string(conn_->remote_port);
  }
  if (!conn_->rx.empty()) out += " rx=" + std::to_string(conn_->rx.size());
  if (conn_->state == TcpState::kListen && !conn_->accept_q.empty()) {
    out += " q=" + std::to_string(conn_->accept_q.size());
  }
  if (conn_->fin_rcvd) out += " fin";
  return out;
}

}  // namespace

// Defined outside the anonymous namespace (declared in inet.h); the UDP
// side below reuses them.

BlockLayout
TcpBlockLayout(const SocketSpec& spec)
{
  BlockLayout layout = BlockLayout::ForSocket(spec);
  for (const TransitionTuple& t : kTcpTransitions) {
    layout.Extend("trans", TransitionDetail(t), 0);
  }
  for (int e = 0; e < kTcpEdgeCount; ++e) {
    layout.Extend("edge", kTcpEdgeNames[e], 0);
  }
  return layout;
}

BlockLayout
UdpBlockLayout(const SocketSpec& spec)
{
  BlockLayout layout = BlockLayout::ForSocket(spec);
  for (int e = 0; e < kUdpEdgeCount; ++e) {
    layout.Extend("edge", kUdpEdgeNames[e], 0);
  }
  return layout;
}

std::unique_ptr<vkernel::SocketFamily>
MakeTcpFamily(const SocketSpec* spec, VnetPolicy policy)
{
  return std::make_unique<TcpFamily>(spec, policy);
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

namespace {

class UdpFamily;

/// One UDP endpoint: a bound port, an optional connected default
/// destination, a bounded datagram queue, and cork state.
struct UdpSockState {
  uint16_t local_port = 0;
  uint16_t peer_port = 0;
  bool connected = false;
  bool cork = false;
  uint16_t cork_dest = 0;  ///< Destination of the corked super-datagram.
  std::vector<uint8_t> cork_buf;
  uint32_t queue_cap = 8;  ///< rx datagram budget.
  std::deque<std::vector<uint8_t>> rx;
};

class UdpSocket : public vkernel::SocketHandler {
 public:
  explicit UdpSocket(UdpFamily* family) : family_(family) {}

  long SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                  KernelModel& kernel) override;
  long GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                  KernelModel& kernel) override;
  long Bind(const Buffer& addr, KernelModel& kernel) override;
  long Connect(const Buffer& addr, KernelModel& kernel) override;
  long SendTo(const Buffer& data, const Buffer& addr,
              KernelModel& kernel) override;
  long RecvFrom(Buffer* data, KernelModel& kernel) override;
  void Release(KernelModel& kernel) override;
  std::string StateBrief() const override;

  UdpSockState st;

 private:
  UdpFamily* family_;
  bool released_ = false;
};

/// sock_ops row for one integer-payload UDP option. Set handlers run
/// through the family so UDP_CORK can flush on uncork.
struct UdpOptOps {
  const char* macro;
  bool family_set;  ///< Set is a family method (side effects), not a poke.
  void (*set)(UdpSockState&, uint64_t);
  uint64_t (*get)(const UdpSockState&);
};

const UdpOptOps kUdpSockOps[] = {
    {"UDP_CORK", true, nullptr,
     [](const UdpSockState& s) { return static_cast<uint64_t>(s.cork); }},
    {"UDP_QCAP", false,
     [](UdpSockState& s, uint64_t v) {
       s.queue_cap = static_cast<uint32_t>(v);
     },
     [](const UdpSockState& s) {
       return static_cast<uint64_t>(s.queue_cap);
     }},
    {"UDP_QLEN", false, nullptr,
     [](const UdpSockState& s) { return static_cast<uint64_t>(s.rx.size()); }},
};

class UdpFamily : public vkernel::SocketFamily {
 public:
  UdpFamily(const SocketSpec* spec, VnetPolicy policy)
      : spec_(spec),
        policy_(policy),
        blocks_(UdpBlockLayout(*spec)),
        create_block_(blocks_.IdOf("create", "", 0)),
        ports_(kUdpPortSeed) {
    const drivers::StructSpec* addr = spec->FindStruct(spec->addr_struct);
    if (addr) {
      addr_layout_ = drivers::ComputeLayout(*addr, spec->structs);
      have_addr_ = true;
    }
    bind_ = BuildOpRt(blocks_, "bind", spec->bind);
    connect_ = BuildOpRt(blocks_, "connect", spec->connect);
    sendto_ = BuildOpRt(blocks_, "sendto", spec->sendto);
    recvfrom_ = BuildOpRt(blocks_, "recvfrom", spec->recvfrom);
    for (const SockOptSpec& opt : spec->sockopts) {
      OptRt rt = BuildOptRt(blocks_, opt, *spec);
      rt.ops_index = -1;
      for (size_t i = 0; i < sizeof(kUdpSockOps) / sizeof(kUdpSockOps[0]);
           ++i) {
        if (opt.macro == kUdpSockOps[i].macro) {
          rt.ops_index = static_cast<int>(i);
          break;
        }
      }
      if (rt.ops_index < 0) {
        util::Panic("vnet: udp sockopt missing from sock_ops table: " +
                    opt.macro);
      }
      opts_.push_back(std::move(rt));
    }
    for (int e = 0; e < kUdpEdgeCount; ++e) {
      edges_[e] = blocks_.IdOf("edge", kUdpEdgeNames[e], 0);
    }
  }

  std::string Name() const override { return spec_->id; }
  uint64_t Domain() const override { return spec_->domain; }

  std::shared_ptr<vkernel::SocketHandler> Create(uint64_t type,
                                                 uint64_t protocol,
                                                 KernelModel& kernel,
                                                 long* err) override {
    if (type != spec_->sock_type ||
        (protocol != 0 && protocol != spec_->protocol)) {
      *err = -vkernel::kEINVAL;
      return nullptr;
    }
    kernel.context().Cover(create_block_);
    return std::make_shared<UdpSocket>(this);
  }

  void ResetState() override {
    bound_.clear();
    ports_.Reset();
  }

  std::string StateBrief() const override { return ports_.Brief(); }

  // -- Op implementations --------------------------------------------------

  long DoBind(UdpSocket& s, const Buffer& addr, ExecContext& ctx) {
    ctx.Cover(bind_.op_block);
    long rc = RunChecks(bind_, addr, addr_layout_, have_addr_, ctx);
    if (rc != 0) return rc;
    if (s.st.local_port != 0) {
      if (!policy_.rebind_ok) return -vkernel::kEINVAL;
      Unbind(s);
      Edge(kUdpBindRebound, ctx);
    }
    uint16_t port = PortOf(addr);
    if (port == 0) {
      port = ports_.AllocateEphemeral();
      if (port == 0) return -vkernel::kEADDRINUSE;
      Edge(kUdpBindEphemeral, ctx);
    } else if (ports_.IsBound(port)) {
      Edge(kUdpBindConflict, ctx);
      return -vkernel::kEADDRINUSE;
    }
    ports_.Bind(port);
    bound_[port] = &s;
    s.st.local_port = port;
    CoverAll(bind_.deep_blocks, ctx);
    return 0;
  }

  long DoConnect(UdpSocket& s, const Buffer& addr, ExecContext& ctx) {
    ctx.Cover(connect_.op_block);
    long rc = RunChecks(connect_, addr, addr_layout_, have_addr_, ctx);
    if (rc != 0) return rc;
    uint16_t port = PortOf(addr);
    if (port == 0) {
      // AF_UNSPEC-style dissolve: back to unconnected.
      s.st.connected = false;
      s.st.peer_port = 0;
      Edge(kUdpConnectDisconnect, ctx);
      return 0;
    }
    s.st.connected = true;
    s.st.peer_port = port;
    CoverAll(connect_.deep_blocks, ctx);
    return 0;
  }

  long DoSend(UdpSocket& s, const Buffer& data, const Buffer& addr,
              ExecContext& ctx) {
    ctx.Cover(sendto_.op_block);
    long rc = RunChecks(sendto_, addr, addr_layout_, have_addr_, ctx);
    if (rc != 0) return rc;
    uint16_t dest = PortOf(addr);
    if (dest == 0) {
      if (!s.st.connected) {
        Edge(kUdpSendNoAddr, ctx);
        return -vkernel::kEDESTADDRREQ;
      }
      dest = s.st.peer_port;
    }
    if (s.st.cork) {
      // Corked: datagrams merge into one pending super-datagram,
      // delivered when the cork is released.
      s.st.cork_dest = dest;
      s.st.cork_buf.insert(s.st.cork_buf.end(), data.data(),
                           data.data() + data.size());
      Edge(kUdpSendCorked, ctx);
      return static_cast<long>(data.size());
    }
    rc = Deliver(dest, data.data(), data.size(), ctx);
    if (rc != 0) return rc;
    CoverAll(sendto_.deep_blocks, ctx);
    return static_cast<long>(data.size());
  }

  long DoRecv(UdpSocket& s, Buffer* data, ExecContext& ctx) {
    ctx.Cover(recvfrom_.op_block);
    if (s.st.rx.empty()) return -vkernel::kEAGAIN;
    std::vector<uint8_t> dgram = std::move(s.st.rx.front());
    s.st.rx.pop_front();
    if (data) {
      data->Resize(dgram.size());
      for (size_t i = 0; i < dgram.size(); ++i) data->bytes[i] = dgram[i];
    }
    CoverAll(recvfrom_.deep_blocks, ctx);
    return static_cast<long>(dgram.size());
  }

  long DoSetSockOpt(UdpSocket& s, uint64_t level, uint64_t optname,
                    const Buffer& val, ExecContext& ctx) {
    if (level != spec_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const OptRt& rt : opts_) {
      if (!rt.opt->settable || rt.opt->value != optname) continue;
      ctx.Cover(rt.set_block);
      if (val.size() < rt.layout.total_size) return -vkernel::kEFAULT;
      for (size_t k = 0; k < rt.opt->checks.size(); ++k) {
        if (!CheckOk(rt.opt->checks[k], val, rt.layout)) {
          return -vkernel::kEINVAL;
        }
        ctx.Cover(rt.set_checks[k]);
      }
      const UdpOptOps& ops = kUdpSockOps[rt.ops_index];
      uint64_t value = ReadField(val, rt.layout, "value");
      if (ops.family_set) {
        SetCork(s, value != 0, ctx);
      } else if (ops.set) {
        ops.set(s.st, value);
      }
      CoverAll(rt.set_deep, ctx);
      return 0;
    }
    return -vkernel::kENOPROTOOPT;
  }

  long DoGetSockOpt(UdpSocket& s, uint64_t level, uint64_t optname,
                    Buffer* val, ExecContext& ctx) {
    if (level != spec_->sol_level) return -vkernel::kENOPROTOOPT;
    for (const OptRt& rt : opts_) {
      if (!rt.opt->gettable || rt.opt->value != optname) continue;
      ctx.Cover(rt.get_block);
      if (val) {
        if (val->size() < rt.layout.total_size) {
          val->Resize(rt.layout.total_size);
        }
        const UdpOptOps& ops = kUdpSockOps[rt.ops_index];
        if (ops.get) {
          const drivers::FieldLayout* fl = rt.layout.Find("value");
          if (!fl) fl = rt.layout.Find("qlen");
          if (fl) {
            val->WriteScalar(fl->offset, fl->size > 8 ? 8 : fl->size,
                             ops.get(s.st));
          }
        }
      }
      CoverAll(rt.get_deep, ctx);
      return 0;
    }
    return -vkernel::kENOPROTOOPT;
  }

  void DoRelease(UdpSocket& s, KernelModel& kernel) {
    ExecContext& ctx = kernel.context();
    if (s.st.cork && !s.st.cork_buf.empty()) {
      // Closing a corked socket with undelivered data: the pending
      // super-datagram leaks — the stack's planted lifecycle bug.
      Edge(kUdpViolation, ctx);
      ctx.Crash(std::string(kViolationPrefix) +
                "udp release while corked with pending data");
    }
    Unbind(s);
  }

 private:
  void Edge(UdpEdge e, ExecContext& ctx) { ctx.Cover(edges_[e]); }

  uint16_t PortOf(const Buffer& addr) const {
    if (!have_addr_) return 0;
    return static_cast<uint16_t>(ReadField(addr, addr_layout_, "port"));
  }

  /// Queues a datagram at the receiver bound to `dest`. Queue overflow
  /// drops silently (UDP semantics); no receiver refuses.
  long Deliver(uint16_t dest, const uint8_t* data, size_t size,
               ExecContext& ctx) {
    auto it = bound_.find(dest);
    if (it == bound_.end()) {
      Edge(kUdpSendNoReceiver, ctx);
      return -vkernel::kECONNREFUSED;
    }
    UdpSockState& rcv = it->second->st;
    if (rcv.rx.size() >= rcv.queue_cap) {
      Edge(kUdpSendDrop, ctx);
      return 0;  // Silent drop still reports success to the sender.
    }
    rcv.rx.emplace_back(data, data + size);
    return 0;
  }

  void SetCork(UdpSocket& s, bool cork, ExecContext& ctx) {
    if (s.st.cork && !cork && !s.st.cork_buf.empty()) {
      // Uncork: flush the merged datagram to its last destination.
      Deliver(s.st.cork_dest, s.st.cork_buf.data(), s.st.cork_buf.size(),
              ctx);
      s.st.cork_buf.clear();
      Edge(kUdpUncorkFlush, ctx);
    }
    s.st.cork = cork;
  }

  void Unbind(UdpSocket& s) {
    if (s.st.local_port == 0) return;
    ports_.Unbind(s.st.local_port);
    auto it = bound_.find(s.st.local_port);
    if (it != bound_.end() && it->second == &s) bound_.erase(it);
    s.st.local_port = 0;
  }

  const SocketSpec* spec_;
  VnetPolicy policy_;
  BlockLayout blocks_;
  uint64_t create_block_;
  StructLayout addr_layout_;
  bool have_addr_ = false;
  OpRt bind_, connect_, sendto_, recvfrom_;
  std::vector<OptRt> opts_;
  uint64_t edges_[kUdpEdgeCount] = {};

  PortSpace ports_;
  /// Port -> live receiver. Entries are erased on Release/rebind, so
  /// the raw pointer never dangles (the kernel is single-threaded).
  std::map<uint16_t, UdpSocket*> bound_;
};

long
UdpSocket::SetSockOpt(uint64_t level, uint64_t optname, const Buffer& val,
                      KernelModel& kernel)
{
  return family_->DoSetSockOpt(*this, level, optname, val, kernel.context());
}

long
UdpSocket::GetSockOpt(uint64_t level, uint64_t optname, Buffer* val,
                      KernelModel& kernel)
{
  return family_->DoGetSockOpt(*this, level, optname, val, kernel.context());
}

long
UdpSocket::Bind(const Buffer& addr, KernelModel& kernel)
{
  return family_->DoBind(*this, addr, kernel.context());
}

long
UdpSocket::Connect(const Buffer& addr, KernelModel& kernel)
{
  return family_->DoConnect(*this, addr, kernel.context());
}

long
UdpSocket::SendTo(const Buffer& data, const Buffer& addr, KernelModel& kernel)
{
  return family_->DoSend(*this, data, addr, kernel.context());
}

long
UdpSocket::RecvFrom(Buffer* data, KernelModel& kernel)
{
  return family_->DoRecv(*this, data, kernel.context());
}

void
UdpSocket::Release(KernelModel& kernel)
{
  if (released_) return;
  released_ = true;
  family_->DoRelease(*this, kernel);
}

std::string
UdpSocket::StateBrief() const
{
  std::string out = "udp";
  if (st.local_port != 0) out += " lp=" + std::to_string(st.local_port);
  if (st.connected) out += " pp=" + std::to_string(st.peer_port);
  if (!st.rx.empty()) out += " rx=" + std::to_string(st.rx.size());
  if (st.cork) out += " cork";
  return out;
}

}  // namespace

std::unique_ptr<vkernel::SocketFamily>
MakeUdpFamily(const SocketSpec* spec, VnetPolicy policy)
{
  return std::make_unique<UdpFamily>(spec, policy);
}

}  // namespace kernelgpt::vnet
