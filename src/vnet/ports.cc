#include "vnet/ports.h"

namespace kernelgpt::vnet {

void
PortSpace::Reset()
{
  bound_.clear();
  time_wait_.clear();
  rng_ = util::Rng(seed_);
}

void
PortSpace::EnterTimeWait(uint16_t port)
{
  bound_.erase(port);
  time_wait_.insert(port);
}

uint16_t
PortSpace::AllocateEphemeral()
{
  for (int attempt = 0; attempt < 32; ++attempt) {
    uint16_t port = static_cast<uint16_t>(
        kEphemeralBase + rng_.Below(kEphemeralSpan));
    if (!IsBound(port) && !InTimeWait(port)) return port;
  }
  // The random window is congested (pathological program); probe
  // linearly so allocation still terminates deterministically.
  for (uint32_t off = 0; off < kEphemeralSpan; ++off) {
    uint16_t port = static_cast<uint16_t>(kEphemeralBase + off);
    if (!IsBound(port) && !InTimeWait(port)) return port;
  }
  return 0;  // Namespace exhausted; callers surface EADDRINUSE.
}

namespace {

void
AppendSet(std::string* out, const char* label,
          const std::set<uint16_t>& ports)
{
  if (ports.empty()) return;
  if (!out->empty()) *out += ' ';
  *out += label;
  *out += "=[";
  bool first = true;
  for (uint16_t p : ports) {
    if (!first) *out += ',';
    first = false;
    *out += std::to_string(p);
  }
  *out += ']';
}

}  // namespace

std::string
PortSpace::Brief() const
{
  std::string out;
  AppendSet(&out, "bound", bound_);
  AppendSet(&out, "tw", time_wait_);
  return out;
}

}  // namespace kernelgpt::vnet
