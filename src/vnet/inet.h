/// \file
/// The vnet stack: a deterministic, in-process stateful TCP/UDP network
/// stack registered as first-class socket families of the virtual
/// kernel. Unlike the declarative ModelSocketFamily runtimes — which
/// validate arguments but carry no protocol state — vnet sockets run a
/// real per-socket TCP state machine (LISTEN/accept backlogs, loopback
/// peer pairing, half-close, TIME_WAIT port residue) and bounded UDP
/// datagram queues, so the fuzzer's coverage signal extends into state
/// transitions and its crash signal gains a new class: state-machine
/// violations, raised when a program drives an endpoint through an
/// illegal transition (listen on an established socket, connect on a
/// listener...).
///
/// The families still interpret the declarative tcp/udp SocketSpecs for
/// everything the specs describe — argument structs, validation checks,
/// sockopt numbers, dense coverage blocks — so spec generation,
/// rendered source, and runtime behaviour stay mutually consistent;
/// vnet extends the spec's BlockLayout with transition and edge tuples
/// for the behaviour only a stateful runtime has.

#ifndef KERNELGPT_VNET_INET_H_
#define KERNELGPT_VNET_INET_H_

#include <memory>

#include "drivers/driver_model.h"
#include "drivers/model_runtime.h"
#include "vkernel/file.h"

namespace kernelgpt::vnet {

/// The network-semantics slice of a kernel personality. Mirrors the
/// net_* knobs of vkernel::KernelPolicy; a separate struct so vnet does
/// not depend on the concrete Kernel class at interface level.
struct VnetPolicy {
  bool relisten_ok = false;        ///< listen() on LISTEN succeeds.
  bool rebind_ok = false;          ///< bind() on a bound socket rebinds.
  bool reuse_timewait_ok = false;  ///< bind() to a TIME_WAIT port succeeds.

  /// Extracts the net knobs from a model's policy when the model is the
  /// reference Kernel engine; strict defaults otherwise.
  static VnetPolicy FromModel(const vkernel::KernelModel* model);
};

/// Dense block layout of a vnet family: the spec's canonical ForSocket
/// walk extended with the stack's transition ("trans", "FROM->TO") and
/// edge ("edge", name) tuples, claimed in one fixed order. Tests and
/// the experiment harness resolve ids through the same function as the
/// runtime, so they cannot diverge.
drivers::BlockLayout TcpBlockLayout(const drivers::SocketSpec& spec);
drivers::BlockLayout UdpBlockLayout(const drivers::SocketSpec& spec);

/// Creates the stateful TCP family interpreting `spec` (must be the
/// corpus "tcp" spec shape: AF_INET, SOCK_STREAM, addr struct with
/// family/port fields). The spec must outlive the family.
std::unique_ptr<vkernel::SocketFamily> MakeTcpFamily(
    const drivers::SocketSpec* spec, VnetPolicy policy);

/// Creates the stateful UDP family interpreting `spec`.
std::unique_ptr<vkernel::SocketFamily> MakeUdpFamily(
    const drivers::SocketSpec* spec, VnetPolicy policy);

/// Prefix of every state-machine-violation crash title; the suffix
/// names the operation and the state it was illegal in, so distinct
/// illegal transitions dedupe into distinct crash classes.
inline constexpr char kViolationPrefix[] = "vnet: state-machine violation: ";

}  // namespace kernelgpt::vnet

#endif  // KERNELGPT_VNET_INET_H_
