/// \file
/// Driver and socket operation-handler extraction — the "Kernel Code
/// Extractor" of Figure 4. Pattern-matches file_operations / miscdevice /
/// proto_ops registrations across the parsed corpus and bundles each
/// handler with its usage locations, ready for analysis.

#ifndef KERNELGPT_EXTRACTOR_HANDLER_FINDER_H_
#define KERNELGPT_EXTRACTOR_HANDLER_FINDER_H_

#include <string>
#include <vector>

#include "ksrc/definition_index.h"

namespace kernelgpt::extractor {

/// How a driver's device node is published.
enum class RegKind {
  kMiscDevice,    ///< struct miscdevice with .name (and maybe .nodename).
  kDeviceCreate,  ///< device_create(...) in the module init function.
  kProcCreate,    ///< proc_create(...) in the module init function.
  kUnreferenced,  ///< fops exists but no registration was found (secondary
                  ///< handlers reached via anon_inode_getfd).
};

/// One extracted driver operation handler.
struct DriverHandler {
  std::string fops_var;   ///< e.g. "_dm_ctl_fops".
  std::string ioctl_fn;   ///< .unlocked_ioctl target, e.g. "dm_ctl_ioctl".
  std::string open_fn;    ///< .open target.
  RegKind reg = RegKind::kUnreferenced;

  // kMiscDevice:
  std::string misc_var;        ///< miscdevice variable name.
  std::string name_expr;       ///< Raw .name initializer text.
  std::string nodename_expr;   ///< Raw .nodename initializer text ("" unset).

  // kDeviceCreate:
  std::string chrdev_name;     ///< register_chrdev base name, e.g. "cec".
  std::string create_fmt;      ///< device_create format, e.g. "cec%d".
  std::string create_arg;      ///< First vararg text, e.g. "0".

  // kProcCreate:
  std::string proc_path;       ///< e.g. "driver/snd/timer".

  std::string file_path;       ///< Source file of the fops definition.
};

/// One extracted socket operation handler.
struct SocketHandler {
  std::string proto_ops_var;  ///< e.g. "rds_proto_ops".
  std::string family_expr;    ///< Raw .family initializer text ("AF_RDS").
  std::string create_fn;      ///< net_proto_family .create target.
  std::string setsockopt_fn;
  std::string getsockopt_fn;
  std::string bind_fn;
  std::string connect_fn;
  std::string sendmsg_fn;
  std::string recvmsg_fn;
  std::string listen_fn;
  std::string accept_fn;
  std::string ioctl_fn;
  std::string file_path;
};

/// Finds all registered driver operation handlers. Handlers without any
/// registration usage (secondary fops like kvm's vm/vcpu tables) are
/// reported with RegKind::kUnreferenced so the dependency stage can claim
/// them.
std::vector<DriverHandler> FindDriverHandlers(
    const ksrc::DefinitionIndex& index);

/// Finds all socket operation handlers (proto_ops + net_proto_family).
std::vector<SocketHandler> FindSocketHandlers(
    const ksrc::DefinitionIndex& index);

/// Resolves the device-node path of a handler using full semantics (the
/// oracle the analysis LLM aspires to): miscdevice .nodename wins over
/// .name, device_create formats are instantiated, proc paths prefixed.
/// Returns "" when undecidable.
std::string ResolveNodePath(const ksrc::DefinitionIndex& index,
                            const DriverHandler& handler);

}  // namespace kernelgpt::extractor

#endif  // KERNELGPT_EXTRACTOR_HANDLER_FINDER_H_
