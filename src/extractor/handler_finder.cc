#include "extractor/handler_finder.h"

#include "ksrc/body_analysis.h"
#include "util/strings.h"

namespace kernelgpt::extractor {

namespace {

using ksrc::CFile;
using ksrc::CFunction;
using ksrc::CVarDef;

/// Strips a leading '&' from an initializer expression ("&_ctl_fops").
std::string
StripAddrOf(const std::string& expr)
{
  std::string_view v = util::Trim(expr);
  if (!v.empty() && v.front() == '&') v.remove_prefix(1);
  return std::string(util::Trim(v));
}

/// Strips surrounding quotes from a single string-literal expression.
std::string
UnquoteLiteral(const std::string& expr)
{
  std::string_view v = util::Trim(expr);
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    return std::string(v.substr(1, v.size() - 2));
  }
  return "";
}

/// Finds the misc/init registration that references `fops_var` within one
/// file and fills the handler's registration fields.
void
ResolveRegistration(const CFile& file, DriverHandler* handler)
{
  // miscdevice usage.
  for (const CVarDef& var : file.vars) {
    if (var.type_name != "miscdevice") continue;
    if (StripAddrOf(var.InitFor("fops")) != handler->fops_var) continue;
    handler->reg = RegKind::kMiscDevice;
    handler->misc_var = var.name;
    handler->name_expr = var.InitFor("name");
    handler->nodename_expr = var.InitFor("nodename");
    return;
  }
  // Init-function usage: register_chrdev + device_create, or proc_create.
  for (const CFunction& fn : file.functions) {
    if (!util::EndsWith(fn.name, "_init")) continue;
    bool references_fops = ksrc::BodyMentions(fn, handler->fops_var);
    if (!references_fops) continue;
    for (const ksrc::CallSite& call : ksrc::FindCalls(fn)) {
      if (call.callee == "register_chrdev" && call.args.size() >= 2) {
        handler->chrdev_name = UnquoteLiteral(call.args[1]);
      }
      if (call.callee == "device_create" && call.args.size() >= 5) {
        handler->reg = RegKind::kDeviceCreate;
        handler->create_fmt = UnquoteLiteral(call.args[4]);
        handler->create_arg =
            call.args.size() >= 6 ? call.args[5] : std::string();
      }
      if (call.callee == "proc_create" && !call.args.empty()) {
        handler->reg = RegKind::kProcCreate;
        handler->proc_path = UnquoteLiteral(call.args[0]);
      }
    }
    if (handler->reg != RegKind::kUnreferenced) return;
  }
}

}  // namespace

std::vector<DriverHandler>
FindDriverHandlers(const ksrc::DefinitionIndex& index)
{
  std::vector<DriverHandler> out;
  for (const CFile& file : index.files()) {
    for (const CVarDef& var : file.vars) {
      if (var.type_name != "file_operations") continue;
      std::string ioctl_fn = var.InitFor("unlocked_ioctl");
      if (ioctl_fn.empty()) ioctl_fn = var.InitFor("ioctl");
      if (ioctl_fn.empty()) continue;  // Not an ioctl-capable handler.
      DriverHandler handler;
      handler.fops_var = var.name;
      handler.ioctl_fn = ioctl_fn;
      handler.open_fn = var.InitFor("open");
      handler.file_path = file.path;
      ResolveRegistration(file, &handler);
      out.push_back(std::move(handler));
    }
  }
  return out;
}

std::vector<SocketHandler>
FindSocketHandlers(const ksrc::DefinitionIndex& index)
{
  std::vector<SocketHandler> out;
  for (const CFile& file : index.files()) {
    for (const CVarDef& var : file.vars) {
      if (var.type_name != "proto_ops") continue;
      SocketHandler handler;
      handler.proto_ops_var = var.name;
      handler.family_expr = var.InitFor("family");
      handler.setsockopt_fn = var.InitFor("setsockopt");
      handler.getsockopt_fn = var.InitFor("getsockopt");
      handler.bind_fn = var.InitFor("bind");
      handler.connect_fn = var.InitFor("connect");
      handler.sendmsg_fn = var.InitFor("sendmsg");
      handler.recvmsg_fn = var.InitFor("recvmsg");
      handler.listen_fn = var.InitFor("listen");
      handler.accept_fn = var.InitFor("accept");
      handler.ioctl_fn = var.InitFor("ioctl");
      handler.file_path = file.path;
      // Pair with the net_proto_family in the same file.
      for (const CVarDef& fam : file.vars) {
        if (fam.type_name == "net_proto_family") {
          handler.create_fn = fam.InitFor("create");
        }
      }
      out.push_back(std::move(handler));
    }
  }
  return out;
}

std::string
ResolveNodePath(const ksrc::DefinitionIndex& index,
                const DriverHandler& handler)
{
  switch (handler.reg) {
    case RegKind::kMiscDevice: {
      // .nodename takes precedence over .name when set (the Fig. 2 rule).
      const std::string& expr = handler.nodename_expr.empty()
                                    ? handler.name_expr
                                    : handler.nodename_expr;
      auto resolved = index.ResolveStringExpr(expr);
      if (!resolved) return "";
      return "/dev/" + *resolved;
    }
    case RegKind::kDeviceCreate: {
      // Instantiate the printf format with the literal first vararg.
      std::string fmt = handler.create_fmt;
      std::string arg = handler.create_arg;
      std::string node;
      for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == 'd') {
          node += arg;
          ++i;
          continue;
        }
        node.push_back(fmt[i]);
      }
      return node.empty() ? "" : "/dev/" + node;
    }
    case RegKind::kProcCreate:
      return handler.proc_path.empty() ? "" : "/proc/" + handler.proc_path;
    case RegKind::kUnreferenced:
      return "";
  }
  return "";
}

}  // namespace kernelgpt::extractor
