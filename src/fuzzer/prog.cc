#include "fuzzer/prog.h"

#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::fuzzer {

uint64_t
HashProg(const Prog& prog)
{
  // Every variable-length sequence is length-prefixed so that no two
  // distinct programs serialize to the same hash stream.
  uint64_t h = util::HashCombine(0x646973746c6cULL, prog.calls.size());
  for (const Call& call : prog.calls) {
    h = util::HashCombine(h, call.syscall_index);
    h = util::HashCombine(h, call.args.size());
    for (const Arg& arg : call.args) {
      h = util::HashCombine(h, static_cast<uint64_t>(arg.kind));
      h = util::HashCombine(h, arg.scalar);
      h = util::HashCombine(h, static_cast<uint64_t>(arg.dir));
      h = util::HashCombine(h, static_cast<uint64_t>(arg.ref_call));
      h = util::HashCombine(h, static_cast<uint64_t>(arg.len_of_param));
      h = util::HashCombine(h, arg.bytes.size());
      // FNV-1a over the payload, folded in as one word.
      uint64_t bytes_hash = 0xcbf29ce484222325ULL;
      for (uint8_t b : arg.bytes) {
        bytes_hash = (bytes_hash ^ b) * 0x100000001b3ULL;
      }
      h = util::HashCombine(h, bytes_hash);
    }
  }
  return h;
}

std::string
FormatProg(const Prog& prog, const SpecLibrary& lib)
{
  std::string out;
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    const Call& call = prog.calls[i];
    if (call.syscall_index >= lib.syscalls().size()) continue;
    const syzlang::SyscallDef& def = lib.syscalls()[call.syscall_index];
    out += util::Format("r%zu = %s(", i, def.FullName().c_str());
    for (size_t a = 0; a < call.args.size(); ++a) {
      if (a) out += ", ";
      const Arg& arg = call.args[a];
      switch (arg.kind) {
        case Arg::Kind::kScalar:
          out += util::Format("0x%llx",
                              static_cast<unsigned long long>(arg.scalar));
          break;
        case Arg::Kind::kBuffer:
          out += util::Format("&buf[%zu]", arg.bytes.size());
          break;
        case Arg::Kind::kResourceRef:
          out += arg.ref_call >= 0 ? util::Format("r%d", arg.ref_call)
                                   : "badfd";
          break;
      }
    }
    out += ")\n";
  }
  return out;
}

}  // namespace kernelgpt::fuzzer
