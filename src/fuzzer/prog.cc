#include "fuzzer/prog.h"

#include "util/strings.h"

namespace kernelgpt::fuzzer {

std::string
FormatProg(const Prog& prog, const SpecLibrary& lib)
{
  std::string out;
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    const Call& call = prog.calls[i];
    if (call.syscall_index >= lib.syscalls().size()) continue;
    const syzlang::SyscallDef& def = lib.syscalls()[call.syscall_index];
    out += util::Format("r%zu = %s(", i, def.FullName().c_str());
    for (size_t a = 0; a < call.args.size(); ++a) {
      if (a) out += ", ";
      const Arg& arg = call.args[a];
      switch (arg.kind) {
        case Arg::Kind::kScalar:
          out += util::Format("0x%llx",
                              static_cast<unsigned long long>(arg.scalar));
          break;
        case Arg::Kind::kBuffer:
          out += util::Format("&buf[%zu]", arg.bytes.size());
          break;
        case Arg::Kind::kResourceRef:
          out += arg.ref_call >= 0 ? util::Format("r%d", arg.ref_call)
                                   : "badfd";
          break;
      }
    }
    out += ")\n";
  }
  return out;
}

}  // namespace kernelgpt::fuzzer
