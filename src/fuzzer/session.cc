#include "fuzzer/session.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "fuzzer/generator.h"
#include "fuzzer/mutator.h"
#include "util/fault.h"
#include "util/fileio.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::fuzzer {
namespace {

const char*
ScheduleName(SeedSchedule schedule)
{
  return schedule == SeedSchedule::kHashChain ? "hash-chain" : "arithmetic";
}

std::string
SuiteFileName(size_t index)
{
  // Indexed, not name-derived: suite names are free-form display strings
  // ("Syzkaller + KernelGPT") and the registration order is already the
  // deterministic identity the manifest records.
  return util::Format("suite_%zu.snap", index);
}

std::string
JournalFileName(size_t index)
{
  return util::Format("suite_%zu.journal", index);
}

/// True for "suite_<digits>.snap" / "suite_<digits>.journal"; yields the
/// index so Save can remove files orphaned by a smaller suite roster.
bool
ParseSuiteFileIndex(const std::string& name, size_t* index)
{
  if (!util::StartsWith(name, "suite_")) return false;
  const size_t dot = name.find('.', 6);
  if (dot == std::string::npos || dot == 6) return false;
  const std::string ext = name.substr(dot);
  if (ext != ".snap" && ext != ".journal") return false;
  const std::string digits = name.substr(6, dot - 6);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *index = static_cast<size_t>(std::strtoull(digits.c_str(), nullptr, 10));
  return true;
}

/// Removes suite files beyond the current roster (a previous save with
/// more suites would otherwise leave orphans a later Resume could
/// mis-bind) and stray .tmp leftovers from crashed atomic writers.
void
PruneStaleFiles(const std::string& dir, size_t suite_count)
{
  std::error_code ec;
  std::vector<std::filesystem::path> doomed;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    size_t index = 0;
    if (util::EndsWith(name, ".tmp") ||
        (ParseSuiteFileIndex(name, &index) && index >= suite_count)) {
      doomed.push_back(it->path());
    }
  }
  for (const std::filesystem::path& path : doomed) {
    std::filesystem::remove(path, ec);
  }
}

/// Replays one journal delta onto a suite's live state. The recorded
/// cumulative counters double as integrity checks: a record that merged
/// into a state it was not written against is reported, never applied
/// silently wrong.
util::Status
ApplyDeltaToState(const SuiteDelta& delta, SuiteState* state)
{
  if (delta.report.round != static_cast<int>(state->rounds.size())) {
    return util::Status::Error(util::Format(
        "journal replays round %d onto %zu completed rounds",
        delta.report.round, state->rounds.size()));
  }
  for (uint64_t block : delta.new_coverage) state->coverage.Hit(block);
  if (state->coverage.Count() != delta.report.cumulative_coverage) {
    return util::Status::Error(util::Format(
        "coverage diverged replaying round %d (%zu blocks vs %zu recorded)",
        delta.report.round, state->coverage.Count(),
        delta.report.cumulative_coverage));
  }
  for (const auto& [title, inc] : delta.crash_increments) {
    state->crashes[title] += inc;
  }
  if (state->crashes.size() != delta.report.cumulative_unique_crashes) {
    return util::Status::Error(util::Format(
        "crash titles diverged replaying round %d (%zu vs %zu recorded)",
        delta.report.round, state->crashes.size(),
        delta.report.cumulative_unique_crashes));
  }
  for (const auto& [title, prog] : delta.new_reproducers) {
    state->crash_reproducers[title] = prog;
  }
  if (!delta.corpus_unchanged) {
    std::vector<Prog> next;
    next.reserve(delta.corpus.size());
    for (const SuiteDelta::CorpusEntry& entry : delta.corpus) {
      if (entry.kept_index >= 0) {
        if (static_cast<size_t>(entry.kept_index) >= state->corpus.size()) {
          return util::Status::Error(util::Format(
              "round %d keeps corpus index %d but the previous corpus has "
              "%zu programs",
              delta.report.round, entry.kept_index, state->corpus.size()));
        }
        next.push_back(state->corpus[entry.kept_index]);
      } else {
        next.push_back(entry.prog);
      }
    }
    state->corpus = std::move(next);
  }
  state->programs_executed += delta.report.programs_executed;
  state->wall_seconds += delta.report.wall_seconds;
  state->rounds.push_back(delta.report);
  return util::Status::Ok();
}

}  // namespace

Session::Session(SessionOptions options, Orchestrator::BootFn boot)
    : options_(std::move(options)), boot_(std::move(boot))
{
  if (options_.orchestrator.num_workers < 1) {
    options_.orchestrator.num_workers = 1;
  }
}

util::Status
Session::Register(const std::string& name,
                  std::shared_ptr<const SpecLibrary> lib)
{
  if (name.empty()) {
    return util::Status::Error("session: suite name must not be empty");
  }
  if (name.find('\n') != std::string::npos ||
      name.find('\r') != std::string::npos) {
    // Names are embedded verbatim in the line-oriented snapshot; a
    // newline would make Save() emit a file Resume() can never parse.
    return util::Status::Error(
        "session: suite name must not contain line breaks");
  }
  if (rounds_completed_ > 0) {
    return util::Status::Error(util::Format(
        "session: cannot register suite '%s' after round %d has run "
        "(register every suite before Run/Resume)",
        name.c_str(), rounds_completed_));
  }
  for (const Entry& e : suites_) {
    if (e.state.name == name) {
      return util::Status::Error(
          util::Format("session: suite '%s' already registered", name.c_str()));
    }
  }
  if (!lib) {
    return util::Status::Error(
        util::Format("session: suite '%s' has no spec library", name.c_str()));
  }
  if (lib->syscalls().empty()) {
    // The old free functions fell through to an empty result here; a
    // service must refuse the misconfiguration instead.
    return util::Status::Error(util::Format(
        "session: suite '%s' has no syscalls (empty or unfinalized library)",
        name.c_str()));
  }
  Entry entry;
  entry.lib = std::move(lib);
  entry.state.name = name;
  suites_.push_back(std::move(entry));
  return util::Status::Ok();
}

util::Status
Session::RegisterSuite(const std::string& name, const SpecLibrary* lib)
{
  // Aliasing shared_ptr with an empty control block: non-owning view.
  return Register(name,
                  std::shared_ptr<const SpecLibrary>(
                      std::shared_ptr<const SpecLibrary>(), lib));
}

util::Status
Session::RegisterSuite(const std::string& name, SpecLibrary lib)
{
  return Register(name,
                  std::make_shared<const SpecLibrary>(std::move(lib)));
}

uint64_t
Session::RoundSeed(int round) const
{
  const uint64_t r = static_cast<uint64_t>(round);
  switch (options_.schedule) {
    case SeedSchedule::kHashChain:
      // Round 0 keeps the master seed so a 1-round hash-chain session is
      // bit-identical to a plain sharded campaign on that seed.
      return round == 0 ? options_.seed : util::HashCombine(options_.seed, r);
    case SeedSchedule::kArithmetic:
      return options_.seed + r * options_.seed_stride;
  }
  return options_.seed;
}

util::Status
Session::RunRound()
{
  if (suites_.empty()) {
    return util::Status::Error("session: no suites registered");
  }
  const int round = rounds_completed_;
  const uint64_t seed = RoundSeed(round);
  size_t total_delta = 0;
  // Deltas are only worth capturing once the session is bound to a
  // snapshot directory — before the first Save there is no journal for
  // them to land in, and SaveFull never needs them.
  const bool capture = !bound_dir_.empty();

  // Phase 1 — run every suite's campaign (and distillation) into staging,
  // touching no session state. The seed corpus is copied, not moved, so a
  // failure anywhere in the phase leaves the session exactly as it was
  // and a supervisor can retry the round: the rerun consumes the same
  // seed and the same corpus and reproduces the same result bit for bit.
  // A worker exception surfaced by the orchestrator becomes a Status
  // here; util::InjectedCrash deliberately does not — it simulates
  // process death, and the only correct response is a restart from the
  // durable snapshot, which "handling" it in place would mask.
  struct StagedSuite {
    OrchestratorResult campaign;
    DistillResult distilled;
    DiffReport diff;
  };
  std::vector<StagedSuite> staged(suites_.size());
  for (size_t i = 0; i < suites_.size(); ++i) {
    Entry& e = suites_[i];
    OrchestratorOptions orchestrator = options_.orchestrator;
    orchestrator.campaign.seed = seed;
    if (options_.carry_corpus) {
      orchestrator.campaign.seed_corpus = e.state.corpus;
    }
    try {
      staged[i].campaign = RunShardedCampaign(*e.lib, boot_, orchestrator);
      if (options_.distill_between_rounds) {
        Distiller distiller(e.lib.get(), boot_, options_.distill);
        staged[i].distilled = distiller.Distill(staged[i].campaign.corpus);
      }
      if (options_.diff_subject) {
        // The differential pass runs over the round's resulting corpus
        // plus a batch of freshly generated probes. Both inputs are
        // deterministic functions of the round seed, so a retried or
        // resumed round regenerates the identical report. The probes
        // matter: coverage is only recorded inside driver handlers, so
        // programs that die on kernel-level error paths (stale fds,
        // unknown paths) never survive into the corpus — and those are
        // exactly the calls where personalities disagree.
        std::vector<Prog> progs = options_.distill_between_rounds
                                      ? staged[i].distilled.corpus
                                      : staged[i].campaign.corpus;
        util::Rng probe_rng(util::HashCombine(seed, 0xD1FFu));
        Generator probe_generator(e.lib.get(), &probe_rng);
        Mutator probe_mutator(e.lib.get(), &probe_generator, &probe_rng);
        for (int p = 0; p < options_.diff_probe_budget; ++p) {
          Prog prog = probe_generator.Generate(6);
          // Mutation (notably RemoveCall orphaning a resource producer)
          // is what manufactures the stale-fd and dangling-ref programs
          // the personalities disagree on; pristine generations resolve
          // every resource ref and rarely leave the happy path.
          probe_mutator.Mutate(&prog);
          if (!prog.empty()) progs.push_back(std::move(prog));
        }
        DiffOptions diff;
        diff.baseline = options_.orchestrator.model_factory;
        diff.subject = options_.diff_subject;
        diff.boot = boot_;
        diff.num_workers = options_.diff_workers;
        DiffRunner runner(e.lib.get(), diff);
        staged[i].diff = runner.Run(progs);
      }
    } catch (const util::InjectedCrash&) {
      throw;
    } catch (const std::exception& ex) {
      return util::Status::Error(
          util::Format("session: round %d suite '%s' failed: %s", round,
                       e.state.name.c_str(), ex.what()));
    }
  }

  // Phase 2 — commit: merge the staged results into suite state. Nothing
  // below can fail, so a RunRound that returns an error has merged
  // nothing and a retried round can never double-count.
  for (size_t i = 0; i < suites_.size(); ++i) {
    Entry& e = suites_[i];
    OrchestratorResult& campaign = staged[i].campaign;
    DistillResult& distilled = staged[i].distilled;

    std::vector<uint64_t> prev_hashes;
    if (capture) {
      prev_hashes.reserve(e.state.corpus.size());
      for (const Prog& p : e.state.corpus) prev_hashes.push_back(HashProg(p));
    }

    SuiteDelta delta;
    if (capture) {
      for (uint64_t block : campaign.coverage.SortedBlocks()) {
        if (!e.state.coverage.Contains(block)) {
          delta.new_coverage.push_back(block);
        }
      }
      delta.crash_increments = campaign.crashes;
    }

    RoundReport report;
    report.round = round;
    report.seed = seed;
    report.programs_executed = campaign.programs_executed;
    report.round_coverage = campaign.coverage.Count();
    report.round_unique_crashes = campaign.crashes.size();
    report.coverage_delta = e.state.coverage.Merge(campaign.coverage);
    report.cumulative_coverage = e.state.coverage.Count();
    for (const auto& [title, count] : campaign.crashes) {
      e.state.crashes[title] += count;
    }
    report.cumulative_unique_crashes = e.state.crashes.size();
    report.merged_corpus = campaign.corpus.size();
    report.wall_seconds = campaign.wall_seconds;
    report.epochs = std::move(campaign.epochs);
    if (options_.diff_subject) {
      report.divergences = staged[i].diff.UniqueDivergenceCount();
      e.state.last_diff = std::move(staged[i].diff);
    }

    e.state.programs_executed += campaign.programs_executed;
    e.state.wall_seconds += campaign.wall_seconds;

    if (options_.distill_between_rounds) {
      for (auto& [title, prog] : distilled.crash_reproducers) {
        if (capture) {
          auto it = e.state.crash_reproducers.find(title);
          if (it == e.state.crash_reproducers.end() ||
              HashProg(it->second) != HashProg(prog)) {
            delta.new_reproducers[title] = prog;
          }
        }
        e.state.crash_reproducers[title] = std::move(prog);
      }
      report.distilled_corpus = distilled.corpus.size();
      e.state.corpus = std::move(distilled.corpus);
    } else {
      report.distilled_corpus = campaign.corpus.size();
      e.state.corpus = std::move(campaign.corpus);
    }

    if (capture) {
      // Encode the corpus as a diff against the previous round: either
      // "unchanged" (the steady state once distillation converges), or a
      // list of kept-index references plus the genuinely new programs.
      std::vector<uint64_t> hashes;
      hashes.reserve(e.state.corpus.size());
      for (const Prog& p : e.state.corpus) hashes.push_back(HashProg(p));
      delta.corpus_unchanged = hashes == prev_hashes;
      if (!delta.corpus_unchanged) {
        std::unordered_map<uint64_t, int> prev_index;
        for (size_t k = 0; k < prev_hashes.size(); ++k) {
          prev_index.emplace(prev_hashes[k], static_cast<int>(k));
        }
        delta.corpus.resize(e.state.corpus.size());
        for (size_t k = 0; k < e.state.corpus.size(); ++k) {
          auto it = prev_index.find(hashes[k]);
          if (it != prev_index.end()) {
            delta.corpus[k].kept_index = it->second;
          } else {
            delta.corpus[k].prog = e.state.corpus[k];
          }
        }
      }
      delta.report = report;
      delta.report.epochs.clear();  // Not persisted (matches ParseSuite).
      e.pending.push_back(std::move(delta));
    }

    total_delta += report.coverage_delta;
    e.state.rounds.push_back(std::move(report));
  }

  stale_rounds_ =
      total_delta < options_.plateau_min_gain ? stale_rounds_ + 1 : 0;
  ++rounds_completed_;

  // Autosave and backlog flush degrade instead of killing the round
  // loop: a failed save leaves the round's deltas queued in the pending
  // backlog, records the error (save_failures / last_save_error, for
  // supervisors to report), and retries on the next save trigger. The
  // fuzzing state itself is never at risk — only its durability lags
  // until the disk recovers.
  if (options_.autosave_every > 0 && !options_.autosave_dir.empty() &&
      rounds_completed_ % options_.autosave_every == 0) {
    (void)Save(options_.autosave_dir);
  }
  // Bound-session backlog flush: rather than drop pending deltas (which
  // would force the next Save to rewrite a committed base non-atomically
  // across files), persist them once the backlog hits the horizon. This
  // keeps pending memory bounded AND guarantees a bound directory only
  // ever advances through the crash-safe incremental path.
  const int flush_horizon = std::max(1, options_.journal_compact_every) * 4;
  if (!bound_dir_.empty() &&
      rounds_completed_ - durable_rounds_ >= flush_horizon) {
    (void)Save(bound_dir_);
  }
  return util::Status::Ok();
}

util::Status
Session::Run()
{
  if (suites_.empty()) {
    return util::Status::Error("session: no suites registered");
  }
  if (options_.rounds <= 0 && options_.plateau_rounds <= 0) {
    return util::Status::Error(
        "session: unbounded schedule (rounds <= 0 with no plateau rule)");
  }
  int ran = 0;
  while (true) {
    if (options_.rounds > 0 && ran >= options_.rounds) break;
    if (Plateaued()) break;
    util::Status status = RunRound();
    if (!status.ok()) return status;
    ++ran;
  }
  return util::Status::Ok();
}

SessionManifest
Session::MakeManifest() const
{
  SessionManifest manifest;
  manifest.seed = options_.seed;
  manifest.schedule = ScheduleName(options_.schedule);
  manifest.seed_stride = options_.seed_stride;
  manifest.carry_corpus = options_.carry_corpus;
  manifest.distill = options_.distill_between_rounds;
  manifest.rounds_completed = rounds_completed_;
  manifest.stale_rounds = stale_rounds_;
  for (const Entry& e : suites_) {
    manifest.suites.emplace_back(SuiteFingerprint(*e.lib), e.state.name);
  }
  return manifest;
}

util::Status
Session::WriteManifestFile(const std::string& dir) const
{
  return WriteStringToFile(dir + "/session.manifest",
                           SerializeManifest(MakeManifest()));
}

bool
Session::HasPendingRange() const
{
  for (const Entry& e : suites_) {
    int need = durable_rounds_;
    for (const SuiteDelta& d : e.pending) {
      if (d.report.round < need) continue;
      if (d.report.round != need) return false;
      ++need;
    }
    if (need < rounds_completed_) return false;
  }
  return true;
}

util::Status
Session::Save(const std::string& dir)
{
  util::Status status = SaveInner(dir);
  if (status.ok()) {
    save_failures_ = 0;
    last_save_error_.clear();
  } else {
    ++save_failures_;
    last_save_error_ = status.message();
  }
  return status;
}

util::Status
Session::SaveInner(const std::string& dir)
{
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::Error(util::Format(
        "session: cannot create '%s': %s", dir.c_str(),
        ec.message().c_str()));
  }

  // Incremental path: same directory as the last save/resume, and every
  // round since then is still held as a pending delta. Anything else
  // (first save, new directory, pruned deltas — or a journal left in an
  // unknown state by an earlier failure) rewrites the full base.
  if (dir != bound_dir_ || force_full_save_ || !HasPendingRange()) {
    return SaveFull(dir);
  }
  if (durable_rounds_ == rounds_completed_) return util::Status::Ok();

  // Append the new rounds' records, fsynced, BEFORE the manifest names
  // them: the manifest rename is the commit point, so a crash in between
  // merely leaves an uncommitted tail Resume truncates away (and a
  // deterministic re-run re-appends byte-identical records, which replay
  // skips as already folded in).
  for (size_t i = 0; i < suites_.size(); ++i) {
    Entry& e = suites_[i];
    std::string batch;
    for (const SuiteDelta& d : e.pending) {
      if (d.report.round < durable_rounds_) continue;
      batch += FrameJournalRecord(SerializeDelta(d, *e.lib));
    }
    if (batch.empty()) continue;
    const std::string journal_path = dir + "/" + JournalFileName(i);
    std::error_code size_ec;
    const uintmax_t intact_size =
        std::filesystem::file_size(journal_path, size_ec);
    util::Status status = util::AppendFileDurable(journal_path, batch);
    if (!status.ok()) {
      // Heal in place: a failed append may have landed partial bytes,
      // and the journal scanner stops at a torn record — leaving it
      // would strand every later append behind the tear. Truncate back
      // to the pre-append size; if even that fails (or the size was
      // unknowable), the next save must rebuild a fresh base instead of
      // appending after damage it cannot see.
      std::error_code trunc_ec;
      if (!size_ec) {
        std::filesystem::resize_file(journal_path, intact_size, trunc_ec);
      }
      if (size_ec || trunc_ec) force_full_save_ = true;
      return status;
    }
  }
  util::Status status = WriteManifestFile(dir);
  if (!status.ok()) return status;
  durable_rounds_ = rounds_completed_;
  for (Entry& e : suites_) {
    e.pending.erase(
        std::remove_if(e.pending.begin(), e.pending.end(),
                       [this](const SuiteDelta& d) {
                         return d.report.round < durable_rounds_;
                       }),
        e.pending.end());
  }

  if (rounds_completed_ - base_rounds_ >=
      std::max(1, options_.journal_compact_every)) {
    // Compaction: fold the journal into a fresh base. The directory is
    // already resumable at this round, so a crash anywhere inside
    // SaveFull loses nothing — replay just skips records the new base
    // already folds in.
    return SaveFull(dir);
  }
  return util::Status::Ok();
}

util::Status
Session::SaveFull(const std::string& dir)
{
  util::Status status = util::Status::Ok();
  for (size_t i = 0; i < suites_.size(); ++i) {
    const Entry& e = suites_[i];
    SuiteSnapshot snapshot;
    snapshot.name = e.state.name;
    snapshot.fingerprint = SuiteFingerprint(*e.lib);
    snapshot.programs_executed = e.state.programs_executed;
    snapshot.wall_seconds = e.state.wall_seconds;
    snapshot.coverage = e.state.coverage.SortedBlocks();
    snapshot.crashes = e.state.crashes;
    snapshot.corpus = e.state.corpus;
    snapshot.crash_reproducers = e.state.crash_reproducers;
    snapshot.rounds = e.state.rounds;
    status = WriteStringToFile(
        dir + "/" + SuiteFileName(i),
        options_.snapshot_codec == SnapshotCodec::kBinary
            ? SerializeSuiteBinary(snapshot, *e.lib)
            : SerializeSuite(snapshot, *e.lib));
    if (!status.ok()) return status;

    JournalHeader header;
    header.fingerprint = snapshot.fingerprint;
    header.suite_name = e.state.name;
    header.base_rounds = rounds_completed_;
    status = WriteStringToFile(dir + "/" + JournalFileName(i),
                               SerializeJournalHeader(header));
    if (!status.ok()) return status;
  }
  PruneStaleFiles(dir, suites_.size());
  // Manifest last: it is the commit point, and everything it names is
  // already durable when it lands.
  status = WriteManifestFile(dir);
  if (!status.ok()) return status;

  bound_dir_ = dir;
  base_rounds_ = rounds_completed_;
  durable_rounds_ = rounds_completed_;
  force_full_save_ = false;
  for (Entry& e : suites_) e.pending.clear();
  return util::Status::Ok();
}

util::Status
Session::Resume(const std::string& dir)
{
  if (rounds_completed_ > 0) {
    return util::Status::Error(
        "session: Resume requires a fresh session (rounds already run)");
  }
  if (suites_.empty()) {
    return util::Status::Error(
        "session: register the snapshot's suites before Resume");
  }

  std::string text;
  util::Status status = ReadFileToString(dir + "/session.manifest", &text);
  if (!status.ok()) return status;
  SessionManifest manifest;
  status = ParseManifest(text, &manifest);
  if (!status.ok()) return status;

  if (manifest.seed != options_.seed) {
    return util::Status::Error(util::Format(
        "session: snapshot was taken at seed %llx but this session is "
        "configured with seed %llx",
        static_cast<unsigned long long>(manifest.seed),
        static_cast<unsigned long long>(options_.seed)));
  }
  if (manifest.schedule != ScheduleName(options_.schedule) ||
      (options_.schedule == SeedSchedule::kArithmetic &&
       manifest.seed_stride != options_.seed_stride)) {
    return util::Status::Error(util::Format(
        "session: snapshot schedule %s/stride %llu does not match the "
        "configured %s/stride %llu",
        manifest.schedule.c_str(),
        static_cast<unsigned long long>(manifest.seed_stride),
        ScheduleName(options_.schedule),
        static_cast<unsigned long long>(options_.seed_stride)));
  }
  if (manifest.carry_corpus != options_.carry_corpus ||
      manifest.distill != options_.distill_between_rounds) {
    return util::Status::Error(
        "session: snapshot corpus lifecycle (carry/distill) does not match "
        "the configured options — the continuation would diverge from an "
        "uninterrupted run");
  }
  if (manifest.suites.size() != suites_.size()) {
    return util::Status::Error(util::Format(
        "session: snapshot has %zu suites but %zu are registered",
        manifest.suites.size(), suites_.size()));
  }
  for (size_t i = 0; i < suites_.size(); ++i) {
    if (manifest.suites[i].second != suites_[i].state.name) {
      return util::Status::Error(util::Format(
          "session: suite %zu is '%s' in the snapshot but '%s' here",
          i, manifest.suites[i].second.c_str(),
          suites_[i].state.name.c_str()));
    }
    const uint64_t fingerprint = SuiteFingerprint(*suites_[i].lib);
    if (manifest.suites[i].first != fingerprint) {
      return util::Status::Error(util::Format(
          "session: suite '%s' specs drifted since the snapshot "
          "(fingerprint %016llx vs %016llx) — its programs would not "
          "replay identically",
          suites_[i].state.name.c_str(),
          static_cast<unsigned long long>(manifest.suites[i].first),
          static_cast<unsigned long long>(fingerprint)));
    }
  }

  // Parse and validate every suite file — base snapshot plus journal
  // replay — before touching any live state, so a corrupt or missing
  // file leaves the session exactly as it was (a half-restored session
  // would match neither a fresh nor a resumed run).
  struct LoadedSuite {
    SuiteSnapshot base;
    int base_rounds = 0;             ///< Rounds the base folds in.
    std::vector<SuiteDelta> deltas;  ///< To replay, in round order.
    std::string journal_path;
    bool rewrite_journal = false;  ///< Missing/corrupt but not needed.
    size_t truncate_to = 0;        ///< > 0: drop the uncommitted tail.
  };
  std::vector<LoadedSuite> loaded(suites_.size());
  for (size_t i = 0; i < suites_.size(); ++i) {
    LoadedSuite& l = loaded[i];
    status = ReadFileToString(dir + "/" + SuiteFileName(i), &text);
    if (!status.ok()) return status;
    // Codec-sniffing load: the directory may have been written under
    // either codec (or converted between them) regardless of what this
    // session is configured to write.
    status = ParseSuiteAuto(text, *suites_[i].lib, &l.base);
    if (!status.ok()) return status;
    if (l.base.name != suites_[i].state.name ||
        l.base.fingerprint != manifest.suites[i].first) {
      return util::Status::Error(util::Format(
          "session: %s does not belong to this snapshot (suite '%s')",
          SuiteFileName(i).c_str(), suites_[i].state.name.c_str()));
    }
    const int base_rounds = l.base_rounds =
        static_cast<int>(l.base.rounds.size());
    if (base_rounds > manifest.rounds_completed) {
      return util::Status::Error(util::Format(
          "session: %s folds in %d rounds but the manifest only committed "
          "%d — the directory mixes snapshot generations",
          SuiteFileName(i).c_str(), base_rounds, manifest.rounds_completed));
    }

    // Scan the journal. Header-level damage (missing file, wrong suite,
    // version mismatch) makes the whole journal unusable; record-level
    // damage ends the scan at the last intact record. Either way, what
    // matters is whether the usable records reach the committed round.
    l.journal_path = dir + "/" + JournalFileName(i);
    std::string jtext;
    JournalScan scan;
    bool have_scan = false;
    std::string journal_error;
    util::Status jstatus = ReadFileToString(l.journal_path, &jtext);
    if (jstatus.ok()) {
      util::Status sstatus = ScanJournal(jtext, &scan);
      if (!sstatus.ok()) {
        journal_error = sstatus.message();
      } else if (scan.header.fingerprint != manifest.suites[i].first ||
                 scan.header.suite_name != suites_[i].state.name) {
        journal_error = "journal belongs to a different suite";
      } else if (scan.header.base_rounds > base_rounds) {
        journal_error = util::Format(
            "journal expects a base of %d rounds but %s has %d",
            scan.header.base_rounds, SuiteFileName(i).c_str(), base_rounds);
      } else {
        have_scan = true;
      }
    } else {
      journal_error = jstatus.message();
    }

    // Replay plan: skip records the base already folds in (they survive
    // a crash mid-compaction), apply in strict round order up to the
    // committed round, and treat everything past it — torn or intact —
    // as an uncommitted tail to truncate away.
    int current = base_rounds;
    size_t keep_end = scan.header_end;
    std::string record_error = have_scan ? scan.tail_error : journal_error;
    if (have_scan) {
      for (auto& [payload, end_offset] : scan.records) {
        SuiteDelta delta;
        util::Status dstatus = ParseDelta(payload, *suites_[i].lib, &delta);
        if (!dstatus.ok()) {
          record_error = dstatus.message();
          break;
        }
        if (delta.report.round < current) {
          keep_end = end_offset;
          continue;
        }
        if (delta.report.round > current) {
          record_error = util::Format(
              "journal gap: expected round %d, found round %d", current,
              delta.report.round);
          break;
        }
        if (current >= manifest.rounds_completed) break;
        l.deltas.push_back(std::move(delta));
        keep_end = end_offset;
        ++current;
      }
    }
    if (current < manifest.rounds_completed) {
      // The damage reaches into committed state: refuse rather than
      // resume a session that would silently diverge.
      return util::Status::Error(util::Format(
          "session: suite '%s' is committed through round %d but its base "
          "folds in %d rounds and the journal only replays to round %d "
          "(%s)",
          suites_[i].state.name.c_str(), manifest.rounds_completed,
          base_rounds, current,
          record_error.empty() ? "journal ends early"
                               : record_error.c_str()));
    }
    if (!have_scan) {
      // Unusable journal, but the base alone covers the commit (e.g. a
      // pre-journal snapshot, or a crash mid-compaction after the new
      // base landed): start a fresh journal over this base.
      l.rewrite_journal = true;
    } else if (keep_end < jtext.size()) {
      l.truncate_to = keep_end;
    }
  }

  // Heal the on-disk journals before mutating session state — these are
  // pure disk operations, so a failure still leaves the session object
  // untouched. Truncating the uncommitted tail is what makes future
  // appends land after the last committed record instead of after
  // garbage.
  for (size_t i = 0; i < suites_.size(); ++i) {
    LoadedSuite& l = loaded[i];
    if (l.rewrite_journal) {
      JournalHeader header;
      header.fingerprint = manifest.suites[i].first;
      header.suite_name = suites_[i].state.name;
      header.base_rounds = l.base_rounds;
      status = WriteStringToFile(l.journal_path,
                                 SerializeJournalHeader(header));
      if (!status.ok()) return status;
    } else if (l.truncate_to > 0) {
      std::error_code ec;
      std::filesystem::resize_file(l.journal_path, l.truncate_to, ec);
      if (ec) {
        return util::Status::Error(util::Format(
            "session: cannot truncate torn tail of '%s': %s",
            l.journal_path.c_str(), ec.message().c_str()));
      }
    }
  }

  // Build every suite's state off to the side, then install: journal
  // replay can still fail (e.g. a kept-index out of range), and the
  // no-partial-restore guarantee must hold through it.
  std::vector<SuiteState> states(suites_.size());
  for (size_t i = 0; i < suites_.size(); ++i) {
    SuiteSnapshot& snapshot = loaded[i].base;
    SuiteState& state = states[i];
    state.name = suites_[i].state.name;
    for (uint64_t block : snapshot.coverage) state.coverage.Hit(block);
    state.crashes = std::move(snapshot.crashes);
    state.crash_reproducers = std::move(snapshot.crash_reproducers);
    state.corpus = std::move(snapshot.corpus);
    state.programs_executed = snapshot.programs_executed;
    state.wall_seconds = snapshot.wall_seconds;
    state.rounds = std::move(snapshot.rounds);
    for (const SuiteDelta& delta : loaded[i].deltas) {
      status = ApplyDeltaToState(delta, &state);
      if (!status.ok()) {
        return util::Status::Error(util::Format(
            "session: suite '%s': %s", state.name.c_str(),
            status.message().c_str()));
      }
    }
    if (static_cast<int>(state.rounds.size()) != manifest.rounds_completed) {
      return util::Status::Error(util::Format(
          "session: suite '%s' replayed to %zu rounds but the manifest "
          "committed %d",
          state.name.c_str(), state.rounds.size(),
          manifest.rounds_completed));
    }
  }

  int min_base_rounds = manifest.rounds_completed;
  for (size_t i = 0; i < suites_.size(); ++i) {
    suites_[i].state = std::move(states[i]);
    suites_[i].pending.clear();
    min_base_rounds = std::min(min_base_rounds, loaded[i].base_rounds);
  }
  rounds_completed_ = manifest.rounds_completed;
  stale_rounds_ = manifest.stale_rounds;
  bound_dir_ = dir;
  base_rounds_ = min_base_rounds;
  durable_rounds_ = manifest.rounds_completed;
  force_full_save_ = false;
  save_failures_ = 0;
  last_save_error_.clear();
  return util::Status::Ok();
}

util::Status
Session::DistillInto(const std::string& name, const std::vector<Prog>& merged,
                     DistillResult* out) const
{
  for (const Entry& e : suites_) {
    if (e.state.name != name) continue;
    Distiller distiller(e.lib.get(), boot_, options_.distill);
    *out = distiller.Distill(merged);
    return util::Status::Ok();
  }
  return util::Status::Error(
      util::Format("session: no suite named '%s'", name.c_str()));
}

std::vector<std::string>
Session::SuiteNames() const
{
  std::vector<std::string> names;
  names.reserve(suites_.size());
  for (const Entry& e : suites_) names.push_back(e.state.name);
  return names;
}

const SuiteState*
Session::Find(const std::string& name) const
{
  for (const Entry& e : suites_) {
    if (e.state.name == name) return &e.state;
  }
  return nullptr;
}

SuiteState*
Session::Find(const std::string& name)
{
  for (Entry& e : suites_) {
    if (e.state.name == name) return &e.state;
  }
  return nullptr;
}

}  // namespace kernelgpt::fuzzer
