#include "fuzzer/session.h"

#include <filesystem>
#include <utility>

#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::fuzzer {
namespace {

const char*
ScheduleName(SeedSchedule schedule)
{
  return schedule == SeedSchedule::kHashChain ? "hash-chain" : "arithmetic";
}

std::string
SuiteFileName(size_t index)
{
  // Indexed, not name-derived: suite names are free-form display strings
  // ("Syzkaller + KernelGPT") and the registration order is already the
  // deterministic identity the manifest records.
  return util::Format("suite_%zu.snap", index);
}

}  // namespace

Session::Session(SessionOptions options, Orchestrator::BootFn boot)
    : options_(std::move(options)), boot_(std::move(boot))
{
  if (options_.orchestrator.num_workers < 1) {
    options_.orchestrator.num_workers = 1;
  }
}

util::Status
Session::Register(const std::string& name,
                  std::shared_ptr<const SpecLibrary> lib)
{
  if (name.empty()) {
    return util::Status::Error("session: suite name must not be empty");
  }
  if (name.find('\n') != std::string::npos ||
      name.find('\r') != std::string::npos) {
    // Names are embedded verbatim in the line-oriented snapshot; a
    // newline would make Save() emit a file Resume() can never parse.
    return util::Status::Error(
        "session: suite name must not contain line breaks");
  }
  if (rounds_completed_ > 0) {
    return util::Status::Error(util::Format(
        "session: cannot register suite '%s' after round %d has run "
        "(register every suite before Run/Resume)",
        name.c_str(), rounds_completed_));
  }
  for (const Entry& e : suites_) {
    if (e.state.name == name) {
      return util::Status::Error(
          util::Format("session: suite '%s' already registered", name.c_str()));
    }
  }
  if (!lib) {
    return util::Status::Error(
        util::Format("session: suite '%s' has no spec library", name.c_str()));
  }
  if (lib->syscalls().empty()) {
    // The old free functions fell through to an empty result here; a
    // service must refuse the misconfiguration instead.
    return util::Status::Error(util::Format(
        "session: suite '%s' has no syscalls (empty or unfinalized library)",
        name.c_str()));
  }
  Entry entry;
  entry.lib = std::move(lib);
  entry.state.name = name;
  suites_.push_back(std::move(entry));
  return util::Status::Ok();
}

util::Status
Session::RegisterSuite(const std::string& name, const SpecLibrary* lib)
{
  // Aliasing shared_ptr with an empty control block: non-owning view.
  return Register(name,
                  std::shared_ptr<const SpecLibrary>(
                      std::shared_ptr<const SpecLibrary>(), lib));
}

util::Status
Session::RegisterSuite(const std::string& name, SpecLibrary lib)
{
  return Register(name,
                  std::make_shared<const SpecLibrary>(std::move(lib)));
}

uint64_t
Session::RoundSeed(int round) const
{
  const uint64_t r = static_cast<uint64_t>(round);
  switch (options_.schedule) {
    case SeedSchedule::kHashChain:
      // Round 0 keeps the master seed so a 1-round hash-chain session is
      // bit-identical to a plain sharded campaign on that seed.
      return round == 0 ? options_.seed : util::HashCombine(options_.seed, r);
    case SeedSchedule::kArithmetic:
      return options_.seed + r * options_.seed_stride;
  }
  return options_.seed;
}

util::Status
Session::RunRound()
{
  if (suites_.empty()) {
    return util::Status::Error("session: no suites registered");
  }
  const int round = rounds_completed_;
  const uint64_t seed = RoundSeed(round);
  size_t total_delta = 0;

  for (Entry& e : suites_) {
    OrchestratorOptions orchestrator = options_.orchestrator;
    orchestrator.campaign.seed = seed;
    if (options_.carry_corpus) {
      orchestrator.campaign.seed_corpus = std::move(e.state.corpus);
      e.state.corpus.clear();
    }

    OrchestratorResult campaign =
        RunShardedCampaign(*e.lib, boot_, orchestrator);

    RoundReport report;
    report.round = round;
    report.seed = seed;
    report.programs_executed = campaign.programs_executed;
    report.round_coverage = campaign.coverage.Count();
    report.round_unique_crashes = campaign.crashes.size();
    report.coverage_delta = e.state.coverage.Merge(campaign.coverage);
    report.cumulative_coverage = e.state.coverage.Count();
    for (const auto& [title, count] : campaign.crashes) {
      e.state.crashes[title] += count;
    }
    report.cumulative_unique_crashes = e.state.crashes.size();
    report.merged_corpus = campaign.corpus.size();
    report.wall_seconds = campaign.wall_seconds;
    report.epochs = std::move(campaign.epochs);

    e.state.programs_executed += campaign.programs_executed;
    e.state.wall_seconds += campaign.wall_seconds;

    if (options_.distill_between_rounds) {
      Distiller distiller(e.lib.get(), boot_, options_.distill);
      DistillResult distilled = distiller.Distill(campaign.corpus);
      for (auto& [title, prog] : distilled.crash_reproducers) {
        e.state.crash_reproducers[title] = std::move(prog);
      }
      report.distilled_corpus = distilled.corpus.size();
      e.state.corpus = std::move(distilled.corpus);
    } else {
      report.distilled_corpus = campaign.corpus.size();
      e.state.corpus = std::move(campaign.corpus);
    }

    total_delta += report.coverage_delta;
    e.state.rounds.push_back(std::move(report));
  }

  stale_rounds_ =
      total_delta < options_.plateau_min_gain ? stale_rounds_ + 1 : 0;
  ++rounds_completed_;
  return util::Status::Ok();
}

util::Status
Session::Run()
{
  if (suites_.empty()) {
    return util::Status::Error("session: no suites registered");
  }
  if (options_.rounds <= 0 && options_.plateau_rounds <= 0) {
    return util::Status::Error(
        "session: unbounded schedule (rounds <= 0 with no plateau rule)");
  }
  int ran = 0;
  while (true) {
    if (options_.rounds > 0 && ran >= options_.rounds) break;
    if (Plateaued()) break;
    util::Status status = RunRound();
    if (!status.ok()) return status;
    ++ran;
  }
  return util::Status::Ok();
}

util::Status
Session::Save(const std::string& dir) const
{
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::Error(util::Format(
        "session: cannot create '%s': %s", dir.c_str(),
        ec.message().c_str()));
  }

  SessionManifest manifest;
  manifest.seed = options_.seed;
  manifest.schedule = ScheduleName(options_.schedule);
  manifest.seed_stride = options_.seed_stride;
  manifest.carry_corpus = options_.carry_corpus;
  manifest.distill = options_.distill_between_rounds;
  manifest.rounds_completed = rounds_completed_;
  manifest.stale_rounds = stale_rounds_;
  for (const Entry& e : suites_) {
    manifest.suites.emplace_back(SuiteFingerprint(*e.lib), e.state.name);
  }
  util::Status status = WriteStringToFile(dir + "/session.manifest",
                                          SerializeManifest(manifest));
  if (!status.ok()) return status;

  for (size_t i = 0; i < suites_.size(); ++i) {
    const Entry& e = suites_[i];
    SuiteSnapshot snapshot;
    snapshot.name = e.state.name;
    snapshot.fingerprint = manifest.suites[i].first;
    snapshot.programs_executed = e.state.programs_executed;
    snapshot.wall_seconds = e.state.wall_seconds;
    snapshot.coverage = e.state.coverage.SortedBlocks();
    snapshot.crashes = e.state.crashes;
    snapshot.corpus = e.state.corpus;
    snapshot.crash_reproducers = e.state.crash_reproducers;
    snapshot.rounds = e.state.rounds;
    status = WriteStringToFile(dir + "/" + SuiteFileName(i),
                               SerializeSuite(snapshot, *e.lib));
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

util::Status
Session::Resume(const std::string& dir)
{
  if (rounds_completed_ > 0) {
    return util::Status::Error(
        "session: Resume requires a fresh session (rounds already run)");
  }
  if (suites_.empty()) {
    return util::Status::Error(
        "session: register the snapshot's suites before Resume");
  }

  std::string text;
  util::Status status = ReadFileToString(dir + "/session.manifest", &text);
  if (!status.ok()) return status;
  SessionManifest manifest;
  status = ParseManifest(text, &manifest);
  if (!status.ok()) return status;

  if (manifest.seed != options_.seed) {
    return util::Status::Error(util::Format(
        "session: snapshot was taken at seed %llx but this session is "
        "configured with seed %llx",
        static_cast<unsigned long long>(manifest.seed),
        static_cast<unsigned long long>(options_.seed)));
  }
  if (manifest.schedule != ScheduleName(options_.schedule) ||
      (options_.schedule == SeedSchedule::kArithmetic &&
       manifest.seed_stride != options_.seed_stride)) {
    return util::Status::Error(util::Format(
        "session: snapshot schedule %s/stride %llu does not match the "
        "configured %s/stride %llu",
        manifest.schedule.c_str(),
        static_cast<unsigned long long>(manifest.seed_stride),
        ScheduleName(options_.schedule),
        static_cast<unsigned long long>(options_.seed_stride)));
  }
  if (manifest.carry_corpus != options_.carry_corpus ||
      manifest.distill != options_.distill_between_rounds) {
    return util::Status::Error(
        "session: snapshot corpus lifecycle (carry/distill) does not match "
        "the configured options — the continuation would diverge from an "
        "uninterrupted run");
  }
  if (manifest.suites.size() != suites_.size()) {
    return util::Status::Error(util::Format(
        "session: snapshot has %zu suites but %zu are registered",
        manifest.suites.size(), suites_.size()));
  }
  for (size_t i = 0; i < suites_.size(); ++i) {
    if (manifest.suites[i].second != suites_[i].state.name) {
      return util::Status::Error(util::Format(
          "session: suite %zu is '%s' in the snapshot but '%s' here",
          i, manifest.suites[i].second.c_str(),
          suites_[i].state.name.c_str()));
    }
    const uint64_t fingerprint = SuiteFingerprint(*suites_[i].lib);
    if (manifest.suites[i].first != fingerprint) {
      return util::Status::Error(util::Format(
          "session: suite '%s' specs drifted since the snapshot "
          "(fingerprint %016llx vs %016llx) — its programs would not "
          "replay identically",
          suites_[i].state.name.c_str(),
          static_cast<unsigned long long>(manifest.suites[i].first),
          static_cast<unsigned long long>(fingerprint)));
    }
  }

  // Parse and validate every suite file before touching any live state,
  // so a corrupt or missing file leaves the session exactly as it was
  // (a half-restored session would match neither a fresh nor a resumed
  // run).
  std::vector<SuiteSnapshot> snapshots(suites_.size());
  for (size_t i = 0; i < suites_.size(); ++i) {
    status = ReadFileToString(dir + "/" + SuiteFileName(i), &text);
    if (!status.ok()) return status;
    status = ParseSuite(text, *suites_[i].lib, &snapshots[i]);
    if (!status.ok()) return status;
    if (snapshots[i].name != suites_[i].state.name ||
        snapshots[i].fingerprint != manifest.suites[i].first) {
      return util::Status::Error(util::Format(
          "session: %s does not belong to this snapshot (suite '%s')",
          SuiteFileName(i).c_str(), suites_[i].state.name.c_str()));
    }
  }

  for (size_t i = 0; i < suites_.size(); ++i) {
    SuiteSnapshot& snapshot = snapshots[i];
    SuiteState& state = suites_[i].state;
    state.coverage.Clear();
    for (uint64_t block : snapshot.coverage) state.coverage.Hit(block);
    state.crashes = std::move(snapshot.crashes);
    state.crash_reproducers = std::move(snapshot.crash_reproducers);
    state.corpus = std::move(snapshot.corpus);
    state.programs_executed = snapshot.programs_executed;
    state.wall_seconds = snapshot.wall_seconds;
    state.rounds = std::move(snapshot.rounds);
  }
  rounds_completed_ = manifest.rounds_completed;
  stale_rounds_ = manifest.stale_rounds;
  return util::Status::Ok();
}

util::Status
Session::DistillInto(const std::string& name, const std::vector<Prog>& merged,
                     DistillResult* out) const
{
  for (const Entry& e : suites_) {
    if (e.state.name != name) continue;
    Distiller distiller(e.lib.get(), boot_, options_.distill);
    *out = distiller.Distill(merged);
    return util::Status::Ok();
  }
  return util::Status::Error(
      util::Format("session: no suite named '%s'", name.c_str()));
}

std::vector<std::string>
Session::SuiteNames() const
{
  std::vector<std::string> names;
  names.reserve(suites_.size());
  for (const Entry& e : suites_) names.push_back(e.state.name);
  return names;
}

const SuiteState*
Session::Find(const std::string& name) const
{
  for (const Entry& e : suites_) {
    if (e.state.name == name) return &e.state;
  }
  return nullptr;
}

SuiteState*
Session::Find(const std::string& name)
{
  for (Entry& e : suites_) {
    if (e.state.name == name) return &e.state;
  }
  return nullptr;
}

}  // namespace kernelgpt::fuzzer
