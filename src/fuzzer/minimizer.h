/// \file
/// Crash-reproducer minimization (the syz-repro step of the Syzkaller
/// workflow): shrinks a crashing program to a minimal sequence that still
/// triggers the same crash title, by call removal and argument
/// simplification. Deterministic — the virtual kernel replays programs
/// exactly.

#ifndef KERNELGPT_FUZZER_MINIMIZER_H_
#define KERNELGPT_FUZZER_MINIMIZER_H_

#include <string>

#include "fuzzer/executor.h"

namespace kernelgpt::fuzzer {

/// Outcome of a minimization run.
struct MinimizeResult {
  Prog prog;              ///< The minimized reproducer.
  size_t executions = 0;  ///< Programs executed while shrinking.
  bool reproduced = false;  ///< False if the input never crashed.
};

/// Shrinks `crashing` while it keeps producing `crash_title` on `kernel`.
/// Two passes to fixpoint: (1) drop calls one at a time (fixing resource
/// references), (2) zero out scalar arguments that are not needed for the
/// crash. The input program is not modified.
MinimizeResult MinimizeCrash(vkernel::Kernel* kernel, const SpecLibrary& lib,
                             const Prog& crashing,
                             const std::string& crash_title);

/// Same, reusing a caller-owned executor — the distiller minimizes one
/// reproducer per crash title and would otherwise rebuild an executor
/// (and its scratch buffers) for every title. The executor must not have
/// a batch window open; the minimizer opens and closes its own.
MinimizeResult MinimizeCrash(Executor* executor, const Prog& crashing,
                             const std::string& crash_title);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_MINIMIZER_H_
