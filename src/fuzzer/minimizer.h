/// \file
/// Reproducer minimization (the syz-repro step of the Syzkaller
/// workflow): shrinks a program to a minimal sequence that still holds a
/// caller-defined property, by call removal and argument simplification.
/// Deterministic — the virtual kernel replays programs exactly. The
/// classic client is crash minimization (property: "still produces this
/// crash title"); the differential oracle minimizes divergences with the
/// property "the two models still disagree with this signature".

#ifndef KERNELGPT_FUZZER_MINIMIZER_H_
#define KERNELGPT_FUZZER_MINIMIZER_H_

#include <functional>
#include <string>

#include "fuzzer/executor.h"

namespace kernelgpt::fuzzer {

/// Outcome of a minimization run.
struct MinimizeResult {
  Prog prog;              ///< The minimized reproducer.
  size_t executions = 0;  ///< Candidate evaluations while shrinking.
  bool reproduced = false;  ///< False if the input never held the property.
};

/// The property a candidate program must keep for minimization to accept
/// it. Evaluations must be deterministic and side-effect-free on the
/// caller's state (each evaluation replays the candidate from a fresh
/// program state).
using MinimizeProperty = std::function<bool(const Prog&)>;

/// Shrinks `input` while `property` holds. Three passes: (1) drop calls
/// one at a time to fixpoint (fixing resource references), (2) zero
/// scalar arguments the property does not depend on, (3) zero buffer
/// bytes chunk-wise. The input program is not modified. If the property
/// does not hold for `input` itself, returns it unshrunk with
/// `reproduced == false`.
MinimizeResult MinimizeWhile(const Prog& input,
                             const MinimizeProperty& property);

/// Shrinks `crashing` while it keeps producing `crash_title` on `kernel`.
MinimizeResult MinimizeCrash(vkernel::KernelModel* kernel,
                             const SpecLibrary& lib, const Prog& crashing,
                             const std::string& crash_title);

/// Same, reusing a caller-owned executor — the distiller minimizes one
/// reproducer per crash title and would otherwise rebuild an executor
/// (and its scratch buffers) for every title. The executor must not have
/// a batch window open; the minimizer opens and closes its own.
MinimizeResult MinimizeCrash(Executor* executor, const Prog& crashing,
                             const std::string& crash_title);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_MINIMIZER_H_
