/// \file
/// Program representation: a sequence of syscall invocations with
/// concrete arguments, resource references between calls, and len
/// linkage — the unit the generator produces, the mutator perturbs, and
/// the executor runs against the virtual kernel.

#ifndef KERNELGPT_FUZZER_PROG_H_
#define KERNELGPT_FUZZER_PROG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzzer/spec_library.h"

namespace kernelgpt::fuzzer {

/// One concrete argument of one call.
struct Arg {
  enum class Kind {
    kScalar,       ///< Immediate value.
    kBuffer,       ///< Pointer argument with attached user memory.
    kResourceRef,  ///< Uses the result (fd) of an earlier call.
  };
  Kind kind = Kind::kScalar;
  uint64_t scalar = 0;
  std::vector<uint8_t> bytes;            ///< kBuffer payload.
  syzlang::Dir dir = syzlang::Dir::kIn;  ///< kBuffer direction.
  int ref_call = -1;                     ///< kResourceRef producer index.
  /// When >= 0, this scalar's value is the generated length of the
  /// sibling parameter with that index (len[...] at syscall level).
  /// kBrokenLenLink marks a deliberately corrupted length that relinking
  /// must not repair.
  int len_of_param = -1;
};

/// Sentinel for Arg::len_of_param (see above).
inline constexpr int kBrokenLenLink = -2;

/// One syscall invocation.
struct Call {
  size_t syscall_index = 0;  ///< Index into the SpecLibrary.
  std::vector<Arg> args;
};

/// A fuzz program.
struct Prog {
  std::vector<Call> calls;

  bool empty() const { return calls.empty(); }
  size_t size() const { return calls.size(); }
};

/// Renders a program as readable pseudo-syzlang (for reports/examples).
std::string FormatProg(const Prog& prog, const SpecLibrary& lib);

/// Stable structural hash over every field of every call (syscall index,
/// argument kinds, scalars, buffer bytes, resource refs, len links).
/// Equal programs hash equal on any platform/run; used for exact-duplicate
/// detection when corpora from many shards are merged for distillation.
uint64_t HashProg(const Prog& prog);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_PROG_H_
