#include "fuzzer/diff_runner.h"

#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "fuzzer/minimizer.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {

namespace {

/// Ops whose retval is a descriptor in the model's own fd space. Raw
/// values differ between layouts by design, so the normalized compare
/// only looks at (success, errno) for these.
bool
ProducesFd(SyscallOp op)
{
  switch (op) {
    case SyscallOp::kOpen:
    case SyscallOp::kOpenat:
    case SyscallOp::kDup:
    case SyscallOp::kSocket:
    case SyscallOp::kAccept:
      return true;
    default:
      return false;
  }
}

/// Renders one result under the normalization for `op`.
std::string
RenderNorm(SyscallOp op, const vkernel::SyscallResult& r)
{
  std::ostringstream out;
  if (ProducesFd(op)) {
    if (r.ok()) {
      out << "ok(fd)";
    } else {
      out << "errno=" << r.verrno;
    }
  } else {
    out << "ret=" << r.retval << " errno=" << r.verrno;
  }
  return out.str();
}

/// Do the two results agree under the normalization for `op`?
bool
NormEqual(SyscallOp op, const vkernel::SyscallResult& a,
          const vkernel::SyscallResult& b)
{
  if (ProducesFd(op)) return a.ok() == b.ok() && a.verrno == b.verrno;
  return a == b;
}

/// Pre-dedup divergence observed on one program.
struct RawDiv {
  Divergence::Kind kind = Divergence::Kind::kResult;
  size_t call_index = 0;
  std::string syscall;
  std::string signature;
  std::string detail;
};

/// One booted model with its executor; workers and the minimizer each
/// own a private pair of these.
struct ModelSide {
  std::unique_ptr<vkernel::KernelModel> model;
  std::unique_ptr<Executor> executor;
};

ModelSide
BuildSide(const vkernel::ModelFactory& factory,
          const std::function<void(vkernel::KernelModel*)>& boot,
          bool subject, const SpecLibrary* lib)
{
  ModelSide side;
  side.model = factory ? factory()
                       : (subject ? vkernel::MakePermissiveModel()
                                  : vkernel::MakeStrictModel());
  if (boot) boot(side.model.get());
  side.executor = std::make_unique<Executor>(side.model.get(), lib);
  return side;
}

/// Runs `prog` on both sides and reports the first divergence, if any.
/// Comparison precedence: first per-call result mismatch, then crash
/// state/title/timing, then end-of-program fd-table shape.
std::optional<RawDiv>
Evaluate(const Prog& prog, ModelSide& baseline, ModelSide& subject,
         const SpecLibrary& lib)
{
  ExecTrace base_trace;
  ExecTrace subj_trace;
  ExecResult base_res = baseline.executor->Run(prog, nullptr, &base_trace);
  ExecResult subj_res = subject.executor->Run(prog, nullptr, &subj_trace);

  size_t compared =
      std::min(base_res.calls_executed, subj_res.calls_executed);
  for (size_t i = 0; i < compared; ++i) {
    SyscallOp op = lib.OpcodeOf(prog.calls[i].syscall_index);
    const vkernel::SyscallResult& a = base_trace.results[i];
    const vkernel::SyscallResult& b = subj_trace.results[i];
    if (NormEqual(op, a, b)) continue;
    RawDiv div;
    div.kind = Divergence::Kind::kResult;
    div.call_index = i;
    div.syscall = lib.syscalls()[prog.calls[i].syscall_index].name;
    div.detail = RenderNorm(op, a) + " | " + RenderNorm(op, b);
    div.signature = "result " + div.syscall + ": " + div.detail;
    return div;
  }

  if (base_res.crashed != subj_res.crashed ||
      base_res.crash_title != subj_res.crash_title ||
      base_res.calls_executed != subj_res.calls_executed) {
    RawDiv div;
    div.kind = Divergence::Kind::kCrash;
    div.call_index = compared;
    std::ostringstream detail;
    detail << (base_res.crashed ? "crash '" + base_res.crash_title + "'"
                                : std::string("no crash"))
           << " | "
           << (subj_res.crashed ? "crash '" + subj_res.crash_title + "'"
                                : std::string("no crash"));
    div.detail = detail.str();
    div.signature = "crash " + div.detail;
    return div;
  }

  if (base_trace.end_shape != subj_trace.end_shape) {
    RawDiv div;
    div.kind = Divergence::Kind::kFdShape;
    std::ostringstream detail;
    detail << "files " << base_trace.end_shape.files_open << "|"
           << subj_trace.end_shape.files_open << " sockets "
           << base_trace.end_shape.sockets_open << "|"
           << subj_trace.end_shape.sockets_open;
    div.detail = detail.str();
    div.signature = "fdshape " + div.detail;
    return div;
  }

  // Module state last: a state difference with identical results/shapes
  // is the subtlest divergence class (e.g. one personality left a port
  // bound that the other released). Shapes are normalized by slot order,
  // so fd-numbering differences between layouts stay non-divergent.
  if (base_trace.module_state != subj_trace.module_state) {
    RawDiv div;
    div.kind = Divergence::Kind::kModuleState;
    div.detail = "'" + base_trace.module_state + "' | '" +
                 subj_trace.module_state + "'";
    div.signature = "modstate " + div.detail;
    return div;
  }
  return std::nullopt;
}

const char*
KindName(Divergence::Kind kind)
{
  switch (kind) {
    case Divergence::Kind::kResult: return "result";
    case Divergence::Kind::kCrash: return "crash";
    case Divergence::Kind::kFdShape: return "fdshape";
    case Divergence::Kind::kModuleState: return "modstate";
  }
  return "?";
}

}  // namespace

std::string
DiffReport::Render() const
{
  std::ostringstream out;
  out << "differential report: " << baseline_name << " vs " << subject_name
      << "\n";
  out << "programs=" << programs << " diverging=" << diverging_programs
      << " unique=" << divergences.size() << "\n";
  for (size_t i = 0; i < divergences.size(); ++i) {
    const Divergence& d = divergences[i];
    out << "[" << i + 1 << "] " << KindName(d.kind);
    if (d.kind == Divergence::Kind::kResult) {
      out << " " << d.syscall << " call=" << d.call_index;
    }
    out << " {" << d.detail << "} x" << d.occurrences << " prog="
        << d.prog_index << " repro_calls=" << d.repro.calls.size();
    if (d.minimized) out << " minimized";
    out << "\n";
    out << d.repro_text;
    if (!d.repro_text.empty() && d.repro_text.back() != '\n') out << "\n";
  }
  return out.str();
}

DiffRunner::DiffRunner(const SpecLibrary* lib, DiffOptions options)
    : lib_(lib), options_(std::move(options))
{
}

DiffReport
DiffRunner::Run(util::Span<const Prog> corpus) const
{
  DiffReport report;
  {
    // Model names come from throwaway instances so the parallel phase
    // does not need a shared model.
    ModelSide base = BuildSide(options_.baseline, nullptr, false, lib_);
    ModelSide subj = BuildSide(options_.subject, nullptr, true, lib_);
    report.baseline_name = base.model->ModelName();
    report.subject_name = subj.model->ModelName();
  }
  report.programs = corpus.size();
  if (corpus.empty()) return report;

  // Phase 1: evaluate every program, each on fresh per-program state.
  // Workers own private model pairs and write disjoint per-index slots,
  // so the outcome is independent of the partition.
  std::vector<std::optional<RawDiv>> raw(corpus.size());
  int workers = options_.num_workers;
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > corpus.size()) {
    workers = static_cast<int>(corpus.size());
  }

  auto worker_main = [&](size_t shard) {
    ModelSide base = BuildSide(options_.baseline, options_.boot, false, lib_);
    ModelSide subj = BuildSide(options_.subject, options_.boot, true, lib_);
    base.executor->BeginBatch();
    subj.executor->BeginBatch();
    for (size_t i = shard; i < corpus.size();
         i += static_cast<size_t>(workers)) {
      raw[i] = Evaluate(corpus[i], base, subj, *lib_);
    }
    base.executor->EndBatch();
    subj.executor->EndBatch();
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_main, static_cast<size_t>(w));
    }
    for (std::thread& t : threads) t.join();
  }

  // Phase 2 (serial): dedup by signature in corpus order.
  std::unordered_map<std::string, size_t> by_signature;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!raw[i]) continue;
    ++report.diverging_programs;
    const RawDiv& r = *raw[i];
    auto it = by_signature.find(r.signature);
    if (it != by_signature.end()) {
      ++report.divergences[it->second].occurrences;
      continue;
    }
    Divergence d;
    d.kind = r.kind;
    d.prog_index = i;
    d.call_index = r.call_index;
    d.syscall = r.syscall;
    d.signature = r.signature;
    d.detail = r.detail;
    d.occurrences = 1;
    d.repro = corpus[i];
    by_signature.emplace(r.signature, report.divergences.size());
    report.divergences.push_back(std::move(d));
  }

  // Phase 3 (serial): shrink one reproducer per signature. The property
  // is "the models still disagree with this exact signature", evaluated
  // on a dedicated executor pair inside one batch window.
  if (options_.minimize && !report.divergences.empty()) {
    ModelSide base = BuildSide(options_.baseline, options_.boot, false, lib_);
    ModelSide subj = BuildSide(options_.subject, options_.boot, true, lib_);
    base.executor->BeginBatch();
    subj.executor->BeginBatch();
    for (Divergence& d : report.divergences) {
      MinimizeResult min =
          MinimizeWhile(d.repro, [&](const Prog& candidate) {
            std::optional<RawDiv> got =
                Evaluate(candidate, base, subj, *lib_);
            return got && got->signature == d.signature;
          });
      d.minimize_executions = min.executions;
      if (min.reproduced) {
        d.repro = std::move(min.prog);
        d.minimized = true;
      }
    }
    base.executor->EndBatch();
    subj.executor->EndBatch();
  }

  for (Divergence& d : report.divergences) {
    d.repro_text = FormatProg(d.repro, *lib_);
  }
  return report;
}

}  // namespace kernelgpt::fuzzer
