#include "fuzzer/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "util/fault.h"
#include "util/strings.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {

namespace {

/// Reusable N-party barrier (C++17 has no std::barrier).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}

  /// Blocks until all parties arrive; reusable across generations.
  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

/// Decorrelates shard RNG streams; shard 0 keeps the master seed so a
/// single-worker run replays the serial campaign stream bit-for-bit.
/// Other shards hash the pair — adding multiples of the SplitMix64
/// increment would merely offset the master stream, not decorrelate it.
uint64_t
ShardSeed(uint64_t master, int shard)
{
  if (shard == 0) return master;
  return util::HashCombine(master, static_cast<uint64_t>(shard));
}

/// Everything one worker accumulates; read by the merge step after join.
struct ShardOutcome {
  vkernel::Coverage coverage;
  std::map<std::string, int> crashes;
  std::vector<Prog> corpus;
  ShardStats stats;
};

}  // namespace

CampaignResult
OrchestratorResult::ToCampaignResult() const
{
  CampaignResult result;
  result.coverage = coverage;
  result.crashes = crashes;
  result.programs_executed = programs_executed;
  result.corpus_size = corpus_size;
  return result;
}

Orchestrator::Orchestrator(const SpecLibrary* lib, BootFn boot,
                           OrchestratorOptions options)
    : lib_(lib), boot_(std::move(boot)), options_(std::move(options))
{
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.sync_interval < 1) options_.sync_interval = 1;
  if (options_.min_sync_interval < 1) options_.min_sync_interval = 1;
  if (options_.max_sync_interval < options_.min_sync_interval) {
    options_.max_sync_interval = options_.min_sync_interval;
  }
  if (options_.max_broadcast_cap < options_.min_broadcast_per_sync) {
    options_.max_broadcast_cap = options_.min_broadcast_per_sync;
  }
  if (options_.adaptive_sync) {
    // The controller only ever moves within its bounds, so the starting
    // point must sit inside them too.
    options_.sync_interval =
        std::min(std::max(options_.sync_interval, options_.min_sync_interval),
                 options_.max_sync_interval);
    options_.max_broadcast_per_sync =
        std::min(std::max(options_.max_broadcast_per_sync,
                          options_.min_broadcast_per_sync),
                 options_.max_broadcast_cap);
  }
}

OrchestratorResult
Orchestrator::Run()
{
  const auto start = std::chrono::steady_clock::now();
  OrchestratorResult result;
  if (lib_->syscalls().empty()) return result;

  const int workers = options_.num_workers;
  const int budget = options_.campaign.program_budget;

  // Shard the global budget; low shard ids absorb the remainder.
  std::vector<int> shard_budget(workers, budget / workers);
  for (int w = 0; w < budget % workers; ++w) ++shard_budget[w];

  std::vector<ShardOutcome> outcomes(workers);
  // outbox[w] holds shard w's broadcast for the current epoch. Written by
  // shard w between the publish and ingest barriers, read by all other
  // shards between the ingest and next-epoch barriers.
  std::vector<std::vector<Prog>> outbox(workers);
  // epoch_growth[w] is shard w's coverage growth this epoch; same write
  // (pre-publish) / read (publish..ingest) protocol as the outbox. Its
  // deterministic sum drives the adaptive sync controller.
  std::vector<size_t> epoch_growth(workers, 0);
  // Schedule trace; written by shard 0 only, read after the join.
  std::vector<EpochStats> epoch_trace;
  // Worker exceptions (injected faults, bad_alloc, ...). A throwing
  // worker must not strand its peers at a barrier, so it degrades to a
  // no-op participant and the exception resurfaces after the join.
  std::vector<std::exception_ptr> worker_failures(workers);
  Barrier publish_barrier(workers);
  Barrier ingest_barrier(workers);

  auto worker_main = [&](int shard) {
    ShardOutcome& out = outcomes[shard];
    out.stats.shard_id = shard;
    out.stats.shard_seed = ShardSeed(options_.campaign.seed, shard);

    // Worker-private mutable state; `lib_` is the only shared object on
    // the hot path and is immutable after Finalize().
    std::unique_ptr<vkernel::KernelModel> kernel =
        options_.model_factory ? options_.model_factory()
                               : vkernel::MakeStrictModel();
    if (boot_) boot_(kernel.get());
    util::Rng rng(out.stats.shard_seed);
    Generator generator(lib_, &rng);
    Mutator mutator(lib_, &generator, &rng);
    Executor executor(kernel.get(), lib_);
    std::vector<Prog>& corpus = out.corpus;

    CampaignState state;
    state.generator = &generator;
    state.mutator = &mutator;
    state.executor = &executor;
    state.rng = &rng;
    state.corpus = &corpus;
    state.coverage = &out.coverage;
    state.crashes = &out.crashes;
    state.programs_executed = &out.stats.programs_executed;

    // Once a worker fails it stops executing programs but keeps walking
    // the barrier schedule (publishing nothing, ingesting nothing), so
    // its peers never deadlock; the stored exception fails the whole run
    // after the join. The schedule below is a pure function of published
    // epoch stats, so a dead worker computes it like everyone else.
    bool dead = false;
    auto record_failure = [&](std::exception_ptr e) {
      worker_failures[shard] = std::move(e);
      dead = true;
    };

    // Replay the seed corpus (if any) before the loop: primes coverage
    // and seeds the corpus without consuming RNG or budget.
    try {
      out.stats.seeds_preloaded = PrimeCorpus(options_.campaign, state);
    } catch (...) {
      record_failure(std::current_exception());
    }

    // Seeds that found new blocks since the last sync (broadcast pool).
    std::vector<Prog> fresh_interesting;

    // Controller state. Every worker evolves `interval`, `bcast_cap`,
    // and `remaining` identically (pure functions of shared per-epoch
    // stats), so all shards agree on the epoch count and the barriers
    // line up without any extra coordination. With adaptive sync off
    // both stay at their configured values and the schedule is exactly
    // the historical fixed-interval one.
    int interval = options_.sync_interval;
    size_t bcast_cap = options_.max_broadcast_per_sync;
    std::vector<int> remaining = shard_budget;

    auto work_left = [&remaining] {
      for (int r : remaining) {
        if (r > 0) return true;
      }
      return false;
    };

    while (work_left()) {
      const int quota = std::min(interval, remaining[shard]);
      const size_t blocks_before = out.coverage.Count();
      size_t global_growth = 0;
      if (!dead) {
        try {
          // Injectable worker failure (fault plans key on the campaign
          // seed + shard, so a rule can target one round of one session
          // deterministically even under a multi-threaded supervisor).
          KERNELGPT_FAULT_POINT(
              "orchestrator.worker",
              util::Format("seed=%016llx shard=%d",
                           static_cast<unsigned long long>(
                               options_.campaign.seed),
                           shard));
          RunCampaignChunk(options_.campaign, state, quota,
                           workers > 1 ? &fresh_interesting : nullptr);
          global_growth = out.coverage.Count() - blocks_before;
        } catch (...) {
          record_failure(std::current_exception());
          fresh_interesting.clear();
          global_growth = 0;
        }
      }

      if (workers > 1) {
        // -- Corpus sync: publish, barrier, ingest, barrier ----------------
        epoch_growth[shard] = global_growth;
        outbox[shard].clear();
        const size_t n = fresh_interesting.size();
        const size_t take = std::min(n, bcast_cap);
        outbox[shard].assign(fresh_interesting.end() - static_cast<long>(take),
                             fresh_interesting.end());
        out.stats.seeds_broadcast += take;
        fresh_interesting.clear();

        publish_barrier.ArriveAndWait();

        // Deterministic ingest order: peers by shard id, seeds in
        // broadcast order. Only the local corpus and RNG are touched.
        global_growth = 0;
        for (int peer = 0; peer < workers; ++peer) {
          global_growth += epoch_growth[peer];
          if (peer == shard) continue;
          for (const Prog& seed : outbox[peer]) {
            ++out.stats.seeds_ingested;
            AdmitToCorpus(options_.campaign, &rng, &corpus, seed);
          }
        }

        // Nobody may rewrite its outbox (or growth slot) for the next
        // epoch until every peer has finished reading this one.
        ingest_barrier.ArriveAndWait();
      }

      if (shard == 0) {
        epoch_trace.push_back(EpochStats{interval, bcast_cap, global_growth});
      }

      // Close the epoch's books for ALL shards with the interval it ran
      // at, then retune for the next epoch.
      for (int s = 0; s < workers; ++s) {
        remaining[s] -= std::min(interval, remaining[s]);
      }
      if (options_.adaptive_sync) {
        if (global_growth == 0) {
          interval = std::min(interval * 2, options_.max_sync_interval);
          bcast_cap = std::max(bcast_cap / 2, options_.min_broadcast_per_sync);
        } else {
          interval = std::max(interval / 2, options_.min_sync_interval);
          bcast_cap = std::min(bcast_cap * 2, options_.max_broadcast_cap);
        }
      }
    }

    out.stats.corpus_size = corpus.size();
    out.stats.coverage_blocks = out.coverage.Count();
    for (const auto& [title, count] : out.crashes) {
      (void)title;
      out.stats.crash_occurrences += static_cast<size_t>(count);
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
    for (auto& t : threads) t.join();
  }

  // Surface the first failure (lowest shard id — deterministic) only
  // after every thread has joined, so no barrier peer is left behind.
  // The partial result is abandoned; a supervisor retries the whole
  // round, which reruns deterministically from the same seed.
  for (const std::exception_ptr& failure : worker_failures) {
    if (failure) std::rethrow_exception(failure);
  }

  // -- Merge step: union coverage, dedup crashes globally by title -------
  for (ShardOutcome& out : outcomes) {
    result.coverage.Merge(out.coverage);
    for (const auto& [title, count] : out.crashes) {
      result.crashes[title] += count;
    }
    result.programs_executed += out.stats.programs_executed;
    result.corpus_size += out.corpus.size();
    result.shards.push_back(out.stats);
    // Concatenate in shard-id order: the distiller's deterministic input.
    result.corpus.insert(result.corpus.end(),
                         std::make_move_iterator(out.corpus.begin()),
                         std::make_move_iterator(out.corpus.end()));
  }
  result.epochs = std::move(epoch_trace);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

OrchestratorResult
RunShardedCampaign(const SpecLibrary& lib, Orchestrator::BootFn boot,
                   const OrchestratorOptions& options)
{
  Orchestrator orchestrator(&lib, std::move(boot), options);
  return orchestrator.Run();
}

}  // namespace kernelgpt::fuzzer
