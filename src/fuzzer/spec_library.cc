#include "fuzzer/spec_library.h"

namespace kernelgpt::fuzzer {

using syzlang::DeclKind;
using syzlang::Type;
using syzlang::TypeKind;

void
SpecLibrary::Add(const syzlang::SpecFile& spec)
{
  for (const auto& decl : spec.decls) {
    switch (decl.kind) {
      case DeclKind::kSyscall: {
        const std::string full = decl.syscall.FullName();
        if (seen_calls_.count(full)) break;
        seen_calls_[full] = true;
        syscalls_.push_back(decl.syscall);
        break;
      }
      case DeclKind::kStruct:
        structs_.emplace(decl.struct_def.name, decl.struct_def);
        break;
      case DeclKind::kFlags:
        flags_.emplace(decl.flags.name, decl.flags);
        break;
      case DeclKind::kResource:
        resources_.emplace(decl.resource.name, decl.resource);
        break;
      case DeclKind::kDefine:
        consts_.Define(decl.define.name, decl.define.value);
        break;
    }
  }
}

void
SpecLibrary::Finalize()
{
  producers_.clear();
  for (size_t i = 0; i < syscalls_.size(); ++i) {
    if (syscalls_[i].returns_resource) {
      producers_[*syscalls_[i].returns_resource].push_back(i);
    }
  }
}

const syzlang::StructDef*
SpecLibrary::FindStruct(const std::string& name) const
{
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : &it->second;
}

const syzlang::FlagsDef*
SpecLibrary::FindFlags(const std::string& name) const
{
  auto it = flags_.find(name);
  return it == flags_.end() ? nullptr : &it->second;
}

bool
SpecLibrary::HasResource(const std::string& name) const
{
  return resources_.count(name) || name == "fd";
}

uint64_t
SpecLibrary::ResolveConst(const std::string& name) const
{
  return consts_.Resolve(name).value_or(0);
}

const std::vector<size_t>&
SpecLibrary::ProducersOf(const std::string& resource) const
{
  auto it = producers_.find(resource);
  return it == producers_.end() ? no_producers_ : it->second;
}

size_t
SpecLibrary::TypeSize(const Type& type) const
{
  switch (type.kind) {
    case TypeKind::kInt:
    case TypeKind::kConst:
    case TypeKind::kFlags:
    case TypeKind::kLen:
    case TypeKind::kBytesize:
      return type.bits == 0 ? 8 : static_cast<size_t>(type.bits) / 8;
    case TypeKind::kArray: {
      size_t elem = TypeSize(type.elems.at(0));
      return elem * static_cast<size_t>(type.array_len);
    }
    case TypeKind::kString:
      return type.str_literal.empty() ? 0 : type.str_literal.size() + 1;
    case TypeKind::kStructRef: {
      const syzlang::StructDef* def = FindStruct(type.ref_name);
      return def ? StructSize(*def) : 0;
    }
    case TypeKind::kPtr:
    case TypeKind::kResource:
    case TypeKind::kFilename:
      return 8;
    case TypeKind::kVoid:
      return 0;
  }
  return 0;
}

size_t
SpecLibrary::StructSize(const syzlang::StructDef& def) const
{
  size_t total = 0;
  size_t max_arm = 0;
  for (const auto& field : def.fields) {
    size_t sz = TypeSize(field.type);
    total += sz;
    max_arm = std::max(max_arm, sz);
  }
  return def.is_union ? max_arm : total;
}

}  // namespace kernelgpt::fuzzer
