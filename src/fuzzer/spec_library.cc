#include "fuzzer/spec_library.h"

#include <functional>

namespace kernelgpt::fuzzer {

using syzlang::DeclKind;
using syzlang::Type;
using syzlang::TypeKind;

void
SpecLibrary::Add(const syzlang::SpecFile& spec)
{
  for (const auto& decl : spec.decls) {
    switch (decl.kind) {
      case DeclKind::kSyscall: {
        const std::string full = decl.syscall.FullName();
        if (seen_calls_.count(full)) break;
        seen_calls_[full] = true;
        syscalls_.push_back(decl.syscall);
        break;
      }
      case DeclKind::kStruct:
        structs_.emplace(decl.struct_def.name, decl.struct_def);
        break;
      case DeclKind::kFlags:
        flags_.emplace(decl.flags.name, decl.flags);
        break;
      case DeclKind::kResource:
        resources_.emplace(decl.resource.name, decl.resource);
        break;
      case DeclKind::kDefine:
        consts_.Define(decl.define.name, decl.define.value);
        break;
    }
  }
}

SyscallOp
ResolveSyscallOp(const std::string& name)
{
  if (name == "open") return SyscallOp::kOpen;
  if (name == "openat") return SyscallOp::kOpenat;
  if (name == "close") return SyscallOp::kClose;
  if (name == "dup") return SyscallOp::kDup;
  if (name == "ioctl") return SyscallOp::kIoctl;
  if (name == "read") return SyscallOp::kRead;
  if (name == "write") return SyscallOp::kWrite;
  if (name == "poll") return SyscallOp::kPoll;
  if (name == "mmap") return SyscallOp::kMmap;
  if (name == "socket") return SyscallOp::kSocket;
  if (name == "setsockopt") return SyscallOp::kSetSockOpt;
  if (name == "getsockopt") return SyscallOp::kGetSockOpt;
  if (name == "bind") return SyscallOp::kBind;
  if (name == "connect") return SyscallOp::kConnect;
  if (name == "sendto") return SyscallOp::kSendTo;
  if (name == "sendmsg") return SyscallOp::kSendMsg;
  if (name == "recvfrom") return SyscallOp::kRecvFrom;
  if (name == "recvmsg") return SyscallOp::kRecvFrom;
  if (name == "listen") return SyscallOp::kListen;
  if (name == "accept") return SyscallOp::kAccept;
  return SyscallOp::kUnknown;
}

void
SpecLibrary::Finalize()
{
  producers_.clear();
  opcodes_.clear();
  opcodes_.reserve(syscalls_.size());
  len_links_.clear();
  len_links_.resize(syscalls_.size());
  for (size_t i = 0; i < syscalls_.size(); ++i) {
    opcodes_.push_back(ResolveSyscallOp(syscalls_[i].name));
    if (syscalls_[i].returns_resource) {
      producers_[*syscalls_[i].returns_resource].push_back(i);
    }
    const auto& params = syscalls_[i].params;
    for (size_t p = 0; p < params.size(); ++p) {
      const Type& type = params[p].type;
      if (type.kind != TypeKind::kLen && type.kind != TypeKind::kBytesize) {
        continue;
      }
      for (size_t t = 0; t < params.size(); ++t) {
        if (params[t].name == type.len_target) {
          len_links_[i].emplace_back(static_cast<int>(p),
                                     static_cast<int>(t));
        }
      }
    }
  }

  // Dense type-cache slots for the generator (see Type::cache_slot).
  type_slot_count_ = 0;
  std::function<void(Type*)> assign_slots = [&](Type* type) {
    type->cache_slot = static_cast<int>(type_slot_count_++);
    for (Type& elem : type->elems) assign_slots(&elem);
  };
  for (auto& syscall : syscalls_) {
    for (auto& param : syscall.params) assign_slots(&param.type);
  }
  for (auto& [name, struct_def] : structs_) {
    (void)name;
    for (auto& field : struct_def.fields) assign_slots(&field.type);
  }

  // Safe-producer pools: producers that do not consume their own
  // resource, so the generator's recursive producer insertion cannot
  // pick e.g. accept to satisfy accept's own fd parameter.
  safe_producers_.clear();
  for (const auto& [resource, producers] : producers_) {
    std::vector<size_t> safe;
    for (size_t p : producers) {
      bool self = false;
      for (const auto& param : syscalls_[p].params) {
        if ((param.type.kind == syzlang::TypeKind::kResource ||
             param.type.kind == syzlang::TypeKind::kStructRef) &&
            param.type.ref_name == resource) {
          self = true;
        }
      }
      if (!self) safe.push_back(p);
    }
    if (!safe.empty()) safe_producers_[resource] = std::move(safe);
  }
}

const syzlang::StructDef*
SpecLibrary::FindStruct(const std::string& name) const
{
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : &it->second;
}

const syzlang::FlagsDef*
SpecLibrary::FindFlags(const std::string& name) const
{
  auto it = flags_.find(name);
  return it == flags_.end() ? nullptr : &it->second;
}

bool
SpecLibrary::HasResource(const std::string& name) const
{
  return resources_.count(name) || name == "fd";
}

uint64_t
SpecLibrary::ResolveConst(const std::string& name) const
{
  return consts_.Resolve(name).value_or(0);
}

const std::vector<size_t>&
SpecLibrary::ProducersOf(const std::string& resource) const
{
  auto it = producers_.find(resource);
  return it == producers_.end() ? no_producers_ : it->second;
}

const std::vector<std::pair<int, int>>&
SpecLibrary::LenLinksOf(size_t index) const
{
  return index < len_links_.size() ? len_links_[index] : no_len_links_;
}

const std::vector<size_t>&
SpecLibrary::SafeProducersOf(const std::string& resource) const
{
  auto it = safe_producers_.find(resource);
  return it == safe_producers_.end() ? ProducersOf(resource) : it->second;
}

size_t
SpecLibrary::TypeSize(const Type& type) const
{
  switch (type.kind) {
    case TypeKind::kInt:
    case TypeKind::kConst:
    case TypeKind::kFlags:
    case TypeKind::kLen:
    case TypeKind::kBytesize:
      return type.bits == 0 ? 8 : static_cast<size_t>(type.bits) / 8;
    case TypeKind::kArray: {
      size_t elem = TypeSize(type.elems.at(0));
      return elem * static_cast<size_t>(type.array_len);
    }
    case TypeKind::kString:
      return type.str_literal.empty() ? 0 : type.str_literal.size() + 1;
    case TypeKind::kStructRef: {
      const syzlang::StructDef* def = FindStruct(type.ref_name);
      return def ? StructSize(*def) : 0;
    }
    case TypeKind::kPtr:
    case TypeKind::kResource:
    case TypeKind::kFilename:
      return 8;
    case TypeKind::kVoid:
      return 0;
  }
  return 0;
}

size_t
SpecLibrary::StructSize(const syzlang::StructDef& def) const
{
  size_t total = 0;
  size_t max_arm = 0;
  for (const auto& field : def.fields) {
    size_t sz = TypeSize(field.type);
    total += sz;
    max_arm = std::max(max_arm, sz);
  }
  return def.is_union ? max_arm : total;
}

}  // namespace kernelgpt::fuzzer
