/// \file
/// The unified campaign-service API: one persistent object that owns spec
/// suites, kernel boot, orchestrator/distiller wiring, and round
/// scheduling — the syzkaller-manager analog for the whole fuzzing
/// lifecycle (fuzz -> distill -> re-seed, round over round). The free
/// functions it replaces (`RunCampaign`, `RunCampaignLoop`,
/// `ExperimentContext::Fuzz`) remain as thin compatibility shims over a
/// Session.
///
/// A session schedules rounds deterministically from a single master
/// seed. Two seed schedules cover the two historical pipelines:
///  - kHashChain: round r runs on HashCombine(seed, r) (r = 0 keeps the
///    seed) with the previous round's distilled corpus re-seeding every
///    shard — the `RunCampaignLoop` corpus lifecycle.
///  - kArithmetic: round r runs on seed + r * stride with independent
///    rounds — the experiment harness's repetition semantics.
///
/// `Save(dir)` persists the complete durable state (distilled corpora,
/// minimized reproducers, cumulative coverage, crash tallies, trend
/// records, schedule position) through the versioned textual snapshot
/// layer; `Resume(dir)` restores it into a fresh process, after which the
/// session continues the exact RNG-deterministic schedule: an interrupted
/// run and a straight-through run of the same total rounds produce
/// bit-identical corpora, coverage, and crash titles (session_test pins
/// this).
///
/// All failure modes — empty or duplicate suites, malformed or
/// version-mismatched snapshots, suites whose specs drifted since the
/// snapshot was taken — surface as util::Status returns, never aborts or
/// silent fallbacks.

#ifndef KERNELGPT_FUZZER_SESSION_H_
#define KERNELGPT_FUZZER_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fuzzer/diff_runner.h"
#include "fuzzer/distiller.h"
#include "fuzzer/orchestrator.h"
#include "fuzzer/snapshot.h"

namespace kernelgpt::fuzzer {

/// How a session derives each round's campaign master seed.
enum class SeedSchedule {
  kHashChain,   ///< round r: HashCombine(seed, r); r = 0 keeps the seed.
  kArithmetic,  ///< round r: seed + r * seed_stride.
};

/// Session parameters. Plain members with builder-style chainers so call
/// sites read as one declarative expression:
///
///   Session session(SessionOptions()
///                       .WithSeed(42)
///                       .WithRounds(4)
///                       .WithWorkers(8)
///                       .WithPlateau(2),
///                   boot);
struct SessionOptions {
  uint64_t seed = 1;

  /// Rounds one Run() call executes (<= 0 means "until the plateau rule
  /// fires"; Run() rejects an unbounded session with no plateau rule).
  /// Counted per Run() call, so a resumed session runs `rounds` MORE
  /// rounds on top of its restored schedule position.
  int rounds = 2;

  SeedSchedule schedule = SeedSchedule::kHashChain;
  /// Per-round seed increment under kArithmetic (ignored by kHashChain).
  uint64_t seed_stride = 7919;

  /// Re-seed every shard of round r+1 with round r's resulting corpus.
  bool carry_corpus = true;
  /// Distill each round's merged corpus (minimal covering subset + one
  /// minimized reproducer per crash title) before it is carried/stored;
  /// off stores the raw merged corpus and collects no reproducers.
  bool distill_between_rounds = true;

  /// Coverage-plateau stop rule: stop once the summed cumulative-coverage
  /// delta across suites has been below `plateau_min_gain` for
  /// `plateau_rounds` consecutive rounds. 0 disables the rule.
  int plateau_rounds = 0;
  size_t plateau_min_gain = 1;

  /// Autosave: when > 0, RunRound persists the session into
  /// `autosave_dir` every `autosave_every` rounds (the first save lays
  /// down a full base snapshot; later saves append per-round journal
  /// deltas), so the orchestrator loop is crash-resumable without any
  /// caller involvement.
  int autosave_every = 0;
  std::string autosave_dir;

  /// Journal compaction: once this many rounds have accumulated on top
  /// of the base snapshot, Save folds the journal back into a fresh base
  /// and starts an empty journal. Must be >= 1.
  int journal_compact_every = 8;

  /// On-disk rendering for suite base snapshots. Text stays the default
  /// debug format; kBinary writes the KGPB fast format. Resume sniffs
  /// each file's codec, so a session under either setting resumes
  /// directories written under the other (old text dirs keep working).
  SnapshotCodec snapshot_codec = SnapshotCodec::kText;

  /// Differential oracle: when set, every round ends with a DiffRunner
  /// pass comparing the session's model (orchestrator.model_factory,
  /// default StrictModel) against this subject personality. The pass
  /// runs over the round's resulting corpus PLUS `diff_probe_budget`
  /// freshly generated probe programs — the corpus alone is blind to
  /// kernel-level error paths (coverage is only recorded inside driver
  /// handlers, so EBADF/ENOENT-style programs never survive
  /// distillation), and error paths are exactly where personalities
  /// disagree. Probes are seeded from the round seed, so a retried or
  /// resumed round regenerates the identical report. The
  /// unique-divergence count lands in the round's trend record
  /// (RoundReport::divergences) and the full report in
  /// SuiteState::last_diff. Null disables the pass.
  vkernel::ModelFactory diff_subject;
  /// DiffRunner worker threads (the report is byte-identical for any
  /// value).
  int diff_workers = 1;
  /// Probe programs generated per differential pass (0 = corpus only).
  int diff_probe_budget = 256;

  /// Per-round orchestrator parameters. `orchestrator.campaign.seed` and
  /// `.seed_corpus` are owned by the session's scheduler and overwritten
  /// every round.
  OrchestratorOptions orchestrator;
  DistillOptions distill;

  SessionOptions& WithSeed(uint64_t v) { seed = v; return *this; }
  SessionOptions& WithRounds(int v) { rounds = v; return *this; }
  SessionOptions& WithSchedule(SeedSchedule v) { schedule = v; return *this; }
  SessionOptions& WithSeedStride(uint64_t v) { seed_stride = v; return *this; }
  SessionOptions& WithCarryCorpus(bool v) { carry_corpus = v; return *this; }
  SessionOptions& WithDistill(bool v) { distill_between_rounds = v; return *this; }
  SessionOptions& WithPlateau(int rounds_stale, size_t min_gain = 1) {
    plateau_rounds = rounds_stale;
    plateau_min_gain = min_gain;
    return *this;
  }
  SessionOptions& WithOrchestrator(OrchestratorOptions v) {
    orchestrator = std::move(v);
    return *this;
  }
  SessionOptions& WithDistillOptions(DistillOptions v) {
    distill = v;
    return *this;
  }
  SessionOptions& WithAutosave(std::string dir, int every = 1) {
    autosave_dir = std::move(dir);
    autosave_every = every;
    return *this;
  }
  SessionOptions& WithJournalCompaction(int every) {
    journal_compact_every = every;
    return *this;
  }
  SessionOptions& WithSnapshotCodec(SnapshotCodec codec) {
    snapshot_codec = codec;
    return *this;
  }
  /// Selects the kernel personality every stage (orchestrator workers,
  /// distiller replays, diff baseline) builds its models from.
  SessionOptions& WithModelFactory(vkernel::ModelFactory factory) {
    orchestrator.model_factory = factory;
    distill.model_factory = std::move(factory);
    return *this;
  }
  SessionOptions& WithDiffSubject(vkernel::ModelFactory factory,
                                  int workers = 1) {
    diff_subject = std::move(factory);
    diff_workers = workers;
    return *this;
  }
  SessionOptions& WithWorkers(int v) { orchestrator.num_workers = v; return *this; }
  SessionOptions& WithProgramBudget(int v) {
    orchestrator.campaign.program_budget = v;
    return *this;
  }
};

/// One registered suite's live state. Cumulative across rounds (and
/// across Save/Resume); `corpus` is the current seed corpus — the last
/// round's distilled set with distillation on, its raw merged corpus
/// otherwise.
struct SuiteState {
  std::string name;
  vkernel::Coverage coverage;          ///< Union across all rounds.
  std::map<std::string, int> crashes;  ///< Title -> occurrences, summed.
  /// One minimized reproducer per title (newest round wins; titles are
  /// deterministic, so collisions are identical programs anyway).
  std::map<std::string, Prog> crash_reproducers;
  std::vector<Prog> corpus;
  size_t programs_executed = 0;
  double wall_seconds = 0;
  std::vector<RoundReport> rounds;  ///< Trend records, oldest first.
  /// Latest round's differential report (empty with the oracle off).
  /// In-memory observability like RoundReport::epochs — not persisted;
  /// a resumed session regenerates it on its next round.
  DiffReport last_diff;
};

/// A persistent fuzzing-campaign service over one or more spec suites.
/// Not thread-safe itself (drive it from one thread); each round's
/// parallelism lives inside the orchestrator it owns.
class Session {
 public:
  Session(SessionOptions options, Orchestrator::BootFn boot);

  /// Registers a suite the session does not own (`lib` must outlive the
  /// session and be finalized). Suites run each round in registration
  /// order. Fails on empty/duplicate names, a library with no syscalls,
  /// or registration after the schedule has started.
  util::Status RegisterSuite(const std::string& name, const SpecLibrary* lib);

  /// Owning overload: the session keeps the library alive.
  util::Status RegisterSuite(const std::string& name, SpecLibrary lib);

  /// Runs one round: for every suite, a sharded campaign on this round's
  /// seed (re-seeded from the suite's corpus when carrying), then a
  /// distillation pass, then the trend record. Advances the schedule.
  ///
  /// Failure-atomic: a failed round (a worker exception surfaced by the
  /// orchestrator, converted here to a Status) leaves the session state
  /// exactly as it was, so a supervisor can retry the round and — the
  /// schedule being seed-deterministic — converge on the identical
  /// result. util::InjectedCrash is NOT converted: it simulates process
  /// death, and propagates so a supervisor restarts from the snapshot.
  ///
  /// Autosave failures degrade instead of killing the round loop: the
  /// round's deltas stay queued in the pending backlog, the error is
  /// recorded (last_save_error / save_failures), and the next save
  /// attempt rebuilds a clean base. Fuzzing state is never lost to a
  /// full disk — only its durability lags.
  util::Status RunRound();

  /// Runs `options.rounds` rounds (or until the plateau rule fires).
  util::Status Run();

  /// Persists the session under `dir` (created if missing). The first
  /// save into a directory writes a full base snapshot (manifest + one
  /// suite file + one empty journal per suite, all atomically replaced);
  /// subsequent saves into the SAME directory append only each new
  /// round's delta to the per-suite journals — O(delta) per round, not
  /// O(corpus) — and commit by atomically replacing the manifest. Every
  /// `options.journal_compact_every` rounds the journal is folded back
  /// into a fresh base. A crash at any instant leaves the directory
  /// resumable at the last committed round. Save -> Resume -> Save
  /// round-trips bit-identically.
  util::Status Save(const std::string& dir);

  /// Restores a Save()d session: loads each suite's base snapshot, then
  /// replays its journal up to the round the manifest committed. A torn
  /// or uncommitted journal tail (a crash mid-append, or between the
  /// journal append and the manifest commit) is recovered by truncating
  /// back to the last committed record; damage to committed records is a
  /// Status error, never a crash or silent data loss. Call on a fresh
  /// session after registering the same suites under the same names: the
  /// manifest's seed/schedule and every suite's spec fingerprint must
  /// match, or the resume is rejected with a Status describing the
  /// mismatch.
  util::Status Resume(const std::string& dir);

  /// Distills an externally merged corpus against a registered suite
  /// using the session's distiller wiring (does not touch suite state).
  util::Status DistillInto(const std::string& name,
                           const std::vector<Prog>& merged,
                           DistillResult* out) const;

  /// The seed round `round` runs on, per the configured schedule.
  uint64_t RoundSeed(int round) const;

  int rounds_completed() const { return rounds_completed_; }
  /// True once the plateau rule (if enabled) has fired.
  bool Plateaued() const {
    return options_.plateau_rounds > 0 &&
           stale_rounds_ >= options_.plateau_rounds;
  }

  const SessionOptions& options() const { return options_; }

  /// Save-degradation telemetry for supervisors. `save_failures` counts
  /// consecutive failed persistence attempts (reset by a success);
  /// `pending_rounds` is how far durability lags the live state.
  int save_failures() const { return save_failures_; }
  const std::string& last_save_error() const { return last_save_error_; }
  int pending_rounds() const { return rounds_completed_ - durable_rounds_; }
  const std::string& bound_dir() const { return bound_dir_; }

  std::vector<std::string> SuiteNames() const;
  const SuiteState* Find(const std::string& name) const;
  SuiteState* Find(const std::string& name);
  size_t suite_count() const { return suites_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const SpecLibrary> lib;  // Aliased no-op for non-owning.
    SuiteState state;
    /// Per-round deltas captured since the session was bound to a
    /// snapshot directory (first Save or Resume) — the journal records an
    /// incremental Save appends. Pruned once durable; RunRound flushes
    /// the backlog to the bound directory before it can grow without
    /// bound, so a bound directory only ever advances through the
    /// crash-safe incremental path.
    std::vector<SuiteDelta> pending;
  };

  util::Status Register(const std::string& name,
                        std::shared_ptr<const SpecLibrary> lib);
  /// Save() minus the degradation bookkeeping (which wraps every return
  /// path of the save machinery in one place).
  util::Status SaveInner(const std::string& dir);
  /// Atomically writes manifest + every suite base + fresh journals and
  /// rebinds the incremental-save state to `dir`.
  util::Status SaveFull(const std::string& dir);
  util::Status WriteManifestFile(const std::string& dir) const;
  SessionManifest MakeManifest() const;
  /// True when `pending` holds every round in [durable_rounds_,
  /// rounds_completed_) for every suite.
  bool HasPendingRange() const;

  SessionOptions options_;
  Orchestrator::BootFn boot_;
  std::vector<Entry> suites_;
  int rounds_completed_ = 0;
  int stale_rounds_ = 0;

  /// Incremental-persistence bookkeeping: the directory the session last
  /// saved to or resumed from, how many rounds its base snapshots fold
  /// in, and how many rounds its manifest has committed.
  std::string bound_dir_;
  int base_rounds_ = 0;
  int durable_rounds_ = 0;

  /// Save-degradation state. A failed journal append is healed in place
  /// by truncating the partial bytes away; only when even that truncation
  /// fails does the next save fall back to rebuilding a fresh base
  /// (appending after damage the journal scanner would stop at is never
  /// an option — it would strand committed rounds behind the tear).
  bool force_full_save_ = false;
  int save_failures_ = 0;
  std::string last_save_error_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_SESSION_H_
