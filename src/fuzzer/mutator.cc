#include "fuzzer/mutator.h"

namespace kernelgpt::fuzzer {

using syzlang::TypeKind;

Mutator::Mutator(const SpecLibrary* lib, Generator* generator, util::Rng* rng)
    : lib_(lib), generator_(generator), rng_(rng) {}

void
Mutator::Relink(Prog* prog)
{
  for (Call& call : prog->calls) {
    if (call.syscall_index >= lib_->syscalls().size()) continue;
    generator_->LinkLens(lib_->syscalls()[call.syscall_index], &call);
  }
}

void
Mutator::MutateScalar(Prog* prog)
{
  if (prog->empty()) return;
  size_t ci = rng_->Below(prog->calls.size());
  Call& call = prog->calls[ci];
  if (call.args.empty()) return;
  size_t ai = rng_->Below(call.args.size());
  Arg& arg = call.args[ai];
  if (arg.kind != Arg::Kind::kScalar) return;
  const auto& def = lib_->syscalls()[call.syscall_index];
  if (ai < def.params.size()) {
    const syzlang::Type& type = def.params[ai].type;
    if (type.kind == TypeKind::kLen || type.kind == TypeKind::kBytesize) {
      // Occasionally corrupt a length (drivers must survive bad lengths).
      arg.scalar = rng_->Chance(0.5) ? rng_->Next() : arg.scalar * 2 + 1;
      arg.len_of_param = kBrokenLenLink;  // Keep it corrupted on relink.
      return;
    }
    arg.scalar = generator_->ScalarFor(type);
    return;
  }
  arg.scalar = rng_->Next();
}

void
Mutator::MutateBuffer(Prog* prog)
{
  if (prog->empty()) return;
  size_t ci = rng_->Below(prog->calls.size());
  Call& call = prog->calls[ci];
  for (size_t ai = 0; ai < call.args.size(); ++ai) {
    Arg& arg = call.args[ai];
    if (arg.kind != Arg::Kind::kBuffer) continue;
    const auto& def = lib_->syscalls()[call.syscall_index];
    if (rng_->Chance(0.5) && ai < def.params.size()) {
      // Regenerate from the type (fresh semantic values).
      Arg fresh = generator_->BuildArg(def.params[ai].type);
      if (fresh.kind == Arg::Kind::kBuffer) arg.bytes = fresh.bytes;
    } else if (!arg.bytes.empty()) {
      // Corrupt random bytes.
      int flips = 1 + static_cast<int>(rng_->Below(4));
      for (int i = 0; i < flips; ++i) {
        size_t pos = rng_->Below(arg.bytes.size());
        arg.bytes[pos] = static_cast<uint8_t>(rng_->Next());
      }
    }
    return;
  }
}

void
Mutator::InsertCall(Prog* prog)
{
  if (lib_->syscalls().empty()) return;
  size_t idx = rng_->Below(lib_->syscalls().size());
  generator_->AppendCall(prog, idx);
}

void
Mutator::RemoveCall(Prog* prog)
{
  if (prog->calls.size() <= 1) return;
  int removed = static_cast<int>(rng_->Below(prog->calls.size()));
  prog->calls.erase(prog->calls.begin() + removed);
  for (Call& call : prog->calls) {
    for (Arg& arg : call.args) {
      if (arg.kind != Arg::Kind::kResourceRef) continue;
      if (arg.ref_call == removed) arg.ref_call = -1;
      if (arg.ref_call > removed) --arg.ref_call;
    }
  }
}

void
Mutator::DuplicateCall(Prog* prog)
{
  if (prog->empty() || prog->calls.size() > 16) return;
  size_t ci = rng_->Below(prog->calls.size());
  Call copy = prog->calls[ci];
  prog->calls.push_back(std::move(copy));
}

void
Mutator::Mutate(Prog* prog)
{
  int ops = 1 + static_cast<int>(rng_->Below(3));
  for (int i = 0; i < ops; ++i) {
    switch (rng_->Below(6)) {
      case 0:
      case 1: MutateScalar(prog); break;
      case 2: MutateBuffer(prog); break;
      case 3: InsertCall(prog); break;
      case 4: RemoveCall(prog); break;
      default: DuplicateCall(prog); break;
    }
  }
  Relink(prog);
}

}  // namespace kernelgpt::fuzzer
