#include "fuzzer/distiller.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "fuzzer/minimizer.h"
#include "fuzzer/session.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {

Distiller::Distiller(const SpecLibrary* lib, Orchestrator::BootFn boot,
                     DistillOptions options)
    : lib_(lib), boot_(std::move(boot)), options_(options)
{
  if (options_.batch_size < 1) options_.batch_size = 1;
}

DistillResult
Distiller::Distill(const std::vector<Prog>& merged) const
{
  DistillResult result;
  result.stats.input_programs = merged.size();
  if (lib_->syscalls().empty()) return result;

  // -- 1. Structural dedup (order-preserving) ------------------------------
  // Shards rebroadcast interesting seeds to every peer, so merged corpora
  // are full of byte-identical copies; dropping them here keeps the replay
  // bill proportional to distinct programs.
  std::vector<Prog> candidates;
  candidates.reserve(merged.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(merged.size());
  for (const Prog& prog : merged) {
    if (prog.empty()) continue;
    if (options_.dedupe_exact && !seen.insert(HashProg(prog)).second) {
      ++result.stats.exact_duplicates;
      continue;
    }
    candidates.push_back(prog);
  }

  // -- 2. Batched replay for per-program coverage signatures ---------------
  std::unique_ptr<vkernel::KernelModel> kernel =
      options_.model_factory ? options_.model_factory()
                             : vkernel::MakeStrictModel();
  if (boot_) boot_(kernel.get());
  Executor executor(kernel.get(), lib_);

  std::vector<vkernel::Coverage> signatures(candidates.size());
  std::vector<ExecResult> execs(candidates.size());
  const size_t window = static_cast<size_t>(options_.batch_size);
  for (size_t off = 0; off < candidates.size(); off += window) {
    const size_t n = std::min(window, candidates.size() - off);
    std::vector<vkernel::Coverage> chunk_sigs;
    std::vector<ExecResult> chunk = executor.RunBatch(
        util::Span<const Prog>(candidates.data() + off, n), &result.coverage,
        &chunk_sigs);
    for (size_t i = 0; i < n; ++i) {
      signatures[off + i] = std::move(chunk_sigs[i]);
      execs[off + i] = std::move(chunk[i]);
    }
  }
  result.stats.replayed = candidates.size();

  // -- 3. Greedy minimal covering subset -----------------------------------
  // Syzkaller-style one-pass greedy set cover: visit candidates from the
  // largest signature down (ties by input position) and keep every program
  // that still contributes an uncovered block. Any block of the merged
  // coverage lives in some candidate's signature, so when the pass ends
  // the selected union equals the merged union exactly.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return signatures[a].Count() > signatures[b].Count();
  });

  vkernel::Coverage selected;
  for (size_t i : order) {
    if (signatures[i].CountNotIn(selected) == 0) continue;
    selected.Merge(signatures[i]);
    result.corpus.push_back(candidates[i]);
    if (selected.Count() == result.coverage.Count()) break;
  }
  result.stats.selected = result.corpus.size();

  // -- 4. Crash dedup + reproducer minimization ----------------------------
  // First crashing program per title (input order — deterministic), then
  // shrink it. The minimizer reuses this pass's executor and kernel.
  std::map<std::string, const Prog*> first_crash;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!execs[i].crashed) continue;
    ++result.stats.crashing_inputs;
    first_crash.emplace(execs[i].crash_title, &candidates[i]);
  }
  for (const auto& [title, prog] : first_crash) {
    if (!options_.minimize_crashes) {
      result.crash_reproducers[title] = *prog;
      continue;
    }
    MinimizeResult minimized = MinimizeCrash(&executor, *prog, title);
    result.stats.minimize_executions += minimized.executions;
    result.crash_reproducers[title] =
        minimized.reproduced ? std::move(minimized.prog) : *prog;
  }
  return result;
}

CampaignLoopResult
RunCampaignLoop(const SpecLibrary& lib, Orchestrator::BootFn boot,
                const CampaignLoopOptions& options)
{
  // Compatibility shim: the loop is now one hash-chain Session round
  // schedule (campaign -> distill -> re-seed), bit-identical to the
  // pre-Session inline loop. New code should drive fuzzer::Session
  // directly — it adds persistence (Save/Resume), trend reports, and
  // Status-based error reporting this legacy signature cannot surface.
  CampaignLoopResult result;
  SessionOptions session_options;
  session_options.WithSeed(options.orchestrator.campaign.seed)
      .WithRounds(std::max(options.rounds, 1))
      .WithSchedule(SeedSchedule::kHashChain)
      .WithCarryCorpus(true)
      .WithDistill(true)
      .WithOrchestrator(options.orchestrator)
      .WithDistillOptions(options.distill);

  Session session(session_options, std::move(boot));
  static constexpr char kSuite[] = "loop";
  if (!session.RegisterSuite(kSuite, &lib).ok() || !session.Run().ok()) {
    // The legacy contract has no error channel; an unusable suite (e.g.
    // an empty library) degrades to the empty result it always produced.
    return result;
  }

  SuiteState& state = *session.Find(kSuite);
  result.coverage = std::move(state.coverage);
  result.crashes = std::move(state.crashes);
  result.crash_reproducers = std::move(state.crash_reproducers);
  result.corpus = std::move(state.corpus);
  result.programs_executed = state.programs_executed;
  for (RoundReport& report : state.rounds) {
    CampaignRoundStats stats;
    stats.merged_corpus = report.merged_corpus;
    stats.distilled_corpus = report.distilled_corpus;
    stats.coverage_blocks = report.cumulative_coverage;
    stats.unique_crashes = report.cumulative_unique_crashes;
    stats.epochs = std::move(report.epochs);
    result.rounds.push_back(std::move(stats));
  }
  return result;
}

}  // namespace kernelgpt::fuzzer
