#include "fuzzer/distiller.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "fuzzer/minimizer.h"

namespace kernelgpt::fuzzer {

Distiller::Distiller(const SpecLibrary* lib, Orchestrator::BootFn boot,
                     DistillOptions options)
    : lib_(lib), boot_(std::move(boot)), options_(options)
{
  if (options_.batch_size < 1) options_.batch_size = 1;
}

DistillResult
Distiller::Distill(const std::vector<Prog>& merged) const
{
  DistillResult result;
  result.stats.input_programs = merged.size();
  if (lib_->syscalls().empty()) return result;

  // -- 1. Structural dedup (order-preserving) ------------------------------
  // Shards rebroadcast interesting seeds to every peer, so merged corpora
  // are full of byte-identical copies; dropping them here keeps the replay
  // bill proportional to distinct programs.
  std::vector<Prog> candidates;
  candidates.reserve(merged.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(merged.size());
  for (const Prog& prog : merged) {
    if (prog.empty()) continue;
    if (options_.dedupe_exact && !seen.insert(HashProg(prog)).second) {
      ++result.stats.exact_duplicates;
      continue;
    }
    candidates.push_back(prog);
  }

  // -- 2. Batched replay for per-program coverage signatures ---------------
  vkernel::Kernel kernel;
  if (boot_) boot_(&kernel);
  Executor executor(&kernel, lib_);

  std::vector<vkernel::Coverage> signatures(candidates.size());
  std::vector<ExecResult> execs(candidates.size());
  const size_t window = static_cast<size_t>(options_.batch_size);
  for (size_t off = 0; off < candidates.size(); off += window) {
    const size_t n = std::min(window, candidates.size() - off);
    std::vector<vkernel::Coverage> chunk_sigs;
    std::vector<ExecResult> chunk = executor.RunBatch(
        util::Span<const Prog>(candidates.data() + off, n), &result.coverage,
        &chunk_sigs);
    for (size_t i = 0; i < n; ++i) {
      signatures[off + i] = std::move(chunk_sigs[i]);
      execs[off + i] = std::move(chunk[i]);
    }
  }
  result.stats.replayed = candidates.size();

  // -- 3. Greedy minimal covering subset -----------------------------------
  // Syzkaller-style one-pass greedy set cover: visit candidates from the
  // largest signature down (ties by input position) and keep every program
  // that still contributes an uncovered block. Any block of the merged
  // coverage lives in some candidate's signature, so when the pass ends
  // the selected union equals the merged union exactly.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return signatures[a].Count() > signatures[b].Count();
  });

  vkernel::Coverage selected;
  for (size_t i : order) {
    if (signatures[i].CountNotIn(selected) == 0) continue;
    selected.Merge(signatures[i]);
    result.corpus.push_back(candidates[i]);
    if (selected.Count() == result.coverage.Count()) break;
  }
  result.stats.selected = result.corpus.size();

  // -- 4. Crash dedup + reproducer minimization ----------------------------
  // First crashing program per title (input order — deterministic), then
  // shrink it. The minimizer reuses this pass's executor and kernel.
  std::map<std::string, const Prog*> first_crash;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!execs[i].crashed) continue;
    ++result.stats.crashing_inputs;
    first_crash.emplace(execs[i].crash_title, &candidates[i]);
  }
  for (const auto& [title, prog] : first_crash) {
    if (!options_.minimize_crashes) {
      result.crash_reproducers[title] = *prog;
      continue;
    }
    MinimizeResult minimized = MinimizeCrash(&executor, *prog, title);
    result.stats.minimize_executions += minimized.executions;
    result.crash_reproducers[title] =
        minimized.reproduced ? std::move(minimized.prog) : *prog;
  }
  return result;
}

CampaignLoopResult
RunCampaignLoop(const SpecLibrary& lib, Orchestrator::BootFn boot,
                const CampaignLoopOptions& options)
{
  CampaignLoopResult result;
  const int rounds = std::max(options.rounds, 1);
  const uint64_t master_seed = options.orchestrator.campaign.seed;
  Distiller distiller(&lib, boot, options.distill);

  std::vector<Prog> seed_corpus;
  for (int round = 0; round < rounds; ++round) {
    OrchestratorOptions orchestrator = options.orchestrator;
    // Decorrelate rounds the same way the orchestrator decorrelates
    // shards; round 0 keeps the master seed.
    orchestrator.campaign.seed =
        round == 0 ? master_seed
                   : util::HashCombine(master_seed, static_cast<uint64_t>(round));
    orchestrator.campaign.seed_corpus = std::move(seed_corpus);

    OrchestratorResult campaign = RunShardedCampaign(lib, boot, orchestrator);
    result.coverage.Merge(campaign.coverage);
    for (const auto& [title, count] : campaign.crashes) {
      result.crashes[title] += count;
    }
    result.programs_executed += campaign.programs_executed;

    DistillResult distilled = distiller.Distill(campaign.corpus);
    for (auto& [title, prog] : distilled.crash_reproducers) {
      result.crash_reproducers[title] = std::move(prog);
    }

    CampaignRoundStats stats;
    stats.merged_corpus = campaign.corpus.size();
    stats.distilled_corpus = distilled.corpus.size();
    stats.coverage_blocks = result.coverage.Count();
    stats.unique_crashes = result.crashes.size();
    stats.epochs = std::move(campaign.epochs);
    result.rounds.push_back(std::move(stats));

    seed_corpus = std::move(distilled.corpus);
  }
  result.corpus = std::move(seed_corpus);
  return result;
}

}  // namespace kernelgpt::fuzzer
