/// \file
/// Specification-guided program generation: chooses syscalls, satisfies
/// their resource dependencies by inserting producer calls, and builds
/// semantically valid arguments from the spec types (honoring const
/// values, ranges, flag sets, string literals, and len relations).

#ifndef KERNELGPT_FUZZER_GENERATOR_H_
#define KERNELGPT_FUZZER_GENERATOR_H_

#include <unordered_map>

#include "fuzzer/prog.h"
#include "util/rng.h"

namespace kernelgpt::fuzzer {

/// Program generator bound to one spec library.
class Generator {
 public:
  Generator(const SpecLibrary* lib, util::Rng* rng);

  /// Generates a program with up to `max_len` calls (resource producer
  /// chains may push slightly beyond).
  Prog Generate(int max_len);

  /// Builds one argument for a parameter type; resource params get
  /// `ref_call` = -1 and must be fixed up by the caller.
  Arg BuildArg(const syzlang::Type& type);

  /// Builds the byte payload for a pointee type (struct/array/string).
  std::vector<uint8_t> BuildPayload(const syzlang::Type& type);

  /// Appends `syscall_index` to the program, inserting any producer calls
  /// its resource parameters need. Returns the index of the appended call.
  int AppendCall(Prog* prog, size_t syscall_index, int depth = 0);

  /// Resolves len[...] parameters after all sibling args exist.
  void LinkLens(const syzlang::SyscallDef& def, Call* call);

  /// Random scalar for an int type, biased toward special values.
  uint64_t ScalarFor(const syzlang::Type& type);

 private:
  /// Serializes one field of a struct into `out`, returning the patch
  /// offset when the field is a len awaiting its target size.
  void AppendField(const syzlang::StructDef& def, std::vector<uint8_t>* out);

  /// Per-Type resolutions of the name-keyed library lookups (constant
  /// values, flag sets, struct defs, packed sizes). Spec types are
  /// stable after SpecLibrary::Finalize(), so they are cached by address
  /// the first time a type is generated and hit thereafter — the
  /// generator's hot path stops hashing strings.
  struct TypeInfo {
    bool const_known = false;
    uint64_t const_value = 0;
    bool flags_known = false;
    std::vector<uint64_t> flag_values;
    bool struct_known = false;
    const syzlang::StructDef* struct_def = nullptr;
    bool is_resource_ref = false;
    bool size_known = false;
    size_t type_size = 0;
  };

  /// Flat-array lookup via the slot Finalize() stamped on the type;
  /// types from outside a finalized library fall back to a pointer map.
  /// slots_ is pre-sized in the constructor so a held TypeInfo& stays
  /// valid across recursive generation calls. If the library is
  /// re-Finalize()d behind this generator, slot ids are reassigned, so
  /// every cached entry is discarded before serving the new numbering.
  TypeInfo& InfoFor(const syzlang::Type& type) {
    const int slot = type.cache_slot;
    if (slot < 0) return fallback_cache_[&type];
    if (lib_->TypeSlotCount() != slots_.size()) {
      slots_.assign(lib_->TypeSlotCount(), TypeInfo());
      fallback_cache_.clear();
    }
    if (static_cast<size_t>(slot) >= slots_.size()) {
      return fallback_cache_[&type];
    }
    return slots_[static_cast<size_t>(slot)];
  }

  /// InfoFor() with the kStructRef fields (struct def, resource-ness)
  /// resolved — the shared lazy-init for BuildArg and BuildPayload.
  TypeInfo& StructInfoFor(const syzlang::Type& type);

  size_t CachedTypeSize(const syzlang::Type& type);

  const SpecLibrary* lib_;
  util::Rng* rng_;
  std::vector<TypeInfo> slots_;
  std::unordered_map<const syzlang::Type*, TypeInfo> fallback_cache_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_GENERATOR_H_
