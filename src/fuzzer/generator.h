/// \file
/// Specification-guided program generation: chooses syscalls, satisfies
/// their resource dependencies by inserting producer calls, and builds
/// semantically valid arguments from the spec types (honoring const
/// values, ranges, flag sets, string literals, and len relations).

#ifndef KERNELGPT_FUZZER_GENERATOR_H_
#define KERNELGPT_FUZZER_GENERATOR_H_

#include "fuzzer/prog.h"
#include "util/rng.h"

namespace kernelgpt::fuzzer {

/// Program generator bound to one spec library.
class Generator {
 public:
  Generator(const SpecLibrary* lib, util::Rng* rng);

  /// Generates a program with up to `max_len` calls (resource producer
  /// chains may push slightly beyond).
  Prog Generate(int max_len);

  /// Builds one argument for a parameter type; resource params get
  /// `ref_call` = -1 and must be fixed up by the caller.
  Arg BuildArg(const syzlang::Type& type);

  /// Builds the byte payload for a pointee type (struct/array/string).
  std::vector<uint8_t> BuildPayload(const syzlang::Type& type);

  /// Appends `syscall_index` to the program, inserting any producer calls
  /// its resource parameters need. Returns the index of the appended call.
  int AppendCall(Prog* prog, size_t syscall_index, int depth = 0);

  /// Resolves len[...] parameters after all sibling args exist.
  void LinkLens(const syzlang::SyscallDef& def, Call* call);

  /// Random scalar for an int type, biased toward special values.
  uint64_t ScalarFor(const syzlang::Type& type);

 private:
  /// Serializes one field of a struct into `out`, returning the patch
  /// offset when the field is a len awaiting its target size.
  void AppendField(const syzlang::StructDef& def, std::vector<uint8_t>* out);

  const SpecLibrary* lib_;
  util::Rng* rng_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_GENERATOR_H_
