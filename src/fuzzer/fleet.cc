#include "fuzzer/fleet.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <utility>

#include "util/fault.h"
#include "util/strings.h"

namespace kernelgpt::fuzzer {
namespace {

/// A committed snapshot lives wherever a manifest does — the manifest
/// rename is the Session layer's commit point, so its presence is the
/// resume test.
bool
SnapshotExists(const std::string& dir)
{
  if (dir.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(dir + "/session.manifest", ec);
}

}  // namespace

bool
FleetReport::AllComplete() const
{
  if (!status.ok() || tenants.empty()) return false;
  for (const TenantReport& t : tenants) {
    if (!t.complete) return false;
  }
  return true;
}

std::string
FleetReport::Render() const
{
  int complete = 0;
  int quarantined = 0;
  for (const TenantReport& t : tenants) {
    if (t.complete) ++complete;
    if (t.quarantined) ++quarantined;
  }
  std::string out = util::Format(
      "fleet: %zu tenants, %d complete, %d quarantined\n", tenants.size(),
      complete, quarantined);
  if (!status.ok()) {
    out += util::Format("fleet error: %s\n", status.message().c_str());
  }
  for (const TenantReport& t : tenants) {
    out += util::Format(
        "tenant '%s': rounds=%d complete=%s quarantined=%s retries=%d "
        "recoveries=%d failures=%d backoff_ms=%.3f\n",
        t.name.c_str(), t.rounds_completed, t.complete ? "yes" : "no",
        t.quarantined ? "yes" : "no", t.retries, t.recoveries, t.failures,
        t.backoff_ms);
    if (!t.last_error.empty()) {
      out += util::Format("  last_error: %s\n", t.last_error.c_str());
    }
    for (const std::string& note : t.degraded) {
      out += util::Format("  degraded: %s\n", note.c_str());
    }
  }
  return out;
}

Fleet::Fleet(FleetOptions options) : options_(std::move(options))
{
  if (options_.target_rounds < 0) options_.target_rounds = 0;
  if (options_.supervisor_threads < 1) options_.supervisor_threads = 1;
  if (options_.quarantine_after < 1) options_.quarantine_after = 1;
}

util::Status
Fleet::AddSession(const std::string& name, SessionFactory factory)
{
  if (name.empty()) {
    return util::Status::Error("fleet: tenant name must not be empty");
  }
  for (const Tenant& t : tenants_) {
    if (t.name == name) {
      return util::Status::Error(
          util::Format("fleet: tenant '%s' already registered", name.c_str()));
    }
  }
  if (!factory) {
    return util::Status::Error(util::Format(
        "fleet: tenant '%s' has no session factory", name.c_str()));
  }
  Tenant tenant;
  tenant.name = name;
  tenant.factory = std::move(factory);
  tenant.report.name = name;
  tenants_.push_back(std::move(tenant));
  return util::Status::Ok();
}

util::Status
Fleet::BuildSession(Tenant* t)
{
  std::unique_ptr<Session> session;
  try {
    session = t->factory();
  } catch (const std::exception& ex) {
    return util::Status::Error(util::Format(
        "fleet: tenant '%s' factory failed: %s", t->name.c_str(), ex.what()));
  }
  if (!session) {
    return util::Status::Error(util::Format(
        "fleet: tenant '%s' factory returned no session", t->name.c_str()));
  }
  // Restart-from-snapshot: if the tenant's autosave directory holds a
  // committed snapshot, resume it — both at fleet startup (a restarted
  // daemon) and after a simulated crash. A fresh tenant (no snapshot
  // yet) simply starts from round 0.
  const std::string& dir = session->options().autosave_dir;
  if (SnapshotExists(dir)) {
    try {
      util::Status resumed = session->Resume(dir);
      if (!resumed.ok()) {
        return util::Status::Error(util::Format(
            "fleet: tenant '%s' cannot resume from '%s': %s",
            t->name.c_str(), dir.c_str(), resumed.message().c_str()));
      }
    } catch (const std::exception& ex) {
      // Even a crash injected into the resume path must not take the
      // supervisor down; it becomes a failed incident like any other.
      return util::Status::Error(util::Format(
          "fleet: tenant '%s' died resuming from '%s': %s", t->name.c_str(),
          dir.c_str(), ex.what()));
    }
  }
  t->session = std::move(session);
  return util::Status::Ok();
}

void
Fleet::NoteDegraded(TenantReport* report, const std::string& note)
{
  for (const std::string& existing : report->degraded) {
    if (existing == note) return;
  }
  report->degraded.push_back(note);
}

void
Fleet::RunTenant(Tenant* t)
{
  TenantReport& report = t->report;
  int consecutive = 0;

  // One "incident" = a round that exhausted its retries, a crash, or a
  // failed rebuild. Quarantine trips on consecutive incidents with no
  // completed round in between.
  auto fail_incident = [&](const std::string& message) {
    ++report.failures;
    ++consecutive;
    report.last_error = message;
    if (consecutive >= options_.quarantine_after) {
      report.quarantined = true;
      NoteDegraded(&report,
                   util::Format("quarantined after %d consecutive incidents",
                                consecutive));
    }
  };

  if (!t->session) {
    util::Status built = BuildSession(t);
    if (!built.ok()) {
      // No session, nothing to retry against: quarantine immediately.
      fail_incident(built.message());
      report.quarantined = true;
      return;
    }
  }

  while (!report.quarantined &&
         t->session->rounds_completed() < options_.target_rounds) {
    // Keyed by tenant + absolute round index: backoff jitter streams are
    // decorrelated between tenants and stable across crash recoveries
    // (a re-earned round re-draws the same backoff).
    const std::string key =
        util::Format("%s/round-%d", t->name.c_str(),
                     t->session->rounds_completed());
    try {
      util::RetryResult r = util::RunWithRetry(
          options_.retry, key,
          [&](int) { return t->session->RunRound(); });
      report.retries += r.retries;
      report.backoff_ms += r.backoff_ms;
      if (r.ok()) {
        consecutive = 0;
        // Alive but degraded: the session is carrying a pending-save
        // backlog because its snapshot directory is failing. Report it;
        // the session keeps retrying the save on its own schedule.
        if (t->session->save_failures() > 0 &&
            !t->session->last_save_error().empty()) {
          NoteDegraded(&report,
                       "snapshot: " + t->session->last_save_error());
        }
      } else {
        fail_incident(r.status.message());
      }
    } catch (const util::InjectedCrash& crash) {
      // Simulated process death. Never retried in place: tear the
      // session down and restart it from the last durable snapshot,
      // exactly as a supervisor restarting a dead daemon would. The
      // rounds lost since that snapshot are re-earned deterministically,
      // so the recovered tenant converges on the fault-free result.
      ++report.recoveries;
      fail_incident(crash.what());
      if (report.quarantined) break;
      t->session.reset();
      util::Status rebuilt = BuildSession(t);
      if (!rebuilt.ok()) {
        fail_incident(rebuilt.message());
        report.quarantined = true;
        break;
      }
    } catch (const std::exception& ex) {
      // Any other escape (e.g. an injected throw inside the autosave
      // path, after the round committed) is an incident, not a fleet
      // abort. The loop re-reads rounds_completed(), so a round that DID
      // commit before throwing is never run twice.
      fail_incident(ex.what());
    }
  }

  report.rounds_completed =
      t->session ? t->session->rounds_completed() : 0;
  report.complete = !report.quarantined &&
                    report.rounds_completed >= options_.target_rounds;
}

FleetReport
Fleet::Run()
{
  FleetReport report;
  if (tenants_.empty()) {
    report.status = util::Status::Error("fleet: no sessions registered");
    return report;
  }
  if (options_.arm_env_plan) {
    // A malformed env plan is reported but does not stop the fleet — a
    // daemon must not die to a typo in an environment variable.
    util::Status parse_error = util::Status::Ok();
    util::FaultInjector::Instance().ArmFromEnvIfPresent(&parse_error);
    if (!parse_error.ok()) report.status = parse_error;
  }

  const int threads =
      std::min<int>(options_.supervisor_threads,
                    static_cast<int>(tenants_.size()));
  if (threads <= 1) {
    for (Tenant& t : tenants_) RunTenant(&t);
  } else {
    // Tenants are whole-unit work items claimed off a shared counter;
    // no tenant state is shared, so thread count cannot change any
    // tenant's outcome — only which thread happens to host it.
    std::atomic<size_t> next{0};
    auto supervisor = [&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= tenants_.size()) return;
        RunTenant(&tenants_[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(supervisor);
    for (std::thread& th : pool) th.join();
  }

  for (Tenant& t : tenants_) report.tenants.push_back(t.report);
  return report;
}

const Session*
Fleet::FindSession(const std::string& name) const
{
  for (const Tenant& t : tenants_) {
    if (t.name == name) return t.session.get();
  }
  return nullptr;
}

}  // namespace kernelgpt::fuzzer
