#include "fuzzer/generator.h"

#include <algorithm>

namespace kernelgpt::fuzzer {

using syzlang::Dir;
using syzlang::SyscallDef;
using syzlang::Type;
using syzlang::TypeKind;

Generator::Generator(const SpecLibrary* lib, util::Rng* rng)
    : lib_(lib), rng_(rng)
{
  // Pre-size the slot array so InfoFor() never reallocates mid-use (a
  // held TypeInfo& must stay valid across recursive generation calls).
  slots_.resize(lib_->TypeSlotCount());
}

Generator::TypeInfo&
Generator::StructInfoFor(const Type& type)
{
  TypeInfo& info = InfoFor(type);
  if (!info.struct_known) {
    info.struct_def = lib_->FindStruct(type.ref_name);
    info.is_resource_ref = lib_->HasResource(type.ref_name);
    info.struct_known = true;
  }
  return info;
}

size_t
Generator::CachedTypeSize(const Type& type)
{
  TypeInfo& info = InfoFor(type);
  if (!info.size_known) {
    info.type_size = lib_->TypeSize(type);
    info.size_known = true;
  }
  return info.type_size;
}

uint64_t
Generator::ScalarFor(const Type& type)
{
  int bits = type.bits == 0 ? 64 : type.bits;
  uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  switch (type.kind) {
    case TypeKind::kConst: {
      TypeInfo& info = InfoFor(type);
      if (!info.const_known) {
        info.const_value = lib_->ResolveConst(type.const_name);
        info.const_known = true;
      }
      return info.const_value;
    }
    case TypeKind::kFlags: {
      TypeInfo& info = InfoFor(type);
      if (!info.flags_known) {
        if (const syzlang::FlagsDef* flags =
                lib_->FindFlags(type.flags_name)) {
          for (const auto& name : flags->values) {
            info.flag_values.push_back(lib_->ResolveConst(name));
          }
        }
        info.flags_known = true;
      }
      if (info.flag_values.empty()) return rng_->Next() & mask;
      uint64_t value = 0;
      for (uint64_t flag : info.flag_values) {
        if (rng_->Chance(0.4)) value |= flag;
      }
      return value & mask;
    }
    case TypeKind::kInt: {
      if (type.has_range) {
        // Mostly in-range (the point of semantic specs), occasionally a
        // boundary probe.
        if (rng_->Chance(0.9)) {
          return static_cast<uint64_t>(
                     rng_->Range(type.range_lo, type.range_hi)) &
                 mask;
        }
        return rng_->Chance(0.5)
                   ? static_cast<uint64_t>(type.range_lo) & mask
                   : static_cast<uint64_t>(type.range_hi) & mask;
      }
      // Special-value biased generation (syzkaller-style).
      switch (rng_->Below(6)) {
        case 0: return 0;
        case 1: return 1;
        case 2: return mask;
        case 3: return rng_->Below(64);
        case 4: return rng_->Next() & mask & 0xffff;
        default: return rng_->Next() & mask;
      }
    }
    default:
      return rng_->Next() & mask;
  }
}

namespace {

void
AppendScalarBytes(std::vector<uint8_t>* out, uint64_t value, size_t size)
{
  size_t at = out->size();
  out->resize(at + size);
  for (size_t i = 0; i < size; ++i) {
    (*out)[at + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

}  // namespace

std::vector<uint8_t>
Generator::BuildPayload(const Type& type)
{
  std::vector<uint8_t> out;
  switch (type.kind) {
    case TypeKind::kString: {
      if (!type.str_literal.empty()) {
        out.assign(type.str_literal.begin(), type.str_literal.end());
        out.push_back(0);
      } else {
        size_t n = rng_->Below(16);
        for (size_t i = 0; i < n; ++i) {
          out.push_back(static_cast<uint8_t>('a' + rng_->Below(26)));
        }
        out.push_back(0);
      }
      return out;
    }
    case TypeKind::kArray: {
      const Type& elem = type.elems.at(0);
      uint64_t count =
          type.array_len > 0 ? type.array_len : rng_->Below(17);
      size_t elem_size = CachedTypeSize(elem);
      out.reserve(count * (elem_size ? elem_size : 4));
      for (uint64_t i = 0; i < count; ++i) {
        if (elem.kind == TypeKind::kStructRef) {
          auto nested = BuildPayload(elem);
          out.insert(out.end(), nested.begin(), nested.end());
        } else {
          AppendScalarBytes(&out, ScalarFor(elem),
                            elem_size ? elem_size : 4);
        }
      }
      return out;
    }
    case TypeKind::kStructRef: {
      const syzlang::StructDef* def = StructInfoFor(type).struct_def;
      if (!def) {
        out.assign(8, 0);
        return out;
      }
      if (def->is_union) {
        // Pick one arm and pad to the union size.
        size_t total = CachedTypeSize(type);
        if (!def->fields.empty()) {
          const auto& arm =
              def->fields[rng_->Below(def->fields.size())];
          out = BuildPayload(arm.type);
          if (out.empty()) {
            AppendScalarBytes(&out, ScalarFor(arm.type),
                              CachedTypeSize(arm.type));
          }
        }
        out.resize(total, 0);
        return out;
      }
      // First pass: generate non-len fields, remembering array element
      // counts; second pass fills len fields with the observed counts.
      struct Slot {
        size_t offset;
        size_t size;
        std::string target;  ///< Non-empty: len of this sibling.
        bool bytesize = false;
      };
      std::vector<Slot> len_slots;
      std::unordered_map<std::string, uint64_t> elem_counts;
      std::unordered_map<std::string, uint64_t> byte_sizes;
      out.reserve(CachedTypeSize(type));
      for (const auto& field : def->fields) {
        const Type& ft = field.type;
        if (ft.kind == TypeKind::kLen || ft.kind == TypeKind::kBytesize) {
          Slot slot;
          slot.offset = out.size();
          slot.size = ft.bits == 0 ? 8 : static_cast<size_t>(ft.bits) / 8;
          slot.target = ft.len_target;
          slot.bytesize = ft.kind == TypeKind::kBytesize;
          len_slots.push_back(slot);
          AppendScalarBytes(&out, 0, slot.size);
          continue;
        }
        if (ft.kind == TypeKind::kArray || ft.kind == TypeKind::kString ||
            ft.kind == TypeKind::kStructRef) {
          std::vector<uint8_t> payload = BuildPayload(ft);
          size_t elem_size = ft.kind == TypeKind::kArray
                                 ? std::max<size_t>(
                                       CachedTypeSize(ft.elems.at(0)), 1)
                                 : 1;
          elem_counts[field.name] = payload.size() / elem_size;
          byte_sizes[field.name] = payload.size();
          // Fixed-size fields keep their declared size.
          size_t declared = CachedTypeSize(ft);
          if (declared > 0) payload.resize(declared, 0);
          out.insert(out.end(), payload.begin(), payload.end());
          continue;
        }
        size_t size = CachedTypeSize(ft);
        AppendScalarBytes(&out, ScalarFor(ft), size ? size : 4);
      }
      for (const Slot& slot : len_slots) {
        uint64_t value = 0;
        if (slot.target == "parent") {
          value = out.size();
        } else if (slot.bytesize) {
          auto it = byte_sizes.find(slot.target);
          if (it != byte_sizes.end()) value = it->second;
        } else {
          auto it = elem_counts.find(slot.target);
          if (it != elem_counts.end()) value = it->second;
        }
        for (size_t i = 0; i < slot.size; ++i) {
          out[slot.offset + i] = static_cast<uint8_t>(value >> (8 * i));
        }
      }
      return out;
    }
    default: {
      size_t size = CachedTypeSize(type);
      AppendScalarBytes(&out, ScalarFor(type), size ? size : 4);
      return out;
    }
  }
}

Arg
Generator::BuildArg(const Type& type)
{
  Arg arg;
  switch (type.kind) {
    case TypeKind::kResource:
      arg.kind = Arg::Kind::kResourceRef;
      return arg;
    case TypeKind::kStructRef: {
      // A bare name can be a resource reference after parsing round-trips.
      if (StructInfoFor(type).is_resource_ref) {
        arg.kind = Arg::Kind::kResourceRef;
        return arg;
      }
      arg.kind = Arg::Kind::kBuffer;
      arg.bytes = BuildPayload(type);
      return arg;
    }
    case TypeKind::kPtr:
      arg.kind = Arg::Kind::kBuffer;
      arg.dir = type.dir;
      arg.bytes = BuildPayload(type.elems.at(0));
      if (type.dir == Dir::kOut) {
        // Out buffers are kernel-filled; provide capacity only.
        size_t want = CachedTypeSize(type.elems.at(0));
        arg.bytes.assign(want ? want : 64, 0);
      }
      return arg;
    case TypeKind::kFilename: {
      arg.kind = Arg::Kind::kBuffer;
      std::string path = "/dev/null";
      arg.bytes.assign(path.begin(), path.end());
      arg.bytes.push_back(0);
      return arg;
    }
    case TypeKind::kLen:
    case TypeKind::kBytesize:
      arg.kind = Arg::Kind::kScalar;
      arg.scalar = 0;  // Linked by LinkLens.
      return arg;
    default:
      arg.kind = Arg::Kind::kScalar;
      arg.scalar = ScalarFor(type);
      return arg;
  }
}

void
Generator::LinkLens(const SyscallDef& def, Call* call)
{
  (void)def;
  // (len param, target param) pairs are precomputed by Finalize().
  for (const auto& [len_idx, target_idx] :
       lib_->LenLinksOf(call->syscall_index)) {
    const size_t i = static_cast<size_t>(len_idx);
    const size_t j = static_cast<size_t>(target_idx);
    if (i >= call->args.size() || j >= call->args.size()) continue;
    if (call->args[i].len_of_param == kBrokenLenLink) continue;
    call->args[i].len_of_param = static_cast<int>(j);
    call->args[i].scalar = call->args[j].bytes.size();
  }
}

int
Generator::AppendCall(Prog* prog, size_t syscall_index, int depth)
{
  if (syscall_index >= lib_->syscalls().size()) return -1;
  const SyscallDef& def = lib_->syscalls()[syscall_index];
  Call call;
  call.syscall_index = syscall_index;

  for (const auto& param : def.params) {
    Arg arg = BuildArg(param.type);
    if (arg.kind == Arg::Kind::kResourceRef) {
      const std::string& res = param.type.kind == TypeKind::kResource
                                   ? param.type.ref_name
                                   : param.type.ref_name;
      // Reuse the most recent producer already in the program.
      for (int c = static_cast<int>(prog->calls.size()) - 1; c >= 0; --c) {
        const SyscallDef& prev =
            lib_->syscalls()[prog->calls[static_cast<size_t>(c)].syscall_index];
        if (prev.returns_resource && *prev.returns_resource == res) {
          arg.ref_call = c;
          break;
        }
      }
      if (arg.ref_call < 0 && depth < 4) {
        // Prefer producers that do not themselves consume this resource
        // (socket/openat over accept); precomputed in Finalize().
        const auto& pool = lib_->SafeProducersOf(res);
        if (!pool.empty()) {
          size_t producer = pool[rng_->Below(pool.size())];
          arg.ref_call = AppendCall(prog, producer, depth + 1);
        }
      }
    }
    call.args.push_back(std::move(arg));
  }
  LinkLens(def, &call);
  prog->calls.push_back(std::move(call));
  return static_cast<int>(prog->calls.size()) - 1;
}

Prog
Generator::Generate(int max_len)
{
  Prog prog;
  if (lib_->syscalls().empty()) return prog;
  int want = 1 + static_cast<int>(rng_->Below(static_cast<uint64_t>(
                 max_len > 0 ? max_len : 1)));
  while (static_cast<int>(prog.calls.size()) < want) {
    size_t idx = rng_->Below(lib_->syscalls().size());
    AppendCall(&prog, idx);
    if (prog.calls.size() > 3 * static_cast<size_t>(want)) break;
  }
  return prog;
}

}  // namespace kernelgpt::fuzzer
