/// \file
/// Program mutation: scalar/buffer perturbation, call insertion, removal,
/// and duplication, with resource-reference fixup — the syzkaller-style
/// mutation loop over spec-typed programs.

#ifndef KERNELGPT_FUZZER_MUTATOR_H_
#define KERNELGPT_FUZZER_MUTATOR_H_

#include "fuzzer/generator.h"
#include "fuzzer/prog.h"

namespace kernelgpt::fuzzer {

/// Mutates programs in place.
class Mutator {
 public:
  Mutator(const SpecLibrary* lib, Generator* generator, util::Rng* rng);

  /// Applies 1-3 random mutation operators to `prog`.
  void Mutate(Prog* prog);

 private:
  void MutateScalar(Prog* prog);
  void MutateBuffer(Prog* prog);
  void InsertCall(Prog* prog);
  void RemoveCall(Prog* prog);
  void DuplicateCall(Prog* prog);

  /// Re-establishes len links after argument changes.
  void Relink(Prog* prog);

  const SpecLibrary* lib_;
  Generator* generator_;
  util::Rng* rng_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_MUTATOR_H_
