#include "fuzzer/executor.h"

#include <string_view>

namespace kernelgpt::fuzzer {

using vkernel::Buffer;
using vkernel::ExecContext;
using vkernel::ModelOp;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

namespace {

/// Descriptor value no program state can produce; syscalls on it fail
/// with the model's bad-fd errno, mirroring how a fuzzer's stale
/// resource refs behave.
constexpr long kInvalidFd = 999999;

/// Result slot of a call that has not executed (or whose producing call
/// failed): never a valid fd, never ok().
const SyscallResult kUnsetResult = SyscallResult::FromRaw(-1);

/// Extracts the NUL-terminated path prefix of a buffer argument without
/// copying; the view borrows the argument's bytes for the call duration.
std::string_view
PathFrom(const Arg& arg)
{
  size_t len = 0;
  while (len < arg.bytes.size() && arg.bytes[len] != 0) ++len;
  return std::string_view(reinterpret_cast<const char*>(arg.bytes.data()),
                          len);
}

/// Resolves the concrete fd value of an argument.
long
FdOf(const Arg& arg, const std::vector<SyscallResult>& results)
{
  if (arg.kind == Arg::Kind::kResourceRef) {
    if (arg.ref_call >= 0 &&
        static_cast<size_t>(arg.ref_call) < results.size() &&
        results[static_cast<size_t>(arg.ref_call)].ok()) {
      return results[static_cast<size_t>(arg.ref_call)].retval;
    }
    return kInvalidFd;
  }
  return static_cast<long>(arg.scalar);
}

uint64_t
ScalarOf(const Call& call, size_t index)
{
  if (index >= call.args.size()) return 0;
  return call.args[index].scalar;
}

/// Zero-copy view over a buffer argument; empty view when the argument
/// is absent or not a buffer.
Buffer
BufferViewAt(const Call& call, size_t index)
{
  if (index < call.args.size() &&
      call.args[index].kind == Arg::Kind::kBuffer) {
    return Buffer::View(call.args[index].bytes);
  }
  return Buffer();
}

}  // namespace

Executor::Executor(vkernel::KernelModel* kernel, const SpecLibrary* lib,
                   DispatchMode mode)
    : kernel_(kernel), lib_(lib), mode_(mode) {}

SyscallResult
Executor::Dispatch(SyscallOp op, const syzlang::SyscallDef& def,
                   const Call& call,
                   const std::vector<SyscallResult>& results,
                   ExecContext& ctx)
{
  auto fd0 = [&]() {
    return call.args.empty() ? -1 : FdOf(call.args[0], results);
  };

  SyscallArgs args;
  switch (op) {
    case SyscallOp::kOpen:
    case SyscallOp::kOpenat: {
      const size_t path_idx = op == SyscallOp::kOpenat ? 1 : 0;
      if (path_idx >= call.args.size()) {
        return SyscallResult::Err(vkernel::kEINVAL);
      }
      args.path = PathFrom(call.args[path_idx]);
      args.a = ScalarOf(call, path_idx + 1);
      return kernel_->Syscall(ModelOp::kOpenat, args, ctx);
    }
    case SyscallOp::kClose:
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kClose, args, ctx);
    case SyscallOp::kDup:
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kDup, args, ctx);
    case SyscallOp::kIoctl: {
      args.fd = fd0();
      args.a = ScalarOf(call, 1);
      if (call.args.size() > 2 && call.args[2].kind == Arg::Kind::kBuffer) {
        Buffer buf = Buffer::View(call.args[2].bytes);
        args.io = &buf;
        return kernel_->Syscall(ModelOp::kIoctl, args, ctx);
      }
      return kernel_->Syscall(ModelOp::kIoctl, args, ctx);
    }
    case SyscallOp::kRead: {
      out_scratch_.bytes.assign(
          call.args.size() > 1 ? call.args[1].bytes.size() : 0, 0);
      args.fd = fd0();
      args.io = &out_scratch_;
      return kernel_->Syscall(ModelOp::kRead, args, ctx);
    }
    case SyscallOp::kWrite: {
      Buffer in = BufferViewAt(call, 1);
      args.fd = fd0();
      args.in = &in;
      return kernel_->Syscall(ModelOp::kWrite, args, ctx);
    }
    case SyscallOp::kPoll:
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kPoll, args, ctx);
    case SyscallOp::kMmap:
      args.fd = fd0();
      args.a = ScalarOf(call, 1);
      return kernel_->Syscall(ModelOp::kMmap, args, ctx);
    case SyscallOp::kSocket:
      args.a = ScalarOf(call, 0);
      args.b = ScalarOf(call, 1);
      args.c = ScalarOf(call, 2);
      return kernel_->Syscall(ModelOp::kSocket, args, ctx);
    case SyscallOp::kSetSockOpt: {
      Buffer val = BufferViewAt(call, 3);
      args.fd = fd0();
      args.a = ScalarOf(call, 1);
      args.b = ScalarOf(call, 2);
      args.in = &val;
      return kernel_->Syscall(ModelOp::kSetSockOpt, args, ctx);
    }
    case SyscallOp::kGetSockOpt: {
      // In/out: the user's bytes size the buffer, the kernel writes it.
      Buffer val = BufferViewAt(call, 3);
      args.fd = fd0();
      args.a = ScalarOf(call, 1);
      args.b = ScalarOf(call, 2);
      args.io = &val;
      return kernel_->Syscall(ModelOp::kGetSockOpt, args, ctx);
    }
    case SyscallOp::kBind: {
      Buffer addr = BufferViewAt(call, 1);
      args.fd = fd0();
      args.addr = &addr;
      return kernel_->Syscall(ModelOp::kBind, args, ctx);
    }
    case SyscallOp::kConnect: {
      Buffer addr = BufferViewAt(call, 1);
      args.fd = fd0();
      args.addr = &addr;
      return kernel_->Syscall(ModelOp::kConnect, args, ctx);
    }
    case SyscallOp::kSendTo: {
      Buffer data = BufferViewAt(call, 1);
      Buffer addr = BufferViewAt(call, 4);
      args.fd = fd0();
      args.in = &data;
      args.addr = &addr;
      return kernel_->Syscall(ModelOp::kSendTo, args, ctx);
    }
    case SyscallOp::kSendMsg: {
      // sendmsg degrades to sendto with empty buffers.
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kSendTo, args, ctx);
    }
    case SyscallOp::kRecvFrom: {
      out_scratch_.bytes.clear();
      args.fd = fd0();
      args.io = &out_scratch_;
      return kernel_->Syscall(ModelOp::kRecvFrom, args, ctx);
    }
    case SyscallOp::kListen:
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kListen, args, ctx);
    case SyscallOp::kAccept:
      args.fd = fd0();
      return kernel_->Syscall(ModelOp::kAccept, args, ctx);
    case SyscallOp::kUnknown:
      break;
  }
  // Unknown opcodes fall back to the name chain so a name Finalize()
  // could not classify still behaves exactly as it always has.
  return DispatchByName(def, call, results, ctx);
}

SyscallResult
Executor::DispatchByName(const syzlang::SyscallDef& def, const Call& call,
                         const std::vector<SyscallResult>& results,
                         ExecContext& ctx)
{
  const std::string& name = def.name;
  auto fd0 = [&]() {
    return call.args.empty() ? -1 : FdOf(call.args[0], results);
  };

  if (name == "openat" || name == "open") {
    size_t path_idx = name == "openat" ? 1 : 0;
    if (path_idx >= call.args.size()) {
      return SyscallResult::Err(vkernel::kEINVAL);
    }
    uint64_t flags = ScalarOf(call, path_idx + 1);
    return kernel_->Openat(PathFrom(call.args[path_idx]), flags, ctx);
  }
  if (name == "close") return kernel_->Close(fd0(), ctx);
  if (name == "dup") return kernel_->Dup(fd0(), ctx);
  if (name == "ioctl") {
    uint64_t cmd = ScalarOf(call, 1);
    if (call.args.size() > 2 && call.args[2].kind == Arg::Kind::kBuffer) {
      Buffer buf;
      buf.bytes = call.args[2].bytes;
      return kernel_->Ioctl(fd0(), cmd, &buf, ctx);
    }
    return kernel_->Ioctl(fd0(), cmd, nullptr, ctx);
  }
  if (name == "read") {
    Buffer out;
    if (call.args.size() > 1) out.bytes.resize(call.args[1].bytes.size());
    return kernel_->Read(fd0(), &out, ctx);
  }
  if (name == "write") {
    Buffer in;
    if (call.args.size() > 1) in.bytes = call.args[1].bytes;
    return kernel_->Write(fd0(), in, ctx);
  }
  if (name == "poll") return kernel_->Poll(fd0(), ctx);
  if (name == "mmap") return kernel_->Mmap(fd0(), ScalarOf(call, 1), ctx);
  if (name == "socket") {
    return kernel_->Socket(ScalarOf(call, 0), ScalarOf(call, 1),
                           ScalarOf(call, 2), ctx);
  }
  if (name == "setsockopt" || name == "getsockopt") {
    uint64_t level = ScalarOf(call, 1);
    uint64_t optname = ScalarOf(call, 2);
    Buffer val;
    if (call.args.size() > 3 && call.args[3].kind == Arg::Kind::kBuffer) {
      val.bytes = call.args[3].bytes;
    }
    if (name == "setsockopt") {
      return kernel_->SetSockOpt(fd0(), level, optname, val, ctx);
    }
    return kernel_->GetSockOpt(fd0(), level, optname, &val, ctx);
  }
  if (name == "bind" || name == "connect") {
    Buffer addr;
    if (call.args.size() > 1 && call.args[1].kind == Arg::Kind::kBuffer) {
      addr.bytes = call.args[1].bytes;
    }
    return name == "bind" ? kernel_->Bind(fd0(), addr, ctx)
                          : kernel_->Connect(fd0(), addr, ctx);
  }
  if (name == "sendto") {
    Buffer data;
    Buffer addr;
    if (call.args.size() > 1 && call.args[1].kind == Arg::Kind::kBuffer) {
      data.bytes = call.args[1].bytes;
    }
    if (call.args.size() > 4 && call.args[4].kind == Arg::Kind::kBuffer) {
      addr.bytes = call.args[4].bytes;
    }
    return kernel_->SendTo(fd0(), data, addr, ctx);
  }
  if (name == "recvfrom" || name == "recvmsg") {
    Buffer data;
    return kernel_->RecvFrom(fd0(), &data, ctx);
  }
  if (name == "sendmsg") {
    Buffer data;
    Buffer addr;
    return kernel_->SendTo(fd0(), data, addr, ctx);
  }
  if (name == "listen") return kernel_->Listen(fd0(), ctx);
  if (name == "accept") return kernel_->Accept(fd0(), ctx);
  return SyscallResult::Err(vkernel::kENOSYS);
}

ExecResult
Executor::Run(const Prog& prog, vkernel::Coverage* total, ExecTrace* trace)
{
  ExecResult result;
  // Blocks land in `total` directly; ExecContext counts the new ones, so
  // there is no per-program coverage set to allocate and merge.
  ExecContext ctx(total);
  kernel_->BeginProgram();

  results_.assign(prog.calls.size(), kUnsetResult);
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    const Call& call = prog.calls[i];
    if (call.syscall_index >= lib_->syscalls().size()) continue;
    const syzlang::SyscallDef& def = lib_->syscalls()[call.syscall_index];
    SyscallResult rc =
        mode_ == DispatchMode::kOpcode
            ? Dispatch(lib_->OpcodeOf(call.syscall_index), def, call,
                       results_, ctx)
            : DispatchByName(def, call, results_, ctx);
    results_[i] = rc;
    ++result.calls_executed;
    if (ctx.crashed()) break;
  }
  if (trace) {
    trace->results = results_;
    trace->end_shape = kernel_->FdTableShape();
    trace->module_state = kernel_->ModuleStateShape();
  }
  kernel_->EndProgram(ctx);  // Close-time (release) bugs fire here.

  result.crashed = ctx.crashed();
  result.crash_title = ctx.crash_title();
  result.new_blocks = ctx.new_hits();
  return result;
}

std::vector<ExecResult>
Executor::RunBatch(util::Span<const Prog> progs, vkernel::Coverage* total)
{
  std::vector<ExecResult> results;
  results.reserve(progs.size());
  BeginBatch();
  for (const Prog& prog : progs) results.push_back(Run(prog, total));
  EndBatch();
  return results;
}

std::vector<ExecResult>
Executor::RunBatch(util::Span<const Prog> progs, vkernel::Coverage* total,
                   std::vector<vkernel::Coverage>* signatures)
{
  if (!signatures) return RunBatch(progs, total);
  std::vector<ExecResult> results;
  results.reserve(progs.size());
  signatures->clear();
  signatures->resize(progs.size());
  BeginBatch();
  for (size_t i = 0; i < progs.size(); ++i) {
    // Each program runs against its own fresh bitmap (the signature);
    // the union and the total-relative new-block count are recovered by
    // merging the signature afterwards.
    ExecResult result = Run(progs[i], &(*signatures)[i]);
    if (total) result.new_blocks = total->Merge((*signatures)[i]);
    results.push_back(std::move(result));
  }
  EndBatch();
  return results;
}

}  // namespace kernelgpt::fuzzer
