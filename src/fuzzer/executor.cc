#include "fuzzer/executor.h"

namespace kernelgpt::fuzzer {

using vkernel::Buffer;
using vkernel::ExecContext;

namespace {

/// Extracts a NUL-terminated path from a buffer argument.
std::string
PathFrom(const Arg& arg)
{
  std::string path;
  for (uint8_t b : arg.bytes) {
    if (b == 0) break;
    path.push_back(static_cast<char>(b));
  }
  return path;
}

/// Resolves the concrete fd value of an argument.
long
FdOf(const Arg& arg, const std::vector<long>& results)
{
  if (arg.kind == Arg::Kind::kResourceRef) {
    if (arg.ref_call >= 0 &&
        static_cast<size_t>(arg.ref_call) < results.size() &&
        results[static_cast<size_t>(arg.ref_call)] >= 0) {
      return results[static_cast<size_t>(arg.ref_call)];
    }
    return 999999;  // A never-valid descriptor.
  }
  return static_cast<long>(arg.scalar);
}

uint64_t
ScalarOf(const Call& call, size_t index)
{
  if (index >= call.args.size()) return 0;
  return call.args[index].scalar;
}

}  // namespace

Executor::Executor(vkernel::Kernel* kernel, const SpecLibrary* lib)
    : kernel_(kernel), lib_(lib) {}

long
Executor::Dispatch(const syzlang::SyscallDef& def, const Call& call,
                   std::vector<long>& results, ExecContext& ctx)
{
  const std::string& name = def.name;
  auto fd0 = [&]() {
    return call.args.empty() ? -1 : FdOf(call.args[0], results);
  };
  auto buffer_at = [&](size_t index) -> Buffer* {
    if (index >= call.args.size()) return nullptr;
    // The executor owns the temporary buffer for the call duration.
    return nullptr;
  };
  (void)buffer_at;

  if (name == "openat" || name == "open") {
    size_t path_idx = name == "openat" ? 1 : 0;
    if (path_idx >= call.args.size()) return -vkernel::kEINVAL;
    uint64_t flags = ScalarOf(call, path_idx + 1);
    return kernel_->Openat(PathFrom(call.args[path_idx]), flags, ctx);
  }
  if (name == "close") return kernel_->Close(fd0(), ctx);
  if (name == "dup") return kernel_->Dup(fd0(), ctx);
  if (name == "ioctl") {
    uint64_t cmd = ScalarOf(call, 1);
    if (call.args.size() > 2 && call.args[2].kind == Arg::Kind::kBuffer) {
      Buffer buf;
      buf.bytes = call.args[2].bytes;
      return kernel_->Ioctl(fd0(), cmd, &buf, ctx);
    }
    return kernel_->Ioctl(fd0(), cmd, nullptr, ctx);
  }
  if (name == "read") {
    Buffer out;
    if (call.args.size() > 1) out.bytes.resize(call.args[1].bytes.size());
    return kernel_->Read(fd0(), &out, ctx);
  }
  if (name == "write") {
    Buffer in;
    if (call.args.size() > 1) in.bytes = call.args[1].bytes;
    return kernel_->Write(fd0(), in, ctx);
  }
  if (name == "poll") return kernel_->Poll(fd0(), ctx);
  if (name == "mmap") return kernel_->Mmap(fd0(), ScalarOf(call, 1), ctx);
  if (name == "socket") {
    return kernel_->Socket(ScalarOf(call, 0), ScalarOf(call, 1),
                           ScalarOf(call, 2), ctx);
  }
  if (name == "setsockopt" || name == "getsockopt") {
    uint64_t level = ScalarOf(call, 1);
    uint64_t optname = ScalarOf(call, 2);
    Buffer val;
    if (call.args.size() > 3 && call.args[3].kind == Arg::Kind::kBuffer) {
      val.bytes = call.args[3].bytes;
    }
    if (name == "setsockopt") {
      return kernel_->SetSockOpt(fd0(), level, optname, val, ctx);
    }
    return kernel_->GetSockOpt(fd0(), level, optname, &val, ctx);
  }
  if (name == "bind" || name == "connect") {
    Buffer addr;
    if (call.args.size() > 1 && call.args[1].kind == Arg::Kind::kBuffer) {
      addr.bytes = call.args[1].bytes;
    }
    return name == "bind" ? kernel_->Bind(fd0(), addr, ctx)
                          : kernel_->Connect(fd0(), addr, ctx);
  }
  if (name == "sendto") {
    Buffer data;
    Buffer addr;
    if (call.args.size() > 1 && call.args[1].kind == Arg::Kind::kBuffer) {
      data.bytes = call.args[1].bytes;
    }
    if (call.args.size() > 4 && call.args[4].kind == Arg::Kind::kBuffer) {
      addr.bytes = call.args[4].bytes;
    }
    return kernel_->SendTo(fd0(), data, addr, ctx);
  }
  if (name == "recvfrom" || name == "recvmsg") {
    Buffer data;
    return kernel_->RecvFrom(fd0(), &data, ctx);
  }
  if (name == "sendmsg") {
    Buffer data;
    Buffer addr;
    return kernel_->SendTo(fd0(), data, addr, ctx);
  }
  if (name == "listen") return kernel_->Listen(fd0(), ctx);
  if (name == "accept") return kernel_->Accept(fd0(), ctx);
  return -vkernel::kENOSYS;
}

ExecResult
Executor::Run(const Prog& prog, vkernel::Coverage* total)
{
  ExecResult result;
  vkernel::Coverage local;
  ExecContext ctx(&local);
  kernel_->BeginProgram();

  std::vector<long> results(prog.calls.size(), -1);
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    const Call& call = prog.calls[i];
    if (call.syscall_index >= lib_->syscalls().size()) continue;
    const syzlang::SyscallDef& def = lib_->syscalls()[call.syscall_index];
    long rc = Dispatch(def, call, results, ctx);
    results[i] = rc;
    ++result.calls_executed;
    if (ctx.crashed()) break;
  }
  kernel_->EndProgram(ctx);  // Close-time (release) bugs fire here.

  result.crashed = ctx.crashed();
  result.crash_title = ctx.crash_title();
  result.new_blocks = total ? total->Merge(local) : 0;
  return result;
}

}  // namespace kernelgpt::fuzzer
