/// \file
/// A resolved collection of specification files — the fuzzer's view of
/// "enabled syscalls". Merges one or more SpecFiles, indexes declarations
/// by name, resolves constants, and computes packed layouts of spec
/// structs for argument construction.

#ifndef KERNELGPT_FUZZER_SPEC_LIBRARY_H_
#define KERNELGPT_FUZZER_SPEC_LIBRARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "syzlang/ast.h"
#include "syzlang/const_table.h"

namespace kernelgpt::fuzzer {

/// Executor operation a syscall's base name resolves to. Resolution
/// happens once in SpecLibrary::Finalize(); the executor's hot path
/// dispatches with a switch on this opcode instead of re-comparing the
/// name string on every call.
enum class SyscallOp : uint8_t {
  kUnknown = 0,
  kOpen,
  kOpenat,
  kClose,
  kDup,
  kIoctl,
  kRead,
  kWrite,
  kPoll,
  kMmap,
  kSocket,
  kSetSockOpt,
  kGetSockOpt,
  kBind,
  kConnect,
  kSendTo,
  kSendMsg,
  kRecvFrom,
  kListen,
  kAccept,
};

/// Maps a base syscall name to its opcode (kUnknown when unhandled).
SyscallOp ResolveSyscallOp(const std::string& name);

/// Immutable after Finalize(); cheap to query during fuzzing.
class SpecLibrary {
 public:
  SpecLibrary() = default;

  /// Adds every declaration of `spec` (declarations with duplicate names
  /// are kept once, first writer wins).
  void Add(const syzlang::SpecFile& spec);

  /// Supplies the constant table (from syz-extract / the corpus index).
  void SetConsts(syzlang::ConstTable consts) { consts_ = std::move(consts); }

  /// Builds the producer index; call once after all Add()s.
  void Finalize();

  const std::vector<syzlang::SyscallDef>& syscalls() const {
    return syscalls_;
  }

  /// Opcode of syscall `index`, resolved by Finalize(). kUnknown for an
  /// out-of-range index or before Finalize().
  SyscallOp OpcodeOf(size_t index) const {
    return index < opcodes_.size() ? opcodes_[index] : SyscallOp::kUnknown;
  }
  const syzlang::StructDef* FindStruct(const std::string& name) const;
  const syzlang::FlagsDef* FindFlags(const std::string& name) const;
  bool HasResource(const std::string& name) const;

  /// Numeric value of a constant name or literal (0 when unresolved).
  uint64_t ResolveConst(const std::string& name) const;

  /// Indices of syscalls whose return value produces `resource`.
  const std::vector<size_t>& ProducersOf(const std::string& resource) const;

  /// Producers of `resource` that do not themselves consume it (e.g.
  /// socket/openat rather than accept). Falls back to ProducersOf() when
  /// every producer is self-consuming. Precomputed by Finalize() so the
  /// generator does not rescan producer parameter lists per call.
  const std::vector<size_t>& SafeProducersOf(const std::string& resource) const;

  /// Packed byte size of a type as the generator lays it out. Flexible
  /// arrays count as zero (sized at generation time).
  size_t TypeSize(const syzlang::Type& type) const;

  /// Packed byte size of a struct/union definition.
  size_t StructSize(const syzlang::StructDef& def) const;

  /// Number of type cache slots Finalize() assigned (every Type owned by
  /// this library gets a dense `cache_slot` id; see Type::cache_slot).
  size_t TypeSlotCount() const { return type_slot_count_; }

  /// (len_param, target_param) pairs of syscall `index` — which params
  /// are len[...]/bytesize[...] of which sibling. Precomputed by
  /// Finalize() so per-call len linking does no string comparisons.
  const std::vector<std::pair<int, int>>& LenLinksOf(size_t index) const;

 private:
  std::vector<syzlang::SyscallDef> syscalls_;
  std::vector<SyscallOp> opcodes_;
  std::vector<std::vector<std::pair<int, int>>> len_links_;
  std::vector<std::pair<int, int>> no_len_links_;
  size_t type_slot_count_ = 0;
  std::unordered_map<std::string, std::vector<size_t>> safe_producers_;
  std::unordered_map<std::string, syzlang::StructDef> structs_;
  std::unordered_map<std::string, syzlang::FlagsDef> flags_;
  std::unordered_map<std::string, syzlang::ResourceDef> resources_;
  std::unordered_map<std::string, std::vector<size_t>> producers_;
  std::vector<size_t> no_producers_;
  std::unordered_map<std::string, bool> seen_calls_;
  syzlang::ConstTable consts_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_SPEC_LIBRARY_H_
