/// \file
/// A resolved collection of specification files — the fuzzer's view of
/// "enabled syscalls". Merges one or more SpecFiles, indexes declarations
/// by name, resolves constants, and computes packed layouts of spec
/// structs for argument construction.

#ifndef KERNELGPT_FUZZER_SPEC_LIBRARY_H_
#define KERNELGPT_FUZZER_SPEC_LIBRARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "syzlang/ast.h"
#include "syzlang/const_table.h"

namespace kernelgpt::fuzzer {

/// Immutable after Finalize(); cheap to query during fuzzing.
class SpecLibrary {
 public:
  SpecLibrary() = default;

  /// Adds every declaration of `spec` (declarations with duplicate names
  /// are kept once, first writer wins).
  void Add(const syzlang::SpecFile& spec);

  /// Supplies the constant table (from syz-extract / the corpus index).
  void SetConsts(syzlang::ConstTable consts) { consts_ = std::move(consts); }

  /// Builds the producer index; call once after all Add()s.
  void Finalize();

  const std::vector<syzlang::SyscallDef>& syscalls() const {
    return syscalls_;
  }
  const syzlang::StructDef* FindStruct(const std::string& name) const;
  const syzlang::FlagsDef* FindFlags(const std::string& name) const;
  bool HasResource(const std::string& name) const;

  /// Numeric value of a constant name or literal (0 when unresolved).
  uint64_t ResolveConst(const std::string& name) const;

  /// Indices of syscalls whose return value produces `resource`.
  const std::vector<size_t>& ProducersOf(const std::string& resource) const;

  /// Packed byte size of a type as the generator lays it out. Flexible
  /// arrays count as zero (sized at generation time).
  size_t TypeSize(const syzlang::Type& type) const;

  /// Packed byte size of a struct/union definition.
  size_t StructSize(const syzlang::StructDef& def) const;

 private:
  std::vector<syzlang::SyscallDef> syscalls_;
  std::unordered_map<std::string, syzlang::StructDef> structs_;
  std::unordered_map<std::string, syzlang::FlagsDef> flags_;
  std::unordered_map<std::string, syzlang::ResourceDef> resources_;
  std::unordered_map<std::string, std::vector<size_t>> producers_;
  std::vector<size_t> no_producers_;
  std::unordered_map<std::string, bool> seen_calls_;
  syzlang::ConstTable consts_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_SPEC_LIBRARY_H_
