/// \file
/// Durable session state — versioned textual serialization of everything a
/// long-running campaign-of-campaigns service must carry across process
/// runs: distilled Prog corpora, minimized crash reproducers, cumulative
/// coverage, crash tallies, and per-round trend records. The format is
/// line-oriented and deterministic (maps serialize in key order, floats as
/// hexfloat), so serialize -> parse -> serialize is a byte-for-byte
/// fixpoint and snapshot files diff cleanly under version control.
///
/// Programs are rendered call-by-call against their suite's SpecLibrary:
/// each call is stored under its syzlang full name (the same rendering the
/// syzlang printer uses for declarations) and re-resolved by name on load,
/// so a snapshot survives syscall reordering between builds as long as the
/// suite still defines every referenced call. A per-suite fingerprint —
/// a stable hash over the printer's rendering of every syscall declaration
/// — rejects resuming against a suite whose specs drifted.
///
/// Every parse path reports malformed input as a util::Status (never a
/// crash or abort): snapshots are user-supplied files.

#ifndef KERNELGPT_FUZZER_SNAPSHOT_H_
#define KERNELGPT_FUZZER_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fuzzer/orchestrator.h"
#include "fuzzer/prog.h"
#include "util/status.h"

namespace kernelgpt::fuzzer {

/// Bump when the textual grammar changes incompatibly. Parsers reject any
/// other version with a Status error naming both versions.
inline constexpr int kSnapshotVersion = 1;

/// One round's trend record — the durable round-over-round report a
/// session emits. Everything except `epochs` round-trips through
/// snapshots (the sync schedule is observability detail, kept in-memory
/// only).
struct RoundReport {
  int round = 0;       ///< Absolute round index within the session.
  uint64_t seed = 0;   ///< The round's campaign master seed.
  size_t programs_executed = 0;
  size_t round_coverage = 0;        ///< This round's own union coverage.
  size_t round_unique_crashes = 0;  ///< This round's own unique titles.
  size_t coverage_delta = 0;  ///< New blocks added to the cumulative union.
  size_t cumulative_coverage = 0;
  size_t cumulative_unique_crashes = 0;
  size_t merged_corpus = 0;     ///< Merged corpus size after the round.
  size_t distilled_corpus = 0;  ///< After distillation (== merged when off).
  double wall_seconds = 0;
  std::vector<EpochStats> epochs;  ///< Sync schedule; not persisted.
};

/// One suite's durable state — what Session::Save writes per suite.
struct SuiteSnapshot {
  std::string name;
  uint64_t fingerprint = 0;  ///< SuiteFingerprint() of the suite's library.
  size_t programs_executed = 0;
  double wall_seconds = 0;
  std::vector<uint64_t> coverage;  ///< Covered block ids, sorted ascending.
  std::map<std::string, int> crashes;  ///< Title -> occurrence count.
  std::vector<Prog> corpus;            ///< Current (distilled) seed corpus.
  std::map<std::string, Prog> crash_reproducers;
  std::vector<RoundReport> rounds;  ///< Trend records, oldest first.
};

/// The session-level half of a snapshot: the scheduling state a resumed
/// session needs to continue the exact RNG-deterministic round schedule,
/// plus the suite roster it must be re-registered with.
struct SessionManifest {
  uint64_t seed = 0;
  std::string schedule;  ///< "hash-chain" or "arithmetic".
  uint64_t seed_stride = 0;
  bool carry_corpus = true;
  bool distill = true;
  int rounds_completed = 0;
  int stale_rounds = 0;  ///< Plateau-rule state (consecutive stale rounds).
  /// (fingerprint, name) per suite, in registration order.
  std::vector<std::pair<uint64_t, std::string>> suites;
};

/// Stable hash over the syzlang printer's rendering of every syscall
/// declaration of `lib`, in library order. Two libraries fingerprint
/// equal iff they expose the same syscall surface in the same order —
/// the precondition for a snapshot's programs to replay identically.
uint64_t SuiteFingerprint(const SpecLibrary& lib);

/// Renders a program list ("progs <n>" header, then one block per
/// program). Calls are stored by syzlang full name.
std::string SerializeProgs(const std::vector<Prog>& progs,
                           const SpecLibrary& lib);

/// Parses a SerializeProgs rendering. Call names are re-resolved against
/// `lib`; unknown names, malformed lines, and truncation yield an error
/// Status and leave `*out` unspecified.
util::Status ParseProgs(std::string_view text, const SpecLibrary& lib,
                        std::vector<Prog>* out);

/// Renders one suite's durable state ("kernelgpt-suite v1" header).
std::string SerializeSuite(const SuiteSnapshot& suite, const SpecLibrary& lib);

/// Parses a SerializeSuite rendering. Rejects version mismatches and any
/// malformed content with an error Status.
util::Status ParseSuite(std::string_view text, const SpecLibrary& lib,
                        SuiteSnapshot* out);

/// Renders the session manifest ("kernelgpt-session v1" header).
std::string SerializeManifest(const SessionManifest& manifest);

/// Parses a SerializeManifest rendering; same error contract as
/// ParseSuite.
util::Status ParseManifest(std::string_view text, SessionManifest* out);

/// Reads a whole file; missing or unreadable files become an error Status.
util::Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `content`, replacing any existing file.
util::Status WriteStringToFile(const std::string& path,
                               const std::string& content);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_SNAPSHOT_H_
