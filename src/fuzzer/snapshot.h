/// \file
/// Durable session state — versioned textual serialization of everything a
/// long-running campaign-of-campaigns service must carry across process
/// runs: distilled Prog corpora, minimized crash reproducers, cumulative
/// coverage, crash tallies, and per-round trend records. The format is
/// line-oriented and deterministic (maps serialize in key order, floats as
/// hexfloat), so serialize -> parse -> serialize is a byte-for-byte
/// fixpoint and snapshot files diff cleanly under version control.
///
/// Programs are rendered call-by-call against their suite's SpecLibrary:
/// each call is stored under its syzlang full name (the same rendering the
/// syzlang printer uses for declarations) and re-resolved by name on load,
/// so a snapshot survives syscall reordering between builds as long as the
/// suite still defines every referenced call. A per-suite fingerprint —
/// a stable hash over the printer's rendering of every syscall declaration
/// — rejects resuming against a suite whose specs drifted.
///
/// Every parse path reports malformed input as a util::Status (never a
/// crash or abort): snapshots are user-supplied files.
///
/// Crash safety (PR 6): full-file snapshot writes go through
/// util::AtomicWriteFile (write-tmp, fsync, rename), so a crash at any
/// instant leaves either the old or the new file, never a torn one. On
/// top of the base snapshot sits a per-suite append-only journal
/// (`suite_<i>.journal`): each round's *delta* (new coverage blocks,
/// crash-count increments, new reproducers, the corpus diff, the trend
/// record) is framed as a length-prefixed CRC32-checksummed record and
/// appended with fsync, so saving round k costs O(round-k delta) instead
/// of O(whole corpus). The session manifest is the commit point: records
/// are durable before the manifest names their round, so a torn or
/// uncommitted journal tail is recovered by truncating back to the last
/// record the manifest committed.

#ifndef KERNELGPT_FUZZER_SNAPSHOT_H_
#define KERNELGPT_FUZZER_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fuzzer/orchestrator.h"
#include "fuzzer/prog.h"
#include "util/status.h"

namespace kernelgpt::fuzzer {

/// Bump when the textual grammar changes incompatibly. Parsers reject any
/// other version with a Status error naming both versions. v2 added the
/// round record's differential-divergence counter.
inline constexpr int kSnapshotVersion = 2;

/// One round's trend record — the durable round-over-round report a
/// session emits. Everything except `epochs` round-trips through
/// snapshots (the sync schedule is observability detail, kept in-memory
/// only).
struct RoundReport {
  int round = 0;       ///< Absolute round index within the session.
  uint64_t seed = 0;   ///< The round's campaign master seed.
  size_t programs_executed = 0;
  size_t round_coverage = 0;        ///< This round's own union coverage.
  size_t round_unique_crashes = 0;  ///< This round's own unique titles.
  size_t coverage_delta = 0;  ///< New blocks added to the cumulative union.
  size_t cumulative_coverage = 0;
  size_t cumulative_unique_crashes = 0;
  size_t merged_corpus = 0;     ///< Merged corpus size after the round.
  size_t distilled_corpus = 0;  ///< After distillation (== merged when off).
  /// Unique divergence signatures this round's differential pass found
  /// (0 with the diff oracle off). Round-scoped, not cumulative: a
  /// resumed session carries no cross-round divergence state, so a
  /// running total would break resume bit-identity.
  size_t divergences = 0;
  double wall_seconds = 0;
  std::vector<EpochStats> epochs;  ///< Sync schedule; not persisted.
};

/// One suite's durable state — what Session::Save writes per suite.
struct SuiteSnapshot {
  std::string name;
  uint64_t fingerprint = 0;  ///< SuiteFingerprint() of the suite's library.
  size_t programs_executed = 0;
  double wall_seconds = 0;
  std::vector<uint64_t> coverage;  ///< Covered block ids, sorted ascending.
  std::map<std::string, int> crashes;  ///< Title -> occurrence count.
  std::vector<Prog> corpus;            ///< Current (distilled) seed corpus.
  std::map<std::string, Prog> crash_reproducers;
  std::vector<RoundReport> rounds;  ///< Trend records, oldest first.
};

/// The session-level half of a snapshot: the scheduling state a resumed
/// session needs to continue the exact RNG-deterministic round schedule,
/// plus the suite roster it must be re-registered with.
struct SessionManifest {
  uint64_t seed = 0;
  std::string schedule;  ///< "hash-chain" or "arithmetic".
  uint64_t seed_stride = 0;
  bool carry_corpus = true;
  bool distill = true;
  int rounds_completed = 0;
  int stale_rounds = 0;  ///< Plateau-rule state (consecutive stale rounds).
  /// (fingerprint, name) per suite, in registration order.
  std::vector<std::pair<uint64_t, std::string>> suites;
};

/// Stable hash over the syzlang printer's rendering of every syscall
/// declaration of `lib`, in library order. Two libraries fingerprint
/// equal iff they expose the same syscall surface in the same order —
/// the precondition for a snapshot's programs to replay identically.
uint64_t SuiteFingerprint(const SpecLibrary& lib);

/// Renders a program list ("progs <n>" header, then one block per
/// program). Calls are stored by syzlang full name.
std::string SerializeProgs(const std::vector<Prog>& progs,
                           const SpecLibrary& lib);

/// Parses a SerializeProgs rendering. Call names are re-resolved against
/// `lib`; unknown names, malformed lines, and truncation yield an error
/// Status and leave `*out` unspecified.
util::Status ParseProgs(std::string_view text, const SpecLibrary& lib,
                        std::vector<Prog>* out);

/// Renders one suite's durable state ("kernelgpt-suite v2" header).
std::string SerializeSuite(const SuiteSnapshot& suite, const SpecLibrary& lib);

/// Parses a SerializeSuite rendering. Rejects version mismatches and any
/// malformed content with an error Status.
util::Status ParseSuite(std::string_view text, const SpecLibrary& lib,
                        SuiteSnapshot* out);

// -- Binary suite codec (PR 9) -----------------------------------------------
// A compact binary rendering of the same SuiteSnapshot, for hot save/load
// paths; the textual format stays the default debug format. Layout:
//
//   magic "KGPB"            4 bytes
//   version                 varint (kSnapshotVersion)
//   sections                in fixed order: meta (name, fingerprint,
//                           counters, interned call-name table), coverage
//                           (delta-encoded sorted ids), crashes, corpus,
//                           repros, rounds
//
// Every section is framed `varint payload_len | payload | u32le CRC32`,
// reusing util::Crc32 — truncation at any byte and bit corruption both
// surface as a Status, never a crash. All integers are LEB128 varints
// (zigzag for signed fields), doubles are raw little-endian bit patterns
// (bit-exact, so serialize -> parse -> serialize is a byte fixpoint), and
// program calls reference the meta section's string table by index while
// still resolving BY NAME against the suite library on load — the same
// reorder-robustness contract as the textual format.

/// Which on-disk rendering Session::Save uses for suite snapshots.
/// Resume auto-detects per file, so directories written under either
/// codec (or a mix) always load.
enum class SnapshotCodec {
  kText,    ///< Line-oriented, diffable; the default debug format.
  kBinary,  ///< KGPB varint sections; the fast format.
};

/// True when `data` starts with the binary suite magic.
bool IsBinarySuiteSnapshot(std::string_view data);

/// Renders one suite's durable state in the KGPB binary format.
std::string SerializeSuiteBinary(const SuiteSnapshot& suite,
                                 const SpecLibrary& lib);

/// Parses a SerializeSuiteBinary rendering. Truncation, checksum damage,
/// version mismatches, and unknown syscall names all yield an error
/// Status — snapshots are user-supplied files.
util::Status ParseSuiteBinary(std::string_view data, const SpecLibrary& lib,
                              SuiteSnapshot* out);

/// Parses either suite rendering, sniffing the codec from the magic.
util::Status ParseSuiteAuto(std::string_view data, const SpecLibrary& lib,
                            SuiteSnapshot* out);

/// Re-encodes a serialized suite (either codec) into `codec` — the
/// text ⇄ binary conversion path for migrating snapshot directories.
util::Status ConvertSuite(std::string_view data, SnapshotCodec codec,
                          const SpecLibrary& lib, std::string* out);

/// Renders the session manifest ("kernelgpt-session v2" header).
std::string SerializeManifest(const SessionManifest& manifest);

/// Parses a SerializeManifest rendering; same error contract as
/// ParseSuite.
util::Status ParseManifest(std::string_view text, SessionManifest* out);

// -- Incremental journal -----------------------------------------------------

/// One round's durable delta for one suite — what Session::Save appends
/// to the suite's journal instead of re-serializing the whole suite.
struct SuiteDelta {
  /// The round's trend record; `report.round` doubles as the record's
  /// position in the schedule (replay applies records in round order).
  RoundReport report;
  /// Blocks first covered this round, ascending — disjoint across
  /// rounds, so the sum over all deltas is the cumulative coverage.
  std::vector<uint64_t> new_coverage;
  /// Per-title occurrence increments contributed by this round.
  std::map<std::string, int> crash_increments;
  /// Reproducers whose title is new or whose program changed this round.
  std::map<std::string, Prog> new_reproducers;

  /// True when this round's corpus is sequence-identical to the previous
  /// round's — the steady state once distillation converges; the record
  /// then carries no corpus payload at all.
  bool corpus_unchanged = false;
  /// When the corpus did change: the new corpus in order, each entry
  /// either a reference into the previous round's corpus (kept_index >=
  /// 0) or an inline program (kept_index < 0).
  struct CorpusEntry {
    int kept_index = -1;
    Prog prog;
  };
  std::vector<CorpusEntry> corpus;
};

/// Renders one delta ("delta <round>" header through "end"). Inline
/// programs use the same call-by-name blocks as SerializeProgs.
std::string SerializeDelta(const SuiteDelta& delta, const SpecLibrary& lib);

/// Parses a SerializeDelta rendering; same error contract as ParseSuite.
util::Status ParseDelta(std::string_view text, const SpecLibrary& lib,
                        SuiteDelta* out);

/// The journal file's header: which suite state it extends and how many
/// rounds the base snapshot already folds in (records for earlier rounds
/// are skipped on replay — they survive a crash mid-compaction).
struct JournalHeader {
  uint64_t fingerprint = 0;
  std::string suite_name;
  int base_rounds = 0;
};

/// Renders the journal header ("kernelgpt-journal v2" + suite binding).
std::string SerializeJournalHeader(const JournalHeader& header);

/// Frames one record for appending: "rec <payload bytes> <crc32>\n"
/// followed by the payload verbatim. The CRC is over the payload only.
std::string FrameJournalRecord(std::string_view payload);

/// Result of scanning a journal file: the header, every complete
/// checksum-valid record in order (with the byte offset just past it),
/// and — when scanning stopped before EOF — why. A torn or corrupt tail
/// is NOT a Status error: callers decide whether the lost records were
/// committed (error) or not (recover by truncating to `records.back()`).
struct JournalScan {
  JournalHeader header;
  size_t header_end = 0;  ///< Offset just past the header lines.
  /// (payload, end offset) per valid record, in file order.
  std::vector<std::pair<std::string, size_t>> records;
  std::string tail_error;  ///< Empty on a clean EOF.
};

/// Parses a journal file. Only header problems (not a journal, version
/// mismatch) are Status errors; record-level damage ends the scan and is
/// reported via `out->tail_error`.
util::Status ScanJournal(std::string_view text, JournalScan* out);

// -- File helpers ------------------------------------------------------------

/// Reads a whole file; missing or unreadable files become an error Status.
util::Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically replaces `path` with `content` (write `<path>.tmp`, fsync,
/// rename — a crash leaves either the old or the new file, never a torn
/// one). Thin wrapper over util::AtomicWriteFile.
util::Status WriteStringToFile(const std::string& path,
                               const std::string& content);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_SNAPSHOT_H_
