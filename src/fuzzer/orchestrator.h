/// \file
/// Parallel sharded campaign orchestration — the syzkaller-manager analog
/// for the virtual kernel. A program budget is sharded across N worker
/// threads; each worker owns a private vkernel instance, RNG stream, and
/// seed corpus, and periodically broadcasts its interesting seeds to the
/// other shards at deterministic epoch boundaries. A final merge step
/// unions the per-shard coverage bitmaps and deduplicates crashes
/// globally by title.
///
/// Threading model:
///  - `SpecLibrary` is shared read-only (immutable after Finalize()).
///  - Every mutable object (Kernel, Rng, Generator, Mutator, Executor,
///    Coverage, corpus) is worker-private.
///  - Cross-shard seed exchange happens only at epoch barriers, in shard
///    id order, so results are deterministic for a fixed (seed, workers,
///    sync_interval) triple regardless of thread scheduling.
///  - With one worker the orchestrator consumes the exact RNG stream of
///    the serial `RunCampaign` loop and produces bit-identical results.

#ifndef KERNELGPT_FUZZER_ORCHESTRATOR_H_
#define KERNELGPT_FUZZER_ORCHESTRATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fuzzer/campaign.h"

namespace kernelgpt::fuzzer {

/// Orchestration parameters on top of the per-shard campaign options.
struct OrchestratorOptions {
  /// Base campaign parameters. `campaign.seed` is the master seed;
  /// shard 0 uses it unchanged (serial equivalence) and shard k > 0
  /// seeds from util::HashCombine(seed, k). `campaign.program_budget`
  /// is the GLOBAL budget, sharded across workers.
  CampaignOptions campaign;

  /// Worker-thread count; 1 reproduces the serial campaign exactly.
  int num_workers = 1;

  /// Programs each shard executes between cross-shard corpus syncs.
  /// With adaptive sync on, this is the STARTING interval.
  int sync_interval = 512;

  /// Max seeds one shard broadcasts per sync (most recent kept). With
  /// adaptive sync on, this is the STARTING cap.
  size_t max_broadcast_per_sync = 8;

  /// Adaptive sync (off by default — defaults preserve the fixed-interval
  /// behavior bit-for-bit). When on, every epoch's global coverage growth
  /// retunes the next epoch: growth halves the interval and doubles the
  /// broadcast cap (propagate interesting seeds fast while the frontier
  /// moves); a plateau doubles the interval and halves the cap (cut sync
  /// overhead once shards stop finding anything). The controller is a
  /// pure function of deterministically merged per-epoch stats, so every
  /// worker computes the identical schedule and results stay independent
  /// of thread scheduling.
  bool adaptive_sync = false;

  /// Bounds for the adaptive controller (ignored when adaptive_sync is
  /// off). The interval stays in [min_sync_interval, max_sync_interval]
  /// and the broadcast cap in [min_broadcast_per_sync, max_broadcast_cap].
  int min_sync_interval = 64;
  int max_sync_interval = 4096;
  size_t min_broadcast_per_sync = 2;
  size_t max_broadcast_cap = 64;

  /// Builds each worker's private kernel model (null: the reference
  /// StrictModel). Worker results depend only on the model's semantics,
  /// so any deterministic personality keeps the determinism guarantees.
  vkernel::ModelFactory model_factory;
};

/// Per-shard outcome, reported for observability and tests.
struct ShardStats {
  int shard_id = 0;
  uint64_t shard_seed = 0;
  size_t programs_executed = 0;
  size_t corpus_size = 0;
  size_t coverage_blocks = 0;
  size_t crash_occurrences = 0;
  size_t seeds_broadcast = 0;
  size_t seeds_ingested = 0;
  /// Seed-corpus programs replayed before the epoch loop (see
  /// CampaignOptions::seed_corpus).
  size_t seeds_preloaded = 0;
};

/// One sync epoch as the (possibly adaptive) controller scheduled it.
struct EpochStats {
  int sync_interval = 0;        ///< Programs per shard this epoch.
  size_t broadcast_cap = 0;     ///< Max seeds per shard broadcast.
  /// Sum of per-shard coverage growth this epoch (a block several shards
  /// found counts once per shard — the controller's plateau signal, not
  /// the merged-union delta).
  size_t new_blocks = 0;
};

/// Globally merged outcome of a sharded campaign.
struct OrchestratorResult {
  /// Union of all shard coverage bitmaps.
  vkernel::Coverage coverage;
  /// Crash title -> total occurrence count across shards (titles
  /// deduplicate crashes, exactly like the serial campaign).
  std::map<std::string, int> crashes;
  size_t programs_executed = 0;
  /// Sum of final shard corpus sizes.
  size_t corpus_size = 0;
  double wall_seconds = 0;
  std::vector<ShardStats> shards;
  /// Final shard corpora concatenated in shard-id order (deterministic) —
  /// the distiller's input for the between-campaign distillation pass.
  std::vector<Prog> corpus;
  /// Per-epoch schedule trace: a constant interval/cap with adaptive sync
  /// off, the controller's actual decisions with it on.
  std::vector<EpochStats> epochs;

  size_t UniqueCrashCount() const { return crashes.size(); }

  /// View as the serial result type (drop-in for existing reporting).
  CampaignResult ToCampaignResult() const;
};

/// Runs sharded campaigns over one spec library.
class Orchestrator {
 public:
  /// Boots one worker-private kernel model (register drivers/socket
  /// families). Called once per worker, possibly concurrently; must only
  /// read shared state.
  using BootFn = std::function<void(vkernel::KernelModel*)>;

  Orchestrator(const SpecLibrary* lib, BootFn boot,
               OrchestratorOptions options);

  /// Runs one sharded campaign to completion (blocks until all workers
  /// join and the merge step finishes).
  OrchestratorResult Run();

  const OrchestratorOptions& options() const { return options_; }

 private:
  const SpecLibrary* lib_;
  BootFn boot_;
  OrchestratorOptions options_;
};

/// Convenience wrapper: boot + run in one call.
OrchestratorResult RunShardedCampaign(const SpecLibrary& lib,
                                      Orchestrator::BootFn boot,
                                      const OrchestratorOptions& options);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_ORCHESTRATOR_H_
