/// \file
/// fuzzer::Fleet — a supervisor that keeps N named Sessions alive at
/// once and drives each toward a target round count under a shared
/// util::RetryPolicy. The failure model mirrors what a real fuzzing
/// daemon faces:
///
///  - A failed round (worker exception, injected fault) is retried in
///    place with bounded deterministic backoff; Session::RunRound is
///    failure-atomic, so a retry re-runs the identical round.
///  - util::InjectedCrash — simulated process death — is never retried
///    in place: the tenant's Session object is torn down, rebuilt from
///    its factory, and resumed from its autosave snapshot directory,
///    exactly as a restarted daemon would. Progress past the last
///    durable save is re-earned deterministically, so a crashed-and-
///    recovered fleet converges bit-identically to a fault-free run
///    (fleet_test pins this).
///  - K consecutive failed incidents quarantine the tenant; its
///    siblings keep running to completion. Nothing a tenant does can
///    abort the fleet.
///  - Degraded-but-alive conditions (a session accumulating a pending-
///    save backlog because its disk is failing) are surfaced in the
///    report, never silently swallowed.
///
/// Determinism: tenants never share mutable state, every tenant runs
/// entirely on one supervisor thread, and the report is keyed by
/// registration order — so FleetReport::Render() is byte-identical
/// whether the fleet runs on 1 supervisor thread or N (fleet_test
/// pins this too). Wall-clock never appears in Render(); backoff is
/// the policy's simulated accounting.
///
/// On Run() the fleet arms a fault plan from $KERNELGPT_FAULT_PLAN if
/// one is present (and nothing is armed yet), so soak jobs can inject
/// faults into an unmodified binary.

#ifndef KERNELGPT_FUZZER_FLEET_H_
#define KERNELGPT_FUZZER_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fuzzer/session.h"
#include "util/retry.h"

namespace kernelgpt::fuzzer {

/// Fleet parameters, builder-style like SessionOptions.
struct FleetOptions {
  /// Absolute round target per session: the fleet drives every tenant
  /// until Session::rounds_completed() reaches this (a tenant resumed
  /// from a snapshot only re-earns what the crash lost).
  int target_rounds = 2;

  /// Supervisor threads. Tenants are whole-unit work items (one tenant
  /// never spans threads), so any value produces identical reports.
  int supervisor_threads = 1;

  /// Quarantine after this many CONSECUTIVE failed incidents (a round
  /// that exhausted its retries, or a crash) with no successful round
  /// in between. Clamped to >= 1.
  int quarantine_after = 3;

  /// Round-retry policy shared by every tenant (backoff is keyed by
  /// tenant name + round, so streams stay decorrelated).
  util::RetryPolicy retry;

  /// Arm $KERNELGPT_FAULT_PLAN at the start of Run() (idempotent).
  bool arm_env_plan = true;

  FleetOptions& WithTargetRounds(int v) { target_rounds = v; return *this; }
  FleetOptions& WithSupervisorThreads(int v) {
    supervisor_threads = v;
    return *this;
  }
  FleetOptions& WithQuarantineAfter(int v) { quarantine_after = v; return *this; }
  FleetOptions& WithRetryPolicy(util::RetryPolicy v) {
    retry = v;
    return *this;
  }
  FleetOptions& WithEnvPlan(bool v) { arm_env_plan = v; return *this; }
};

/// One tenant's ledger: everything the supervisor observed about it.
struct TenantReport {
  std::string name;
  int rounds_completed = 0;  ///< Final Session::rounds_completed().
  int retries = 0;           ///< In-place round retries (policy attempts).
  int recoveries = 0;        ///< Crash -> rebuild -> resume cycles.
  int failures = 0;          ///< Failed incidents (retry-exhausted rounds + crashes).
  double backoff_ms = 0;     ///< Simulated backoff charged to this tenant.
  bool quarantined = false;
  bool complete = false;     ///< Reached target_rounds.
  std::string last_error;    ///< Last failure/crash message ("" if none).
  /// Degraded-but-alive conditions, first occurrence each, in the order
  /// they were observed (e.g. "snapshot: cannot append ...: ENOSPC ...").
  std::vector<std::string> degraded;
};

/// The whole fleet's outcome. `status` reports fleet-level problems
/// (no tenants, malformed env fault plan); per-tenant trouble lives in
/// the tenant reports and never fails the fleet as a whole.
struct FleetReport {
  util::Status status = util::Status::Ok();
  std::vector<TenantReport> tenants;  ///< Registration order.

  bool AllComplete() const;
  /// Deterministic multi-line rendering — the byte-comparison surface
  /// the determinism tests diff across thread counts and fault plans.
  std::string Render() const;
};

class Fleet {
 public:
  /// Builds a tenant's Session from scratch: constructs it, registers
  /// its suites, configures autosave. Called once at startup and again
  /// after every simulated crash; must be deterministic and must return
  /// nullptr only on misconfiguration (which quarantines the tenant).
  using SessionFactory = std::function<std::unique_ptr<Session>()>;

  explicit Fleet(FleetOptions options);

  /// Registers a named tenant. Names must be unique and non-empty;
  /// sessions start (and resume) in registration order semantics but
  /// run concurrently.
  util::Status AddSession(const std::string& name, SessionFactory factory);

  /// Runs every tenant to target_rounds (or quarantine). Reentrant in
  /// the sense that a second Run() continues from where the sessions
  /// stand (e.g. after raising target_rounds).
  FleetReport Run();

  /// The tenant's live session (nullptr if unknown or its factory
  /// failed). Valid until the fleet is destroyed or the tenant crashes
  /// and is rebuilt; test code inspects final corpora/coverage here.
  const Session* FindSession(const std::string& name) const;

  size_t tenant_count() const { return tenants_.size(); }

 private:
  struct Tenant {
    std::string name;
    SessionFactory factory;
    std::unique_ptr<Session> session;
    TenantReport report;
  };

  /// Builds (or rebuilds) the tenant's session, resuming from its
  /// autosave directory when a committed snapshot exists there.
  util::Status BuildSession(Tenant* t);
  /// Drives one tenant to completion/quarantine. Never throws.
  void RunTenant(Tenant* t);
  /// Records a degraded condition once (dedup by message).
  static void NoteDegraded(TenantReport* report, const std::string& note);

  FleetOptions options_;
  std::vector<Tenant> tenants_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_FLEET_H_
