#include "fuzzer/minimizer.h"

namespace kernelgpt::fuzzer {

namespace {

/// Removes call `index`, rewiring resource references.
Prog
WithoutCall(const Prog& prog, size_t index)
{
  Prog out = prog;
  out.calls.erase(out.calls.begin() + static_cast<long>(index));
  for (Call& call : out.calls) {
    for (Arg& arg : call.args) {
      if (arg.kind != Arg::Kind::kResourceRef) continue;
      if (arg.ref_call == static_cast<int>(index)) arg.ref_call = -1;
      if (arg.ref_call > static_cast<int>(index)) --arg.ref_call;
    }
  }
  return out;
}

}  // namespace

MinimizeResult
MinimizeWhile(const Prog& input, const MinimizeProperty& property)
{
  MinimizeResult result;

  auto holds = [&](const Prog& candidate) {
    ++result.executions;
    return property(candidate);
  };

  if (input.empty()) return result;  // Nothing to replay or shrink.

  if (!holds(input)) {
    result.prog = input;
    return result;
  }
  result.reproduced = true;
  result.prog = input;

  // Pass 1: drop calls until no single removal keeps the property.
  bool shrunk = true;
  while (shrunk && result.prog.calls.size() > 1) {
    shrunk = false;
    for (size_t i = result.prog.calls.size(); i-- > 0;) {
      Prog candidate = WithoutCall(result.prog, i);
      if (candidate.empty()) continue;
      if (holds(candidate)) {
        result.prog = std::move(candidate);
        shrunk = true;
        break;  // Restart the scan on the smaller program.
      }
    }
  }

  // Pass 2: zero scalar arguments that the property does not depend on.
  for (size_t c = 0; c < result.prog.calls.size(); ++c) {
    for (size_t a = 0; a < result.prog.calls[c].args.size(); ++a) {
      Arg& arg = result.prog.calls[c].args[a];
      if (arg.kind != Arg::Kind::kScalar || arg.scalar == 0) continue;
      uint64_t saved = arg.scalar;
      arg.scalar = 0;
      if (!holds(result.prog)) arg.scalar = saved;
    }
  }

  // Pass 3: zero buffer bytes region-wise (keeps property-relevant
  // fields).
  for (Call& call : result.prog.calls) {
    for (Arg& arg : call.args) {
      if (arg.kind != Arg::Kind::kBuffer || arg.bytes.empty()) continue;
      const size_t chunk = 8;
      for (size_t offset = 0; offset < arg.bytes.size(); offset += chunk) {
        std::vector<uint8_t> saved(
            arg.bytes.begin() + static_cast<long>(offset),
            arg.bytes.begin() +
                static_cast<long>(std::min(offset + chunk, arg.bytes.size())));
        bool all_zero = true;
        for (uint8_t b : saved) all_zero = all_zero && b == 0;
        if (all_zero) continue;
        for (size_t i = 0; i < saved.size(); ++i) arg.bytes[offset + i] = 0;
        if (!holds(result.prog)) {
          for (size_t i = 0; i < saved.size(); ++i) {
            arg.bytes[offset + i] = saved[i];
          }
        }
      }
    }
  }
  return result;
}

MinimizeResult
MinimizeCrash(vkernel::KernelModel* kernel, const SpecLibrary& lib,
              const Prog& crashing, const std::string& crash_title)
{
  Executor executor(kernel, &lib);
  return MinimizeCrash(&executor, crashing, crash_title);
}

MinimizeResult
MinimizeCrash(Executor* executor_ptr, const Prog& crashing,
              const std::string& crash_title)
{
  Executor& executor = *executor_ptr;

  // Minimization replays hundreds of near-identical candidates; one
  // batch window amortizes the per-replay module resets. Closed by the
  // scope guard on every return path.
  executor.BeginBatch();
  struct BatchGuard {
    Executor* executor;
    ~BatchGuard() { executor->EndBatch(); }
  } batch_guard{&executor};

  return MinimizeWhile(crashing, [&](const Prog& candidate) {
    ExecResult exec = executor.Run(candidate, nullptr);
    return exec.crashed && exec.crash_title == crash_title;
  });
}

}  // namespace kernelgpt::fuzzer
