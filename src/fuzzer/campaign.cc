#include "fuzzer/campaign.h"

namespace kernelgpt::fuzzer {

void
AdmitToCorpus(const CampaignOptions& options, util::Rng* rng,
              std::vector<Prog>* corpus, Prog prog)
{
  if (corpus->size() >= options.corpus_cap) {
    (*corpus)[rng->Below(corpus->size())] = std::move(prog);
  } else {
    corpus->push_back(std::move(prog));
  }
}

size_t
PrimeCorpus(const CampaignOptions& options, const CampaignState& state)
{
  if (options.seed_corpus.empty()) return 0;
  size_t replayed = 0;
  state.executor->BeginBatch();
  for (const Prog& seed : options.seed_corpus) {
    if (seed.empty()) continue;
    state.executor->Run(seed, state.coverage);
    ++replayed;
    if (state.corpus->size() < options.corpus_cap) {
      state.corpus->push_back(seed);
    }
  }
  state.executor->EndBatch();
  return replayed;
}

void
RunCampaignChunk(const CampaignOptions& options, const CampaignState& state,
                 int n, std::vector<Prog>* interesting_out)
{
  std::vector<Prog>& corpus = *state.corpus;
  // Programs cannot be materialized up front (generation and admission
  // depend on each prior execution), so batching opens a kernel batch
  // window around `batch_size` consecutive executions instead.
  const int batch_size = options.batch_size;
  const bool batched = batch_size > 1;
  int in_window = 0;
  for (int i = 0; i < n; ++i) {
    Prog prog;
    if (!corpus.empty() && state.rng->Chance(options.mutate_prob)) {
      prog = corpus[state.rng->Below(corpus.size())];
      state.mutator->Mutate(&prog);
    } else {
      prog = state.generator->Generate(options.max_prog_len);
    }
    if (prog.empty()) continue;

    if (batched && in_window == 0) state.executor->BeginBatch();
    ExecResult exec = state.executor->Run(prog, state.coverage);
    if (batched && ++in_window >= batch_size) {
      state.executor->EndBatch();
      in_window = 0;
    }
    ++*state.programs_executed;
    if (exec.crashed) {
      (*state.crashes)[exec.crash_title]++;
    }
    if (exec.new_blocks > 0) {
      if (interesting_out) interesting_out->push_back(prog);
      AdmitToCorpus(options, state.rng, &corpus, std::move(prog));
    }
  }
  if (batched && in_window > 0) state.executor->EndBatch();
}

CampaignResult
RunCampaign(vkernel::KernelModel* kernel, const SpecLibrary& lib,
            const CampaignOptions& options)
{
  CampaignResult result;
  if (lib.syscalls().empty()) return result;

  util::Rng rng(options.seed);
  Generator generator(&lib, &rng);
  Mutator mutator(&lib, &generator, &rng);
  Executor executor(kernel, &lib);
  std::vector<Prog> corpus;

  CampaignState state;
  state.generator = &generator;
  state.mutator = &mutator;
  state.executor = &executor;
  state.rng = &rng;
  state.corpus = &corpus;
  state.coverage = &result.coverage;
  state.crashes = &result.crashes;
  state.programs_executed = &result.programs_executed;
  result.seeds_replayed = PrimeCorpus(options, state);
  RunCampaignChunk(options, state, options.program_budget, nullptr);

  result.corpus_size = corpus.size();
  return result;
}

}  // namespace kernelgpt::fuzzer
