#include "fuzzer/campaign.h"

namespace kernelgpt::fuzzer {

CampaignResult
RunCampaign(vkernel::Kernel* kernel, const SpecLibrary& lib,
            const CampaignOptions& options)
{
  CampaignResult result;
  if (lib.syscalls().empty()) return result;

  util::Rng rng(options.seed);
  Generator generator(&lib, &rng);
  Mutator mutator(&lib, &generator, &rng);
  Executor executor(kernel, &lib);
  std::vector<Prog> corpus;

  for (int i = 0; i < options.program_budget; ++i) {
    Prog prog;
    if (!corpus.empty() && rng.Chance(options.mutate_prob)) {
      prog = corpus[rng.Below(corpus.size())];
      mutator.Mutate(&prog);
    } else {
      prog = generator.Generate(options.max_prog_len);
    }
    if (prog.empty()) continue;

    ExecResult exec = executor.Run(prog, &result.coverage);
    ++result.programs_executed;
    if (exec.crashed) {
      result.crashes[exec.crash_title]++;
    }
    if (exec.new_blocks > 0) {
      if (corpus.size() >= options.corpus_cap) {
        corpus[rng.Below(corpus.size())] = std::move(prog);
      } else {
        corpus.push_back(std::move(prog));
      }
    }
  }
  result.corpus_size = corpus.size();
  return result;
}

}  // namespace kernelgpt::fuzzer
