/// \file
/// The coverage-guided fuzzing loop: maintains a seed corpus, alternates
/// generation and mutation, and aggregates coverage and deduplicated
/// crashes — the measurement harness behind Tables 3, 5, and 6.

#ifndef KERNELGPT_FUZZER_CAMPAIGN_H_
#define KERNELGPT_FUZZER_CAMPAIGN_H_

#include <map>
#include <string>

#include "fuzzer/executor.h"
#include "fuzzer/generator.h"
#include "fuzzer/mutator.h"

namespace kernelgpt::fuzzer {

/// Campaign parameters. `program_budget` replaces the paper's wall-clock
/// fuzzing hours (our substrate executes in microseconds, not on a VM).
struct CampaignOptions {
  uint64_t seed = 1;
  int program_budget = 20000;
  int max_prog_len = 6;
  /// Probability of mutating a corpus seed instead of generating fresh.
  double mutate_prob = 0.7;
  /// Seed-corpus capacity.
  size_t corpus_cap = 256;
  /// Programs per kernel batch window (syz-executor style). Inside a
  /// window the kernel amortizes per-program module resets by resetting
  /// only dirty modules; the window boundary restores the pristine state.
  /// 1 (the default) closes the window after every program — exactly the
  /// legacy per-program full reset, preserving the serial replay
  /// guarantee. Results are identical for any value by construction; only
  /// throughput changes.
  int batch_size = 1;
  /// Initial seed programs (typically a distilled corpus from a previous
  /// campaign round). Before the fuzzing loop starts they are replayed
  /// once (batched, no RNG consumed, not counted against program_budget)
  /// to prime coverage, and admitted to the corpus up to corpus_cap in
  /// order. Empty (the default) is bit-for-bit the legacy behavior.
  std::vector<Prog> seed_corpus;
};

/// Aggregated campaign outcome.
struct CampaignResult {
  vkernel::Coverage coverage;
  /// Crash title -> occurrence count (titles deduplicate crashes).
  std::map<std::string, int> crashes;
  size_t programs_executed = 0;
  size_t corpus_size = 0;
  /// Seed-corpus programs replayed before the loop (coverage priming).
  size_t seeds_replayed = 0;

  size_t UniqueCrashCount() const { return crashes.size(); }
};

/// Runs one campaign of `options.program_budget` programs.
CampaignResult RunCampaign(vkernel::KernelModel* kernel, const SpecLibrary& lib,
                           const CampaignOptions& options);

/// Mutable state of one campaign loop (serial) or one orchestrator shard.
struct CampaignState {
  Generator* generator = nullptr;
  Mutator* mutator = nullptr;
  Executor* executor = nullptr;
  util::Rng* rng = nullptr;
  std::vector<Prog>* corpus = nullptr;
  vkernel::Coverage* coverage = nullptr;
  std::map<std::string, int>* crashes = nullptr;
  size_t* programs_executed = nullptr;
};

/// Runs `n` campaign iterations (mutate-or-generate, execute, corpus
/// admission) over `state`. The serial campaign and every orchestrator
/// shard share this loop, so their operation order and RNG consumption
/// are identical by construction — the basis of the orchestrator's
/// 1-worker bit-identity guarantee. When `interesting_out` is non-null,
/// programs that found new coverage are also appended there (the
/// orchestrator's cross-shard broadcast pool).
void RunCampaignChunk(const CampaignOptions& options, const CampaignState& state,
                      int n, std::vector<Prog>* interesting_out);

/// Admits one program to a corpus: appends below `options.corpus_cap`,
/// otherwise replaces a random entry. Shared by the campaign loop and
/// the orchestrator's cross-shard ingest so admission policy cannot
/// diverge between them.
void AdmitToCorpus(const CampaignOptions& options, util::Rng* rng,
                   std::vector<Prog>* corpus, Prog prog);

/// Replays `options.seed_corpus` into `state` (coverage primed, seeds
/// admitted to the corpus up to corpus_cap in order) inside one batch
/// window. Consumes no RNG and counts nothing against the program
/// budget, so seeding cannot perturb the fuzzing stream that follows.
/// Returns the number of seeds replayed. Crashes during replay are not
/// re-counted — a seed corpus only carries coverage, not crash credit.
size_t PrimeCorpus(const CampaignOptions& options, const CampaignState& state);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_CAMPAIGN_H_
