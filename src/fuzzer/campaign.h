/// \file
/// The coverage-guided fuzzing loop: maintains a seed corpus, alternates
/// generation and mutation, and aggregates coverage and deduplicated
/// crashes — the measurement harness behind Tables 3, 5, and 6.

#ifndef KERNELGPT_FUZZER_CAMPAIGN_H_
#define KERNELGPT_FUZZER_CAMPAIGN_H_

#include <map>
#include <string>

#include "fuzzer/executor.h"
#include "fuzzer/generator.h"
#include "fuzzer/mutator.h"

namespace kernelgpt::fuzzer {

/// Campaign parameters. `program_budget` replaces the paper's wall-clock
/// fuzzing hours (our substrate executes in microseconds, not on a VM).
struct CampaignOptions {
  uint64_t seed = 1;
  int program_budget = 20000;
  int max_prog_len = 6;
  /// Probability of mutating a corpus seed instead of generating fresh.
  double mutate_prob = 0.7;
  /// Seed-corpus capacity.
  size_t corpus_cap = 256;
};

/// Aggregated campaign outcome.
struct CampaignResult {
  vkernel::Coverage coverage;
  /// Crash title -> occurrence count (titles deduplicate crashes).
  std::map<std::string, int> crashes;
  size_t programs_executed = 0;
  size_t corpus_size = 0;

  size_t UniqueCrashCount() const { return crashes.size(); }
};

/// Runs one campaign of `options.program_budget` programs.
CampaignResult RunCampaign(vkernel::Kernel* kernel, const SpecLibrary& lib,
                           const CampaignOptions& options);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_CAMPAIGN_H_
