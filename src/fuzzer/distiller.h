/// \file
/// Between-campaign corpus distillation — the syzkaller corpus-minimization
/// analog for the virtual kernel. Merged per-shard corpora grow without
/// bound across campaign rounds; the distiller replays them through the
/// batched executor to compute per-program coverage signatures, greedily
/// selects a minimal subset that reproduces the merged coverage exactly,
/// and deduplicates crashes into one minimized reproducer per title. The
/// distilled set re-seeds the next round's shards, so corpora stop growing
/// monotonically and long-running campaign-of-campaigns loops stay cheap.
///
/// Everything here is deterministic: replay is RNG-free, candidate order
/// is a pure function of the input, and ties break by input position —
/// distilling the same corpus twice yields byte-identical results.

#ifndef KERNELGPT_FUZZER_DISTILLER_H_
#define KERNELGPT_FUZZER_DISTILLER_H_

#include <map>
#include <string>
#include <vector>

#include "fuzzer/orchestrator.h"

namespace kernelgpt::fuzzer {

/// Distillation parameters.
struct DistillOptions {
  /// Programs per kernel batch window during signature replay.
  int batch_size = 32;
  /// Drop structurally identical programs (by HashProg) before replay.
  bool dedupe_exact = true;
  /// Shrink one reproducer per crash title via MinimizeCrash.
  bool minimize_crashes = true;
  /// Builds the private replay kernel (null: the reference StrictModel).
  vkernel::ModelFactory model_factory;
};

/// Observability counters for one distillation pass.
struct DistillStats {
  size_t input_programs = 0;      ///< Programs in the merged corpus.
  size_t exact_duplicates = 0;    ///< Dropped before replay (HashProg).
  size_t replayed = 0;            ///< Programs executed for signatures.
  size_t selected = 0;            ///< Programs in the distilled corpus.
  size_t crashing_inputs = 0;     ///< Replayed programs that crashed.
  size_t minimize_executions = 0; ///< Executions spent shrinking repros.
};

/// Outcome of one distillation pass.
struct DistillResult {
  /// Minimal covering subset, in greedy selection order (largest
  /// signature first, ties by input position).
  std::vector<Prog> corpus;
  /// Union coverage of the merged input == union coverage of `corpus`
  /// (the distiller's invariant; DistillerTest proves it).
  vkernel::Coverage coverage;
  /// One minimized reproducer per crash title seen during replay.
  std::map<std::string, Prog> crash_reproducers;
  DistillStats stats;
};

/// Runs distillation passes over merged corpora for one spec library.
class Distiller {
 public:
  Distiller(const SpecLibrary* lib, Orchestrator::BootFn boot,
            DistillOptions options = {});

  /// Distills one merged corpus (e.g. OrchestratorResult::corpus) on a
  /// private freshly booted kernel. Deterministic for a fixed input.
  DistillResult Distill(const std::vector<Prog>& merged) const;

  const DistillOptions& options() const { return options_; }

 private:
  const SpecLibrary* lib_;
  Orchestrator::BootFn boot_;
  DistillOptions options_;
};

/// The "campaign of campaigns" loop: run a sharded campaign round, distill
/// the merged corpora, re-seed the next round's shards with the distilled
/// set, repeat.
struct CampaignLoopOptions {
  OrchestratorOptions orchestrator;  ///< Per-round settings (seed = round 0).
  DistillOptions distill;
  int rounds = 2;  ///< Orchestrator rounds; distillation runs between them.
};

/// Per-round corpus-lifecycle numbers.
struct CampaignRoundStats {
  size_t merged_corpus = 0;     ///< Shard corpora merged after the round.
  size_t distilled_corpus = 0;  ///< Programs surviving distillation.
  size_t coverage_blocks = 0;   ///< Cumulative union coverage after round.
  size_t unique_crashes = 0;    ///< Cumulative unique crash titles.
  std::vector<EpochStats> epochs;  ///< The round's sync schedule.
};

/// Accumulated outcome of a campaign loop.
struct CampaignLoopResult {
  vkernel::Coverage coverage;          ///< Union across all rounds.
  std::map<std::string, int> crashes;  ///< Occurrences summed across rounds.
  /// Union of per-round minimized reproducers (newest title wins — titles
  /// are deterministic, so collisions are identical programs anyway).
  std::map<std::string, Prog> crash_reproducers;
  std::vector<Prog> corpus;            ///< Final distilled corpus.
  size_t programs_executed = 0;
  std::vector<CampaignRoundStats> rounds;
};

/// Runs `options.rounds` sharded campaign rounds with a distillation pass
/// between consecutive rounds. Round r > 0 re-seeds every shard with the
/// previous round's distilled corpus and decorrelates its RNG streams via
/// util::HashCombine(seed, r). Deterministic end to end.
///
/// Compatibility shim since the Session redesign: this is exactly one
/// hash-chain `fuzzer::Session` (see fuzzer/session.h), which adds
/// Save/Resume persistence, per-round trend reports, and util::Status
/// error reporting over this legacy signature. Prefer the Session API in
/// new code.
CampaignLoopResult RunCampaignLoop(const SpecLibrary& lib,
                                   Orchestrator::BootFn boot,
                                   const CampaignLoopOptions& options);

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_DISTILLER_H_
