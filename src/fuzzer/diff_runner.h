/// \file
/// Differential execution oracle: runs every program of a corpus on two
/// kernel personalities (baseline vs. subject, e.g. StrictModel vs.
/// PermissiveModel) and reports normalized disagreements as findings —
/// an oracle beyond crashes. Descriptor values are layout-dependent by
/// design (models own their fd spaces), so fd-producing calls compare
/// (success, errno) and end-of-program fd-table *shapes* are compared
/// instead of raw descriptor numbers.
///
/// Everything is deterministic: programs are evaluated independently on
/// fresh per-program state, workers write per-index slots, and dedup +
/// minimization run serially in corpus order — the report is
/// byte-identical for any worker count.

#ifndef KERNELGPT_FUZZER_DIFF_RUNNER_H_
#define KERNELGPT_FUZZER_DIFF_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "fuzzer/executor.h"
#include "util/span.h"
#include "vkernel/model.h"

namespace kernelgpt::fuzzer {

/// Differential-run parameters.
struct DiffOptions {
  /// Model factories; null selects the built-in pair (strict baseline,
  /// permissive subject).
  vkernel::ModelFactory baseline;
  vkernel::ModelFactory subject;

  /// Boots each freshly built model (register drivers/socket families).
  /// Called once per model instance, possibly concurrently; must only
  /// read shared state.
  std::function<void(vkernel::KernelModel*)> boot;

  /// Worker threads evaluating programs; the report is byte-identical
  /// for any value.
  int num_workers = 1;

  /// Shrink one reproducer per divergence signature via the minimizer
  /// (property: the models still disagree with the same signature).
  bool minimize = true;
};

/// One deduplicated divergence finding.
struct Divergence {
  enum class Kind {
    kResult,       ///< A call's normalized result differs.
    kCrash,        ///< Crash state/title/timing differs.
    kFdShape,      ///< End-of-program fd-table shapes differ.
    kModuleState,  ///< Normalized per-module/socket state differs.
  };

  Kind kind = Kind::kResult;
  size_t prog_index = 0;  ///< First corpus program exhibiting it.
  size_t call_index = 0;  ///< Diverging call (kResult only).
  std::string syscall;    ///< Syscall name at the diverging call.
  /// Dedup key: kind + syscall + normalized result pair. Stable under
  /// minimization (excludes program content and call position).
  std::string signature;
  std::string detail;     ///< Human-readable normalized outcome pair.
  size_t occurrences = 0; ///< Corpus programs with this signature.
  Prog repro;             ///< Minimized reproducer (input if not shrunk).
  std::string repro_text; ///< Rendered repro (FormatProg).
  bool minimized = false;
  size_t minimize_executions = 0;
};

/// Outcome of one differential run.
struct DiffReport {
  std::string baseline_name;
  std::string subject_name;
  size_t programs = 0;
  size_t diverging_programs = 0;
  /// Deduplicated by signature, in first-seen corpus order.
  std::vector<Divergence> divergences;

  size_t UniqueDivergenceCount() const { return divergences.size(); }

  /// Canonical text form; byte-compared by the determinism suite.
  std::string Render() const;
};

/// Runs differential campaigns over one spec library.
class DiffRunner {
 public:
  DiffRunner(const SpecLibrary* lib, DiffOptions options);

  /// Evaluates every program of `corpus` on both models. Deterministic
  /// for a fixed (corpus, model pair) regardless of num_workers.
  DiffReport Run(util::Span<const Prog> corpus) const;

  const DiffOptions& options() const { return options_; }

 private:
  const SpecLibrary* lib_;
  DiffOptions options_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_DIFF_RUNNER_H_
