/// \file
/// Program execution against the virtual kernel: dispatches each call by
/// its base syscall name, threads resource results between calls, and
/// collects coverage and crash outcomes.

#ifndef KERNELGPT_FUZZER_EXECUTOR_H_
#define KERNELGPT_FUZZER_EXECUTOR_H_

#include <string>

#include "fuzzer/prog.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {

/// Outcome of one program execution.
struct ExecResult {
  bool crashed = false;
  std::string crash_title;
  size_t calls_executed = 0;
  size_t new_blocks = 0;  ///< Blocks added to the accumulated coverage.
};

/// Executes programs on one kernel instance, accumulating coverage.
class Executor {
 public:
  Executor(vkernel::Kernel* kernel, const SpecLibrary* lib);

  /// Runs one program from a fresh kernel program state. Coverage is
  /// merged into `total`; the result reports crash state and new coverage.
  ExecResult Run(const Prog& prog, vkernel::Coverage* total);

 private:
  long Dispatch(const syzlang::SyscallDef& def, const Call& call,
                std::vector<long>& results, vkernel::ExecContext& ctx);

  vkernel::Kernel* kernel_;
  const SpecLibrary* lib_;
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_EXECUTOR_H_
