/// \file
/// Program execution against the virtual kernel: dispatches each call by
/// the opcode its syscall resolved to at Finalize() time, threads resource
/// results between calls, and collects coverage and crash outcomes.
/// Argument bytes are passed to the kernel as zero-copy views; batches of
/// programs can share one kernel batch window to amortize per-program
/// reset work.

#ifndef KERNELGPT_FUZZER_EXECUTOR_H_
#define KERNELGPT_FUZZER_EXECUTOR_H_

#include <string>
#include <vector>

#include "fuzzer/prog.h"
#include "util/span.h"
#include "vkernel/kernel.h"

namespace kernelgpt::fuzzer {

/// Outcome of one program execution.
struct ExecResult {
  bool crashed = false;
  std::string crash_title;
  size_t calls_executed = 0;
  size_t new_blocks = 0;  ///< Blocks added to the accumulated coverage.
};

/// Executes programs on one kernel instance, accumulating coverage.
class Executor {
 public:
  /// How Run() resolves a call to a kernel operation. kOpcode is the hot
  /// path (switch on the opcode precomputed by SpecLibrary::Finalize());
  /// kLegacyNames re-compares the syscall name string per call and exists
  /// as a debug-mode parity reference for tests.
  enum class DispatchMode { kOpcode, kLegacyNames };

  Executor(vkernel::Kernel* kernel, const SpecLibrary* lib,
           DispatchMode mode = DispatchMode::kOpcode);

  /// Runs one program from a fresh kernel program state. Coverage is
  /// merged into `total`; the result reports crash state and new coverage.
  ExecResult Run(const Prog& prog, vkernel::Coverage* total);

  /// Runs a batch of programs inside one kernel batch window, amortizing
  /// per-program module resets. Per-program semantics (fresh fd table and
  /// module state) are preserved, so results are identical to running
  /// each program through Run() individually.
  std::vector<ExecResult> RunBatch(util::Span<const Prog> progs,
                                   vkernel::Coverage* total);

  /// RunBatch variant that additionally records each program's individual
  /// coverage signature in `signatures` (resized to progs.size()). The
  /// distiller replays merged corpora through this to feed its greedy
  /// covering-subset selection; `total` still accumulates the union and
  /// each ExecResult::new_blocks is relative to `total` as usual.
  std::vector<ExecResult> RunBatch(util::Span<const Prog> progs,
                                   vkernel::Coverage* total,
                                   std::vector<vkernel::Coverage>* signatures);

  /// Opens/closes a kernel batch window around a streaming sequence of
  /// Run() calls (the campaign loop cannot materialize its programs up
  /// front because generation depends on prior results).
  void BeginBatch() { kernel_->BeginBatch(); }
  void EndBatch() { kernel_->EndBatch(); }

 private:
  long Dispatch(SyscallOp op, const syzlang::SyscallDef& def, const Call& call,
                const std::vector<long>& results, vkernel::ExecContext& ctx);

  /// The pre-opcode string-comparison chain, kept as the parity fallback.
  long DispatchByName(const syzlang::SyscallDef& def, const Call& call,
                      const std::vector<long>& results,
                      vkernel::ExecContext& ctx);

  vkernel::Kernel* kernel_;
  const SpecLibrary* lib_;
  DispatchMode mode_;
  std::vector<long> results_;     ///< Per-call results, reused across runs.
  vkernel::Buffer out_scratch_;   ///< Kernel-written buffer, reused.
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_EXECUTOR_H_
