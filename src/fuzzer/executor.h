/// \file
/// Program execution against a virtual-kernel model: dispatches each call
/// by the opcode its syscall resolved to at Finalize() time, threads
/// resource results between calls, and collects coverage and crash
/// outcomes. Argument bytes are passed to the model as zero-copy views;
/// batches of programs can share one kernel batch window to amortize
/// per-program reset work. The executor is written against the abstract
/// vkernel::KernelModel, so the same program can run on any personality.

#ifndef KERNELGPT_FUZZER_EXECUTOR_H_
#define KERNELGPT_FUZZER_EXECUTOR_H_

#include <string>
#include <vector>

#include "fuzzer/prog.h"
#include "util/span.h"
#include "vkernel/model.h"

namespace kernelgpt::fuzzer {

/// Outcome of one program execution.
struct ExecResult {
  bool crashed = false;
  std::string crash_title;
  size_t calls_executed = 0;
  size_t new_blocks = 0;  ///< Blocks added to the accumulated coverage.
};

/// Per-call observable record of one execution, for the differential
/// oracle: the full result vector plus the fd-table shape at end of
/// program (captured before EndProgram tears the table down). Slots of
/// calls never executed (after a crash) keep the unset sentinel.
struct ExecTrace {
  std::vector<vkernel::SyscallResult> results;
  vkernel::FdShape end_shape;
  /// Normalized per-module/socket state (KernelModel::ModuleStateShape)
  /// at end of program, compared by the differential oracle after fd
  /// shapes.
  std::string module_state;
};

/// Executes programs on one kernel model, accumulating coverage.
class Executor {
 public:
  /// How Run() resolves a call to a kernel operation. kOpcode is the hot
  /// path (switch on the opcode precomputed by SpecLibrary::Finalize())
  /// and drives the model's uniform Syscall() entry; kLegacyNames
  /// re-compares the syscall name string per call against the typed
  /// wrappers and exists as a debug-mode parity reference for tests.
  enum class DispatchMode { kOpcode, kLegacyNames };

  Executor(vkernel::KernelModel* kernel, const SpecLibrary* lib,
           DispatchMode mode = DispatchMode::kOpcode);

  /// Runs one program from a fresh kernel program state. Coverage is
  /// merged into `total`; the result reports crash state and new coverage.
  ExecResult Run(const Prog& prog, vkernel::Coverage* total) {
    return Run(prog, total, nullptr);
  }

  /// Run variant that additionally records the per-call result vector
  /// and end-of-program fd shape into `trace` (may be null).
  ExecResult Run(const Prog& prog, vkernel::Coverage* total, ExecTrace* trace);

  /// Runs a batch of programs inside one kernel batch window, amortizing
  /// per-program module resets. Per-program semantics (fresh fd table and
  /// module state) are preserved, so results are identical to running
  /// each program through Run() individually.
  std::vector<ExecResult> RunBatch(util::Span<const Prog> progs,
                                   vkernel::Coverage* total);

  /// RunBatch variant that additionally records each program's individual
  /// coverage signature in `signatures` (resized to progs.size()). The
  /// distiller replays merged corpora through this to feed its greedy
  /// covering-subset selection; `total` still accumulates the union and
  /// each ExecResult::new_blocks is relative to `total` as usual.
  std::vector<ExecResult> RunBatch(util::Span<const Prog> progs,
                                   vkernel::Coverage* total,
                                   std::vector<vkernel::Coverage>* signatures);

  /// Opens/closes a kernel batch window around a streaming sequence of
  /// Run() calls (the campaign loop cannot materialize its programs up
  /// front because generation depends on prior results).
  void BeginBatch() { kernel_->BeginBatch(); }
  void EndBatch() { kernel_->EndBatch(); }

  /// The model this executor drives (for reports that name it).
  vkernel::KernelModel* model() const { return kernel_; }

 private:
  vkernel::SyscallResult Dispatch(SyscallOp op, const syzlang::SyscallDef& def,
                                  const Call& call,
                                  const std::vector<vkernel::SyscallResult>& results,
                                  vkernel::ExecContext& ctx);

  /// The pre-opcode string-comparison chain, kept as the parity fallback.
  vkernel::SyscallResult DispatchByName(
      const syzlang::SyscallDef& def, const Call& call,
      const std::vector<vkernel::SyscallResult>& results,
      vkernel::ExecContext& ctx);

  vkernel::KernelModel* kernel_;
  const SpecLibrary* lib_;
  DispatchMode mode_;
  /// Per-call results, reused across runs.
  std::vector<vkernel::SyscallResult> results_;
  vkernel::Buffer out_scratch_;   ///< Kernel-written buffer, reused.
};

}  // namespace kernelgpt::fuzzer

#endif  // KERNELGPT_FUZZER_EXECUTOR_H_
