#include "fuzzer/snapshot.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "syzlang/printer.h"
#include "util/fileio.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::fuzzer {
namespace {

// -- Line-oriented parsing helpers -------------------------------------------
// Every helper returns false on malformed input and leaves a message in
// `err`; the public Parse* entry points convert that into a Status. No
// helper may crash on arbitrary bytes — snapshots are user-supplied files.

struct LineCursor {
  std::string_view text;
  size_t pos = 0;
  size_t line_no = 0;  // 1-based number of the line Next() last returned.
  std::string err;

  explicit LineCursor(std::string_view t) : text(t) {}

  /// Returns the next line (without the trailing newline); false at EOF.
  bool Next(std::string_view* line) {
    if (pos >= text.size()) {
      err = util::Format("unexpected end of snapshot after line %zu", line_no);
      return false;
    }
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    *line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    return true;
  }

  /// Like Next() but without consuming the line (no err on EOF either).
  bool Peek(std::string_view* line) const {
    if (pos >= text.size()) return false;
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    *line = text.substr(pos, nl - pos);
    return true;
  }

  std::string Where() const { return util::Format("line %zu", line_no); }
};

int
HexNibble(char c)
{
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool
ParseU64(std::string_view tok, int base, uint64_t* out)
{
  // strtoull silently wraps negative input and skips leading whitespace;
  // both would let a corrupt field parse "successfully", so an unsigned
  // field must start with a digit.
  if (tok.empty() || HexNibble(tok[0]) < 0) return false;
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(buf.c_str(), &end, base);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool
ParseI64(std::string_view tok, int64_t* out)
{
  if (tok.empty()) return false;
  // Signed fields allow exactly one leading '-'; no whitespace or '+'
  // (strtoll would accept both).
  const std::string_view digits = tok[0] == '-' ? tok.substr(1) : tok;
  if (digits.empty() || HexNibble(digits[0]) < 0) return false;
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  int64_t v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool
ParseF64(std::string_view tok, double* out)
{
  if (tok.empty()) return false;
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);  // Accepts the %a hexfloats.
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

/// Reads one line of the form "<keyword> <rest>" (or bare "<keyword>")
/// and returns the rest. Fails when the keyword differs.
bool
ExpectKeyword(LineCursor* cur, std::string_view keyword,
              std::string_view* rest)
{
  std::string_view line;
  if (!cur->Next(&line)) return false;
  if (line == keyword) {
    *rest = {};
    return true;
  }
  if (util::StartsWith(line, keyword) && line.size() > keyword.size() &&
      line[keyword.size()] == ' ') {
    *rest = line.substr(keyword.size() + 1);
    return true;
  }
  cur->err = util::Format("%s: expected '%.*s', got '%.*s'",
                          cur->Where().c_str(),
                          static_cast<int>(keyword.size()), keyword.data(),
                          static_cast<int>(line.size()), line.data());
  return false;
}

/// "<keyword> <decimal count>" lines ("coverage 412", "progs 9", ...).
bool
ExpectCount(LineCursor* cur, std::string_view keyword, uint64_t* count)
{
  std::string_view rest;
  if (!ExpectKeyword(cur, keyword, &rest)) return false;
  if (!ParseU64(rest, 10, count)) {
    cur->err = util::Format("%s: bad %.*s count '%.*s'", cur->Where().c_str(),
                            static_cast<int>(keyword.size()), keyword.data(),
                            static_cast<int>(rest.size()), rest.data());
    return false;
  }
  return true;
}

/// Checks a "kernelgpt-<kind> v<N>" header; any other version is a
/// rejection, any other shape is corruption.
bool
ExpectVersionHeader(LineCursor* cur, std::string_view kind)
{
  std::string_view line;
  if (!cur->Next(&line)) return false;
  const std::string want =
      util::Format("kernelgpt-%.*s v%d", static_cast<int>(kind.size()),
                   kind.data(), kSnapshotVersion);
  if (line == want) return true;
  const std::string prefix =
      util::Format("kernelgpt-%.*s v", static_cast<int>(kind.size()),
                   kind.data());
  uint64_t version = 0;
  if (util::StartsWith(line, prefix) &&
      ParseU64(line.substr(prefix.size()), 10, &version)) {
    cur->err = util::Format(
        "snapshot version mismatch: file is v%llu, this build reads v%d",
        static_cast<unsigned long long>(version), kSnapshotVersion);
  } else {
    cur->err = util::Format("%s: not a %.*s snapshot (got '%.*s')",
                            cur->Where().c_str(), static_cast<int>(kind.size()),
                            kind.data(), static_cast<int>(line.size()),
                            line.data());
  }
  return false;
}

// -- Program blocks ----------------------------------------------------------
// prog <ncalls>
// c <nargs> <syscall full name>
// a <kind> <scalar hex> <dir> <ref_call> <len_of_param> <bytes hex | ->
//
// Every Arg field is serialized regardless of kind so that the rendering
// is a lossless fixpoint for any program the mutator can produce.

void
AppendProg(const Prog& prog, const SpecLibrary& lib, std::string* out)
{
  *out += util::Format("prog %zu\n", prog.calls.size());
  for (const Call& call : prog.calls) {
    const std::string name =
        call.syscall_index < lib.syscalls().size()
            ? lib.syscalls()[call.syscall_index].FullName()
            : util::Format("#%zu", call.syscall_index);
    *out += util::Format("c %zu %s\n", call.args.size(), name.c_str());
    for (const Arg& arg : call.args) {
      *out += util::Format(
          "a %d %llx %d %d %d ", static_cast<int>(arg.kind),
          static_cast<unsigned long long>(arg.scalar),
          static_cast<int>(arg.dir), arg.ref_call, arg.len_of_param);
      if (arg.bytes.empty()) {
        *out += "-";
      } else {
        // Payloads dominate snapshot volume; append nibbles directly
        // instead of paying a printf format-parse per byte.
        static constexpr char kHex[] = "0123456789abcdef";
        out->reserve(out->size() + arg.bytes.size() * 2 + 1);
        for (uint8_t b : arg.bytes) {
          *out += kHex[b >> 4];
          *out += kHex[b & 0xf];
        }
      }
      *out += "\n";
    }
  }
}

bool
ParseOneProg(LineCursor* cur,
             const std::unordered_map<std::string, size_t>& call_index,
             Prog* out)
{
  uint64_t ncalls = 0;
  if (!ExpectCount(cur, "prog", &ncalls)) return false;
  out->calls.clear();
  for (uint64_t i = 0; i < ncalls; ++i) {
    std::string_view rest;
    if (!ExpectKeyword(cur, "c", &rest)) return false;
    const size_t space = rest.find(' ');
    uint64_t nargs = 0;
    if (space == std::string_view::npos ||
        !ParseU64(rest.substr(0, space), 10, &nargs)) {
      cur->err = util::Format("%s: bad call header '%.*s'",
                              cur->Where().c_str(),
                              static_cast<int>(rest.size()), rest.data());
      return false;
    }
    const std::string name(rest.substr(space + 1));
    auto it = call_index.find(name);
    if (it == call_index.end()) {
      cur->err = util::Format(
          "%s: snapshot references syscall '%s' absent from this suite",
          cur->Where().c_str(), name.c_str());
      return false;
    }
    Call call;
    call.syscall_index = it->second;
    for (uint64_t a = 0; a < nargs; ++a) {
      std::string_view arg_rest;
      if (!ExpectKeyword(cur, "a", &arg_rest)) return false;
      const std::vector<std::string> tok = util::SplitWhitespace(arg_rest);
      int64_t kind = 0, dir = 0, ref = 0, len = 0;
      uint64_t scalar = 0;
      if (tok.size() != 6 || !ParseI64(tok[0], &kind) ||
          !ParseU64(tok[1], 16, &scalar) || !ParseI64(tok[2], &dir) ||
          !ParseI64(tok[3], &ref) || !ParseI64(tok[4], &len) || kind < 0 ||
          kind > 2 || dir < 0 || dir > 2 || len < kBrokenLenLink) {
        cur->err = util::Format("%s: bad arg line '%.*s'",
                                cur->Where().c_str(),
                                static_cast<int>(arg_rest.size()),
                                arg_rest.data());
        return false;
      }
      Arg arg;
      arg.kind = static_cast<Arg::Kind>(kind);
      arg.scalar = scalar;
      arg.dir = static_cast<syzlang::Dir>(dir);
      arg.ref_call = static_cast<int>(ref);
      arg.len_of_param = static_cast<int>(len);
      if (tok[5] != "-") {
        if (tok[5].size() % 2 != 0) {
          cur->err = util::Format("%s: odd-length byte payload",
                                  cur->Where().c_str());
          return false;
        }
        arg.bytes.reserve(tok[5].size() / 2);
        for (size_t b = 0; b < tok[5].size(); b += 2) {
          const int hi = HexNibble(tok[5][b]);
          const int lo = HexNibble(tok[5][b + 1]);
          if (hi < 0 || lo < 0) {
            cur->err = util::Format("%s: bad byte payload hex",
                                    cur->Where().c_str());
            return false;
          }
          arg.bytes.push_back(static_cast<uint8_t>(hi << 4 | lo));
        }
      }
      call.args.push_back(std::move(arg));
    }
    out->calls.push_back(std::move(call));
  }
  return true;
}

// -- Round records -----------------------------------------------------------
// "round <idx> <seed hex> <8 decimal counters> <wall hexfloat>" — shared
// between the suite snapshot's trend section and the journal's delta
// records so the two renderings can never drift apart.

void
AppendRoundLine(const RoundReport& r, std::string* out)
{
  *out += util::Format(
      "round %d %llx %zu %zu %zu %zu %zu %zu %zu %zu %zu %a\n", r.round,
      static_cast<unsigned long long>(r.seed), r.programs_executed,
      r.round_coverage, r.round_unique_crashes, r.coverage_delta,
      r.cumulative_coverage, r.cumulative_unique_crashes, r.merged_corpus,
      r.distilled_corpus, r.divergences, r.wall_seconds);
}

bool
ParseRoundLine(LineCursor* cur, RoundReport* out)
{
  std::string_view rest;
  if (!ExpectKeyword(cur, "round", &rest)) return false;
  const std::vector<std::string> tok = util::SplitWhitespace(rest);
  RoundReport r;
  int64_t round = 0;
  uint64_t u[9] = {};
  if (tok.size() != 12 || !ParseI64(tok[0], &round) ||
      !ParseU64(tok[1], 16, &r.seed) || !ParseU64(tok[2], 10, &u[0]) ||
      !ParseU64(tok[3], 10, &u[1]) || !ParseU64(tok[4], 10, &u[2]) ||
      !ParseU64(tok[5], 10, &u[3]) || !ParseU64(tok[6], 10, &u[4]) ||
      !ParseU64(tok[7], 10, &u[5]) || !ParseU64(tok[8], 10, &u[6]) ||
      !ParseU64(tok[9], 10, &u[7]) || !ParseU64(tok[10], 10, &u[8]) ||
      !ParseF64(tok[11], &r.wall_seconds)) {
    cur->err = util::Format("%s: bad round record", cur->Where().c_str());
    return false;
  }
  r.round = static_cast<int>(round);
  r.programs_executed = u[0];
  r.round_coverage = u[1];
  r.round_unique_crashes = u[2];
  r.coverage_delta = u[3];
  r.cumulative_coverage = u[4];
  r.cumulative_unique_crashes = u[5];
  r.merged_corpus = u[6];
  r.distilled_corpus = u[7];
  r.divergences = u[8];
  *out = std::move(r);
  return true;
}

void
AppendBlockIds(const std::vector<uint64_t>& ids, std::string* out)
{
  for (size_t i = 0; i < ids.size(); ++i) {
    *out += util::Format("%llx", static_cast<unsigned long long>(ids[i]));
    *out += (i % 8 == 7 || i + 1 == ids.size()) ? "\n" : " ";
  }
}

bool
ParseBlockIds(LineCursor* cur, uint64_t n, std::vector<uint64_t>* out)
{
  out->clear();
  while (out->size() < n) {
    std::string_view line;
    if (!cur->Next(&line)) return false;
    for (const std::string& tok : util::SplitWhitespace(line)) {
      uint64_t id = 0;
      if (!ParseU64(tok, 16, &id) || out->size() >= n) {
        cur->err = util::Format("%s: bad coverage block '%s'",
                                cur->Where().c_str(), tok.c_str());
        return false;
      }
      out->push_back(id);
    }
  }
  return true;
}

std::unordered_map<std::string, size_t>
CallIndex(const SpecLibrary& lib)
{
  std::unordered_map<std::string, size_t> index;
  index.reserve(lib.syscalls().size());
  for (size_t i = 0; i < lib.syscalls().size(); ++i) {
    // First writer wins, matching SpecLibrary::Add's dedup (names are
    // unique per finalized library anyway).
    index.emplace(lib.syscalls()[i].FullName(), i);
  }
  return index;
}

bool
ParseProgsSection(LineCursor* cur,
                  const std::unordered_map<std::string, size_t>& call_index,
                  std::vector<Prog>* out)
{
  uint64_t count = 0;
  if (!ExpectCount(cur, "progs", &count)) return false;
  out->clear();
  for (uint64_t i = 0; i < count; ++i) {
    Prog prog;
    if (!ParseOneProg(cur, call_index, &prog)) return false;
    out->push_back(std::move(prog));
  }
  return true;
}

}  // namespace

uint64_t
SuiteFingerprint(const SpecLibrary& lib)
{
  // The printer's canonical declaration rendering is the identity that
  // matters for replay: two libraries printing the same syscalls in the
  // same order construct identical programs from identical snapshots.
  uint64_t h = util::HashCombine(0x6b67736e617073ULL, lib.syscalls().size());
  for (const syzlang::SyscallDef& def : lib.syscalls()) {
    const syzlang::Decl decl = syzlang::Decl::Make(def);
    h = util::HashCombine(h, util::StableHash(syzlang::PrintDecl(decl)));
  }
  return h;
}

std::string
SerializeProgs(const std::vector<Prog>& progs, const SpecLibrary& lib)
{
  std::string out = util::Format("progs %zu\n", progs.size());
  for (const Prog& prog : progs) AppendProg(prog, lib, &out);
  return out;
}

util::Status
ParseProgs(std::string_view text, const SpecLibrary& lib,
           std::vector<Prog>* out)
{
  LineCursor cur{text};
  const auto call_index = CallIndex(lib);
  if (!ParseProgsSection(&cur, call_index, out)) {
    return util::Status::Error("corpus: " + cur.err);
  }
  return util::Status::Ok();
}

std::string
SerializeSuite(const SuiteSnapshot& suite, const SpecLibrary& lib)
{
  std::string out = util::Format("kernelgpt-suite v%d\n", kSnapshotVersion);
  out += util::Format("name %s\n", suite.name.c_str());
  out += util::Format("fingerprint %016llx\n",
                      static_cast<unsigned long long>(suite.fingerprint));
  out += util::Format("programs_executed %zu\n", suite.programs_executed);
  out += util::Format("wall_seconds %a\n", suite.wall_seconds);

  out += util::Format("coverage %zu\n", suite.coverage.size());
  AppendBlockIds(suite.coverage, &out);

  out += util::Format("crashes %zu\n", suite.crashes.size());
  for (const auto& [title, count] : suite.crashes) {
    out += util::Format("%d %s\n", count, title.c_str());
  }

  out += SerializeProgs(suite.corpus, lib);

  out += util::Format("repros %zu\n", suite.crash_reproducers.size());
  for (const auto& [title, prog] : suite.crash_reproducers) {
    out += util::Format("title %s\n", title.c_str());
    AppendProg(prog, lib, &out);
  }

  out += util::Format("rounds %zu\n", suite.rounds.size());
  for (const RoundReport& r : suite.rounds) AppendRoundLine(r, &out);
  out += "end\n";
  return out;
}

util::Status
ParseSuite(std::string_view text, const SpecLibrary& lib, SuiteSnapshot* out)
{
  LineCursor cur{text};
  *out = SuiteSnapshot{};
  auto fail = [&cur](const std::string& context) {
    return util::Status::Error("suite snapshot: " + context +
                               (cur.err.empty() ? "" : ": " + cur.err));
  };

  if (!ExpectVersionHeader(&cur, "suite")) return fail("header");

  std::string_view rest;
  if (!ExpectKeyword(&cur, "name", &rest)) return fail("name");
  out->name = std::string(rest);

  if (!ExpectKeyword(&cur, "fingerprint", &rest) ||
      !ParseU64(rest, 16, &out->fingerprint)) {
    return fail("fingerprint");
  }

  uint64_t n = 0;
  if (!ExpectCount(&cur, "programs_executed", &n)) {
    return fail("programs_executed");
  }
  out->programs_executed = n;

  if (!ExpectKeyword(&cur, "wall_seconds", &rest) ||
      !ParseF64(rest, &out->wall_seconds)) {
    return fail("wall_seconds");
  }

  if (!ExpectCount(&cur, "coverage", &n)) return fail("coverage");
  if (!ParseBlockIds(&cur, n, &out->coverage)) return fail("coverage blocks");

  if (!ExpectCount(&cur, "crashes", &n)) return fail("crashes");
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view line;
    if (!cur.Next(&line)) return fail("crash entries");
    const size_t space = line.find(' ');
    int64_t count = 0;
    if (space == std::string_view::npos || space + 1 >= line.size() ||
        !ParseI64(line.substr(0, space), &count)) {
      cur.err = util::Format("%s: bad crash entry '%.*s'", cur.Where().c_str(),
                             static_cast<int>(line.size()), line.data());
      return fail("crash entries");
    }
    out->crashes[std::string(line.substr(space + 1))] =
        static_cast<int>(count);
  }

  const auto call_index = CallIndex(lib);
  if (!ParseProgsSection(&cur, call_index, &out->corpus)) {
    return fail("corpus");
  }

  if (!ExpectCount(&cur, "repros", &n)) return fail("repros");
  for (uint64_t i = 0; i < n; ++i) {
    if (!ExpectKeyword(&cur, "title", &rest)) return fail("repro title");
    Prog prog;
    if (!ParseOneProg(&cur, call_index, &prog)) return fail("repro program");
    out->crash_reproducers[std::string(rest)] = std::move(prog);
  }

  if (!ExpectCount(&cur, "rounds", &n)) return fail("rounds");
  for (uint64_t i = 0; i < n; ++i) {
    RoundReport r;
    if (!ParseRoundLine(&cur, &r)) return fail("round record");
    out->rounds.push_back(std::move(r));
  }

  std::string_view end;
  if (!ExpectKeyword(&cur, "end", &end)) return fail("trailer");
  return util::Status::Ok();
}

std::string
SerializeManifest(const SessionManifest& manifest)
{
  std::string out = util::Format("kernelgpt-session v%d\n", kSnapshotVersion);
  out += util::Format("seed %llx\n",
                      static_cast<unsigned long long>(manifest.seed));
  out += util::Format("schedule %s\n", manifest.schedule.c_str());
  out += util::Format("seed_stride %llu\n",
                      static_cast<unsigned long long>(manifest.seed_stride));
  out += util::Format("carry_corpus %d\n", manifest.carry_corpus ? 1 : 0);
  out += util::Format("distill %d\n", manifest.distill ? 1 : 0);
  out += util::Format("rounds_completed %d\n", manifest.rounds_completed);
  out += util::Format("stale_rounds %d\n", manifest.stale_rounds);
  out += util::Format("suites %zu\n", manifest.suites.size());
  for (size_t i = 0; i < manifest.suites.size(); ++i) {
    out += util::Format("suite %zu %016llx %s\n", i,
                        static_cast<unsigned long long>(manifest.suites[i].first),
                        manifest.suites[i].second.c_str());
  }
  out += "end\n";
  return out;
}

util::Status
ParseManifest(std::string_view text, SessionManifest* out)
{
  LineCursor cur{text};
  *out = SessionManifest{};
  auto fail = [&cur](const std::string& context) {
    return util::Status::Error("session manifest: " + context +
                               (cur.err.empty() ? "" : ": " + cur.err));
  };

  if (!ExpectVersionHeader(&cur, "session")) return fail("header");

  std::string_view rest;
  if (!ExpectKeyword(&cur, "seed", &rest) || !ParseU64(rest, 16, &out->seed)) {
    return fail("seed");
  }
  if (!ExpectKeyword(&cur, "schedule", &rest) ||
      (rest != "hash-chain" && rest != "arithmetic")) {
    return fail("schedule");
  }
  out->schedule = std::string(rest);
  if (!ExpectKeyword(&cur, "seed_stride", &rest) ||
      !ParseU64(rest, 10, &out->seed_stride)) {
    return fail("seed_stride");
  }
  uint64_t flag = 0;
  if (!ExpectCount(&cur, "carry_corpus", &flag) || flag > 1) {
    return fail("carry_corpus");
  }
  out->carry_corpus = flag == 1;
  if (!ExpectCount(&cur, "distill", &flag) || flag > 1) {
    return fail("distill");
  }
  out->distill = flag == 1;
  uint64_t n = 0;
  if (!ExpectCount(&cur, "rounds_completed", &n)) {
    return fail("rounds_completed");
  }
  out->rounds_completed = static_cast<int>(n);
  if (!ExpectCount(&cur, "stale_rounds", &n)) return fail("stale_rounds");
  out->stale_rounds = static_cast<int>(n);

  if (!ExpectCount(&cur, "suites", &n)) return fail("suites");
  for (uint64_t i = 0; i < n; ++i) {
    if (!ExpectKeyword(&cur, "suite", &rest)) return fail("suite entry");
    // "suite <index> <fingerprint> <name...>" — name may contain spaces.
    const std::vector<std::string> head = util::SplitWhitespace(rest);
    uint64_t index = 0, fingerprint = 0;
    if (head.size() < 3 || !ParseU64(head[0], 10, &index) || index != i ||
        !ParseU64(head[1], 16, &fingerprint)) {
      cur.err = util::Format("%s: bad suite entry '%.*s'", cur.Where().c_str(),
                             static_cast<int>(rest.size()), rest.data());
      return fail("suite entry");
    }
    // The name starts after the second token, located positionally: a
    // substring search for the fingerprint text would mis-anchor when it
    // also occurs inside the index token (e.g. index "12", unpadded
    // fingerprint "2") and corrupt the suite name.
    const size_t index_end = rest.find(' ');
    const size_t fp_begin = rest.find_first_not_of(' ', index_end);
    const size_t fp_end = rest.find(' ', fp_begin);
    const size_t name_at =
        fp_end == std::string_view::npos
            ? std::string_view::npos
            : rest.find_first_not_of(' ', fp_end);
    if (name_at == std::string_view::npos) return fail("suite entry");
    out->suites.emplace_back(fingerprint, std::string(rest.substr(name_at)));
  }

  std::string_view end;
  if (!ExpectKeyword(&cur, "end", &end)) return fail("trailer");
  return util::Status::Ok();
}

std::string
SerializeDelta(const SuiteDelta& delta, const SpecLibrary& lib)
{
  std::string out = util::Format("delta %d\n", delta.report.round);
  AppendRoundLine(delta.report, &out);

  out += util::Format("coverage+ %zu\n", delta.new_coverage.size());
  AppendBlockIds(delta.new_coverage, &out);

  out += util::Format("crashes+ %zu\n", delta.crash_increments.size());
  for (const auto& [title, inc] : delta.crash_increments) {
    out += util::Format("%d %s\n", inc, title.c_str());
  }

  out += util::Format("repros+ %zu\n", delta.new_reproducers.size());
  for (const auto& [title, prog] : delta.new_reproducers) {
    out += util::Format("title %s\n", title.c_str());
    AppendProg(prog, lib, &out);
  }

  if (delta.corpus_unchanged) {
    out += "corpus same\n";
  } else {
    out += util::Format("corpus %zu\n", delta.corpus.size());
    for (const SuiteDelta::CorpusEntry& entry : delta.corpus) {
      if (entry.kept_index >= 0) {
        out += util::Format("k %d\n", entry.kept_index);
      } else {
        AppendProg(entry.prog, lib, &out);
      }
    }
  }
  out += "end\n";
  return out;
}

util::Status
ParseDelta(std::string_view text, const SpecLibrary& lib, SuiteDelta* out)
{
  LineCursor cur{text};
  *out = SuiteDelta{};
  auto fail = [&cur](const std::string& context) {
    return util::Status::Error("journal delta: " + context +
                               (cur.err.empty() ? "" : ": " + cur.err));
  };

  uint64_t n = 0;
  if (!ExpectCount(&cur, "delta", &n)) return fail("header");
  if (!ParseRoundLine(&cur, &out->report)) return fail("round record");
  if (out->report.round < 0 ||
      n != static_cast<uint64_t>(out->report.round)) {
    cur.err = util::Format("header names round %llu but record is round %d",
                           static_cast<unsigned long long>(n),
                           out->report.round);
    return fail("round record");
  }

  if (!ExpectCount(&cur, "coverage+", &n)) return fail("coverage delta");
  if (!ParseBlockIds(&cur, n, &out->new_coverage)) {
    return fail("coverage delta blocks");
  }

  if (!ExpectCount(&cur, "crashes+", &n)) return fail("crash increments");
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view line;
    if (!cur.Next(&line)) return fail("crash increments");
    const size_t space = line.find(' ');
    int64_t inc = 0;
    if (space == std::string_view::npos || space + 1 >= line.size() ||
        !ParseI64(line.substr(0, space), &inc)) {
      cur.err = util::Format("%s: bad crash increment '%.*s'",
                             cur.Where().c_str(),
                             static_cast<int>(line.size()), line.data());
      return fail("crash increments");
    }
    out->crash_increments[std::string(line.substr(space + 1))] =
        static_cast<int>(inc);
  }

  const auto call_index = CallIndex(lib);
  if (!ExpectCount(&cur, "repros+", &n)) return fail("new reproducers");
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view rest;
    if (!ExpectKeyword(&cur, "title", &rest)) return fail("repro title");
    Prog prog;
    if (!ParseOneProg(&cur, call_index, &prog)) return fail("repro program");
    out->new_reproducers[std::string(rest)] = std::move(prog);
  }

  std::string_view rest;
  if (!ExpectKeyword(&cur, "corpus", &rest)) return fail("corpus");
  if (rest == "same") {
    out->corpus_unchanged = true;
  } else {
    if (!ParseU64(rest, 10, &n)) {
      cur.err = util::Format("%s: bad corpus count '%.*s'",
                             cur.Where().c_str(),
                             static_cast<int>(rest.size()), rest.data());
      return fail("corpus");
    }
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view next;
      SuiteDelta::CorpusEntry entry;
      if (cur.Peek(&next) && util::StartsWith(next, "k ")) {
        if (!ExpectKeyword(&cur, "k", &rest)) return fail("corpus entry");
        int64_t index = 0;
        if (!ParseI64(rest, &index) || index < 0) {
          cur.err = util::Format("%s: bad kept-index '%.*s'",
                                 cur.Where().c_str(),
                                 static_cast<int>(rest.size()), rest.data());
          return fail("corpus entry");
        }
        entry.kept_index = static_cast<int>(index);
      } else {
        if (!ParseOneProg(&cur, call_index, &entry.prog)) {
          return fail("corpus program");
        }
      }
      out->corpus.push_back(std::move(entry));
    }
  }

  std::string_view end;
  if (!ExpectKeyword(&cur, "end", &end)) return fail("trailer");
  return util::Status::Ok();
}

// -- Binary suite codec ------------------------------------------------------

namespace {

constexpr char kBinaryMagic[4] = {'K', 'G', 'P', 'B'};

void
PutVarint(uint64_t v, std::string* out)
{
  while (v >= 0x80) {
    *out += static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  *out += static_cast<char>(v);
}

uint64_t
ZigZag(int64_t v)
{
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t
UnZigZag(uint64_t v)
{
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void
PutString(std::string_view s, std::string* out)
{
  PutVarint(s.size(), out);
  out->append(s.data(), s.size());
}

void
PutF64(double v, std::string* out)
{
  // Raw bit pattern, not decimal text: bit-exact round-trips are what
  // make serialize -> parse -> serialize a byte fixpoint.
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    *out += static_cast<char>((bits >> (8 * i)) & 0xff);
  }
}

/// Bounds-checked reader over one section payload. Every getter returns
/// false once the payload is exhausted or malformed; the caller converts
/// that into a Status naming the section.
struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  explicit ByteReader(std::string_view data)
      : p(reinterpret_cast<const uint8_t*>(data.data())),
        end(p + data.size()) {}

  bool AtEnd() const { return p == end; }

  bool U64(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const uint8_t byte = *p++;
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return true;
      }
    }
    return false;  // > 10 continuation bytes: not a valid varint.
  }

  bool I64(int64_t* out) {
    uint64_t raw = 0;
    if (!U64(&raw)) return false;
    *out = UnZigZag(raw);
    return true;
  }

  bool Size(size_t* out) {
    // Sizes feed reserve()/resize(); cap them at the bytes actually
    // remaining so a corrupt count cannot balloon allocation.
    uint64_t v = 0;
    if (!U64(&v) || v > static_cast<uint64_t>(end - p)) return false;
    *out = static_cast<size_t>(v);
    return true;
  }

  bool Str(std::string* out) {
    size_t n = 0;
    if (!Size(&n)) return false;
    out->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }

  bool F64(double* out) {
    if (end - p < 8) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
};

/// Frames one section: varint length, payload, CRC32 of the payload.
void
PutSection(std::string_view payload, std::string* out)
{
  PutVarint(payload.size(), out);
  out->append(payload.data(), payload.size());
  const uint32_t crc = util::Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    *out += static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

/// Unframes the next section of `data` starting at `*pos`. On success
/// advances `*pos` past the trailer and yields the payload view.
bool
NextSection(std::string_view data, size_t* pos, std::string_view* payload,
            std::string* err)
{
  ByteReader head(data.substr(*pos));
  uint64_t len = 0;
  if (!head.U64(&len)) {
    *err = "truncated section header";
    return false;
  }
  const size_t at =
      *pos + static_cast<size_t>(head.p -
                                 reinterpret_cast<const uint8_t*>(
                                     data.data() + *pos));
  if (len > data.size() - at || data.size() - at - len < 4) {
    *err = "truncated section payload";
    return false;
  }
  *payload = data.substr(at, len);
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(
               static_cast<uint8_t>(data[at + len + i]))
           << (8 * i);
  }
  if (util::Crc32(*payload) != crc) {
    *err = "section checksum mismatch";
    return false;
  }
  *pos = at + len + 4;
  return true;
}

/// Interned call-name table: every distinct syscall full name the
/// corpus/repro programs reference, in first-use order (deterministic, so
/// the rendering is a fixpoint).
class NameTable {
 public:
  uint32_t Intern(const std::string& name) {
    auto [it, inserted] =
        index_.emplace(name, static_cast<uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

std::string
CallName(const Call& call, const SpecLibrary& lib)
{
  return call.syscall_index < lib.syscalls().size()
             ? lib.syscalls()[call.syscall_index].FullName()
             : util::Format("#%zu", call.syscall_index);
}

void
PutProg(const Prog& prog, const SpecLibrary& lib, NameTable* names,
        std::string* out)
{
  PutVarint(prog.calls.size(), out);
  for (const Call& call : prog.calls) {
    PutVarint(names->Intern(CallName(call, lib)), out);
    PutVarint(call.args.size(), out);
    for (const Arg& arg : call.args) {
      PutVarint(static_cast<uint64_t>(static_cast<int>(arg.kind)), out);
      PutVarint(arg.scalar, out);
      PutVarint(static_cast<uint64_t>(static_cast<int>(arg.dir)), out);
      PutVarint(ZigZag(arg.ref_call), out);
      PutVarint(ZigZag(arg.len_of_param), out);
      PutVarint(arg.bytes.size(), out);
      out->append(reinterpret_cast<const char*>(arg.bytes.data()),
                  arg.bytes.size());
    }
  }
}

bool
ReadProg(ByteReader* r, const std::vector<size_t>& name_to_call,
         Prog* out, std::string* err)
{
  size_t ncalls = 0;
  if (!r->Size(&ncalls)) {
    *err = "bad call count";
    return false;
  }
  out->calls.clear();
  out->calls.reserve(ncalls);
  for (size_t c = 0; c < ncalls; ++c) {
    uint64_t name_idx = 0;
    size_t nargs = 0;
    if (!r->U64(&name_idx) || name_idx >= name_to_call.size() ||
        !r->Size(&nargs)) {
      *err = "bad call header";
      return false;
    }
    Call call;
    call.syscall_index = name_to_call[name_idx];
    call.args.reserve(nargs);
    for (size_t a = 0; a < nargs; ++a) {
      uint64_t kind = 0, dir = 0;
      int64_t ref = 0, len = 0;
      size_t nbytes = 0;
      Arg arg;
      if (!r->U64(&kind) || kind > 2 || !r->U64(&arg.scalar) ||
          !r->U64(&dir) || dir > 2 || !r->I64(&ref) || !r->I64(&len) ||
          len < kBrokenLenLink || !r->Size(&nbytes)) {
        *err = "bad arg record";
        return false;
      }
      arg.kind = static_cast<Arg::Kind>(kind);
      arg.dir = static_cast<syzlang::Dir>(dir);
      arg.ref_call = static_cast<int>(ref);
      arg.len_of_param = static_cast<int>(len);
      arg.bytes.assign(r->p, r->p + nbytes);
      r->p += nbytes;
      call.args.push_back(std::move(arg));
    }
    out->calls.push_back(std::move(call));
  }
  return true;
}

void
PutRound(const RoundReport& r, std::string* out)
{
  PutVarint(ZigZag(r.round), out);
  PutVarint(r.seed, out);
  PutVarint(r.programs_executed, out);
  PutVarint(r.round_coverage, out);
  PutVarint(r.round_unique_crashes, out);
  PutVarint(r.coverage_delta, out);
  PutVarint(r.cumulative_coverage, out);
  PutVarint(r.cumulative_unique_crashes, out);
  PutVarint(r.merged_corpus, out);
  PutVarint(r.distilled_corpus, out);
  PutVarint(r.divergences, out);
  PutF64(r.wall_seconds, out);
}

bool
ReadRound(ByteReader* r, RoundReport* out)
{
  int64_t round = 0;
  uint64_t u[10] = {};
  if (!r->I64(&round) || !r->U64(&u[0]) || !r->U64(&u[1]) ||
      !r->U64(&u[2]) || !r->U64(&u[3]) || !r->U64(&u[4]) ||
      !r->U64(&u[5]) || !r->U64(&u[6]) || !r->U64(&u[7]) ||
      !r->U64(&u[8]) || !r->U64(&u[9]) || !r->F64(&out->wall_seconds)) {
    return false;
  }
  out->round = static_cast<int>(round);
  out->seed = u[0];
  out->programs_executed = u[1];
  out->round_coverage = u[2];
  out->round_unique_crashes = u[3];
  out->coverage_delta = u[4];
  out->cumulative_coverage = u[5];
  out->cumulative_unique_crashes = u[6];
  out->merged_corpus = u[7];
  out->distilled_corpus = u[8];
  out->divergences = u[9];
  return true;
}

}  // namespace

bool
IsBinarySuiteSnapshot(std::string_view data)
{
  return data.size() >= sizeof(kBinaryMagic) &&
         std::memcmp(data.data(), kBinaryMagic, sizeof(kBinaryMagic)) == 0;
}

std::string
SerializeSuiteBinary(const SuiteSnapshot& suite, const SpecLibrary& lib)
{
  // Program sections are built first so the meta section can carry the
  // complete interned-name table (first-use order keeps it a fixpoint).
  NameTable names;
  std::string corpus;
  PutVarint(suite.corpus.size(), &corpus);
  for (const Prog& prog : suite.corpus) {
    PutProg(prog, lib, &names, &corpus);
  }

  std::string repros;
  PutVarint(suite.crash_reproducers.size(), &repros);
  for (const auto& [title, prog] : suite.crash_reproducers) {
    PutString(title, &repros);
    PutProg(prog, lib, &names, &repros);
  }

  std::string meta;
  PutString(suite.name, &meta);
  PutVarint(suite.fingerprint, &meta);
  PutVarint(suite.programs_executed, &meta);
  PutF64(suite.wall_seconds, &meta);
  PutVarint(names.names().size(), &meta);
  for (const std::string& name : names.names()) PutString(name, &meta);

  std::string coverage;
  PutVarint(suite.coverage.size(), &coverage);
  uint64_t prev = 0;
  for (const uint64_t id : suite.coverage) {
    // Sorted ascending, so deltas are small and varints stay short; the
    // first id is a delta from zero.
    PutVarint(id - prev, &coverage);
    prev = id;
  }

  std::string crashes;
  PutVarint(suite.crashes.size(), &crashes);
  for (const auto& [title, count] : suite.crashes) {
    PutString(title, &crashes);
    PutVarint(ZigZag(count), &crashes);
  }

  std::string rounds;
  PutVarint(suite.rounds.size(), &rounds);
  for (const RoundReport& r : suite.rounds) PutRound(r, &rounds);

  std::string out(kBinaryMagic, sizeof(kBinaryMagic));
  PutVarint(static_cast<uint64_t>(kSnapshotVersion), &out);
  PutSection(meta, &out);
  PutSection(coverage, &out);
  PutSection(crashes, &out);
  PutSection(corpus, &out);
  PutSection(repros, &out);
  PutSection(rounds, &out);
  return out;
}

util::Status
ParseSuiteBinary(std::string_view data, const SpecLibrary& lib,
                 SuiteSnapshot* out)
{
  *out = SuiteSnapshot{};
  std::string err;
  auto fail = [&err](const std::string& context) {
    return util::Status::Error("binary suite snapshot: " + context +
                               (err.empty() ? "" : ": " + err));
  };

  if (!IsBinarySuiteSnapshot(data)) return fail("bad magic");
  size_t pos = sizeof(kBinaryMagic);
  {
    ByteReader r(data.substr(pos));
    uint64_t version = 0;
    if (!r.U64(&version)) return fail("truncated version");
    if (version != static_cast<uint64_t>(kSnapshotVersion)) {
      return util::Status::Error(util::Format(
          "snapshot version mismatch: file is v%llu, this build reads v%d",
          static_cast<unsigned long long>(version), kSnapshotVersion));
    }
    pos += static_cast<size_t>(
        r.p - reinterpret_cast<const uint8_t*>(data.data() + pos));
  }

  std::string_view meta, coverage, crashes, corpus, repros, rounds;
  if (!NextSection(data, &pos, &meta, &err)) return fail("meta section");
  if (!NextSection(data, &pos, &coverage, &err)) {
    return fail("coverage section");
  }
  if (!NextSection(data, &pos, &crashes, &err)) {
    return fail("crashes section");
  }
  if (!NextSection(data, &pos, &corpus, &err)) return fail("corpus section");
  if (!NextSection(data, &pos, &repros, &err)) return fail("repros section");
  if (!NextSection(data, &pos, &rounds, &err)) return fail("rounds section");
  if (pos != data.size()) return fail("trailing bytes after last section");

  // Meta: identity, counters, and the name table mapped to this
  // library's syscall indices (name-based, so call reordering between
  // builds is survivable — same contract as the textual parser).
  std::vector<size_t> name_to_call;
  {
    ByteReader r(meta);
    size_t nnames = 0;
    if (!r.Str(&out->name) || !r.U64(&out->fingerprint)) {
      return fail("meta identity");
    }
    uint64_t executed = 0;
    if (!r.U64(&executed) || !r.F64(&out->wall_seconds) ||
        !r.Size(&nnames)) {
      return fail("meta counters");
    }
    out->programs_executed = executed;
    const auto call_index = CallIndex(lib);
    name_to_call.reserve(nnames);
    for (size_t i = 0; i < nnames; ++i) {
      std::string name;
      if (!r.Str(&name)) return fail("name table");
      auto it = call_index.find(name);
      if (it == call_index.end()) {
        return util::Status::Error(util::Format(
            "binary suite snapshot: references syscall '%s' absent from "
            "this suite",
            name.c_str()));
      }
      name_to_call.push_back(it->second);
    }
    if (!r.AtEnd()) return fail("meta trailing bytes");
  }

  {
    ByteReader r(coverage);
    uint64_t n = 0;
    if (!r.U64(&n)) return fail("coverage count");
    // Each id costs at least one payload byte, so a sane count is
    // bounded by the section size — reserve() can trust the cap.
    if (n > coverage.size()) return fail("coverage count exceeds section");
    out->coverage.reserve(static_cast<size_t>(n));
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t delta = 0;
      if (!r.U64(&delta)) return fail("coverage ids");
      prev += delta;
      out->coverage.push_back(prev);
    }
    if (!r.AtEnd()) return fail("coverage trailing bytes");
  }

  {
    ByteReader r(crashes);
    size_t n = 0;
    if (!r.Size(&n)) return fail("crash count");
    for (size_t i = 0; i < n; ++i) {
      std::string title;
      int64_t count = 0;
      if (!r.Str(&title) || !r.I64(&count)) return fail("crash entries");
      out->crashes[std::move(title)] = static_cast<int>(count);
    }
    if (!r.AtEnd()) return fail("crashes trailing bytes");
  }

  {
    ByteReader r(corpus);
    size_t n = 0;
    if (!r.Size(&n)) return fail("corpus count");
    out->corpus.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Prog prog;
      if (!ReadProg(&r, name_to_call, &prog, &err)) {
        return fail("corpus program");
      }
      out->corpus.push_back(std::move(prog));
    }
    if (!r.AtEnd()) return fail("corpus trailing bytes");
  }

  {
    ByteReader r(repros);
    size_t n = 0;
    if (!r.Size(&n)) return fail("repro count");
    for (size_t i = 0; i < n; ++i) {
      std::string title;
      Prog prog;
      if (!r.Str(&title) ||
          !ReadProg(&r, name_to_call, &prog, &err)) {
        return fail("repro program");
      }
      out->crash_reproducers[std::move(title)] = std::move(prog);
    }
    if (!r.AtEnd()) return fail("repros trailing bytes");
  }

  {
    ByteReader r(rounds);
    size_t n = 0;
    if (!r.Size(&n)) return fail("round count");
    out->rounds.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      RoundReport report;
      if (!ReadRound(&r, &report)) return fail("round record");
      out->rounds.push_back(std::move(report));
    }
    if (!r.AtEnd()) return fail("rounds trailing bytes");
  }

  return util::Status::Ok();
}

util::Status
ParseSuiteAuto(std::string_view data, const SpecLibrary& lib,
               SuiteSnapshot* out)
{
  return IsBinarySuiteSnapshot(data) ? ParseSuiteBinary(data, lib, out)
                                     : ParseSuite(data, lib, out);
}

util::Status
ConvertSuite(std::string_view data, SnapshotCodec codec,
             const SpecLibrary& lib, std::string* out)
{
  SuiteSnapshot suite;
  util::Status status = ParseSuiteAuto(data, lib, &suite);
  if (!status.ok()) return status;
  *out = codec == SnapshotCodec::kBinary ? SerializeSuiteBinary(suite, lib)
                                         : SerializeSuite(suite, lib);
  return util::Status::Ok();
}

std::string
SerializeJournalHeader(const JournalHeader& header)
{
  std::string out = util::Format("kernelgpt-journal v%d\n", kSnapshotVersion);
  out += util::Format("suite %016llx %s\n",
                      static_cast<unsigned long long>(header.fingerprint),
                      header.suite_name.c_str());
  out += util::Format("base_rounds %d\n", header.base_rounds);
  return out;
}

std::string
FrameJournalRecord(std::string_view payload)
{
  std::string out = util::Format("rec %zu %08x\n", payload.size(),
                                 util::Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

util::Status
ScanJournal(std::string_view text, JournalScan* out)
{
  LineCursor cur{text};
  *out = JournalScan{};
  auto fail = [&cur](const std::string& context) {
    return util::Status::Error("suite journal: " + context +
                               (cur.err.empty() ? "" : ": " + cur.err));
  };

  if (!ExpectVersionHeader(&cur, "journal")) return fail("header");
  std::string_view rest;
  if (!ExpectKeyword(&cur, "suite", &rest)) return fail("suite binding");
  const size_t space = rest.find(' ');
  if (space == std::string_view::npos || space + 1 >= rest.size() ||
      !ParseU64(rest.substr(0, space), 16, &out->header.fingerprint)) {
    cur.err = util::Format("%s: bad suite binding '%.*s'",
                           cur.Where().c_str(),
                           static_cast<int>(rest.size()), rest.data());
    return fail("suite binding");
  }
  out->header.suite_name = std::string(rest.substr(space + 1));
  uint64_t base = 0;
  if (!ExpectCount(&cur, "base_rounds", &base)) return fail("base_rounds");
  out->header.base_rounds = static_cast<int>(base);
  out->header_end = cur.pos;

  // Records: everything from here on is a torn-tail candidate, never a
  // Status error — the caller knows which records the manifest committed.
  size_t pos = cur.pos;
  while (pos < text.size()) {
    const size_t record_no = out->records.size() + 1;
    const size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      out->tail_error = util::Format("record %zu: torn header", record_no);
      return util::Status::Ok();
    }
    const std::string_view head = text.substr(pos, nl - pos);
    uint64_t len = 0, crc = 0;
    const std::vector<std::string> tok = util::SplitWhitespace(head);
    if (tok.size() != 3 || tok[0] != "rec" || !ParseU64(tok[1], 10, &len) ||
        !ParseU64(tok[2], 16, &crc)) {
      out->tail_error =
          util::Format("record %zu: bad record header '%.*s'", record_no,
                       static_cast<int>(head.size()), head.data());
      return util::Status::Ok();
    }
    const size_t payload_at = nl + 1;
    if (payload_at + len > text.size()) {
      out->tail_error = util::Format(
          "record %zu: torn payload (%llu bytes framed, %zu on disk)",
          record_no, static_cast<unsigned long long>(len),
          text.size() - payload_at);
      return util::Status::Ok();
    }
    const std::string_view payload = text.substr(payload_at, len);
    if (util::Crc32(payload) != static_cast<uint32_t>(crc)) {
      out->tail_error =
          util::Format("record %zu: checksum mismatch", record_no);
      return util::Status::Ok();
    }
    pos = payload_at + len;
    out->records.emplace_back(std::string(payload), pos);
  }
  return util::Status::Ok();
}

util::Status
ReadFileToString(const std::string& path, std::string* out)
{
  // Delegates to the fileio layer so reads share its errno-to-Status
  // mapping (ENOSPC vs EIO vs EACCES named in the message) and its
  // "fileio.read" fault-injection seam.
  return util::ReadFileToString(path, out);
}

util::Status
WriteStringToFile(const std::string& path, const std::string& content)
{
  // Never truncate the live file in place: a crash mid-write would
  // destroy the only good copy. The atomic helper leaves either the old
  // or the new file, whatever the instant of the crash.
  return util::AtomicWriteFile(path, content);
}

}  // namespace kernelgpt::fuzzer
