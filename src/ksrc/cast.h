/// \file
/// Structural AST of the kernel C subset: macros, enums, struct types,
/// initialized variables (operation-handler tables), and functions.
///
/// The parser is deliberately structural rather than expression-precise —
/// the same trade-off the paper makes ("simple yet general pattern
/// matching"). Function bodies keep their token stream so that downstream
/// analyses (baseline rules and the simulated LLM) can inspect them at
/// whatever depth their capability profile allows.

#ifndef KERNELGPT_KSRC_CAST_H_
#define KERNELGPT_KSRC_CAST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ksrc/ctoken.h"

namespace kernelgpt::ksrc {

/// `#define NAME VALUE` (object-like only; that is all the corpus emits).
struct CMacro {
  std::string name;
  std::string value_text;
  /// Numeric value when the right-hand side is a plain literal or a
  /// supported _IOC(...) expression the corpus renderer evaluates.
  std::optional<uint64_t> value;
  int line = 0;
};

/// One enumerator inside an enum.
struct CEnumerator {
  std::string name;
  uint64_t value = 0;
};

/// `enum name { ... };`
struct CEnum {
  std::string name;  ///< May be empty for anonymous enums.
  std::vector<CEnumerator> enumerators;
  int line = 0;
};

/// One member of a struct/union type.
struct CStructField {
  std::string type_text;  ///< e.g. "__u32", "struct dm_target_spec".
  std::string name;
  /// -1: scalar; 0: flexible array member []; >0: fixed array [n].
  int64_t array_len = -1;
  /// Raw array-length expression when it is a macro name ("DM_NAME_LEN");
  /// empty when numeric or when the field is a scalar.
  std::string array_len_text;
  bool is_pointer = false;
  /// Leading comment attached to the field, if any ("/* size of data */").
  std::string comment;
};

/// `struct name { ... };` or `union name { ... };`
struct CStructDef {
  std::string name;
  bool is_union = false;
  std::vector<CStructField> fields;
  /// Leading comment for the whole type.
  std::string comment;
  int line = 0;
};

/// `.field = value` inside a designated initializer.
struct CInitEntry {
  std::string field;
  std::string value_text;  ///< Raw tokens, e.g. "dm_ctl_ioctl" or "DM_DIR \"/\" DM_CONTROL_NODE".
};

/// `static const struct file_operations _ctl_fops = { ... };`
struct CVarDef {
  std::string type_name;  ///< e.g. "file_operations", "miscdevice".
  std::string name;
  bool is_static = false;
  std::vector<CInitEntry> init;
  int line = 0;

  /// Returns the initializer value for `.field`, or empty string.
  std::string InitFor(const std::string& field) const;
};

/// One parameter of a function.
struct CParam {
  std::string type_text;
  std::string name;
};

/// A function definition; the body is retained as raw text plus tokens.
struct CFunction {
  std::string return_type;
  std::string name;
  std::vector<CParam> params;
  std::string body_text;         ///< Body between braces, braces excluded.
  std::vector<CToken> body_tokens;  ///< Tokenized body (comments kept).
  std::string comment;           ///< Leading doc comment.
  bool is_static = false;
  int line = 0;
};

/// One parsed source file of the synthetic kernel.
struct CFile {
  std::string path;
  std::vector<CMacro> macros;
  std::vector<CEnum> enums;
  std::vector<CStructDef> structs;
  std::vector<CVarDef> vars;
  std::vector<CFunction> functions;
  /// Parser diagnostics (non-fatal; unparsed regions are skipped).
  std::vector<std::string> diagnostics;

  const CStructDef* FindStruct(const std::string& name) const;
  const CFunction* FindFunction(const std::string& name) const;
  const CVarDef* FindVar(const std::string& name) const;
  const CMacro* FindMacro(const std::string& name) const;
};

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_CAST_H_
