#include "ksrc/definition_index.h"

#include <cctype>

#include "ksrc/cparser.h"
#include "util/strings.h"

namespace kernelgpt::ksrc {

namespace {

/// Scalar type sizes of the kernel C subset.
std::optional<uint64_t>
ScalarSize(const std::string& type)
{
  if (type == "__u8" || type == "u8" || type == "__s8" || type == "s8" ||
      type == "char" || type == "unsigned char" || type == "signed char" ||
      type == "bool") {
    return 1;
  }
  if (type == "__u16" || type == "u16" || type == "__s16" || type == "s16" ||
      type == "__le16" || type == "__be16" || type == "short" ||
      type == "unsigned short") {
    return 2;
  }
  if (type == "__u32" || type == "u32" || type == "__s32" || type == "s32" ||
      type == "__le32" || type == "__be32" || type == "int" ||
      type == "unsigned" || type == "unsigned int" || type == "uint" ||
      type == "int32_t" || type == "uint32_t") {
    return 4;
  }
  if (type == "__u64" || type == "u64" || type == "__s64" || type == "s64" ||
      type == "__le64" || type == "__be64" || type == "long" ||
      type == "unsigned long" || type == "long long" ||
      type == "unsigned long long" || type == "int64_t" ||
      type == "uint64_t" || type == "size_t" || type == "loff_t") {
    return 8;
  }
  return std::nullopt;
}

/// Splits "a , b , c" argument text at top-level commas.
std::vector<std::string>
SplitArgs(std::string_view text)
{
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (char c : text) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(std::string(util::Trim(current)));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!util::Trim(current).empty()) {
    out.push_back(std::string(util::Trim(current)));
  }
  return out;
}

}  // namespace

void
DefinitionIndex::AddSource(const std::string& source, const std::string& path)
{
  AddFile(CParse(source, path));
}

void
DefinitionIndex::AddFile(CFile file)
{
  files_.push_back(std::move(file));
}

const CStructDef*
DefinitionIndex::FindStruct(const std::string& name) const
{
  for (const auto& f : files_) {
    if (const CStructDef* s = f.FindStruct(name)) return s;
  }
  return nullptr;
}

const CFunction*
DefinitionIndex::FindFunction(const std::string& name) const
{
  // Prefer definitions with bodies over forward declarations.
  const CFunction* fallback = nullptr;
  for (const auto& f : files_) {
    if (const CFunction* fn = f.FindFunction(name)) {
      if (!fn->body_text.empty()) return fn;
      fallback = fn;
    }
  }
  return fallback;
}

const CVarDef*
DefinitionIndex::FindVar(const std::string& name) const
{
  for (const auto& f : files_) {
    if (const CVarDef* v = f.FindVar(name)) return v;
  }
  return nullptr;
}

const CMacro*
DefinitionIndex::FindMacro(const std::string& name) const
{
  for (const auto& f : files_) {
    if (const CMacro* m = f.FindMacro(name)) return m;
  }
  return nullptr;
}

EntityKind
DefinitionIndex::Classify(const std::string& identifier) const
{
  if (FindFunction(identifier)) return EntityKind::kFunction;
  if (FindStruct(identifier)) return EntityKind::kStruct;
  if (FindVar(identifier)) return EntityKind::kVariable;
  if (FindMacro(identifier)) return EntityKind::kMacro;
  for (const auto& f : files_) {
    for (const auto& e : f.enums) {
      for (const auto& en : e.enumerators) {
        if (en.name == identifier) return EntityKind::kEnumerator;
      }
    }
  }
  return EntityKind::kNotFound;
}

std::vector<const CVarDef*>
DefinitionIndex::VarsOfType(const std::string& type_name) const
{
  std::vector<const CVarDef*> out;
  for (const auto& f : files_) {
    for (const auto& v : f.vars) {
      if (v.type_name == type_name) out.push_back(&v);
    }
  }
  return out;
}

std::optional<uint64_t>
DefinitionIndex::ConstValue(const std::string& name) const
{
  if (auto lit = syzlang::ParseIntLiteral(name)) return lit;
  if (const CMacro* m = FindMacro(name)) return m->value;
  for (const auto& f : files_) {
    for (const auto& e : f.enums) {
      for (const auto& en : e.enumerators) {
        if (en.name == name) return en.value;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string>
DefinitionIndex::ResolveStringExpr(const std::string& expr) const
{
  // The expression is a sequence of string literals ("...") and macro
  // names that themselves resolve to strings; adjacent pieces concatenate
  // (C adjacent-literal concatenation).
  std::string out;
  std::string_view v(expr);
  size_t i = 0;
  bool any = false;
  while (i < v.size()) {
    char c = v[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t end = v.find('"', i + 1);
      if (end == std::string_view::npos) return std::nullopt;
      out.append(v.substr(i + 1, end - i - 1));
      i = end + 1;
      any = true;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < v.size() &&
             (std::isalnum(static_cast<unsigned char>(v[i])) || v[i] == '_')) {
        ++i;
      }
      std::string name(v.substr(start, i - start));
      const CMacro* m = FindMacro(name);
      if (!m) return std::nullopt;
      auto nested = ResolveStringExpr(m->value_text);
      if (!nested) return std::nullopt;
      out.append(*nested);
      any = true;
      continue;
    }
    return std::nullopt;
  }
  if (!any) return std::nullopt;
  return out;
}

uint64_t
DefinitionIndex::SizeOf(const std::string& type_text) const
{
  std::string t(util::Trim(type_text));
  if (t.empty()) return 0;
  if (util::EndsWith(t, "*")) return 8;
  if (util::StartsWith(t, "const ")) t = t.substr(6);
  if (util::StartsWith(t, "struct ") || util::StartsWith(t, "union ")) {
    auto words = util::SplitWhitespace(t);
    if (words.size() >= 2) {
      if (const CStructDef* s = FindStruct(words[1])) return StructSize(*s);
    }
    return 0;
  }
  if (auto scalar = ScalarSize(t)) return *scalar;
  if (const CStructDef* s = FindStruct(t)) return StructSize(*s);
  return 0;
}

uint64_t
DefinitionIndex::StructSize(const CStructDef& def) const
{
  uint64_t total = 0;
  uint64_t max_arm = 0;
  for (const CStructField& f : def.fields) {
    uint64_t elem = f.is_pointer ? 8 : SizeOf(f.type_text);
    uint64_t n = 1;
    if (f.array_len == 0) {
      n = 0;  // Flexible array member contributes nothing.
    } else if (f.array_len > 0) {
      n = static_cast<uint64_t>(f.array_len);
    } else if (!f.array_len_text.empty()) {
      n = ConstValue(f.array_len_text).value_or(1);
    }
    uint64_t sz = elem * n;
    total += sz;
    max_arm = std::max(max_arm, sz);
  }
  return def.is_union ? max_arm : total;
}

std::optional<uint64_t>
DefinitionIndex::EvalMacroText(const std::string& text, int depth) const
{
  if (depth > 16) return std::nullopt;
  std::string body(util::Trim(text));
  while (body.size() >= 2 && body.front() == '(' && body.back() == ')') {
    // Only strip if the parens are balanced as a whole.
    int d = 0;
    bool whole = true;
    for (size_t i = 0; i < body.size(); ++i) {
      if (body[i] == '(') ++d;
      if (body[i] == ')') {
        --d;
        if (d == 0 && i + 1 != body.size()) whole = false;
      }
    }
    if (!whole) break;
    body = std::string(util::Trim(std::string_view(body).substr(
        1, body.size() - 2)));
  }
  if (auto lit = syzlang::ParseIntLiteral(body)) return lit;

  // _IO / _IOR / _IOW / _IOWR (type, nr[, argtype])
  for (const char* form : {"_IOWR", "_IOR", "_IOW", "_IO"}) {
    if (util::StartsWith(body, form) &&
        body.size() > std::string(form).size()) {
      std::string rest(
          util::Trim(std::string_view(body).substr(std::string(form).size())));
      if (rest.empty() || rest.front() != '(' || rest.back() != ')') continue;
      auto args = SplitArgs(std::string_view(rest).substr(1, rest.size() - 2));
      if (args.size() < 2) return std::nullopt;
      uint64_t type = 0;
      if (args[0].size() >= 3 && args[0].front() == '\'') {
        type = static_cast<uint64_t>(args[0][1]);
      } else if (auto v = ConstValue(args[0])) {
        type = *v;
      } else if (auto v2 = EvalMacroText(args[0], depth + 1)) {
        type = *v2;
      } else {
        return std::nullopt;
      }
      uint64_t nr = 0;
      if (auto v = ConstValue(args[1])) {
        nr = *v;
      } else {
        return std::nullopt;
      }
      uint64_t size = 0;
      if (args.size() >= 3) size = SizeOf(args[2]);
      std::string f(form);
      char r = (f == "_IOR" || f == "_IOWR") ? 'r' : '-';
      char w = (f == "_IOW" || f == "_IOWR") ? 'w' : '-';
      return IoctlNumber(r, w, type, nr, size);
    }
  }

  // Reference to another macro or enumerator.
  if (const CMacro* m = FindMacro(body)) {
    if (m->value) return m->value;
    return EvalMacroText(m->value_text, depth + 1);
  }
  if (auto v = ConstValue(body)) return v;
  return std::nullopt;
}

void
DefinitionIndex::ResolveMacros()
{
  // Two passes to settle macro-to-macro references defined out of order.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& f : files_) {
      for (auto& m : f.macros) {
        if (!m.value) m.value = EvalMacroText(m.value_text, 0);
      }
    }
  }
}

std::string
RenderStruct(const CStructDef& def)
{
  std::string out;
  if (!def.comment.empty()) out += "/* " + def.comment + " */\n";
  out += std::string(def.is_union ? "union " : "struct ") + def.name + " {\n";
  for (const CStructField& f : def.fields) {
    out += "\t" + f.type_text + " ";
    if (f.is_pointer) out += "*";
    out += f.name;
    if (f.array_len == 0) {
      out += "[]";
    } else if (f.array_len > 0) {
      out += util::Format("[%lld]", static_cast<long long>(f.array_len));
    } else if (!f.array_len_text.empty()) {
      out += "[" + f.array_len_text + "]";
    }
    out += ";";
    if (!f.comment.empty()) out += " /* " + f.comment + " */";
    out += "\n";
  }
  out += "};\n";
  return out;
}

std::string
RenderFunction(const CFunction& fn)
{
  std::string out;
  if (!fn.comment.empty()) out += "/* " + fn.comment + " */\n";
  if (fn.is_static) out += "static ";
  out += fn.return_type + " " + fn.name + "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out += ", ";
    out += fn.params[i].type_text + " " + fn.params[i].name;
  }
  out += ")";
  if (fn.body_text.empty()) {
    out += ";\n";
  } else {
    out += "\n{" + fn.body_text + "}\n";
  }
  return out;
}

std::string
RenderVar(const CVarDef& var)
{
  std::string out;
  if (var.is_static) out += "static ";
  out += "struct " + var.type_name + " " + var.name;
  if (!var.init.empty()) {
    out += " = {\n";
    for (const CInitEntry& e : var.init) {
      if (e.field.empty()) {
        out += "\t" + e.value_text + ",\n";
      } else {
        out += "\t." + e.field + " = " + e.value_text + ",\n";
      }
    }
    out += "}";
  }
  out += ";\n";
  return out;
}

std::string
RenderMacro(const CMacro& macro)
{
  return "#define " + macro.name + " " + macro.value_text + "\n";
}

std::string
DefinitionIndex::ExtractCode(const std::string& identifier) const
{
  if (const CFunction* fn = FindFunction(identifier)) {
    return RenderFunction(*fn);
  }
  if (const CStructDef* s = FindStruct(identifier)) return RenderStruct(*s);
  if (const CVarDef* v = FindVar(identifier)) return RenderVar(*v);
  if (const CMacro* m = FindMacro(identifier)) return RenderMacro(*m);
  return "";
}

syzlang::ConstTable
DefinitionIndex::BuildConstTable() const
{
  syzlang::ConstTable table;
  for (const auto& f : files_) {
    for (const auto& m : f.macros) {
      if (m.value) table.Define(m.name, *m.value);
    }
    for (const auto& e : f.enums) {
      for (const auto& en : e.enumerators) {
        table.Define(en.name, en.value);
      }
    }
  }
  return table;
}

}  // namespace kernelgpt::ksrc
