/// \file
/// Lexer for the C subset in which the synthetic kernel corpus is written.

#ifndef KERNELGPT_KSRC_CLEXER_H_
#define KERNELGPT_KSRC_CLEXER_H_

#include <string>
#include <vector>

#include "ksrc/ctoken.h"

namespace kernelgpt::ksrc {

/// Tokenizes C source. Preprocessor lines become single kDirective tokens;
/// comments are preserved as kComment tokens (textual information matters
/// to the analysis LLM, per the paper's L-3 discussion). The stream ends
/// with kEof.
std::vector<CToken> CLex(const std::string& source);

/// Like CLex but drops comments; used by structural passes.
std::vector<CToken> CLexNoComments(const std::string& source);

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_CLEXER_H_
