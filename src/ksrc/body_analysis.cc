#include "ksrc/body_analysis.h"

#include <unordered_set>

#include "util/strings.h"

namespace kernelgpt::ksrc {

namespace {

/// C keywords and kernel helpers that are never "interesting" callees.
const std::unordered_set<std::string>&
BoringCallees()
{
  static const std::unordered_set<std::string> kSet = {
      "if",     "for",      "while",  "switch", "return", "sizeof",
      "break",  "continue", "case",   "goto",   "do",     "else",
      "memset", "memcpy",   "strlen", "strcmp", "strncpy", "likely",
      "unlikely",
  };
  return kSet;
}

std::string
JoinTokens(const std::vector<CToken>& tokens, size_t begin, size_t end)
{
  std::vector<std::string> parts;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (tokens[i].kind == CTokKind::kString) {
      parts.push_back("\"" + tokens[i].text + "\"");
    } else {
      parts.push_back(tokens[i].text);
    }
  }
  return util::Join(parts, " ");
}

/// Returns the index just past the matching closing token.
size_t
SkipBalanced(const std::vector<CToken>& toks, size_t open_idx,
             const char* open, const char* close)
{
  int depth = 0;
  for (size_t i = open_idx; i < toks.size(); ++i) {
    if (toks[i].Is(open)) ++depth;
    if (toks[i].Is(close)) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

}  // namespace

std::vector<SwitchInfo>
FindSwitches(const CFunction& fn)
{
  const auto& toks = fn.body_tokens;
  std::vector<SwitchInfo> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].IsIdent("switch")) continue;
    if (i + 1 >= toks.size() || !toks[i + 1].Is("(")) continue;
    size_t subj_end = SkipBalanced(toks, i + 1, "(", ")");
    SwitchInfo info;
    info.subject = JoinTokens(toks, i + 2, subj_end - 1);
    // Body must start with '{'.
    if (subj_end >= toks.size() || !toks[subj_end].Is("{")) continue;
    size_t body_end = SkipBalanced(toks, subj_end, "{", "}");

    // Walk the body for case labels at switch depth.
    size_t j = subj_end + 1;
    int depth = 1;
    while (j < body_end && j < toks.size()) {
      const CToken& t = toks[j];
      if (t.Is("{")) ++depth;
      if (t.Is("}")) --depth;
      if (depth == 1 && t.IsIdent("default")) {
        info.has_default = true;
        ++j;
        continue;
      }
      if (depth == 1 && t.IsIdent("case")) {
        // Label runs until ':'.
        size_t label_begin = j + 1;
        size_t k = label_begin;
        while (k < body_end && !toks[k].Is(":")) ++k;
        SwitchCase arm;
        arm.label = JoinTokens(toks, label_begin, k);
        // Statement tokens until break/return at depth 1 or next case.
        size_t stmt_begin = k + 1;
        size_t m = stmt_begin;
        int inner = 0;
        while (m < body_end) {
          const CToken& s = toks[m];
          if (s.Is("{")) ++inner;
          if (s.Is("}")) {
            if (inner == 0) break;
            --inner;
          }
          if (inner == 0 &&
              (s.IsIdent("case") || s.IsIdent("default"))) {
            break;
          }
          if (inner == 0 && s.IsIdent("break")) {
            ++m;
            break;
          }
          ++m;
        }
        arm.tokens.assign(toks.begin() + static_cast<long>(stmt_begin),
                          toks.begin() + static_cast<long>(m));
        arm.text = JoinTokens(toks, stmt_begin, m);
        info.cases.push_back(std::move(arm));
        j = m;
        continue;
      }
      ++j;
    }
    out.push_back(std::move(info));
    i = subj_end;  // Continue scanning after the subject; nested switches
                   // inside the body are found by the outer loop as well.
  }
  return out;
}

std::vector<CmdModification>
FindCmdModifications(const CFunction& fn)
{
  // Pattern: IDENT '=' MODIFIER '(' IDENT ')' ';'
  static const std::unordered_set<std::string> kModifiers = {
      "_IOC_NR", "_IOC_TYPE", "_IOC_SIZE", "DRM_IOCTL_NR",
  };
  const auto& toks = fn.body_tokens;
  std::vector<CmdModification> out;
  for (size_t i = 0; i + 5 < toks.size(); ++i) {
    if (toks[i].kind != CTokKind::kIdent) continue;
    if (!toks[i + 1].Is("=")) continue;
    if (toks[i + 2].kind != CTokKind::kIdent) continue;
    if (!kModifiers.count(toks[i + 2].text)) continue;
    if (!toks[i + 3].Is("(")) continue;
    if (toks[i + 4].kind != CTokKind::kIdent) continue;
    if (!toks[i + 5].Is(")")) continue;
    CmdModification mod;
    mod.dest = toks[i].text;
    mod.op = toks[i + 2].text;
    mod.src = toks[i + 4].text;
    out.push_back(std::move(mod));
  }
  return out;
}

std::vector<CallSite>
FindCalls(const CFunction& fn)
{
  const auto& toks = fn.body_tokens;
  std::vector<CallSite> out;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != CTokKind::kIdent) continue;
    if (!toks[i + 1].Is("(")) continue;
    if (BoringCallees().count(toks[i].text)) continue;
    // Exclude declarations/casts heuristically: previous token must not be
    // 'struct' and next-prev must not be a type keyword followed by '*'.
    if (i > 0 && (toks[i - 1].IsIdent("struct") || toks[i - 1].IsIdent("union"))) {
      continue;
    }
    size_t end = SkipBalanced(toks, i + 1, "(", ")");
    CallSite call;
    call.callee = toks[i].text;
    call.text = JoinTokens(toks, i, end);
    call.is_return = i > 0 && toks[i - 1].IsIdent("return");
    // Split args at top-level commas.
    int depth = 0;
    size_t arg_begin = i + 2;
    for (size_t j = i + 1; j < end; ++j) {
      if (toks[j].Is("(") || toks[j].Is("[")) ++depth;
      if (toks[j].Is(")") || toks[j].Is("]")) {
        --depth;
        if (depth == 0) {
          if (j > arg_begin) {
            call.args.push_back(JoinTokens(toks, arg_begin, j));
          }
          break;
        }
      }
      if (depth == 1 && toks[j].Is(",")) {
        call.args.push_back(JoinTokens(toks, arg_begin, j));
        arg_begin = j + 1;
      }
    }
    out.push_back(std::move(call));
  }
  return out;
}

std::optional<std::string>
SizeofTypeName(const std::string& text)
{
  std::string_view v = util::Trim(text);
  if (!util::StartsWith(v, "sizeof")) return std::nullopt;
  v.remove_prefix(6);
  v = util::Trim(v);
  if (v.empty() || v.front() != '(' || v.back() != ')') return std::nullopt;
  v = util::Trim(v.substr(1, v.size() - 2));
  if (util::StartsWith(v, "struct ")) v = util::Trim(v.substr(7));
  if (util::StartsWith(v, "union ")) v = util::Trim(v.substr(6));
  if (v.empty()) return std::nullopt;
  return std::string(v);
}

std::vector<UserCopy>
FindUserCopies(const CFunction& fn)
{
  std::vector<UserCopy> out;
  for (const CallSite& call : FindCalls(fn)) {
    bool from = call.callee == "copy_from_user";
    bool to = call.callee == "copy_to_user";
    if (!from && !to) continue;
    if (call.args.size() < 3) continue;
    UserCopy copy;
    copy.from_user = from;
    if (auto type = SizeofTypeName(call.args[2])) copy.type_name = *type;
    // Local var: "& param" or "& s->field".
    std::string target = from ? call.args[0] : call.args[1];
    auto words = util::SplitWhitespace(target);
    if (!words.empty() && words[0] == "&" && words.size() >= 2) {
      copy.dest_var = words[1];
    } else if (!words.empty()) {
      copy.dest_var = words[0];
    }
    out.push_back(std::move(copy));
  }
  return out;
}

bool
BodyMentions(const CFunction& fn, const std::string& identifier)
{
  for (const CToken& t : fn.body_tokens) {
    if (t.kind == CTokKind::kIdent && t.text == identifier) return true;
  }
  return false;
}

}  // namespace kernelgpt::ksrc
