/// \file
/// Corpus-wide definition index — the implementation of the paper's
/// ExtractCode step. Given an identifier (function, struct, variable, or
/// macro name) it retrieves the defining source entity and can render it
/// back to text for inclusion in an analysis prompt.
///
/// The index also performs the duties of syz-extract: it resolves macro
/// values (including Linux _IO/_IOR/_IOW/_IOWR ioctl encodings, which need
/// struct sizes) and exports a syzlang::ConstTable.

#ifndef KERNELGPT_KSRC_DEFINITION_INDEX_H_
#define KERNELGPT_KSRC_DEFINITION_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ksrc/cast.h"
#include "syzlang/const_table.h"

namespace kernelgpt::ksrc {

/// What kind of entity an identifier resolved to.
enum class EntityKind {
  kFunction,
  kStruct,
  kVariable,
  kMacro,
  kEnumerator,
  kNotFound,
};

/// Index over all parsed files of the synthetic kernel.
class DefinitionIndex {
 public:
  DefinitionIndex() = default;

  /// Parses `source` and adds the file to the index.
  void AddSource(const std::string& source, const std::string& path);

  /// Adds an already-parsed file.
  void AddFile(CFile file);

  /// Resolves macro values that need cross-entity information (_IOC forms
  /// and macro-to-macro references). Call once after all files are added.
  void ResolveMacros();

  // -- Lookup --------------------------------------------------------------

  const CStructDef* FindStruct(const std::string& name) const;
  const CFunction* FindFunction(const std::string& name) const;
  const CVarDef* FindVar(const std::string& name) const;
  const CMacro* FindMacro(const std::string& name) const;
  EntityKind Classify(const std::string& identifier) const;

  /// All variables whose (struct) type name matches, across all files —
  /// used by the handler finder to locate file_operations/proto_ops tables.
  std::vector<const CVarDef*> VarsOfType(const std::string& type_name) const;

  /// All parsed files.
  const std::vector<CFile>& files() const { return files_; }

  // -- Evaluation ----------------------------------------------------------

  /// Numeric value of a macro (after ResolveMacros), a literal, or an
  /// enumerator.
  std::optional<uint64_t> ConstValue(const std::string& name) const;

  /// Resolves a string-valued expression such as
  ///   DM_DIR "/" DM_CONTROL_NODE
  /// into "mapper/control". Returns nullopt when any piece is unknown or
  /// non-string.
  std::optional<std::string> ResolveStringExpr(const std::string& expr) const;

  /// sizeof for the C subset: scalar typedefs (u8..u64, int, long, char,
  /// __u32 etc.), pointers (8), arrays, and nested structs. Returns 0 for
  /// unknown types.
  uint64_t SizeOf(const std::string& type_text) const;

  /// Size of one struct definition in bytes (no padding; the corpus uses
  /// naturally ordered fields so this matches an unpacked layout closely
  /// enough for _IOC size encoding).
  uint64_t StructSize(const CStructDef& def) const;

  // -- Rendering (ExtractCode) ---------------------------------------------

  /// Renders the defining entity of `identifier` back to C text, or "" if
  /// unknown. Structs include member comments; functions include their
  /// signature and body.
  std::string ExtractCode(const std::string& identifier) const;

  /// Exports all numeric macros and enumerators as a syzlang const table.
  syzlang::ConstTable BuildConstTable() const;

 private:
  std::optional<uint64_t> EvalMacroText(const std::string& text,
                                        int depth) const;

  std::vector<CFile> files_;
};

/// Renders one struct definition to C text.
std::string RenderStruct(const CStructDef& def);

/// Renders one function (signature + body) to C text.
std::string RenderFunction(const CFunction& fn);

/// Renders one variable definition (with initializer) to C text.
std::string RenderVar(const CVarDef& var);

/// Renders one macro as a #define line.
std::string RenderMacro(const CMacro& macro);

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_DEFINITION_INDEX_H_
