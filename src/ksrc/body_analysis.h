/// \file
/// Token-level analyses of function bodies. These are the shared
/// primitives from which both the rule-based baseline (SyzDescribe-like)
/// and the simulated analysis LLM derive their understanding — they differ
/// only in *which* of these facts their capability profile lets them use.

#ifndef KERNELGPT_KSRC_BODY_ANALYSIS_H_
#define KERNELGPT_KSRC_BODY_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "ksrc/cast.h"

namespace kernelgpt::ksrc {

/// One `case LABEL:` arm of a switch with its statement tokens.
struct SwitchCase {
  std::string label;           ///< Macro/enumerator name or literal text.
  std::vector<CToken> tokens;  ///< Tokens of the arm until break/return.
  std::string text;            ///< Raw-ish rendering of the arm.
};

/// A `switch (expr) { ... }` in a function body.
struct SwitchInfo {
  std::string subject;  ///< The switched expression, e.g. "cmd".
  std::vector<SwitchCase> cases;
  bool has_default = false;
};

/// An assignment that modifies a command variable, e.g.
/// `cmd = _IOC_NR(command);` — the pattern SyzDescribe mishandles.
struct CmdModification {
  std::string dest;  ///< Variable assigned, e.g. "cmd".
  std::string op;    ///< Modifier, e.g. "_IOC_NR".
  std::string src;   ///< Source variable, e.g. "command".
};

/// A call expression `callee(arg0, arg1, ...)`.
struct CallSite {
  std::string callee;
  std::vector<std::string> args;  ///< Raw argument text.
  std::string text;               ///< Full call rendering.
  bool is_return = false;         ///< True for `return callee(...);`.
};

/// A copy_from_user / copy_to_user with a recognizable payload type, e.g.
/// `copy_from_user(&param, argp, sizeof(struct dm_ioctl))`.
struct UserCopy {
  bool from_user = false;
  std::string type_name;  ///< Payload struct name ("dm_ioctl").
  std::string dest_var;   ///< Local variable copied into/out of.
};

/// Finds all top-level and nested switches in the body.
std::vector<SwitchInfo> FindSwitches(const CFunction& fn);

/// Finds command-variable modifications (`x = _IOC_NR(y)` and similar).
std::vector<CmdModification> FindCmdModifications(const CFunction& fn);

/// Finds all call sites (excluding C keywords and operators).
std::vector<CallSite> FindCalls(const CFunction& fn);

/// Finds copy_from_user/copy_to_user sites with sizeof payloads.
std::vector<UserCopy> FindUserCopies(const CFunction& fn);

/// True if the body contains the identifier anywhere.
bool BodyMentions(const CFunction& fn, const std::string& identifier);

/// Extracts the struct type name out of `sizeof(struct X)` / `sizeof(X)`
/// argument text; nullopt when the text is not a sizeof expression.
std::optional<std::string> SizeofTypeName(const std::string& text);

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_BODY_ANALYSIS_H_
