#include "ksrc/cparser.h"

#include <cctype>

#include "ksrc/clexer.h"
#include "util/strings.h"

namespace kernelgpt::ksrc {

namespace {

// Linux ioctl command encoding (asm-generic/ioctl.h).
constexpr uint64_t kIocNrBits = 8;
constexpr uint64_t kIocTypeBits = 8;
constexpr uint64_t kIocSizeBits = 14;
constexpr uint64_t kIocNrShift = 0;
constexpr uint64_t kIocTypeShift = kIocNrShift + kIocNrBits;
constexpr uint64_t kIocSizeShift = kIocTypeShift + kIocTypeBits;
constexpr uint64_t kIocDirShift = kIocSizeShift + kIocSizeBits;
constexpr uint64_t kIocNone = 0;
constexpr uint64_t kIocWrite = 1;
constexpr uint64_t kIocRead = 2;

/// Strips comment markers from a raw comment token.
std::string
CleanComment(const std::string& raw)
{
  std::string s = raw;
  if (util::StartsWith(s, "/*")) s = s.substr(2);
  if (util::EndsWith(s, "*/")) s = s.substr(0, s.size() - 2);
  if (util::StartsWith(s, "//")) s = s.substr(2);
  return std::string(util::Trim(s));
}

/// Structural parser over a comment-free token stream. Comments are
/// collected separately and re-attached to declarations by line number:
/// the synthetic corpus renders doc comments on the line above a
/// declaration and field comments on the same line as the field.
class CParserImpl {
 public:
  CParserImpl(const std::string& source, CFile* out)
      : source_(source), out_(out) {
    for (CToken& t : CLex(source)) {
      if (t.kind == CTokKind::kComment) {
        comments_.push_back(std::move(t));
      } else {
        tokens_.push_back(std::move(t));
      }
    }
  }

  void Run() {
    while (!AtEof()) {
      const CToken& t = Peek();
      if (t.kind == CTokKind::kDirective) {
        int line = t.line;
        ParseDirective(Advance().text, line);
        continue;
      }
      if (t.kind == CTokKind::kIdent) {
        if (!ParseTopLevel()) SkipTopLevel();
        continue;
      }
      Diag(util::Format("line %d: skipping unexpected token '%s'", t.line,
                        t.text.c_str()));
      Advance();
    }
  }

 private:
  // -- Token plumbing ------------------------------------------------------

  const CToken& Peek(int offset = 0) const {
    size_t idx = pos_ + static_cast<size_t>(offset);
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }

  const CToken& Advance() {
    const CToken& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool AtEof() const { return tokens_[pos_].kind == CTokKind::kEof; }

  void Diag(std::string message) {
    out_->diagnostics.push_back(std::move(message));
  }

  /// Comment starting exactly on `line`, cleaned of markers.
  std::string CommentOnLine(int line) const {
    for (const CToken& c : comments_) {
      if (c.line == line) return CleanComment(c.text);
    }
    return "";
  }

  /// Doc comment immediately above a declaration at `line` (within two
  /// lines, to allow for multi-line block comments).
  std::string DocCommentAbove(int line) const {
    for (int delta = 1; delta <= 3; ++delta) {
      std::string c = CommentOnLine(line - delta);
      if (!c.empty()) return c;
    }
    return "";
  }

  void SkipTopLevel() {
    int depth = 0;
    while (!AtEof()) {
      const CToken& t = Advance();
      if (t.Is("{")) ++depth;
      if (t.Is("}")) {
        if (depth > 0) --depth;
        if (depth == 0) {
          if (Peek().Is(";")) Advance();
          return;
        }
      }
      if (t.Is(";") && depth == 0) return;
    }
  }

  // -- Directives ----------------------------------------------------------

  void ParseDirective(const std::string& text, int line) {
    std::string_view body = util::Trim(text);
    if (!util::StartsWith(body, "#")) return;
    body.remove_prefix(1);
    body = util::Trim(body);
    if (!util::StartsWith(body, "define")) return;
    body.remove_prefix(6);
    body = util::Trim(body);
    size_t name_end = 0;
    while (name_end < body.size() &&
           (std::isalnum(static_cast<unsigned char>(body[name_end])) ||
            body[name_end] == '_')) {
      ++name_end;
    }
    if (name_end == 0) return;
    CMacro macro;
    macro.name = std::string(body.substr(0, name_end));
    macro.value_text = std::string(util::Trim(body.substr(name_end)));
    macro.line = line;
    macro.value = EvalSimple(macro.value_text);
    out_->macros.push_back(std::move(macro));
  }

  /// Evaluates trivially-constant macro bodies (literals, parenthesized
  /// literals, references to earlier macros). _IOC forms need struct sizes
  /// and are resolved later by the definition index.
  std::optional<uint64_t> EvalSimple(const std::string& value) {
    std::string inner(util::Trim(value));
    while (inner.size() >= 2 && inner.front() == '(' && inner.back() == ')') {
      inner = std::string(
          util::Trim(std::string_view(inner).substr(1, inner.size() - 2)));
    }
    if (auto lit = ParseUint(inner)) return lit;
    for (const CMacro& m : out_->macros) {
      if (m.name == inner) return m.value;
    }
    return std::nullopt;
  }

  static std::optional<uint64_t> ParseUint(const std::string& text) {
    if (text.empty()) return std::nullopt;
    uint64_t value = 0;
    bool any = false;
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
      for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        if (c == 'u' || c == 'U' || c == 'l' || c == 'L') continue;
        if (!std::isxdigit(static_cast<unsigned char>(c))) return std::nullopt;
        value = value * 16 +
                static_cast<uint64_t>(
                    std::isdigit(static_cast<unsigned char>(c))
                        ? c - '0'
                        : std::tolower(static_cast<unsigned char>(c)) - 'a' +
                              10);
        any = true;
      }
      return any ? std::optional<uint64_t>(value) : std::nullopt;
    }
    for (char c : text) {
      if (c == 'u' || c == 'U' || c == 'l' || c == 'L') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 10 + static_cast<uint64_t>(c - '0');
      any = true;
    }
    return any ? std::optional<uint64_t>(value) : std::nullopt;
  }

  // -- Top-level constructs ------------------------------------------------

  bool ParseTopLevel() {
    size_t save = pos_;
    bool is_static = false;
    while (Peek().IsIdent("static") || Peek().IsIdent("const") ||
           Peek().IsIdent("inline")) {
      if (Peek().IsIdent("static")) is_static = true;
      Advance();
    }

    if (Peek().IsIdent("enum") && Peek(2).Is("{")) return ParseEnum();

    if (Peek().IsIdent("struct") || Peek().IsIdent("union")) {
      bool is_union = Peek().IsIdent("union");
      if (Peek(1).kind == CTokKind::kIdent && Peek(2).Is("{")) {
        int line = Peek().line;
        Advance();  // struct/union keyword
        std::string name = Advance().text;
        return ParseStructBody(name, is_union, line);
      }
    }

    // Parse: <type tokens> NAME followed by '(', '=', ';' or '['.
    std::vector<std::string> type_tokens;
    std::string name;
    int line = Peek().line;
    while (!AtEof()) {
      const CToken& t = Peek();
      if (t.kind == CTokKind::kIdent || t.Is("*")) {
        const CToken& nxt = Peek(1);
        if (t.kind == CTokKind::kIdent &&
            (nxt.Is("(") || nxt.Is("=") || nxt.Is(";") || nxt.Is("["))) {
          name = Advance().text;
          break;
        }
        type_tokens.push_back(Advance().text);
        continue;
      }
      pos_ = save;
      return false;
    }
    if (name.empty() || type_tokens.empty()) {
      pos_ = save;
      return false;
    }
    std::string type_text = util::Join(type_tokens, " ");

    if (Peek().Is("(")) return ParseFunction(type_text, name, is_static, line);
    return ParseVariable(type_text, name, is_static, line);
  }

  bool ParseEnum() {
    int line = Peek().line;
    Advance();  // enum
    CEnum e;
    e.line = line;
    if (Peek().kind == CTokKind::kIdent) e.name = Advance().text;
    if (!Peek().Is("{")) return false;
    Advance();
    uint64_t next_value = 0;
    while (!AtEof() && !Peek().Is("}")) {
      if (Peek().Is(",")) {
        Advance();
        continue;
      }
      if (Peek().kind != CTokKind::kIdent) return false;
      CEnumerator en;
      en.name = Advance().text;
      if (Peek().Is("=")) {
        Advance();
        if (Peek().kind == CTokKind::kNumber) {
          next_value = Advance().number;
        } else {
          while (!AtEof() && !Peek().Is(",") && !Peek().Is("}")) Advance();
        }
      }
      en.value = next_value++;
      e.enumerators.push_back(std::move(en));
    }
    if (!Peek().Is("}")) return false;
    Advance();
    if (Peek().Is(";")) Advance();
    out_->enums.push_back(std::move(e));
    return true;
  }

  bool ParseStructBody(const std::string& name, bool is_union, int line) {
    CStructDef def;
    def.name = name;
    def.is_union = is_union;
    def.comment = DocCommentAbove(line);
    def.line = line;
    if (!Peek().Is("{")) return false;
    Advance();
    while (!AtEof() && !Peek().Is("}")) {
      CStructField field;
      int field_line = Peek().line;
      if (!ParseStructField(&field)) return false;
      field.comment = CommentOnLine(field_line);
      def.fields.push_back(std::move(field));
    }
    if (!Peek().Is("}")) return false;
    Advance();
    if (Peek().Is(";")) Advance();
    out_->structs.push_back(std::move(def));
    return true;
  }

  bool ParseStructField(CStructField* out) {
    std::vector<std::string> type_tokens;
    for (;;) {
      const CToken& t = Peek();
      if (t.Is("*")) {
        out->is_pointer = true;
        Advance();
        continue;
      }
      if (t.kind != CTokKind::kIdent) return false;
      const CToken& nxt = Peek(1);
      if (nxt.Is(";") || nxt.Is("[")) {
        out->name = Advance().text;
        break;
      }
      type_tokens.push_back(Advance().text);
    }
    out->type_text = util::Join(type_tokens, " ");
    if (Peek().Is("[")) {
      Advance();
      if (Peek().Is("]")) {
        out->array_len = 0;  // Flexible array member.
      } else if (Peek().kind == CTokKind::kNumber) {
        out->array_len = static_cast<int64_t>(Advance().number);
      } else if (Peek().kind == CTokKind::kIdent) {
        out->array_len_text = Advance().text;
        out->array_len = -1;
      } else {
        return false;
      }
      if (!Peek().Is("]")) return false;
      Advance();
    }
    if (!Peek().Is(";")) return false;
    Advance();
    return true;
  }

  bool ParseVariable(const std::string& type_text, const std::string& name,
                     bool is_static, int line) {
    CVarDef var;
    auto words = util::SplitWhitespace(type_text);
    var.type_name = words.empty() ? type_text : words.back();
    var.name = name;
    var.is_static = is_static;
    var.line = line;

    if (Peek().Is(";")) {
      Advance();
      out_->vars.push_back(std::move(var));
      return true;
    }
    if (Peek().Is("[")) {
      while (!AtEof() && !Peek().Is("=") && !Peek().Is(";")) Advance();
      if (Peek().Is(";")) {
        Advance();
        out_->vars.push_back(std::move(var));
        return true;
      }
    }
    if (!Peek().Is("=")) return false;
    Advance();
    if (!Peek().Is("{")) {
      CInitEntry entry;
      entry.field = "";
      entry.value_text = CollectValueText({";"});
      var.init.push_back(std::move(entry));
      if (Peek().Is(";")) Advance();
      out_->vars.push_back(std::move(var));
      return true;
    }
    Advance();  // '{'
    while (!AtEof() && !Peek().Is("}")) {
      if (Peek().Is(",")) {
        Advance();
        continue;
      }
      if (Peek().Is(".")) {
        Advance();
        if (Peek().kind != CTokKind::kIdent) return false;
        CInitEntry entry;
        entry.field = Advance().text;
        if (!Peek().Is("=")) return false;
        Advance();
        entry.value_text = CollectValueText({",", "}"});
        var.init.push_back(std::move(entry));
        continue;
      }
      CInitEntry entry;
      entry.field = "";
      entry.value_text = CollectValueText({",", "}"});
      var.init.push_back(std::move(entry));
    }
    if (!Peek().Is("}")) return false;
    Advance();
    if (Peek().Is(";")) Advance();
    out_->vars.push_back(std::move(var));
    return true;
  }

  /// Collects raw token text until one of `stops` at nesting depth 0.
  std::string CollectValueText(const std::vector<std::string>& stops) {
    std::vector<std::string> parts;
    int depth = 0;
    while (!AtEof()) {
      const CToken& t = Peek();
      if (depth == 0 && t.kind == CTokKind::kPunct) {
        for (const auto& s : stops) {
          if (t.text == s) return util::Join(parts, " ");
        }
      }
      if (t.Is("(") || t.Is("{") || t.Is("[")) ++depth;
      if (t.Is(")") || t.Is("}") || t.Is("]")) --depth;
      if (t.kind == CTokKind::kString) {
        parts.push_back("\"" + t.text + "\"");
      } else {
        parts.push_back(t.text);
      }
      Advance();
    }
    return util::Join(parts, " ");
  }

  bool ParseFunction(const std::string& return_type, const std::string& name,
                     bool is_static, int line) {
    CFunction fn;
    fn.return_type = return_type;
    fn.name = name;
    fn.is_static = is_static;
    fn.comment = DocCommentAbove(line);
    fn.line = line;

    if (!Peek().Is("(")) return false;
    Advance();
    std::vector<std::string> current;
    bool current_has_ptr = false;
    auto flush_param = [&]() {
      if (current.empty()) return;
      CParam p;
      p.name = current.back();
      current.pop_back();
      if (current_has_ptr) current.push_back("*");
      p.type_text = util::Join(current, " ");
      fn.params.push_back(std::move(p));
      current.clear();
      current_has_ptr = false;
    };
    int depth = 1;
    while (!AtEof() && depth > 0) {
      const CToken& t = Advance();
      if (t.Is("(")) ++depth;
      if (t.Is(")")) {
        --depth;
        if (depth == 0) break;
      }
      if (depth == 1 && t.Is(",")) {
        flush_param();
        continue;
      }
      if (t.Is("*")) {
        current_has_ptr = true;
        continue;
      }
      if (t.kind == CTokKind::kIdent && !t.IsIdent("void")) {
        current.push_back(t.text);
      }
    }
    flush_param();

    if (Peek().Is(";")) {
      Advance();
      out_->functions.push_back(std::move(fn));
      return true;
    }
    if (!Peek().Is("{")) return false;
    size_t body_begin = Peek().end;  // Just after '{'.
    Advance();
    int braces = 1;
    size_t body_end = body_begin;
    size_t body_tok_begin = pos_;
    while (!AtEof() && braces > 0) {
      const CToken& t = Advance();
      if (t.Is("{")) ++braces;
      if (t.Is("}")) {
        --braces;
        if (braces == 0) {
          body_end = t.begin;
          break;
        }
      }
    }
    fn.body_text = source_.substr(body_begin, body_end - body_begin);
    fn.body_tokens.assign(tokens_.begin() + static_cast<long>(body_tok_begin),
                          tokens_.begin() + static_cast<long>(pos_) - 1);
    out_->functions.push_back(std::move(fn));
    return true;
  }

  const std::string& source_;
  std::vector<CToken> tokens_;
  std::vector<CToken> comments_;
  size_t pos_ = 0;
  CFile* out_;
};

}  // namespace

std::string
CVarDef::InitFor(const std::string& field) const
{
  for (const CInitEntry& e : init) {
    if (e.field == field) return e.value_text;
  }
  return "";
}

const CStructDef*
CFile::FindStruct(const std::string& name) const
{
  for (const auto& s : structs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CFunction*
CFile::FindFunction(const std::string& name) const
{
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const CVarDef*
CFile::FindVar(const std::string& name) const
{
  for (const auto& v : vars) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const CMacro*
CFile::FindMacro(const std::string& name) const
{
  for (const auto& m : macros) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

CFile
CParse(const std::string& source, const std::string& path)
{
  CFile file;
  file.path = path;
  CParserImpl impl(source, &file);
  impl.Run();
  return file;
}

uint64_t
IoctlNumber(char dir_read, char dir_write, uint64_t type, uint64_t nr,
            uint64_t size)
{
  uint64_t dir = kIocNone;
  if (dir_read == 'r') dir |= kIocRead;
  if (dir_write == 'w') dir |= kIocWrite;
  return (dir << kIocDirShift) | (type << kIocTypeShift) |
         (nr << kIocNrShift) | (size << kIocSizeShift);
}

uint64_t
IocNr(uint64_t cmd)
{
  return (cmd >> kIocNrShift) & ((1ULL << kIocNrBits) - 1);
}

uint64_t
IocType(uint64_t cmd)
{
  return (cmd >> kIocTypeShift) & ((1ULL << kIocTypeBits) - 1);
}

uint64_t
IocSize(uint64_t cmd)
{
  return (cmd >> kIocSizeShift) & ((1ULL << kIocSizeBits) - 1);
}

}  // namespace kernelgpt::ksrc
