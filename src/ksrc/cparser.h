/// \file
/// Parser for the kernel C subset. Produces a CFile from source text.

#ifndef KERNELGPT_KSRC_CPARSER_H_
#define KERNELGPT_KSRC_CPARSER_H_

#include <string>

#include "ksrc/cast.h"

namespace kernelgpt::ksrc {

/// Parses one source file. The parser recognizes:
///   - object-like #define (plain literals and _IO/_IOR/_IOW/_IOWR forms),
///   - enum definitions,
///   - struct/union type definitions with scalar/array/pointer members,
///   - variable definitions with designated initializers,
///   - function definitions (bodies retained as token streams).
/// Unrecognized top-level constructs are skipped with a diagnostic.
CFile CParse(const std::string& source, const std::string& path = "");

/// Evaluates Linux's _IO/_IOR/_IOW/_IOWR ioctl-number macros.
/// `size` is the size of the argument type in bytes.
uint64_t IoctlNumber(char dir_read, char dir_write, uint64_t type,
                     uint64_t nr, uint64_t size);

/// _IOC_NR(cmd): extracts the sequence-number bits of an ioctl command.
uint64_t IocNr(uint64_t cmd);

/// _IOC_TYPE(cmd): extracts the magic/type byte of an ioctl command.
uint64_t IocType(uint64_t cmd);

/// _IOC_SIZE(cmd): extracts the encoded payload size of an ioctl command.
uint64_t IocSize(uint64_t cmd);

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_CPARSER_H_
