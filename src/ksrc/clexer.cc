#include "ksrc/clexer.h"

#include <cctype>

namespace kernelgpt::ksrc {

namespace {

bool
IsIdentStart(char c)
{
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
IsIdentChar(char c)
{
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators recognized as single punct tokens, longest
/// match first.
const char* const kMultiOps[] = {
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "->",  "++",  "--",  "+=", "-=", "*=", "/=", "&=", "|=", "^=", "%=",
};

}  // namespace

std::vector<CToken>
CLex(const std::string& source)
{
  std::vector<CToken> tokens;
  int line = 1;
  size_t i = 0;

  size_t token_begin = 0;
  auto push = [&](CTokKind kind, std::string text, uint64_t number = 0) {
    CToken t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = number;
    t.line = line;
    t.begin = token_begin;
    t.end = i;
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    token_begin = i;
    if (c == '#') {
      // Whole preprocessor line (with backslash continuations).
      size_t start = i;
      while (i < source.size() && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size() &&
            source[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      push(CTokKind::kDirective, source.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < source.size() &&
             !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < source.size()) ? i + 2 : source.size();
      push(CTokKind::kComment, source.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      size_t start = i;
      while (i < source.size() && source[i] != '\n') ++i;
      push(CTokKind::kComment, source.substr(start, i - start));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) ++i;
      push(CTokKind::kIdent, source.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      uint64_t value = 0;
      if (c == '0' && i + 1 < source.size() &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < source.size() &&
               std::isxdigit(static_cast<unsigned char>(source[i]))) {
          char d = source[i];
          value = value * 16 +
                  static_cast<uint64_t>(
                      std::isdigit(static_cast<unsigned char>(d))
                          ? d - '0'
                          : std::tolower(static_cast<unsigned char>(d)) - 'a' +
                                10);
          ++i;
        }
      } else {
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          ++i;
        }
      }
      // Swallow integer suffixes (U, L, UL, ULL...).
      while (i < source.size() && (source[i] == 'u' || source[i] == 'U' ||
                                   source[i] == 'l' || source[i] == 'L')) {
        ++i;
      }
      push(CTokKind::kNumber, source.substr(start, i - start), value);
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string text;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          text.push_back(source[i]);
          text.push_back(source[i + 1]);
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;
        text.push_back(source[i]);
        ++i;
      }
      if (i < source.size()) ++i;  // Closing quote.
      (void)start;
      push(CTokKind::kString, std::move(text));
      continue;
    }
    if (c == '\'') {
      size_t start = i++;
      while (i < source.size() && source[i] != '\'') {
        if (source[i] == '\\') ++i;
        ++i;
      }
      if (i < source.size()) ++i;
      push(CTokKind::kCharLit, source.substr(start, i - start));
      continue;
    }
    // Operators / punctuation, longest match first.
    bool matched = false;
    for (const char* op : kMultiOps) {
      size_t n = std::char_traits<char>::length(op);
      if (source.compare(i, n, op) == 0) {
        i += n;
        push(CTokKind::kPunct, op);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    ++i;
    push(CTokKind::kPunct, std::string(1, c));
  }
  token_begin = i;
  push(CTokKind::kEof, "");
  return tokens;
}

std::vector<CToken>
CLexNoComments(const std::string& source)
{
  std::vector<CToken> tokens = CLex(source);
  std::vector<CToken> out;
  out.reserve(tokens.size());
  for (auto& t : tokens) {
    if (t.kind != CTokKind::kComment) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace kernelgpt::ksrc
