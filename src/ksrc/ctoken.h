/// \file
/// Token definitions for the C-subset lexer used to analyze the synthetic
/// kernel corpus (the stand-in for the paper's LLVM-based source extractor).

#ifndef KERNELGPT_KSRC_CTOKEN_H_
#define KERNELGPT_KSRC_CTOKEN_H_

#include <cstdint>
#include <string>

namespace kernelgpt::ksrc {

/// Token categories for the C subset.
enum class CTokKind {
  kIdent,
  kNumber,
  kString,
  kCharLit,
  kPunct,      ///< Any single/multi-char operator or punctuation.
  kComment,    ///< /* ... */ or // ... (retained: LLMs read comments).
  kDirective,  ///< Whole preprocessor line, e.g. "#define FOO 1".
  kEof,
};

/// One token of kernel C source.
struct CToken {
  CTokKind kind = CTokKind::kEof;
  std::string text;     ///< Raw text (identifier, operator, comment body…).
  uint64_t number = 0;  ///< Parsed value for kNumber.
  int line = 0;
  size_t begin = 0;     ///< Byte offset of the token in the source.
  size_t end = 0;       ///< Byte offset one past the token.

  bool Is(const char* punct) const {
    return kind == CTokKind::kPunct && text == punct;
  }
  bool IsIdent(const char* name) const {
    return kind == CTokKind::kIdent && text == name;
  }
};

}  // namespace kernelgpt::ksrc

#endif  // KERNELGPT_KSRC_CTOKEN_H_
