#include "syzlang/ast.h"

namespace kernelgpt::syzlang {

Decl
Decl::Make(ResourceDef d)
{
  Decl out;
  out.kind = DeclKind::kResource;
  out.resource = std::move(d);
  return out;
}

Decl
Decl::Make(SyscallDef d)
{
  Decl out;
  out.kind = DeclKind::kSyscall;
  out.syscall = std::move(d);
  return out;
}

Decl
Decl::Make(StructDef d)
{
  Decl out;
  out.kind = DeclKind::kStruct;
  out.struct_def = std::move(d);
  return out;
}

Decl
Decl::Make(FlagsDef d)
{
  Decl out;
  out.kind = DeclKind::kFlags;
  out.flags = std::move(d);
  return out;
}

Decl
Decl::Make(DefineDef d)
{
  Decl out;
  out.kind = DeclKind::kDefine;
  out.define = std::move(d);
  return out;
}

const std::string&
Decl::Name() const
{
  switch (kind) {
    case DeclKind::kResource: return resource.name;
    case DeclKind::kSyscall: {
      // FullName() returns by value; keep a stable member for generic
      // syscalls and fall through to name for the common case.
      return syscall.variant.empty() ? syscall.name : syscall.variant;
    }
    case DeclKind::kStruct: return struct_def.name;
    case DeclKind::kFlags: return flags.name;
    case DeclKind::kDefine: return define.name;
  }
  return define.name;
}

void
SpecFile::Merge(const SpecFile& other)
{
  decls.insert(decls.end(), other.decls.begin(), other.decls.end());
}

std::vector<const SyscallDef*>
SpecFile::Syscalls() const
{
  std::vector<const SyscallDef*> out;
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kSyscall) out.push_back(&d.syscall);
  }
  return out;
}

std::vector<const StructDef*>
SpecFile::Structs() const
{
  std::vector<const StructDef*> out;
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kStruct) out.push_back(&d.struct_def);
  }
  return out;
}

std::vector<const ResourceDef*>
SpecFile::Resources() const
{
  std::vector<const ResourceDef*> out;
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kResource) out.push_back(&d.resource);
  }
  return out;
}

std::vector<const FlagsDef*>
SpecFile::FlagSets() const
{
  std::vector<const FlagsDef*> out;
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kFlags) out.push_back(&d.flags);
  }
  return out;
}

std::vector<const DefineDef*>
SpecFile::Defines() const
{
  std::vector<const DefineDef*> out;
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kDefine) out.push_back(&d.define);
  }
  return out;
}

const SyscallDef*
SpecFile::FindSyscall(const std::string& full_name) const
{
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kSyscall && d.syscall.FullName() == full_name) {
      return &d.syscall;
    }
  }
  return nullptr;
}

const StructDef*
SpecFile::FindStruct(const std::string& name) const
{
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kStruct && d.struct_def.name == name) {
      return &d.struct_def;
    }
  }
  return nullptr;
}

const ResourceDef*
SpecFile::FindResource(const std::string& name) const
{
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kResource && d.resource.name == name) {
      return &d.resource;
    }
  }
  return nullptr;
}

const FlagsDef*
SpecFile::FindFlags(const std::string& name) const
{
  for (const auto& d : decls) {
    if (d.kind == DeclKind::kFlags && d.flags.name == name) {
      return &d.flags;
    }
  }
  return nullptr;
}

}  // namespace kernelgpt::syzlang
