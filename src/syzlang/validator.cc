#include "syzlang/validator.h"

#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace kernelgpt::syzlang {

namespace {

const std::unordered_set<std::string>&
SupportedSyscalls()
{
  static const std::unordered_set<std::string> kSet = {
      "openat",     "open",    "ioctl",   "read",       "write",
      "close",      "mmap",    "poll",    "socket",     "bind",
      "connect",    "accept",  "listen",  "sendto",     "recvfrom",
      "sendmsg",    "recvmsg", "setsockopt", "getsockopt", "dup",
  };
  return kSet;
}

/// Collected name environment for reference resolution.
struct Scope {
  std::unordered_set<std::string> resources;
  std::unordered_set<std::string> structs;
  std::unordered_set<std::string> flag_sets;
  ConstTable consts;
};

class ValidatorImpl {
 public:
  ValidatorImpl(const SpecFile& spec, const ConstTable& consts,
                const SpecFile* externals, ValidationResult* out)
      : spec_(spec), out_(out) {
    scope_.consts.Merge(consts);
    scope_.resources.insert("fd");  // Builtin.
    CollectScope(spec_);
    if (externals) CollectScope(*externals);
  }

  void Run() {
    CheckDuplicates();
    for (const Decl& d : spec_.decls) {
      switch (d.kind) {
        case DeclKind::kResource: CheckResource(d.resource); break;
        case DeclKind::kSyscall: CheckSyscall(d.syscall); break;
        case DeclKind::kStruct: CheckStruct(d.struct_def); break;
        case DeclKind::kFlags: CheckFlags(d.flags); break;
        case DeclKind::kDefine: break;
      }
    }
    CheckStructRecursion();
  }

 private:
  void AddError(ErrorKind kind, const std::string& decl,
                const std::string& subject, std::string message) {
    out_->errors.push_back({kind, decl, subject, std::move(message)});
  }

  void CollectScope(const SpecFile& spec) {
    for (const Decl& d : spec.decls) {
      switch (d.kind) {
        case DeclKind::kResource: scope_.resources.insert(d.resource.name); break;
        case DeclKind::kStruct: scope_.structs.insert(d.struct_def.name); break;
        case DeclKind::kFlags: scope_.flag_sets.insert(d.flags.name); break;
        case DeclKind::kDefine:
          scope_.consts.Define(d.define.name, d.define.value);
          break;
        case DeclKind::kSyscall: break;
      }
    }
  }

  void CheckDuplicates() {
    std::unordered_set<std::string> seen;
    for (const Decl& d : spec_.decls) {
      std::string key;
      switch (d.kind) {
        case DeclKind::kSyscall: key = "call:" + d.syscall.FullName(); break;
        case DeclKind::kResource: key = "res:" + d.resource.name; break;
        case DeclKind::kStruct: key = "type:" + d.struct_def.name; break;
        case DeclKind::kFlags: key = "flags:" + d.flags.name; break;
        case DeclKind::kDefine: key = "def:" + d.define.name; break;
      }
      if (!seen.insert(key).second) {
        AddError(ErrorKind::kDuplicateDecl, d.Name(), d.Name(),
                 util::Format("duplicate declaration of %s", key.c_str()));
      }
    }
  }

  void CheckResource(const ResourceDef& r) {
    const std::string& base = r.underlying;
    bool ok = base == "fd" || scope_.resources.count(base) ||
              base == "int8" || base == "int16" || base == "int32" ||
              base == "int64" || base == "intptr";
    if (!ok) {
      AddError(ErrorKind::kBadResourceBase, r.name, base,
               util::Format("unknown resource base type '%s' in resource %s",
                            base.c_str(), r.name.c_str()));
    }
    if (base == r.name) {
      AddError(ErrorKind::kBadResourceBase, r.name, base,
               util::Format("resource %s is based on itself", r.name.c_str()));
    }
  }

  void CheckSyscall(const SyscallDef& c) {
    const std::string decl = c.FullName();
    if (!SupportedSyscalls().count(c.name)) {
      AddError(ErrorKind::kUnknownSyscall, decl, c.name,
               util::Format("unknown syscall '%s'", c.name.c_str()));
    }
    if (c.name == "ioctl" || c.name == "read" || c.name == "write" ||
        c.name == "setsockopt" || c.name == "getsockopt") {
      bool fd_first =
          !c.params.empty() &&
          (c.params[0].type.kind == TypeKind::kResource ||
           (c.params[0].type.kind == TypeKind::kStructRef &&
            scope_.resources.count(c.params[0].type.ref_name)));
      if (!fd_first) {
        AddError(ErrorKind::kMissingFdParam, decl,
                 c.params.empty() ? "" : c.params[0].name,
                 util::Format("%s must take a resource (fd) first argument",
                              decl.c_str()));
      }
    }
    for (const Field& p : c.params) {
      CheckType(decl, p.type, c.params);
    }
    if (c.returns_resource && !scope_.resources.count(*c.returns_resource)) {
      AddError(ErrorKind::kUnknownResource, decl, *c.returns_resource,
               util::Format("unknown resource '%s' used as return value of %s",
                            c.returns_resource->c_str(), decl.c_str()));
    }
  }

  void CheckStruct(const StructDef& s) {
    if (s.fields.empty()) {
      AddError(ErrorKind::kEmptyStruct, s.name, s.name,
               util::Format("%s %s has no fields",
                            s.is_union ? "union" : "struct", s.name.c_str()));
    }
    std::unordered_set<std::string> field_names;
    for (const Field& f : s.fields) {
      if (!field_names.insert(f.name).second) {
        AddError(ErrorKind::kDuplicateDecl, s.name, f.name,
                 util::Format("duplicate field '%s' in %s", f.name.c_str(),
                              s.name.c_str()));
      }
      if (s.is_union && f.type.kind == TypeKind::kVoid) {
        AddError(ErrorKind::kDanglingUnion, s.name, f.name,
                 util::Format("union %s arm '%s' has void payload",
                              s.name.c_str(), f.name.c_str()));
      }
      CheckType(s.name, f.type, s.fields);
    }
  }

  void CheckFlags(const FlagsDef& f) {
    for (const std::string& v : f.values) {
      if (!scope_.consts.Resolve(v)) {
        AddError(ErrorKind::kUnknownConst, f.name, v,
                 util::Format("flag value '%s' in %s is not defined",
                              v.c_str(), f.name.c_str()));
      }
    }
  }

  void CheckType(const std::string& decl, const Type& t,
                 const std::vector<Field>& siblings) {
    switch (t.kind) {
      case TypeKind::kInt:
        CheckIntWidth(decl, t.bits);
        if (t.has_range && t.range_hi < t.range_lo) {
          AddError(ErrorKind::kBadIntWidth, decl,
                   util::Format("%lld:%lld", static_cast<long long>(t.range_lo),
                                static_cast<long long>(t.range_hi)),
                   util::Format("empty int range in %s", decl.c_str()));
        }
        break;
      case TypeKind::kConst:
        CheckIntWidth(decl, t.bits);
        if (!scope_.consts.Resolve(t.const_name)) {
          AddError(ErrorKind::kUnknownConst, decl, t.const_name,
                   util::Format("const %s is not defined",
                                t.const_name.c_str()));
        }
        break;
      case TypeKind::kFlags:
        CheckIntWidth(decl, t.bits);
        if (!scope_.flag_sets.count(t.flags_name)) {
          AddError(ErrorKind::kUnknownFlags, decl, t.flags_name,
                   util::Format("unknown flags set '%s'",
                                t.flags_name.c_str()));
        }
        break;
      case TypeKind::kPtr:
        CheckType(decl, t.elems.at(0), siblings);
        break;
      case TypeKind::kArray:
        CheckType(decl, t.elems.at(0), siblings);
        break;
      case TypeKind::kLen:
      case TypeKind::kBytesize: {
        CheckIntWidth(decl, t.bits);
        bool found = t.len_target == "parent";
        for (const Field& f : siblings) {
          if (f.name == t.len_target) found = true;
        }
        if (!found) {
          AddError(ErrorKind::kBadLenTarget, decl, t.len_target,
                   util::Format("len target '%s' does not exist in %s",
                                t.len_target.c_str(), decl.c_str()));
        }
        break;
      }
      case TypeKind::kResource:
        if (!scope_.resources.count(t.ref_name)) {
          AddError(ErrorKind::kUnknownResource, decl, t.ref_name,
                   util::Format("unknown resource '%s'", t.ref_name.c_str()));
        }
        break;
      case TypeKind::kStructRef: {
        // A bare name may legally refer to a struct, union, or resource.
        if (scope_.structs.count(t.ref_name)) break;
        if (scope_.resources.count(t.ref_name)) break;
        AddError(ErrorKind::kUnknownType, decl, t.ref_name,
                 util::Format("type %s is not defined", t.ref_name.c_str()));
        break;
      }
      case TypeKind::kString:
      case TypeKind::kFilename:
      case TypeKind::kVoid:
        break;
    }
  }

  void CheckIntWidth(const std::string& decl, int bits) {
    if (bits != 0 && bits != 8 && bits != 16 && bits != 32 && bits != 64) {
      AddError(ErrorKind::kBadIntWidth, decl, util::Format("int%d", bits),
               util::Format("unsupported int width int%d in %s", bits,
                            decl.c_str()));
    }
  }

  /// Detects structs containing themselves by value (directly or through
  /// arrays/other structs) which would have infinite size.
  void CheckStructRecursion() {
    std::unordered_map<std::string, const StructDef*> by_name;
    for (const StructDef* s : spec_.Structs()) by_name[s->name] = s;

    for (const StructDef* s : spec_.Structs()) {
      std::unordered_set<std::string> stack;
      if (Recurses(s->name, by_name, stack)) {
        AddError(ErrorKind::kRecursiveStruct, s->name, s->name,
                 util::Format("struct %s recursively contains itself by value",
                              s->name.c_str()));
      }
    }
  }

  bool Recurses(const std::string& name,
                const std::unordered_map<std::string, const StructDef*>& defs,
                std::unordered_set<std::string>& stack) {
    if (stack.count(name)) return true;
    auto it = defs.find(name);
    if (it == defs.end()) return false;
    stack.insert(name);
    bool hit = false;
    for (const Field& f : it->second->fields) {
      hit = hit || TypeRecurses(f.type, defs, stack);
    }
    stack.erase(name);
    return hit;
  }

  bool TypeRecurses(const Type& t,
                    const std::unordered_map<std::string, const StructDef*>& defs,
                    std::unordered_set<std::string>& stack) {
    switch (t.kind) {
      case TypeKind::kStructRef:
        return Recurses(t.ref_name, defs, stack);
      case TypeKind::kArray:
        return TypeRecurses(t.elems.at(0), defs, stack);
      case TypeKind::kPtr:
        return false;  // Pointer indirection breaks value recursion.
      default:
        return false;
    }
  }

  const SpecFile& spec_;
  Scope scope_;
  ValidationResult* out_;
};

}  // namespace

const char*
ErrorKindName(ErrorKind kind)
{
  switch (kind) {
    case ErrorKind::kUnknownType: return "unknown-type";
    case ErrorKind::kUnknownConst: return "unknown-const";
    case ErrorKind::kUnknownFlags: return "unknown-flags";
    case ErrorKind::kUnknownResource: return "unknown-resource";
    case ErrorKind::kBadLenTarget: return "bad-len-target";
    case ErrorKind::kDuplicateDecl: return "duplicate-decl";
    case ErrorKind::kEmptyStruct: return "empty-struct";
    case ErrorKind::kRecursiveStruct: return "recursive-struct";
    case ErrorKind::kBadResourceBase: return "bad-resource-base";
    case ErrorKind::kUnknownSyscall: return "unknown-syscall";
    case ErrorKind::kMissingFdParam: return "missing-fd-param";
    case ErrorKind::kBadIntWidth: return "bad-int-width";
    case ErrorKind::kDanglingUnion: return "dangling-union";
  }
  return "unknown";
}

std::vector<ValidationError>
ValidationResult::ForDecl(const std::string& decl) const
{
  std::vector<ValidationError> out;
  for (const auto& e : errors) {
    if (e.decl == decl) out.push_back(e);
  }
  return out;
}

std::vector<std::string>
ValidationResult::ErroredDecls() const
{
  std::vector<std::string> out;
  for (const auto& e : errors) {
    bool seen = false;
    for (const auto& d : out) seen = seen || d == e.decl;
    if (!seen) out.push_back(e.decl);
  }
  return out;
}

bool
IsSupportedSyscall(const std::string& name)
{
  return SupportedSyscalls().count(name);
}

ValidationResult
Validate(const SpecFile& spec, const ConstTable& consts,
         const SpecFile* externals)
{
  ValidationResult result;
  ValidatorImpl impl(spec, consts, externals, &result);
  impl.Run();
  return result;
}

}  // namespace kernelgpt::syzlang
