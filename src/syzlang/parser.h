/// \file
/// Recursive-descent parser turning syzlang text into a SpecFile.

#ifndef KERNELGPT_SYZLANG_PARSER_H_
#define KERNELGPT_SYZLANG_PARSER_H_

#include <string>
#include <vector>

#include "syzlang/ast.h"

namespace kernelgpt::syzlang {

/// Outcome of parsing one specification text.
struct ParseResult {
  SpecFile spec;
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

/// Parses `source` into declarations. Parsing is error-recovering: a bad
/// line is reported and skipped so that later declarations still load
/// (this mirrors syz-extract, which reports all errors in one pass).
ParseResult Parse(const std::string& source, const std::string& origin = "");

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_PARSER_H_
