#include "syzlang/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace kernelgpt::syzlang {

namespace {

bool
IsIdentStart(char c)
{
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
IsIdentChar(char c)
{
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexResult
Lex(const std::string& source)
{
  LexResult result;
  int line = 1;
  int column = 1;
  size_t i = 0;
  bool line_has_token = false;

  auto push = [&](TokKind kind, std::string text = "", uint64_t number = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = number;
    t.line = line;
    t.column = column;
    result.tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      if (line_has_token) push(TokKind::kNewline);
      line_has_token = false;
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++column;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) ++i;
      push(TokKind::kIdent, source.substr(start, i - start));
      column += static_cast<int>(i - start);
      line_has_token = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      uint64_t value = 0;
      if (c == '0' && i + 1 < source.size() &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < source.size() &&
               std::isxdigit(static_cast<unsigned char>(source[i]))) {
          char d = source[i];
          value = value * 16 +
                  static_cast<uint64_t>(
                      std::isdigit(static_cast<unsigned char>(d))
                          ? d - '0'
                          : std::tolower(static_cast<unsigned char>(d)) - 'a' +
                                10);
          ++i;
        }
      } else {
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          ++i;
        }
      }
      push(TokKind::kNumber, source.substr(start, i - start), value);
      column += static_cast<int>(i - start);
      line_has_token = true;
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          break;
        }
        if (source[i] == '\n') break;
        text.push_back(source[i]);
        ++i;
      }
      if (!closed) {
        result.errors.push_back(
            util::Format("line %d: unterminated string literal", line));
      } else {
        ++i;  // Consume closing quote.
      }
      push(TokKind::kString, std::move(text));
      column += static_cast<int>(i - start) + 1;
      line_has_token = true;
      continue;
    }

    TokKind kind;
    switch (c) {
      case '[': kind = TokKind::kLBrack; break;
      case ']': kind = TokKind::kRBrack; break;
      case '(': kind = TokKind::kLParen; break;
      case ')': kind = TokKind::kRParen; break;
      case '{': kind = TokKind::kLBrace; break;
      case '}': kind = TokKind::kRBrace; break;
      case ',': kind = TokKind::kComma; break;
      case '$': kind = TokKind::kDollar; break;
      case '=': kind = TokKind::kEquals; break;
      case ':': kind = TokKind::kColon; break;
      default:
        result.errors.push_back(
            util::Format("line %d: unexpected character '%c'", line, c));
        ++i;
        ++column;
        continue;
    }
    push(kind, std::string(1, c));
    ++i;
    ++column;
    line_has_token = true;
  }
  if (line_has_token) push(TokKind::kNewline);
  push(TokKind::kEof);
  return result;
}

}  // namespace kernelgpt::syzlang
