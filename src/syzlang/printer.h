/// \file
/// Pretty-printer rendering a SpecFile back to canonical syzlang text.
/// Parse(Print(spec)) round-trips for every well-formed spec.

#ifndef KERNELGPT_SYZLANG_PRINTER_H_
#define KERNELGPT_SYZLANG_PRINTER_H_

#include <string>

#include "syzlang/ast.h"

namespace kernelgpt::syzlang {

/// Renders one type expression (e.g. "ptr[inout, dm_ioctl]").
std::string PrintType(const Type& type);

/// Renders one field ("name type" plus optional "(out)").
std::string PrintField(const Field& field);

/// Renders one declaration (no trailing blank line).
std::string PrintDecl(const Decl& decl);

/// Renders a full specification file.
std::string Print(const SpecFile& spec);

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_PRINTER_H_
