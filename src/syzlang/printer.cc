#include "syzlang/printer.h"

#include "util/strings.h"

namespace kernelgpt::syzlang {

namespace {

std::string
IntName(int bits)
{
  if (bits == 0) return "intptr";
  return util::Format("int%d", bits);
}

}  // namespace

std::string
PrintType(const Type& type)
{
  switch (type.kind) {
    case TypeKind::kInt: {
      std::string out = IntName(type.bits);
      if (type.has_range) {
        out += util::Format("[%lld:%lld]", static_cast<long long>(type.range_lo),
                            static_cast<long long>(type.range_hi));
      }
      return out;
    }
    case TypeKind::kConst:
      if (type.bits == 32) {
        return util::Format("const[%s]", type.const_name.c_str());
      }
      return util::Format("const[%s, %s]", type.const_name.c_str(),
                          IntName(type.bits).c_str());
    case TypeKind::kFlags:
      if (type.bits == 32) {
        return util::Format("flags[%s]", type.flags_name.c_str());
      }
      return util::Format("flags[%s, %s]", type.flags_name.c_str(),
                          IntName(type.bits).c_str());
    case TypeKind::kPtr:
      return util::Format("ptr[%s, %s]", DirName(type.dir),
                          PrintType(type.elems.at(0)).c_str());
    case TypeKind::kArray:
      if (type.array_len == 0) {
        return util::Format("array[%s]", PrintType(type.elems.at(0)).c_str());
      }
      return util::Format("array[%s, %llu]",
                          PrintType(type.elems.at(0)).c_str(),
                          static_cast<unsigned long long>(type.array_len));
    case TypeKind::kString:
      if (type.str_literal.empty()) return "string";
      return util::Format("string[\"%s\"]", type.str_literal.c_str());
    case TypeKind::kLen:
      if (type.bits == 32) {
        return util::Format("len[%s]", type.len_target.c_str());
      }
      return util::Format("len[%s, %s]", type.len_target.c_str(),
                          IntName(type.bits).c_str());
    case TypeKind::kBytesize:
      if (type.bits == 32) {
        return util::Format("bytesize[%s]", type.len_target.c_str());
      }
      return util::Format("bytesize[%s, %s]", type.len_target.c_str(),
                          IntName(type.bits).c_str());
    case TypeKind::kResource:
    case TypeKind::kStructRef:
      return type.ref_name;
    case TypeKind::kFilename:
      return "filename";
    case TypeKind::kVoid:
      return "void";
  }
  return "void";
}

std::string
PrintField(const Field& field)
{
  std::string out = field.name + " " + PrintType(field.type);
  if (field.is_out) out += " (out)";
  return out;
}

std::string
PrintDecl(const Decl& decl)
{
  switch (decl.kind) {
    case DeclKind::kResource:
      return util::Format("resource %s[%s]", decl.resource.name.c_str(),
                          decl.resource.underlying.c_str());
    case DeclKind::kDefine:
      return util::Format("define %s %llu", decl.define.name.c_str(),
                          static_cast<unsigned long long>(decl.define.value));
    case DeclKind::kFlags: {
      std::string out = decl.flags.name + " = ";
      out += util::Join(decl.flags.values, ", ");
      return out;
    }
    case DeclKind::kStruct: {
      const StructDef& s = decl.struct_def;
      std::string out = s.name;
      out += s.is_union ? " [\n" : " {\n";
      for (const Field& f : s.fields) {
        out += "\t" + PrintField(f) + "\n";
      }
      out += s.is_union ? "]" : "}";
      return out;
    }
    case DeclKind::kSyscall: {
      const SyscallDef& c = decl.syscall;
      std::string out = c.FullName() + "(";
      for (size_t i = 0; i < c.params.size(); ++i) {
        if (i) out += ", ";
        out += PrintField(c.params[i]);
      }
      out += ")";
      if (c.returns_resource) out += " " + *c.returns_resource;
      return out;
    }
  }
  return "";
}

std::string
Print(const SpecFile& spec)
{
  std::string out;
  if (!spec.origin.empty()) {
    out += "# origin: " + spec.origin + "\n\n";
  }
  for (const Decl& d : spec.decls) {
    out += PrintDecl(d);
    out += "\n";
    if (d.kind == DeclKind::kStruct) out += "\n";
  }
  return out;
}

}  // namespace kernelgpt::syzlang
