/// \file
/// Declaration-level AST of the syzlang-like DSL: resources, syscalls,
/// structs/unions, flag sets, and constant defines, plus the SpecFile
/// container that holds one specification.

#ifndef KERNELGPT_SYZLANG_AST_H_
#define KERNELGPT_SYZLANG_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "syzlang/types.h"

namespace kernelgpt::syzlang {

/// `resource fd_dm[fd]` — a kernel object flowing between syscalls.
struct ResourceDef {
  std::string name;
  /// Underlying representation: "fd", another resource, or intN.
  std::string underlying;

  bool operator==(const ResourceDef& other) const {
    return name == other.name && underlying == other.underlying;
  }
};

/// `openat$dm(...) fd_dm` — one (possibly specialized) syscall description.
struct SyscallDef {
  /// Base syscall name, e.g. "ioctl".
  std::string name;
  /// Specialization after '$', e.g. "DM_DEV_CREATE"; empty when generic.
  std::string variant;
  std::vector<Field> params;
  /// Resource produced by the return value, if any.
  std::optional<std::string> returns_resource;

  /// Full display name, e.g. "ioctl$DM_DEV_CREATE".
  std::string FullName() const {
    return variant.empty() ? name : name + "$" + variant;
  }

  bool operator==(const SyscallDef& other) const {
    return name == other.name && variant == other.variant &&
           params == other.params && returns_resource == other.returns_resource;
  }
};

/// `dm_ioctl { ... }` or `u [ ... ]` — a record type.
struct StructDef {
  std::string name;
  bool is_union = false;
  std::vector<Field> fields;

  bool operator==(const StructDef& other) const {
    return name == other.name && is_union == other.is_union &&
           fields == other.fields;
  }
};

/// `open_flags = O_RDONLY, O_RDWR, 0x2` — a named flag set.
struct FlagsDef {
  std::string name;
  /// Symbolic constant names or numeric literal renderings.
  std::vector<std::string> values;

  bool operator==(const FlagsDef& other) const {
    return name == other.name && values == other.values;
  }
};

/// `define DM_NAME_LEN 128` — an inline constant definition.
struct DefineDef {
  std::string name;
  uint64_t value = 0;

  bool operator==(const DefineDef& other) const {
    return name == other.name && value == other.value;
  }
};

/// Discriminator for Decl.
enum class DeclKind {
  kResource,
  kSyscall,
  kStruct,
  kFlags,
  kDefine,
};

/// One top-level declaration (tagged union with value semantics).
struct Decl {
  DeclKind kind = DeclKind::kDefine;
  ResourceDef resource;
  SyscallDef syscall;
  StructDef struct_def;
  FlagsDef flags;
  DefineDef define;

  static Decl Make(ResourceDef d);
  static Decl Make(SyscallDef d);
  static Decl Make(StructDef d);
  static Decl Make(FlagsDef d);
  static Decl Make(DefineDef d);

  /// Name of whatever this declares (syscalls use their full name).
  const std::string& Name() const;
};

/// One specification "file": an ordered list of declarations.
struct SpecFile {
  /// Provenance label (e.g. driver name or generator id); not semantic.
  std::string origin;
  std::vector<Decl> decls;

  // -- Convenience accessors and builders ---------------------------------

  void Add(ResourceDef d) { decls.push_back(Decl::Make(std::move(d))); }
  void Add(SyscallDef d) { decls.push_back(Decl::Make(std::move(d))); }
  void Add(StructDef d) { decls.push_back(Decl::Make(std::move(d))); }
  void Add(FlagsDef d) { decls.push_back(Decl::Make(std::move(d))); }
  void Add(DefineDef d) { decls.push_back(Decl::Make(std::move(d))); }

  /// Appends all declarations of `other` (no dedup).
  void Merge(const SpecFile& other);

  std::vector<const SyscallDef*> Syscalls() const;
  std::vector<const StructDef*> Structs() const;
  std::vector<const ResourceDef*> Resources() const;
  std::vector<const FlagsDef*> FlagSets() const;
  std::vector<const DefineDef*> Defines() const;

  const SyscallDef* FindSyscall(const std::string& full_name) const;
  const StructDef* FindStruct(const std::string& name) const;
  const ResourceDef* FindResource(const std::string& name) const;
  const FlagsDef* FindFlags(const std::string& name) const;
};

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_AST_H_
