#include "syzlang/parser.h"

#include "syzlang/lexer.h"
#include "util/strings.h"

namespace kernelgpt::syzlang {

namespace {

/// Stateful token-stream parser with one-declaration error recovery.
class Parser {
 public:
  Parser(std::vector<Token> tokens, ParseResult* out)
      : tokens_(std::move(tokens)), out_(out) {}

  void Run() {
    while (!AtEof()) {
      if (Check(TokKind::kNewline)) {
        Advance();
        continue;
      }
      if (!ParseDecl()) SkipToLineEnd();
    }
  }

 private:
  // -- Token plumbing ------------------------------------------------------

  const Token& Peek(int offset = 0) const {
    size_t idx = pos_ + static_cast<size_t>(offset);
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool Expect(TokKind kind, const char* what) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    Error(util::Format("expected %s", what));
    return false;
  }

  void Error(const std::string& message) {
    out_->errors.push_back(
        util::Format("line %d: %s", Peek().line, message.c_str()));
  }

  void SkipToLineEnd() {
    // Skip to the end of the current top-level declaration. Consume brace
    // and bracket blocks so that a bad struct does not desync the parser.
    int depth = 0;
    while (!AtEof()) {
      const Token& t = Advance();
      if (t.kind == TokKind::kLBrace) ++depth;
      if (t.kind == TokKind::kRBrace && depth > 0) --depth;
      if (t.kind == TokKind::kNewline && depth == 0) return;
    }
  }

  // -- Grammar -------------------------------------------------------------

  bool ParseDecl() {
    if (!Check(TokKind::kIdent)) {
      Error("expected declaration");
      return false;
    }
    const std::string head = Peek().text;
    if (head == "resource") return ParseResource();
    if (head == "define") return ParseDefine();

    // Distinguish by the token after the head identifier:
    //   name "="            -> flags
    //   name "{" / name "[" NL  -> struct / union
    //   name "(" or name "$" -> syscall
    //   name "[" type "]" on one line would be ambiguous with union, so
    //   unions require a newline right after '['.
    const Token& next = Peek(1);
    if (next.kind == TokKind::kEquals) return ParseFlags();
    if (next.kind == TokKind::kLBrace) return ParseStruct(/*is_union=*/false);
    if (next.kind == TokKind::kLBrack) return ParseStruct(/*is_union=*/true);
    if (next.kind == TokKind::kLParen || next.kind == TokKind::kDollar) {
      return ParseSyscall();
    }
    Error(util::Format("cannot parse declaration starting with '%s'",
                       head.c_str()));
    return false;
  }

  bool ParseResource() {
    Advance();  // 'resource'
    if (!Check(TokKind::kIdent)) {
      Error("expected resource name");
      return false;
    }
    ResourceDef def;
    def.name = Advance().text;
    if (!Expect(TokKind::kLBrack, "'['")) return false;
    if (!Check(TokKind::kIdent)) {
      Error("expected underlying type of resource");
      return false;
    }
    def.underlying = Advance().text;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    if (!Expect(TokKind::kNewline, "end of line")) return false;
    out_->spec.Add(std::move(def));
    return true;
  }

  bool ParseDefine() {
    Advance();  // 'define'
    if (!Check(TokKind::kIdent)) {
      Error("expected constant name after define");
      return false;
    }
    DefineDef def;
    def.name = Advance().text;
    if (!Check(TokKind::kNumber)) {
      Error("expected numeric value in define");
      return false;
    }
    def.value = Advance().number;
    if (!Expect(TokKind::kNewline, "end of line")) return false;
    out_->spec.Add(std::move(def));
    return true;
  }

  bool ParseFlags() {
    FlagsDef def;
    def.name = Advance().text;
    Advance();  // '='
    for (;;) {
      if (Check(TokKind::kIdent)) {
        def.values.push_back(Advance().text);
      } else if (Check(TokKind::kNumber)) {
        def.values.push_back(Advance().text);
      } else {
        Error("expected flag value");
        return false;
      }
      if (Check(TokKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    if (!Expect(TokKind::kNewline, "end of line")) return false;
    out_->spec.Add(std::move(def));
    return true;
  }

  bool ParseStruct(bool is_union) {
    StructDef def;
    def.is_union = is_union;
    def.name = Advance().text;
    Advance();  // '{' or '['
    if (!Expect(TokKind::kNewline, "newline after struct opener")) {
      return false;
    }
    const TokKind closer = is_union ? TokKind::kRBrack : TokKind::kRBrace;
    while (!Check(closer)) {
      if (AtEof()) {
        Error(util::Format("unterminated %s '%s'",
                           is_union ? "union" : "struct", def.name.c_str()));
        return false;
      }
      if (Check(TokKind::kNewline)) {
        Advance();
        continue;
      }
      Field field;
      if (!ParseField(&field)) return false;
      def.fields.push_back(std::move(field));
      if (!Expect(TokKind::kNewline, "end of field line")) return false;
    }
    Advance();  // closer
    if (!Expect(TokKind::kNewline, "end of line")) return false;
    out_->spec.Add(std::move(def));
    return true;
  }

  bool ParseSyscall() {
    SyscallDef def;
    def.name = Advance().text;
    if (Check(TokKind::kDollar)) {
      Advance();
      if (!Check(TokKind::kIdent) && !Check(TokKind::kNumber)) {
        Error("expected syscall variant after '$'");
        return false;
      }
      def.variant = Advance().text;
    }
    if (!Expect(TokKind::kLParen, "'('")) return false;
    if (!Check(TokKind::kRParen)) {
      for (;;) {
        Field field;
        if (!ParseField(&field)) return false;
        def.params.push_back(std::move(field));
        if (Check(TokKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!Expect(TokKind::kRParen, "')'")) return false;
    if (Check(TokKind::kIdent)) def.returns_resource = Advance().text;
    if (!Expect(TokKind::kNewline, "end of line")) return false;
    out_->spec.Add(std::move(def));
    return true;
  }

  bool ParseField(Field* out) {
    if (!Check(TokKind::kIdent)) {
      Error("expected field name");
      return false;
    }
    out->name = Advance().text;
    if (!ParseType(&out->type)) return false;
    // Optional "(out)" attribute.
    if (Check(TokKind::kLParen) && Peek(1).kind == TokKind::kIdent &&
        Peek(1).text == "out" && Peek(2).kind == TokKind::kRParen) {
      Advance();
      Advance();
      Advance();
      out->is_out = true;
    }
    return true;
  }

  bool ParseType(Type* out) {
    if (!Check(TokKind::kIdent)) {
      Error("expected type");
      return false;
    }
    const std::string name = Advance().text;

    if (name == "int8" || name == "int16" || name == "int32" ||
        name == "int64" || name == "intptr") {
      int bits = name == "intptr" ? 0 : std::atoi(name.c_str() + 3);
      *out = Type::Int(bits);
      // Optional [lo:hi] range.
      if (Check(TokKind::kLBrack)) {
        Advance();
        int64_t lo = 0;
        int64_t hi = 0;
        if (!ParseSignedNumber(&lo)) return false;
        if (!Expect(TokKind::kColon, "':' in range")) return false;
        if (!ParseSignedNumber(&hi)) return false;
        if (!Expect(TokKind::kRBrack, "']'")) return false;
        *out = Type::IntRange(bits, lo, hi);
      }
      return true;
    }
    if (name == "const") return ParseConst(out);
    if (name == "flags") return ParseFlagsType(out);
    if (name == "ptr") return ParsePtr(out);
    if (name == "array") return ParseArray(out);
    if (name == "string") return ParseString(out);
    if (name == "len" || name == "bytesize") return ParseLen(name, out);
    if (name == "filename") {
      *out = Type::Filename();
      return true;
    }
    if (name == "void") {
      *out = Type::Void();
      return true;
    }
    if (name == "fd") {
      *out = Type::Resource("fd");
      return true;
    }
    // Named reference: resolved to resource or struct by the validator.
    // We encode it as a StructRef; the validator rewrites/classifies.
    *out = Type::StructRef(name);
    return true;
  }

  bool ParseSignedNumber(int64_t* out) {
    // Accept NUM or -NUM is not in the lexer; ranges in our corpus are
    // non-negative, so only plain numbers are accepted.
    if (!Check(TokKind::kNumber)) {
      Error("expected number");
      return false;
    }
    *out = static_cast<int64_t>(Advance().number);
    return true;
  }

  /// Optional trailing int-size argument inside a bracket list, e.g.
  /// const[X, int32]. Defaults to 32 bits when absent.
  bool ParseOptionalIntSize(int* bits) {
    *bits = 32;
    if (!Check(TokKind::kComma)) return true;
    Advance();
    if (!Check(TokKind::kIdent)) {
      Error("expected int type");
      return false;
    }
    const std::string t = Advance().text;
    if (t == "intptr") {
      *bits = 0;
    } else if (util::StartsWith(t, "int")) {
      *bits = std::atoi(t.c_str() + 3);
    } else {
      Error(util::Format("expected int type, got '%s'", t.c_str()));
      return false;
    }
    return true;
  }

  bool ParseConst(Type* out) {
    if (!Expect(TokKind::kLBrack, "'[' after const")) return false;
    std::string value;
    if (Check(TokKind::kIdent) || Check(TokKind::kNumber)) {
      value = Advance().text;
    } else {
      Error("expected const value");
      return false;
    }
    int bits = 32;
    if (!ParseOptionalIntSize(&bits)) return false;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = Type::Const(value, bits);
    return true;
  }

  bool ParseFlagsType(Type* out) {
    if (!Expect(TokKind::kLBrack, "'[' after flags")) return false;
    if (!Check(TokKind::kIdent)) {
      Error("expected flags set name");
      return false;
    }
    std::string set = Advance().text;
    int bits = 32;
    if (!ParseOptionalIntSize(&bits)) return false;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = Type::Flags(set, bits);
    return true;
  }

  bool ParsePtr(Type* out) {
    if (!Expect(TokKind::kLBrack, "'[' after ptr")) return false;
    if (!Check(TokKind::kIdent)) {
      Error("expected pointer direction");
      return false;
    }
    const std::string dir_name = Advance().text;
    Dir dir;
    if (dir_name == "in") {
      dir = Dir::kIn;
    } else if (dir_name == "out") {
      dir = Dir::kOut;
    } else if (dir_name == "inout") {
      dir = Dir::kInOut;
    } else {
      Error(util::Format("bad pointer direction '%s'", dir_name.c_str()));
      return false;
    }
    if (!Expect(TokKind::kComma, "','")) return false;
    Type elem;
    if (!ParseType(&elem)) return false;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = Type::Ptr(dir, std::move(elem));
    return true;
  }

  bool ParseArray(Type* out) {
    if (!Expect(TokKind::kLBrack, "'[' after array")) return false;
    Type elem;
    if (!ParseType(&elem)) return false;
    uint64_t fixed = 0;
    if (Check(TokKind::kComma)) {
      Advance();
      if (!Check(TokKind::kNumber)) {
        Error("expected array length");
        return false;
      }
      fixed = Advance().number;
    }
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = Type::Array(std::move(elem), fixed);
    return true;
  }

  bool ParseString(Type* out) {
    if (!Check(TokKind::kLBrack)) {
      *out = Type::String();
      return true;
    }
    Advance();
    if (!Check(TokKind::kString)) {
      Error("expected string literal");
      return false;
    }
    std::string lit = Advance().text;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = Type::String(std::move(lit));
    return true;
  }

  bool ParseLen(const std::string& keyword, Type* out) {
    if (!Expect(TokKind::kLBrack, "'[' after len")) return false;
    if (!Check(TokKind::kIdent)) {
      Error("expected len target field");
      return false;
    }
    std::string target = Advance().text;
    int bits = 32;
    if (!ParseOptionalIntSize(&bits)) return false;
    if (!Expect(TokKind::kRBrack, "']'")) return false;
    *out = keyword == "len" ? Type::Len(std::move(target), bits)
                            : Type::Bytesize(std::move(target), bits);
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ParseResult* out_;
};

}  // namespace

ParseResult
Parse(const std::string& source, const std::string& origin)
{
  ParseResult result;
  result.spec.origin = origin;
  LexResult lexed = Lex(source);
  result.errors = lexed.errors;
  Parser parser(std::move(lexed.tokens), &result);
  parser.Run();
  return result;
}

}  // namespace kernelgpt::syzlang
