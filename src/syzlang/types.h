/// \file
/// Core type system of the syzlang-like specification DSL.
///
/// This mirrors the subset of syzkaller's syscall-description language that
/// the paper's pipeline emits: integer scalars with ranges, symbolic
/// constants, flag sets, typed pointers with direction, arrays, strings,
/// len-of relations, resources, and struct/union references.

#ifndef KERNELGPT_SYZLANG_TYPES_H_
#define KERNELGPT_SYZLANG_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kernelgpt::syzlang {

/// Data-flow direction of a pointer argument.
enum class Dir {
  kIn,
  kOut,
  kInOut,
};

/// Returns the syzlang keyword for a direction ("in", "out", "inout").
const char* DirName(Dir dir);

/// Kind discriminator for Type.
enum class TypeKind {
  kInt,        ///< int8/int16/int32/int64/intptr, optional [lo:hi] range.
  kConst,      ///< const[NAME_OR_NUMBER] with optional int size.
  kFlags,      ///< flags[flags_set_name] with optional int size.
  kPtr,        ///< ptr[dir, elem].
  kArray,      ///< array[elem] or array[elem, n].
  kString,     ///< string, string["literal"], or string[CONST].
  kLen,        ///< len[sibling_field] with optional int size.
  kBytesize,   ///< bytesize[sibling_field] with optional int size.
  kResource,   ///< reference to a declared resource (includes builtin fd).
  kStructRef,  ///< reference to a struct or union by name.
  kFilename,   ///< filename (an arbitrary path string).
  kVoid,       ///< no payload (used for empty union arms).
};

/// Returns the canonical keyword of the kind used in rendered specs.
const char* TypeKindName(TypeKind kind);

/// A (value-semantic, recursive) syzlang type expression.
///
/// Children are held in `elems`; scalar parameters in dedicated fields.
/// Factory functions below are the supported way to build well-formed
/// instances.
struct Type {
  TypeKind kind = TypeKind::kVoid;

  /// kInt/kConst/kFlags/kLen/kBytesize: scalar width in bits (8..64);
  /// 0 means pointer-sized (intptr).
  int bits = 32;

  /// kInt: optional inclusive value range.
  bool has_range = false;
  int64_t range_lo = 0;
  int64_t range_hi = 0;

  /// kConst: symbolic constant name or decimal literal rendering.
  std::string const_name;

  /// kFlags: referenced flag-set name.
  std::string flags_name;

  /// kPtr: pointee direction.
  Dir dir = Dir::kIn;

  /// kArray: fixed element count (0 = variable length).
  uint64_t array_len = 0;

  /// kString: literal value ("" = unconstrained string).
  std::string str_literal;

  /// kLen/kBytesize: name of the sibling field whose length this encodes.
  std::string len_target;

  /// kResource/kStructRef: referenced declaration name.
  std::string ref_name;

  /// kPtr/kArray child type (exactly one element when present).
  std::vector<Type> elems;

  /// Dense cache id assigned by SpecLibrary::Finalize() to the types it
  /// owns; lets the generator keep per-type resolved lookups in a flat
  /// array instead of a hash map. -1 outside a finalized library.
  /// Not part of the value (excluded from operator==).
  int cache_slot = -1;

  bool operator==(const Type& other) const;

  // -- Factories ----------------------------------------------------------

  static Type Int(int bits);
  static Type IntRange(int bits, int64_t lo, int64_t hi);
  static Type Const(std::string name, int bits = 32);
  static Type ConstValue(uint64_t value, int bits = 32);
  static Type Flags(std::string flags_set, int bits = 32);
  static Type Ptr(Dir dir, Type elem);
  static Type Array(Type elem, uint64_t fixed_len = 0);
  static Type String(std::string literal = "");
  static Type Len(std::string target, int bits = 32);
  static Type Bytesize(std::string target, int bits = 32);
  static Type Resource(std::string name);
  static Type StructRef(std::string name);
  static Type Filename();
  static Type Void();
};

/// One named parameter of a syscall, or one struct/union member.
struct Field {
  std::string name;
  Type type;
  /// True when annotated `(out)` — the kernel writes this field.
  bool is_out = false;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && is_out == other.is_out;
  }
};

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_TYPES_H_
