/// \file
/// Symbolic-constant table — the equivalent of syzkaller's syz-extract.
///
/// Specifications reference kernel macros (command values, flag bits,
/// length limits) by name; this table resolves those names to values.
/// It is populated from the synthetic kernel corpus's #define lines.

#ifndef KERNELGPT_SYZLANG_CONST_TABLE_H_
#define KERNELGPT_SYZLANG_CONST_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace kernelgpt::syzlang {

/// Maps macro names to integer values.
class ConstTable {
 public:
  /// Registers (or overwrites) one constant.
  void Define(const std::string& name, uint64_t value);

  /// Resolves a name, a decimal literal, or a 0x-hex literal.
  std::optional<uint64_t> Resolve(const std::string& name_or_literal) const;

  /// True if the symbolic name is defined (literals always resolve).
  bool Has(const std::string& name) const;

  size_t size() const { return values_.size(); }

  /// All defined names in insertion order (for reports).
  const std::vector<std::string>& Names() const { return names_; }

  /// Merges `other` into this table (other wins on conflict).
  void Merge(const ConstTable& other);

 private:
  std::unordered_map<std::string, uint64_t> values_;
  std::vector<std::string> names_;
};

/// Parses a decimal or 0x-prefixed literal. Returns nullopt on non-numeric
/// input.
std::optional<uint64_t> ParseIntLiteral(const std::string& text);

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_CONST_TABLE_H_
