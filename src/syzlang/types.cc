#include "syzlang/types.h"

#include "util/strings.h"

namespace kernelgpt::syzlang {

const char*
DirName(Dir dir)
{
  switch (dir) {
    case Dir::kIn: return "in";
    case Dir::kOut: return "out";
    case Dir::kInOut: return "inout";
  }
  return "in";
}

const char*
TypeKindName(TypeKind kind)
{
  switch (kind) {
    case TypeKind::kInt: return "int";
    case TypeKind::kConst: return "const";
    case TypeKind::kFlags: return "flags";
    case TypeKind::kPtr: return "ptr";
    case TypeKind::kArray: return "array";
    case TypeKind::kString: return "string";
    case TypeKind::kLen: return "len";
    case TypeKind::kBytesize: return "bytesize";
    case TypeKind::kResource: return "resource";
    case TypeKind::kStructRef: return "structref";
    case TypeKind::kFilename: return "filename";
    case TypeKind::kVoid: return "void";
  }
  return "void";
}

bool
Type::operator==(const Type& other) const
{
  return kind == other.kind && bits == other.bits &&
         has_range == other.has_range && range_lo == other.range_lo &&
         range_hi == other.range_hi && const_name == other.const_name &&
         flags_name == other.flags_name && dir == other.dir &&
         array_len == other.array_len && str_literal == other.str_literal &&
         len_target == other.len_target && ref_name == other.ref_name &&
         elems == other.elems;
}

Type
Type::Int(int bits)
{
  Type t;
  t.kind = TypeKind::kInt;
  t.bits = bits;
  return t;
}

Type
Type::IntRange(int bits, int64_t lo, int64_t hi)
{
  Type t = Int(bits);
  t.has_range = true;
  t.range_lo = lo;
  t.range_hi = hi;
  return t;
}

Type
Type::Const(std::string name, int bits)
{
  Type t;
  t.kind = TypeKind::kConst;
  t.bits = bits;
  t.const_name = std::move(name);
  return t;
}

Type
Type::ConstValue(uint64_t value, int bits)
{
  return Const(util::Format("%llu", static_cast<unsigned long long>(value)),
               bits);
}

Type
Type::Flags(std::string flags_set, int bits)
{
  Type t;
  t.kind = TypeKind::kFlags;
  t.bits = bits;
  t.flags_name = std::move(flags_set);
  return t;
}

Type
Type::Ptr(Dir dir, Type elem)
{
  Type t;
  t.kind = TypeKind::kPtr;
  t.dir = dir;
  t.elems.push_back(std::move(elem));
  return t;
}

Type
Type::Array(Type elem, uint64_t fixed_len)
{
  Type t;
  t.kind = TypeKind::kArray;
  t.array_len = fixed_len;
  t.elems.push_back(std::move(elem));
  return t;
}

Type
Type::String(std::string literal)
{
  Type t;
  t.kind = TypeKind::kString;
  t.str_literal = std::move(literal);
  return t;
}

Type
Type::Len(std::string target, int bits)
{
  Type t;
  t.kind = TypeKind::kLen;
  t.bits = bits;
  t.len_target = std::move(target);
  return t;
}

Type
Type::Bytesize(std::string target, int bits)
{
  Type t = Len(std::move(target), bits);
  t.kind = TypeKind::kBytesize;
  return t;
}

Type
Type::Resource(std::string name)
{
  Type t;
  t.kind = TypeKind::kResource;
  t.ref_name = std::move(name);
  return t;
}

Type
Type::StructRef(std::string name)
{
  Type t;
  t.kind = TypeKind::kStructRef;
  t.ref_name = std::move(name);
  return t;
}

Type
Type::Filename()
{
  Type t;
  t.kind = TypeKind::kFilename;
  return t;
}

Type
Type::Void()
{
  Type t;
  t.kind = TypeKind::kVoid;
  return t;
}

}  // namespace kernelgpt::syzlang
