/// \file
/// Specification validator — the equivalent of running syz-extract +
/// syz-generate over a description file. Produces structured errors whose
/// categories the repair engine (spec_gen/repair) understands.

#ifndef KERNELGPT_SYZLANG_VALIDATOR_H_
#define KERNELGPT_SYZLANG_VALIDATOR_H_

#include <string>
#include <vector>

#include "syzlang/ast.h"
#include "syzlang/const_table.h"

namespace kernelgpt::syzlang {

/// Machine-readable category of a validation error.
enum class ErrorKind {
  kUnknownType,          ///< Type reference resolves to nothing.
  kUnknownConst,         ///< const[NAME]: NAME not in the const table.
  kUnknownFlags,         ///< flags[NAME]: NAME has no flags declaration.
  kUnknownResource,      ///< Return value names an undeclared resource.
  kBadLenTarget,         ///< len[FIELD]: no sibling FIELD.
  kDuplicateDecl,        ///< Two declarations share a name.
  kEmptyStruct,          ///< struct/union with no fields.
  kRecursiveStruct,      ///< Struct contains itself without ptr indirection.
  kBadResourceBase,      ///< resource underlying type is invalid.
  kUnknownSyscall,       ///< Base syscall name is not in the supported set.
  kMissingFdParam,       ///< ioctl-family call without a leading fd param.
  kBadIntWidth,          ///< Scalar with unsupported bit width.
  kDanglingUnion,        ///< Union arm with void payload only.
};

/// Returns a stable identifier string for the kind (used in messages).
const char* ErrorKindName(ErrorKind kind);

/// One validation diagnostic.
struct ValidationError {
  ErrorKind kind;
  /// Declaration the error is attached to (syscall full name, struct name…).
  std::string decl;
  /// Offending identifier (type name, const name, field name…).
  std::string subject;
  /// Human-readable message in syzkaller's style.
  std::string message;
};

/// Result of validating one spec against a const table.
struct ValidationResult {
  std::vector<ValidationError> errors;
  bool ok() const { return errors.empty(); }

  /// Errors attached to a specific declaration name.
  std::vector<ValidationError> ForDecl(const std::string& decl) const;

  /// Distinct declaration names that have at least one error.
  std::vector<std::string> ErroredDecls() const;
};

/// Base syscall names the virtual kernel supports; descriptions for other
/// names are rejected (kUnknownSyscall).
bool IsSupportedSyscall(const std::string& name);

/// Validates `spec`. `consts` provides macro resolution (pass an empty
/// table to require all constants be numeric literals or local defines).
/// `externals` optionally supplies declarations (resources/structs/flags)
/// that live in other spec files the target will be linked with.
ValidationResult Validate(const SpecFile& spec, const ConstTable& consts,
                          const SpecFile* externals = nullptr);

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_VALIDATOR_H_
