#include "syzlang/const_table.h"

#include <cctype>

namespace kernelgpt::syzlang {

std::optional<uint64_t>
ParseIntLiteral(const std::string& text)
{
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    for (size_t i = 2; i < text.size(); ++i) {
      char c = text[i];
      if (!std::isxdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 16 +
              static_cast<uint64_t>(
                  std::isdigit(static_cast<unsigned char>(c))
                      ? c - '0'
                      : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10);
    }
    return value;
  }
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

void
ConstTable::Define(const std::string& name, uint64_t value)
{
  auto [it, inserted] = values_.insert_or_assign(name, value);
  (void)it;
  if (inserted) names_.push_back(name);
}

std::optional<uint64_t>
ConstTable::Resolve(const std::string& name_or_literal) const
{
  if (auto lit = ParseIntLiteral(name_or_literal)) return lit;
  auto it = values_.find(name_or_literal);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool
ConstTable::Has(const std::string& name) const
{
  return values_.count(name);
}

void
ConstTable::Merge(const ConstTable& other)
{
  for (const auto& name : other.names_) {
    Define(name, other.values_.at(name));
  }
}

}  // namespace kernelgpt::syzlang
