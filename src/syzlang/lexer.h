/// \file
/// Tokenizer for the syzlang-like DSL. The language is line-oriented, so
/// newlines are significant tokens.

#ifndef KERNELGPT_SYZLANG_LEXER_H_
#define KERNELGPT_SYZLANG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kernelgpt::syzlang {

/// Token categories of the DSL.
enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kLBrack,   ///< [
  kRBrack,   ///< ]
  kLParen,   ///< (
  kRParen,   ///< )
  kLBrace,   ///< {
  kRBrace,   ///< }
  kComma,
  kDollar,
  kEquals,
  kColon,
  kNewline,
  kEof,
};

/// One lexed token with source position (1-based line/column).
struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;     ///< Identifier text or string literal contents.
  uint64_t number = 0;  ///< Value for kNumber.
  int line = 0;
  int column = 0;
};

/// Result of lexing: tokens plus any lexical errors encountered.
struct LexResult {
  std::vector<Token> tokens;
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

/// Tokenizes `source`. Comments (`#` to end of line) are skipped.
/// Consecutive newlines collapse into one kNewline token. The token
/// stream always ends with kEof.
LexResult Lex(const std::string& source);

}  // namespace kernelgpt::syzlang

#endif  // KERNELGPT_SYZLANG_LEXER_H_
