#include "util/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

namespace kernelgpt::util {
namespace {

Status
Errno(const char* verb, const std::string& path)
{
  return Status::Error(
      Format("%s '%s': %s", verb, path.c_str(), std::strerror(errno)));
}

/// Writes the whole buffer through short writes and EINTR.
bool
WriteAll(int fd, std::string_view content)
{
  const char* p = content.data();
  size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

/// fsyncs the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_RDONLY directory fsyncs; the
/// data-file fsync already happened, which is the part torn-write safety
/// depends on.
void
SyncParentDir(const std::string& path)
{
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

const uint32_t* Crc32Table()
{
  static uint32_t table[256];
  static bool ready = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)ready;
  return table;
}

}  // namespace

uint32_t
Crc32(const void* data, size_t len)
{
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint32_t
Crc32(std::string_view s)
{
  return Crc32(s.data(), s.size());
}

Status
AtomicWriteFile(const std::string& path, std::string_view content)
{
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);
  if (!WriteAll(fd, content)) {
    Status status = Errno("write failed", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = Errno("fsync failed", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);

  // Crash-injection hook for the kill-mid-save tests: die with the tmp
  // file durable but the rename not yet issued — the widest window in
  // which a non-atomic writer would have destroyed the previous file.
  if (const char* want = std::getenv("KERNELGPT_CRASH_AFTER_TMP_WRITE")) {
    if (*want != '\0' && path.find(want) != std::string::npos) {
      ::_exit(42);
    }
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Errno("rename failed", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status
AppendFileDurable(const std::string& path, std::string_view content)
{
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return Errno("cannot open for append", path);
  if (!WriteAll(fd, content)) {
    Status status = Errno("append failed", path);
    ::close(fd);
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = Errno("fsync failed", path);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace kernelgpt::util
