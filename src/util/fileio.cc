#include "util/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/fault.h"
#include "util/strings.h"

/// Declares one of fileio's injectable failure seams. An injected errno
/// fault is routed through the same ErrnoStatus mapping as a real
/// syscall failure, so "ENOSPC while appending the journal" reads the
/// same in a recovery log whether a disk or a test produced it.
#define KERNELGPT_FILEIO_FAULT(site, verb, path)                          \
  do {                                                                    \
    if (__builtin_expect(::kernelgpt::util::FaultInjector::Armed(), 0)) { \
      int injected_errno = 0;                                             \
      ::kernelgpt::util::Status fault_status =                            \
          ::kernelgpt::util::FaultInjector::Instance().HitStatus(         \
              site, path, &injected_errno);                               \
      if (!fault_status.ok()) {                                           \
        if (injected_errno != 0)                                          \
          return ErrnoStatus(verb, path, injected_errno);                 \
        return fault_status;                                              \
      }                                                                   \
    }                                                                     \
  } while (0)

namespace kernelgpt::util {
namespace {

/// Writes the whole buffer through short writes and EINTR.
bool
WriteAll(int fd, std::string_view content)
{
  const char* p = content.data();
  size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

/// fsyncs the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_RDONLY directory fsyncs; the
/// data-file fsync already happened, which is the part torn-write safety
/// depends on.
void
SyncParentDir(const std::string& path)
{
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

const uint32_t* Crc32Table()
{
  static uint32_t table[256];
  static bool ready = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)ready;
  return table;
}

}  // namespace

Status
ErrnoStatus(const char* verb, const std::string& path, int err)
{
  const char* name = ErrnoName(err);
  if (*name) {
    return Status::Error(Format("%s '%s': %s (%s)", verb, path.c_str(), name,
                                std::strerror(err)));
  }
  return Status::Error(Format("%s '%s': errno %d (%s)", verb, path.c_str(),
                              err, std::strerror(err)));
}

uint32_t
Crc32(const void* data, size_t len)
{
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint32_t
Crc32(std::string_view s)
{
  return Crc32(s.data(), s.size());
}

Status
AtomicWriteFile(const std::string& path, std::string_view content)
{
  KERNELGPT_FILEIO_FAULT("fileio.atomic_write", "cannot replace", path);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create", tmp, errno);
  if (!WriteAll(fd, content)) {
    Status status = ErrnoStatus("write failed", tmp, errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = ErrnoStatus("fsync failed", tmp, errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);

  // Crash-injection hooks for the kill-mid-save tests: die with the tmp
  // file durable but the rename not yet issued — the widest window in
  // which a non-atomic writer would have destroyed the previous file.
  // The env hook predates util::FaultInjector and is kept for the
  // cross-process example; the fault point covers scripted plans (a
  // kind=crash rule here simulates death-mid-save for a supervisor, a
  // kind=exit rule really dies like the env hook).
  KERNELGPT_FILEIO_FAULT("fileio.rename", "cannot rename into", path);
  if (const char* want = std::getenv("KERNELGPT_CRASH_AFTER_TMP_WRITE")) {
    if (*want != '\0' && path.find(want) != std::string::npos) {
      ::_exit(42);
    }
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = ErrnoStatus("rename failed", tmp, errno);
    ::unlink(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status
AppendFileDurable(const std::string& path, std::string_view content)
{
  KERNELGPT_FILEIO_FAULT("fileio.append", "cannot append to", path);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("cannot open for append", path, errno);
  if (!WriteAll(fd, content)) {
    Status status = ErrnoStatus("append failed", path, errno);
    ::close(fd);
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = ErrnoStatus("fsync failed", path, errno);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

Status
ReadFileToString(const std::string& path, std::string* out)
{
  KERNELGPT_FILEIO_FAULT("fileio.read", "cannot read", path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open", path, errno);
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("read failed", path, errno);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    buf.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(buf);
  return Status::Ok();
}

}  // namespace kernelgpt::util
