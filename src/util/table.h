/// \file
/// Plain-text table formatting used by the bench harness to print the
/// paper's tables in a stable, diff-friendly layout.

#ifndef KERNELGPT_UTIL_TABLE_H_
#define KERNELGPT_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace kernelgpt::util {

/// Column-aligned text table.
///
/// Usage:
///   Table t({"Driver", "#Sys", "Cov"});
///   t.AddRow({"fuse", "2", "2425"});
///   std::cout << t.Render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; missing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with a header rule and column padding.
  std::string Render() const;

  /// Number of data rows (separators excluded).
  size_t RowCount() const;

 private:
  std::vector<std::string> header_;
  // A row with the single sentinel cell "\x01--" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fixed(double v, int digits = 1);

/// Formats an integer with thousands separators (e.g. 204,923).
std::string WithCommas(int64_t v);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_TABLE_H_
