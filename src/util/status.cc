#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace kernelgpt::util {

Status
Status::Error(std::string message)
{
  Status s;
  s.ok_ = false;
  s.message_ = std::move(message);
  return s;
}

void
Panic(const std::string& message)
{
  std::fprintf(stderr, "panic: %s\n", message.c_str());
  std::abort();
}

void
Fatal(const std::string& message)
{
  std::fprintf(stderr, "fatal: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace kernelgpt::util
