/// \file
/// Deterministic, seed-driven fault injection — the substrate every
/// crash/recovery test in this repo is built on. A FaultPlan maps site
/// names (e.g. "fileio.append", "orchestrator.worker") to rules that say
/// WHEN a fault fires (on the Nth matching call, or with a seeded
/// probability) and WHAT it does (throw, return a util::Status, simulate
/// an errno failure, simulate a process crash, or really _exit). Sites
/// are declared with the KERNELGPT_FAULT_POINT macros threaded through
/// the hot seams: snapshot/journal IO, orchestrator worker bodies,
/// backend queries, and spec-generation tasks.
///
/// Determinism: nth-call rules count only calls whose (site, detail) pair
/// matches the rule, so a rule scoped by detail (a file path, a campaign
/// seed) counts a single deterministic call stream even when unrelated
/// threads hit the same site. Probability rules draw from a hash of
/// (plan seed, site, detail, per-rule match index) — stable across runs
/// and platforms; under concurrency the match-index assignment follows
/// thread scheduling, so scope probabilistic rules by detail too when a
/// test needs bit-for-bit reproducibility.
///
/// Cost: a disarmed fault point is one relaxed atomic load and a
/// predictable branch (BM_FaultPointDisarmed pins it at well under a
/// nanosecond); no strings are built and no locks are taken unless a
/// plan is armed.
///
/// Plans can be armed programmatically (tests) or from the
/// KERNELGPT_FAULT_PLAN environment variable (soak jobs, daemons). Spec
/// grammar — rules separated by ';', key=value fields by ',':
///
///   seed=42;
///   site=fileio.append,kind=errno,errno=ENOSPC,nth=2,times=1,match=tenant_a;
///   site=orchestrator.worker,kind=throw,p=0.25
///
/// Fields: site (required), kind (throw|status|errno|crash|exit; default
/// throw), errno (symbolic or numeric; default EIO), nth (first matching
/// call that fires, 1-based; default 1), times (how many consecutive
/// matching calls fire; -1 = forever; default 1), p (probability per
/// matching call instead of the nth/times window), match (substring the
/// call's detail must contain), msg (custom message text).

#ifndef KERNELGPT_UTIL_FAULT_H_
#define KERNELGPT_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.h"

namespace kernelgpt::util {

/// What an armed rule does when it fires.
enum class FaultKind {
  kThrow,   ///< Throw InjectedFault (a worker-level failure).
  kStatus,  ///< Return a Status error from KERNELGPT_FAULT_POINT_STATUS
            ///< sites; throws InjectedFault at throw-only sites.
  kErrno,   ///< Simulate a failing syscall: Status carrying the errno at
            ///< IO sites, InjectedFault naming it at throw-only sites.
  kCrash,   ///< Throw InjectedCrash — "the process died here". A
            ///< supervisor (fuzzer::Fleet) treats it as worker death and
            ///< restarts from the last durable snapshot.
  kExit,    ///< Really _exit(42), for cross-process recovery tests (the
            ///< in-process analog of KERNELGPT_CRASH_AFTER_TMP_WRITE).
};

/// The exception an armed kThrow/kStatus/kErrno rule raises at sites
/// that cannot return a Status.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Simulated process death (kCrash). Deliberately NOT an InjectedFault
/// subtype: a supervisor must not "retry" a dead process in place — it
/// rebuilds the tenant and resumes from its snapshot directory.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// One site's firing rule.
struct FaultRule {
  std::string site;          ///< Site name, matched exactly.
  std::string match;         ///< Substring the detail must contain ("" = any).
  FaultKind kind = FaultKind::kThrow;
  int error_number = 0;      ///< errno for kErrno (0 -> EIO).
  int nth = 1;               ///< First matching call that fires (1-based).
  int times = 1;             ///< Matching calls that fire from nth on; -1 = all.
  double probability = -1;   ///< >= 0: per-call seeded draw instead of nth/times.
  std::string message;       ///< Optional extra text for the fault message.
};

/// A seed plus the rule list.
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

/// Process-wide injector. Thread-safe; zero-cost while disarmed.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when a plan is armed. The macro's fast path; relaxed is enough
  /// because tests arm/disarm from a quiescent point, never racing the
  /// sites they script.
  static bool Armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  /// Installs `plan`, resetting all match counters and fired tallies.
  void Arm(FaultPlan plan);

  /// Removes the plan; every fault point reverts to zero-cost.
  void Disarm();

  /// Parses the KERNELGPT_FAULT_PLAN grammar (see file comment).
  static Status ParsePlan(const std::string& spec, FaultPlan* out);

  /// Arm(ParsePlan(spec)).
  Status ArmFromSpec(const std::string& spec);

  /// Arms from $KERNELGPT_FAULT_PLAN if it is set and nothing is armed
  /// yet (idempotent; a malformed spec is reported, not fatal — a daemon
  /// must not die to a typo in an env var). Returns true when a plan is
  /// armed after the call.
  bool ArmFromEnvIfPresent(Status* parse_error = nullptr);

  /// Slow path behind KERNELGPT_FAULT_POINT: consults the plan and, if a
  /// rule fires, throws InjectedFault/InjectedCrash or _exit(42)s.
  void Hit(const char* site, const std::string& detail = std::string());

  /// Slow path behind KERNELGPT_FAULT_POINT_STATUS: like Hit, but
  /// kStatus/kErrno faults come back as a Status error (ok() when no
  /// rule fired) so IO call sites surface them exactly like real syscall
  /// failures. `fired_errno` (optional) receives the injected errno so
  /// the caller can run it through its own errno-to-Status mapping.
  Status HitStatus(const char* site, const std::string& detail = std::string(),
                   int* fired_errno = nullptr);

  /// Faults fired at `site` since the plan was armed.
  size_t FiredCount(const std::string& site) const;
  /// Faults fired across all sites since the plan was armed.
  size_t TotalFired() const;

 private:
  FaultInjector() = default;

  struct RuleState {
    FaultRule rule;
    int matches = 0;  ///< Matching calls seen (for nth/times windows).
    int fired = 0;
  };

  /// Decides whether any rule fires for (site, detail); fills `*fired`
  /// with the winning rule. Separated from Hit so both entry points
  /// share one decision path.
  bool Fire(const char* site, const std::string& detail, FaultRule* fired);

  static std::atomic<bool> armed_flag_;

  mutable std::mutex mutex_;
  uint64_t seed_ = 1;
  std::vector<RuleState> rules_;
  std::map<std::string, size_t> fired_by_site_;
  size_t total_fired_ = 0;
};

/// Builds the message an injected fault carries, shared by both entry
/// points so logs read identically whichever path reported it.
std::string FaultMessage(const char* site, const std::string& detail,
                         const FaultRule& rule);

/// Symbolic name ("ENOSPC") for the errno values IO realistically
/// returns; "" when unknown. Shared with the fileio errno-to-Status
/// mapping so recovery logs name the failure class, not just its text.
const char* ErrnoName(int err);

}  // namespace kernelgpt::util

/// Declares a fault site that reports failures by exception (or is
/// allowed to kill the process). `detail` is optional; it is only
/// evaluated when a plan is armed, so passing a Format(...) expression
/// costs nothing in production.
#define KERNELGPT_FAULT_POINT(...)                                       \
  do {                                                                   \
    if (__builtin_expect(::kernelgpt::util::FaultInjector::Armed(), 0))  \
      ::kernelgpt::util::FaultInjector::Instance().Hit(__VA_ARGS__);     \
  } while (0)

/// Declares a fault site inside a function returning util::Status:
/// kStatus/kErrno faults return from the enclosing function with the
/// injected error, exactly as if the underlying IO had failed.
#define KERNELGPT_FAULT_POINT_STATUS(...)                                   \
  do {                                                                      \
    if (__builtin_expect(::kernelgpt::util::FaultInjector::Armed(), 0)) {   \
      ::kernelgpt::util::Status kernelgpt_fault_status =                    \
          ::kernelgpt::util::FaultInjector::Instance().HitStatus(           \
              __VA_ARGS__);                                                 \
      if (!kernelgpt_fault_status.ok()) return kernelgpt_fault_status;      \
    }                                                                       \
  } while (0)

#endif  // KERNELGPT_UTIL_FAULT_H_
