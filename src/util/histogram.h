/// \file
/// Fixed-bucket histogram used to reproduce Figure 7 (missing-spec
/// distribution) and for fuzzer statistics.

#ifndef KERNELGPT_UTIL_HISTOGRAM_H_
#define KERNELGPT_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kernelgpt::util {

/// Histogram over [lo, hi) with `buckets` equal-width buckets.
/// Values outside the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  /// Records one sample.
  void Add(double value);

  /// Count in bucket `i`.
  uint64_t BucketCount(size_t i) const;

  /// Inclusive lower edge of bucket `i`.
  double BucketLow(size_t i) const;

  /// Exclusive upper edge of bucket `i`.
  double BucketHigh(size_t i) const;

  size_t BucketCount() const { return counts_.size(); }
  uint64_t TotalCount() const { return total_; }

  /// Renders an ASCII bar chart, one bucket per line.
  std::string RenderAscii(int max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_HISTOGRAM_H_
