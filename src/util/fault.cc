#include "util/fault.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "util/rng.h"
#include "util/strings.h"

namespace kernelgpt::util {
namespace {

/// Symbolic errno names the plan grammar accepts and the injected Status
/// messages use. Covers what filesystem and network IO realistically
/// returns; anything else round-trips numerically.
struct ErrnoEntry {
  const char* name;
  int value;
};

constexpr ErrnoEntry kErrnoTable[] = {
    {"EIO", EIO},         {"ENOSPC", ENOSPC},   {"EACCES", EACCES},
    {"ENOENT", ENOENT},   {"EROFS", EROFS},     {"EMFILE", EMFILE},
    {"ENFILE", ENFILE},   {"EDQUOT", EDQUOT},   {"EFBIG", EFBIG},
    {"EINTR", EINTR},     {"EAGAIN", EAGAIN},   {"EBUSY", EBUSY},
    {"EPERM", EPERM},     {"ENOMEM", ENOMEM},   {"EBADF", EBADF},
    {"EISDIR", EISDIR},   {"ENOTDIR", ENOTDIR},
};

int
ErrnoFromName(const std::string& name, bool* ok)
{
  *ok = true;
  for (const ErrnoEntry& e : kErrnoTable) {
    if (name == e.name) return e.value;
  }
  if (!name.empty() &&
      name.find_first_not_of("0123456789") == std::string::npos) {
    return std::atoi(name.c_str());
  }
  *ok = false;
  return 0;
}

const char*
KindName(FaultKind kind)
{
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStatus: return "status";
    case FaultKind::kErrno: return "errno";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kExit: return "exit";
  }
  return "?";
}

bool
KindFromName(const std::string& name, FaultKind* out)
{
  for (FaultKind kind : {FaultKind::kThrow, FaultKind::kStatus,
                         FaultKind::kErrno, FaultKind::kCrash,
                         FaultKind::kExit}) {
    if (name == KindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

std::atomic<bool> FaultInjector::armed_flag_{false};

const char*
ErrnoName(int err)
{
  for (const ErrnoEntry& e : kErrnoTable) {
    if (err == e.value) return e.name;
  }
  return "";
}

std::string
FaultMessage(const char* site, const std::string& detail,
             const FaultRule& rule)
{
  std::string message = Format("injected %s fault at %s",
                               KindName(rule.kind), site);
  if (rule.kind == FaultKind::kErrno) {
    const int err = rule.error_number > 0 ? rule.error_number : EIO;
    const char* name = ErrnoName(err);
    message += Format(" (%s)", *name ? name : Format("errno %d", err).c_str());
  }
  if (!detail.empty()) message += " [" + detail + "]";
  if (!rule.message.empty()) message += ": " + rule.message;
  return message;
}

FaultInjector&
FaultInjector::Instance()
{
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void
FaultInjector::Arm(FaultPlan plan)
{
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = plan.seed;
  rules_.clear();
  rules_.reserve(plan.rules.size());
  for (FaultRule& rule : plan.rules) {
    RuleState state;
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
  }
  fired_by_site_.clear();
  total_fired_ = 0;
  armed_flag_.store(!rules_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::Disarm()
{
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  armed_flag_.store(false, std::memory_order_relaxed);
}

Status
FaultInjector::ParsePlan(const std::string& spec, FaultPlan* out)
{
  FaultPlan plan;
  for (const std::string& entry : Split(spec, ';')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    FaultRule rule;
    bool is_rule = false;
    for (const std::string& field : Split(std::string(trimmed), ',')) {
      const std::string_view f = Trim(field);
      if (f.empty()) continue;
      const size_t eq = f.find('=');
      if (eq == std::string_view::npos) {
        return Status::Error(Format(
            "fault plan: field '%s' is not key=value",
            std::string(f).c_str()));
      }
      const std::string key(Trim(f.substr(0, eq)));
      const std::string value(Trim(f.substr(eq + 1)));
      if (key == "seed") {
        plan.seed = std::strtoull(value.c_str(), nullptr, 0);
      } else if (key == "site") {
        rule.site = value;
        is_rule = true;
      } else if (key == "kind") {
        if (!KindFromName(value, &rule.kind)) {
          return Status::Error(Format(
              "fault plan: unknown kind '%s' (throw|status|errno|crash|exit)",
              value.c_str()));
        }
        is_rule = true;
      } else if (key == "errno") {
        bool ok = false;
        rule.error_number = ErrnoFromName(value, &ok);
        if (!ok) {
          return Status::Error(Format(
              "fault plan: unknown errno '%s'", value.c_str()));
        }
        is_rule = true;
      } else if (key == "nth") {
        rule.nth = std::atoi(value.c_str());
        is_rule = true;
      } else if (key == "times") {
        rule.times = std::atoi(value.c_str());
        is_rule = true;
      } else if (key == "p") {
        rule.probability = std::atof(value.c_str());
        is_rule = true;
      } else if (key == "match") {
        rule.match = value;
        is_rule = true;
      } else if (key == "msg") {
        rule.message = value;
        is_rule = true;
      } else {
        return Status::Error(
            Format("fault plan: unknown key '%s'", key.c_str()));
      }
    }
    if (!is_rule) continue;  // A bare "seed=N" segment.
    if (rule.site.empty()) {
      return Status::Error(Format(
          "fault plan: rule '%s' has no site=", std::string(trimmed).c_str()));
    }
    if (rule.nth < 1) {
      return Status::Error(Format(
          "fault plan: site %s: nth must be >= 1", rule.site.c_str()));
    }
    plan.rules.push_back(std::move(rule));
  }
  *out = std::move(plan);
  return Status::Ok();
}

Status
FaultInjector::ArmFromSpec(const std::string& spec)
{
  FaultPlan plan;
  Status status = ParsePlan(spec, &plan);
  if (!status.ok()) return status;
  Arm(std::move(plan));
  return Status::Ok();
}

bool
FaultInjector::ArmFromEnvIfPresent(Status* parse_error)
{
  if (Armed()) return true;
  const char* spec = std::getenv("KERNELGPT_FAULT_PLAN");
  if (!spec || *spec == '\0') return false;
  Status status = ArmFromSpec(spec);
  if (!status.ok() && parse_error) *parse_error = status;
  return status.ok();
}

bool
FaultInjector::Fire(const char* site, const std::string& detail,
                    FaultRule* fired)
{
  std::lock_guard<std::mutex> lock(mutex_);
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site) continue;
    if (!rule.match.empty() && detail.find(rule.match) == std::string::npos) {
      continue;
    }
    // Counters advance only on full (site, detail) matches, so a rule
    // scoped by detail counts a deterministic call stream even when
    // other threads hit the same site concurrently.
    const int match_index = state.matches++;
    bool fire;
    if (rule.probability >= 0) {
      // Seeded per-call draw, stable for (seed, site, detail, index).
      uint64_t h = HashCombine(seed_, StableHash(rule.site));
      h = HashCombine(h, StableHash(detail));
      h = HashCombine(h, static_cast<uint64_t>(match_index));
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 < rule.probability;
    } else {
      fire = match_index + 1 >= rule.nth &&
             (rule.times < 0 || match_index + 1 < rule.nth + rule.times);
    }
    if (!fire) continue;
    ++state.fired;
    ++fired_by_site_[rule.site];
    ++total_fired_;
    *fired = rule;
    return true;
  }
  return false;
}

void
FaultInjector::Hit(const char* site, const std::string& detail)
{
  FaultRule rule;
  if (!Fire(site, detail, &rule)) return;
  switch (rule.kind) {
    case FaultKind::kCrash:
      throw InjectedCrash(FaultMessage(site, detail, rule));
    case FaultKind::kExit:
      ::_exit(42);
    case FaultKind::kThrow:
    case FaultKind::kStatus:
    case FaultKind::kErrno:
      throw InjectedFault(FaultMessage(site, detail, rule));
  }
}

Status
FaultInjector::HitStatus(const char* site, const std::string& detail,
                         int* fired_errno)
{
  FaultRule rule;
  if (!Fire(site, detail, &rule)) return Status::Ok();
  switch (rule.kind) {
    case FaultKind::kCrash:
      throw InjectedCrash(FaultMessage(site, detail, rule));
    case FaultKind::kExit:
      ::_exit(42);
    case FaultKind::kThrow:
      throw InjectedFault(FaultMessage(site, detail, rule));
    case FaultKind::kErrno:
      if (fired_errno) {
        *fired_errno = rule.error_number > 0 ? rule.error_number : EIO;
      }
      return Status::Error(FaultMessage(site, detail, rule));
    case FaultKind::kStatus:
      return Status::Error(FaultMessage(site, detail, rule));
  }
  return Status::Ok();
}

size_t
FaultInjector::FiredCount(const std::string& site) const
{
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fired_by_site_.find(site);
  return it == fired_by_site_.end() ? 0 : it->second;
}

size_t
FaultInjector::TotalFired() const
{
  std::lock_guard<std::mutex> lock(mutex_);
  return total_fired_;
}

}  // namespace kernelgpt::util
