/// \file
/// Lightweight error reporting: a Status type plus panic/fatal helpers in
/// the spirit of gem5's logging conventions (panic = internal bug,
/// fatal = user error).

#ifndef KERNELGPT_UTIL_STATUS_H_
#define KERNELGPT_UTIL_STATUS_H_

#include <string>

namespace kernelgpt::util {

/// Result of an operation that can fail with a message.
class Status {
 public:
  /// Success value.
  static Status Ok() { return Status(); }

  /// Failure with a human-readable message.
  static Status Error(std::string message);

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  Status() : ok_(true) {}
  bool ok_ = true;
  std::string message_;
};

/// Aborts with a message; call for conditions that indicate a bug in this
/// project itself (never a user/configuration error).
[[noreturn]] void Panic(const std::string& message);

/// Exits with status 1; call for unrecoverable user/configuration errors.
[[noreturn]] void Fatal(const std::string& message);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_STATUS_H_
