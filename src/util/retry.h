/// \file
/// The one retry/backoff implementation in the repo: bounded attempts
/// with deterministic exponential backoff and seeded jitter. Consumers
/// share it so retry behavior cannot drift between subsystems —
/// fuzzer::Fleet runs session rounds under it, and llm::FlakyBackend
/// derives its retry metering from the same attempt schedule.
///
/// Everything is deterministic: DelayMs(retry, key) is a pure function
/// of (policy, retry index, key), so a supervisor running at any thread
/// count reports byte-identical backoff totals. Delays are simulated by
/// default (accumulated and reported, not slept) — the campaign
/// substrate executes in microseconds and real sleeps would only slow
/// tests; a daemon fronting a real flaky device can set `sleep = true`.

#ifndef KERNELGPT_UTIL_RETRY_H_
#define KERNELGPT_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace kernelgpt::util {

/// Bounded-retry parameters with builder-style chainers.
struct RetryPolicy {
  /// Re-attempts after the first try (an operation runs at most
  /// 1 + max_retries times).
  int max_retries = 3;
  /// Backoff before retry r: base_delay_ms * 2^r, clamped to
  /// max_delay_ms, then jittered.
  double base_delay_ms = 1.0;
  double max_delay_ms = 1000.0;
  /// Jitter fraction in [0, 1): the delay is scaled by a seeded factor
  /// drawn from [1 - jitter, 1], per (key, retry index). 0 disables it.
  double jitter = 0.0;
  /// Seed for the jitter draws (decorrelates independent consumers).
  uint64_t seed = 1;
  /// Actually sleep the backoff instead of merely accounting for it.
  bool sleep = false;

  RetryPolicy& WithMaxRetries(int v) { max_retries = v; return *this; }
  RetryPolicy& WithBaseDelayMs(double v) { base_delay_ms = v; return *this; }
  RetryPolicy& WithMaxDelayMs(double v) { max_delay_ms = v; return *this; }
  RetryPolicy& WithJitter(double v, uint64_t s) {
    jitter = v;
    seed = s;
    return *this;
  }
  RetryPolicy& WithSleep(bool v) { sleep = v; return *this; }

  /// Backoff before retry `retry` (0-based) of the operation identified
  /// by `key`. Deterministic exponential-with-seeded-jitter.
  double DelayMs(int retry, const std::string& key) const;
};

/// Outcome of RunWithRetry.
struct RetryResult {
  Status status = Status::Ok();  ///< The last attempt's status.
  int attempts = 0;              ///< Attempts made (>= 1).
  int retries = 0;               ///< attempts - 1.
  double backoff_ms = 0;         ///< Total backoff charged between attempts.

  bool ok() const { return status.ok(); }
};

/// Runs `attempt(i)` (i = 0-based attempt index) until it returns ok()
/// or the policy's attempts are exhausted, charging DelayMs between
/// attempts. The attempt callback receives its index so consumers can
/// key deterministic per-attempt decisions (FlakyBackend's metering).
RetryResult RunWithRetry(const RetryPolicy& policy, const std::string& key,
                         const std::function<Status(int)>& attempt);

}  // namespace kernelgpt::util

#endif  // KERNELGPT_UTIL_RETRY_H_
